// Scalar telemetry — the paper's problem formulation (sec. II), end to end.
//
// A cluster of N IoT devices each senses one scalar (temperature-like)
// reading; the stacked vector X in R^N is what OrcoDCS compresses. This
// example runs the complete deployment on spatially-correlated synthetic
// telemetry:
//
//   1. train the asymmetric autoencoder online over the reading stream;
//   2. broadcast encoder columns to the devices (ClusterPipeline::deploy);
//   3. run steady-state sensing rounds where the latent is computed
//      cooperatively hop-by-hop over the aggregation tree (eq. 6) and the
//      edge decoder reconstructs all N readings from M << N values;
//   4. compare the per-round intra-cluster traffic and network lifetime of
//      hybrid-CS aggregation against shipping raw readings.
//
// Build & run:  ./build/examples/scalar_telemetry
#include <iostream>

#include "core/cluster_pipeline.h"
#include "core/orcodcs.h"
#include "data/sensor_field.h"
#include "wsn/lifetime.h"

int main() {
  using namespace orco;

  // 24 devices, scalar reading each; compress 24 -> 8 latent values.
  core::SystemConfig cfg;
  cfg.orco.input_dim = 24;
  cfg.orco.latent_dim = 8;
  cfg.orco.batch_size = 32;
  cfg.orco.noise_variance = 0.001f;
  cfg.field.device_count = 24;
  cfg.field.radio_range_m = 45.0;
  core::OrcoDcsSystem sys(cfg);

  data::SensorFieldConfig telemetry_cfg;
  telemetry_cfg.steps = 768;
  const auto telemetry = data::make_sensor_field(sys.field(), telemetry_cfg);
  std::cout << "telemetry: " << telemetry.size() << " rounds x "
            << telemetry.geometry().features() << " devices\n";

  const auto summary = sys.train_online(telemetry, 12);
  std::cout << "online training: " << summary.rounds.size()
            << " rounds, final loss " << summary.final_loss << "\n";

  core::ClusterPipeline pipeline(sys);
  (void)pipeline.deploy();
  std::cout << "encoder columns broadcast; distributed/centralised "
               "divergence on a sample round: "
            << pipeline.encode_divergence(telemetry.image(0)) << "\n\n";

  double err = 0.0;
  for (std::size_t t = 0; t < 10; ++t) {
    const auto round = pipeline.sense_round(telemetry.image(t));
    err += round.error;
  }
  std::cout << "steady state: mean Huber error over 10 sensing rounds = "
            << err / 10.0 << " (M/N compression " << cfg.orco.latent_dim
            << "/" << cfg.orco.input_dim << ")\n";

  // Lifetime ablation: hybrid CS vs raw forwarding, 2 J batteries. A dense
  // cluster reaches the aggregator in one hop, so run the comparison on a
  // pipeline-monitoring deployment (a 24-device chain) where relays near
  // the aggregator forward everyone's readings.
  std::vector<wsn::Position> chain;
  for (int i = 0; i <= 24; ++i) {
    chain.push_back(wsn::Position{12.0 * i, 0.0});
  }
  const wsn::Field pipeline_field(std::move(chain), /*aggregator=*/0, 18.0);
  const wsn::AggregationTree pipeline_tree(pipeline_field, cfg.radio);
  wsn::TransmissionLedger scratch;
  const auto raw =
      pipeline_tree.simulate_raw_round(sizeof(float), scratch);
  const auto cs = pipeline_tree.simulate_hybrid_cs_round(
      cfg.orco.latent_dim, sizeof(float), scratch);
  const auto raw_life =
      wsn::estimate_lifetime(pipeline_field, raw.node_energy_j, 2.0);
  const auto cs_life =
      wsn::estimate_lifetime(pipeline_field, cs.node_energy_j, 2.0);
  std::cout << "\nnetwork lifetime on a 24-hop pipeline deployment (2 J "
               "batteries):\n  raw aggregation: "
            << raw_life.rounds_until_first_death
            << " rounds (first death: relay node "
            << raw_life.first_dead_node << ")\n  hybrid CS:       "
            << cs_life.rounds_until_first_death << " rounds  -> "
            << cs_life.rounds_until_first_death /
                   raw_life.rounds_until_first_death
            << "x longer\n";
  return 0;
}
