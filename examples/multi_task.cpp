// Multi-task flexibility (the paper's core pitch against offline DCDA).
//
// Two IoT device groups sense very different data: group A sees MNIST-like
// grayscale telemetry, group B sees GTSRB-like colour imagery. OrcoDCS
// gives each group its own task-tuned autoencoder (latent 128 + shallow
// decoder vs latent 512 + deeper decoder) trained online, while an
// offline framework must ship one fixed model to both. The example prints
// per-group quality and per-group uplink cost next to the
// one-size-fits-all baseline.
//
// Build & run:  ./build/examples/multi_task
#include <iostream>

#include "baseline/dcsnet.h"
#include "core/orcodcs.h"
#include "data/metrics.h"
#include "data/synthetic_gtsrb.h"
#include "data/synthetic_mnist.h"

namespace {

struct GroupReport {
  std::string name;
  double psnr = 0.0;
  double uplink_kb_per_100 = 0.0;  // steady-state uplink KB per 100 samples
};

template <typename System>
GroupReport report(const std::string& name, System& sys,
                   const orco::data::Dataset& test) {
  using namespace orco;
  GroupReport out;
  out.name = name;
  out.psnr = data::mean_psnr(test.images(), sys.reconstruct(test.images()));
  const auto before = sys.ledger().totals(wsn::LinkKind::kUplink).payload_bytes;
  (void)sys.aggregate_images(test.images().slice_rows(0, 100));
  const auto after = sys.ledger().totals(wsn::LinkKind::kUplink).payload_bytes;
  out.uplink_kb_per_100 = static_cast<double>(after - before) / 1024.0;
  return out;
}

}  // namespace

int main() {
  using namespace orco;

  data::MnistConfig mnist_cfg;
  mnist_cfg.count = 1200;
  const auto mnist = data::make_synthetic_mnist(mnist_cfg);
  data::MnistConfig mnist_test_cfg;
  mnist_test_cfg.count = 200;
  mnist_test_cfg.seed = 42;
  const auto mnist_test = data::make_synthetic_mnist(mnist_test_cfg);

  data::GtsrbConfig gtsrb_cfg;
  gtsrb_cfg.count = 700;
  const auto gtsrb = data::make_synthetic_gtsrb(gtsrb_cfg);
  data::GtsrbConfig gtsrb_test_cfg;
  gtsrb_test_cfg.count = 150;
  gtsrb_test_cfg.seed = 43;
  const auto gtsrb_test = data::make_synthetic_gtsrb(gtsrb_test_cfg);

  // --- Group A: grayscale telemetry, small latent, shallow decoder. ------
  core::SystemConfig group_a;
  group_a.orco.input_dim = 784;
  group_a.orco.latent_dim = 128;
  group_a.orco.decoder_layers = 3;
  group_a.field.device_count = 24;
  group_a.field.radio_range_m = 45.0;
  core::OrcoDcsSystem sys_a(group_a);
  std::cout << "training group A (MNIST-like, latent 128)...\n";
  (void)sys_a.train_online(mnist, 15);

  // --- Group B: colour imagery, larger latent, deeper decoder. -----------
  core::SystemConfig group_b = group_a;
  group_b.orco.input_dim = 3072;
  group_b.orco.latent_dim = 512;
  group_b.orco.seed = 77;
  core::OrcoDcsSystem sys_b(group_b);
  std::cout << "training group B (GTSRB-like, latent 512)...\n";
  (void)sys_b.train_online(gtsrb, 10);

  // --- Offline baseline: one fixed structure for both groups. ------------
  std::cout << "training the fixed offline baseline for both groups...\n";
  baseline::DcsNetConfig fixed;  // latent 1024, 50% data, for every task
  baseline::DcsNetSystem dcs_a(data::kMnistGeometry, fixed,
                               wsn::ChannelConfig{}, core::ComputeModel{});
  (void)dcs_a.train_online(mnist, 6);
  baseline::DcsNetSystem dcs_b(data::kGtsrbGeometry, fixed,
                               wsn::ChannelConfig{}, core::ComputeModel{});
  (void)dcs_b.train_online(gtsrb, 5);

  const GroupReport rows[] = {
      report("A OrcoDCS (latent 128)", sys_a, mnist_test),
      report("A DCSNet  (latent 1024)", dcs_a, mnist_test),
      report("B OrcoDCS (latent 512)", sys_b, gtsrb_test),
      report("B DCSNet  (latent 1024)", dcs_b, gtsrb_test),
  };
  std::cout << "\ngroup | reconstruction PSNR (dB) | uplink KB per 100 samples\n";
  for (const auto& r : rows) {
    std::cout << r.name << " | " << r.psnr << " | " << r.uplink_kb_per_100
              << "\n";
  }
  std::cout << "\nOrcoDCS tailors latent size and decoder depth per group; "
               "the offline baseline pays 1024 floats per sample everywhere "
               "and still reconstructs worse.\n";
  return 0;
}
