// Environmental drift and the fine-tuning monitor (paper sec. III-D).
//
// A cluster trains to convergence, then the sensing environment degrades
// (dimmer illumination, sensor bias, extra noise). The edge server's
// periodic error monitoring detects the sustained regression and relaunches
// online training, which restores reconstruction quality on the new
// distribution — the paper's adaptivity claim, end to end.
//
// Build & run:  ./build/examples/environmental_drift
#include <iostream>

#include "core/orcodcs.h"
#include "data/drift.h"
#include "data/metrics.h"
#include "data/synthetic_mnist.h"

int main() {
  using namespace orco;

  core::SystemConfig cfg;
  cfg.orco.input_dim = 784;
  cfg.orco.latent_dim = 128;
  cfg.orco.decoder_layers = 3;
  cfg.orco.relaunch_factor = 1.5f;  // relaunch when error > 1.5x baseline
  cfg.orco.monitor_window = 4;      // sustained over 4 observations
  cfg.field.device_count = 24;
  cfg.field.radio_range_m = 45.0;
  core::OrcoDcsSystem sys(cfg);

  data::MnistConfig data_cfg;
  data_cfg.count = 1200;
  const auto clean = data::make_synthetic_mnist(data_cfg);

  std::cout << "phase 1: initial online training on the clean environment\n";
  (void)sys.train_online(clean, 12);
  const float baseline = sys.monitor().baseline();
  std::cout << "  monitor baseline error: " << baseline << "\n\n";

  std::cout << "phase 2: healthy operation (no relaunch expected)\n";
  for (int round = 0; round < 5; ++round) {
    const float err = sys.evaluate_loss(clean);
    const bool relaunch = sys.monitor_observe(err);
    std::cout << "  periodic check " << round << ": error " << err
              << (relaunch ? "  -> RELAUNCH (unexpected!)" : "  -> ok")
              << "\n";
  }

  std::cout << "\nphase 3: the environment drifts (dimmer light, biased "
               "sensors, more noise)\n";
  common::Pcg32 drift_rng(7);
  const auto drifted =
      data::apply_drift(clean, data::DriftConfig{0.4f, 0.3f, 0.3f}, drift_rng);
  bool relaunched = false;
  for (int round = 0; round < 8 && !relaunched; ++round) {
    const float err = sys.evaluate_loss(drifted);
    relaunched = sys.monitor_observe(err);
    std::cout << "  periodic check " << round << ": error " << err << " ("
              << err / baseline << "x baseline)"
              << (relaunched ? "  -> RELAUNCH TRIGGERED" : "  -> watching")
              << "\n";
  }
  if (!relaunched) {
    std::cout << "  monitor never triggered — tune relaunch_factor\n";
    return 1;
  }

  std::cout << "\nphase 4: relaunch online training on the drifted stream\n";
  const float before = sys.evaluate_loss(drifted);
  (void)sys.train_online(drifted, 12);
  const float after = sys.evaluate_loss(drifted);
  std::cout << "  drifted-data error: " << before << " -> " << after << " ("
            << before / after << "x better)\n";
  std::cout << "  relaunches so far: " << sys.monitor().relaunch_count()
            << "; new baseline: " << sys.monitor().baseline() << "\n";

  const double psnr = data::mean_psnr(
      drifted.images(), sys.reconstruct(drifted.images()));
  std::cout << "  post-relaunch PSNR on drifted data: " << psnr << " dB\n";
  return after < before ? 0 : 1;
}
