// Observability tour: the drift -> fine-tune -> hot-swap loop from
// online_finetune_serving, re-run with the full src/obs stack armed —
// metrics recording, request-lifecycle tracing at full sampling, and
// kernel/per-layer profiling. Every serve request leaves a span tree
// (queue_wait / assembly / decode / respond under a request span), the
// trainer marks its job / round / eval / publish phases, and the decoder's
// GEMMs report call counts and GFLOP/s. After the run the example prints
// the per-tenant latency and stage-breakdown tables and the kernel/layer
// profiles, and exports:
//
//   obs_tour_metrics.json  - metrics snapshot (counters/gauges/histograms)
//   obs_tour_metrics.prom  - the same in Prometheus exposition format
//   obs_tour_trace.json    - Chrome trace-event JSON covering the whole
//                            run, including the hot-swap window; load it
//                            in Perfetto (ui.perfetto.dev) or
//                            chrome://tracing
//
// Build & run:  ./build/examples/observability_tour
#include <cmath>
#include <iostream>
#include <set>

#include "data/drift.h"
#include "data/synthetic_mnist.h"
#include "obs/config.h"
#include "obs/export.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "serve/serve.h"
#include "train/train.h"

namespace {

using namespace orco;
using tensor::Tensor;

constexpr serve::ClusterId kCluster = 1;

/// Mean Huber loss (eq. 4, delta 1) of a served reconstruction — the drift
/// signal the trainer's monitor consumes.
float huber_mean(const Tensor& x, const Tensor& xr, float delta = 1.0f) {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float a = std::fabs(x[i] - xr[i]);
    acc += a <= delta ? 0.5 * static_cast<double>(a) * a
                      : static_cast<double>(delta) * a - 0.5 * delta * delta;
  }
  return static_cast<float>(acc / static_cast<double>(x.numel()));
}

/// Drives encode->serve->observe rounds; reports how many were served and
/// the versions that answered (the hot swap shows up as a second version).
struct TrafficResult {
  std::size_t served = 0;
  std::set<std::uint64_t> versions;
};

TrafficResult run_traffic(const data::Dataset& dataset, std::size_t requests,
                          serve::ServerRuntime& runtime,
                          train::TrainerRuntime& trainer,
                          common::Pcg32& rng) {
  TrafficResult result;
  for (std::size_t i = 0; i < requests; ++i) {
    const auto snapshot = trainer.registry()->current(kCluster);
    const std::size_t pick = rng.next() % dataset.size();
    const Tensor image = dataset.image(pick);
    const Tensor latent =
        snapshot->encoder->infer(image.reshaped({1, image.numel()}));
    serve::DecodeResponse response =
        runtime.submit(kCluster, latent.reshaped({latent.numel()})).get();
    if (response.status != serve::ResponseStatus::kOk) continue;
    ++result.served;
    result.versions.insert(response.model_version);
    (void)trainer.observe_loss(kCluster,
                               huber_mean(image, response.reconstruction));
  }
  return result;
}

}  // namespace

int main() {
  // Arm everything: metrics, every request traced, kernels profiled. A
  // production deployment would sample (trace_sample_rate = 1/64 keeps the
  // serve path within 2% of uninstrumented throughput — see
  // bench/serve_throughput); full sampling here makes the exported trace
  // easy to explore.
  obs::ObsConfig obs_cfg;
  obs_cfg.metrics = true;
  obs_cfg.trace_sample_rate = 1.0;
  obs_cfg.kernel_profiling = true;
  obs::configure(obs_cfg);
  obs::TraceCollector::instance().clear();
  obs::kernel_reset();

  core::SystemConfig cfg;
  cfg.orco.input_dim = 784;
  cfg.orco.latent_dim = 128;
  cfg.orco.decoder_layers = 2;
  cfg.orco.batch_size = 64;
  cfg.orco.noise_variance = 0.01f;
  cfg.orco.relaunch_factor = 1.5f;
  cfg.orco.monitor_window = 12;
  cfg.orco.monitor_cooldown = 48;
  cfg.field.device_count = 24;
  cfg.field.radio_range_m = 45.0;
  auto system = std::make_shared<core::OrcoDcsSystem>(cfg);

  data::MnistConfig data_cfg;
  data_cfg.count = 600;
  const auto clean = data::make_synthetic_mnist(data_cfg);

  std::cout << "phase 1: initial training on the clean environment\n";
  (void)system->train_online(clean, 6);
  const float baseline = system->evaluate_loss(clean);
  std::cout << "  baseline error: " << baseline << "\n\n";

  train::TrainerConfig tcfg;
  tcfg.worker_threads = 1;
  tcfg.default_budget.duty_cycle = 0.5;
  tcfg.drift_epochs = 2;
  train::TrainerRuntime trainer(tcfg);
  trainer.register_tenant(kCluster, system);
  trainer.set_baseline(kCluster, baseline);
  trainer.update_stream(kCluster, clean);

  serve::ServeConfig scfg;
  scfg.shard_count = 2;
  scfg.queue.max_wait_us = 100;
  scfg.model_registry = trainer.registry();
  // The runtime itself can flush exports periodically and dumps once more
  // at shutdown — the files below are the authoritative final state.
  scfg.obs_export.metrics_json_path = "obs_tour_metrics.json";
  scfg.obs_export.prometheus_path = "obs_tour_metrics.prom";
  scfg.obs_export.trace_path = "obs_tour_trace.json";
  serve::ServerRuntime runtime(scfg);
  runtime.register_cluster(kCluster, system);
  runtime.start();
  trainer.start();

  std::cout << "phase 2: serving clean traffic, every request traced\n";
  common::Pcg32 traffic_rng(1234);
  const TrafficResult clean_traffic =
      run_traffic(clean, 120, runtime, trainer, traffic_rng);
  std::cout << "  served " << clean_traffic.served << "/120\n\n";

  std::cout << "phase 3: the environment drifts; the monitor triggers a "
               "background fine-tune\n";
  common::Pcg32 drift_rng(7);
  const auto drifted =
      data::apply_drift(clean, data::DriftConfig{0.4f, 0.3f, 0.3f}, drift_rng);
  trainer.update_stream(kCluster, drifted);
  TrafficResult drift_traffic =
      run_traffic(drifted, 60, runtime, trainer, traffic_rng);
  std::cout << "  drift triggers = " << trainer.stats().drift_triggers
            << "\n\n";

  std::cout << "phase 4: serving through the fine-tune and hot swap (the "
               "trace shows train.job/round/eval/publish spans overlapping "
               "serve spans)\n";
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (std::chrono::steady_clock::now() < deadline &&
         drift_traffic.versions.size() < 2) {
    const TrafficResult more =
        run_traffic(drifted, 60, runtime, trainer, traffic_rng);
    drift_traffic.served += more.served;
    drift_traffic.versions.insert(more.versions.begin(),
                                  more.versions.end());
  }
  std::cout << "  model versions that answered drifted traffic: "
            << drift_traffic.versions.size()
            << (drift_traffic.versions.size() > 1 ? " (hot swap captured)"
                                                  : " (no swap landed)")
            << "\n\n";

  runtime.shutdown();  // final export happens here
  trainer.shutdown();

  common::print_section(std::cout, "Serving telemetry (per tenant)");
  runtime.telemetry().tenant_report().print(std::cout);

  common::print_section(std::cout,
                        "Per-stage latency breakdown (batch-amortized)");
  runtime.telemetry().stage_report().print(std::cout);

  common::print_section(std::cout, "Kernel profile (per backend op)");
  obs::kernel_report().print(std::cout);

  // The snapshot's plan is the one the shards actually executed (the edge's
  // own lazily-compiled plan only covers registry-free decodes and gets
  // recompiled whenever training bumps the weight version).
  common::print_section(std::cout, "Decoder inference-plan op profile");
  trainer.registry()->current(kCluster)->plan->op_profile_table().print(
      std::cout);

  std::cout << "\ntrace events recorded: "
            << obs::TraceCollector::instance().event_count()
            << "\nwrote obs_tour_metrics.json, obs_tour_metrics.prom, "
               "obs_tour_trace.json (load the trace in ui.perfetto.dev)\n";

  obs::configure(obs::ObsConfig{});
  return drift_traffic.versions.size() > 1 ? 0 : 1;
}
