// Online fine-tuning while serving (the paper's serve-while-retraining
// loop, end to end): a cluster serves live reconstruction traffic through
// the multi-tenant runtime while a background TrainerRuntime watches the
// observed reconstruction error. When the sensing environment drifts, the
// §III-D monitor triggers a fine-tune job over the drifted stream; the job
// runs concurrently with serving (duty-cycle budgeted), and on completion
// the retrained encoder/decoder pair is atomically hot-swapped into the
// serve path via the ModelRegistry — the client sees the model version
// bump in its responses, refreshes its encoder (the §III-C re-broadcast),
// and reconstruction error recovers without the server ever refusing a
// request.
//
// Build & run:  ./build/examples/online_finetune_serving
#include <cmath>
#include <deque>
#include <iostream>
#include <set>

#include "data/drift.h"
#include "data/synthetic_mnist.h"
#include "serve/serve.h"
#include "train/train.h"

namespace {

using namespace orco;
using tensor::Tensor;

constexpr serve::ClusterId kCluster = 1;

/// The same mean Huber objective evaluate_loss reports (eq. 4, delta 1),
/// computed client-side from a served reconstruction — this is the signal
/// the drift monitor consumes.
float huber_mean(const Tensor& x, const Tensor& xr, float delta = 1.0f) {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    const float a = std::fabs(x[i] - xr[i]);
    acc += a <= delta ? 0.5 * static_cast<double>(a) * a
                      : static_cast<double>(delta) * a - 0.5 * delta * delta;
  }
  return static_cast<float>(acc / static_cast<double>(x.numel()));
}

/// The client's view of the deployed model: it encodes with the encoder of
/// the snapshot it last "received" (§III-C broadcast) and refreshes when
/// the registry publishes a newer generation.
struct Client {
  std::shared_ptr<const train::ModelSnapshot> snapshot;
  std::set<std::uint64_t> versions_seen;
  std::size_t swaps = 0;

  void maybe_refresh(train::ModelRegistry& registry) {
    auto current = registry.current(kCluster);
    if (current == nullptr) return;
    if (snapshot == nullptr || current->version != snapshot->version) {
      if (snapshot != nullptr) {
        ++swaps;
        std::cout << "  [client] model swap observed: v" << snapshot->version
                  << " -> v" << current->version << ", encoder refreshed\n";
      }
      snapshot = std::move(current);
    }
  }
};

struct TrafficStats {
  float mean_loss = 0.0f;
  std::size_t served = 0;
};

/// Drives `requests` encode->serve->compare rounds from `dataset`, feeding
/// every observed loss to the drift monitor. Returns the mean loss over
/// the final `tail` requests (steady-state view).
TrafficStats run_traffic(const data::Dataset& dataset, std::size_t requests,
                         std::size_t tail, serve::ServerRuntime& runtime,
                         train::TrainerRuntime& trainer, Client& client,
                         common::Pcg32& rng) {
  std::deque<float> recent;
  TrafficStats stats;
  for (std::size_t i = 0; i < requests; ++i) {
    client.maybe_refresh(*trainer.registry());
    const std::size_t pick = rng.next() % dataset.size();
    const Tensor image = dataset.image(pick);
    const Tensor latent =
        client.snapshot->encoder->infer(image.reshaped({1, image.numel()}));
    serve::DecodeResponse response =
        runtime.submit(kCluster, latent.reshaped({latent.numel()})).get();
    if (response.status != serve::ResponseStatus::kOk) continue;
    ++stats.served;
    client.versions_seen.insert(response.model_version);
    const float loss = huber_mean(image, response.reconstruction);
    (void)trainer.observe_loss(kCluster, loss);
    recent.push_back(loss);
    if (recent.size() > tail) recent.pop_front();
  }
  for (const float loss : recent) stats.mean_loss += loss;
  if (!recent.empty()) {
    stats.mean_loss /= static_cast<float>(recent.size());
  }
  return stats;
}

}  // namespace

int main() {
  core::SystemConfig cfg;
  cfg.orco.input_dim = 784;
  cfg.orco.latent_dim = 128;
  cfg.orco.decoder_layers = 2;
  cfg.orco.batch_size = 64;
  cfg.orco.noise_variance = 0.01f;
  cfg.orco.relaunch_factor = 1.5f;  // relaunch when error > 1.5x baseline
  // Per-request losses are single-image samples and vary a lot more than
  // the dataset mean the monitor was baselined on: a wide window keeps an
  // unlucky run of hard images from triggering a relaunch on clean data.
  cfg.orco.monitor_window = 12;
  cfg.orco.monitor_cooldown = 48;   // one relaunch per drift episode
  cfg.field.device_count = 24;
  cfg.field.radio_range_m = 45.0;
  auto system = std::make_shared<core::OrcoDcsSystem>(cfg);

  data::MnistConfig data_cfg;
  data_cfg.count = 800;
  const auto clean = data::make_synthetic_mnist(data_cfg);

  std::cout << "phase 1: initial online training on the clean environment\n";
  (void)system->train_online(clean, 8);
  const float baseline = system->evaluate_loss(clean);
  std::cout << "  baseline error: " << baseline << "\n\n";

  // Background fine-tuning: 1 worker, half-duty so serving keeps its
  // cores, 3 epochs per drift-triggered job.
  train::TrainerConfig tcfg;
  tcfg.worker_threads = 1;
  tcfg.default_budget.duty_cycle = 0.5;
  tcfg.drift_epochs = 3;
  train::TrainerRuntime trainer(tcfg);
  trainer.register_tenant(kCluster, system);
  trainer.set_baseline(kCluster, baseline);
  trainer.update_stream(kCluster, clean);

  serve::ServeConfig scfg;
  scfg.shard_count = 2;
  scfg.queue.max_wait_us = 100;
  scfg.model_registry = trainer.registry();
  scfg.recon_cache.capacity = 1024;
  serve::ServerRuntime runtime(scfg);
  runtime.register_cluster(kCluster, system);
  runtime.start();
  trainer.start();

  Client client;
  client.maybe_refresh(*trainer.registry());
  std::cout << "phase 2: serving clean traffic (model v"
            << client.snapshot->version << ")\n";
  common::Pcg32 traffic_rng(1234);
  const TrafficStats clean_stats =
      run_traffic(clean, 150, 100, runtime, trainer, client, traffic_rng);
  std::cout << "  served " << clean_stats.served << "/150, mean error "
            << clean_stats.mean_loss << " (no relaunch expected: triggers so "
            << "far = " << trainer.stats().drift_triggers << ")\n\n";

  std::cout << "phase 3: the environment drifts (dimmer light, biased "
               "sensors, more noise)\n";
  common::Pcg32 drift_rng(7);
  const auto drifted =
      data::apply_drift(clean, data::DriftConfig{0.4f, 0.3f, 0.3f}, drift_rng);
  trainer.update_stream(kCluster, drifted);  // the edge's sensed window moves
  const TrafficStats drifted_stats =
      run_traffic(drifted, 60, 40, runtime, trainer, client, traffic_rng);
  std::cout << "  served " << drifted_stats.served << "/60, mean error "
            << drifted_stats.mean_loss << " ("
            << drifted_stats.mean_loss / baseline << "x baseline), drift "
            << "triggers = " << trainer.stats().drift_triggers << "\n\n";
  if (trainer.stats().drift_triggers == 0) {
    std::cout << "  monitor never triggered — tune relaunch_factor\n";
    return 1;
  }

  std::cout << "phase 4: serving continues while the fine-tune job runs in "
               "the background\n";
  // Keep the drifted traffic flowing until the hot swap lands mid-stream
  // (the client re-encodes with the re-broadcast encoder) and the observed
  // error recovers — bounded by a generous wall-clock deadline.
  TrafficStats recovered_stats;
  const std::uint64_t version_before = client.snapshot->version;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  while (std::chrono::steady_clock::now() < deadline) {
    recovered_stats =
        run_traffic(drifted, 60, 40, runtime, trainer, client, traffic_rng);
    if (client.snapshot->version != version_before &&
        recovered_stats.mean_loss < 0.7f * drifted_stats.mean_loss) {
      break;
    }
  }
  std::cout << "  post-swap mean error on drifted data: "
            << recovered_stats.mean_loss << " (was " << drifted_stats.mean_loss
            << " pre-fine-tune; " << recovered_stats.mean_loss / baseline
            << "x original baseline)\n\n";

  runtime.shutdown();
  trainer.shutdown();

  const auto serve_snapshot = runtime.telemetry().snapshot();
  const auto trainer_stats = trainer.stats();
  std::cout << "summary\n";
  std::cout << "  requests completed:   " << serve_snapshot.completed
            << " (shed " << serve_snapshot.shed << ", rejected "
            << serve_snapshot.rejected << ")\n";
  std::cout << "  model versions seen:  " << client.versions_seen.size()
            << " (swaps at the client: " << client.swaps << ")\n";
  std::cout << "  fine-tune jobs:       " << trainer_stats.jobs_completed
            << " (" << trainer_stats.rounds_run << " rounds, "
            << trainer_stats.snapshots_published << " snapshots published)\n";
  std::cout << "  reconstruction cache: "
            << serve_snapshot.cache_hits << " hits / "
            << serve_snapshot.cache_misses << " misses ("
            << serve_snapshot.cache_hit_rate() * 100.0 << "%)\n";
  runtime.telemetry().tenant_report().print(std::cout);

  const bool recovered =
      client.swaps > 0 && recovered_stats.mean_loss < drifted_stats.mean_loss;
  std::cout << "\n"
            << (recovered ? "drift recovered while serving never stopped"
                          : "recovery FAILED")
            << "\n";
  return recovered ? 0 : 1;
}
