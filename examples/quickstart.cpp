// Quickstart: the full OrcoDCS lifecycle on one cluster in ~80 lines.
//
//   1. deploy a WSN cluster (devices + data aggregator + edge server);
//   2. gather raw sensing data once (intra-cluster raw aggregation);
//   3. train the asymmetric autoencoder online (IoT-Edge orchestration);
//   4. broadcast the trained encoder columns to the devices;
//   5. run steady-state compressed aggregation and reconstruct at the edge.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "core/orcodcs.h"
#include "data/ascii_art.h"
#include "data/metrics.h"
#include "data/synthetic_mnist.h"

int main() {
  using namespace orco;

  // --- 1. Configure the system for an MNIST-like sensing task. ----------
  core::SystemConfig cfg;
  cfg.orco.input_dim = 784;    // 28x28 grayscale sensing data
  cfg.orco.latent_dim = 128;   // task-chosen compression (paper's MNIST pick)
  cfg.orco.decoder_layers = 3; // per-task decoder depth (edge-side)
  cfg.field.device_count = 24; // IoT devices in the cluster
  cfg.field.radio_range_m = 45.0;
  core::OrcoDcsSystem sys(cfg);

  std::cout << "cluster: " << sys.field().device_count()
            << " devices, aggregation tree depth " << sys.tree().max_depth()
            << "\n";

  // --- 2. One-shot raw data aggregation (paper sec. III-A). --------------
  const double raw_s = sys.raw_aggregation_round(784 * sizeof(float));
  std::cout << "raw aggregation round: " << raw_s << " s simulated\n";

  // --- 3. Online orchestrated training (paper sec. III-B). ---------------
  data::MnistConfig data_cfg;
  data_cfg.count = 1500;
  const auto train = data::make_synthetic_mnist(data_cfg);
  const auto summary = sys.train_online(train, /*epochs=*/15);
  std::cout << "trained " << summary.rounds.size() << " rounds; final loss "
            << summary.final_loss << "; simulated time "
            << summary.sim_seconds << " s\n";

  // --- 4. Distribute encoder columns to devices (paper sec. III-C). ------
  const double bc_s = sys.distribute_encoder();
  std::cout << "encoder broadcast: " << bc_s << " s simulated\n";

  // --- 5. Steady state: compressed aggregation + edge reconstruction. ----
  data::MnistConfig test_cfg;
  test_cfg.count = 8;
  test_cfg.seed = 99;
  const auto test = data::make_synthetic_mnist(test_cfg);
  (void)sys.aggregate_images(test.images());  // latents only on the uplink
  const auto rec = sys.reconstruct(test.images());

  std::cout << "\nreconstruction PSNR over " << test.size() << " images: "
            << data::mean_psnr(test.images(), rec) << " dB\n\n";
  std::cout << data::ascii_art_row(
      {test.image(0), rec.slice_rows(0, 1).reshaped({784})},
      {"Original", "Reconstruction"}, test.geometry());

  std::cout << "\ntransmission ledger: " << sys.ledger().summary() << "\n";
  return 0;
}
