// Tour of src/fleet: one process serving far more tenants than fit in RAM.
//
// An EdgeFleet fronts two edge cells. Tenants are routed to cells by a
// consistent-hash ring, published decoder snapshots are delta-replicated to
// the next cell on the ring, and only a bounded warm set of tenants stays
// materialized — the rest live as checkpoint files in the cold tier and
// reactivate transparently (and bitwise-identically) on their next request.
//
// The tour walks: registration (free), first-touch activation, LRU
// demotion under a tiny warm capacity, a cold wake that restores trained
// weights, and the replication counters that show deltas flowing.
//
// Build & run:  ./build/examples/fleet_tour
#include <filesystem>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "fleet/fleet.h"
#include "serve/serve.h"

int main() {
  using namespace orco;
  using fleet::ClusterId;

  const std::string cold_dir = "/tmp/orco_fleet_tour";
  std::filesystem::remove_all(cold_dir);  // fresh cold tier for the tour

  fleet::FleetConfig cfg;
  cfg.replicas = 2;        // two in-process edge cells
  cfg.vnodes = 64;         // ring granularity
  cfg.warm_capacity = 3;   // only 3 tenants materialized at once
  cfg.cold_dir = cold_dir;
  cfg.trainer_threads = 1;  // each cell gets a trainer runtime
  cfg.system.orco.input_dim = 64;
  cfg.system.orco.latent_dim = 16;
  cfg.system.orco.decoder_layers = 1;
  cfg.system.field.device_count = 4;
  fleet::EdgeFleet fl(cfg);

  std::cout << "phase 1: register six tenants (nothing materializes yet)\n";
  for (ClusterId id = 1; id <= 6; ++id) {
    fl.register_tenant(id);
    std::cout << "  tenant " << id << " -> cell " << fl.owner_of(id)
              << " (ring)\n";
  }
  std::cout << "  registered " << fl.registered_count() << ", resident "
            << fl.resident_count() << "\n\n";

  fl.start();
  common::Pcg32 rng(11);

  std::cout << "phase 2: first requests wake tenants on demand; the warm set "
            << "stays <= " << cfg.warm_capacity << "\n";
  for (ClusterId id = 1; id <= 6; ++id) {
    const auto response =
        fl.submit(id, tensor::Tensor::randn({1, 16}, rng)).get();
    std::cout << "  tenant " << id << ": status "
              << serve::to_string(response.status) << ", model v"
              << response.model_version << ", resident now "
              << fl.resident_count() << "\n";
  }
  const fleet::FleetStats after_sweep = fl.stats();
  std::cout << "  cold builds " << after_sweep.cold_builds << ", demotions "
            << after_sweep.demotions << " (LRU victims checkpointed to "
            << cold_dir << ")\n\n";

  std::cout << "phase 3: a demoted tenant wakes from its checkpoint, "
            << "bitwise-identical\n";
  const ClusterId probe = 1;  // demoted during the sweep above
  const tensor::Tensor latent = tensor::Tensor::randn({1, 16}, rng);
  const auto woken = fl.submit(probe, latent).get();
  std::cout << "  tenant " << probe << " resident again: status "
            << serve::to_string(woken.status) << ", model v"
            << woken.model_version << "\n";
  const auto again = fl.submit(probe, latent).get();
  std::cout << "  same latent, warm path: reconstructions identical: "
            << (again.reconstruction.allclose(woken.reconstruction, 0.0f)
                    ? "yes"
                    : "no")
            << "\n\n";

  std::cout << "phase 4: fleet counters\n";
  const fleet::FleetStats stats = fl.stats();
  common::Table table({"counter", "value"});
  table.add_row({"registered", std::to_string(stats.registered)});
  table.add_row({"resident", std::to_string(fl.resident_count())});
  table.add_row({"cold builds", std::to_string(stats.cold_builds)});
  table.add_row({"cold wakes", std::to_string(stats.cold_wakes)});
  table.add_row({"demotions", std::to_string(stats.demotions)});
  table.add_row({"snapshots replicated",
                 std::to_string(stats.deltas_shipped + stats.full_ships)});
  table.add_row({"delta bytes", std::to_string(stats.delta_bytes)});
  table.print(std::cout);

  fl.shutdown();
  std::cout << "\ndone: six tenants served through a warm set of "
            << cfg.warm_capacity << "\n";
  return 0;
}
