// Follow-up application example (the paper's secondary objective).
//
// An edge analytics team wants a digit classifier but only ever receives
// reconstructed sensing data from the CDA pipeline. This example trains the
// paper's 2-layer CNN on (a) clean data, (b) OrcoDCS reconstructions and
// (c) DCSNet reconstructions, and reports the accuracy each pipeline
// supports downstream.
//
// Build & run:  ./build/examples/follow_up_classifier
#include <iostream>

#include "apps/classifier.h"
#include "baseline/dcsnet.h"
#include "core/orcodcs.h"
#include "data/synthetic_mnist.h"

int main() {
  using namespace orco;

  data::MnistConfig train_cfg;
  train_cfg.count = 1500;
  const auto train = data::make_synthetic_mnist(train_cfg);
  data::MnistConfig test_cfg;
  test_cfg.count = 300;
  test_cfg.seed = 5;
  const auto test = data::make_synthetic_mnist(test_cfg);

  std::cout << "training OrcoDCS (online, latent 128, 3-layer decoder)...\n";
  core::SystemConfig orco_cfg;
  orco_cfg.orco.input_dim = 784;
  orco_cfg.orco.latent_dim = 128;
  orco_cfg.orco.decoder_layers = 3;
  orco_cfg.field.device_count = 24;
  orco_cfg.field.radio_range_m = 45.0;
  core::OrcoDcsSystem orco_sys(orco_cfg);
  (void)orco_sys.train_online(train, 40);

  std::cout << "training DCSNet (offline, latent 1024, 50% data)...\n";
  baseline::DcsNetConfig dcs_cfg;
  baseline::DcsNetSystem dcs_sys(data::kMnistGeometry, dcs_cfg,
                                 wsn::ChannelConfig{}, core::ComputeModel{});
  (void)dcs_sys.train_online(train, 8);

  const auto orco_rec = [&](const tensor::Tensor& x) {
    return orco_sys.reconstruct(x);
  };
  const auto dcs_rec = [&](const tensor::Tensor& x) {
    return dcs_sys.reconstruct(x);
  };

  struct Variant {
    std::string name;
    data::Dataset train_set;
    data::Dataset test_set;
  };
  std::vector<Variant> variants;
  variants.push_back({"clean (no CDA)", train, test});
  variants.push_back({"OrcoDCS reconstructions",
                      apps::reconstruct_dataset(train, orco_rec),
                      apps::reconstruct_dataset(test, orco_rec)});
  variants.push_back({"DCSNet reconstructions",
                      apps::reconstruct_dataset(train, dcs_rec),
                      apps::reconstruct_dataset(test, dcs_rec)});

  std::cout << "\npipeline | accuracy | loss (8 classifier epochs)\n";
  for (auto& v : variants) {
    apps::ClassifierConfig clf_cfg;
    clf_cfg.learning_rate = 3e-3f;
    apps::CnnClassifier clf(v.train_set.geometry(), v.train_set.num_classes(),
                            clf_cfg);
    for (int epoch = 0; epoch < 8; ++epoch) {
      (void)clf.train_epoch(v.train_set);
    }
    const auto eval = clf.evaluate(v.test_set);
    std::cout << v.name << " | " << eval.accuracy << " | " << eval.loss
              << "\n";
  }
  std::cout << "\nexpected ordering: clean > OrcoDCS > DCSNet — the follow-up "
               "model keeps more of its accuracy under OrcoDCS.\n";
  return 0;
}
