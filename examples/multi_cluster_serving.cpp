// Multi-cluster serving: one edge runtime multiplexing heterogeneous
// tenants — two MNIST-like image clusters, one GTSRB-like image cluster and
// one scalar-telemetry cluster — behind the sharded, batched front door.
//
//   1. build + briefly train each tenant's OrcoDCS system (online
//      orchestration, as in quickstart.cpp but smaller);
//   2. register every cluster with a ServerRuntime (4 shards);
//   3. fire mixed traffic from concurrent clients;
//   4. graceful shutdown, then print the telemetry report and a sample
//      reconstruction per tenant kind.
//
// Build & run:  ./build/examples/multi_cluster_serving
#include <future>
#include <iostream>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "data/metrics.h"
#include "data/synthetic_gtsrb.h"
#include "data/synthetic_mnist.h"
#include "serve/serve.h"

namespace {

using namespace orco;

struct Tenant {
  serve::ClusterId id;
  std::string kind;
  std::shared_ptr<core::OrcoDcsSystem> system;
  data::Dataset eval;  // samples whose encodings we serve back
};

std::shared_ptr<core::OrcoDcsSystem> make_system(std::size_t input_dim,
                                                 std::size_t latent_dim,
                                                 std::uint64_t seed) {
  core::SystemConfig cfg;
  cfg.orco.input_dim = input_dim;
  cfg.orco.latent_dim = latent_dim;
  cfg.orco.decoder_layers = 3;
  cfg.orco.seed = seed;
  cfg.field.device_count = 16;
  cfg.field.radio_range_m = 55.0;
  return std::make_shared<core::OrcoDcsSystem>(cfg);
}

/// Encodes row `i` of the tenant's eval set the way its aggregator would on
/// the uplink (noise-free eval encoding).
tensor::Tensor latent_for(const Tenant& tenant, std::size_t i) {
  const auto batch = tenant.eval.images().slice_rows(i, i + 1);
  return tenant.system->aggregator()
      .encoder()
      .infer(batch)
      .reshaped({tenant.system->config().orco.latent_dim});
}

}  // namespace

int main() {
  // --- 1. Heterogeneous tenants. -----------------------------------------
  std::vector<Tenant> tenants;

  for (std::uint64_t i = 0; i < 2; ++i) {  // two MNIST-like image clusters
    data::MnistConfig dcfg;
    dcfg.count = 300;
    dcfg.seed = 31 + i;
    Tenant t{i + 1, "mnist", make_system(784, 128, 11 + i),
             data::make_synthetic_mnist(dcfg)};
    tenants.push_back(std::move(t));
  }
  {
    data::GtsrbConfig dcfg;
    dcfg.count = 150;
    dcfg.seed = 41;
    Tenant t{3, "gtsrb", make_system(3072, 512, 13),
             data::make_synthetic_gtsrb(dcfg)};
    tenants.push_back(std::move(t));
  }
  {
    // Scalar telemetry: one reading per device, input_dim == device_count
    // (the §II formulation) — tiny model, high request rate.
    data::MnistConfig dcfg;  // reuse the generator as a stand-in field
    dcfg.count = 300;
    dcfg.seed = 51;
    Tenant t{4, "telemetry", make_system(784, 32, 17),
             data::make_synthetic_mnist(dcfg)};
    tenants.push_back(std::move(t));
  }

  std::cout << "training " << tenants.size() << " tenants (brief)...\n";
  for (auto& t : tenants) {
    const auto summary = t.system->train_online(t.eval, /*epochs=*/4);
    t.system->distribute_encoder();
    std::cout << "  cluster " << t.id << " (" << t.kind << "): loss "
              << summary.final_loss << " after " << summary.rounds.size()
              << " rounds\n";
  }

  // --- 2. One serving runtime for all of them. ----------------------------
  serve::ServeConfig cfg;
  cfg.shard_count = 4;
  cfg.queue.max_batch = 16;
  cfg.queue.max_wait_us = 300;
  serve::ServerRuntime runtime(cfg);
  for (const auto& t : tenants) {
    runtime.register_cluster(t.id, t.system);
    std::cout << "cluster " << t.id << " (" << t.kind << ") -> shard "
              << runtime.shard_of(t.id) << "\n";
  }
  runtime.start();

  // --- 3. Mixed traffic from concurrent clients. --------------------------
  common::Stopwatch sw;
  const std::size_t per_client = 200;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<serve::DecodeResponse>> inflight;
      for (std::size_t i = 0; i < per_client; ++i) {
        const Tenant& t = tenants[(c + i) % tenants.size()];
        inflight.push_back(
            runtime.submit(t.id, latent_for(t, i % t.eval.size())));
        if (inflight.size() >= 8) {
          for (auto& f : inflight) (void)f.get();
          inflight.clear();
        }
      }
      for (auto& f : inflight) (void)f.get();
    });
  }
  for (auto& c : clients) c.join();
  const double elapsed = sw.seconds();

  // --- 4. Shutdown and report. --------------------------------------------
  runtime.shutdown();
  std::cout << "\n";
  runtime.telemetry().report(elapsed).print(std::cout);

  std::cout << "\nper-tenant sample reconstruction PSNR:\n";
  for (const auto& t : tenants) {
    const auto sample = t.eval.images().slice_rows(0, 8);
    const auto rec = t.system->reconstruct(sample);
    std::cout << "  cluster " << t.id << " (" << t.kind << "): "
              << data::mean_psnr(sample, rec) << " dB\n";
  }
  return 0;
}
