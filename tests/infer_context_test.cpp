// Tests for the zero-allocation inference substrate: the tensor::Workspace
// bump arena (growth, mark/rewind, coalesce-on-reset), InferContext buffer
// ping-pong reuse, and — via a counting global operator new — proof that a
// steady-state decode through a warmed context performs zero heap
// allocations (the acceptance bar for the serving shard's decode stage).
//
// This TU owns the test binary's global operator new/delete replacement;
// counting is scoped per thread so gtest's own allocations never leak into
// a measurement.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/system.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/conv_transpose2d.h"
#include "nn/dense.h"
#include "nn/infer_context.h"
#include "nn/infer_plan.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "obs/config.h"
#include "obs/trace.h"
#include "tensor/backend.h"
#include "tensor/workspace.h"

namespace {

thread_local bool t_count_allocs = false;
thread_local std::uint64_t t_alloc_count = 0;

void* counted_alloc(std::size_t size) {
  if (t_count_allocs) ++t_alloc_count;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

}  // namespace

// Global replacements: every operator new in the test binary funnels
// through the counter (only armed on the measuring thread, inside a scope).
void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace orco {
namespace {

using nn::InferContext;
using tensor::Tensor;
using tensor::Workspace;

/// Arms the allocation counter for the current thread for its scope.
class CountAllocs {
 public:
  CountAllocs() {
    t_alloc_count = 0;
    t_count_allocs = true;
  }
  ~CountAllocs() { t_count_allocs = false; }
  static std::uint64_t count() { return t_alloc_count; }
};

/// Serial, blocked-backend kernels for deterministic measurements: no pool
/// futures, no reference-backend transpose temporaries.
class SerialBlockedScope {
 public:
  SerialBlockedScope() : scope_(&tensor::blocked_backend()) {
    tensor::set_gemm_parallelism(false);
  }
  ~SerialBlockedScope() { tensor::set_gemm_parallelism(true); }

 private:
  tensor::BackendScope scope_;
};

TEST(WorkspaceTest, BumpAllocatesAlignedAndTracksUsage) {
  Workspace ws;
  EXPECT_EQ(ws.capacity(), 0u);
  float* a = ws.alloc(10);
  float* b = ws.alloc(100);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a) % 64, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 64, 0u);
  // Both allocations rounded up to the 16-float alignment grain.
  EXPECT_EQ(ws.used(), 16u + 112u);
  EXPECT_GE(ws.high_water(), ws.used());
  // Writable across the whole request.
  for (int i = 0; i < 10; ++i) a[i] = 1.0f;
  for (int i = 0; i < 100; ++i) b[i] = 2.0f;
  EXPECT_EQ(a[9], 1.0f);
  EXPECT_EQ(b[99], 2.0f);
}

TEST(WorkspaceTest, MarkRewindRecyclesWithoutGrowth) {
  Workspace ws(1024);
  const std::size_t cap = ws.capacity();
  const Workspace::Mark m = ws.mark();
  float* first = ws.alloc(256);
  ws.rewind(m);
  EXPECT_EQ(ws.used(), 0u);
  float* second = ws.alloc(256);
  EXPECT_EQ(first, second);  // same storage handed back
  EXPECT_EQ(ws.capacity(), cap);
}

TEST(WorkspaceTest, WorkspaceScopeRewindsOnExit) {
  Workspace ws(512);
  float* outer = ws.alloc(32);
  (void)outer;
  const std::size_t used_before = ws.used();
  {
    tensor::WorkspaceScope scope(ws);
    (void)ws.alloc(64);
    (void)ws.alloc(64);
    EXPECT_GT(ws.used(), used_before);
  }
  EXPECT_EQ(ws.used(), used_before);
}

TEST(WorkspaceTest, OverflowGrowsThenResetCoalescesToOneSlab) {
  Workspace ws;
  (void)ws.alloc(100);
  (void)ws.alloc(5000);   // overflows the first block
  (void)ws.alloc(20000);  // and the second
  EXPECT_GT(ws.block_count(), 1u);
  const std::size_t high = ws.high_water();
  ws.reset();
  EXPECT_EQ(ws.used(), 0u);
  EXPECT_EQ(ws.block_count(), 1u);  // coalesced
  EXPECT_GE(ws.capacity(), high);
  // The same sequence now fits without opening a second block.
  (void)ws.alloc(100);
  (void)ws.alloc(5000);
  (void)ws.alloc(20000);
  EXPECT_EQ(ws.block_count(), 1u);
}

TEST(WorkspaceTest, RewindValidatesLifoOrder) {
  Workspace ws(256);
  const Workspace::Mark early = ws.mark();
  (void)ws.alloc(16);
  const Workspace::Mark late = ws.mark();
  ws.rewind(late);
  ws.rewind(early);
  (void)ws.alloc(16);
  const Workspace::Mark after = ws.mark();
  ws.rewind(after);
  EXPECT_THROW(ws.rewind(Workspace::Mark{0, 9999}), std::invalid_argument);
}

TEST(InferContextTest, PingPongBuffersAlternate) {
  InferContext ctx;
  Tensor& b0 = ctx.buffer(0);
  Tensor& b1 = ctx.buffer(1);
  EXPECT_NE(&b0, &b1);
  EXPECT_EQ(&ctx.input(), &b0);
  EXPECT_EQ(&ctx.other_than(b0), &b1);
  EXPECT_EQ(&ctx.other_than(b1), &b0);
  Tensor outside({4});
  EXPECT_EQ(&ctx.other_than(outside), &b0);
  EXPECT_TRUE(ctx.owns(b0));
  EXPECT_TRUE(ctx.owns(b1));
  EXPECT_FALSE(ctx.owns(outside));
}

TEST(InferContextTest, SequentialInferIntoMatchesInferBitwise) {
  common::Pcg32 rng(7);
  nn::Sequential model;
  model.emplace<nn::Dense>(16, 48, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dense>(48, 48, rng);
  model.emplace<nn::LeakyReLU>(0.05f);
  model.emplace<nn::Dense>(48, 64, rng);
  model.emplace<nn::Sigmoid>();

  InferContext ctx;
  Tensor out;
  // Varying batch sizes through ONE context: buffers shrink and regrow
  // within capacity without perturbing values.
  for (const std::size_t batch : {8u, 1u, 5u, 8u}) {
    const Tensor x = Tensor::randn({batch, 16}, rng);
    const Tensor expected = model.infer(x);
    model.infer_into(x, out, ctx);
    ASSERT_EQ(out.shape(), expected.shape());
    for (std::size_t i = 0; i < out.numel(); ++i) {
      ASSERT_EQ(out[i], expected[i]) << "batch " << batch << " elem " << i;
    }
  }
}

TEST(InferContextTest, ConvChainInferIntoMatchesInferBitwise) {
  common::Pcg32 rng(21);
  nn::Sequential model;
  // 1x8x8 -> conv 4ch -> ReLU -> pool -> convT back up -> Sigmoid.
  model.emplace<nn::Conv2d>(1, 4, 3, 1, 1, 8, 8, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::MaxPool2d>(4, 8, 8, 2, 2);
  model.emplace<nn::ConvTranspose2d>(4, 1, 2, 2, 0, 4, 4, rng);
  model.emplace<nn::Sigmoid>();

  InferContext ctx;
  Tensor out;
  for (const std::size_t batch : {3u, 1u, 3u}) {
    const Tensor x = Tensor::randn({batch, 64}, rng);
    const Tensor expected = model.infer(x);
    model.infer_into(x, out, ctx);
    ASSERT_EQ(out.shape(), expected.shape());
    for (std::size_t i = 0; i < out.numel(); ++i) {
      ASSERT_EQ(out[i], expected[i]) << "batch " << batch << " elem " << i;
    }
  }
}

TEST(InferContextTest, InputMayAliasAContextBuffer) {
  // The ClusterShard pattern: assemble the batch in ctx.input(), infer out
  // of it. The planner must ping-pong away from the aliased buffer.
  common::Pcg32 rng(3);
  nn::Sequential model;
  model.emplace<nn::Dense>(8, 24, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dense>(24, 32, rng);
  model.emplace<nn::Sigmoid>();

  InferContext ctx;
  const Tensor x = Tensor::randn({4, 8}, rng);
  const Tensor expected = model.infer(x);

  Tensor& assembled = ctx.input();
  assembled.resize(4, 8);
  std::copy(x.data().begin(), x.data().end(), assembled.data().begin());
  Tensor out;
  model.infer_into(assembled, out, ctx);
  ASSERT_EQ(out.shape(), expected.shape());
  for (std::size_t i = 0; i < out.numel(); ++i) {
    ASSERT_EQ(out[i], expected[i]);
  }
}

TEST(ZeroAllocTest, WarmedSequentialDecodeMakesNoHeapAllocations) {
  SerialBlockedScope kernels;
  common::Pcg32 rng(11);
  nn::Sequential model;
  model.emplace<nn::Dense>(16, 64, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dense>(64, 64, rng);
  model.emplace<nn::Sigmoid>();
  model.set_weight_prepack(true);

  InferContext ctx;
  Tensor out;
  const Tensor x = Tensor::randn({8, 16}, rng);
  // Warmup: grows the context buffers to their high-water mark and packs
  // the weight panels.
  model.infer_into(x, out, ctx);
  model.infer_into(x, out, ctx);

  std::uint64_t allocs = 0;
  {
    CountAllocs counter;
    for (int i = 0; i < 16; ++i) model.infer_into(x, out, ctx);
    allocs = CountAllocs::count();
  }
  EXPECT_EQ(allocs, 0u);

  // Smaller batches recycle the same (capacity-preserving) buffers.
  const Tensor small = Tensor::randn({2, 16}, rng);
  model.infer_into(small, out, ctx);  // shape warmup outside the counter
  std::uint64_t small_allocs = 0;
  {
    CountAllocs counter;
    for (int i = 0; i < 16; ++i) model.infer_into(small, out, ctx);
    small_allocs = CountAllocs::count();
  }
  EXPECT_EQ(small_allocs, 0u);
}

TEST(ZeroAllocTest, WarmedQuantizedDecodeMakesNoHeapAllocations) {
  // The int8 uplink decode path (Sequential::infer_quantized_into feeding
  // Backend::gemm_quantized) must meet the same zero-allocation bar as the
  // float path: after warmup, codes in -> reconstruction out touches no
  // allocator.
  SerialBlockedScope kernels;
  common::Pcg32 rng(29);
  nn::Sequential model;
  model.emplace<nn::Dense>(16, 64, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dense>(64, 64, rng);
  model.emplace<nn::Sigmoid>();
  model.set_weight_prepack(true);

  // Wire-format stand-ins: 8x16 uint8 codes with per-row affine headers.
  std::vector<std::uint8_t> codes(8 * 16);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<std::uint8_t>((i * 37 + 11) & 0xFF);
  }
  std::vector<float> lo(8), scale(8);
  for (std::size_t i = 0; i < 8; ++i) {
    lo[i] = -0.5f + 0.1f * static_cast<float>(i);
    scale[i] = 1.5f / 255.0f;
  }
  const tensor::QuantHeader qh{lo.data(), scale.data()};

  InferContext ctx;
  Tensor out;
  model.infer_quantized_into(codes.data(), qh, 8, 16, out, ctx);
  model.infer_quantized_into(codes.data(), qh, 8, 16, out, ctx);

  std::uint64_t allocs = 0;
  {
    CountAllocs counter;
    for (int i = 0; i < 16; ++i) {
      model.infer_quantized_into(codes.data(), qh, 8, 16, out, ctx);
    }
    allocs = CountAllocs::count();
  }
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(out.dim(1), 64u);

  // Smaller batches through the same warmed context stay allocation-free.
  model.infer_quantized_into(codes.data(), qh, 3, 16, out, ctx);
  std::uint64_t small_allocs = 0;
  {
    CountAllocs counter;
    for (int i = 0; i < 16; ++i) {
      model.infer_quantized_into(codes.data(), qh, 3, 16, out, ctx);
    }
    small_allocs = CountAllocs::count();
  }
  EXPECT_EQ(small_allocs, 0u);
}

TEST(ZeroAllocTest, WarmedPlanExecutorMakesNoHeapAllocations) {
  // The compiled-plan executor must meet the same bar as (and eventually
  // replaces) Sequential::infer_into on serving paths: after one warmup
  // run at the high-water batch, run() touches no allocator — kernels come
  // pre-resolved, panels pre-packed, the arena pre-reserved.
  SerialBlockedScope kernels;
  common::Pcg32 rng(37);
  nn::Sequential model;
  model.emplace<nn::Dense>(16, 64, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dense>(64, 64, rng);
  model.emplace<nn::Sigmoid>();

  const auto plan = nn::InferPlan::compile(model);
  InferContext ctx;
  Tensor out;
  const Tensor x = Tensor::randn({8, 16}, rng);
  plan->run(x, out, ctx);
  plan->run(x, out, ctx);

  std::uint64_t allocs = 0;
  {
    CountAllocs counter;
    for (int i = 0; i < 16; ++i) plan->run(x, out, ctx);
    allocs = CountAllocs::count();
  }
  EXPECT_EQ(allocs, 0u);

  // Quantized head entry through the same warmed plan and context.
  std::vector<std::uint8_t> codes(8 * 16);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<std::uint8_t>((i * 53 + 5) & 0xFF);
  }
  std::vector<float> lo(8, -0.5f), scale(8, 1.5f / 255.0f);
  const tensor::QuantHeader qh{lo.data(), scale.data()};
  plan->run_quantized(codes.data(), qh, 8, 16, out, ctx);
  std::uint64_t q_allocs = 0;
  {
    CountAllocs counter;
    for (int i = 0; i < 16; ++i) {
      plan->run_quantized(codes.data(), qh, 8, 16, out, ctx);
    }
    q_allocs = CountAllocs::count();
  }
  EXPECT_EQ(q_allocs, 0u);
}

TEST(ZeroAllocTest, WarmedConvPlanExecutorMakesNoHeapAllocations) {
  // Conv plans carry arena scratch (im2col): the compile-time high-water
  // makes the first run() reserve once, so warmed runs stay off the
  // allocator with zero arena growth.
  SerialBlockedScope kernels;
  common::Pcg32 rng(43);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(1, 4, 3, 1, 1, 8, 8, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::ConvTranspose2d>(4, 1, 2, 2, 0, 8, 8, rng);
  model.emplace<nn::Sigmoid>();

  const auto plan = nn::InferPlan::compile(model);
  InferContext ctx;
  Tensor out;
  const Tensor x = Tensor::randn({4, 64}, rng);
  plan->run(x, out, ctx);
  plan->run(x, out, ctx);

  std::uint64_t allocs = 0;
  {
    CountAllocs counter;
    for (int i = 0; i < 8; ++i) plan->run(x, out, ctx);
    allocs = CountAllocs::count();
  }
  EXPECT_EQ(allocs, 0u);
}

TEST(ZeroAllocTest, NestedChainDecodesZeroAllocAndBitwiseEqualToFlat) {
  // Regression for the retired nested-Sequential escape hatch, which
  // round-tripped every inner layer through freshly allocated tensors:
  // nested containers now flatten at add() time, so a nested chain decodes
  // exactly like its flat equivalent — same bits, zero allocations.
  SerialBlockedScope kernels;

  nn::Sequential flat;
  {
    common::Pcg32 rng(47);
    flat.emplace<nn::Dense>(16, 48, rng);
    flat.emplace<nn::ReLU>();
    flat.emplace<nn::Dense>(48, 48, rng);
    flat.emplace<nn::LeakyReLU>(0.05f);
    flat.emplace<nn::Dense>(48, 64, rng);
    flat.emplace<nn::Sigmoid>();
  }
  nn::Sequential nested;
  {
    // Same seed stream -> identical weights, nested one level deep.
    common::Pcg32 rng(47);
    nested.emplace<nn::Dense>(16, 48, rng);
    nested.emplace<nn::ReLU>();
    auto inner = std::make_unique<nn::Sequential>();
    inner->emplace<nn::Dense>(48, 48, rng);
    inner->emplace<nn::LeakyReLU>(0.05f);
    inner->emplace<nn::Dense>(48, 64, rng);
    nested.add(std::move(inner));
    nested.emplace<nn::Sigmoid>();
  }
  flat.set_weight_prepack(true);
  nested.set_weight_prepack(true);

  common::Pcg32 data_rng(51);
  const Tensor x = Tensor::randn({8, 16}, data_rng);
  InferContext flat_ctx, nested_ctx;
  Tensor flat_out, nested_out;
  flat.infer_into(x, flat_out, flat_ctx);
  nested.infer_into(x, nested_out, nested_ctx);
  ASSERT_EQ(nested_out.shape(), flat_out.shape());
  for (std::size_t i = 0; i < nested_out.numel(); ++i) {
    ASSERT_EQ(nested_out[i], flat_out[i]) << "elem " << i;
  }

  nested.infer_into(x, nested_out, nested_ctx);  // warmup
  std::uint64_t allocs = 0;
  {
    CountAllocs counter;
    for (int i = 0; i < 16; ++i) nested.infer_into(x, nested_out, nested_ctx);
    allocs = CountAllocs::count();
  }
  EXPECT_EQ(allocs, 0u);

  // The plan compiled from the nested chain meets the same bar.
  const auto plan = nn::InferPlan::compile(nested);
  Tensor plan_out;
  plan->run(x, plan_out, nested_ctx);
  for (std::size_t i = 0; i < plan_out.numel(); ++i) {
    ASSERT_EQ(plan_out[i], flat_out[i]) << "plan elem " << i;
  }
  std::uint64_t plan_allocs = 0;
  {
    CountAllocs counter;
    for (int i = 0; i < 16; ++i) plan->run(x, plan_out, nested_ctx);
    plan_allocs = CountAllocs::count();
  }
  EXPECT_EQ(plan_allocs, 0u);
}

TEST(ZeroAllocTest, WarmedConvDecodeMakesNoHeapAllocations) {
  SerialBlockedScope kernels;
  common::Pcg32 rng(13);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(1, 4, 3, 1, 1, 8, 8, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::ConvTranspose2d>(4, 1, 2, 2, 0, 8, 8, rng);
  model.emplace<nn::Sigmoid>();
  model.set_weight_prepack(true);

  InferContext ctx;
  Tensor out;
  const Tensor x = Tensor::randn({4, 64}, rng);
  model.infer_into(x, out, ctx);
  model.infer_into(x, out, ctx);

  std::uint64_t allocs = 0;
  {
    CountAllocs counter;
    for (int i = 0; i < 8; ++i) model.infer_into(x, out, ctx);
    allocs = CountAllocs::count();
  }
  EXPECT_EQ(allocs, 0u);
}

TEST(ZeroAllocTest, ClusterShardStyleSteadyStateDecodeIsAllocationFree) {
  // The exact decode stage ClusterShard::serve_batch runs per batch:
  // assemble coalesced latents into the context's input buffer (one sized
  // row copy each), decode through the tenant's real exported decoder into
  // the worker-owned output buffer. After warmup the whole stage must not
  // touch the allocator — the acceptance bar for this PR.
  SerialBlockedScope kernels;
  core::SystemConfig cfg;
  cfg.orco.input_dim = 64;
  cfg.orco.latent_dim = 16;
  cfg.orco.decoder_layers = 3;
  cfg.orco.seed = 5;
  cfg.orco.prepack_decoder = true;
  cfg.field.device_count = 8;
  cfg.field.radio_range_m = 60.0;
  core::OrcoDcsSystem system(cfg);

  common::Pcg32 rng(17);
  std::vector<Tensor> latents;
  for (int i = 0; i < 8; ++i) latents.push_back(Tensor::randn({16}, rng));

  nn::InferContext ctx;
  Tensor decode_out;
  const auto decode_batch = [&](std::size_t count) {
    Tensor& stacked = ctx.input();
    stacked.resize(count, 16);
    for (std::size_t r = 0; r < count; ++r) {
      const auto src = latents[r].data();
      std::copy(src.begin(), src.end(), stacked.row(r).begin());
    }
    system.edge().decode_inference(stacked, decode_out, ctx);
  };

  decode_batch(8);  // warmup at the high-water batch
  decode_batch(8);
  std::uint64_t allocs = 0;
  {
    CountAllocs counter;
    for (int i = 0; i < 16; ++i) decode_batch(8);
    for (int i = 0; i < 16; ++i) decode_batch(3);  // partial batches too
    allocs = CountAllocs::count();
  }
  EXPECT_EQ(allocs, 0u);
  EXPECT_EQ(decode_out.dim(1), 64u);
}

TEST(ZeroAllocTest, SteadyStateDecodeStaysAllocationFreeWithObservabilityOn) {
  // Same acceptance bar as above with the full observability stack armed:
  // metrics, tracing at rate 1.0 (every decode emits a span into the
  // thread-local ring) and per-kernel/per-layer profiling. The ring and the
  // layer timers are created during warmup; the steady-state record path is
  // plain atomic adds and ring stores, so it must stay off the allocator.
  SerialBlockedScope kernels;
  obs::ObsConfig obs_cfg;
  obs_cfg.trace_sample_rate = 1.0;
  obs_cfg.kernel_profiling = true;
  obs::configure(obs_cfg);

  core::SystemConfig cfg;
  cfg.orco.input_dim = 64;
  cfg.orco.latent_dim = 16;
  cfg.orco.decoder_layers = 3;
  cfg.orco.seed = 5;
  cfg.orco.prepack_decoder = true;
  cfg.field.device_count = 8;
  cfg.field.radio_range_m = 60.0;
  core::OrcoDcsSystem system(cfg);

  common::Pcg32 rng(23);
  std::vector<Tensor> latents;
  for (int i = 0; i < 8; ++i) latents.push_back(Tensor::randn({16}, rng));

  nn::InferContext ctx;
  Tensor decode_out;
  const auto decode_batch = [&](std::size_t count) {
    Tensor& stacked = ctx.input();
    stacked.resize(count, 16);
    for (std::size_t r = 0; r < count; ++r) {
      const auto src = latents[r].data();
      std::copy(src.begin(), src.end(), stacked.row(r).begin());
    }
    system.edge().decode_inference(stacked, decode_out, ctx);
  };

  decode_batch(8);  // warmup: context buffers, weight packs, trace ring
  decode_batch(8);
  std::uint64_t allocs = 0;
  {
    CountAllocs counter;
    for (int i = 0; i < 16; ++i) decode_batch(8);
    allocs = CountAllocs::count();
  }
  obs::configure(obs::ObsConfig{});
  EXPECT_EQ(allocs, 0u);
  EXPECT_GT(obs::TraceCollector::instance().event_count(), 0u);
}

}  // namespace
}  // namespace orco
