// Property tests for the cooperative (distributed) latent computation
// (paper §III-C / eq. 6): for every tree shape, device count and latent
// dimension, the hop-by-hop computation must equal the centralised encoder.
#include <gtest/gtest.h>

#include "core/distributed_encoding.h"
#include "core/models.h"
#include "wsn/field.h"

namespace orco::core {
namespace {

using tensor::Tensor;

struct DistCase {
  std::size_t devices;
  std::size_t latent_dim;
  std::uint64_t seed;
};

void PrintTo(const DistCase& c, std::ostream* os) {
  *os << "devices" << c.devices << "_m" << c.latent_dim << "_seed" << c.seed;
}

class DistributedEncodeSuite : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistributedEncodeSuite, MatchesCentralisedEncoder) {
  const auto param = GetParam();

  wsn::FieldConfig field_cfg;
  field_cfg.device_count = param.devices;
  field_cfg.side_m = 80.0;
  field_cfg.radio_range_m = 50.0;
  field_cfg.seed = param.seed;
  const wsn::Field field(field_cfg);
  const wsn::AggregationTree tree(field, wsn::RadioModel{});

  OrcoConfig cfg;
  cfg.input_dim = param.devices;  // one scalar reading per device
  cfg.latent_dim = param.latent_dim;
  common::Pcg32 rng(param.seed * 31 + 1);
  const auto encoder = build_encoder(cfg, rng);

  const auto shares = make_encoder_shares(*encoder, param.devices);
  const DistributedEncoder dist(tree, shares);

  common::Pcg32 data_rng(param.seed * 7 + 5);
  const Tensor readings = Tensor::uniform({param.devices}, data_rng);

  const Tensor distributed = dist.encode(readings);

  // Centralised: sigma(We x + b) through the actual encoder model.
  const Tensor central =
      encoder->forward(readings.reshaped({1, param.devices}), false)
          .reshaped({param.latent_dim});

  ASSERT_EQ(distributed.shape(), central.shape());
  EXPECT_TRUE(distributed.allclose(central, 1e-4f))
      << "max diff " << (distributed - central).abs_max();
}

TEST_P(DistributedEncodeSuite, TrafficRespectsHybridCap) {
  const auto param = GetParam();
  wsn::FieldConfig field_cfg;
  field_cfg.device_count = param.devices;
  field_cfg.side_m = 80.0;
  field_cfg.radio_range_m = 50.0;
  field_cfg.seed = param.seed;
  const wsn::Field field(field_cfg);
  const wsn::AggregationTree tree(field, wsn::RadioModel{});

  OrcoConfig cfg;
  cfg.input_dim = param.devices;
  cfg.latent_dim = param.latent_dim;
  common::Pcg32 rng(param.seed + 17);
  const auto encoder = build_encoder(cfg, rng);
  const DistributedEncoder dist(tree,
                                make_encoder_shares(*encoder, param.devices));

  common::Pcg32 data_rng(param.seed + 23);
  const Tensor readings = Tensor::uniform({param.devices}, data_rng);
  std::vector<NodeTraffic> traffic;
  (void)dist.encode(readings, &traffic);

  for (wsn::NodeId u = 0; u < traffic.size(); ++u) {
    if (u == tree.root()) continue;
    const auto& t = traffic[u];
    // A node sends either raw readings (fewer than M of them) or the
    // M-dim partial plus raws not yet folded; never more than M raws.
    EXPECT_LE(t.raw_values, param.latent_dim);
    if (tree.subtree_size(u) >= param.latent_dim) {
      EXPECT_EQ(t.partial_values, param.latent_dim);
      EXPECT_EQ(t.raw_values, 0u);
    } else {
      EXPECT_EQ(t.partial_values, 0u);
      EXPECT_EQ(t.raw_values, tree.subtree_size(u));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    TreeShapes, DistributedEncodeSuite,
    ::testing::Values(DistCase{8, 4, 1}, DistCase{8, 16, 2},
                      DistCase{16, 4, 3}, DistCase{24, 8, 4},
                      DistCase{32, 8, 5}, DistCase{32, 32, 6},
                      DistCase{48, 12, 7}, DistCase{12, 3, 8}),
    [](const ::testing::TestParamInfo<DistCase>& info) {
      return "devices" + std::to_string(info.param.devices) + "_m" +
             std::to_string(info.param.latent_dim) + "_seed" +
             std::to_string(info.param.seed);
    });

TEST(DistributedEncoderTest, ValidatesShareCount) {
  wsn::FieldConfig field_cfg;
  field_cfg.device_count = 6;
  field_cfg.radio_range_m = 60.0;
  const wsn::Field field(field_cfg);
  const wsn::AggregationTree tree(field, wsn::RadioModel{});
  OrcoConfig cfg;
  cfg.input_dim = 5;  // wrong: 6 devices
  cfg.latent_dim = 3;
  common::Pcg32 rng(1);
  const auto encoder = build_encoder(cfg, rng);
  EXPECT_THROW(DistributedEncoder(tree, make_encoder_shares(*encoder, 5)),
               std::invalid_argument);
}

TEST(DistributedEncoderTest, ValidatesReadingCount) {
  wsn::FieldConfig field_cfg;
  field_cfg.device_count = 6;
  field_cfg.radio_range_m = 60.0;
  const wsn::Field field(field_cfg);
  const wsn::AggregationTree tree(field, wsn::RadioModel{});
  OrcoConfig cfg;
  cfg.input_dim = 6;
  cfg.latent_dim = 3;
  common::Pcg32 rng(2);
  const auto encoder = build_encoder(cfg, rng);
  const DistributedEncoder dist(tree, make_encoder_shares(*encoder, 6));
  EXPECT_THROW((void)dist.encode(Tensor({5})), std::invalid_argument);
}

TEST(DistributedEncoderTest, DeviceMappingSkipsRoot) {
  wsn::FieldConfig field_cfg;
  field_cfg.device_count = 6;
  field_cfg.radio_range_m = 60.0;
  const wsn::Field field(field_cfg);
  const wsn::AggregationTree tree(field, wsn::RadioModel{});
  OrcoConfig cfg;
  cfg.input_dim = 6;
  cfg.latent_dim = 2;
  common::Pcg32 rng(3);
  const auto encoder = build_encoder(cfg, rng);
  const DistributedEncoder dist(tree, make_encoder_shares(*encoder, 6));
  EXPECT_THROW((void)dist.device_for_node(tree.root()),
               std::invalid_argument);
  std::set<std::size_t> devices;
  for (wsn::NodeId n = 0; n < field.node_count(); ++n) {
    if (n == tree.root()) continue;
    devices.insert(dist.device_for_node(n));
  }
  EXPECT_EQ(devices.size(), 6u);
}

}  // namespace
}  // namespace orco::core
