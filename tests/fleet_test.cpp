// Tests for the multi-edge fleet (src/fleet): consistent-hash ring
// properties (balance + bounded remap), delta-encoded snapshot replication
// (changed-blobs-only shipping, zero-copy apply), the crash-safe cold tier
// (ColdStore + OrcoDcsSystem checkpoint atomicity, truncated-file
// rejection), warm/cold tiering (bounded residency, bitwise-equal cold
// wake, single-flight thundering-herd collapse) and the runtime/trainer
// unregister paths the fleet's demotion relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/serialize.h"
#include "fleet/fleet.h"
#include "nn/model_io.h"
#include "serve/serve.h"
#include "train/train.h"

#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define ORCO_SANITIZED_BUILD 1
#endif
#elif defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define ORCO_SANITIZED_BUILD 1
#endif

namespace orco::fleet {
namespace {

using serve::DecodeResponse;
using serve::ResponseStatus;
using tensor::Tensor;

#ifdef ORCO_SANITIZED_BUILD
constexpr int kDeadlineStretch = 10;
#else
constexpr int kDeadlineStretch = 1;
#endif

constexpr std::size_t kInputDim = 64;
constexpr std::size_t kLatentDim = 16;

core::SystemConfig tiny_system() {
  core::SystemConfig cfg;
  cfg.orco.input_dim = kInputDim;
  cfg.orco.latent_dim = kLatentDim;
  cfg.orco.decoder_layers = 1;
  cfg.orco.batch_size = 16;
  cfg.orco.seed = 42;
  cfg.field.device_count = 4;
  cfg.field.radio_range_m = 60.0;
  return cfg;
}

FleetConfig tiny_fleet(const std::string& cold_dir) {
  FleetConfig cfg;
  cfg.replicas = 2;
  cfg.vnodes = 64;
  cfg.warm_capacity = 8;
  cfg.cold_dir = cold_dir;
  cfg.system = tiny_system();
  cfg.serve.shard_count = 2;
  return cfg;
}

/// Fresh (pre-cleaned) per-test cold-tier directory: stale records from a
/// previous run must not leak into residency/counter expectations.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/orco_fleet_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

data::Dataset tiny_dataset(std::size_t count, std::uint64_t seed) {
  common::Pcg32 rng(seed);
  Tensor images = Tensor::uniform({count, kInputDim}, rng);
  return data::Dataset("tiny", data::ImageGeometry{1, 8, 8},
                       /*num_classes=*/1, std::move(images),
                       std::vector<std::size_t>(count, 0));
}

// ---- hash ring --------------------------------------------------------------

TEST(HashRingTest, BalancesLoadAcrossReplicas) {
  constexpr std::size_t kReplicas = 4;
  constexpr std::size_t kKeys = 20000;
  HashRing ring(kReplicas, /*vnodes=*/128);
  std::vector<std::size_t> counts(kReplicas, 0);
  for (std::size_t k = 0; k < kKeys; ++k) {
    ++counts[ring.route(k * 2654435761ULL + 7)];
  }
  const double expected = static_cast<double>(kKeys) / kReplicas;
  double chi2 = 0.0;
  for (std::size_t r = 0; r < kReplicas; ++r) {
    const double dev = static_cast<double>(counts[r]) - expected;
    chi2 += dev * dev / expected;
    // Per-replica share within 35% of fair — with 128 vnodes the share's
    // coefficient of variation is ~1/sqrt(128) ~ 9%, so this is a ~4 sigma
    // bound, while a degenerate ring (one replica owning half the space)
    // deviates by 100%.
    EXPECT_NEAR(static_cast<double>(counts[r]), expected, 0.35 * expected)
        << "replica " << r;
  }
  EXPECT_LT(chi2, 2500.0);
}

TEST(HashRingTest, AddingReplicaMovesOnlyKeysToNewReplica) {
  constexpr std::size_t kKeys = 20000;
  HashRing before(4, 128);
  HashRing after = before;
  after.add_replica(4);
  std::size_t moved = 0;
  for (std::size_t k = 0; k < kKeys; ++k) {
    const std::uint64_t key = k * 0x9e3779b97f4a7c15ULL + 3;
    const std::uint32_t a = before.route(key);
    const std::uint32_t b = after.route(key);
    if (a != b) {
      ++moved;
      // Consistency: a key that changes owner can only have been claimed
      // by the new replica's points.
      EXPECT_EQ(b, 4u) << "key moved between pre-existing replicas";
    }
  }
  // Fair share of a 5th replica is 20%; bound with generous slack.
  EXPECT_GT(moved, 0u);
  EXPECT_LT(static_cast<double>(moved) / kKeys, 0.35);
}

TEST(HashRingTest, RemovingReplicaMovesOnlyItsKeys) {
  constexpr std::size_t kKeys = 20000;
  HashRing before(4, 128);
  HashRing after = before;
  ASSERT_TRUE(after.remove_replica(2));
  ASSERT_FALSE(after.remove_replica(2));
  std::size_t moved = 0;
  for (std::size_t k = 0; k < kKeys; ++k) {
    const std::uint64_t key = k * 0x9e3779b97f4a7c15ULL + 3;
    const std::uint32_t a = before.route(key);
    const std::uint32_t b = after.route(key);
    if (a == 2u) {
      ++moved;
      EXPECT_NE(b, 2u);
    } else {
      // Every other tenant keeps its owner — the property that makes
      // topology changes cheap for warm state.
      EXPECT_EQ(a, b);
    }
  }
  EXPECT_LT(static_cast<double>(moved) / kKeys, 0.35);
}

TEST(HashRingTest, RoutingIsDeterministic) {
  HashRing a(3, 96);
  HashRing b(3, 96);
  for (std::uint64_t key = 0; key < 512; ++key) {
    EXPECT_EQ(a.route(key), b.route(key));
  }
}

// ---- delta replication ------------------------------------------------------

TEST(ReplicationTest, DeltaShipsOnlyChangedParamsAndAppliesWithoutCopies) {
  core::OrcoDcsSystem system(tiny_system());
  nn::Sequential& decoder = system.edge().decoder();
  const SnapshotImage base = image_of(decoder, 1);
  ASSERT_GT(base.params.size(), 1u);

  // Perturb exactly one parameter tensor.
  decoder.params()[0].value->data()[0] += 1.0f;
  decoder.invalidate_weight_cache();
  const SnapshotImage next = image_of(decoder, 2);

  const std::uint64_t copies_before = blob_copy_count();
  const SnapshotDelta delta = make_delta(base, next);
  const SnapshotImage applied = apply_delta(base, delta);
  EXPECT_EQ(blob_copy_count(), copies_before)
      << "make_delta/apply_delta must only alias blobs, never copy bytes";

  ASSERT_EQ(delta.changed.size(), 1u);
  EXPECT_EQ(delta.changed_index[0], 0u);
  EXPECT_EQ(delta.param_count, base.params.size());
  EXPECT_FALSE(delta.full());
  EXPECT_EQ(delta.byte_size(), next.params[0].bytes->size());

  ASSERT_EQ(applied.params.size(), next.params.size());
  EXPECT_EQ(applied.version, 2u);
  // Changed slot aliases the delta's blob; unchanged slots alias the base.
  EXPECT_EQ(applied.params[0].bytes.get(), next.params[0].bytes.get());
  for (std::size_t i = 1; i < applied.params.size(); ++i) {
    EXPECT_EQ(applied.params[i].bytes.get(), base.params[i].bytes.get());
  }
  // Materialized bytes are exactly the next generation's.
  for (std::size_t i = 0; i < applied.params.size(); ++i) {
    EXPECT_TRUE(*applied.params[i].bytes == *next.params[i].bytes);
  }
}

TEST(ReplicationTest, BaseVersionMismatchThrows) {
  core::OrcoDcsSystem system(tiny_system());
  nn::Sequential& decoder = system.edge().decoder();
  const SnapshotImage v1 = image_of(decoder, 1);
  decoder.params()[0].value->data()[0] += 1.0f;
  decoder.invalidate_weight_cache();
  const SnapshotImage v2 = image_of(decoder, 2);
  const SnapshotDelta delta = make_delta(v1, v2);
  // A follower holding v2 (not the delta's base v1) must reject.
  EXPECT_THROW((void)apply_delta(v2, delta), std::exception);
}

TEST(ReplicationTest, LoadImageRestoresWeightsBitwise) {
  core::OrcoDcsSystem trained(tiny_system());
  trained.edge().decoder().params()[0].value->data()[0] += 0.5f;
  trained.edge().decoder().invalidate_weight_cache();
  const SnapshotImage image = image_of(trained.edge().decoder(), 7);

  auto fresh_cfg = tiny_system();
  fresh_cfg.orco.seed = 99;  // different init; load_image must overwrite it
  core::OrcoDcsSystem fresh(fresh_cfg);
  load_image(fresh.edge().decoder(), image);
  const SnapshotImage round_trip = image_of(fresh.edge().decoder(), 7);
  ASSERT_EQ(round_trip.params.size(), image.params.size());
  for (std::size_t i = 0; i < image.params.size(); ++i) {
    EXPECT_TRUE(*round_trip.params[i].bytes == *image.params[i].bytes);
  }
}

// ---- cold store + crash-safe checkpoints ------------------------------------

TEST(ColdStoreTest, RoundTripsRecordAtomically) {
  ColdStore store(fresh_dir("cold_roundtrip"));
  core::OrcoDcsSystem system(tiny_system());
  ColdRecord record;
  record.model_version = 17;
  record.policy.priority = serve::Priority::kHigh;
  record.policy.queue_quota = 5;
  record.policy.weight = 2.5;
  record.encoder_params = nn::save_params(system.aggregator().encoder());
  record.decoder_params = nn::save_params(system.edge().decoder());
  store.save(77, record);

  EXPECT_TRUE(store.contains(77));
  EXPECT_FALSE(store.contains(78));
  EXPECT_FALSE(std::filesystem::exists(store.path_for(77) + ".tmp"))
      << "atomic write must not leave its temp file behind";

  const ColdRecord loaded = store.load(77);
  EXPECT_EQ(loaded.model_version, 17u);
  EXPECT_EQ(loaded.policy.priority, serve::Priority::kHigh);
  EXPECT_EQ(loaded.policy.queue_quota, 5u);
  EXPECT_DOUBLE_EQ(loaded.policy.weight, 2.5);
  EXPECT_TRUE(loaded.encoder_params == record.encoder_params);
  EXPECT_TRUE(loaded.decoder_params == record.decoder_params);
  EXPECT_EQ(store.saves(), 1u);
  EXPECT_EQ(store.loads(), 1u);

  EXPECT_TRUE(store.remove(77));
  EXPECT_FALSE(store.remove(77));
  EXPECT_FALSE(store.contains(77));
}

TEST(ColdStoreTest, TruncatedRecordIsRejected) {
  ColdStore store(fresh_dir("cold_truncated"));
  core::OrcoDcsSystem system(tiny_system());
  ColdRecord record;
  record.encoder_params = nn::save_params(system.aggregator().encoder());
  record.decoder_params = nn::save_params(system.edge().decoder());
  store.save(5, record);

  // Simulate the torn write the atomic rename prevents.
  const auto full = common::read_file(store.path_for(5));
  common::write_file(store.path_for(5),
                     std::span<const std::byte>(full).first(full.size() / 2));
  EXPECT_THROW((void)store.load(5), std::exception);

  // Wrong-tenant file is rejected too.
  common::write_file(store.path_for(6), full);
  EXPECT_THROW((void)store.load(6), std::exception);
}

TEST(CheckpointTest, SaveIsAtomicAndTruncatedLoadThrows) {
  core::OrcoDcsSystem system(tiny_system());
  const std::string path =
      ::testing::TempDir() + "/orco_fleet_ckpt_atomic.bin";
  system.save_checkpoint(path);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"))
      << "save_checkpoint must rename its temp file away";

  const auto full = common::read_file(path);
  common::write_file(path,
                     std::span<const std::byte>(full).first(full.size() / 2));
  core::OrcoDcsSystem other(tiny_system());
  EXPECT_THROW(other.load_checkpoint(path), std::exception);

  // The intact bytes restore fine — the failure above was the truncation.
  common::write_file(path, full);
  other.load_checkpoint(path);
}

// ---- residency --------------------------------------------------------------

TEST(ResidencyTest, VictimsAreLeastRecentlyStamped) {
  ResidencyManager residency(2);
  std::map<ClusterId, std::uint64_t> stamps;
  residency.add_warm(1);
  stamps[1] = residency.tick();
  residency.add_warm(2);
  stamps[2] = residency.tick();
  residency.add_warm(3);
  stamps[3] = residency.tick();
  EXPECT_TRUE(residency.over_capacity());
  stamps[1] = residency.tick();  // 1 becomes most recent; 2 is now oldest

  const auto victims =
      residency.victims(2, [&](ClusterId id) { return stamps[id]; });
  ASSERT_EQ(victims.size(), 2u);
  EXPECT_EQ(victims[0], 2u);
  EXPECT_EQ(victims[1], 3u);

  residency.remove_warm(2);
  EXPECT_FALSE(residency.over_capacity());
  EXPECT_EQ(residency.warm_count(), 2u);
}

// ---- fleet lifecycle --------------------------------------------------------

TEST(FleetTest, ServesRegisteredTenantsAndBoundsResidency) {
  FleetConfig cfg = tiny_fleet(fresh_dir("residency_bound"));
  cfg.warm_capacity = 3;
  EdgeFleet fleet(cfg);
  for (ClusterId id = 1; id <= 8; ++id) fleet.register_tenant(id);
  EXPECT_EQ(fleet.registered_count(), 8u);
  EXPECT_EQ(fleet.resident_count(), 0u);  // registration is lazy
  fleet.start();

  common::Pcg32 rng(7);
  for (ClusterId id = 1; id <= 8; ++id) {
    const Tensor latent = Tensor::uniform({1, kLatentDim}, rng);
    const DecodeResponse response = fleet.submit(id, latent).get();
    EXPECT_EQ(response.status, ResponseStatus::kOk) << "tenant " << id;
    EXPECT_GE(response.model_version, 1u);
    EXPECT_LE(fleet.resident_count(), cfg.warm_capacity);
  }
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.cold_builds, 8u);  // every tenant built once
  EXPECT_GE(stats.demotions, 5u);    // 8 tenants through 3 warm slots
  EXPECT_LE(stats.resident, cfg.warm_capacity);

  // Unknown tenants are refused without growing any state.
  EXPECT_EQ(fleet.submit(999, Tensor({1, kLatentDim})).get().status,
            ResponseStatus::kUnknownCluster);
  fleet.shutdown();
  EXPECT_EQ(fleet.submit(1, Tensor({1, kLatentDim})).get().status,
            ResponseStatus::kShutdown);
}

TEST(FleetTest, ColdWakeReconstructsBitwiseEqual) {
  FleetConfig cfg = tiny_fleet(fresh_dir("cold_bitwise_a"));
  EdgeFleet fleet(cfg);
  fleet.register_tenant(11);
  fleet.start();
  common::Pcg32 rng(21);
  const Tensor latent = Tensor::uniform({1, kLatentDim}, rng);

  const DecodeResponse warm_response = fleet.submit(11, latent).get();
  ASSERT_EQ(warm_response.status, ResponseStatus::kOk);

  ASSERT_TRUE(fleet.demote(11));
  EXPECT_FALSE(fleet.resident(11));
  EXPECT_TRUE(fleet.cold_store().contains(11));

  const DecodeResponse woken_response = fleet.submit(11, latent).get();
  ASSERT_EQ(woken_response.status, ResponseStatus::kOk);
  EXPECT_TRUE(fleet.resident(11));
  EXPECT_TRUE(woken_response.reconstruction.allclose(
      warm_response.reconstruction, 0.0f))
      << "cold wake must reconstruct bitwise-identically to the warm run";
  EXPECT_EQ(woken_response.model_version, warm_response.model_version);

  // And identically to a fleet that never demoted (fresh cold dir).
  FleetConfig always_warm_cfg = tiny_fleet(fresh_dir("cold_bitwise_b"));
  EdgeFleet always_warm(always_warm_cfg);
  always_warm.register_tenant(11);
  always_warm.start();
  const DecodeResponse reference = always_warm.submit(11, latent).get();
  ASSERT_EQ(reference.status, ResponseStatus::kOk);
  EXPECT_TRUE(
      woken_response.reconstruction.allclose(reference.reconstruction, 0.0f));
}

TEST(FleetTest, ThunderingHerdColdWakeLoadsOnce) {
  FleetConfig cfg = tiny_fleet(fresh_dir("single_flight"));
  EdgeFleet fleet(cfg);
  fleet.register_tenant(3);
  fleet.start();
  common::Pcg32 rng(5);
  const Tensor latent = Tensor::uniform({1, kLatentDim}, rng);
  const DecodeResponse warm_response = fleet.submit(3, latent).get();
  ASSERT_EQ(warm_response.status, ResponseStatus::kOk);
  ASSERT_TRUE(fleet.demote(3));
  ASSERT_EQ(fleet.cold_store().loads(), 0u);

  constexpr int kWakers = 8;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  std::vector<DecodeResponse> responses(kWakers);
  for (int w = 0; w < kWakers; ++w) {
    threads.emplace_back([&, w] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      responses[w] = fleet.submit(3, latent).get();
    });
  }
  while (ready.load() < kWakers) std::this_thread::yield();
  go.store(true);
  for (auto& thread : threads) thread.join();

  for (int w = 0; w < kWakers; ++w) {
    EXPECT_EQ(responses[w].status, ResponseStatus::kOk) << "waker " << w;
    EXPECT_TRUE(responses[w].reconstruction.allclose(
        warm_response.reconstruction, 0.0f));
  }
  // The herd collapsed onto exactly one cold-tier read.
  EXPECT_EQ(fleet.cold_store().loads(), 1u);
  EXPECT_EQ(fleet.stats().cold_wakes, 1u);
}

TEST(FleetTest, ReplicatesSnapshotsToFollowerWithDeltas) {
  FleetConfig cfg = tiny_fleet(fresh_dir("replication"));
  EdgeFleet fleet(cfg);
  const ClusterId id = 4;
  fleet.register_tenant(id);
  fleet.start();
  fleet.warm(id);

  const std::uint32_t owner = fleet.owner_of(id);
  const std::size_t follower = (owner + 1) % fleet.cell_count();
  const SnapshotImage standby_v1 = fleet.replicated_image(follower, id);
  ASSERT_FALSE(standby_v1.empty()) << "activation publish must replicate";
  EXPECT_EQ(standby_v1.version, 1u);
  EXPECT_GE(fleet.stats().full_ships, 1u);

  // Re-publish the same weights at a later version: the tenant's system is
  // seeded deterministically from (template seed, id), so an identical
  // twin produces a bitwise-identical image — the delta must carry zero
  // blobs and the follower must keep aliasing every standby blob.
  core::SystemConfig twin_cfg = cfg.system;
  twin_cfg.orco.seed = HashRing::mix(twin_cfg.orco.seed ^ id);
  core::OrcoDcsSystem twin(twin_cfg);
  auto snapshot = std::make_shared<train::ModelSnapshot>();
  snapshot->version = 5;
  snapshot->decoder =
      std::shared_ptr<const nn::Sequential>(twin.export_decoder_clone());
  snapshot->latent_dim = kLatentDim;
  snapshot->output_dim = kInputDim;
  const std::uint64_t deltas_before = fleet.stats().deltas_shipped;
  fleet.cell_registry(owner)->publish(id, std::move(snapshot));

  const SnapshotImage standby_v5 = fleet.replicated_image(follower, id);
  EXPECT_EQ(standby_v5.version, 5u);
  const FleetStats stats = fleet.stats();
  EXPECT_EQ(stats.deltas_shipped, deltas_before + 1);
  EXPECT_EQ(stats.delta_bytes, 0u) << "identical weights must ship no bytes";
  ASSERT_EQ(standby_v5.params.size(), standby_v1.params.size());
  for (std::size_t i = 0; i < standby_v5.params.size(); ++i) {
    EXPECT_EQ(standby_v5.params[i].bytes.get(), standby_v1.params[i].bytes.get())
        << "unchanged standby blob " << i << " was re-copied";
  }
}

TEST(FleetTest, TrainedFleetServesOneCoherentVersionPerRequest) {
  FleetConfig cfg = tiny_fleet(fresh_dir("trained"));
  cfg.trainer_threads = 1;
  cfg.trainer.queue_capacity = 4;
  EdgeFleet fleet(cfg);
  const ClusterId id = 9;
  fleet.register_tenant(id);
  fleet.start();
  fleet.warm(id);

  train::TrainerRuntime* trainer = fleet.cell_trainer(fleet.owner_of(id));
  ASSERT_NE(trainer, nullptr);
  auto job = trainer->submit_job(id, tiny_dataset(32, 3), /*epochs=*/1);

  common::Pcg32 rng(13);
  std::vector<std::future<DecodeResponse>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(fleet.submit(id, Tensor::uniform({1, kLatentDim}, rng)));
  }
  std::uint64_t max_version = 0;
  for (auto& future : futures) {
    const DecodeResponse response = future.get();
    ASSERT_TRUE(response.status == ResponseStatus::kOk ||
                response.status == ResponseStatus::kShed)
        << to_string(response.status);
    if (response.status == ResponseStatus::kOk) {
      EXPECT_GE(response.model_version, 1u);
      max_version = std::max(max_version, response.model_version);
    }
  }
  const train::TrainResult result = job.get();
  EXPECT_EQ(result.outcome, train::JobOutcome::kCompleted);
  EXPECT_GT(result.published_version, 1u);

  // Post-training traffic serves the published generation (monotonic).
  const DecodeResponse after = fleet.submit(id, Tensor({1, kLatentDim})).get();
  ASSERT_EQ(after.status, ResponseStatus::kOk);
  EXPECT_GE(after.model_version, max_version);
  EXPECT_GE(after.model_version, result.published_version);

  // Demotion persists the trained generation; reactivation resumes it.
  ASSERT_TRUE(fleet.demote(id));
  const DecodeResponse woken = fleet.submit(id, Tensor({1, kLatentDim})).get();
  ASSERT_EQ(woken.status, ResponseStatus::kOk);
  EXPECT_GE(woken.model_version, result.published_version);
}

// ---- unregister paths the fleet's demotion depends on -----------------------

TEST(ServerRuntimeTest, UnregisterClusterReclaimsTenant) {
  serve::ServeConfig cfg;
  cfg.shard_count = 2;
  serve::ServerRuntime runtime(cfg);
  auto system = std::make_shared<core::OrcoDcsSystem>(tiny_system());
  runtime.register_cluster(1, system);
  runtime.start();
  EXPECT_EQ(runtime.submit(1, Tensor({1, kLatentDim})).get().status,
            ResponseStatus::kOk);
  EXPECT_TRUE(runtime.unregister_cluster(1));
  EXPECT_EQ(runtime.submit(1, Tensor({1, kLatentDim})).get().status,
            ResponseStatus::kUnknownCluster);
  EXPECT_FALSE(runtime.unregister_cluster(1));
  // Re-registration after unregister works (the fleet's rewake path).
  runtime.register_cluster(1, system);
  EXPECT_EQ(runtime.submit(1, Tensor({1, kLatentDim})).get().status,
            ResponseStatus::kOk);
  runtime.shutdown();
}

TEST(TrainerRuntimeTest, UnregisterRefusedWhileTenantBusy) {
  train::TrainerConfig cfg;
  cfg.worker_threads = 1;
  train::TrainerRuntime trainer(cfg);
  auto system = std::make_shared<core::OrcoDcsSystem>(tiny_system());
  trainer.register_tenant(1, system);

  // Queued (runtime not started): the tenant is not quiescent.
  auto job = trainer.submit_job(1, tiny_dataset(32, 11), /*epochs=*/1);
  EXPECT_FALSE(trainer.unregister_tenant(1));

  trainer.start();
  EXPECT_EQ(job.get().outcome, train::JobOutcome::kCompleted);
  // The worker decrements its active-job mark just after resolving the
  // future; spin briefly until the tenant reads as quiescent.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5 * kDeadlineStretch);
  bool removed = false;
  while (!removed && std::chrono::steady_clock::now() < deadline) {
    removed = trainer.unregister_tenant(1);
    if (!removed) std::this_thread::yield();
  }
  EXPECT_TRUE(removed);
  EXPECT_FALSE(trainer.unregister_tenant(1));  // already gone
  EXPECT_EQ(trainer.submit_job(1, tiny_dataset(32, 12)).get().outcome,
            train::JobOutcome::kRejected);
  trainer.shutdown();
}

}  // namespace
}  // namespace orco::fleet
