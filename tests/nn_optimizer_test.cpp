// Optimizer tests: exact step semantics and convergence behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace orco::nn {
namespace {

using tensor::Tensor;

// A single scalar "parameter" wrapped in ParamViews for direct testing.
struct ScalarParam {
  Tensor value{tensor::Shape{1}};
  Tensor grad{tensor::Shape{1}};
  std::vector<ParamView> views() { return {{"w", &value, &grad}}; }
};

TEST(SgdTest, PlainStepIsLrTimesGrad) {
  ScalarParam p;
  p.value[0] = 1.0f;
  p.grad[0] = 0.5f;
  Sgd sgd(p.views(), /*lr=*/0.1f);
  sgd.step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.1f * 0.5f, 1e-7f);
}

TEST(SgdTest, MomentumAccumulatesVelocity) {
  ScalarParam p;
  p.value[0] = 0.0f;
  Sgd sgd(p.views(), /*lr=*/1.0f, /*momentum=*/0.5f);
  p.grad[0] = 1.0f;
  sgd.step();  // v=1, w=-1
  EXPECT_NEAR(p.value[0], -1.0f, 1e-7f);
  sgd.step();  // v=0.5*1+1=1.5, w=-2.5
  EXPECT_NEAR(p.value[0], -2.5f, 1e-7f);
}

TEST(SgdTest, WeightDecayShrinksParameters) {
  ScalarParam p;
  p.value[0] = 2.0f;
  p.grad[0] = 0.0f;
  Sgd sgd(p.views(), /*lr=*/0.1f, /*momentum=*/0.0f, /*weight_decay=*/0.5f);
  sgd.step();
  EXPECT_NEAR(p.value[0], 2.0f - 0.1f * 0.5f * 2.0f, 1e-7f);
}

TEST(SgdTest, ZeroGradClearsAllGradients) {
  ScalarParam p;
  p.grad[0] = 3.0f;
  Sgd sgd(p.views(), 0.1f);
  sgd.zero_grad();
  EXPECT_FLOAT_EQ(p.grad[0], 0.0f);
}

TEST(SgdTest, ValidatesHyperparameters) {
  ScalarParam p;
  EXPECT_THROW(Sgd(p.views(), 0.0f), std::invalid_argument);
  EXPECT_THROW(Sgd(p.views(), 0.1f, 1.0f), std::invalid_argument);
  EXPECT_THROW(Sgd(p.views(), 0.1f, 0.0f, -1.0f), std::invalid_argument);
  Sgd ok(p.views(), 0.1f);
  EXPECT_THROW(ok.set_learning_rate(-0.5f), std::invalid_argument);
  ok.set_learning_rate(0.2f);
  EXPECT_FLOAT_EQ(ok.learning_rate(), 0.2f);
}

TEST(SgdTest, ConvergesOnQuadraticBowl) {
  // minimise f(w) = (w - 3)^2 by hand-fed gradients.
  ScalarParam p;
  p.value[0] = -5.0f;
  Sgd sgd(p.views(), 0.1f, 0.9f);
  for (int i = 0; i < 200; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    sgd.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-3f);
}

TEST(AdamTest, FirstStepHasLrMagnitude) {
  // With bias correction the first Adam step is ~lr * sign(grad).
  ScalarParam p;
  p.value[0] = 0.0f;
  p.grad[0] = 123.0f;
  Adam adam(p.views(), /*lr=*/0.01f);
  adam.step();
  EXPECT_NEAR(p.value[0], -0.01f, 1e-4f);
}

TEST(AdamTest, ConvergesOnQuadraticBowl) {
  ScalarParam p;
  p.value[0] = 10.0f;
  Adam adam(p.views(), 0.2f);
  for (int i = 0; i < 400; ++i) {
    p.grad[0] = 2.0f * (p.value[0] - 3.0f);
    adam.step();
  }
  EXPECT_NEAR(p.value[0], 3.0f, 1e-2f);
}

TEST(AdamTest, ValidatesHyperparameters) {
  ScalarParam p;
  EXPECT_THROW(Adam(p.views(), -0.1f), std::invalid_argument);
  EXPECT_THROW(Adam(p.views(), 0.1f, 1.0f), std::invalid_argument);
  EXPECT_THROW(Adam(p.views(), 0.1f, 0.9f, 1.0f), std::invalid_argument);
}

TEST(OptimizerTest, RejectsNullOrMismatchedViews) {
  Tensor v({2});
  Tensor g({3});
  std::vector<ParamView> bad = {{"w", &v, &g}};
  EXPECT_THROW(Sgd(bad, 0.1f), std::invalid_argument);
  std::vector<ParamView> null_view = {{"w", &v, nullptr}};
  EXPECT_THROW(Sgd(null_view, 0.1f), std::invalid_argument);
}

TEST(OptimizerTest, ParameterCountSums) {
  common::Pcg32 rng(1);
  Sequential model;
  model.emplace<Dense>(4, 3, rng);
  Sgd sgd(model.params(), 0.1f);
  EXPECT_EQ(sgd.parameter_count(), 4u * 3u + 3u);
}

TEST(TrainingTest, SgdLearnsLinearRegression) {
  // y = 2x1 - x2 + 0.5, learnable exactly by one Dense layer.
  common::Pcg32 rng(2);
  Sequential model;
  model.emplace<Dense>(2, 1, rng);
  Sgd sgd(model.params(), 0.1f, 0.9f);
  MseLoss loss;

  const Tensor x = Tensor::randn({64, 2}, rng);
  Tensor y({64, 1});
  for (std::size_t i = 0; i < 64; ++i) {
    y.at(i, 0) = 2.0f * x.at(i, 0) - x.at(i, 1) + 0.5f;
  }

  float first_loss = 0.0f, last_loss = 0.0f;
  for (int epoch = 0; epoch < 300; ++epoch) {
    const Tensor pred = model.forward(x, true);
    const float l = loss.value(pred, y);
    if (epoch == 0) first_loss = l;
    last_loss = l;
    sgd.zero_grad();
    (void)model.backward(loss.gradient(pred, y));
    sgd.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.01f);
  EXPECT_LT(last_loss, 1e-3f);
}

TEST(TrainingTest, AdamLearnsXor) {
  // XOR requires the hidden layer — checks backprop through nonlinearity.
  common::Pcg32 rng(3);
  Sequential model;
  model.emplace<Dense>(2, 8, rng);
  model.emplace<Tanh>();
  model.emplace<Dense>(8, 1, rng);
  model.emplace<Sigmoid>();
  Adam adam(model.params(), 0.05f);
  MseLoss loss;

  const Tensor x = Tensor::from2d({{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  const Tensor y = Tensor::from2d({{0}, {1}, {1}, {0}});
  for (int epoch = 0; epoch < 800; ++epoch) {
    const Tensor pred = model.forward(x, true);
    adam.zero_grad();
    (void)model.backward(loss.gradient(pred, y));
    adam.step();
  }
  const Tensor pred = model.forward(x, false);
  EXPECT_LT(pred.at(0, 0), 0.2f);
  EXPECT_GT(pred.at(1, 0), 0.8f);
  EXPECT_GT(pred.at(2, 0), 0.8f);
  EXPECT_LT(pred.at(3, 0), 0.2f);
}

}  // namespace
}  // namespace orco::nn
