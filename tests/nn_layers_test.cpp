// Unit tests for NN layers: forward semantics, caching, chaining, noise.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/conv_transpose2d.h"
#include "nn/dense.h"
#include "nn/noise.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

namespace orco::nn {
namespace {

using tensor::Tensor;

TEST(DenseTest, ForwardComputesAffineMap) {
  common::Pcg32 rng(1);
  Dense d(2, 3, rng);
  // Overwrite with known weights: y = W x + b.
  d.weight() = Tensor::from2d({{1, 0}, {0, 1}, {1, 1}});
  d.bias() = Tensor::from({0.5f, -0.5f, 0.0f});
  const Tensor x = Tensor::from2d({{2, 3}});
  const Tensor y = d.forward(x, false);
  EXPECT_TRUE(y.allclose(Tensor::from2d({{2.5f, 2.5f, 5.0f}})));
}

TEST(DenseTest, RejectsWrongInputWidth) {
  common::Pcg32 rng(2);
  Dense d(4, 2, rng);
  EXPECT_THROW((void)d.forward(Tensor({1, 3}), false), std::invalid_argument);
}

TEST(DenseTest, BackwardAccumulatesGradients) {
  common::Pcg32 rng(3);
  Dense d(2, 2, rng);
  const Tensor x = Tensor::from2d({{1, 2}});
  (void)d.forward(x, true);
  (void)d.backward(Tensor::from2d({{1, 1}}));
  const Tensor gw1 = d.weight_grad();
  (void)d.forward(x, true);
  (void)d.backward(Tensor::from2d({{1, 1}}));
  // Second backward doubles the accumulated gradient.
  EXPECT_TRUE(d.weight_grad().allclose(gw1 * 2.0f, 1e-5f));
  d.zero_grad();
  EXPECT_FLOAT_EQ(d.weight_grad().abs_max(), 0.0f);
}

TEST(DenseTest, ParamsExposeWeightAndBias) {
  common::Pcg32 rng(4);
  Dense d(3, 5, rng);
  const auto params = d.params();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].value->shape(), (tensor::Shape{5, 3}));
  EXPECT_EQ(params[1].value->shape(), (tensor::Shape{5}));
  EXPECT_EQ(d.output_features(3), 5u);
  EXPECT_THROW((void)d.output_features(4), std::invalid_argument);
  EXPECT_EQ(d.forward_flops(2), 2u * 2u * 3u * 5u);
}

TEST(Conv2dTest, IdentityKernelPassesThrough) {
  common::Pcg32 rng(5);
  Conv2d conv(1, 1, 1, 1, 0, 3, 3, rng);
  // 1x1 kernel with weight 1, bias 0 is the identity.
  conv.params()[0].value->fill(1.0f);
  conv.params()[1].value->fill(0.0f);
  const Tensor x = Tensor::from2d({{1, 2, 3, 4, 5, 6, 7, 8, 9}});
  EXPECT_TRUE(conv.forward(x, false).allclose(x));
}

TEST(Conv2dTest, KnownSumKernel) {
  common::Pcg32 rng(6);
  Conv2d conv(1, 1, 2, 1, 0, 2, 2, rng);
  conv.params()[0].value->fill(1.0f);  // 2x2 all-ones kernel: sums patch
  conv.params()[1].value->fill(0.5f);
  const Tensor x = Tensor::from2d({{1, 2, 3, 4}});
  const Tensor y = conv.forward(x, false);
  ASSERT_EQ(y.numel(), 1u);
  EXPECT_FLOAT_EQ(y[0], 10.5f);
}

TEST(Conv2dTest, OutputGeometryAndFlops) {
  common::Pcg32 rng(7);
  Conv2d conv(3, 8, 3, 1, 1, 32, 32, rng);
  EXPECT_EQ(conv.out_h(), 32u);
  EXPECT_EQ(conv.output_features(3 * 32 * 32), 8u * 32u * 32u);
  EXPECT_THROW((void)conv.output_features(123), std::invalid_argument);
  EXPECT_GT(conv.forward_flops(1), 0u);
}

TEST(Conv2dTest, StridedOutput) {
  common::Pcg32 rng(8);
  Conv2d conv(1, 2, 3, 2, 1, 8, 8, rng);
  EXPECT_EQ(conv.out_h(), 4u);
  const Tensor x({2, 64}, 1.0f);
  const Tensor y = conv.forward(x, false);
  EXPECT_EQ(y.dim(1), 2u * 4u * 4u);
}

TEST(ConvTranspose2dTest, UpsamplesGeometry) {
  common::Pcg32 rng(9);
  ConvTranspose2d convt(4, 2, 4, 2, 1, 7, 7, rng);
  EXPECT_EQ(convt.out_h(), 14u);
  EXPECT_EQ(convt.out_w(), 14u);
  EXPECT_EQ(convt.output_features(4 * 7 * 7), 2u * 14u * 14u);
}

TEST(ConvTranspose2dTest, ForwardAgreesWithManualScatter) {
  // 1 channel -> 1 channel, 2x2 kernel, stride 2: each input pixel paints a
  // scaled copy of the kernel on a disjoint 2x2 block.
  common::Pcg32 rng(10);
  ConvTranspose2d convt(1, 1, 2, 2, 0, 2, 2, rng);
  convt.params()[0].value->data()[0] = 1.0f;
  convt.params()[0].value->data()[1] = 2.0f;
  convt.params()[0].value->data()[2] = 3.0f;
  convt.params()[0].value->data()[3] = 4.0f;
  convt.params()[1].value->fill(0.0f);
  const Tensor x = Tensor::from2d({{1, 10, 100, 1000}});
  const Tensor y = convt.forward(x, false);
  ASSERT_EQ(y.numel(), 16u);
  // Top-left block scaled by 1, top-right by 10, etc.
  EXPECT_FLOAT_EQ(y[0], 1.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_FLOAT_EQ(y[2], 10.0f);
  EXPECT_FLOAT_EQ(y[3], 20.0f);
  EXPECT_FLOAT_EQ(y[4], 3.0f);
  EXPECT_FLOAT_EQ(y[5], 4.0f);
  EXPECT_FLOAT_EQ(y[15], 4000.0f);
}

TEST(MaxPool2dTest, ForwardPicksMaxima) {
  MaxPool2d pool(1, 4, 4, 2, 2);
  const Tensor x = Tensor::from2d(
      {{1, 2, 5, 6, 3, 4, 7, 8, 9, 10, 13, 14, 11, 12, 15, 16}});
  const Tensor y = pool.forward(x, false);
  EXPECT_TRUE(y.allclose(Tensor::from2d({{4, 8, 12, 16}})));
}

TEST(MaxPool2dTest, BackwardRoutesToWinners) {
  MaxPool2d pool(1, 2, 2, 2, 2);
  const Tensor x = Tensor::from2d({{1, 3, 2, 0}});
  (void)pool.forward(x, true);
  const Tensor gi = pool.backward(Tensor::from2d({{5}}));
  EXPECT_TRUE(gi.allclose(Tensor::from2d({{0, 5, 0, 0}})));
}

TEST(MaxPool2dTest, GeometryValidation) {
  EXPECT_THROW(MaxPool2d(1, 2, 2, 3, 1), std::invalid_argument);
  MaxPool2d pool(2, 8, 8, 2, 2);
  EXPECT_EQ(pool.output_features(2 * 64), 2u * 16u);
  EXPECT_THROW((void)pool.output_features(100), std::invalid_argument);
}

TEST(ActivationTest, ReLUZeroesNegatives) {
  ReLU relu;
  const Tensor x = Tensor::from({-1, 0, 2});
  EXPECT_TRUE(relu.forward(x, false).allclose(Tensor::from({0, 0, 2})));
  const Tensor g = relu.backward(Tensor::from({1, 1, 1}));
  EXPECT_TRUE(g.allclose(Tensor::from({0, 0, 1})));
}

TEST(ActivationTest, LeakyReLUKeepsSlope) {
  LeakyReLU lrelu(0.1f);
  const Tensor x = Tensor::from({-2, 4});
  EXPECT_TRUE(lrelu.forward(x, false).allclose(Tensor::from({-0.2f, 4.0f})));
  const Tensor g = lrelu.backward(Tensor::from({1, 1}));
  EXPECT_TRUE(g.allclose(Tensor::from({0.1f, 1.0f})));
  EXPECT_THROW(LeakyReLU(1.5f), std::invalid_argument);
}

TEST(ActivationTest, SigmoidRangeAndDerivative) {
  Sigmoid s;
  const Tensor x = Tensor::from({0.0f});
  const Tensor y = s.forward(x, false);
  EXPECT_NEAR(y[0], 0.5f, 1e-6f);
  const Tensor g = s.backward(Tensor::from({1.0f}));
  EXPECT_NEAR(g[0], 0.25f, 1e-6f);  // sigmoid'(0) = 1/4
}

TEST(ActivationTest, TanhOddAndBounded) {
  Tanh t;
  const Tensor x = Tensor::from({-3, 0, 3});
  const Tensor y = t.forward(x, false);
  EXPECT_NEAR(y[1], 0.0f, 1e-6f);
  EXPECT_NEAR(y[0], -y[2], 1e-6f);
  EXPECT_LT(std::fabs(y[2]), 1.0f);
}

TEST(ActivationTest, FactoryCoversAllKinds) {
  for (const auto kind :
       {Activation::kIdentity, Activation::kReLU, Activation::kLeakyReLU,
        Activation::kSigmoid, Activation::kTanh}) {
    const auto layer = make_activation(kind);
    ASSERT_NE(layer, nullptr);
    EXPECT_EQ(layer->output_features(7), 7u);
  }
}

TEST(GaussianNoiseTest, EvalModeIsIdentity) {
  common::Pcg32 rng(11);
  GaussianNoise noise(0.5f, rng);
  const Tensor x = Tensor::from({1, 2, 3});
  EXPECT_TRUE(noise.forward(x, false).allclose(x, 0.0f));
}

TEST(GaussianNoiseTest, TrainingAddsZeroMeanNoise) {
  common::Pcg32 rng(12);
  GaussianNoise noise(0.3f, rng);
  const Tensor x({10000}, 1.0f);
  const Tensor y = noise.forward(x, true);
  EXPECT_FALSE(y.allclose(x, 1e-6f));
  const Tensor delta = y - x;
  EXPECT_NEAR(delta.mean(), 0.0f, 0.02f);
  // Sample stddev should be near sigma.
  double sq = 0.0;
  for (const auto v : delta.data()) sq += static_cast<double>(v) * v;
  EXPECT_NEAR(std::sqrt(sq / 10000.0), 0.3, 0.02);
}

TEST(GaussianNoiseTest, ZeroSigmaIsAlwaysIdentity) {
  common::Pcg32 rng(13);
  GaussianNoise noise(0.0f, rng);
  const Tensor x = Tensor::from({4, 5});
  EXPECT_TRUE(noise.forward(x, true).allclose(x, 0.0f));
  EXPECT_THROW(noise.set_sigma(-1.0f), std::invalid_argument);
}

TEST(GaussianNoiseTest, GradientPassesThrough) {
  common::Pcg32 rng(14);
  GaussianNoise noise(0.2f, rng);
  const Tensor g = Tensor::from({1, 2});
  EXPECT_TRUE(noise.backward(g).allclose(g, 0.0f));
}

TEST(SequentialTest, ChainsLayersAndValidates) {
  common::Pcg32 rng(15);
  Sequential model;
  model.emplace<Dense>(4, 8, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(8, 2, rng);
  EXPECT_EQ(model.output_features(4), 2u);
  EXPECT_THROW((void)model.output_features(5), std::invalid_argument);
  EXPECT_EQ(model.size(), 3u);
  const Tensor x = Tensor::randn({3, 4}, rng);
  EXPECT_EQ(model.forward(x, false).shape(), (tensor::Shape{3, 2}));
}

TEST(SequentialTest, ParamNamesIncludeLayerIndex) {
  common::Pcg32 rng(16);
  Sequential model;
  model.emplace<Dense>(2, 2, rng);
  model.emplace<Dense>(2, 2, rng);
  const auto params = model.params();
  ASSERT_EQ(params.size(), 4u);
  EXPECT_EQ(params[0].name, "layer0.Dense.weight");
  EXPECT_EQ(params[3].name, "layer1.Dense.bias");
  EXPECT_EQ(model.parameter_count(), 2u * (2 * 2 + 2));
}

TEST(SequentialTest, FlopsSumAcrossLayers) {
  common::Pcg32 rng(17);
  Sequential model;
  model.emplace<Dense>(10, 20, rng);
  model.emplace<ReLU>();
  model.emplace<Dense>(20, 5, rng);
  EXPECT_EQ(model.forward_flops(2),
            2u * 2u * 10u * 20u + 2u * 2u * 20u * 5u);
}

TEST(SequentialTest, RejectsNullLayer) {
  Sequential model;
  EXPECT_THROW(model.add(nullptr), std::invalid_argument);
  EXPECT_THROW((void)model.layer(0), std::invalid_argument);
}

TEST(LayerInferIntoTest, MatchesInferAcrossLayerKinds) {
  common::Pcg32 rng(31);
  const Tensor x = Tensor::randn({3, 16}, rng);
  Dense dense(16, 8, rng);
  MaxPool2d pool(1, 4, 4, 2, 2);
  LeakyReLU leaky(0.2f);
  const Layer* layers[] = {&dense, &pool, &leaky};
  for (const Layer* layer : layers) {
    InferContext ctx;
    Tensor out;
    layer->infer_into(x, out, ctx);
    const Tensor expected = layer->infer(x);
    ASSERT_EQ(out.shape(), expected.shape()) << layer->name();
    for (std::size_t i = 0; i < out.numel(); ++i) {
      ASSERT_EQ(out[i], expected[i]) << layer->name() << " elem " << i;
    }
  }
}

TEST(LayerInferIntoTest, FusedIntoMatchesUnfusedActivation) {
  common::Pcg32 rng(32);
  Dense dense(6, 10, rng);
  Sigmoid sigmoid;
  const Tensor x = Tensor::randn({4, 6}, rng);
  InferContext ctx;
  Tensor fused;
  dense.infer_fused_into(x, fused, tensor::EpilogueAct::kSigmoid, 0.01f, ctx);
  const Tensor expected = sigmoid.infer(dense.infer(x));
  ASSERT_EQ(fused.shape(), expected.shape());
  for (std::size_t i = 0; i < fused.numel(); ++i) {
    ASSERT_EQ(fused[i], expected[i]);
  }
}

TEST(SequentialTest, InferIntoSkipsInferenceIdentityLayers) {
  // Noise and Identity are pass-through at inference: the planner skips
  // them outright (no buffer copy), and the result matches the compat
  // infer() path bitwise, including when they trail the last real layer.
  common::Pcg32 rng(33);
  Sequential model;
  model.emplace<GaussianNoise>(0.5f, common::Pcg32(1));
  model.emplace<Dense>(4, 6, rng);
  model.emplace<ReLU>();
  model.emplace<Identity>();
  model.emplace<GaussianNoise>(0.25f, common::Pcg32(2));
  EXPECT_TRUE(model.layer(0).infer_is_identity());
  EXPECT_FALSE(model.layer(1).infer_is_identity());

  const Tensor x = Tensor::randn({2, 4}, rng);
  const Tensor expected = model.infer(x);
  InferContext ctx;
  Tensor out;
  model.infer_into(x, out, ctx);
  ASSERT_EQ(out.shape(), expected.shape());
  for (std::size_t i = 0; i < out.numel(); ++i) {
    ASSERT_EQ(out[i], expected[i]);
  }

  // All-identity chain: the pass is a straight copy.
  Sequential passthrough;
  passthrough.emplace<GaussianNoise>(1.0f, common::Pcg32(3));
  passthrough.infer_into(x, out, ctx);
  ASSERT_EQ(out.shape(), x.shape());
  for (std::size_t i = 0; i < out.numel(); ++i) ASSERT_EQ(out[i], x[i]);
}

TEST(SequentialTest, InferIntoRejectsAliasedOutput) {
  common::Pcg32 rng(34);
  Sequential model;
  model.emplace<Dense>(4, 4, rng);
  Tensor x = Tensor::randn({2, 4}, rng);
  InferContext ctx;
  EXPECT_THROW(model.infer_into(x, x, ctx), std::invalid_argument);
}

}  // namespace
}  // namespace orco::nn
