// End-to-end tests of the OrcoDcsSystem facade: the paper's three stages
// plus fine-tuning, on a small synthetic-MNIST workload.
#include <gtest/gtest.h>

#include "core/orcodcs.h"
#include "data/drift.h"
#include "data/metrics.h"
#include "data/synthetic_gtsrb.h"
#include "data/synthetic_mnist.h"

namespace orco::core {
namespace {

SystemConfig small_system() {
  SystemConfig cfg;
  cfg.orco.input_dim = 784;
  cfg.orco.latent_dim = 32;
  cfg.orco.decoder_layers = 1;
  cfg.orco.noise_variance = 0.01f;
  cfg.orco.batch_size = 32;
  cfg.orco.learning_rate = 3.0f;
  cfg.field.device_count = 16;
  cfg.field.radio_range_m = 50.0;
  return cfg;
}

data::Dataset small_mnist(std::size_t count = 256, std::uint64_t seed = 1) {
  data::MnistConfig cfg;
  cfg.count = count;
  cfg.seed = seed;
  return data::make_synthetic_mnist(cfg);
}

TEST(SystemTest, ConstructsWithValidTopology) {
  OrcoDcsSystem sys(small_system());
  EXPECT_EQ(sys.field().device_count(), 16u);
  EXPECT_EQ(sys.tree().subtree_size(sys.tree().root()), 16u);
  EXPECT_DOUBLE_EQ(sys.sim_time(), 0.0);
}

TEST(SystemTest, RawAggregationChargesIntraClusterLink) {
  OrcoDcsSystem sys(small_system());
  const double seconds = sys.raw_aggregation_round(784 * sizeof(float));
  EXPECT_GT(seconds, 0.0);
  EXPECT_GT(sys.ledger().totals(wsn::LinkKind::kIntraCluster).payload_bytes,
            0u);
  EXPECT_DOUBLE_EQ(sys.sim_time(), seconds);
}

TEST(SystemTest, OnlineTrainingReducesLossAndAdvancesClock) {
  OrcoDcsSystem sys(small_system());
  const auto train = small_mnist();
  const auto summary = sys.train_online(train, /*epochs=*/3);
  ASSERT_FALSE(summary.rounds.empty());
  // Mean loss of the first epoch vs last epoch.
  const std::size_t per_epoch = summary.rounds.size() / 3;
  double first = 0.0, last = 0.0;
  for (std::size_t i = 0; i < per_epoch; ++i) {
    first += summary.rounds[i].loss;
    last += summary.rounds[summary.rounds.size() - 1 - i].loss;
  }
  EXPECT_LT(last, first * 0.8);
  EXPECT_GT(summary.sim_seconds, 0.0);
  EXPECT_FLOAT_EQ(summary.final_loss, summary.rounds.back().loss);
}

TEST(SystemTest, TrainingIsDeterministicPerSeed) {
  const auto train = small_mnist(128);
  OrcoDcsSystem a(small_system()), b(small_system());
  const auto sa = a.train_online(train, 1);
  const auto sb = b.train_online(train, 1);
  ASSERT_EQ(sa.rounds.size(), sb.rounds.size());
  for (std::size_t i = 0; i < sa.rounds.size(); ++i) {
    EXPECT_FLOAT_EQ(sa.rounds[i].loss, sb.rounds[i].loss);
  }
}

TEST(SystemTest, ReconstructionBeatsUntrainedBaseline) {
  const auto train = small_mnist();
  const auto test = small_mnist(64, 2);

  OrcoDcsSystem trained(small_system());
  OrcoDcsSystem untrained(small_system());
  (void)trained.train_online(train, 4);

  const double trained_psnr =
      data::mean_psnr(test.images(), trained.reconstruct(test.images()));
  const double untrained_psnr =
      data::mean_psnr(test.images(), untrained.reconstruct(test.images()));
  EXPECT_GT(trained_psnr, untrained_psnr + 1.0);
}

TEST(SystemTest, RejectsMismatchedDataset) {
  OrcoDcsSystem sys(small_system());
  data::GtsrbConfig gcfg;
  gcfg.count = 8;
  const auto wrong = data::make_synthetic_gtsrb(gcfg);  // 3072 features
  EXPECT_THROW((void)sys.train_online(wrong, 1), std::invalid_argument);
}

TEST(SystemTest, EncoderDistributionUsesBroadcastLink) {
  OrcoDcsSystem sys(small_system());
  const double seconds = sys.distribute_encoder();
  EXPECT_GT(seconds, 0.0);
  const auto& bc = sys.ledger().totals(wsn::LinkKind::kBroadcast);
  EXPECT_GT(bc.payload_bytes, 0u);
  // Broadcast payload carries N columns of M floats + bias.
  const std::size_t share_bytes =
      (16 * 32 + 32) * sizeof(float);
  EXPECT_GE(bc.payload_bytes, share_bytes);  // >= one full transmission
}

TEST(SystemTest, CompressedRoundIsCheaperThanRawRound) {
  OrcoDcsSystem sys(small_system());
  // Raw: each device ships a full 784-float image through the tree.
  (void)sys.raw_aggregation_round(784 * sizeof(float));
  const auto raw_bytes =
      sys.ledger().totals(wsn::LinkKind::kIntraCluster).payload_bytes;
  (void)sys.compressed_aggregation_round();
  const auto after_bytes =
      sys.ledger().totals(wsn::LinkKind::kIntraCluster).payload_bytes;
  EXPECT_LT(after_bytes - raw_bytes, raw_bytes / 10);
}

TEST(SystemTest, MonitorTriggersAfterDrift) {
  SystemConfig cfg = small_system();
  cfg.orco.relaunch_factor = 1.5f;
  cfg.orco.monitor_window = 4;
  OrcoDcsSystem sys(cfg);
  const auto train = small_mnist();
  (void)sys.train_online(train, 4);

  // Healthy data does not trigger.
  const float healthy = sys.evaluate_loss(train);
  bool triggered = false;
  for (int i = 0; i < 6; ++i) triggered |= sys.monitor_observe(healthy);
  EXPECT_FALSE(triggered);

  // Severe drift raises reconstruction error enough to trigger.
  common::Pcg32 rng(3);
  const auto drifted = data::apply_drift(
      train, data::DriftConfig{0.3f, 0.4f, 0.4f}, rng);
  const float drifted_loss = sys.evaluate_loss(drifted);
  EXPECT_GT(drifted_loss, healthy);
  for (int i = 0; i < 8 && !triggered; ++i) {
    triggered = sys.monitor_observe(drifted_loss);
  }
  EXPECT_TRUE(triggered);

  // Relaunch: retrain on drifted data recovers the loss.
  const auto relaunch = sys.train_online(drifted, 4);
  EXPECT_LT(sys.evaluate_loss(drifted), drifted_loss);
  EXPECT_GT(relaunch.rounds.size(), 0u);
}

TEST(SystemTest, DeeperDecodersAreConfigurable) {
  SystemConfig cfg = small_system();
  cfg.orco.decoder_layers = 3;
  OrcoDcsSystem sys(cfg);
  const auto test = small_mnist(32, 5);
  const auto rec = sys.reconstruct(test.images());
  EXPECT_EQ(rec.shape(), test.images().shape());
}

TEST(SystemTest, FlexibleLatentDimensionChangesUplinkBytes) {
  SystemConfig small_cfg = small_system();
  small_cfg.orco.latent_dim = 16;
  SystemConfig big_cfg = small_system();
  big_cfg.orco.latent_dim = 128;
  OrcoDcsSystem small_sys(small_cfg), big_sys(big_cfg);
  const auto test = small_mnist(32, 6);
  (void)small_sys.aggregate_images(test.images());
  (void)big_sys.aggregate_images(test.images());
  const auto small_up =
      small_sys.ledger().totals(wsn::LinkKind::kUplink).payload_bytes;
  const auto big_up =
      big_sys.ledger().totals(wsn::LinkKind::kUplink).payload_bytes;
  // 8x latent dimension -> ~8x uplink bytes.
  EXPECT_NEAR(static_cast<double>(big_up) / static_cast<double>(small_up),
              8.0, 0.5);
}

}  // namespace
}  // namespace orco::core
