// Fine-tuning monitor tests (paper §III-D).
#include <gtest/gtest.h>

#include "core/monitor.h"

namespace orco::core {
namespace {

TEST(MonitorTest, ValidatesConstruction) {
  EXPECT_THROW(FineTuningMonitor(1.0f, 4), std::invalid_argument);
  EXPECT_THROW(FineTuningMonitor(2.0f, 0), std::invalid_argument);
}

TEST(MonitorTest, RequiresBaselineBeforeObserve) {
  FineTuningMonitor monitor(2.0f, 3);
  EXPECT_FALSE(monitor.has_baseline());
  EXPECT_THROW((void)monitor.observe(0.1f), std::invalid_argument);
  monitor.set_baseline(0.1f);
  EXPECT_TRUE(monitor.has_baseline());
  EXPECT_FLOAT_EQ(monitor.baseline(), 0.1f);
}

TEST(MonitorTest, HealthyLossesNeverTrigger) {
  FineTuningMonitor monitor(2.0f, 3);
  monitor.set_baseline(0.1f);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(monitor.observe(0.12f));
  }
  EXPECT_EQ(monitor.relaunch_count(), 0u);
}

TEST(MonitorTest, WindowMustFillBeforeTriggering) {
  FineTuningMonitor monitor(2.0f, 4);
  monitor.set_baseline(0.1f);
  // Three huge observations: window not yet full, no trigger.
  EXPECT_FALSE(monitor.observe(10.0f));
  EXPECT_FALSE(monitor.observe(10.0f));
  EXPECT_FALSE(monitor.observe(10.0f));
  // Fourth fills the window -> trigger.
  EXPECT_TRUE(monitor.observe(10.0f));
  EXPECT_EQ(monitor.relaunch_count(), 1u);
}

TEST(MonitorTest, SingleSpikeInHealthyStreamDoesNotTrigger) {
  FineTuningMonitor monitor(2.0f, 4);
  monitor.set_baseline(0.1f);
  for (int i = 0; i < 4; ++i) (void)monitor.observe(0.1f);
  // One spike among healthy values: rolling mean stays below 0.2.
  EXPECT_FALSE(monitor.observe(0.3f));
  EXPECT_FALSE(monitor.observe(0.1f));
}

TEST(MonitorTest, SustainedDriftTriggers) {
  FineTuningMonitor monitor(1.5f, 4);
  monitor.set_baseline(0.1f);
  bool triggered = false;
  for (int i = 0; i < 10 && !triggered; ++i) {
    triggered = monitor.observe(0.25f);
  }
  EXPECT_TRUE(triggered);
}

TEST(MonitorTest, RollingMeanTracksWindow) {
  FineTuningMonitor monitor(2.0f, 2);
  monitor.set_baseline(1.0f);
  EXPECT_FLOAT_EQ(monitor.rolling_mean(), 0.0f);
  (void)monitor.observe(1.0f);
  EXPECT_FLOAT_EQ(monitor.rolling_mean(), 1.0f);
  (void)monitor.observe(3.0f);
  EXPECT_FLOAT_EQ(monitor.rolling_mean(), 2.0f);
  // Window slides: oldest (1.0) drops.
  (void)monitor.observe(3.0f);
  EXPECT_FLOAT_EQ(monitor.rolling_mean(), 3.0f);
}

TEST(MonitorTest, ResetClearsObservationsKeepsBaseline) {
  FineTuningMonitor monitor(2.0f, 2);
  monitor.set_baseline(0.5f);
  (void)monitor.observe(10.0f);
  monitor.reset_observations();
  EXPECT_FLOAT_EQ(monitor.rolling_mean(), 0.0f);
  EXPECT_TRUE(monitor.has_baseline());
  // Needs a full fresh window again.
  EXPECT_FALSE(monitor.observe(10.0f));
  EXPECT_TRUE(monitor.observe(10.0f));
}

TEST(MonitorTest, CooldownSwallowsObservationsAfterTrigger) {
  // cooldown 3 (OrcoConfig::monitor_cooldown): after a relaunch fires, the
  // drifted window is dropped and the next 3 observations are swallowed —
  // one drift episode, one relaunch.
  FineTuningMonitor monitor(2.0f, 2, 3);
  monitor.set_baseline(0.1f);
  EXPECT_FALSE(monitor.observe(1.0f));
  EXPECT_TRUE(monitor.observe(1.0f));
  EXPECT_EQ(monitor.relaunch_count(), 1u);
  // Cooldown: even huge losses are swallowed for 3 observations.
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(monitor.observe(10.0f));
  // Re-armed: a fresh full window of sustained drift triggers again.
  EXPECT_FALSE(monitor.observe(1.0f));
  EXPECT_TRUE(monitor.observe(1.0f));
  EXPECT_EQ(monitor.relaunch_count(), 2u);

  // reset_observations also clears an active cooldown.
  FineTuningMonitor reset_monitor(2.0f, 1, 5);
  reset_monitor.set_baseline(0.1f);
  EXPECT_TRUE(reset_monitor.observe(1.0f));
  reset_monitor.reset_observations();
  EXPECT_TRUE(reset_monitor.observe(1.0f));
}

TEST(MonitorTest, ZeroCooldownKeepsHistoricalRetriggerBehaviour) {
  FineTuningMonitor monitor(2.0f, 2);
  monitor.set_baseline(0.1f);
  EXPECT_FALSE(monitor.observe(1.0f));
  EXPECT_TRUE(monitor.observe(1.0f));
  // Without a cooldown the window is kept: the next observation still sees
  // a drifted rolling mean and fires again (callers reset manually).
  EXPECT_TRUE(monitor.observe(1.0f));
  EXPECT_EQ(monitor.relaunch_count(), 2u);
}

TEST(MonitorTest, RejectsNegativeLosses) {
  FineTuningMonitor monitor(2.0f, 2);
  EXPECT_THROW(monitor.set_baseline(-0.1f), std::invalid_argument);
  monitor.set_baseline(0.1f);
  EXPECT_THROW((void)monitor.observe(-1.0f), std::invalid_argument);
}

}  // namespace
}  // namespace orco::core
