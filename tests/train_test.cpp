// Tests for the online background fine-tuning runtime (src/train) and its
// serving-side integration: versioned ModelRegistry publish/hot-swap,
// TrainerRuntime job lifecycle (budgets, rejection, drift triggering), the
// latent-keyed ReconstructionCache, and a swap-while-serving stress test
// asserting every request is answered by exactly one coherent model
// generation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "serve/serve.h"
#include "train/train.h"

// Instrumented builds run the background fine-tune an order of magnitude
// slower; wall-clock deadlines that wait on it must stretch accordingly.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define ORCO_SANITIZED_BUILD 1
#endif
#elif defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define ORCO_SANITIZED_BUILD 1
#endif

namespace orco::train {
namespace {

using serve::DecodeResponse;
using serve::ResponseStatus;
using tensor::Tensor;

#ifdef ORCO_SANITIZED_BUILD
constexpr int kDeadlineStretch = 10;
#else
constexpr int kDeadlineStretch = 1;
#endif

constexpr std::size_t kInputDim = 64;
constexpr std::size_t kLatentDim = 16;

core::SystemConfig small_config(std::uint64_t seed = 42) {
  core::SystemConfig cfg;
  cfg.orco.input_dim = kInputDim;
  cfg.orco.latent_dim = kLatentDim;
  cfg.orco.decoder_layers = 2;
  cfg.orco.batch_size = 32;
  cfg.orco.seed = seed;
  cfg.field.device_count = 8;
  cfg.field.radio_range_m = 60.0;
  return cfg;
}

std::shared_ptr<core::OrcoDcsSystem> make_tenant(std::uint64_t seed = 42) {
  return std::make_shared<core::OrcoDcsSystem>(small_config(seed));
}

data::Dataset small_dataset(std::size_t count, std::uint64_t seed) {
  common::Pcg32 rng(seed);
  Tensor images = Tensor::uniform({count, kInputDim}, rng);
  return data::Dataset("tiny", data::ImageGeometry{1, 8, 8},
                       /*num_classes=*/1, std::move(images),
                       std::vector<std::size_t>(count, 0));
}

/// Freezes `system`'s current weights into a snapshot at an explicit
/// version (tests drive versions by hand; TrainerRuntime stamps the
/// EdgeServer's real model_version).
std::shared_ptr<ModelSnapshot> snapshot_of(core::OrcoDcsSystem& system,
                                           std::uint64_t version) {
  auto snapshot = std::make_shared<ModelSnapshot>();
  snapshot->version = version;
  auto decoder = system.export_decoder_clone();
  decoder->set_weight_prepack(true);  // the stress test must cover prepack
  snapshot->decoder = std::shared_ptr<const nn::Sequential>(std::move(decoder));
  snapshot->encoder =
      std::shared_ptr<const nn::Sequential>(system.export_encoder_clone());
  snapshot->latent_dim = kLatentDim;
  snapshot->output_dim = kInputDim;
  return snapshot;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  if (a.numel() != b.numel()) return false;
  for (std::size_t i = 0; i < a.numel(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

TEST(ModelRegistryTest, PublishIsVersionedAndMonotonic) {
  auto system = make_tenant();
  ModelRegistry registry;
  EXPECT_EQ(registry.current(1), nullptr);
  EXPECT_EQ(registry.find(1), nullptr);

  EXPECT_EQ(registry.publish(1, snapshot_of(*system, 5)), 5u);
  const auto current = registry.current(1);
  ASSERT_NE(current, nullptr);
  EXPECT_EQ(current->version, 5u);
  EXPECT_EQ(current->latent_dim, kLatentDim);
  ASSERT_NE(current->decoder, nullptr);

  // Same and older versions are refused; the current snapshot survives.
  EXPECT_THROW((void)registry.publish(1, snapshot_of(*system, 5)),
               std::invalid_argument);
  EXPECT_THROW((void)registry.publish(1, snapshot_of(*system, 4)),
               std::invalid_argument);
  EXPECT_EQ(registry.current(1)->version, 5u);

  EXPECT_EQ(registry.publish(1, snapshot_of(*system, 6)), 6u);
  EXPECT_EQ(registry.current(1)->version, 6u);
  EXPECT_EQ(registry.entry(1)->swap_count(), 2u);
  EXPECT_EQ(registry.total_published(), 2u);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(ModelRegistryTest, EntryIsStableAcrossPublishes) {
  auto system = make_tenant();
  ModelRegistry registry;
  // A shard grabs the entry once at registration; publishes must swap the
  // snapshot inside that same entry, never replace the entry.
  const auto slot = registry.entry(7);
  EXPECT_EQ(slot->load(), nullptr);
  (void)registry.publish(7, snapshot_of(*system, 1));
  EXPECT_EQ(registry.entry(7), slot);
  ASSERT_NE(slot->load(), nullptr);
  EXPECT_EQ(slot->load()->version, 1u);
}

TEST(TrainerTest, FineTunesPublishesAndServingHotSwaps) {
  auto system = make_tenant();
  const auto dataset = small_dataset(96, 7);

  TrainerRuntime trainer;
  trainer.register_tenant(1, system);
  // Registration published the untrained weights at the edge's initial
  // model version, so serving starts on the lock-free snapshot path.
  const auto initial = trainer.registry()->current(1);
  ASSERT_NE(initial, nullptr);
  EXPECT_EQ(initial->version, system->model_version());

  serve::ServeConfig scfg;
  scfg.shard_count = 1;
  scfg.queue.max_wait_us = 100;
  scfg.model_registry = trainer.registry();
  serve::ServerRuntime runtime(scfg);
  runtime.register_cluster(1, system);
  runtime.start();
  trainer.start();

  common::Pcg32 rng(3);
  const Tensor latent = Tensor::randn({kLatentDim}, rng);
  const DecodeResponse before = runtime.submit(1, latent).get();
  ASSERT_EQ(before.status, ResponseStatus::kOk);
  EXPECT_EQ(before.model_version, initial->version);

  // Fine-tune in the background while the server keeps running.
  const TrainResult result = trainer.submit_job(1, dataset, 2).get();
  EXPECT_EQ(result.outcome, JobOutcome::kCompleted);
  // 96 samples at batch 32 over 2 epochs.
  EXPECT_EQ(result.rounds_run, 6u);
  EXPECT_GT(result.eval_loss, 0.0f);
  // Every train_round bumped the edge's generation; the published version
  // is the post-job generation, shared verbatim with the registry.
  EXPECT_EQ(result.published_version, initial->version + result.rounds_run);
  EXPECT_EQ(result.published_version, system->model_version());
  ASSERT_NE(trainer.registry()->current(1), nullptr);
  EXPECT_EQ(trainer.registry()->current(1)->version, result.published_version);

  // The very next request decodes on the swapped-in snapshot, bitwise
  // identical to the live (now idle) decoder that produced it.
  const DecodeResponse after = runtime.submit(1, latent).get();
  ASSERT_EQ(after.status, ResponseStatus::kOk);
  EXPECT_EQ(after.model_version, result.published_version);
  const Tensor expected =
      system->edge().decode_inference(latent.reshaped({1, kLatentDim}));
  EXPECT_TRUE(bitwise_equal(after.reconstruction,
                            expected.reshaped({kInputDim})));
  // Fine-tuning actually changed the model the server answers with.
  EXPECT_FALSE(bitwise_equal(before.reconstruction, after.reconstruction));

  // The shard observed the swap and stamped the telemetry row.
  const auto row = runtime.telemetry().tenant_snapshot(1);
  EXPECT_EQ(row.model_version, result.published_version);
  EXPECT_EQ(row.model_swaps, 1u);

  const auto stats = trainer.stats();
  EXPECT_EQ(stats.jobs_submitted, 1u);
  EXPECT_EQ(stats.jobs_completed, 1u);
  EXPECT_EQ(stats.rounds_run, 6u);
  EXPECT_EQ(stats.snapshots_published, 2u);  // register + job

  runtime.shutdown();
  trainer.shutdown();
}

TEST(TrainerTest, RoundsBudgetCapsJobAndDutyCycleThrottles) {
  auto system = make_tenant();
  TrainerConfig tcfg;
  tcfg.default_budget.max_rounds_per_job = 2;
  tcfg.default_budget.duty_cycle = 0.5;
  TrainerRuntime trainer(tcfg);
  trainer.register_tenant(1, system);
  trainer.start();

  const TrainResult result =
      trainer.submit_job(1, small_dataset(96, 9), /*epochs=*/10).get();
  EXPECT_EQ(result.outcome, JobOutcome::kBudgetExhausted);
  EXPECT_EQ(result.rounds_run, 2u);
  // duty 0.5: one round's worth of sleep per round, except after the round
  // that hit the cap.
  EXPECT_GT(result.throttle_seconds, 0.0);
  // A capped job still publishes what it learned.
  EXPECT_EQ(result.published_version, system->model_version());
  trainer.shutdown();
}

TEST(TrainerTest, RejectsInvalidJobsAndResolvesQueuedJobsOnShutdown) {
  auto system = make_tenant();
  TrainerConfig tcfg;
  tcfg.queue_capacity = 1;
  TrainerRuntime trainer(tcfg);
  trainer.register_tenant(1, system);

  // Unknown tenant and mismatched dataset resolve kRejected immediately.
  EXPECT_EQ(trainer.submit_job(99, small_dataset(8, 1)).get().outcome,
            JobOutcome::kRejected);
  common::Pcg32 rng(5);
  data::Dataset wrong("wrong", data::ImageGeometry{1, 4, 4}, 1,
                      Tensor::uniform({8, 16}, rng),
                      std::vector<std::size_t>(8, 0));
  EXPECT_EQ(trainer.submit_job(1, wrong).get().outcome, JobOutcome::kRejected);

  // Workers never started: the first job camps in the queue, the second
  // overflows the capacity-1 queue, and shutdown resolves the first.
  auto queued = trainer.submit_job(1, small_dataset(32, 2));
  EXPECT_EQ(trainer.submit_job(1, small_dataset(32, 3)).get().outcome,
            JobOutcome::kRejected);
  EXPECT_EQ(trainer.queued_jobs(), 1u);
  trainer.shutdown();
  EXPECT_EQ(queued.get().outcome, JobOutcome::kShutdown);
  EXPECT_EQ(trainer.submit_job(1, small_dataset(32, 4)).get().outcome,
            JobOutcome::kShutdown);
  EXPECT_EQ(trainer.stats().jobs_rejected, 3u);
}

TEST(TrainerTest, DriftTriggerEnqueuesOneJobAndRecoversBaseline) {
  core::SystemConfig cfg = small_config();
  cfg.orco.monitor_window = 2;
  cfg.orco.relaunch_factor = 1.5f;
  cfg.orco.monitor_cooldown = 8;
  auto system = std::make_shared<core::OrcoDcsSystem>(cfg);

  TrainerRuntime trainer;
  trainer.register_tenant(1, system);
  trainer.start();
  const std::uint64_t version_before =
      trainer.registry()->current(1)->version;

  // No baseline yet: observations are ignored, nothing triggers.
  EXPECT_FALSE(trainer.observe_loss(1, 10.0f));
  trainer.set_baseline(1, 0.1f);
  trainer.update_stream(1, small_dataset(64, 11));

  EXPECT_FALSE(trainer.observe_loss(1, 1.0f));  // window not yet full
  EXPECT_TRUE(trainer.observe_loss(1, 1.0f));   // sustained drift -> trigger
  // Cooldown: the same episode must not fire a second relaunch while the
  // first job is still in flight.
  EXPECT_FALSE(trainer.observe_loss(1, 1.0f));
  EXPECT_EQ(trainer.stats().drift_triggers, 1u);

  // The auto-enqueued job runs in the background and publishes.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30 * kDeadlineStretch);
  while (trainer.registry()->current(1)->version == version_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_GT(trainer.registry()->current(1)->version, version_before);
  EXPECT_EQ(trainer.stats().jobs_submitted, 1u);
  trainer.shutdown();
  // The completed job re-baselined the monitor on the fine-tuned data.
  EXPECT_EQ(trainer.stats().jobs_completed, 1u);
}

TEST(ReconstructionCacheTest, LruEvictionVersionKeysAndInvalidate) {
  serve::ReconstructionCacheConfig cfg;
  cfg.capacity = 2;
  serve::ReconstructionCache cache(cfg);
  EXPECT_TRUE(cache.enabled());

  common::Pcg32 rng(1);
  const Tensor l1 = Tensor::randn({kLatentDim}, rng);
  const Tensor l2 = Tensor::randn({kLatentDim}, rng);
  const Tensor l3 = Tensor::randn({kLatentDim}, rng);
  const Tensor r1 = Tensor::full({kInputDim}, 1.0f);
  const Tensor r2 = Tensor::full({kInputDim}, 2.0f);
  const Tensor r3 = Tensor::full({kInputDim}, 3.0f);

  EXPECT_EQ(cache.lookup(1, 1, l1), nullptr);  // cold miss
  cache.insert(1, 1, l1, r1);
  const Tensor* hit = cache.lookup(1, 1, l1);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(bitwise_equal(*hit, r1));
  // The model version is part of the key: a swapped model never sees the
  // old generation's reconstruction.
  EXPECT_EQ(cache.lookup(1, 2, l1), nullptr);
  // So is the tenant.
  EXPECT_EQ(cache.lookup(2, 1, l1), nullptr);

  cache.insert(1, 1, l2, r2);
  ASSERT_NE(cache.lookup(1, 1, l1), nullptr);  // refresh l1 -> l2 is LRU
  cache.insert(1, 1, l3, r3);                  // capacity 2: evicts l2
  EXPECT_EQ(cache.lookup(1, 1, l2), nullptr);
  ASSERT_NE(cache.lookup(1, 1, l1), nullptr);
  ASSERT_NE(cache.lookup(1, 1, l3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);

  cache.invalidate(1);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.lookup(1, 1, l1), nullptr);
  EXPECT_EQ(cache.stats().invalidated, 2u);
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_GT(cache.stats().misses, 0u);
  EXPECT_EQ(cache.stats().insertions, 3u);
}

TEST(ReconstructionCacheTest, NoisyRepeatLatentsCollideAtKeyPrecision) {
  // The cache exists for near-identical repeat traffic: keys must snap the
  // affine range so sub-code-step noise — including on the min/max
  // elements, which would perturb an exact-range header — still lands on
  // the same entry at kFixed8.
  serve::ReconstructionCacheConfig cfg;
  cfg.capacity = 8;
  cfg.key_precision = core::LatentPrecision::kFixed8;
  serve::ReconstructionCache cache(cfg);

  // Values constructed away from code boundaries so the assertion is
  // deterministic: extremes 0.1/0.9 snap the range to [6/64, 58/64]
  // (stable under ±1e-4), and interior elements sit exactly on code
  // points — maximally far from the rounding boundaries a half code step
  // away (~1.6e-3 >> 1e-4 noise).
  const float lo = 6.0f / 64.0f, hi = 58.0f / 64.0f;
  const float step = (hi - lo) / 255.0f;
  Tensor base({kLatentDim});
  base[0] = 0.1f;
  base[kLatentDim - 1] = 0.9f;
  for (std::size_t i = 1; i + 1 < kLatentDim; ++i) {
    base[i] = lo + static_cast<float>(8 * i) * step;
  }
  Tensor noisy = base;
  for (std::size_t i = 0; i < noisy.numel(); ++i) {
    noisy[i] += (i % 2 == 0 ? 1e-4f : -1e-4f);
  }
  cache.insert(1, 1, base, Tensor::full({kInputDim}, 5.0f));
  const Tensor* hit = cache.lookup(1, 1, noisy);
  ASSERT_NE(hit, nullptr);
  EXPECT_FLOAT_EQ((*hit)[0], 5.0f);

  // A genuinely different latent must not collide.
  common::Pcg32 rng(33);
  const Tensor other = Tensor::uniform({kLatentDim}, rng, 0.1f, 0.9f);
  EXPECT_EQ(cache.lookup(1, 1, other), nullptr);
}

TEST(ReconstructionCacheTest, RepeatLatentServedFromCacheUntilSwap) {
  auto system = make_tenant(5);
  auto registry = std::make_shared<ModelRegistry>();
  (void)registry->publish(1, snapshot_of(*system, 1));

  serve::ServeConfig scfg;
  scfg.shard_count = 1;
  scfg.queue.max_wait_us = 100;
  scfg.model_registry = registry;
  scfg.recon_cache.capacity = 64;
  serve::ServerRuntime runtime(scfg);
  runtime.register_cluster(1, system);
  runtime.start();

  common::Pcg32 rng(17);
  const Tensor latent = Tensor::randn({kLatentDim}, rng);
  const DecodeResponse miss = runtime.submit(1, latent).get();
  ASSERT_EQ(miss.status, ResponseStatus::kOk);
  EXPECT_FALSE(miss.cache_hit);

  const DecodeResponse hit = runtime.submit(1, latent).get();
  ASSERT_EQ(hit.status, ResponseStatus::kOk);
  EXPECT_TRUE(hit.cache_hit);
  EXPECT_EQ(hit.model_version, 1u);
  EXPECT_TRUE(bitwise_equal(hit.reconstruction, miss.reconstruction));

  // Hot-swap to a different model: the same latent must decode fresh on
  // the new generation, not replay the stale reconstruction.
  auto other = make_tenant(6);
  (void)registry->publish(1, snapshot_of(*other, 2));
  const DecodeResponse after_swap = runtime.submit(1, latent).get();
  ASSERT_EQ(after_swap.status, ResponseStatus::kOk);
  EXPECT_FALSE(after_swap.cache_hit);
  EXPECT_EQ(after_swap.model_version, 2u);
  EXPECT_FALSE(
      bitwise_equal(after_swap.reconstruction, miss.reconstruction));

  const auto snapshot = runtime.telemetry().snapshot();
  EXPECT_EQ(snapshot.cache_hits, 1u);
  EXPECT_EQ(snapshot.cache_misses, 2u);
  const auto row = runtime.telemetry().tenant_snapshot(1);
  EXPECT_EQ(row.cache_hits, 1u);
  EXPECT_EQ(row.model_swaps, 1u);
  runtime.shutdown();
}

TEST(SwapStressTest, EveryRequestAnsweredByExactlyOneCoherentVersion) {
  // Two weight sets A and B; a swapper thread hot-publishes alternating
  // generations while client threads hammer one latent. Every kOk response
  // must bitwise-match exactly one generation's reference decode AND carry
  // that generation's version — no torn weights, no stale prepacked panel,
  // no cache entry crossing a swap. Snapshots have prepacking enabled
  // (snapshot_of), so a stale packed panel would show up as a mismatch.
  auto sys_a = make_tenant(101);
  auto sys_b = make_tenant(202);

  common::Pcg32 rng(99);
  const Tensor latent = Tensor::randn({kLatentDim}, rng);
  const Tensor expected_a =
      sys_a->edge()
          .decode_inference(latent.reshaped({1, kLatentDim}))
          .reshaped({kInputDim});
  const Tensor expected_b =
      sys_b->edge()
          .decode_inference(latent.reshaped({1, kLatentDim}))
          .reshaped({kInputDim});
  ASSERT_FALSE(bitwise_equal(expected_a, expected_b));

  auto registry = std::make_shared<ModelRegistry>();
  // Odd versions carry A's weights, even versions B's.
  (void)registry->publish(1, snapshot_of(*sys_a, 1));

  serve::ServeConfig scfg;
  scfg.shard_count = 1;
  scfg.queue.capacity = 4096;
  scfg.queue.max_wait_us = 50;
  scfg.model_registry = registry;
  scfg.recon_cache.capacity = 128;  // the cache must stay swap-coherent too
  serve::ServerRuntime runtime(scfg);
  runtime.register_cluster(1, sys_a);
  runtime.start();

  std::atomic<bool> stop{false};
  std::thread swapper([&] {
    std::uint64_t version = 2;
    while (!stop.load()) {
      auto& source = (version % 2 == 1) ? *sys_a : *sys_b;
      (void)registry->publish(1, snapshot_of(source, version));
      ++version;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  constexpr std::size_t kClients = 3;
  constexpr std::size_t kPerClient = 200;
  std::atomic<std::size_t> ok_count{0};
  std::atomic<std::size_t> mismatches{0};
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        DecodeResponse response = runtime.submit(1, latent).get();
        if (response.status != ResponseStatus::kOk) continue;
        ok_count.fetch_add(1);
        const bool is_a = bitwise_equal(response.reconstruction, expected_a);
        const bool is_b = bitwise_equal(response.reconstruction, expected_b);
        // Exactly one generation produced it, and the stamped version
        // agrees with which one.
        const bool version_says_a = response.model_version % 2 == 1;
        if (!(is_a != is_b) || (is_a && !version_says_a) ||
            (is_b && version_says_a)) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  stop.store(true);
  swapper.join();
  runtime.shutdown();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(ok_count.load(), kClients * kPerClient);
  // The shard must actually have observed swaps for this to mean anything.
  EXPECT_GT(runtime.telemetry().tenant_snapshot(1).model_swaps, 0u);
}

}  // namespace
}  // namespace orco::train
