// Data substrate tests: generators, loaders, metrics, drift, ascii art.
#include <gtest/gtest.h>

#include <set>

#include "data/ascii_art.h"
#include "data/dataloader.h"
#include "data/dataset.h"
#include "data/drift.h"
#include "data/metrics.h"
#include "data/synthetic_gtsrb.h"
#include "data/synthetic_mnist.h"

namespace orco::data {
namespace {

using tensor::Tensor;

TEST(DatasetTest, ValidatesConstruction) {
  const ImageGeometry g{1, 2, 2};
  EXPECT_THROW(Dataset("x", g, 2, Tensor({3, 4}), {0, 1}),
               std::invalid_argument);  // count mismatch
  EXPECT_THROW(Dataset("x", g, 2, Tensor({2, 5}), {0, 1}),
               std::invalid_argument);  // feature mismatch
  EXPECT_THROW(Dataset("x", g, 2, Tensor({2, 4}), {0, 2}),
               std::invalid_argument);  // label out of range
}

TEST(DatasetTest, SubsetGatherSplit) {
  const ImageGeometry g{1, 1, 2};
  Tensor images = Tensor::from2d({{0, 0}, {1, 1}, {2, 2}, {3, 3}});
  Dataset ds("t", g, 4, std::move(images), {0, 1, 2, 3});

  const Dataset sub = ds.subset(1, 3);
  EXPECT_EQ(sub.size(), 2u);
  EXPECT_EQ(sub.label(0), 1u);

  const Dataset gathered = ds.gather({3, 0});
  EXPECT_EQ(gathered.label(0), 3u);
  EXPECT_FLOAT_EQ(gathered.image(1)[0], 0.0f);

  const auto [head, tail] = ds.split(1);
  EXPECT_EQ(head.size(), 1u);
  EXPECT_EQ(tail.size(), 3u);
  EXPECT_EQ(tail.label(0), 1u);
}

TEST(SyntheticMnistTest, DeterministicPerSeed) {
  MnistConfig cfg;
  cfg.count = 20;
  const Dataset a = make_synthetic_mnist(cfg);
  const Dataset b = make_synthetic_mnist(cfg);
  EXPECT_TRUE(a.images().allclose(b.images(), 0.0f));
  EXPECT_EQ(a.labels(), b.labels());
}

TEST(SyntheticMnistTest, DifferentSeedsDiffer) {
  MnistConfig a_cfg;
  a_cfg.count = 20;
  MnistConfig b_cfg = a_cfg;
  b_cfg.seed = 999;
  const Dataset a = make_synthetic_mnist(a_cfg);
  const Dataset b = make_synthetic_mnist(b_cfg);
  EXPECT_FALSE(a.images().allclose(b.images(), 1e-4f));
}

TEST(SyntheticMnistTest, GeometryAndRanges) {
  MnistConfig cfg;
  cfg.count = 50;
  const Dataset ds = make_synthetic_mnist(cfg);
  EXPECT_EQ(ds.size(), 50u);
  EXPECT_EQ(ds.geometry(), kMnistGeometry);
  EXPECT_EQ(ds.num_classes(), kMnistClasses);
  EXPECT_GE(ds.images().min(), 0.0f);
  EXPECT_LE(ds.images().max(), 1.0f);
  for (const auto l : ds.labels()) EXPECT_LT(l, 10u);
}

TEST(SyntheticMnistTest, CoversAllClassesAndHasInk) {
  MnistConfig cfg;
  cfg.count = 300;
  const Dataset ds = make_synthetic_mnist(cfg);
  std::set<std::size_t> classes(ds.labels().begin(), ds.labels().end());
  EXPECT_EQ(classes.size(), 10u);
  // Every digit image should contain meaningful bright strokes.
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_GT(ds.image(i).max(), 0.5f) << "image " << i << " is blank";
  }
}

TEST(SyntheticMnistTest, ClassesAreVisuallyDistinct) {
  // Mean images of different digit classes should differ clearly — the
  // class structure the classifier and reconstruction tasks rely on.
  MnistConfig cfg;
  cfg.count = 400;
  cfg.pixel_noise = 0.0f;
  const Dataset ds = make_synthetic_mnist(cfg);
  std::array<Tensor, 10> means;
  std::array<std::size_t, 10> counts{};
  for (auto& m : means) m = Tensor({784});
  for (std::size_t i = 0; i < ds.size(); ++i) {
    means[ds.label(i)] += ds.image(i);
    counts[ds.label(i)]++;
  }
  for (std::size_t c = 0; c < 10; ++c) {
    ASSERT_GT(counts[c], 0u);
    means[c] *= 1.0f / static_cast<float>(counts[c]);
  }
  const float d01 = (means[0] - means[1]).l2_norm();
  EXPECT_GT(d01, 1.0f);
}

TEST(SyntheticGtsrbTest, DeterministicPerSeed) {
  GtsrbConfig cfg;
  cfg.count = 20;
  const Dataset a = make_synthetic_gtsrb(cfg);
  const Dataset b = make_synthetic_gtsrb(cfg);
  EXPECT_TRUE(a.images().allclose(b.images(), 0.0f));
}

TEST(SyntheticGtsrbTest, GeometryAndRanges) {
  GtsrbConfig cfg;
  cfg.count = 60;
  const Dataset ds = make_synthetic_gtsrb(cfg);
  EXPECT_EQ(ds.geometry(), kGtsrbGeometry);
  EXPECT_EQ(ds.num_classes(), kGtsrbClasses);
  EXPECT_EQ(ds.images().dim(1), 3u * 32u * 32u);
  EXPECT_GE(ds.images().min(), 0.0f);
  EXPECT_LE(ds.images().max(), 1.0f);
  for (const auto l : ds.labels()) EXPECT_LT(l, 43u);
}

TEST(SyntheticGtsrbTest, CoversManyClasses) {
  GtsrbConfig cfg;
  cfg.count = 800;
  const Dataset ds = make_synthetic_gtsrb(cfg);
  std::set<std::size_t> classes(ds.labels().begin(), ds.labels().end());
  EXPECT_GE(classes.size(), 40u);  // 43 classes, uniform sampling
}

TEST(SyntheticGtsrbTest, ImagesAreColourful) {
  GtsrbConfig cfg;
  cfg.count = 30;
  const Dataset ds = make_synthetic_gtsrb(cfg);
  // Channels should differ (not grayscale): compare per-channel means.
  std::size_t colourful = 0;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const Tensor img = ds.image(i);
    double mean_r = 0.0, mean_b = 0.0;
    for (std::size_t p = 0; p < 1024; ++p) {
      mean_r += img[p];
      mean_b += img[2 * 1024 + p];
    }
    if (std::abs(mean_r - mean_b) > 10.0) ++colourful;
  }
  EXPECT_GT(colourful, 10u);
}

TEST(DataLoaderTest, CoversAllSamplesOncePerEpoch) {
  MnistConfig cfg;
  cfg.count = 23;  // prime-ish: forces a partial final batch
  const Dataset ds = make_synthetic_mnist(cfg);
  DataLoader loader(ds, 5, /*shuffle=*/true);
  EXPECT_EQ(loader.batch_count(), 5u);
  std::size_t seen = 0;
  for (std::size_t b = 0; b < loader.batch_count(); ++b) {
    seen += loader.batch(b).size();
  }
  EXPECT_EQ(seen, 23u);
  EXPECT_EQ(loader.batch(4).size(), 3u);  // partial batch kept
}

TEST(DataLoaderTest, ShuffleChangesOrderButNotContent) {
  MnistConfig cfg;
  cfg.count = 40;
  const Dataset ds = make_synthetic_mnist(cfg);
  common::Pcg32 rng(5);
  DataLoader loader(ds, 40, /*shuffle=*/true, rng);
  const auto batch1 = loader.batch(0);
  loader.reshuffle();
  const auto batch2 = loader.batch(0);
  EXPECT_NE(batch1.labels, batch2.labels);  // order differs w.h.p.
  auto sorted1 = batch1.labels, sorted2 = batch2.labels;
  std::sort(sorted1.begin(), sorted1.end());
  std::sort(sorted2.begin(), sorted2.end());
  EXPECT_EQ(sorted1, sorted2);  // same multiset of samples
}

TEST(DataLoaderTest, NoShuffleKeepsDatasetOrder) {
  MnistConfig cfg;
  cfg.count = 10;
  const Dataset ds = make_synthetic_mnist(cfg);
  DataLoader loader(ds, 4, /*shuffle=*/false);
  const auto batch = loader.batch(0);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(batch.labels[i], ds.label(i));
}

TEST(MetricsTest, PsnrIdenticalIsCapped) {
  const Tensor img({16}, 0.5f);
  EXPECT_DOUBLE_EQ(psnr(img, img), 100.0);
}

TEST(MetricsTest, PsnrKnownValue) {
  // MSE = 0.01 -> PSNR = 10*log10(1/0.01) = 20 dB.
  Tensor a({100}, 0.0f);
  Tensor b({100}, 0.1f);
  EXPECT_NEAR(psnr(a, b), 20.0, 1e-6);
}

TEST(MetricsTest, PsnrDecreasesWithNoise) {
  common::Pcg32 rng(7);
  const Tensor ref = Tensor::uniform({784}, rng);
  Tensor mild = ref, severe = ref;
  common::Pcg32 noise_rng(8);
  for (auto& v : mild.data()) {
    v += static_cast<float>(noise_rng.normal(0.0, 0.02));
  }
  for (auto& v : severe.data()) {
    v += static_cast<float>(noise_rng.normal(0.0, 0.2));
  }
  EXPECT_GT(psnr(ref, mild), psnr(ref, severe));
}

TEST(MetricsTest, MeanPsnrAveragesRows) {
  Tensor ref({2, 4}, 0.0f);
  Tensor test = ref;
  test.at(1, 0) = 1.0f;  // only second row differs
  const double mp = mean_psnr(ref, test);
  EXPECT_LT(mp, 100.0);
  EXPECT_GT(mp, 20.0);
}

TEST(MetricsTest, SsimIdenticalIsOne) {
  common::Pcg32 rng(9);
  const Tensor img = Tensor::uniform({784}, rng);
  EXPECT_NEAR(ssim(img, img, kMnistGeometry), 1.0, 1e-6);
}

TEST(MetricsTest, SsimDegradesWithDistortion) {
  MnistConfig cfg;
  cfg.count = 1;
  const Dataset ds = make_synthetic_mnist(cfg);
  const Tensor img = ds.image(0);
  Tensor noisy = img;
  common::Pcg32 rng(10);
  for (auto& v : noisy.data()) {
    v = std::clamp(v + static_cast<float>(rng.normal(0.0, 0.3)), 0.0f, 1.0f);
  }
  const double s = ssim(img, noisy, kMnistGeometry);
  EXPECT_LT(s, 0.9);
  EXPECT_GT(s, -1.0);
}

TEST(MetricsTest, AccuracyCountsMatches) {
  EXPECT_DOUBLE_EQ(accuracy({1, 2, 3}, {1, 2, 0}), 2.0 / 3.0);
  EXPECT_THROW((void)accuracy({1}, {1, 2}), std::invalid_argument);
}

TEST(DriftTest, BrightnessGainRaisesMeanUntilClamp) {
  MnistConfig cfg;
  cfg.count = 10;
  const Dataset ds = make_synthetic_mnist(cfg);
  common::Pcg32 rng(11);
  const Dataset brighter =
      apply_drift(ds, DriftConfig{1.5f, 0.0f, 0.0f}, rng);
  EXPECT_GT(brighter.images().mean(), ds.images().mean());
  EXPECT_LE(brighter.images().max(), 1.0f);
  EXPECT_EQ(brighter.labels(), ds.labels());
}

TEST(DriftTest, NoiseChangesPixelsDeterministicallyPerRng) {
  MnistConfig cfg;
  cfg.count = 5;
  const Dataset ds = make_synthetic_mnist(cfg);
  common::Pcg32 rng_a(12), rng_b(12);
  const Dataset a = apply_drift(ds, DriftConfig{1.0f, 0.0f, 0.1f}, rng_a);
  const Dataset b = apply_drift(ds, DriftConfig{1.0f, 0.0f, 0.1f}, rng_b);
  EXPECT_TRUE(a.images().allclose(b.images(), 0.0f));
  EXPECT_FALSE(a.images().allclose(ds.images(), 1e-4f));
}

TEST(DriftTest, ValidatesConfig) {
  MnistConfig cfg;
  cfg.count = 2;
  const Dataset ds = make_synthetic_mnist(cfg);
  common::Pcg32 rng(13);
  EXPECT_THROW((void)apply_drift(ds, DriftConfig{0.0f, 0.0f, 0.0f}, rng),
               std::invalid_argument);
  EXPECT_THROW((void)apply_drift(ds, DriftConfig{1.0f, 0.0f, -0.5f}, rng),
               std::invalid_argument);
}

TEST(AsciiArtTest, RendersExpectedDimensions) {
  MnistConfig cfg;
  cfg.count = 1;
  const Dataset ds = make_synthetic_mnist(cfg);
  const std::string art = ascii_art(ds.image(0), ds.geometry());
  // 28 rows of 56 chars + newline each.
  EXPECT_EQ(art.size(), 28u * 57u);
}

TEST(AsciiArtTest, RowComposesMultipleImages) {
  MnistConfig cfg;
  cfg.count = 2;
  const Dataset ds = make_synthetic_mnist(cfg);
  const std::string art = ascii_art_row({ds.image(0), ds.image(1)},
                                        {"left", "right"}, ds.geometry());
  EXPECT_NE(art.find("left"), std::string::npos);
  EXPECT_NE(art.find("right"), std::string::npos);
  EXPECT_THROW(
      (void)ascii_art_row({ds.image(0)}, {"a", "b"}, ds.geometry()),
      std::invalid_argument);
}

}  // namespace
}  // namespace orco::data
