// Negative compile tests for the thread-safety contracts.
//
// This file is NOT part of the normal test build (it lives outside the
// tests/*.cpp glob). CMake registers one ctest per ORCO_TSA_CASE value that
// runs `clang++ -fsyntax-only -Wthread-safety -Werror=thread-safety-analysis`
// over it and — for cases 1..4 — expects the compile to FAIL (WILL_FAIL).
// Case 0 is the positive control: the same class with correct locking must
// compile clean, proving the harness would notice if the analysis were
// silently disabled (e.g. the macros expanding to nothing under clang).
//
// Each case is a distinct violation of a contract the src/ tree relies on:
//   1: read of an ORCO_GUARDED_BY field without holding its mutex
//   2: write of an ORCO_GUARDED_BY field without holding its mutex
//   3: call of an ORCO_REQUIRES(mu_) helper without holding mu_
//   4: call of an ORCO_EXCLUDES(mu_) method while holding mu_ (self-deadlock)
#ifndef ORCO_TSA_CASE
#define ORCO_TSA_CASE 0
#endif

#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace orco {

// Mirrors the shape of the annotated classes in src/ (BatchQueue,
// TrainerRuntime, ...): guarded fields, a REQUIRES helper, an EXCLUDES
// public method.
class Guarded {
 public:
  void push(std::uint64_t v) {
    common::MutexLock lock(mu_);
    items_.push_back(v);
    ++total_;
  }

  std::uint64_t total() const {
    common::MutexLock lock(mu_);
    return total_;
  }

  // The slow path get-or-create: must be entered without the lock held.
  std::uint64_t find_or_create(std::uint64_t v) ORCO_EXCLUDES(mu_) {
    common::MutexLock lock(mu_);
    items_.push_back(v);
    return pick_locked();
  }

#if ORCO_TSA_CASE == 1
  // VIOLATION: reads total_ without mu_.
  std::uint64_t racy_read() const { return total_; }
#endif

#if ORCO_TSA_CASE == 2
  // VIOLATION: writes total_ without mu_.
  void racy_write() { total_ = 0; }
#endif

#if ORCO_TSA_CASE == 3
  // VIOLATION: calls the ORCO_REQUIRES(mu_) helper without holding mu_.
  std::uint64_t unguarded_pick() { return pick_locked(); }
#endif

#if ORCO_TSA_CASE == 4
  // VIOLATION: re-enters find_or_create (ORCO_EXCLUDES(mu_)) with mu_
  // held — a self-deadlock on the non-reentrant Mutex.
  std::uint64_t deadlock() {
    common::MutexLock lock(mu_);
    return find_or_create(1);
  }
#endif

 private:
  std::uint64_t pick_locked() const ORCO_REQUIRES(mu_) {
    return items_.empty() ? 0 : items_.back();
  }

  mutable common::Mutex mu_;
  std::vector<std::uint64_t> items_ ORCO_GUARDED_BY(mu_);
  std::uint64_t total_ ORCO_GUARDED_BY(mu_) = 0;
};

// Keep every member instantiated so -fsyntax-only analyzes all of them.
inline std::uint64_t touch() {
  Guarded g;
  g.push(7);
#if ORCO_TSA_CASE == 1
  return g.racy_read();
#elif ORCO_TSA_CASE == 2
  g.racy_write();
  return g.total();
#elif ORCO_TSA_CASE == 3
  return g.unguarded_pick();
#elif ORCO_TSA_CASE == 4
  return g.deadlock();
#else
  return g.total() + g.find_or_create(3);
#endif
}

}  // namespace orco
