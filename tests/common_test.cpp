// Unit tests for src/common: RNG, thread pool, serialisation, tables, checks.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <sstream>

#include "common/check.h"
#include "common/rng.h"
#include "common/serialize.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "common/thread_pool.h"

namespace orco::common {
namespace {

TEST(CheckTest, CheckThrowsInvalidArgumentWithContext) {
  try {
    ORCO_CHECK(1 == 2, "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
  }
}

TEST(CheckTest, EnsureThrowsLogicError) {
  EXPECT_THROW(ORCO_ENSURE(false, "invariant"), std::logic_error);
}

TEST(CheckTest, PassingChecksDoNotThrow) {
  EXPECT_NO_THROW(ORCO_CHECK(true, "fine"));
  EXPECT_NO_THROW(ORCO_ENSURE(true, "fine"));
}

TEST(SplitMix64Test, DeterministicAndDistinct) {
  SplitMix64 a(7), b(7), c(8);
  const auto a1 = a.next();
  EXPECT_EQ(a1, b.next());
  EXPECT_NE(a1, c.next());
}

TEST(Pcg32Test, SameSeedSameStream) {
  Pcg32 a(123, 5), b(123, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Pcg32Test, DifferentStreamsDiverge) {
  Pcg32 a(123, 5), b(123, 6);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Pcg32Test, UniformInUnitInterval) {
  Pcg32 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Pcg32Test, UniformRangeRespectsBounds) {
  Pcg32 rng(2);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.5f, 7.5f);
    EXPECT_GE(v, -2.5f);
    EXPECT_LT(v, 7.5f);
  }
}

TEST(Pcg32Test, BoundedStaysInRange) {
  Pcg32 rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
  EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Pcg32Test, BoundedCoversAllValues) {
  Pcg32 rng(4);
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.bounded(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Pcg32Test, NormalMomentsApproximatelyStandard) {
  Pcg32 rng(5);
  const int n = 20000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Pcg32Test, NormalWithParamsShiftsAndScales) {
  Pcg32 rng(6);
  const int n = 20000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(Pcg32Test, SplitProducesIndependentStream) {
  Pcg32 parent(7);
  Pcg32 child = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(ShuffledIndicesTest, IsAPermutation) {
  Pcg32 rng(8);
  const auto idx = shuffled_indices(100, rng);
  std::set<std::size_t> unique(idx.begin(), idx.end());
  EXPECT_EQ(unique.size(), 100u);
  EXPECT_EQ(*unique.begin(), 0u);
  EXPECT_EQ(*unique.rbegin(), 99u);
}

TEST(ShuffledIndicesTest, ActuallyShuffles) {
  Pcg32 rng(9);
  const auto idx = shuffled_indices(100, rng);
  std::vector<std::size_t> sorted(100);
  std::iota(sorted.begin(), sorted.end(), std::size_t{0});
  EXPECT_NE(idx, sorted);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, 1000, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, HelperFallsBackToSerialBelowGrain) {
  std::vector<int> hits(10, 0);
  parallel_for(nullptr, 0, 10, 100,
               [&](std::size_t lo, std::size_t hi) {
                 for (std::size_t i = lo; i < hi; ++i) hits[i]++;
               });
  for (const auto h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolTest, GlobalPoolIsReusable) {
  auto& pool = ThreadPool::global();
  std::atomic<int> count{0};
  pool.parallel_for(0, 64, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 64);
}

TEST(SerializeTest, RoundTripsPods) {
  ByteWriter w;
  w.write_u32(0xdeadbeef);
  w.write_u64(0x0123456789abcdefULL);
  w.write_f32(3.5f);
  w.write_f64(-2.25);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.read_u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.read_f32(), 3.5f);
  EXPECT_EQ(r.read_f64(), -2.25);
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, RoundTripsVectorsAndStrings) {
  ByteWriter w;
  w.write_f32_span(std::vector<float>{1.0f, 2.0f, 3.0f});
  w.write_string("orcodcs");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.read_f32_vector(), (std::vector<float>{1.0f, 2.0f, 3.0f}));
  EXPECT_EQ(r.read_string(), "orcodcs");
}

TEST(SerializeTest, UnderrunThrows) {
  ByteWriter w;
  w.write_u32(1);
  ByteReader r(w.bytes());
  (void)r.read_u32();
  EXPECT_THROW((void)r.read_u32(), std::invalid_argument);
}

TEST(SerializeTest, FileRoundTrip) {
  ByteWriter w;
  w.write_string("persist me");
  const std::string path = ::testing::TempDir() + "/orco_serialize_test.bin";
  write_file(path, w.bytes());
  const auto bytes = read_file(path);
  ByteReader r(bytes);
  EXPECT_EQ(r.read_string(), "persist me");
}

TEST(SerializeTest, MissingFileThrows) {
  EXPECT_THROW((void)read_file("/nonexistent/definitely/missing.bin"),
               std::runtime_error);
}

TEST(TableTest, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TableTest, RejectsRaggedRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TableTest, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(TableTest, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(1.23456, 2), "1.23");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(StopwatchTest, MeasuresNonNegativeMonotonicTime) {
  Stopwatch sw;
  const double t1 = sw.seconds();
  const double t2 = sw.seconds();
  EXPECT_GE(t1, 0.0);
  EXPECT_GE(t2, t1);
  sw.reset();
  EXPECT_GE(sw.seconds(), 0.0);
}

}  // namespace
}  // namespace orco::common
