// Cross-cutting property tests: algebraic laws the kernels must satisfy for
// every shape/seed (parameterised sweeps), plus checkpointing round-trips.
#include <gtest/gtest.h>

#include "core/orcodcs.h"
#include "data/synthetic_mnist.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"
#include "wsn/radio.h"

namespace orco {
namespace {

using tensor::Tensor;

// ---- tensor algebra laws over a shape sweep --------------------------------

class TensorLawSuite
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(TensorLawSuite, AdditionCommutesAndAssociates) {
  const auto [rows, cols] = GetParam();
  common::Pcg32 rng(rows * 131 + cols);
  const Tensor a = Tensor::randn({rows, cols}, rng);
  const Tensor b = Tensor::randn({rows, cols}, rng);
  const Tensor c = Tensor::randn({rows, cols}, rng);
  EXPECT_TRUE((a + b).allclose(b + a, 1e-6f));
  EXPECT_TRUE(((a + b) + c).allclose(a + (b + c), 1e-5f));
}

TEST_P(TensorLawSuite, HadamardDistributesOverAddition) {
  const auto [rows, cols] = GetParam();
  common::Pcg32 rng(rows * 17 + cols);
  const Tensor a = Tensor::randn({rows, cols}, rng);
  const Tensor b = Tensor::randn({rows, cols}, rng);
  const Tensor c = Tensor::randn({rows, cols}, rng);
  EXPECT_TRUE((a * (b + c)).allclose(a * b + a * c, 1e-4f));
}

TEST_P(TensorLawSuite, TransposeIsInvolution) {
  const auto [rows, cols] = GetParam();
  common::Pcg32 rng(rows * 31 + cols);
  const Tensor a = Tensor::randn({rows, cols}, rng);
  EXPECT_TRUE(a.transposed().transposed().allclose(a, 0.0f));
}

TEST_P(TensorLawSuite, MatmulRespectsIdentity) {
  const auto [rows, cols] = GetParam();
  common::Pcg32 rng(rows * 53 + cols);
  const Tensor a = Tensor::randn({rows, cols}, rng);
  Tensor eye({cols, cols});
  for (std::size_t i = 0; i < cols; ++i) eye.at(i, i) = 1.0f;
  EXPECT_TRUE(tensor::matmul(a, eye).allclose(a, 1e-5f));
}

TEST_P(TensorLawSuite, MatmulTransposeLaw) {
  // (A B)^T == B^T A^T
  const auto [rows, cols] = GetParam();
  common::Pcg32 rng(rows * 71 + cols);
  const Tensor a = Tensor::randn({rows, cols}, rng);
  const Tensor b = Tensor::randn({cols, rows}, rng);
  const Tensor lhs = tensor::matmul(a, b).transposed();
  const Tensor rhs = tensor::matmul(b.transposed(), a.transposed());
  EXPECT_TRUE(lhs.allclose(rhs, 1e-4f));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TensorLawSuite,
    ::testing::Values(std::make_pair(1, 1), std::make_pair(3, 5),
                      std::make_pair(8, 8), std::make_pair(16, 4),
                      std::make_pair(5, 32), std::make_pair(64, 17)),
    [](const auto& info) {
      return "r" + std::to_string(info.param.first) + "c" +
             std::to_string(info.param.second);
    });

// ---- layer linearity laws ----------------------------------------------------

TEST(LayerLawTest, DenseIsAffine) {
  // f(ax + by) = a f(x) + b f(y) - (a + b - 1) bias-term; with zero bias the
  // layer must be exactly linear.
  common::Pcg32 rng(1);
  nn::Dense dense(6, 4, rng);
  dense.bias().fill(0.0f);
  const Tensor x = Tensor::randn({2, 6}, rng);
  const Tensor y = Tensor::randn({2, 6}, rng);
  const Tensor lhs = dense.forward(x * 2.0f + y * 3.0f, false);
  const Tensor rhs =
      dense.forward(x, false) * 2.0f + dense.forward(y, false) * 3.0f;
  EXPECT_TRUE(lhs.allclose(rhs, 1e-4f));
}

TEST(LayerLawTest, ConvIsLinearWithZeroBias) {
  common::Pcg32 rng(2);
  nn::Conv2d conv(2, 3, 3, 1, 1, 6, 6, rng);
  conv.params()[1].value->fill(0.0f);
  const Tensor x = Tensor::randn({1, 2 * 36}, rng);
  const Tensor y = Tensor::randn({1, 2 * 36}, rng);
  const Tensor lhs = conv.forward(x + y, false);
  const Tensor rhs = conv.forward(x, false) + conv.forward(y, false);
  EXPECT_TRUE(lhs.allclose(rhs, 1e-4f));
}

TEST(LayerLawTest, ConvTranslationCovariance) {
  // Shifting the input by one pixel shifts the (interior of the) output by
  // one pixel for a stride-1 same-padded conv.
  common::Pcg32 rng(3);
  nn::Conv2d conv(1, 1, 3, 1, 1, 8, 8, rng);
  conv.params()[1].value->fill(0.0f);
  Tensor x({1, 64});
  x[3 * 8 + 3] = 1.0f;  // impulse at (3,3)
  Tensor x_shift({1, 64});
  x_shift[3 * 8 + 4] = 1.0f;  // impulse at (3,4)
  const Tensor y = conv.forward(x, false);
  const Tensor y_shift = conv.forward(x_shift, false);
  // Compare interior responses shifted by one column.
  for (std::size_t r = 1; r < 7; ++r) {
    for (std::size_t c = 1; c < 6; ++c) {
      EXPECT_NEAR(y[r * 8 + c], y_shift[r * 8 + c + 1], 1e-5f);
    }
  }
}

// ---- radio model laws ---------------------------------------------------------

TEST(RadioLawTest, EnergyContinuousAtCrossover) {
  wsn::RadioModel radio;
  const double d0 = radio.crossover_distance();
  const double below = radio.tx_energy(100, d0 * (1 - 1e-9));
  const double above = radio.tx_energy(100, d0 * (1 + 1e-9));
  EXPECT_NEAR(below, above, below * 1e-6);
}

TEST(RadioLawTest, EnergyAdditiveInPayloadWithinPacket) {
  wsn::RadioModel radio;
  // Within one packet (no extra header), energy is linear in bits.
  const double e40 = radio.tx_energy(40, 20.0);
  const double e80 = radio.tx_energy(80, 20.0);
  const double header =
      radio.tx_energy(0, 20.0);  // zero payload -> zero packets -> 0
  EXPECT_DOUBLE_EQ(header, 0.0);
  // e80 - e40 == energy of 40 payload bytes without another header.
  const double per_byte =
      (e80 - e40) / 40.0;
  EXPECT_GT(per_byte, 0.0);
}

// ---- message fuzz round-trips -------------------------------------------------

class MessageFuzzSuite : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MessageFuzzSuite, RandomTensorsSurviveRoundTrip) {
  common::Pcg32 rng(GetParam());
  const std::size_t rows = 1 + rng.bounded(16);
  const std::size_t cols = 1 + rng.bounded(256);
  core::LatentBatchMsg msg{rng.next(), Tensor::randn({rows, cols}, rng)};
  const auto back = core::LatentBatchMsg::deserialize(msg.serialize());
  EXPECT_EQ(back.round, msg.round);
  EXPECT_TRUE(back.latents.allclose(msg.latents, 0.0f));

  core::LatentGradMsg grad{rng.next(), rng.uniform(0.0f, 10.0f),
                           Tensor::randn({rows, cols}, rng)};
  const auto grad_back = core::LatentGradMsg::deserialize(grad.serialize());
  EXPECT_FLOAT_EQ(grad_back.loss, grad.loss);
  EXPECT_TRUE(grad_back.latent_grad.allclose(grad.latent_grad, 0.0f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageFuzzSuite,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- checkpointing -------------------------------------------------------------

core::SystemConfig checkpoint_config() {
  core::SystemConfig cfg;
  cfg.orco.input_dim = 784;
  cfg.orco.latent_dim = 32;
  cfg.orco.batch_size = 32;
  cfg.field.device_count = 8;
  cfg.field.radio_range_m = 60.0;
  return cfg;
}

TEST(CheckpointTest, RoundTripRestoresReconstructions) {
  data::MnistConfig mc;
  mc.count = 128;
  const auto train = data::make_synthetic_mnist(mc);

  core::OrcoDcsSystem trained(checkpoint_config());
  (void)trained.train_online(train, 2);
  const std::string path = ::testing::TempDir() + "/orco_checkpoint_test.bin";
  trained.save_checkpoint(path);

  core::OrcoDcsSystem fresh(checkpoint_config());
  const auto before = fresh.reconstruct(train.images().slice_rows(0, 4));
  fresh.load_checkpoint(path);
  const auto after = fresh.reconstruct(train.images().slice_rows(0, 4));
  const auto reference = trained.reconstruct(train.images().slice_rows(0, 4));
  EXPECT_FALSE(before.allclose(reference, 1e-5f));
  EXPECT_TRUE(after.allclose(reference, 0.0f));
}

TEST(CheckpointTest, MismatchedConfigurationRejected) {
  core::OrcoDcsSystem sys(checkpoint_config());
  const std::string path = ::testing::TempDir() + "/orco_checkpoint_test2.bin";
  sys.save_checkpoint(path);

  auto other_cfg = checkpoint_config();
  other_cfg.orco.latent_dim = 64;
  core::OrcoDcsSystem other(other_cfg);
  EXPECT_THROW(other.load_checkpoint(path), std::invalid_argument);
}

TEST(CheckpointTest, TrainingCanResumeFromCheckpoint) {
  data::MnistConfig mc;
  mc.count = 128;
  const auto train = data::make_synthetic_mnist(mc);

  core::OrcoDcsSystem sys(checkpoint_config());
  (void)sys.train_online(train, 2);
  const float loss_before = sys.evaluate_loss(train);
  const std::string path = ::testing::TempDir() + "/orco_checkpoint_test3.bin";
  sys.save_checkpoint(path);

  core::OrcoDcsSystem resumed(checkpoint_config());
  resumed.load_checkpoint(path);
  EXPECT_NEAR(resumed.evaluate_loss(train), loss_before, 1e-5f);
  (void)resumed.train_online(train, 2);
  EXPECT_LT(resumed.evaluate_loss(train), loss_before);
}

// ---- deep-tree distributed encoding (chain topology) ---------------------------

TEST(ChainTopologyTest, DistributedEncodeMatchesOnDeepTree) {
  // 30-node chain: maximally deep tree, worst case for partial-sum flow.
  std::vector<wsn::Position> positions;
  for (int i = 0; i <= 30; ++i) {
    positions.push_back(wsn::Position{10.0 * i, 0.0});
  }
  const wsn::Field field(std::move(positions), 0, 15.0);
  const wsn::AggregationTree tree(field, wsn::RadioModel{});
  EXPECT_EQ(tree.max_depth(), 30u);

  core::OrcoConfig cfg;
  cfg.input_dim = 30;
  cfg.latent_dim = 7;
  common::Pcg32 rng(9);
  const auto encoder = core::build_encoder(cfg, rng);
  const core::DistributedEncoder dist(tree,
                                      core::make_encoder_shares(*encoder, 30));
  const Tensor readings = Tensor::uniform({30}, rng);
  const Tensor distributed = dist.encode(readings);
  const Tensor central =
      encoder->forward(readings.reshaped({1, 30}), false).reshaped({7});
  EXPECT_TRUE(distributed.allclose(central, 1e-4f));
}

}  // namespace
}  // namespace orco
