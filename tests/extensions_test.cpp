// Tests for the extension modules: sensor-field telemetry, the
// formulation-level cluster pipeline, network lifetime, and EdgeFleet.
#include <gtest/gtest.h>

#include "core/cluster_pipeline.h"
#include "core/edge_fleet.h"
#include "data/sensor_field.h"
#include "wsn/lifetime.h"

namespace orco {
namespace {

using tensor::Tensor;

wsn::Field test_field(std::size_t devices = 16, std::uint64_t seed = 7) {
  wsn::FieldConfig cfg;
  cfg.device_count = devices;
  cfg.side_m = 100.0;
  cfg.radio_range_m = 50.0;
  cfg.seed = seed;
  return wsn::Field(cfg);
}

// ---- sensor field ------------------------------------------------------------

TEST(SensorFieldTest, ShapeRangeAndDeterminism) {
  const auto field = test_field();
  data::SensorFieldConfig cfg;
  cfg.steps = 64;
  const auto a = data::make_sensor_field(field, cfg);
  const auto b = data::make_sensor_field(field, cfg);
  EXPECT_EQ(a.size(), 64u);
  EXPECT_EQ(a.geometry().features(), 16u);
  EXPECT_GE(a.images().min(), 0.0f);
  EXPECT_LE(a.images().max(), 1.0f);
  EXPECT_TRUE(a.images().allclose(b.images(), 0.0f));
}

TEST(SensorFieldTest, NearbyDevicesCorrelateMoreThanDistantOnes) {
  // The defining property of the field: spatial correlation. Compare the
  // reading correlation of the closest device pair against the farthest.
  const auto field = test_field(20, 9);
  data::SensorFieldConfig cfg;
  cfg.steps = 256;
  cfg.noise_std = 0.01f;
  cfg.device_bias_std = 0.0f;
  const auto ds = data::make_sensor_field(field, cfg);

  // Map device index -> node id (skip aggregator), find extreme pairs.
  std::vector<wsn::NodeId> nodes;
  for (wsn::NodeId n = 0; n < field.node_count(); ++n) {
    if (n != field.aggregator()) nodes.push_back(n);
  }
  std::size_t ci = 0, cj = 1, fi = 0, fj = 1;
  double dmin = 1e18, dmax = -1.0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const double d = field.link_distance(nodes[i], nodes[j]);
      if (d < dmin) { dmin = d; ci = i; cj = j; }
      if (d > dmax) { dmax = d; fi = i; fj = j; }
    }
  }

  auto correlation = [&](std::size_t a, std::size_t b) {
    double ma = 0.0, mb = 0.0;
    const std::size_t t_count = ds.size();
    for (std::size_t t = 0; t < t_count; ++t) {
      ma += ds.images().at(t, a);
      mb += ds.images().at(t, b);
    }
    ma /= t_count;
    mb /= t_count;
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (std::size_t t = 0; t < t_count; ++t) {
      const double da = ds.images().at(t, a) - ma;
      const double db = ds.images().at(t, b) - mb;
      cov += da * db;
      va += da * da;
      vb += db * db;
    }
    return cov / std::max(1e-12, std::sqrt(va * vb));
  };
  EXPECT_GT(correlation(ci, cj), correlation(fi, fj));
}

// ---- formulation-level cluster pipeline ---------------------------------------

core::SystemConfig telemetry_config(std::size_t devices) {
  core::SystemConfig cfg;
  cfg.orco.input_dim = devices;  // scalar reading per device (sec. II)
  cfg.orco.latent_dim = 6;
  cfg.orco.batch_size = 32;
  cfg.orco.noise_variance = 0.001f;
  cfg.field.device_count = devices;
  cfg.field.radio_range_m = 50.0;
  return cfg;
}

TEST(ClusterPipelineTest, RequiresMatchingDeviceCount) {
  auto cfg = telemetry_config(16);
  cfg.orco.input_dim = 10;  // mismatch
  core::OrcoDcsSystem sys(cfg);
  EXPECT_THROW(core::ClusterPipeline{sys}, std::invalid_argument);
}

TEST(ClusterPipelineTest, SenseRequiresDeploy) {
  core::OrcoDcsSystem sys(telemetry_config(16));
  core::ClusterPipeline pipeline(sys);
  EXPECT_FALSE(pipeline.deployed());
  EXPECT_THROW((void)pipeline.sense_round(Tensor({16})),
               std::invalid_argument);
}

TEST(ClusterPipelineTest, EndToEndTelemetryRound) {
  core::OrcoDcsSystem sys(telemetry_config(16));
  const auto readings_ds =
      data::make_sensor_field(sys.field(), data::SensorFieldConfig{});
  (void)sys.train_online(readings_ds, 8);

  core::ClusterPipeline pipeline(sys);
  const double bc_seconds = pipeline.deploy();
  EXPECT_GT(bc_seconds, 0.0);
  EXPECT_TRUE(pipeline.deployed());

  const Tensor readings = readings_ds.image(0);
  const auto result = pipeline.sense_round(readings);
  EXPECT_EQ(result.latent.numel(), 6u);
  EXPECT_EQ(result.reconstruction.numel(), 16u);
  EXPECT_GT(result.seconds, 0.0);

  // Trained on this distribution: mean error over many rounds beats an
  // identically-configured untrained system.
  core::OrcoDcsSystem untrained_sys(telemetry_config(16));
  core::ClusterPipeline untrained(untrained_sys);
  (void)untrained.deploy();
  double trained_err = 0.0, untrained_err = 0.0;
  for (std::size_t t = 0; t < 16; ++t) {
    trained_err += pipeline.sense_round(readings_ds.image(t)).error;
    untrained_err += untrained.sense_round(readings_ds.image(t)).error;
  }
  EXPECT_LT(trained_err, untrained_err);
}

TEST(ClusterPipelineTest, DistributedEncodeStaysConsistentAfterTraining) {
  core::OrcoDcsSystem sys(telemetry_config(24));
  const auto readings_ds =
      data::make_sensor_field(sys.field(), data::SensorFieldConfig{});
  (void)sys.train_online(readings_ds, 4);
  core::ClusterPipeline pipeline(sys);
  (void)pipeline.deploy();
  for (std::size_t t = 0; t < 8; ++t) {
    EXPECT_LT(pipeline.encode_divergence(readings_ds.image(t)), 1e-4f);
  }
}

TEST(ClusterPipelineTest, RedeployPicksUpRetrainedEncoder) {
  core::OrcoDcsSystem sys(telemetry_config(16));
  const auto readings_ds =
      data::make_sensor_field(sys.field(), data::SensorFieldConfig{});
  (void)sys.train_online(readings_ds, 2);
  core::ClusterPipeline pipeline(sys);
  (void)pipeline.deploy();
  const Tensor readings = readings_ds.image(0);
  const auto before = pipeline.sense_round(readings);

  (void)sys.train_online(readings_ds, 6);  // fine-tuning relaunch
  // Stale columns: divergence vs the retrained centralised encoder grows...
  EXPECT_GT(pipeline.encode_divergence(readings), 1e-4f);
  // ...until redeployment distributes fresh columns.
  (void)pipeline.deploy();
  EXPECT_LT(pipeline.encode_divergence(readings), 1e-4f);
  const auto after = pipeline.sense_round(readings);
  EXPECT_LT(after.error, before.error);
}

// ---- per-node energy + lifetime -----------------------------------------------

TEST(LifetimeTest, NodeEnergiesSumToRoundTotal) {
  const auto field = test_field();
  const wsn::AggregationTree tree(field, wsn::RadioModel{});
  wsn::TransmissionLedger ledger;
  const auto stats = tree.simulate_raw_round(64, ledger);
  ASSERT_EQ(stats.node_energy_j.size(), field.node_count());
  double sum = 0.0;
  for (const auto e : stats.node_energy_j) sum += e;
  EXPECT_NEAR(sum, stats.energy_j, stats.energy_j * 1e-9);
}

TEST(LifetimeTest, ValidatesInputs) {
  const auto field = test_field();
  EXPECT_THROW((void)wsn::estimate_lifetime(field, {1.0, 2.0}, 100.0),
               std::invalid_argument);
  std::vector<double> profile(field.node_count(), 1e-6);
  EXPECT_THROW((void)wsn::estimate_lifetime(field, profile, 0.0),
               std::invalid_argument);
}

TEST(LifetimeTest, HybridCsOutlivesRawAggregation) {
  // Deep chain: raw aggregation drains near-root relays; hybrid caps them.
  std::vector<wsn::Position> positions;
  for (int i = 0; i <= 24; ++i) {
    positions.push_back(wsn::Position{12.0 * i, 0.0});
  }
  const wsn::Field field(std::move(positions), 0, 18.0);
  const wsn::AggregationTree tree(field, wsn::RadioModel{});
  wsn::TransmissionLedger ledger;

  const auto raw = tree.simulate_raw_round(4, ledger);
  const auto cs = tree.simulate_hybrid_cs_round(4, 4, ledger);
  const double battery = 2.0;  // joules

  const auto raw_life = wsn::estimate_lifetime(field, raw.node_energy_j, battery);
  const auto cs_life = wsn::estimate_lifetime(field, cs.node_energy_j, battery);
  EXPECT_GT(cs_life.rounds_until_first_death,
            raw_life.rounds_until_first_death * 2.0);
  // The raw bottleneck is the relay next to the root (node 1 on the chain).
  EXPECT_EQ(raw_life.first_dead_node, 1u);
}

// ---- edge fleet ------------------------------------------------------------------

TEST(EdgeFleetTest, ValidatesConfig) {
  core::EdgeFleetConfig cfg;
  cfg.clusters = 0;
  EXPECT_THROW((void)core::simulate_edge_fleet(cfg), std::invalid_argument);
  cfg.clusters = 1;
  cfg.edge_service_s = 0.0;
  EXPECT_THROW((void)core::simulate_edge_fleet(cfg), std::invalid_argument);
}

TEST(EdgeFleetTest, SingleClusterHasNoQueueing) {
  core::EdgeFleetConfig cfg;
  cfg.clusters = 1;
  cfg.horizon_s = 10.0;
  const auto report = core::simulate_edge_fleet(cfg);
  EXPECT_DOUBLE_EQ(report.mean_wait_s, 0.0);
  EXPECT_GT(report.total_rounds, 0u);
  // Cycle time = aggregator + service + comms.
  const double cycle = cfg.aggregator_s + cfg.edge_service_s + cfg.comms_s;
  EXPECT_NEAR(static_cast<double>(report.total_rounds),
              cfg.horizon_s / cycle, 2.0);
}

TEST(EdgeFleetTest, UtilisationGrowsWithClustersUntilSaturation) {
  double last_util = 0.0;
  for (const std::size_t k : {1, 2, 4, 8, 32}) {
    core::EdgeFleetConfig cfg;
    cfg.clusters = k;
    cfg.horizon_s = 20.0;
    const auto report = core::simulate_edge_fleet(cfg);
    EXPECT_GE(report.edge_utilisation, last_util - 1e-9);
    EXPECT_LE(report.edge_utilisation, 1.0 + 1e-9);
    last_util = report.edge_utilisation;
  }
  EXPECT_GT(last_util, 0.9);  // 32 clusters saturate this edge
}

TEST(EdgeFleetTest, WaitingAppearsOnlyUnderContention) {
  core::EdgeFleetConfig light;
  light.clusters = 2;
  light.horizon_s = 20.0;
  core::EdgeFleetConfig heavy = light;
  heavy.clusters = 32;
  const auto light_report = core::simulate_edge_fleet(light);
  const auto heavy_report = core::simulate_edge_fleet(heavy);
  EXPECT_LT(light_report.mean_wait_s, heavy_report.mean_wait_s);
  EXPECT_GT(heavy_report.mean_round_latency_s,
            light_report.mean_round_latency_s);
}

TEST(EdgeFleetTest, FifoIsFairAcrossIdenticalClusters) {
  core::EdgeFleetConfig cfg;
  cfg.clusters = 8;
  cfg.horizon_s = 30.0;
  const auto report = core::simulate_edge_fleet(cfg);
  EXPECT_GT(report.fairness, 0.9);
}

}  // namespace
}  // namespace orco
