// Cross-module integration tests: miniature versions of the paper's
// headline comparisons, asserting the *shape* of each result (who wins)
// rather than absolute numbers.
#include <gtest/gtest.h>

#include "apps/classifier.h"
#include "baseline/dcsnet.h"
#include "core/orcodcs.h"
#include "data/metrics.h"
#include "data/synthetic_mnist.h"

namespace orco {
namespace {

core::SystemConfig orco_mnist_config() {
  core::SystemConfig cfg;
  cfg.orco.input_dim = 784;
  cfg.orco.latent_dim = 64;
  cfg.orco.batch_size = 32;
  cfg.orco.learning_rate = 3.0f;
  cfg.orco.noise_variance = 0.01f;
  cfg.field.device_count = 12;
  cfg.field.radio_range_m = 55.0;
  return cfg;
}

data::Dataset train_set() {
  data::MnistConfig cfg;
  cfg.count = 600;
  cfg.seed = 11;
  return data::make_synthetic_mnist(cfg);
}

data::Dataset test_set() {
  data::MnistConfig cfg;
  cfg.count = 200;
  cfg.seed = 12;
  return data::make_synthetic_mnist(cfg);
}

TEST(IntegrationTest, MiniFig3TransmissionOrcoBeatsDcsnet) {
  const auto images = test_set().images();

  core::OrcoDcsSystem orco(orco_mnist_config());
  (void)orco.aggregate_images(images);

  baseline::DcsNetConfig dcs_cfg;  // fixed 1024-dim latent
  baseline::DcsNetSystem dcsnet(data::kMnistGeometry, dcs_cfg,
                                wsn::ChannelConfig{}, core::ComputeModel{});
  (void)dcsnet.aggregate_images(images);

  const auto orco_up =
      orco.ledger().totals(wsn::LinkKind::kUplink).payload_bytes;
  const auto dcs_up =
      dcsnet.ledger().totals(wsn::LinkKind::kUplink).payload_bytes;
  // Fig. 3 shape: OrcoDCS transmits several times fewer bytes.
  EXPECT_GT(dcs_up, orco_up * 4);
}

TEST(IntegrationTest, MiniFig4OrcoReachesLowerLossInLessSimTime) {
  const auto train = train_set();

  core::OrcoDcsSystem orco(orco_mnist_config());
  const auto orco_summary = orco.train_online(train, 2);

  baseline::DcsNetConfig dcs_cfg;
  dcs_cfg.latent_dim = 256;  // scaled for test speed; still > OrcoDCS's 64
  dcs_cfg.data_fraction = 0.5f;
  baseline::DcsNetSystem dcsnet(data::kMnistGeometry, dcs_cfg,
                                wsn::ChannelConfig{}, core::ComputeModel{});
  const auto dcs_summary = dcsnet.train_online(train, 2);

  // OrcoDCS's asymmetric (shallow) models make each round cheaper in
  // simulated time even though it sees 2x the data per epoch.
  const double orco_time_per_round =
      orco_summary.sim_seconds / static_cast<double>(orco_summary.rounds.size());
  const double dcs_time_per_round =
      dcs_summary.sim_seconds / static_cast<double>(dcs_summary.rounds.size());
  EXPECT_LT(orco_time_per_round, dcs_time_per_round);

  // And it ends at a lower Huber evaluation loss on held-out data.
  const auto test = test_set();
  EXPECT_LT(orco.evaluate_loss(test), dcsnet.evaluate_loss(test));
}

TEST(IntegrationTest, MiniFig5ClassifierPrefersOrcoReconstructions) {
  // The follow-up classifier consumes data that went through the CDA
  // pipeline end to end, so it is trained AND evaluated on reconstructions.
  // OrcoDCS uses its per-task flexibility (latent 128, 3-layer decoder,
  // online epochs within the same simulated-time budget class); DCSNet is
  // frozen at its predefined structure with 30% data access.
  const auto train = train_set();
  const auto test = test_set();

  auto cfg = orco_mnist_config();
  cfg.orco.latent_dim = 128;
  cfg.orco.decoder_layers = 3;
  core::OrcoDcsSystem orco(cfg);
  (void)orco.train_online(train, 20);

  baseline::DcsNetConfig dcs_cfg;
  dcs_cfg.latent_dim = 256;
  dcs_cfg.data_fraction = 0.3f;  // DCSNet-30%: weakest baseline
  baseline::DcsNetSystem dcsnet(data::kMnistGeometry, dcs_cfg,
                                wsn::ChannelConfig{}, core::ComputeModel{});
  (void)dcsnet.train_online(train, 4);

  const auto orco_rec = [&](const tensor::Tensor& x) {
    return orco.reconstruct(x);
  };
  const auto dcs_rec = [&](const tensor::Tensor& x) {
    return dcsnet.reconstruct(x);
  };
  const auto orco_train = apps::reconstruct_dataset(train, orco_rec);
  const auto dcs_train = apps::reconstruct_dataset(train, dcs_rec);
  const auto orco_test = apps::reconstruct_dataset(test, orco_rec);
  const auto dcs_test = apps::reconstruct_dataset(test, dcs_rec);

  apps::ClassifierConfig clf_cfg;
  clf_cfg.learning_rate = 3e-3f;
  apps::CnnClassifier orco_clf(data::kMnistGeometry, 10, clf_cfg);
  apps::CnnClassifier dcs_clf(data::kMnistGeometry, 10, clf_cfg);
  for (int e = 0; e < 6; ++e) {
    (void)orco_clf.train_epoch(orco_train);
    (void)dcs_clf.train_epoch(dcs_train);
  }
  const auto orco_eval = orco_clf.evaluate(orco_test);
  const auto dcs_eval = dcs_clf.evaluate(dcs_test);
  // Fig. 5 shape: classifier trained on OrcoDCS reconstructions wins.
  EXPECT_GT(orco_eval.accuracy, dcs_eval.accuracy);
}

TEST(IntegrationTest, ReconstructionQualityOrderingHoldsOnPsnr) {
  // Mini Fig. 2: after equal training effort, OrcoDCS reconstruction PSNR
  // beats the data-starved fixed-structure baseline.
  const auto train = train_set();
  const auto test = test_set();

  core::OrcoDcsSystem orco(orco_mnist_config());
  (void)orco.train_online(train, 3);

  baseline::DcsNetConfig dcs_cfg;
  dcs_cfg.latent_dim = 256;
  dcs_cfg.data_fraction = 0.5f;
  baseline::DcsNetSystem dcsnet(data::kMnistGeometry, dcs_cfg,
                                wsn::ChannelConfig{}, core::ComputeModel{});
  (void)dcsnet.train_online(train, 3);

  const double orco_psnr =
      data::mean_psnr(test.images(), orco.reconstruct(test.images()));
  const double dcs_psnr =
      data::mean_psnr(test.images(), dcsnet.reconstruct(test.images()));
  EXPECT_GT(orco_psnr, dcs_psnr);
}

TEST(IntegrationTest, FullPipelineStagesRunInSequence) {
  // Stage 1 raw aggregation -> stage 2 training -> encoder broadcast ->
  // stage 3 compressed aggregation, with the ledger seeing every stage.
  core::OrcoDcsSystem sys(orco_mnist_config());
  const auto train = train_set();

  (void)sys.raw_aggregation_round(784 * sizeof(float));
  const auto summary = sys.train_online(train, 1);
  (void)sys.distribute_encoder();
  (void)sys.compressed_aggregation_round();

  EXPECT_GT(summary.rounds.size(), 0u);
  const auto& ledger = sys.ledger();
  EXPECT_GT(ledger.totals(wsn::LinkKind::kIntraCluster).messages, 0u);
  EXPECT_GT(ledger.totals(wsn::LinkKind::kUplink).messages, 0u);
  EXPECT_GT(ledger.totals(wsn::LinkKind::kDownlink).messages, 0u);
  EXPECT_GT(ledger.totals(wsn::LinkKind::kBroadcast).messages, 0u);
  EXPECT_GT(sys.sim_time(), 0.0);
}

}  // namespace
}  // namespace orco
