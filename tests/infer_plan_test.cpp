// Tests for InferPlan, the compile-once inference plan (nn/infer_plan.h):
// compile-time structure (identity layers dropped, activations fused,
// packed panels pre-attached), bitwise parity with Sequential::infer_into
// across all three backends and odd shapes, the int8 quantized head,
// all-identity chains, nested-chain flattening, weight-staleness
// detection, and the precomputed arena high-water.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/conv_transpose2d.h"
#include "nn/dense.h"
#include "nn/infer_context.h"
#include "nn/infer_plan.h"
#include "nn/noise.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "tensor/backend.h"

namespace orco {
namespace {

using nn::InferContext;
using nn::InferPlan;
using tensor::Tensor;

/// The three real backends every parity claim must hold on.
std::vector<const tensor::Backend*> all_backends() {
  return {&tensor::reference_backend(), &tensor::blocked_backend(),
          &tensor::simd_backend()};
}

/// Odd-shaped Dense chain (no power-of-two dims, every epilogue kind) —
/// identical weights for every call with the same seed.
std::unique_ptr<nn::Sequential> make_odd_dense_model(std::uint64_t seed) {
  common::Pcg32 rng(seed);
  auto model = std::make_unique<nn::Sequential>();
  model->emplace<nn::Dense>(13, 37, rng);
  model->emplace<nn::ReLU>();
  model->emplace<nn::Dense>(37, 29, rng);
  model->emplace<nn::LeakyReLU>(0.07f);
  model->emplace<nn::Dense>(29, 23, rng);
  model->emplace<nn::Tanh>();
  model->emplace<nn::Dense>(23, 31, rng);
  model->emplace<nn::Sigmoid>();
  return model;
}

void expect_bitwise_equal(const Tensor& got, const Tensor& want,
                          const char* what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  for (std::size_t i = 0; i < got.numel(); ++i) {
    ASSERT_EQ(got[i], want[i]) << what << " elem " << i;
  }
}

TEST(InferPlanTest, CompileDropsIdentityAndFusesActivations) {
  common::Pcg32 rng(41);
  nn::Sequential model;
  model.emplace<nn::GaussianNoise>(0.1f, common::Pcg32(1));
  model.emplace<nn::Dense>(16, 32, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dense>(32, 24, rng);
  model.emplace<nn::LeakyReLU>(0.05f);
  model.emplace<nn::Dense>(24, 8, rng);
  model.emplace<nn::Sigmoid>();

  const auto plan = InferPlan::compile(model, &tensor::blocked_backend());
  // Noise dropped, each Dense+activation pair fused: 7 layers -> 3 ops.
  ASSERT_EQ(plan->size(), 3u);
  EXPECT_EQ(&plan->backend(), &tensor::blocked_backend());
  const tensor::EpilogueAct acts[] = {tensor::EpilogueAct::kReLU,
                                      tensor::EpilogueAct::kLeakyReLU,
                                      tensor::EpilogueAct::kSigmoid};
  for (std::size_t i = 0; i < 3; ++i) {
    const nn::PlanOp& op = plan->ops()[i];
    EXPECT_TRUE(op.fused) << "op " << i;
    EXPECT_EQ(op.act, acts[i]) << "op " << i;
    ASSERT_NE(op.dense, nullptr) << "op " << i;
    EXPECT_EQ(op.conv, nullptr) << "op " << i;
    // Panels packed at compile, pinned to the compile backend.
    ASSERT_NE(op.packed, nullptr) << "op " << i;
    EXPECT_EQ(op.packed->owner, &tensor::blocked_backend()) << "op " << i;
    EXPECT_EQ(op.packed_version, op.dense->weight_version()) << "op " << i;
  }
  EXPECT_EQ(plan->ops()[1].leaky_alpha, 0.05f);
  EXPECT_FALSE(plan->weights_stale());
}

TEST(InferPlanTest, MatchesSequentialBitwiseOnAllBackendsAndOddShapes) {
  for (const tensor::Backend* backend : all_backends()) {
    tensor::BackendScope scope(backend);
    const auto model = make_odd_dense_model(97);
    const auto plan = InferPlan::compile(*model, backend);

    InferContext seq_ctx, plan_ctx;
    Tensor expected, got;
    common::Pcg32 rng(5);
    for (const std::size_t batch : {1u, 3u, 7u, 11u, 7u}) {
      const Tensor x = Tensor::randn({batch, 13}, rng);
      model->infer_into(x, expected, seq_ctx);
      plan->run(x, got, plan_ctx);
      expect_bitwise_equal(got, expected, "dense plan");
    }
  }
}

TEST(InferPlanTest, ConvChainMatchesSequentialBitwiseOnAllBackends) {
  for (const tensor::Backend* backend : all_backends()) {
    tensor::BackendScope scope(backend);
    common::Pcg32 rng(57);
    nn::Sequential model;
    model.emplace<nn::Conv2d>(1, 4, 3, 1, 1, 8, 8, rng);
    model.emplace<nn::ReLU>();
    model.emplace<nn::MaxPool2d>(4, 8, 8, 2, 2);
    model.emplace<nn::ConvTranspose2d>(4, 1, 2, 2, 0, 4, 4, rng);
    model.emplace<nn::Sigmoid>();
    const auto plan = InferPlan::compile(model, backend);
    // Conv2d op carries panels; pool / transpose run the generic entries.
    ASSERT_EQ(plan->size(), 3u);
    EXPECT_NE(plan->ops()[0].conv, nullptr);
    EXPECT_NE(plan->ops()[0].packed, nullptr);

    InferContext seq_ctx, plan_ctx;
    Tensor expected, got;
    for (const std::size_t batch : {1u, 3u, 5u}) {
      const Tensor x = Tensor::randn({batch, 64}, rng);
      model.infer_into(x, expected, seq_ctx);
      plan->run(x, got, plan_ctx);
      expect_bitwise_equal(got, expected, "conv plan");
    }
  }
}

TEST(InferPlanTest, RunUnderForeignBackendScopeStaysBitwiseCorrect) {
  // Panels are pinned to the compile backend; a BackendScope override at
  // run time must fall back to the unpacked kernels and still match the
  // Sequential result under that same scope bitwise.
  const auto model = make_odd_dense_model(131);
  const auto plan = InferPlan::compile(*model, &tensor::blocked_backend());

  tensor::BackendScope scope(&tensor::reference_backend());
  InferContext seq_ctx, plan_ctx;
  Tensor expected, got;
  common::Pcg32 rng(9);
  const Tensor x = Tensor::randn({5, 13}, rng);
  model->infer_into(x, expected, seq_ctx);
  plan->run(x, got, plan_ctx);
  expect_bitwise_equal(got, expected, "foreign-scope plan");
}

TEST(InferPlanTest, QuantizedHeadMatchesSequentialBitwiseOnAllBackends) {
  constexpr std::size_t kBatch = 6, kFeatures = 13;
  std::vector<std::uint8_t> codes(kBatch * kFeatures);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<std::uint8_t>((i * 73 + 19) & 0xFF);
  }
  std::vector<float> lo(kBatch), scale(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    lo[i] = -0.75f + 0.2f * static_cast<float>(i);
    scale[i] = (1.0f + 0.1f * static_cast<float>(i)) / 255.0f;
  }
  const tensor::QuantHeader qh{lo.data(), scale.data()};

  for (const tensor::Backend* backend : all_backends()) {
    tensor::BackendScope scope(backend);
    const auto model = make_odd_dense_model(211);
    const auto plan = InferPlan::compile(*model, backend);

    InferContext seq_ctx, plan_ctx;
    Tensor expected, got;
    model->infer_quantized_into(codes.data(), qh, kBatch, kFeatures, expected,
                                seq_ctx);
    plan->run_quantized(codes.data(), qh, kBatch, kFeatures, got, plan_ctx);
    expect_bitwise_equal(got, expected, "quantized head");

    // Partial batch through the same contexts.
    model->infer_quantized_into(codes.data(), qh, 2, kFeatures, expected,
                                seq_ctx);
    plan->run_quantized(codes.data(), qh, 2, kFeatures, got, plan_ctx);
    expect_bitwise_equal(got, expected, "quantized head partial batch");
  }
}

TEST(InferPlanTest, QuantizedNonDenseHeadDequantizesAndMatchesSequential) {
  // A conv-headed chain has no Dense to feed codes into: both executors
  // dequantize into their context input buffer and run the float chain.
  tensor::BackendScope scope(&tensor::blocked_backend());
  common::Pcg32 rng(77);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(1, 2, 3, 1, 1, 4, 4, rng);
  model.emplace<nn::ReLU>();
  const auto plan = InferPlan::compile(model);

  constexpr std::size_t kBatch = 3, kFeatures = 16;
  std::vector<std::uint8_t> codes(kBatch * kFeatures);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<std::uint8_t>((i * 41 + 7) & 0xFF);
  }
  std::vector<float> lo(kBatch, -0.5f), scale(kBatch, 1.0f / 255.0f);
  const tensor::QuantHeader qh{lo.data(), scale.data()};

  InferContext seq_ctx, plan_ctx;
  Tensor expected, got;
  model.infer_quantized_into(codes.data(), qh, kBatch, kFeatures, expected,
                             seq_ctx);
  plan->run_quantized(codes.data(), qh, kBatch, kFeatures, got, plan_ctx);
  expect_bitwise_equal(got, expected, "conv-head quantized");
}

TEST(InferPlanTest, AllIdentityChainCompilesToEmptyPlanAndCopies) {
  nn::Sequential model;
  model.emplace<nn::GaussianNoise>(0.2f, common::Pcg32(3));
  model.emplace<nn::GaussianNoise>(0.3f, common::Pcg32(4));
  const auto plan = InferPlan::compile(model);
  EXPECT_EQ(plan->size(), 0u);
  EXPECT_EQ(plan->scratch_floats(), 0u);
  EXPECT_FALSE(plan->weights_stale());

  common::Pcg32 rng(15);
  const Tensor x = Tensor::randn({4, 9}, rng);
  InferContext seq_ctx, plan_ctx;
  Tensor expected, got;
  model.infer_into(x, expected, seq_ctx);
  plan->run(x, got, plan_ctx);
  expect_bitwise_equal(got, expected, "identity chain");

  // Quantized entry through an empty plan is pure dequantization.
  std::vector<std::uint8_t> codes(2 * 9, 128);
  std::vector<float> lo(2, -1.0f), scale(2, 2.0f / 255.0f);
  const tensor::QuantHeader qh{lo.data(), scale.data()};
  model.infer_quantized_into(codes.data(), qh, 2, 9, expected, seq_ctx);
  plan->run_quantized(codes.data(), qh, 2, 9, got, plan_ctx);
  expect_bitwise_equal(got, expected, "identity chain quantized");
}

TEST(InferPlanTest, NestedChainCompilesAndRunsBitwiseEqualToFlat) {
  // Same seed -> identical weights; the nested container must flatten into
  // the same plan (op count included) and the same bits as the flat chain.
  const auto flat = make_odd_dense_model(303);

  common::Pcg32 rng(303);
  auto outer = std::make_unique<nn::Sequential>();
  auto inner = std::make_unique<nn::Sequential>();
  outer->emplace<nn::Dense>(13, 37, rng);
  outer->emplace<nn::ReLU>();
  inner->emplace<nn::Dense>(37, 29, rng);
  inner->emplace<nn::LeakyReLU>(0.07f);
  inner->emplace<nn::Dense>(29, 23, rng);
  inner->emplace<nn::Tanh>();
  outer->add(std::move(inner));
  outer->emplace<nn::Dense>(23, 31, rng);
  outer->emplace<nn::Sigmoid>();

  const auto flat_plan = InferPlan::compile(*flat);
  const auto nested_plan = InferPlan::compile(*outer);
  ASSERT_EQ(nested_plan->size(), flat_plan->size());

  InferContext flat_ctx, nested_ctx;
  Tensor flat_out, nested_out;
  common::Pcg32 data_rng(31);
  for (const std::size_t batch : {1u, 6u}) {
    const Tensor x = Tensor::randn({batch, 13}, data_rng);
    flat_plan->run(x, flat_out, flat_ctx);
    nested_plan->run(x, nested_out, nested_ctx);
    expect_bitwise_equal(nested_out, flat_out, "nested plan vs flat plan");

    // And the container's own infer_into agrees with both.
    Tensor seq_out;
    outer->infer_into(x, seq_out, nested_ctx);
    expect_bitwise_equal(seq_out, flat_out, "nested infer_into vs flat plan");
  }
}

TEST(InferPlanTest, WeightsStaleFlipsAfterMutationAndRecompileClears) {
  common::Pcg32 rng(59);
  nn::Sequential model;
  auto& dense = model.emplace<nn::Dense>(8, 12, rng);
  model.emplace<nn::ReLU>();

  const auto plan = InferPlan::compile(model);
  EXPECT_FALSE(plan->weights_stale());
  // A training step / checkpoint load bumps the weight version this way.
  model.invalidate_weight_cache();
  EXPECT_TRUE(plan->weights_stale());
  (void)dense;

  const auto fresh = InferPlan::compile(model);
  EXPECT_FALSE(fresh->weights_stale());
  // The stale plan still executes (reading its captured panels) — it must
  // not crash, and the fresh plan reflects the live weights.
  InferContext ctx;
  Tensor out;
  const Tensor x = Tensor::randn({2, 8}, rng);
  plan->run(x, out, ctx);
  fresh->run(x, out, ctx);
}

TEST(InferPlanTest, ScratchFloatsCoversArenaHighWaterExactly) {
  // The conv chain is the scratch-hungry case: the im2col column matrix is
  // the arena high-water, precomputed at compile so the first run() reserves
  // once and the arena never opens a second block.
  tensor::BackendScope scope(&tensor::blocked_backend());
  common::Pcg32 rng(67);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(1, 4, 3, 1, 1, 8, 8, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::ConvTranspose2d>(4, 1, 2, 2, 0, 8, 8, rng);
  const auto plan = InferPlan::compile(model);
  EXPECT_GT(plan->scratch_floats(), 0u);

  InferContext ctx;
  Tensor out;
  const Tensor x = Tensor::randn({4, 64}, rng);
  plan->run(x, out, ctx);
  EXPECT_LE(ctx.scratch().high_water(), plan->scratch_floats());
  EXPECT_EQ(ctx.scratch().block_count(), 1u);  // one reserve, no growth
  const std::size_t cap = ctx.scratch().capacity();
  for (int i = 0; i < 4; ++i) plan->run(x, out, ctx);
  EXPECT_EQ(ctx.scratch().capacity(), cap);
  EXPECT_EQ(ctx.scratch().block_count(), 1u);
}

TEST(InferPlanTest, MultiOpPlanRejectsContextBufferOutput) {
  // Two ping-pong buffers cannot hold the input chain AND an aliased output
  // of a multi-op plan; the executor refuses loudly instead of silently
  // allocating (the retired Sequential escape hatch).
  common::Pcg32 rng(83);
  nn::Sequential model;
  model.emplace<nn::Dense>(8, 16, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dense>(16, 8, rng);
  const auto plan = InferPlan::compile(model);
  ASSERT_GE(plan->size(), 2u);

  InferContext ctx;
  const Tensor x = Tensor::randn({2, 8}, rng);
  EXPECT_THROW(plan->run(x, ctx.buffer(1), ctx), std::invalid_argument);
}

}  // namespace
}  // namespace orco
