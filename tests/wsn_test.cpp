// WSN substrate tests: radio model, ledger, field, tree invariants, channel.
#include <gtest/gtest.h>

#include <set>

#include "wsn/aggregation_tree.h"
#include "wsn/channel.h"
#include "wsn/field.h"
#include "wsn/ledger.h"
#include "wsn/radio.h"

namespace orco::wsn {
namespace {

TEST(RadioModelTest, CrossoverDistanceMatchesCoefficients) {
  RadioModel radio;
  const double d0 = radio.crossover_distance();
  EXPECT_NEAR(d0, std::sqrt(10e-12 / 0.0013e-12), 1e-6);
}

TEST(RadioModelTest, PacketizationRoundsUp) {
  RadioModel radio;
  radio.mtu_payload_bytes = 100;
  EXPECT_EQ(radio.packets_for(0), 0u);
  EXPECT_EQ(radio.packets_for(1), 1u);
  EXPECT_EQ(radio.packets_for(100), 1u);
  EXPECT_EQ(radio.packets_for(101), 2u);
  radio.header_bytes = 10;
  EXPECT_EQ(radio.wire_bytes(101), 101u + 20u);
}

TEST(RadioModelTest, TxEnergyMonotonicInDistanceAndSize) {
  RadioModel radio;
  EXPECT_LT(radio.tx_energy(100, 10.0), radio.tx_energy(100, 50.0));
  EXPECT_LT(radio.tx_energy(100, 10.0), radio.tx_energy(200, 10.0));
  // Beyond crossover the d^4 term dominates.
  const double d0 = radio.crossover_distance();
  EXPECT_LT(radio.tx_energy(100, d0 * 0.99), radio.tx_energy(100, d0 * 1.5));
}

TEST(RadioModelTest, RxEnergyIndependentOfDistance) {
  RadioModel radio;
  EXPECT_GT(radio.rx_energy(100), 0.0);
  EXPECT_LT(radio.rx_energy(100), radio.tx_energy(100, 80.0));
}

TEST(RadioModelTest, AirtimeScalesWithBytes) {
  RadioModel radio;
  EXPECT_NEAR(radio.airtime(200) / radio.airtime(100), 2.0, 0.3);
  EXPECT_THROW((void)radio.tx_energy(10, -1.0), std::invalid_argument);
}

TEST(LedgerTest, AccumulatesPerLinkKind) {
  TransmissionLedger ledger;
  ledger.record(LinkKind::kUplink, 100, 120, 1, 0.5, 0.01);
  ledger.record(LinkKind::kUplink, 200, 240, 2, 0.5, 0.02);
  ledger.record(LinkKind::kDownlink, 50, 60, 1, 0.0, 0.005);

  const auto& up = ledger.totals(LinkKind::kUplink);
  EXPECT_EQ(up.payload_bytes, 300u);
  EXPECT_EQ(up.wire_bytes, 360u);
  EXPECT_EQ(up.packets, 3u);
  EXPECT_EQ(up.messages, 2u);
  EXPECT_DOUBLE_EQ(up.energy_j, 1.0);

  const auto total = ledger.grand_total();
  EXPECT_EQ(total.payload_bytes, 350u);
  EXPECT_NEAR(ledger.total_airtime(), 0.035, 1e-12);
}

TEST(LedgerTest, RejectsInconsistentRecords) {
  TransmissionLedger ledger;
  EXPECT_THROW(ledger.record(LinkKind::kUplink, 100, 50, 1, 0.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(ledger.record(LinkKind::kUplink, 10, 20, 1, -1.0, 0.0),
               std::invalid_argument);
}

TEST(LedgerTest, ResetClearsEverything) {
  TransmissionLedger ledger;
  ledger.record(LinkKind::kBroadcast, 10, 12, 1, 0.1, 0.1);
  ledger.reset();
  EXPECT_EQ(ledger.grand_total().messages, 0u);
  EXPECT_EQ(ledger.summary(), "");
}

TEST(FieldTest, DeterministicDeployment) {
  FieldConfig cfg;
  cfg.device_count = 16;
  const Field a(cfg), b(cfg);
  for (NodeId i = 0; i < a.node_count(); ++i) {
    EXPECT_DOUBLE_EQ(a.position(i).x, b.position(i).x);
    EXPECT_DOUBLE_EQ(a.position(i).y, b.position(i).y);
  }
  EXPECT_EQ(a.aggregator(), b.aggregator());
}

TEST(FieldTest, NodesInsideFieldAndCounts) {
  FieldConfig cfg;
  cfg.device_count = 30;
  cfg.side_m = 50.0;
  const Field field(cfg);
  EXPECT_EQ(field.device_count(), 30u);
  EXPECT_EQ(field.node_count(), 31u);
  for (NodeId i = 0; i < field.node_count(); ++i) {
    EXPECT_GE(field.position(i).x, 0.0);
    EXPECT_LE(field.position(i).x, 50.0);
  }
}

TEST(FieldTest, DistanceSymmetricAndRangeConsistent) {
  FieldConfig cfg;
  cfg.device_count = 10;
  const Field field(cfg);
  EXPECT_DOUBLE_EQ(field.link_distance(0, 5), field.link_distance(5, 0));
  EXPECT_TRUE(field.in_range(3, 3));
  EXPECT_EQ(field.in_range(2, 7),
            field.link_distance(2, 7) <= field.radio_range() + 1e-9);
}

Field dense_field(std::size_t devices = 24, std::uint64_t seed = 7) {
  FieldConfig cfg;
  cfg.device_count = devices;
  cfg.side_m = 100.0;
  cfg.radio_range_m = 45.0;
  cfg.seed = seed;
  return Field(cfg);
}

TEST(AggregationTreeTest, SpansAllNodes) {
  const Field field = dense_field();
  const AggregationTree tree(field, RadioModel{});
  EXPECT_EQ(tree.root(), field.aggregator());
  EXPECT_EQ(tree.parent(tree.root()), tree.root());
  // Every non-root node reaches the root by parent pointers.
  for (NodeId v = 0; v < field.node_count(); ++v) {
    NodeId u = v;
    std::size_t hops = 0;
    while (u != tree.root()) {
      u = tree.parent(u);
      ASSERT_LT(++hops, field.node_count());
    }
    EXPECT_EQ(hops, tree.depth(v));
  }
}

TEST(AggregationTreeTest, LinksRespectRadioRange) {
  const Field field = dense_field();
  const AggregationTree tree(field, RadioModel{});
  for (NodeId v = 0; v < field.node_count(); ++v) {
    if (v == tree.root()) continue;
    EXPECT_TRUE(field.in_range(v, tree.parent(v)));
  }
}

TEST(AggregationTreeTest, SubtreeSizesAreConsistent) {
  const Field field = dense_field();
  const AggregationTree tree(field, RadioModel{});
  // Root's device count equals all devices.
  EXPECT_EQ(tree.subtree_size(tree.root()), field.device_count());
  // A node's subtree = own (1) + sum of children's subtrees.
  for (NodeId v = 0; v < field.node_count(); ++v) {
    std::size_t sum = (v == tree.root()) ? 0 : 1;
    for (const NodeId c : tree.children(v)) sum += tree.subtree_size(c);
    EXPECT_EQ(tree.subtree_size(v), sum);
  }
}

TEST(AggregationTreeTest, BottomUpOrderVisitsChildrenFirst) {
  const Field field = dense_field();
  const AggregationTree tree(field, RadioModel{});
  std::set<NodeId> visited;
  for (const NodeId u : tree.bottom_up_order()) {
    for (const NodeId c : tree.children(u)) {
      EXPECT_TRUE(visited.count(c)) << "child " << c << " after parent " << u;
    }
    visited.insert(u);
  }
  EXPECT_EQ(visited.size(), field.node_count());
}

TEST(AggregationTreeTest, UnreachableNodeThrows) {
  FieldConfig cfg;
  cfg.device_count = 12;
  cfg.side_m = 500.0;
  cfg.radio_range_m = 10.0;  // almost surely disconnected
  cfg.seed = 3;
  const Field field(cfg);
  EXPECT_THROW(AggregationTree(field, RadioModel{}), std::invalid_argument);
}

TEST(AggregationTreeTest, RawRoundBytesMatchSubtreeArithmetic) {
  const Field field = dense_field();
  const AggregationTree tree(field, RadioModel{});
  TransmissionLedger ledger;
  const auto stats = tree.simulate_raw_round(4, ledger);
  // Each non-root node forwards subtree_size readings of 4 bytes.
  std::size_t expected = 0;
  for (NodeId v = 0; v < field.node_count(); ++v) {
    if (v == tree.root()) continue;
    expected += tree.subtree_size(v) * 4;
  }
  EXPECT_EQ(stats.payload_bytes, expected);
  EXPECT_EQ(ledger.totals(LinkKind::kIntraCluster).payload_bytes, expected);
  EXPECT_GT(stats.energy_j, 0.0);
  EXPECT_GT(stats.airtime_s, 0.0);
}

// A 1-D chain with the aggregator at one end forces deep multi-hop routes —
// the regime where hybrid CS pays off (near-root hops carry whole subtrees).
Field chain_field(std::size_t devices, double spacing = 10.0) {
  std::vector<Position> positions;
  positions.reserve(devices + 1);
  for (std::size_t i = 0; i <= devices; ++i) {
    positions.push_back(Position{spacing * static_cast<double>(i), 0.0});
  }
  return Field(std::move(positions), /*aggregator=*/0,
               /*radio_range_m=*/spacing * 1.5);
}

TEST(AggregationTreeTest, ChainTopologyBuildsDeepTree) {
  const Field field = chain_field(20);
  const AggregationTree tree(field, RadioModel{});
  EXPECT_EQ(tree.max_depth(), 20u);
  EXPECT_EQ(tree.subtree_size(1), 20u);  // node next to the root carries all
}

TEST(AggregationTreeTest, HybridCsCapsPerHopCost) {
  const Field field = chain_field(40);
  const AggregationTree tree(field, RadioModel{});
  TransmissionLedger raw_ledger, cs_ledger;
  const std::size_t m = 8;  // much smaller than 40 devices
  const auto raw = tree.simulate_raw_round(4, raw_ledger);
  const auto cs = tree.simulate_hybrid_cs_round(m, 4, cs_ledger);
  EXPECT_LT(cs.payload_bytes, raw.payload_bytes);
  // Raw on the chain: sum_{k=1..40} k readings. Hybrid: capped at M.
  EXPECT_EQ(raw.payload_bytes, 4u * (40u * 41u) / 2u);
  std::size_t expected = 0;
  for (NodeId v = 0; v < field.node_count(); ++v) {
    if (v == tree.root()) continue;
    expected += std::min(tree.subtree_size(v), m) * 4;
  }
  EXPECT_EQ(cs.payload_bytes, expected);
}

TEST(AggregationTreeTest, HybridEqualsRawWhenMExceedsDevices) {
  const Field field = dense_field(10, 13);
  const AggregationTree tree(field, RadioModel{});
  TransmissionLedger a, b;
  const auto raw = tree.simulate_raw_round(4, a);
  const auto cs = tree.simulate_hybrid_cs_round(1000, 4, b);
  EXPECT_EQ(raw.payload_bytes, cs.payload_bytes);
}

TEST(AggregationTreeTest, BroadcastChargesInternalNodes) {
  const Field field = dense_field();
  const AggregationTree tree(field, RadioModel{});
  TransmissionLedger ledger;
  const auto stats = tree.simulate_broadcast(1024, ledger);
  EXPECT_GT(stats.payload_bytes, 0u);
  EXPECT_EQ(ledger.totals(LinkKind::kBroadcast).payload_bytes,
            stats.payload_bytes);
  std::size_t internal = 0;
  for (NodeId v = 0; v < field.node_count(); ++v) {
    if (!tree.children(v).empty()) ++internal;
  }
  EXPECT_EQ(ledger.totals(LinkKind::kBroadcast).messages, internal);
}

TEST(ChannelTest, TransferTimeFollowsBandwidthAsymmetry) {
  ChannelConfig cfg;
  cfg.uplink_bps = 1e6;
  cfg.downlink_bps = 10e6;
  cfg.latency_s = 0.0;
  Channel channel(cfg);
  TransmissionLedger ledger;
  const double up = channel.send(100000, Direction::kUp, ledger);
  const double down = channel.send(100000, Direction::kDown, ledger);
  EXPECT_NEAR(up / down, 10.0, 0.1);
  EXPECT_EQ(ledger.totals(LinkKind::kUplink).messages, 1u);
  EXPECT_EQ(ledger.totals(LinkKind::kDownlink).messages, 1u);
}

TEST(ChannelTest, LatencyFloorsSmallMessages) {
  ChannelConfig cfg;
  cfg.latency_s = 0.5;
  Channel channel(cfg);
  TransmissionLedger ledger;
  EXPECT_GE(channel.send(1, Direction::kUp, ledger), 0.5);
}

TEST(ChannelTest, PacketizationAddsHeaders) {
  ChannelConfig cfg;
  cfg.header_bytes = 40;
  cfg.mtu_payload_bytes = 1000;
  Channel channel(cfg);
  EXPECT_EQ(channel.packets_for(0), 1u);
  EXPECT_EQ(channel.packets_for(1000), 1u);
  EXPECT_EQ(channel.packets_for(1001), 2u);
  EXPECT_EQ(channel.wire_bytes(2500), 2500u + 3u * 40u);
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
  clock.advance(1.5);
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(clock.now(), 2.0);
  EXPECT_THROW(clock.advance(-1.0), std::invalid_argument);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

}  // namespace
}  // namespace orco::wsn
