// Follow-up classifier tests (paper §IV-A / Fig. 5 machinery).
#include <gtest/gtest.h>

#include <cmath>

#include "apps/classifier.h"
#include "data/synthetic_mnist.h"

namespace orco::apps {
namespace {

data::Dataset easy_mnist(std::size_t count, std::uint64_t seed = 1) {
  data::MnistConfig cfg;
  cfg.count = count;
  cfg.seed = seed;
  cfg.pixel_noise = 0.02f;
  return data::make_synthetic_mnist(cfg);
}

TEST(ClassifierTest, ConstructionValidatesClasses) {
  ClassifierConfig cfg;
  EXPECT_THROW(CnnClassifier(data::kMnistGeometry, 1, cfg),
               std::invalid_argument);
}

TEST(ClassifierTest, PredictsOneLabelPerRow) {
  ClassifierConfig cfg;
  CnnClassifier clf(data::kMnistGeometry, 10, cfg);
  const auto ds = easy_mnist(12);
  const auto preds = clf.predict(ds.images());
  EXPECT_EQ(preds.size(), 12u);
  for (const auto p : preds) EXPECT_LT(p, 10u);
}

TEST(ClassifierTest, LearnsAboveChanceInTwoEpochs) {
  const auto train = easy_mnist(600, 2);
  const auto test = easy_mnist(200, 3);
  ClassifierConfig cfg;
  cfg.learning_rate = 2e-3f;
  CnnClassifier clf(data::kMnistGeometry, 10, cfg);

  const float loss1 = clf.train_epoch(train);
  const float loss2 = clf.train_epoch(train);
  EXPECT_LT(loss2, loss1);

  const auto eval = clf.evaluate(test);
  EXPECT_GT(eval.accuracy, 0.3);  // chance is 0.1
  EXPECT_LT(eval.loss, std::log(10.0) + 0.5);
}

TEST(ClassifierTest, EvaluateRejectsWrongGeometry) {
  ClassifierConfig cfg;
  CnnClassifier clf(data::kMnistGeometry, 10, cfg);
  data::ImageGeometry other{3, 32, 32};
  data::Dataset wrong("w", other, 10,
                      tensor::Tensor({4, other.features()}),
                      std::vector<std::size_t>(4, 0));
  EXPECT_THROW((void)clf.evaluate(wrong), std::invalid_argument);
  EXPECT_THROW((void)clf.train_epoch(wrong), std::invalid_argument);
}

TEST(ReconstructDatasetTest, PreservesLabelsAndShape) {
  const auto ds = easy_mnist(20, 4);
  const auto identity = [](const tensor::Tensor& x) { return x; };
  const auto rec = reconstruct_dataset(ds, identity, 7);
  EXPECT_EQ(rec.size(), ds.size());
  EXPECT_EQ(rec.labels(), ds.labels());
  EXPECT_TRUE(rec.images().allclose(ds.images(), 0.0f));
  EXPECT_NE(rec.name(), ds.name());
}

TEST(ReconstructDatasetTest, AppliesTransform) {
  const auto ds = easy_mnist(10, 5);
  const auto halve = [](const tensor::Tensor& x) { return x * 0.5f; };
  const auto rec = reconstruct_dataset(ds, halve);
  EXPECT_TRUE(rec.images().allclose(ds.images() * 0.5f, 1e-6f));
}

TEST(ReconstructDatasetTest, RejectsBadTransformOutput) {
  const auto ds = easy_mnist(6, 6);
  const auto broken = [](const tensor::Tensor& x) {
    return x.slice_rows(0, x.dim(0) - 1);  // drops a row
  };
  EXPECT_THROW((void)reconstruct_dataset(ds, broken, 3),
               std::invalid_argument);
}

}  // namespace
}  // namespace orco::apps
