// Orchestration-protocol tests: message round-trips, wire sizes, endpoint
// lifecycles, loss agreement across the boundary, and training behaviour.
#include <gtest/gtest.h>

#include "core/orcodcs.h"
#include "data/synthetic_mnist.h"
#include "nn/dense.h"

namespace orco::core {
namespace {

using tensor::Tensor;

OrcoConfig small_config() {
  OrcoConfig cfg;
  cfg.input_dim = 64;   // 8x8 toy "sensing data"
  cfg.latent_dim = 8;
  cfg.decoder_layers = 1;
  cfg.noise_variance = 0.01f;
  cfg.batch_size = 16;
  cfg.learning_rate = 2.0f;
  return cfg;
}

DataAggregator make_aggregator(const OrcoConfig& cfg, std::uint64_t seed = 1) {
  common::Pcg32 rng(seed);
  common::Pcg32 noise_rng(seed + 1);
  return DataAggregator(build_encoder(cfg, rng), cfg, noise_rng);
}

EdgeServer make_edge(const OrcoConfig& cfg, std::uint64_t seed = 2) {
  common::Pcg32 rng(seed);
  return EdgeServer(build_decoder(cfg, rng), cfg);
}

TEST(MessagesTest, LatentBatchRoundTrip) {
  common::Pcg32 rng(3);
  LatentBatchMsg msg{7, Tensor::randn({4, 8}, rng)};
  const auto bytes = msg.serialize();
  const auto back = LatentBatchMsg::deserialize(bytes);
  EXPECT_EQ(back.round, 7u);
  EXPECT_TRUE(back.latents.allclose(msg.latents, 0.0f));
}

TEST(MessagesTest, WireSizeIsPayloadPlusSmallHeader) {
  common::Pcg32 rng(4);
  LatentBatchMsg msg{0, Tensor::randn({16, 128}, rng)};
  const auto bytes = msg.serialize();
  const std::size_t payload = 16 * 128 * sizeof(float);
  EXPECT_GE(bytes.size(), payload);
  EXPECT_LT(bytes.size(), payload + 64);  // round + rank + dims + count
}

TEST(MessagesTest, AllMessageTypesRoundTrip) {
  common::Pcg32 rng(5);
  ReconstructionMsg rec{1, Tensor::randn({2, 6}, rng)};
  EXPECT_TRUE(ReconstructionMsg::deserialize(rec.serialize())
                  .reconstructions.allclose(rec.reconstructions, 0.0f));
  ResidualMsg res{2, Tensor::randn({2, 6}, rng)};
  EXPECT_TRUE(ResidualMsg::deserialize(res.serialize())
                  .residuals.allclose(res.residuals, 0.0f));
  LatentGradMsg grad{3, 0.25f, Tensor::randn({2, 4}, rng)};
  const auto back = LatentGradMsg::deserialize(grad.serialize());
  EXPECT_FLOAT_EQ(back.loss, 0.25f);
  EXPECT_TRUE(back.latent_grad.allclose(grad.latent_grad, 0.0f));
  EncoderShareMsg share{5, Tensor::randn({4}, rng), Tensor::randn({4}, rng)};
  const auto share_back = EncoderShareMsg::deserialize(share.serialize());
  EXPECT_EQ(share_back.device, 5u);
  EXPECT_TRUE(share_back.column.allclose(share.column, 0.0f));
}

TEST(MessagesTest, TruncatedBufferThrows) {
  common::Pcg32 rng(6);
  LatentBatchMsg msg{0, Tensor::randn({2, 3}, rng)};
  auto bytes = msg.serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)LatentBatchMsg::deserialize(bytes),
               std::invalid_argument);
}

TEST(AggregatorTest, NoiseAppliedOnlyInTraining) {
  auto cfg = small_config();
  cfg.noise_variance = 0.25f;
  common::Pcg32 rng(7);
  const Tensor batch = Tensor::uniform({8, cfg.input_dim}, rng);

  auto agg = make_aggregator(cfg);
  const Tensor clean = agg.encode_inference(batch);
  const auto noisy = agg.encode_batch(batch, 0, /*training=*/true);
  EXPECT_FALSE(noisy.latents.allclose(clean, 1e-5f));
  // Inference path must be deterministic.
  auto agg2 = make_aggregator(cfg);
  EXPECT_TRUE(agg2.encode_inference(batch).allclose(clean, 0.0f));
}

TEST(AggregatorTest, RoundLifecycleEnforced) {
  auto cfg = small_config();
  auto agg = make_aggregator(cfg);
  common::Pcg32 rng(8);
  const Tensor batch = Tensor::uniform({4, cfg.input_dim}, rng);
  (void)agg.encode_batch(batch, 0, true);
  // Double-open is rejected.
  EXPECT_THROW((void)agg.encode_batch(batch, 1, true), std::invalid_argument);
  // Mismatched round in reconstruction is rejected.
  ReconstructionMsg wrong{9, Tensor({4, cfg.input_dim})};
  EXPECT_THROW((void)agg.evaluate_reconstruction(wrong),
               std::invalid_argument);
}

TEST(AggregatorTest, EncoderShareMatchesWeightColumn) {
  auto cfg = small_config();
  auto agg = make_aggregator(cfg);
  const auto share = agg.encoder_share(5);
  const auto& dense = dynamic_cast<const nn::Dense&>(agg.encoder().layer(0));
  for (std::size_t m = 0; m < cfg.latent_dim; ++m) {
    EXPECT_FLOAT_EQ(share.column[m], dense.weight().at(m, 5));
  }
  EXPECT_TRUE(share.bias.allclose(dense.bias(), 0.0f));
  EXPECT_THROW((void)agg.encoder_share(cfg.input_dim), std::invalid_argument);
}

TEST(EdgeServerTest, LossAgreesWithAggregatorComputation) {
  auto cfg = small_config();
  cfg.noise_variance = 0.0f;
  auto agg = make_aggregator(cfg);
  auto edge = make_edge(cfg);
  common::Pcg32 rng(9);
  const Tensor batch = Tensor::uniform({6, cfg.input_dim}, rng);

  const auto latent = agg.encode_batch(batch, 0, true);
  const auto rec = edge.reconstruct(latent, true);
  auto [agg_loss, residual] = agg.evaluate_reconstruction(rec);
  const auto grad = edge.train_step(residual);
  // Both ends compute the same Huber loss from the same residual.
  EXPECT_NEAR(agg_loss, grad.loss, 1e-5f);
  agg.apply_latent_gradient(grad);
}

TEST(EdgeServerTest, RoundLifecycleEnforced) {
  auto cfg = small_config();
  auto edge = make_edge(cfg);
  common::Pcg32 rng(10);
  LatentBatchMsg latent{0, Tensor::uniform({4, cfg.latent_dim}, rng)};
  (void)edge.reconstruct(latent, true);
  ResidualMsg wrong_round{3, Tensor({4, cfg.input_dim})};
  EXPECT_THROW((void)edge.train_step(wrong_round), std::invalid_argument);
  ResidualMsg wrong_shape{0, Tensor({4, cfg.input_dim + 1})};
  EXPECT_THROW((void)edge.train_step(wrong_shape), std::invalid_argument);
}

TEST(EdgeServerTest, MseModeProducesMseGradients) {
  auto cfg = small_config();
  cfg.loss = ReconLoss::kMse;
  auto edge = make_edge(cfg);
  common::Pcg32 rng(11);
  LatentBatchMsg latent{0, Tensor::uniform({2, cfg.latent_dim}, rng)};
  (void)edge.reconstruct(latent, true);
  Tensor residuals({2, cfg.input_dim}, 0.5f);
  const auto grad = edge.train_step(ResidualMsg{0, residuals});
  // MSE of constant residual 0.5 is 0.25.
  EXPECT_NEAR(grad.loss, 0.25f, 1e-6f);
}

class OrchestratorFixture : public ::testing::Test {
 protected:
  OrchestratorFixture()
      : cfg_(small_config()),
        agg_(make_aggregator(cfg_)),
        edge_(make_edge(cfg_)),
        channel_(wsn::ChannelConfig{}),
        orch_(agg_, edge_, channel_, ledger_, clock_, ComputeModel{}) {}

  Tensor random_batch(std::size_t n, std::uint64_t seed = 12) {
    common::Pcg32 rng(seed);
    return Tensor::uniform({n, cfg_.input_dim}, rng);
  }

  OrcoConfig cfg_;
  DataAggregator agg_;
  EdgeServer edge_;
  wsn::Channel channel_;
  wsn::TransmissionLedger ledger_;
  wsn::SimClock clock_;
  Orchestrator orch_;
};

TEST_F(OrchestratorFixture, RoundRecordsAreConsistent) {
  const auto rec = orch_.train_round(random_batch(16));
  EXPECT_EQ(rec.round, 0u);
  EXPECT_GT(rec.loss, 0.0f);
  EXPECT_GT(rec.round_comms_s, 0.0);
  EXPECT_GT(rec.round_compute_s, 0.0);
  EXPECT_NEAR(rec.sim_time_s, rec.round_comms_s + rec.round_compute_s, 1e-12);
  // Uplink carries latents (B*M) + residuals (B*N); downlink carries
  // reconstructions (B*N) + latent gradients (B*M).
  const std::size_t bm = 16 * cfg_.latent_dim * sizeof(float);
  const std::size_t bn = 16 * cfg_.input_dim * sizeof(float);
  EXPECT_GE(rec.uplink_payload_bytes, bm + bn);
  EXPECT_LT(rec.uplink_payload_bytes, bm + bn + 256);
  EXPECT_GE(rec.downlink_payload_bytes, bm + bn);
  EXPECT_LT(rec.downlink_payload_bytes, bm + bn + 256);
}

TEST_F(OrchestratorFixture, LedgerMatchesRecordTotals) {
  const auto rec1 = orch_.train_round(random_batch(8));
  const auto rec2 = orch_.train_round(random_batch(8, 13));
  EXPECT_EQ(ledger_.totals(wsn::LinkKind::kUplink).payload_bytes,
            rec1.uplink_payload_bytes + rec2.uplink_payload_bytes);
  EXPECT_EQ(ledger_.totals(wsn::LinkKind::kDownlink).payload_bytes,
            rec1.downlink_payload_bytes + rec2.downlink_payload_bytes);
  EXPECT_EQ(ledger_.totals(wsn::LinkKind::kUplink).messages, 4u);
}

TEST_F(OrchestratorFixture, ClockAdvancesAcrossRounds) {
  const auto r1 = orch_.train_round(random_batch(8));
  const auto r2 = orch_.train_round(random_batch(8, 14));
  EXPECT_GT(r2.sim_time_s, r1.sim_time_s);
  EXPECT_DOUBLE_EQ(orch_.clock().now(), r2.sim_time_s);
}

TEST_F(OrchestratorFixture, TrainingReducesLoss) {
  // Autoencoding a rank-1 batch (every sample is a scaled copy of one
  // pattern): an 8-dim latent represents it exactly, so the loss must fall
  // clearly within a few dozen rounds.
  common::Pcg32 rng(16);
  const Tensor pattern = Tensor::uniform({cfg_.input_dim}, rng);
  Tensor batch({32, cfg_.input_dim});
  for (std::size_t i = 0; i < 32; ++i) {
    const float c = 0.2f + 0.8f * static_cast<float>(i) / 32.0f;
    for (std::size_t j = 0; j < cfg_.input_dim; ++j) {
      batch.at(i, j) = c * pattern[j];
    }
  }
  const float first = orch_.train_round(batch).loss;
  float last = first;
  for (int i = 0; i < 120; ++i) last = orch_.train_round(batch).loss;
  EXPECT_LT(last, first * 0.7f);
}

TEST_F(OrchestratorFixture, AggregateBatchUsesOnlyUplink) {
  ledger_.reset();
  const double seconds = orch_.aggregate_batch(random_batch(10));
  EXPECT_GT(seconds, 0.0);
  EXPECT_GT(ledger_.totals(wsn::LinkKind::kUplink).payload_bytes, 0u);
  EXPECT_EQ(ledger_.totals(wsn::LinkKind::kDownlink).payload_bytes, 0u);
  // Steady-state payload per batch ~= B * M floats.
  EXPECT_LT(ledger_.totals(wsn::LinkKind::kUplink).payload_bytes,
            10 * cfg_.latent_dim * sizeof(float) + 128);
}

TEST_F(OrchestratorFixture, ReconstructIsDeterministicNoTraffic) {
  const Tensor batch = random_batch(4);
  const auto before = ledger_.grand_total().messages;
  const Tensor r1 = orch_.reconstruct(batch);
  const Tensor r2 = orch_.reconstruct(batch);
  EXPECT_TRUE(r1.allclose(r2, 0.0f));
  EXPECT_EQ(ledger_.grand_total().messages, before);
  EXPECT_EQ(r1.shape(), batch.shape());
}

TEST_F(OrchestratorFixture, EvaluateLossMatchesManualHuber) {
  data::ImageGeometry geom{1, 8, 8};
  common::Pcg32 rng(15);
  Tensor images = Tensor::uniform({12, 64}, rng);
  data::Dataset ds("toy", geom, 2, images,
                   std::vector<std::size_t>(12, 0));
  const float loss = orch_.evaluate_loss(ds, 6);
  nn::HuberLoss huber(1.0f);
  const Tensor rec = orch_.reconstruct(images);
  EXPECT_NEAR(loss, huber.value(rec, images), 1e-5f);
}

}  // namespace
}  // namespace orco::core
