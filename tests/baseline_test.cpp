// DCSNet baseline tests: fixed structure, partial data access, training.
#include <gtest/gtest.h>

#include "baseline/dcsnet.h"
#include "data/metrics.h"
#include "data/synthetic_gtsrb.h"
#include "data/synthetic_mnist.h"

namespace orco::baseline {
namespace {

DcsNetConfig fast_config() {
  DcsNetConfig cfg;
  cfg.latent_dim = 64;  // scaled down for test speed; ratios preserved
  cfg.batch_size = 16;
  cfg.learning_rate = 0.1f;
  return cfg;
}

TEST(DcsNetModelTest, EncoderMapsToFixedLatent) {
  common::Pcg32 rng(1);
  const auto enc = build_dcsnet_encoder(data::kMnistGeometry, 1024, rng);
  EXPECT_EQ(enc->output_features(784), 1024u);
}

TEST(DcsNetModelTest, DecoderHasFourConvLayers) {
  common::Pcg32 rng(2);
  const auto dec = build_dcsnet_decoder(data::kMnistGeometry, 64, rng);
  std::size_t conv_layers = 0;
  for (std::size_t i = 0; i < dec->size(); ++i) {
    const auto name = dec->layer(i).name();
    if (name == "Conv2d" || name == "ConvTranspose2d") ++conv_layers;
  }
  EXPECT_EQ(conv_layers, 4u);
  EXPECT_EQ(dec->output_features(64), 784u);
}

TEST(DcsNetModelTest, DecoderSupportsGtsrbGeometry) {
  common::Pcg32 rng(3);
  const auto dec = build_dcsnet_decoder(data::kGtsrbGeometry, 64, rng);
  EXPECT_EQ(dec->output_features(64), 3u * 32u * 32u);
}

TEST(DcsNetModelTest, DecoderIsHeavierThanOrcoDcsDense) {
  // The baseline's conv decoder costs far more FLOPs than OrcoDCS's dense
  // decoder — the asymmetry behind the paper's time-to-loss result.
  common::Pcg32 rng(4);
  const auto dcsnet_dec = build_dcsnet_decoder(data::kMnistGeometry, 64, rng);
  core::OrcoConfig orco_cfg;
  orco_cfg.input_dim = 784;
  orco_cfg.latent_dim = 128;
  const auto orco_dec = core::build_decoder(orco_cfg, rng);
  EXPECT_GT(dcsnet_dec->forward_flops(1), 2 * orco_dec->forward_flops(1));
}

TEST(DcsNetSystemTest, TrainsAndReducesLoss) {
  data::MnistConfig mnist_cfg;
  mnist_cfg.count = 192;
  const auto train = data::make_synthetic_mnist(mnist_cfg);

  DcsNetSystem sys(data::kMnistGeometry, fast_config(), wsn::ChannelConfig{},
                   core::ComputeModel{});
  const auto summary = sys.train_online(train, 3);
  ASSERT_GT(summary.rounds.size(), 0u);
  const float first = summary.rounds.front().loss;
  const float last = summary.rounds.back().loss;
  EXPECT_LT(last, first);
  EXPECT_GT(summary.sim_seconds, 0.0);
}

TEST(DcsNetSystemTest, RespectsDataFraction) {
  data::MnistConfig mnist_cfg;
  mnist_cfg.count = 200;
  const auto train = data::make_synthetic_mnist(mnist_cfg);

  auto cfg = fast_config();
  cfg.data_fraction = 0.5f;
  DcsNetSystem sys(data::kMnistGeometry, cfg, wsn::ChannelConfig{},
                   core::ComputeModel{});
  const auto summary = sys.train_online(train, 1);
  // 100 accessible samples / batch 16 -> 7 rounds.
  EXPECT_EQ(summary.rounds.size(), 7u);

  auto full_cfg = fast_config();
  full_cfg.data_fraction = 1.0f;
  DcsNetSystem full(data::kMnistGeometry, full_cfg, wsn::ChannelConfig{},
                    core::ComputeModel{});
  EXPECT_EQ(full.train_online(train, 1).rounds.size(), 13u);
}

TEST(DcsNetSystemTest, InvalidDataFractionThrows) {
  auto cfg = fast_config();
  cfg.data_fraction = 0.0f;
  EXPECT_THROW(DcsNetSystem(data::kMnistGeometry, cfg, wsn::ChannelConfig{},
                            core::ComputeModel{}),
               std::invalid_argument);
}

TEST(DcsNetSystemTest, UplinkCostExceedsOrcoDcsForSameImages) {
  // DCSNet ships fixed-1024 latents; OrcoDCS picks 128 for MNIST-like
  // tasks. Steady-state aggregation bytes should differ ~8x (Fig. 3).
  data::MnistConfig mnist_cfg;
  mnist_cfg.count = 32;
  const auto images = data::make_synthetic_mnist(mnist_cfg).images();

  DcsNetConfig dcs_cfg;
  dcs_cfg.latent_dim = 1024;
  DcsNetSystem dcs(data::kMnistGeometry, dcs_cfg, wsn::ChannelConfig{},
                   core::ComputeModel{});
  (void)dcs.aggregate_images(images);
  const auto dcs_bytes =
      dcs.ledger().totals(wsn::LinkKind::kUplink).payload_bytes;

  core::SystemConfig orco_cfg;
  orco_cfg.orco.input_dim = 784;
  orco_cfg.orco.latent_dim = 128;
  orco_cfg.field.device_count = 8;
  orco_cfg.field.radio_range_m = 60.0;
  core::OrcoDcsSystem orco(orco_cfg);
  (void)orco.aggregate_images(images);
  const auto orco_bytes =
      orco.ledger().totals(wsn::LinkKind::kUplink).payload_bytes;

  EXPECT_NEAR(static_cast<double>(dcs_bytes) / static_cast<double>(orco_bytes),
              8.0, 0.8);
}

TEST(DcsNetSystemTest, ReconstructionShapeMatches) {
  data::GtsrbConfig gtsrb_cfg;
  gtsrb_cfg.count = 8;
  const auto ds = data::make_synthetic_gtsrb(gtsrb_cfg);
  DcsNetSystem sys(data::kGtsrbGeometry, fast_config(), wsn::ChannelConfig{},
                   core::ComputeModel{});
  const auto rec = sys.reconstruct(ds.images());
  EXPECT_EQ(rec.shape(), ds.images().shape());
  EXPECT_GE(rec.min(), 0.0f);  // sigmoid output
  EXPECT_LE(rec.max(), 1.0f);
}

}  // namespace
}  // namespace orco::baseline
