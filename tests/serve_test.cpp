// Tests for the multi-cluster serving runtime (src/serve): shard routing,
// batch coalescing, batched-vs-sequential decode equality, backpressure,
// and graceful shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "serve/serve.h"

namespace orco::serve {
namespace {

core::SystemConfig small_config(std::size_t input_dim = 64,
                                std::size_t latent_dim = 16,
                                std::uint64_t seed = 42) {
  core::SystemConfig cfg;
  cfg.orco.input_dim = input_dim;
  cfg.orco.latent_dim = latent_dim;
  cfg.orco.decoder_layers = 2;
  cfg.orco.seed = seed;
  cfg.field.device_count = 8;
  cfg.field.radio_range_m = 60.0;
  return cfg;
}

std::shared_ptr<core::OrcoDcsSystem> make_tenant(
    std::size_t input_dim = 64, std::size_t latent_dim = 16,
    std::uint64_t seed = 42) {
  return std::make_shared<core::OrcoDcsSystem>(
      small_config(input_dim, latent_dim, seed));
}

Tensor random_latent(std::size_t latent_dim, common::Pcg32& rng) {
  return Tensor::randn({latent_dim}, rng);
}

TEST(ShardRoutingTest, SameClusterAlwaysSameShard) {
  for (ClusterId id = 0; id < 500; ++id) {
    const std::size_t first = shard_for(id, 8);
    for (int rep = 0; rep < 3; ++rep) EXPECT_EQ(shard_for(id, 8), first);
    EXPECT_LT(first, 8u);
  }
}

TEST(ShardRoutingTest, SpreadsClustersAcrossShards) {
  const std::size_t shards = 8;
  std::vector<std::size_t> counts(shards, 0);
  const std::size_t n = 8000;
  for (ClusterId id = 0; id < n; ++id) counts[shard_for(id, shards)]++;
  // Sequential ids should hash to a near-uniform spread; allow +/-30%.
  const std::size_t expect = n / shards;
  for (const auto c : counts) {
    EXPECT_GT(c, expect * 7 / 10);
    EXPECT_LT(c, expect * 13 / 10);
  }
}

TEST(BatchQueueTest, CoalescesOnlyOneClusterPerBatchInFifoOrder) {
  BatchQueueConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 0;  // no lingering: deterministic pops
  BatchQueue queue(cfg);

  auto push = [&](ClusterId cluster, RequestId id) {
    PendingRequest p;
    p.request.cluster = cluster;
    p.request.id = id;
    ASSERT_EQ(queue.push(std::move(p)), PushResult::kAccepted);
  };
  // Interleave clusters A=1 and B=2.
  push(1, 10);
  push(2, 20);
  push(1, 11);
  push(2, 21);
  push(1, 12);

  auto batch = queue.pop_batch();
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].request.cluster, 1u);
    EXPECT_EQ(batch[i].request.id, 10u + i);
  }
  batch = queue.pop_batch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request.cluster, 2u);
  EXPECT_EQ(batch[0].request.id, 20u);
  EXPECT_EQ(batch[1].request.id, 21u);
}

TEST(BatchQueueTest, RespectsMaxBatch) {
  BatchQueueConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 0;
  BatchQueue queue(cfg);
  for (RequestId id = 0; id < 10; ++id) {
    PendingRequest p;
    p.request.cluster = 7;
    p.request.id = id;
    ASSERT_EQ(queue.push(std::move(p)), PushResult::kAccepted);
  }
  EXPECT_EQ(queue.pop_batch().size(), 4u);
  EXPECT_EQ(queue.pop_batch().size(), 4u);
  EXPECT_EQ(queue.pop_batch().size(), 2u);
}

TEST(BatchQueueTest, ShedsAtCapacityAndClosedAfterClose) {
  BatchQueueConfig cfg;
  cfg.capacity = 2;
  BatchQueue queue(cfg);
  PendingRequest a, b, c, d;
  EXPECT_EQ(queue.push(std::move(a)), PushResult::kAccepted);
  EXPECT_EQ(queue.push(std::move(b)), PushResult::kAccepted);
  EXPECT_EQ(queue.push(std::move(c)), PushResult::kShed);
  queue.close();
  EXPECT_EQ(queue.push(std::move(d)), PushResult::kClosed);
  // Close drains: queued entries still pop, then empty signals done.
  EXPECT_EQ(queue.pop_batch().size(), 2u);
  EXPECT_TRUE(queue.pop_batch().empty());
}

TEST(ServeTest, BatchedDecodeBitwiseEqualsSequentialDecode) {
  const std::size_t latent_dim = 16;
  auto tenant = make_tenant(64, latent_dim);

  ServeConfig cfg;
  cfg.shard_count = 1;
  cfg.queue.max_batch = 16;
  cfg.queue.max_wait_us = 2000;
  ServerRuntime runtime(cfg);
  runtime.register_cluster(1, tenant);

  // Submit everything before start() so the worker is forced to coalesce.
  common::Pcg32 rng(123);
  const std::size_t n = 32;
  std::vector<Tensor> latents;
  std::vector<std::future<DecodeResponse>> futures;
  for (std::size_t i = 0; i < n; ++i) {
    latents.push_back(random_latent(latent_dim, rng));
    futures.push_back(runtime.submit(1, latents.back()));
  }
  runtime.start();
  runtime.shutdown();

  std::set<std::size_t> occupancies;
  for (std::size_t i = 0; i < n; ++i) {
    DecodeResponse response = futures[i].get();
    ASSERT_EQ(response.status, ResponseStatus::kOk);
    occupancies.insert(response.batch_size);

    // The reference: a one-request inference straight on the tenant edge.
    const Tensor expected = tenant->edge().decode_inference(
        latents[i].reshaped({1, latent_dim}));
    ASSERT_EQ(response.reconstruction.numel(), expected.numel());
    for (std::size_t j = 0; j < expected.numel(); ++j) {
      // Bitwise: batching must not change a single ULP.
      EXPECT_EQ(response.reconstruction[j], expected[j])
          << "request " << i << " element " << j;
    }
  }
  // Proof that batching actually happened (not 32 singleton batches).
  EXPECT_GT(*occupancies.rbegin(), 1u);
  const auto snapshot = runtime.telemetry().snapshot();
  EXPECT_EQ(snapshot.completed, n);
  EXPECT_LT(snapshot.batches, n);
}

TEST(ServeTest, HeterogeneousTenantsDecodeToTheirOwnDims) {
  ServeConfig cfg;
  cfg.shard_count = 4;
  cfg.queue.max_wait_us = 100;
  ServerRuntime runtime(cfg);
  runtime.register_cluster(1, make_tenant(64, 16, 1));    // telemetry-ish
  runtime.register_cluster(2, make_tenant(128, 32, 2));   // image-ish
  runtime.start();

  common::Pcg32 rng(7);
  std::vector<std::future<DecodeResponse>> small, large;
  for (int i = 0; i < 6; ++i) {
    small.push_back(runtime.submit(1, random_latent(16, rng)));
    large.push_back(runtime.submit(2, random_latent(32, rng)));
  }
  for (auto& f : small) {
    auto r = f.get();
    ASSERT_EQ(r.status, ResponseStatus::kOk);
    EXPECT_EQ(r.reconstruction.numel(), 64u);
  }
  for (auto& f : large) {
    auto r = f.get();
    ASSERT_EQ(r.status, ResponseStatus::kOk);
    EXPECT_EQ(r.reconstruction.numel(), 128u);
  }
  runtime.shutdown();
}

TEST(ServeTest, UnknownClusterAndBadLatentAreRejected) {
  ServeConfig cfg;
  cfg.shard_count = 2;
  ServerRuntime runtime(cfg);
  runtime.register_cluster(5, make_tenant(64, 16));
  runtime.start();

  common::Pcg32 rng(9);
  auto unknown = runtime.submit(999, random_latent(16, rng));
  auto misshapen = runtime.submit(5, random_latent(17, rng));
  EXPECT_EQ(unknown.get().status, ResponseStatus::kUnknownCluster);
  EXPECT_EQ(misshapen.get().status, ResponseStatus::kBadRequest);

  const auto snapshot = runtime.telemetry().snapshot();
  EXPECT_EQ(snapshot.rejected, 2u);
  runtime.shutdown();
}

TEST(ServeTest, BackpressureShedsBeyondQueueCapacity) {
  ServeConfig cfg;
  cfg.shard_count = 1;
  cfg.queue.capacity = 4;
  ServerRuntime runtime(cfg);
  runtime.register_cluster(1, make_tenant());

  // Workers not started: the 5th..10th submissions must shed immediately.
  common::Pcg32 rng(11);
  std::vector<std::future<DecodeResponse>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(runtime.submit(1, random_latent(16, rng)));
  }
  std::size_t ok = 0, shed = 0;
  runtime.shutdown();  // drains the 4 accepted requests inline
  for (auto& f : futures) {
    const auto status = f.get().status;
    if (status == ResponseStatus::kOk) ++ok;
    if (status == ResponseStatus::kShed) ++shed;
  }
  EXPECT_EQ(ok, 4u);
  EXPECT_EQ(shed, 6u);
  EXPECT_EQ(runtime.telemetry().snapshot().shed, 6u);
}

TEST(ServeTest, GracefulShutdownResolvesEveryInFlightFuture) {
  ServeConfig cfg;
  cfg.shard_count = 4;
  cfg.queue.max_wait_us = 50;
  ServerRuntime runtime(cfg);
  for (ClusterId id = 1; id <= 8; ++id) {
    runtime.register_cluster(id, make_tenant(64, 16, id));
  }
  runtime.start();

  // Hammer from several producer threads while shutting down concurrently.
  std::vector<std::future<DecodeResponse>> futures[4];
  std::vector<std::thread> producers;
  std::atomic<bool> go{false};
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      common::Pcg32 rng(100 + t);
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 50; ++i) {
        const ClusterId id = 1 + ((t * 50 + i) % 8);
        futures[t].push_back(runtime.submit(id, random_latent(16, rng)));
      }
    });
  }
  go.store(true);
  for (auto& p : producers) p.join();
  runtime.shutdown();

  std::size_t resolved = 0;
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      const auto r = f.get();  // must not hang or throw broken_promise
      EXPECT_TRUE(r.status == ResponseStatus::kOk ||
                  r.status == ResponseStatus::kShed ||
                  r.status == ResponseStatus::kShutdown)
          << to_string(r.status);
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, 200u);
  // Everything submitted was answered one way or another.
  const auto snapshot = runtime.telemetry().snapshot();
  EXPECT_EQ(snapshot.submitted,
            snapshot.completed + snapshot.shed + snapshot.rejected);
}

TEST(ServeTest, SubmitAfterShutdownAnswersShutdownStatus) {
  ServeConfig cfg;
  cfg.shard_count = 1;
  ServerRuntime runtime(cfg);
  runtime.register_cluster(1, make_tenant());
  runtime.start();
  runtime.shutdown();
  common::Pcg32 rng(5);
  EXPECT_EQ(runtime.submit(1, random_latent(16, rng)).get().status,
            ResponseStatus::kShutdown);
}

TEST(ServeTest, ShutdownIsIdempotentAndDestructorSafe) {
  ServeConfig cfg;
  cfg.shard_count = 2;
  auto runtime = std::make_unique<ServerRuntime>(cfg);
  runtime->register_cluster(1, make_tenant());
  runtime->start();
  runtime->shutdown();
  runtime->shutdown();
  runtime.reset();  // destructor after explicit shutdown: no deadlock
}

TEST(TelemetryTest, QuantilesBracketRecordedLatencies) {
  Telemetry telemetry;
  for (int i = 1; i <= 1000; ++i) {
    telemetry.record_completed(static_cast<double>(i));  // 1..1000 us
  }
  const auto s = telemetry.snapshot();
  EXPECT_EQ(s.completed, 1000u);
  // Log-bucketed estimates: generous but meaningful brackets.
  EXPECT_GT(s.p50_us, 250.0);
  EXPECT_LT(s.p50_us, 800.0);
  EXPECT_GT(s.p99_us, 800.0);
  EXPECT_LE(s.p99_us, 1000.0);
  EXPECT_NEAR(s.mean_latency_us, 500.5, 1.0);
  EXPECT_EQ(s.max_latency_us, 1000.0);
}

TEST(TelemetryTest, ReportIncludesThroughput) {
  Telemetry telemetry;
  telemetry.record_submitted();
  telemetry.record_batch(1);
  telemetry.record_completed(100.0);
  const auto table = telemetry.report(2.0);
  EXPECT_GT(table.rows(), 5u);
  const auto csv = table.to_csv();
  EXPECT_NE(csv.find("throughput"), std::string::npos);
  EXPECT_NE(csv.find("0.5"), std::string::npos);  // 1 completed / 2 s
}

}  // namespace
}  // namespace orco::serve
