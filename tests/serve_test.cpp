// Tests for the multi-cluster serving runtime (src/serve): shard routing,
// batch coalescing, batched-vs-sequential decode equality, backpressure,
// per-tenant QoS (quota admission, priority eviction, weighted-aging
// scheduling), MPMC wakeup delivery, exception-safe batch fan-out, and
// graceful shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "serve/serve.h"

namespace orco::serve {
namespace {

core::SystemConfig small_config(std::size_t input_dim = 64,
                                std::size_t latent_dim = 16,
                                std::uint64_t seed = 42) {
  core::SystemConfig cfg;
  cfg.orco.input_dim = input_dim;
  cfg.orco.latent_dim = latent_dim;
  cfg.orco.decoder_layers = 2;
  cfg.orco.seed = seed;
  cfg.field.device_count = 8;
  cfg.field.radio_range_m = 60.0;
  return cfg;
}

std::shared_ptr<core::OrcoDcsSystem> make_tenant(
    std::size_t input_dim = 64, std::size_t latent_dim = 16,
    std::uint64_t seed = 42) {
  return std::make_shared<core::OrcoDcsSystem>(
      small_config(input_dim, latent_dim, seed));
}

Tensor random_latent(std::size_t latent_dim, common::Pcg32& rng) {
  return Tensor::randn({latent_dim}, rng);
}

TEST(ShardRoutingTest, SameClusterAlwaysSameShard) {
  for (ClusterId id = 0; id < 500; ++id) {
    const std::size_t first = shard_for(id, 8);
    for (int rep = 0; rep < 3; ++rep) EXPECT_EQ(shard_for(id, 8), first);
    EXPECT_LT(first, 8u);
  }
}

TEST(ShardRoutingTest, SpreadsClustersAcrossShards) {
  const std::size_t shards = 8;
  std::vector<std::size_t> counts(shards, 0);
  const std::size_t n = 8000;
  for (ClusterId id = 0; id < n; ++id) counts[shard_for(id, shards)]++;
  // Sequential ids should hash to a near-uniform spread; allow +/-30%.
  const std::size_t expect = n / shards;
  for (const auto c : counts) {
    EXPECT_GT(c, expect * 7 / 10);
    EXPECT_LT(c, expect * 13 / 10);
  }
}

TEST(BatchQueueTest, CoalescesOnlyOneClusterPerBatchInFifoOrder) {
  BatchQueueConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 0;  // no lingering: deterministic pops
  BatchQueue queue(cfg);

  auto push = [&](ClusterId cluster, RequestId id) {
    PendingRequest p;
    p.request.cluster = cluster;
    p.request.id = id;
    ASSERT_EQ(queue.push(std::move(p)), PushResult::kAccepted);
  };
  // Interleave clusters A=1 and B=2.
  push(1, 10);
  push(2, 20);
  push(1, 11);
  push(2, 21);
  push(1, 12);

  auto batch = queue.pop_batch();
  ASSERT_EQ(batch.size(), 3u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].request.cluster, 1u);
    EXPECT_EQ(batch[i].request.id, 10u + i);
  }
  batch = queue.pop_batch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request.cluster, 2u);
  EXPECT_EQ(batch[0].request.id, 20u);
  EXPECT_EQ(batch[1].request.id, 21u);
}

TEST(BatchQueueTest, RespectsMaxBatch) {
  BatchQueueConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_us = 0;
  BatchQueue queue(cfg);
  for (RequestId id = 0; id < 10; ++id) {
    PendingRequest p;
    p.request.cluster = 7;
    p.request.id = id;
    ASSERT_EQ(queue.push(std::move(p)), PushResult::kAccepted);
  }
  EXPECT_EQ(queue.pop_batch().size(), 4u);
  EXPECT_EQ(queue.pop_batch().size(), 4u);
  EXPECT_EQ(queue.pop_batch().size(), 2u);
}

TEST(BatchQueueTest, ShedsAtCapacityAndClosedAfterClose) {
  BatchQueueConfig cfg;
  cfg.capacity = 2;
  BatchQueue queue(cfg);
  PendingRequest a, b, c, d;
  EXPECT_EQ(queue.push(std::move(a)), PushResult::kAccepted);
  EXPECT_EQ(queue.push(std::move(b)), PushResult::kAccepted);
  EXPECT_EQ(queue.push(std::move(c)), PushResult::kShed);
  queue.close();
  EXPECT_EQ(queue.push(std::move(d)), PushResult::kClosed);
  // Close drains: queued entries still pop, then empty signals done.
  EXPECT_EQ(queue.pop_batch().size(), 2u);
  EXPECT_TRUE(queue.pop_batch().empty());
}

TEST(BatchQueueTest, WeightedPriorityPicksHighFirstAndAgingUnblocksLow) {
  BatchQueueConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 0;
  cfg.aging_us = 1000;  // 1 ms of head wait doubles a lane's score
  BatchQueue queue(cfg);
  TenantPolicy high;
  high.priority = Priority::kHigh;
  TenantPolicy low;
  low.priority = Priority::kLow;
  queue.set_policy(1, high);
  queue.set_policy(2, low);

  auto push = [&](ClusterId cluster, RequestId id) {
    PendingRequest p;
    p.request.cluster = cluster;
    p.request.id = id;
    ASSERT_EQ(queue.push(std::move(p)), PushResult::kAccepted);
  };
  // Low arrives first, high a hair later: priority outweighs a small age
  // gap, so the high-priority lane is served first.
  push(2, 20);
  push(1, 10);
  auto batch = queue.pop_batch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.cluster, 1u);

  // The low request keeps aging. After ~25 ms its score (1 x ~26) beats a
  // freshly-pushed high request (4 x ~1): aging prevents starvation.
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  push(1, 11);
  batch = queue.pop_batch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.cluster, 2u);
  batch = queue.pop_batch();
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.cluster, 1u);
}

TEST(BatchQueueTest, PerTenantQuotaShedsBeforeGlobalCapacity) {
  BatchQueueConfig cfg;
  cfg.capacity = 100;
  BatchQueue queue(cfg);
  TenantPolicy capped;
  capped.queue_quota = 2;
  queue.set_policy(1, capped);

  auto push = [&](ClusterId cluster, RequestId id) {
    PendingRequest p;
    p.request.cluster = cluster;
    p.request.id = id;
    return queue.push(std::move(p));
  };
  EXPECT_EQ(push(1, 10), PushResult::kAccepted);
  EXPECT_EQ(push(1, 11), PushResult::kAccepted);
  EXPECT_EQ(push(1, 12), PushResult::kShed);  // over its own quota
  EXPECT_EQ(push(2, 20), PushResult::kAccepted);  // other tenants unaffected
  EXPECT_EQ(queue.size(1), 2u);
  EXPECT_EQ(queue.size(2), 1u);
}

TEST(BatchQueueTest, HighPriorityPushEvictsNewestLowPriorityAtCapacity) {
  BatchQueueConfig cfg;
  cfg.capacity = 2;
  cfg.max_wait_us = 0;
  BatchQueue queue(cfg);
  TenantPolicy high;
  high.priority = Priority::kHigh;
  TenantPolicy low;
  low.priority = Priority::kLow;
  queue.set_policy(1, high);
  queue.set_policy(2, low);

  auto push = [&](ClusterId cluster, RequestId id,
                  std::vector<PendingRequest>* evicted) {
    PendingRequest p;
    p.request.cluster = cluster;
    p.request.id = id;
    return queue.push(std::move(p), evicted);
  };
  std::vector<PendingRequest> evicted;
  EXPECT_EQ(push(2, 20, &evicted), PushResult::kAccepted);
  EXPECT_EQ(push(2, 21, &evicted), PushResult::kAccepted);
  // At capacity: the high-priority arrival bumps the NEWEST low-priority
  // pending request (oldest work keeps its position).
  EXPECT_EQ(push(1, 10, &evicted), PushResult::kAccepted);
  ASSERT_EQ(evicted.size(), 1u);
  EXPECT_EQ(evicted[0].request.id, 21u);
  EXPECT_EQ(push(1, 11, &evicted), PushResult::kAccepted);
  ASSERT_EQ(evicted.size(), 2u);
  EXPECT_EQ(evicted[1].request.id, 20u);
  // Only same-priority work left: the next high push is shed itself.
  EXPECT_EQ(push(1, 12, &evicted), PushResult::kShed);
  EXPECT_EQ(evicted.size(), 2u);

  auto batch = queue.pop_batch();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].request.id, 10u);
  EXPECT_EQ(batch[1].request.id, 11u);
}

TEST(BatchQueueTest, CloseDuringCoalescingWindowDrainsPartialBatches) {
  BatchQueueConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 500000;  // 500 ms window
  BatchQueue queue(cfg);
  auto push = [&](ClusterId cluster, RequestId id) {
    PendingRequest p;
    p.request.cluster = cluster;
    p.request.id = id;
    ASSERT_EQ(queue.push(std::move(p)), PushResult::kAccepted);
  };
  push(1, 10);
  push(2, 20);

  std::vector<std::size_t> batch_sizes;
  const auto t0 = std::chrono::steady_clock::now();
  std::thread consumer([&] {
    for (;;) {
      auto batch = queue.pop_batch();
      if (batch.empty()) return;
      batch_sizes.push_back(batch.size());
    }
  });
  // The consumer is lingering in the coalescing window of its first batch;
  // close() must cut the window short and drain the partial batches.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  queue.close();
  consumer.join();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_EQ(batch_sizes.size(), 2u);
  EXPECT_EQ(batch_sizes[0], 1u);
  EXPECT_EQ(batch_sizes[1], 1u);
  // Both single-request batches must drain well before the 500 ms window
  // (one window alone would run past it, two sequential windows past 1 s).
  EXPECT_LT(elapsed_ms, 400.0);
}

TEST(BatchQueueTest, PushWakesSecondConsumerDuringCoalescingWindow) {
  // MPMC lost-wakeup regression: consumer 1 lingers in the coalescing
  // window for cluster 1; consumer 2 starts waiting afterwards (so a FIFO
  // single wakeup would land on consumer 1, which cannot extract cluster
  // 2's work). A push for cluster 2 must still reach consumer 2 promptly
  // instead of stalling until consumer 1's window expires.
  BatchQueueConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_us = 400000;  // 400 ms window
  BatchQueue queue(cfg);
  auto push = [&](ClusterId cluster, RequestId id) {
    PendingRequest p;
    p.request.cluster = cluster;
    p.request.id = id;
    ASSERT_EQ(queue.push(std::move(p)), PushResult::kAccepted);
  };

  auto consume = [&] {
    for (;;) {
      if (queue.pop_batch().empty()) return;
    }
  };

  push(1, 10);
  std::thread c1(consume);  // grabs cluster 1, lingers in the window
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  std::thread c2(consume);  // arrives at the top-level wait second
  std::this_thread::sleep_for(std::chrono::milliseconds(40));

  const auto push_b_at = std::chrono::steady_clock::now();
  push(2, 20);
  // Poll until cluster 2's request leaves the queue: post-fix, consumer 2
  // extracts it within milliseconds of the push; pre-fix, the single
  // notification is absorbed by lingering consumer 1 and the request sits
  // queued until consumer 1's ~400 ms window expires.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  double extracted_after_ms = -1.0;
  while (std::chrono::steady_clock::now() < deadline) {
    if (queue.size() == 0) {
      extracted_after_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - push_b_at)
                               .count();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  queue.close();
  c1.join();
  c2.join();
  ASSERT_GE(extracted_after_ms, 0.0)
      << "cluster 2's request was never extracted";
  EXPECT_LT(extracted_after_ms, 150.0);
}

TEST(ServeTest, BatchedDecodeBitwiseEqualsSequentialDecode) {
  const std::size_t latent_dim = 16;
  auto tenant = make_tenant(64, latent_dim);

  ServeConfig cfg;
  cfg.shard_count = 1;
  cfg.queue.max_batch = 16;
  cfg.queue.max_wait_us = 2000;
  ServerRuntime runtime(cfg);
  runtime.register_cluster(1, tenant);

  // Submit everything before start() so the worker is forced to coalesce.
  common::Pcg32 rng(123);
  const std::size_t n = 32;
  std::vector<Tensor> latents;
  std::vector<std::future<DecodeResponse>> futures;
  for (std::size_t i = 0; i < n; ++i) {
    latents.push_back(random_latent(latent_dim, rng));
    futures.push_back(runtime.submit(1, latents.back()));
  }
  runtime.start();
  runtime.shutdown();

  std::set<std::size_t> occupancies;
  for (std::size_t i = 0; i < n; ++i) {
    DecodeResponse response = futures[i].get();
    ASSERT_EQ(response.status, ResponseStatus::kOk);
    occupancies.insert(response.batch_size);

    // The reference: a one-request inference straight on the tenant edge.
    const Tensor expected = tenant->edge().decode_inference(
        latents[i].reshaped({1, latent_dim}));
    ASSERT_EQ(response.reconstruction.numel(), expected.numel());
    for (std::size_t j = 0; j < expected.numel(); ++j) {
      // Bitwise: batching must not change a single ULP.
      EXPECT_EQ(response.reconstruction[j], expected[j])
          << "request " << i << " element " << j;
    }
  }
  // Proof that batching actually happened (not 32 singleton batches).
  EXPECT_GT(*occupancies.rbegin(), 1u);
  const auto snapshot = runtime.telemetry().snapshot();
  EXPECT_EQ(snapshot.completed, n);
  EXPECT_LT(snapshot.batches, n);
}

TEST(ServeTest, HeterogeneousTenantsDecodeToTheirOwnDims) {
  ServeConfig cfg;
  cfg.shard_count = 4;
  cfg.queue.max_wait_us = 100;
  ServerRuntime runtime(cfg);
  runtime.register_cluster(1, make_tenant(64, 16, 1));    // telemetry-ish
  runtime.register_cluster(2, make_tenant(128, 32, 2));   // image-ish
  runtime.start();

  common::Pcg32 rng(7);
  std::vector<std::future<DecodeResponse>> small, large;
  for (int i = 0; i < 6; ++i) {
    small.push_back(runtime.submit(1, random_latent(16, rng)));
    large.push_back(runtime.submit(2, random_latent(32, rng)));
  }
  for (auto& f : small) {
    auto r = f.get();
    ASSERT_EQ(r.status, ResponseStatus::kOk);
    EXPECT_EQ(r.reconstruction.numel(), 64u);
  }
  for (auto& f : large) {
    auto r = f.get();
    ASSERT_EQ(r.status, ResponseStatus::kOk);
    EXPECT_EQ(r.reconstruction.numel(), 128u);
  }
  runtime.shutdown();
}

TEST(ServeTest, UnknownClusterAndBadLatentAreRejected) {
  ServeConfig cfg;
  cfg.shard_count = 2;
  ServerRuntime runtime(cfg);
  runtime.register_cluster(5, make_tenant(64, 16));
  runtime.start();

  common::Pcg32 rng(9);
  auto unknown = runtime.submit(999, random_latent(16, rng));
  auto misshapen = runtime.submit(5, random_latent(17, rng));
  EXPECT_EQ(unknown.get().status, ResponseStatus::kUnknownCluster);
  EXPECT_EQ(misshapen.get().status, ResponseStatus::kBadRequest);

  const auto snapshot = runtime.telemetry().snapshot();
  EXPECT_EQ(snapshot.rejected, 2u);
  // Bogus ids must not leave state behind: no per-tenant telemetry row, no
  // queue lane (both would otherwise live for the runtime's lifetime).
  EXPECT_EQ(runtime.telemetry().tenant_snapshots().count(999), 0u);
  EXPECT_EQ(runtime.shard(runtime.shard_of(999)).queue().size(999), 0u);
  runtime.shutdown();
}

TEST(ServeTest, ServeBatchAnswersRemainingRequestsWhenFanOutThrows) {
  // Broken-promise regression: when serve_batch throws mid-flight, every
  // request in the moved-in batch whose promise is still unanswered must be
  // answered kInternalError — pre-fix, the promises were destroyed and
  // callers' future.get() threw std::future_error instead of returning.
  ServeConfig cfg;
  cfg.shard_count = 1;
  ServerRuntime runtime(cfg);
  runtime.register_cluster(1, make_tenant(64, 16));

  common::Pcg32 rng(21);
  std::vector<PendingRequest> batch;
  PendingRequest first;
  first.request.cluster = 1;
  first.request.id = 1;
  first.request.latent = random_latent(16, rng);
  std::future<DecodeResponse> first_future = first.promise.get_future();

  // A poisoned promise: set_value during the success fan-out throws
  // std::future_error, unwinding serve_batch between answered requests.
  PendingRequest poisoned;
  poisoned.request.cluster = 1;
  poisoned.request.id = 2;
  poisoned.request.latent = random_latent(16, rng);
  poisoned.promise.set_value(DecodeResponse{});

  PendingRequest last;
  last.request.cluster = 1;
  last.request.id = 3;
  last.request.latent = random_latent(16, rng);
  std::future<DecodeResponse> last_future = last.promise.get_future();

  batch.push_back(std::move(first));
  batch.push_back(std::move(poisoned));
  batch.push_back(std::move(last));
  EXPECT_THROW(runtime.shard(0).serve_batch(std::move(batch)),
               std::future_error);

  EXPECT_EQ(first_future.get().status, ResponseStatus::kOk);
  DecodeResponse last_response = last_future.get();  // must not throw
  EXPECT_EQ(last_response.status, ResponseStatus::kInternalError);
}

TEST(ServeTest, TenantPolicyEvictsLowPriorityAndTracksPerTenantTelemetry) {
  ServeConfig cfg;
  cfg.shard_count = 1;
  cfg.queue.capacity = 2;
  cfg.queue.max_wait_us = 0;
  ServerRuntime runtime(cfg);
  TenantPolicy high;
  high.priority = Priority::kHigh;
  TenantPolicy low;
  low.priority = Priority::kLow;
  runtime.register_cluster(1, make_tenant(64, 16, 1), high);
  runtime.register_cluster(2, make_tenant(64, 16, 2), low);

  // Workers not started: fill the queue with low-priority work, then let a
  // high-priority submit bump the newest low request.
  common::Pcg32 rng(13);
  auto low_a = runtime.submit(2, random_latent(16, rng));
  auto low_b = runtime.submit(2, random_latent(16, rng));
  auto high_a = runtime.submit(1, random_latent(16, rng));
  // The bumped request's future resolves kShed immediately.
  ASSERT_EQ(low_b.wait_for(std::chrono::seconds(1)),
            std::future_status::ready);
  EXPECT_EQ(low_b.get().status, ResponseStatus::kShed);

  runtime.shutdown();  // drains the surviving two requests inline
  EXPECT_EQ(high_a.get().status, ResponseStatus::kOk);
  EXPECT_EQ(low_a.get().status, ResponseStatus::kOk);

  const auto high_snapshot = runtime.telemetry().tenant_snapshot(1);
  EXPECT_EQ(high_snapshot.submitted, 1u);
  EXPECT_EQ(high_snapshot.completed, 1u);
  EXPECT_EQ(high_snapshot.shed, 0u);
  const auto low_snapshot = runtime.telemetry().tenant_snapshot(2);
  EXPECT_EQ(low_snapshot.submitted, 2u);
  EXPECT_EQ(low_snapshot.completed, 1u);
  EXPECT_EQ(low_snapshot.shed, 1u);
  // Per-tenant rows roll up into the runtime-wide counters.
  const auto totals = runtime.telemetry().snapshot();
  EXPECT_EQ(totals.submitted, 3u);
  EXPECT_EQ(totals.completed, 2u);
  EXPECT_EQ(totals.shed, 1u);
  EXPECT_EQ(runtime.telemetry().tenant_report().rows(), 2u);
}

TEST(ServeTest, DefaultPolicyFromConfigAppliesQuota) {
  ServeConfig cfg;
  cfg.shard_count = 1;
  cfg.queue.default_policy.queue_quota = 1;
  ServerRuntime runtime(cfg);
  runtime.register_cluster(1, make_tenant());

  common::Pcg32 rng(17);
  auto kept = runtime.submit(1, random_latent(16, rng));
  auto over_quota = runtime.submit(1, random_latent(16, rng));
  runtime.shutdown();
  EXPECT_EQ(kept.get().status, ResponseStatus::kOk);
  EXPECT_EQ(over_quota.get().status, ResponseStatus::kShed);
}

TEST(ServeTest, BackpressureShedsBeyondQueueCapacity) {
  ServeConfig cfg;
  cfg.shard_count = 1;
  cfg.queue.capacity = 4;
  ServerRuntime runtime(cfg);
  runtime.register_cluster(1, make_tenant());

  // Workers not started: the 5th..10th submissions must shed immediately.
  common::Pcg32 rng(11);
  std::vector<std::future<DecodeResponse>> futures;
  for (int i = 0; i < 10; ++i) {
    futures.push_back(runtime.submit(1, random_latent(16, rng)));
  }
  std::size_t ok = 0, shed = 0;
  runtime.shutdown();  // drains the 4 accepted requests inline
  for (auto& f : futures) {
    const auto status = f.get().status;
    if (status == ResponseStatus::kOk) ++ok;
    if (status == ResponseStatus::kShed) ++shed;
  }
  EXPECT_EQ(ok, 4u);
  EXPECT_EQ(shed, 6u);
  EXPECT_EQ(runtime.telemetry().snapshot().shed, 6u);
}

TEST(ServeTest, GracefulShutdownResolvesEveryInFlightFuture) {
  ServeConfig cfg;
  cfg.shard_count = 4;
  cfg.queue.max_wait_us = 50;
  ServerRuntime runtime(cfg);
  for (ClusterId id = 1; id <= 8; ++id) {
    runtime.register_cluster(id, make_tenant(64, 16, id));
  }
  runtime.start();

  // Hammer from several producer threads while shutting down concurrently.
  std::vector<std::future<DecodeResponse>> futures[4];
  std::vector<std::thread> producers;
  std::atomic<bool> go{false};
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      common::Pcg32 rng(100 + t);
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 50; ++i) {
        const ClusterId id = 1 + ((t * 50 + i) % 8);
        futures[t].push_back(runtime.submit(id, random_latent(16, rng)));
      }
    });
  }
  go.store(true);
  for (auto& p : producers) p.join();
  runtime.shutdown();

  std::size_t resolved = 0;
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      const auto r = f.get();  // must not hang or throw broken_promise
      EXPECT_TRUE(r.status == ResponseStatus::kOk ||
                  r.status == ResponseStatus::kShed ||
                  r.status == ResponseStatus::kShutdown)
          << to_string(r.status);
      ++resolved;
    }
  }
  EXPECT_EQ(resolved, 200u);
  // Everything submitted was answered one way or another.
  const auto snapshot = runtime.telemetry().snapshot();
  EXPECT_EQ(snapshot.submitted,
            snapshot.completed + snapshot.shed + snapshot.rejected);
}

TEST(ServeTest, SubmitAfterShutdownAnswersShutdownStatus) {
  ServeConfig cfg;
  cfg.shard_count = 1;
  ServerRuntime runtime(cfg);
  runtime.register_cluster(1, make_tenant());
  runtime.start();
  runtime.shutdown();
  common::Pcg32 rng(5);
  EXPECT_EQ(runtime.submit(1, random_latent(16, rng)).get().status,
            ResponseStatus::kShutdown);
}

TEST(ServeTest, ShutdownIsIdempotentAndDestructorSafe) {
  ServeConfig cfg;
  cfg.shard_count = 2;
  auto runtime = std::make_unique<ServerRuntime>(cfg);
  runtime->register_cluster(1, make_tenant());
  runtime->start();
  runtime->shutdown();
  runtime->shutdown();
  runtime.reset();  // destructor after explicit shutdown: no deadlock
}

TEST(TelemetryTest, QuantilesBracketRecordedLatencies) {
  Telemetry telemetry;
  for (int i = 1; i <= 1000; ++i) {
    telemetry.record_completed(static_cast<double>(i));  // 1..1000 us
  }
  const auto s = telemetry.snapshot();
  EXPECT_EQ(s.completed, 1000u);
  // Log-bucketed estimates: generous but meaningful brackets.
  EXPECT_GT(s.p50_us, 250.0);
  EXPECT_LT(s.p50_us, 800.0);
  EXPECT_GT(s.p99_us, 800.0);
  EXPECT_LE(s.p99_us, 1000.0);
  EXPECT_NEAR(s.mean_latency_us, 500.5, 1.0);
  EXPECT_EQ(s.max_latency_us, 1000.0);
}

TEST(TelemetryTest, QuantileEdgeCases) {
  LatencyHistogram empty;
  EXPECT_EQ(empty.quantile(0.0), 0.0);
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  EXPECT_EQ(empty.quantile(1.0), 0.0);
  EXPECT_THROW((void)empty.quantile(-0.1), std::invalid_argument);
  EXPECT_THROW((void)empty.quantile(1.1), std::invalid_argument);

  LatencyHistogram single;
  single.record(100.0);
  // Every quantile of one sample lands inside its bucket, capped at the
  // recorded maximum.
  EXPECT_GT(single.quantile(0.0), 0.0);
  EXPECT_LE(single.quantile(0.0), 100.0);
  EXPECT_EQ(single.quantile(1.0), 100.0);
  EXPECT_LE(single.quantile(0.5), 100.0);

  LatencyHistogram one_bucket;
  for (int i = 0; i < 1000; ++i) one_bucket.record(64.0);  // exact 2^6 edge
  // All mass in one bucket: interpolation stays within [64, next edge) and
  // the max cap pins every quantile to the recorded value.
  EXPECT_EQ(one_bucket.quantile(0.0), 64.0);
  EXPECT_EQ(one_bucket.quantile(0.5), 64.0);
  EXPECT_EQ(one_bucket.quantile(1.0), 64.0);

  LatencyHistogram zeros;
  zeros.record(0.0);
  zeros.record(0.0);
  EXPECT_EQ(zeros.quantile(1.0), 0.0);
  EXPECT_EQ(zeros.max_us(), 0.0);
}

TEST(TelemetryTest, ReportIncludesThroughput) {
  Telemetry telemetry;
  telemetry.record_submitted();
  telemetry.record_batch(1);
  telemetry.record_completed(100.0);
  const auto table = telemetry.report(2.0);
  EXPECT_GT(table.rows(), 5u);
  const auto csv = table.to_csv();
  EXPECT_NE(csv.find("throughput"), std::string::npos);
  EXPECT_NE(csv.find("0.5"), std::string::npos);  // 1 completed / 2 s
}

TEST(ReconstructionCacheTest, LruEvictionOrderUnderCapacityPressure) {
  // Eviction must follow exact LRU order — lookups refresh recency, and
  // under sustained capacity pressure the victims fall out oldest-first.
  ReconstructionCacheConfig cfg;
  cfg.capacity = 3;
  ReconstructionCache cache(cfg);

  common::Pcg32 rng(91);
  const Tensor la = Tensor::randn({8}, rng);
  const Tensor lb = Tensor::randn({8}, rng);
  const Tensor lc = Tensor::randn({8}, rng);
  const Tensor ld = Tensor::randn({8}, rng);
  const Tensor le = Tensor::randn({8}, rng);

  cache.insert(1, 1, la, Tensor::full({4}, 1.0f));
  cache.insert(1, 1, lb, Tensor::full({4}, 2.0f));
  cache.insert(1, 1, lc, Tensor::full({4}, 3.0f));
  EXPECT_EQ(cache.size(), 3u);

  // Refresh A: recency becomes A > C > B, so the next insert evicts B.
  ASSERT_NE(cache.lookup(1, 1, la), nullptr);
  cache.insert(1, 1, ld, Tensor::full({4}, 4.0f));
  EXPECT_EQ(cache.lookup(1, 1, lb), nullptr);
  ASSERT_NE(cache.lookup(1, 1, ld), nullptr);

  // Refresh C: recency C > D > A, so the next insert evicts A.
  ASSERT_NE(cache.lookup(1, 1, lc), nullptr);
  cache.insert(1, 1, le, Tensor::full({4}, 5.0f));
  EXPECT_EQ(cache.lookup(1, 1, la), nullptr);
  ASSERT_NE(cache.lookup(1, 1, lc), nullptr);
  ASSERT_NE(cache.lookup(1, 1, ld), nullptr);
  ASSERT_NE(cache.lookup(1, 1, le), nullptr);
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(ReconstructionCacheTest, SwapEdgeInvalidationWithInterleavedVersions) {
  // The swap-coherence hook ClusterShard fires on an observed version
  // change: invalidate(tenant) must drop the tenant's entries across ALL
  // model versions (a shard can hold pre- and post-swap generations
  // interleaved), leave other tenants untouched, and let the freed LRU
  // capacity go to the new generation.
  ReconstructionCacheConfig cfg;
  cfg.capacity = 8;
  ReconstructionCache cache(cfg);

  common::Pcg32 rng(92);
  const Tensor l1 = Tensor::randn({8}, rng);
  const Tensor l2 = Tensor::randn({8}, rng);
  const Tensor l3 = Tensor::randn({8}, rng);
  const Tensor other = Tensor::randn({8}, rng);

  // Tenant 7's entries interleaved across versions 1 and 2, with tenant 9
  // entries woven between them so invalidation has to skip over survivors.
  cache.insert(7, 1, l1, Tensor::full({4}, 11.0f));
  cache.insert(9, 1, other, Tensor::full({4}, 91.0f));
  cache.insert(7, 2, l1, Tensor::full({4}, 21.0f));
  cache.insert(7, 1, l2, Tensor::full({4}, 12.0f));
  cache.insert(9, 2, l3, Tensor::full({4}, 92.0f));
  cache.insert(7, 2, l2, Tensor::full({4}, 22.0f));
  EXPECT_EQ(cache.size(), 6u);

  cache.invalidate(7);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.stats().invalidated, 4u);
  EXPECT_EQ(cache.lookup(7, 1, l1), nullptr);
  EXPECT_EQ(cache.lookup(7, 2, l1), nullptr);
  EXPECT_EQ(cache.lookup(7, 1, l2), nullptr);
  EXPECT_EQ(cache.lookup(7, 2, l2), nullptr);
  ASSERT_NE(cache.lookup(9, 1, other), nullptr);
  ASSERT_NE(cache.lookup(9, 2, l3), nullptr);

  // Post-swap generation repopulates cleanly; dead versions stay dead.
  cache.insert(7, 3, l1, Tensor::full({4}, 31.0f));
  const Tensor* hit = cache.lookup(7, 3, l1);
  ASSERT_NE(hit, nullptr);
  EXPECT_FLOAT_EQ((*hit)[0], 31.0f);
  EXPECT_EQ(cache.lookup(7, 2, l1), nullptr);
  EXPECT_EQ(cache.stats().evictions, 0u);  // capacity was freed, not evicted
}

}  // namespace
}  // namespace orco::serve
