// Numerical gradient checks for every trainable and routing layer.
//
// Each case builds a layer, runs the central-difference harness from
// nn/gradcheck.h on random inputs, and asserts both parameter and input
// gradients match the analytic backward pass. This is the correctness
// anchor for the whole training stack.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/conv_transpose2d.h"
#include "nn/dense.h"
#include "nn/gradcheck.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "tensor/matmul.h"

namespace orco::nn {
namespace {

struct GradCase {
  std::string name;
  std::function<LayerPtr(common::Pcg32&)> make;
  tensor::Shape input_shape;
  // Composite float32 chains accumulate finite-difference noise on tiny
  // gradients, so they get a looser bound than single layers.
  float tolerance = 3e-2f;
  // Max pooling needs well-separated inputs: with N(0,1) values two window
  // entries can sit within eps of each other and the probe then flips the
  // winner, which is a property of the test, not a backward bug.
  bool separated_input = false;
};

void PrintTo(const GradCase& c, std::ostream* os) { *os << c.name; }

// Deterministic input whose values are spaced at least 0.15 apart.
tensor::Tensor separated_values(const tensor::Shape& shape,
                                common::Pcg32& rng) {
  const std::size_t n = tensor::shape_numel(shape);
  auto order = common::shuffled_indices(n, rng);
  tensor::Tensor out(shape);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = 0.15f * static_cast<float>(order[i]) -
             0.075f * static_cast<float>(n);
  }
  return out;
}

class GradCheckSuite : public ::testing::TestWithParam<GradCase> {
 protected:
  void SetUp() override {
    // Serial GEMM keeps the finite-difference probes bit-stable.
    tensor::set_gemm_parallelism(false);
  }
  void TearDown() override { tensor::set_gemm_parallelism(true); }
};

TEST_P(GradCheckSuite, AnalyticMatchesNumeric) {
  const auto& param = GetParam();
  common::Pcg32 rng(0xabcdef);
  const auto layer = param.make(rng);
  const auto report =
      param.separated_input
          ? gradcheck_layer_with_input(*layer,
                                       separated_values(param.input_shape, rng),
                                       rng, 1e-2f, param.tolerance)
          : gradcheck_layer(*layer, param.input_shape, rng, 1e-2f,
                            param.tolerance);
  EXPECT_TRUE(report.ok) << param.name << ": param rel err "
                         << report.max_param_rel_error << ", input rel err "
                         << report.max_input_rel_error;
}

std::vector<GradCase> all_cases() {
  std::vector<GradCase> cases;
  cases.push_back({"Dense_small",
                   [](common::Pcg32& rng) {
                     return std::make_unique<Dense>(5, 7, rng);
                   },
                   {3, 5}});
  cases.push_back({"Dense_wide",
                   [](common::Pcg32& rng) {
                     return std::make_unique<Dense>(12, 3, rng);
                   },
                   {2, 12}});
  cases.push_back({"Conv2d_basic",
                   [](common::Pcg32& rng) {
                     return std::make_unique<Conv2d>(2, 3, 3, 1, 1, 5, 5, rng);
                   },
                   {2, 2 * 5 * 5}});
  cases.push_back({"Conv2d_strided_nopad",
                   [](common::Pcg32& rng) {
                     return std::make_unique<Conv2d>(1, 2, 3, 2, 0, 7, 7, rng);
                   },
                   {2, 49}});
  cases.push_back({"Conv2d_rect_input",
                   [](common::Pcg32& rng) {
                     return std::make_unique<Conv2d>(3, 2, 2, 1, 0, 4, 6, rng);
                   },
                   {1, 3 * 4 * 6}});
  cases.push_back({"ConvTranspose2d_up2",
                   [](common::Pcg32& rng) {
                     return std::make_unique<ConvTranspose2d>(2, 2, 4, 2, 1, 3,
                                                              3, rng);
                   },
                   {2, 2 * 3 * 3}});
  cases.push_back({"ConvTranspose2d_stride1",
                   [](common::Pcg32& rng) {
                     return std::make_unique<ConvTranspose2d>(1, 2, 3, 1, 0, 4,
                                                              4, rng);
                   },
                   {1, 16}});
  cases.push_back({"MaxPool2d",
                   [](common::Pcg32&) {
                     return std::make_unique<MaxPool2d>(2, 6, 6, 2, 2);
                   },
                   {2, 2 * 36},
                   3e-2f,
                   /*separated_input=*/true});
  cases.push_back({"ReLU",
                   [](common::Pcg32&) { return std::make_unique<ReLU>(); },
                   {4, 9}});
  cases.push_back({"LeakyReLU",
                   [](common::Pcg32&) {
                     return std::make_unique<LeakyReLU>(0.1f);
                   },
                   {4, 9}});
  cases.push_back({"Sigmoid",
                   [](common::Pcg32&) { return std::make_unique<Sigmoid>(); },
                   {4, 9}});
  cases.push_back({"Tanh",
                   [](common::Pcg32&) { return std::make_unique<Tanh>(); },
                   {4, 9}});
  cases.push_back({"Identity",
                   [](common::Pcg32&) { return std::make_unique<Identity>(); },
                   {2, 6}});
  cases.push_back(
      {"Sequential_mlp",
       [](common::Pcg32& rng) {
         auto model = std::make_unique<Sequential>();
         model->emplace<Dense>(6, 10, rng);
         model->emplace<ReLU>();
         model->emplace<Dense>(10, 4, rng);
         model->emplace<Sigmoid>();
         return model;
       },
       {3, 6}});
  cases.push_back(
      {"Sequential_autoencoder",
       [](common::Pcg32& rng) {
         auto model = std::make_unique<Sequential>();
         model->emplace<Dense>(8, 3, rng);   // encoder
         model->emplace<Sigmoid>();
         model->emplace<Dense>(3, 8, rng);   // decoder
         model->emplace<Sigmoid>();
         return model;
       },
       {2, 8}});
  cases.push_back(
      {"Sequential_convnet",
       [](common::Pcg32& rng) {
         auto model = std::make_unique<Sequential>();
         model->emplace<Conv2d>(1, 2, 3, 1, 1, 6, 6, rng);
         model->emplace<ReLU>();
         model->emplace<MaxPool2d>(2, 6, 6, 2, 2);
         model->emplace<Dense>(2 * 9, 4, rng);
         return model;
       },
       {2, 36},
       2e-1f,
       /*separated_input=*/true});
  cases.push_back(
      {"Sequential_deconv",
       [](common::Pcg32& rng) {
         auto model = std::make_unique<Sequential>();
         model->emplace<Dense>(5, 2 * 3 * 3, rng);
         model->emplace<ReLU>();
         model->emplace<ConvTranspose2d>(2, 1, 4, 2, 1, 3, 3, rng);
         model->emplace<Sigmoid>();
         return model;
       },
       {2, 5},
       2e-1f});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllLayers, GradCheckSuite,
                         ::testing::ValuesIn(all_cases()),
                         [](const ::testing::TestParamInfo<GradCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace orco::nn
