// Weight serialisation round-trip and mismatch handling.
#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/model_io.h"
#include "nn/sequential.h"

namespace orco::nn {
namespace {

using tensor::Tensor;

std::unique_ptr<Sequential> make_model(std::uint64_t seed) {
  common::Pcg32 rng(seed);
  auto model = std::make_unique<Sequential>();
  model->emplace<Dense>(6, 4, rng);
  model->emplace<ReLU>();
  model->emplace<Dense>(4, 6, rng);
  model->emplace<Sigmoid>();
  return model;
}

TEST(ModelIoTest, SaveLoadRoundTripRestoresOutputs) {
  auto a = make_model(1);
  auto b = make_model(2);  // different weights
  common::Pcg32 rng(3);
  const Tensor x = Tensor::randn({5, 6}, rng);
  const Tensor before = a->forward(x, false);
  EXPECT_FALSE(b->forward(x, false).allclose(before, 1e-5f));

  const auto bytes = save_params(*a);
  load_params(*b, bytes);
  EXPECT_TRUE(b->forward(x, false).allclose(before, 0.0f));
}

TEST(ModelIoTest, FileRoundTrip) {
  auto a = make_model(4);
  const std::string path = ::testing::TempDir() + "/orco_model_io_test.bin";
  save_params_file(*a, path);
  auto b = make_model(5);
  load_params_file(*b, path);
  common::Pcg32 rng(6);
  const Tensor x = Tensor::randn({2, 6}, rng);
  EXPECT_TRUE(a->forward(x, false).allclose(b->forward(x, false), 0.0f));
}

TEST(ModelIoTest, ArchitectureMismatchThrows) {
  auto a = make_model(7);
  common::Pcg32 rng(8);
  Sequential different;
  different.emplace<Dense>(6, 5, rng);  // wrong shape
  const auto bytes = save_params(*a);
  EXPECT_THROW(load_params(different, bytes), std::invalid_argument);
}

TEST(ModelIoTest, ParamCountMismatchThrows) {
  auto a = make_model(9);
  common::Pcg32 rng(10);
  Sequential shorter;
  shorter.emplace<Dense>(6, 4, rng);
  const auto bytes = save_params(*a);
  EXPECT_THROW(load_params(shorter, bytes), std::invalid_argument);
}

TEST(ModelIoTest, CorruptMagicThrows) {
  auto a = make_model(11);
  auto bytes = save_params(*a);
  bytes[0] = std::byte{0x00};
  EXPECT_THROW(load_params(*a, bytes), std::invalid_argument);
}

TEST(ModelIoTest, SerialisedSizeTracksParameterCount) {
  auto a = make_model(12);
  const auto bytes = save_params(*a);
  // At least 4 bytes per parameter scalar.
  EXPECT_GT(bytes.size(), a->parameter_count() * sizeof(float));
}

}  // namespace
}  // namespace orco::nn
