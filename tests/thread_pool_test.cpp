// Dedicated coverage for common/thread_pool: parallel_for chunking
// boundaries, the serial fallback of the free helper, and the
// future-returning submit() path the serving runtime depends on.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/thread_pool.h"

namespace orco::common {
namespace {

// Every index in [begin, end) must be visited exactly once, whatever the
// relation between trip count and worker count.
void expect_exact_coverage(ThreadPool& pool, std::size_t begin,
                           std::size_t end) {
  std::vector<std::atomic<int>> hits(end);
  pool.parallel_for(begin, end, [&](std::size_t lo, std::size_t hi) {
    ASSERT_LE(lo, hi);
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < begin; ++i) EXPECT_EQ(hits[i].load(), 0);
  for (std::size_t i = begin; i < end; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolChunkingTest, CoversBoundaryTripCounts) {
  ThreadPool pool(4);
  expect_exact_coverage(pool, 0, 1);    // fewer items than workers
  expect_exact_coverage(pool, 0, 3);    // n < workers
  expect_exact_coverage(pool, 0, 4);    // n == workers
  expect_exact_coverage(pool, 0, 5);    // n == workers + 1 (ragged last chunk)
  expect_exact_coverage(pool, 0, 1000); // n >> workers
  expect_exact_coverage(pool, 7, 8);    // single item, nonzero begin
  expect_exact_coverage(pool, 13, 29);  // odd range, nonzero begin
}

TEST(ThreadPoolChunkingTest, SingleWorkerPoolStillCovers) {
  ThreadPool pool(1);
  expect_exact_coverage(pool, 0, 17);
}

TEST(ThreadPoolChunkingTest, EmptyAndInvertedRangesAreNoops) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  pool.parallel_for(9, 3, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolHelperTest, NullPoolRunsSerially) {
  std::vector<int> hits(10, 0);
  const auto tid = std::this_thread::get_id();
  bool same_thread = true;
  parallel_for(nullptr, 0, 10, /*grain=*/1, [&](std::size_t lo, std::size_t hi) {
    same_thread = same_thread && std::this_thread::get_id() == tid;
    for (std::size_t i = lo; i < hi; ++i) hits[i]++;
  });
  EXPECT_TRUE(same_thread);
  for (const auto h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPoolHelperTest, BelowGrainFallsBackToOneSerialCall) {
  ThreadPool pool(4);
  int calls = 0;
  parallel_for(&pool, 0, 9, /*grain=*/10, [&](std::size_t lo, std::size_t hi) {
    ++calls;
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 9u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolHelperTest, AtGrainUsesThePool) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  parallel_for(&pool, 0, 16, /*grain=*/16, [&](std::size_t lo, std::size_t hi) {
    count.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolSubmitTest, ReturnsTaskResultThroughFuture) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(future.get(), 42);
}

TEST(ThreadPoolSubmitTest, VoidTasksComplete) {
  ThreadPool pool(2);
  std::atomic<bool> ran{false};
  auto future = pool.submit([&] { ran.store(true); });
  future.get();
  EXPECT_TRUE(ran.load());
}

TEST(ThreadPoolSubmitTest, ExceptionsPropagateThroughFutureGet) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("task exploded"); });
  try {
    (void)future.get();
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task exploded");
  }
}

TEST(ThreadPoolSubmitTest, ManyConcurrentTasksAllRun) {
  ThreadPool pool(4);
  std::vector<std::future<std::size_t>> futures;
  for (std::size_t i = 0; i < 64; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  std::size_t sum = 0;
  for (auto& f : futures) sum += f.get();
  std::size_t expect = 0;
  for (std::size_t i = 0; i < 64; ++i) expect += i * i;
  EXPECT_EQ(sum, expect);
}

TEST(ThreadPoolSubmitTest, LongRunningTasksDoNotBlockParallelFor) {
  // A long-running submitted task must not wedge parallel_for chunks queued
  // behind it as long as another worker is free.
  ThreadPool pool(2);
  std::atomic<bool> release{false};
  auto blocker = pool.submit([&] {
    while (!release.load()) std::this_thread::yield();
  });
  std::atomic<int> count{0};
  std::thread loop([&] {
    pool.parallel_for(0, 8, [&](std::size_t lo, std::size_t hi) {
      count.fetch_add(static_cast<int>(hi - lo));
    });
  });
  loop.join();
  EXPECT_EQ(count.load(), 8);
  release.store(true);
  blocker.get();
}

TEST(ThreadPoolGlobalTest, GlobalPoolIsStableAcrossCalls) {
  ThreadPool* first = &ThreadPool::global();
  ThreadPool* second = &ThreadPool::global();
  EXPECT_EQ(first, second);
  EXPECT_GE(first->size(), 1u);
  auto future = first->submit([] { return 1; });
  EXPECT_EQ(future.get(), 1);
}

}  // namespace
}  // namespace orco::common
