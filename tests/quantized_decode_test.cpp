// Int8 uplink decode path: the quantize/dequantize _into overload pair,
// round-trip error bounds at batch-range extremes, Backend::gemm_quantized
// parity against explicit dequantize-then-gemm on every backend, the
// Sequential quantized entry point, an end-to-end decoder error bound
// propagated from quantization_error_bound, and the serving runtime's
// quantized submit path (int8 GEMM fast path and row-wise fallback).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/quantization.h"
#include "nn/activations.h"
#include "nn/dense.h"
#include "nn/infer_context.h"
#include "nn/sequential.h"
#include "serve/serve.h"
#include "tensor/backend.h"
#include "tensor/tensor.h"

namespace orco {
namespace {

using core::LatentPrecision;
using tensor::Tensor;

constexpr const char* kAllBackends[] = {"reference", "blocked", "simd"};

TEST(QuantizeIntoTest, IntoOverloadsMatchVectorOverloadsExactly) {
  common::Pcg32 rng(51);
  const Tensor latents = Tensor::randn({3, 16}, rng);
  for (const auto precision :
       {LatentPrecision::kFloat32, LatentPrecision::kFixed16,
        LatentPrecision::kFixed8}) {
    const std::vector<std::uint8_t> expected =
        core::quantize_latents(latents, precision);
    std::vector<std::uint8_t> buf(expected.size() + 7, 0xAA);
    const std::size_t written = core::quantize_latents_into(
        latents, precision, buf.data(), buf.size());
    ASSERT_EQ(written, expected.size());
    for (std::size_t i = 0; i < written; ++i) {
      ASSERT_EQ(buf[i], expected[i]) << "payload byte " << i;
    }
    for (std::size_t i = written; i < buf.size(); ++i) {
      ASSERT_EQ(buf[i], 0xAA) << "overrun at byte " << i;
    }

    const Tensor round =
        core::dequantize_latents(expected, latents.shape(), precision);
    std::vector<float> into(latents.numel(), -777.0f);
    core::dequantize_latents_into(expected.data(), expected.size(), precision,
                                  into.data(), into.size());
    for (std::size_t i = 0; i < into.size(); ++i) {
      ASSERT_EQ(into[i], round[i]) << "dequant value " << i;
    }
  }
  // Undersized capacity is rejected, not silently truncated.
  std::vector<std::uint8_t> tiny(4);
  EXPECT_THROW(core::quantize_latents_into(latents, LatentPrecision::kFixed8,
                                           tiny.data(), tiny.size()),
               std::invalid_argument);
}

TEST(QuantizeIntoTest, RoundTripErrorBoundAtBatchRangeExtremes) {
  const auto check_round_trip = [](const Tensor& batch,
                                   LatentPrecision precision) {
    const std::vector<std::uint8_t> payload =
        core::quantize_latents(batch, precision);
    const Tensor round =
        core::dequantize_latents(payload, batch.shape(), precision);
    float lo = batch[0], hi = batch[0];
    for (std::size_t i = 0; i < batch.numel(); ++i) {
      lo = std::min(lo, batch[i]);
      hi = std::max(hi, batch[i]);
    }
    // Half a quantization step of the batch's value range, plus float
    // rounding headroom.
    const float bound =
        core::quantization_error_bound(precision) * (hi - lo) + 1e-6f;
    for (std::size_t i = 0; i < batch.numel(); ++i) {
      ASSERT_NEAR(round[i], batch[i], bound)
          << "element " << i << " precision " << static_cast<int>(precision);
    }
  };

  common::Pcg32 rng(52);
  for (const auto precision :
       {LatentPrecision::kFixed16, LatentPrecision::kFixed8}) {
    // Degenerate range: an all-equal batch has hi == lo, so every code
    // decodes back to exactly lo — the round trip must be lossless.
    Tensor flat({4, 8});
    flat.fill(0.73f);
    const std::vector<std::uint8_t> payload =
        core::quantize_latents(flat, precision);
    const Tensor round =
        core::dequantize_latents(payload, flat.shape(), precision);
    for (std::size_t i = 0; i < flat.numel(); ++i) {
      ASSERT_EQ(round[i], 0.73f) << "all-equal batch element " << i;
    }

    // Negative-only batch: the affine header must track the true [min, max]
    // rather than assuming the sigmoid's (0, 1).
    Tensor negative = Tensor::randn({4, 8}, rng);
    for (std::size_t i = 0; i < negative.numel(); ++i) {
      negative[i] = -1.0f - std::fabs(negative[i]);
    }
    check_round_trip(negative, precision);

    // Plain mixed-sign batch.
    check_round_trip(Tensor::randn({4, 8}, rng), precision);
  }
}

TEST(QuantizeIntoTest, DequantParamsAgreeWithDoubleMathWithinBound) {
  common::Pcg32 rng(53);
  const Tensor batch = Tensor::randn({1, 64}, rng);
  for (const auto precision :
       {LatentPrecision::kFixed16, LatentPrecision::kFixed8}) {
    const std::vector<std::uint8_t> payload =
        core::quantize_latents(batch, precision);
    const Tensor dbl =
        core::dequantize_latents(payload, batch.shape(), precision);
    float lo = 0.0f, step = 0.0f;
    core::quantized_dequant_params(payload.data(), precision, &lo, &step);
    const std::size_t header = core::quantization_header_bytes(precision);
    float range = 0.0f;
    for (std::size_t i = 0; i < batch.numel(); ++i) {
      for (std::size_t j = 0; j < batch.numel(); ++j) {
        range = std::max(range, std::fabs(batch[i] - batch[j]));
      }
    }
    for (std::size_t i = 0; i < batch.numel(); ++i) {
      std::uint32_t code = payload[header + i * core::bytes_per_value(
                                                    precision)];
      if (precision == LatentPrecision::kFixed16) {
        code |= static_cast<std::uint32_t>(
                    payload[header + i * 2 + 1])
                << 8;
      }
      const float fused = lo + static_cast<float>(code) * step;
      // The fused float expression and the double-math dequantize differ
      // by at most ~1 ulp of the value range.
      ASSERT_NEAR(fused, dbl[i], 1e-5f * std::max(1.0f, range))
          << "code " << i;
    }
  }
  // kFloat32 payloads carry no affine header to read.
  float flo = 0.0f;
  float fstep = 0.0f;
  EXPECT_THROW(core::quantized_dequant_params(
                   nullptr, LatentPrecision::kFloat32, &flo, &fstep),
               std::invalid_argument);
}

TEST(GemmQuantizedTest, MatchesExplicitDequantThenPrepackedBitwise) {
  // The gemm_quantized contract on every backend: bitwise identical to
  // dequantizing the codes with x = lo + q*scale (single-float math) and
  // running gemm_prepacked on the float batch. Ragged m/k/n included.
  common::Pcg32 rng(54);
  struct Dims {
    std::size_t m, k, n;
  };
  const Dims dims[] = {{1, 16, 8}, {7, 128, 784}, {9, 33, 31}, {4, 256, 64}};
  for (const auto& d : dims) {
    std::vector<std::uint8_t> codes(d.m * d.k);
    for (std::size_t i = 0; i < codes.size(); ++i) {
      codes[i] = static_cast<std::uint8_t>((i * 131 + 17) & 0xFF);
    }
    std::vector<float> lo(d.m), scale(d.m);
    for (std::size_t i = 0; i < d.m; ++i) {
      lo[i] = -1.0f + 0.05f * static_cast<float>(i);
      scale[i] = (2.0f + 0.1f * static_cast<float>(i)) / 255.0f;
    }
    const tensor::QuantHeader qh{lo.data(), scale.data()};
    const Tensor w = Tensor::randn({d.n, d.k}, rng);  // dense (out, in)
    const Tensor bias = Tensor::randn({d.n}, rng);
    Tensor dequant({d.m, d.k});
    for (std::size_t i = 0; i < d.m; ++i) {
      for (std::size_t p = 0; p < d.k; ++p) {
        dequant.at(i, p) =
            lo[i] + static_cast<float>(codes[i * d.k + p]) * scale[i];
      }
    }
    for (const char* name : kAllBackends) {
      const tensor::Backend* backend = tensor::find_backend(name);
      const tensor::PackedWeights packed =
          backend->pack_b(w.data().data(), d.k, d.n, /*transpose_b=*/true);
      tensor::Epilogue epi;
      epi.bias = bias.data().data();
      epi.act = tensor::EpilogueAct::kSigmoid;
      Tensor from_codes({d.m, d.n}), from_floats({d.m, d.n});
      backend->gemm_quantized(codes.data(), qh, packed,
                              from_codes.data().data(), d.m, d.k, d.n, epi);
      backend->gemm_prepacked(dequant.data().data(), packed,
                              from_floats.data().data(), d.m, d.k, d.n, epi);
      for (std::size_t i = 0; i < from_codes.numel(); ++i) {
        ASSERT_EQ(from_codes[i], from_floats[i])
            << name << " element " << i << " at " << d.m << "x" << d.k << "x"
            << d.n;
      }
    }
  }
}

TEST(QuantizedInferTest, SequentialQuantizedEntryMatchesDequantizedChain) {
  common::Pcg32 rng(55);
  std::vector<std::uint8_t> codes(5 * 16);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<std::uint8_t>((i * 71 + 3) & 0xFF);
  }
  std::vector<float> lo(5), scale(5);
  for (std::size_t i = 0; i < 5; ++i) {
    lo[i] = -0.5f + 0.2f * static_cast<float>(i);
    scale[i] = (1.0f + 0.3f * static_cast<float>(i)) / 255.0f;
  }
  const tensor::QuantHeader qh{lo.data(), scale.data()};
  Tensor dequant({5, 16});
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 16; ++j) {
      dequant.at(i, j) =
          lo[i] + static_cast<float>(codes[i * 16 + j]) * scale[i];
    }
  }

  // Dense head: codes feed the GEMM directly (with the activation
  // peephole); must equal the float chain on the dequantized batch bitwise.
  {
    nn::Sequential model;
    model.emplace<nn::Dense>(16, 48, rng);
    model.emplace<nn::ReLU>();
    model.emplace<nn::Dense>(48, 32, rng);
    model.emplace<nn::Sigmoid>();
    for (const char* name : kAllBackends) {
      tensor::BackendScope scope(tensor::find_backend(name));
      nn::InferContext ctx;
      Tensor out, expected;
      model.infer_quantized_into(codes.data(), qh, 5, 16, out, ctx);
      nn::InferContext ctx2;
      model.infer_into(dequant, expected, ctx2);
      ASSERT_EQ(out.shape(), expected.shape());
      for (std::size_t i = 0; i < out.numel(); ++i) {
        ASSERT_EQ(out[i], expected[i]) << name << " element " << i;
      }
    }
  }

  // Non-Dense head: the entry falls back to dequantize-into-context, so the
  // same equality must hold down the escape path too.
  {
    nn::Sequential model;
    model.emplace<nn::ReLU>();
    model.emplace<nn::Dense>(16, 24, rng);
    model.emplace<nn::Sigmoid>();
    nn::InferContext ctx;
    Tensor out, expected;
    model.infer_quantized_into(codes.data(), qh, 5, 16, out, ctx);
    nn::InferContext ctx2;
    model.infer_into(dequant, expected, ctx2);
    ASSERT_EQ(out.shape(), expected.shape());
    for (std::size_t i = 0; i < out.numel(); ++i) {
      ASSERT_EQ(out[i], expected[i]) << "non-dense head element " << i;
    }
  }

  // All-identity chain: the pass is exactly the dequantization.
  {
    nn::Sequential model;
    model.emplace<nn::Identity>();
    nn::InferContext ctx;
    Tensor out;
    model.infer_quantized_into(codes.data(), qh, 5, 16, out, ctx);
    ASSERT_EQ(out.shape(), dequant.shape());
    for (std::size_t i = 0; i < out.numel(); ++i) {
      ASSERT_EQ(out[i], dequant[i]) << "identity chain element " << i;
    }
  }
}

TEST(QuantizedInferTest, EndToEndDecodeErrorWithinPropagatedBound) {
  // Decode a per-row-quantized batch through a Dense+Sigmoid decoder and
  // check the output error against decoding the original floats, bounded
  // by quantization_error_bound propagated through the layer: input error
  // <= bound * row range, amplified by at most the max weight-row L1 norm,
  // contracted by the sigmoid's 1/4 Lipschitz constant.
  common::Pcg32 rng(56);
  nn::Sequential model;
  auto& dense = model.emplace<nn::Dense>(16, 64, rng);
  model.emplace<nn::Sigmoid>();

  const Tensor latents = Tensor::randn({6, 16}, rng);
  std::vector<std::uint8_t> codes(6 * 16);
  std::vector<float> lo(6), scale(6);
  std::vector<float> row_range(6);
  std::vector<std::uint8_t> payload(
      core::quantized_payload_bytes(16, LatentPrecision::kFixed8));
  const std::size_t header =
      core::quantization_header_bytes(LatentPrecision::kFixed8);
  for (std::size_t r = 0; r < 6; ++r) {
    const Tensor row = latents.row_copy(r);
    core::quantize_latents_into(row, LatentPrecision::kFixed8, payload.data(),
                                payload.size());
    std::copy(payload.begin() + header, payload.end(), codes.begin() + r * 16);
    core::quantized_dequant_params(payload.data(), LatentPrecision::kFixed8,
                                   &lo[r], &scale[r]);
    float rlo = row[0], rhi = row[0];
    for (std::size_t j = 0; j < row.numel(); ++j) {
      rlo = std::min(rlo, row[j]);
      rhi = std::max(rhi, row[j]);
    }
    row_range[r] = rhi - rlo;
  }

  float max_row_l1 = 0.0f;
  const Tensor& w = dense.weight();  // (out, in)
  for (std::size_t o = 0; o < w.dim(0); ++o) {
    float l1 = 0.0f;
    for (std::size_t in = 0; in < w.dim(1); ++in) {
      l1 += std::fabs(w.at(o, in));
    }
    max_row_l1 = std::max(max_row_l1, l1);
  }

  const tensor::QuantHeader qh{lo.data(), scale.data()};
  nn::InferContext ctx;
  Tensor from_codes, from_floats;
  model.infer_quantized_into(codes.data(), qh, 6, 16, from_codes, ctx);
  nn::InferContext ctx2;
  model.infer_into(latents, from_floats, ctx2);
  ASSERT_EQ(from_codes.shape(), from_floats.shape());
  const float per_unit =
      core::quantization_error_bound(LatentPrecision::kFixed8);
  for (std::size_t r = 0; r < 6; ++r) {
    // Sigmoid Lipschitz constant 1/4; small slack for float rounding.
    const float bound =
        0.25f * max_row_l1 * (per_unit * row_range[r] + 1e-5f) + 1e-5f;
    for (std::size_t j = 0; j < from_codes.dim(1); ++j) {
      ASSERT_NEAR(from_codes.at(r, j), from_floats.at(r, j), bound)
          << "row " << r << " col " << j;
    }
  }
}

// ---- serving runtime quantized submit ---------------------------------------

core::SystemConfig tenant_config(bool int8_decode) {
  core::SystemConfig cfg;
  cfg.orco.input_dim = 64;
  cfg.orco.latent_dim = 16;
  cfg.orco.decoder_layers = 2;
  cfg.orco.seed = 42;
  cfg.orco.int8_decode = int8_decode;
  cfg.field.device_count = 8;
  cfg.field.radio_range_m = 60.0;
  return cfg;
}

TEST(ServeQuantizedTest, Int8FastPathDecodesQuantizedPayloads) {
  serve::ServeConfig cfg;
  cfg.shard_count = 1;
  cfg.int8_decode = true;
  serve::ServerRuntime runtime(cfg);
  const auto tenant =
      std::make_shared<core::OrcoDcsSystem>(tenant_config(true));
  runtime.register_cluster(7, tenant);
  runtime.start();

  common::Pcg32 rng(57);
  std::vector<Tensor> latents;
  std::vector<std::future<serve::DecodeResponse>> futures;
  for (int i = 0; i < 6; ++i) {
    latents.push_back(Tensor::randn({16}, rng));
    futures.push_back(runtime.submit(
        7, core::quantize_latents(latents.back(), LatentPrecision::kFixed8),
        LatentPrecision::kFixed8));
  }
  for (std::size_t i = 0; i < futures.size(); ++i) {
    serve::DecodeResponse response = futures[i].get();
    ASSERT_EQ(response.status, serve::ResponseStatus::kOk) << response.detail;
    ASSERT_EQ(response.reconstruction.numel(), 64u);
    // Expected: decode the float-math dequantization of the same payload —
    // the fused GEMM applies exactly x = lo + q*scale per code.
    const std::vector<std::uint8_t> payload =
        core::quantize_latents(latents[i], LatentPrecision::kFixed8);
    float lo = 0.0f, step = 0.0f;
    core::quantized_dequant_params(payload.data(), LatentPrecision::kFixed8,
                                   &lo, &step);
    const std::size_t header =
        core::quantization_header_bytes(LatentPrecision::kFixed8);
    Tensor dequant({1, 16});
    for (std::size_t j = 0; j < 16; ++j) {
      dequant.at(0, j) =
          lo + static_cast<float>(payload[header + j]) * step;
    }
    const Tensor expected = tenant->edge().decode_inference(dequant);
    for (std::size_t j = 0; j < 64; ++j) {
      ASSERT_EQ(response.reconstruction[j], expected[j])
          << "request " << i << " col " << j;
    }
  }
  runtime.shutdown();
}

TEST(ServeQuantizedTest, RowWiseFallbackServesQuantizedPayloads) {
  // int8 GEMM disarmed (runtime flag off): quantized payloads are decoded
  // by row-wise dequantize_latents_into — identical to submitting the
  // double-math dequantized floats. kFixed16 exercises the non-int8 wire
  // precision through the same path.
  serve::ServeConfig cfg;
  cfg.shard_count = 1;
  serve::ServerRuntime runtime(cfg);
  const auto tenant =
      std::make_shared<core::OrcoDcsSystem>(tenant_config(false));
  runtime.register_cluster(3, tenant);
  runtime.start();

  common::Pcg32 rng(58);
  for (const auto precision :
       {LatentPrecision::kFixed8, LatentPrecision::kFixed16}) {
    const Tensor latent = Tensor::randn({16}, rng);
    const std::vector<std::uint8_t> payload =
        core::quantize_latents(latent, precision);
    serve::DecodeResponse response =
        runtime.submit(3, payload, precision).get();
    ASSERT_EQ(response.status, serve::ResponseStatus::kOk) << response.detail;
    const Tensor dequant =
        core::dequantize_latents(payload, {1, 16}, precision);
    const Tensor expected = tenant->edge().decode_inference(dequant);
    for (std::size_t j = 0; j < 64; ++j) {
      ASSERT_EQ(response.reconstruction[j], expected[j])
          << static_cast<int>(precision) << " col " << j;
    }
  }
  runtime.shutdown();
}

TEST(ServeQuantizedTest, MalformedQuantizedPayloadIsBadRequest) {
  serve::ServeConfig cfg;
  cfg.shard_count = 1;
  cfg.int8_decode = true;
  serve::ServerRuntime runtime(cfg);
  runtime.register_cluster(9, std::make_shared<core::OrcoDcsSystem>(
                                  tenant_config(true)));
  runtime.start();
  // 3 bytes short of quantized_payload_bytes(16, kFixed8).
  std::vector<std::uint8_t> bad(
      core::quantized_payload_bytes(16, LatentPrecision::kFixed8) - 3);
  serve::DecodeResponse response =
      runtime.submit(9, bad, LatentPrecision::kFixed8).get();
  EXPECT_EQ(response.status, serve::ResponseStatus::kBadRequest);
  runtime.shutdown();
}

}  // namespace
}  // namespace orco
