// Runtime companions to the compile-time thread-safety contracts.
//
// The ORCO_GUARDED_BY / ORCO_REQUIRES annotations (enforced by the clang
// CI job, with tests/negative/thread_safety_violations.cpp proving the
// analysis rejects violations) cover the mutex-protected state. Two things
// they cannot cover are exercised here at runtime:
//
//  * thread-LOCAL state that is intentionally unsynchronized — the
//    BackendScope override stack and the per-thread GEMM parallelism
//    opt-out must stay isolated per pool worker, never leak across the
//    pool's task boundaries, and never observe another thread's value;
//  * the sanitizer wall itself — TsanCanary is a deliberately racy
//    increment, armed only via ORCO_TSAN_CANARY=1, that the TSan CI job
//    runs EXPECTING a detected race. A clean exit there means the
//    instrumentation is off and every green TSan run is meaningless.

#include <atomic>
#include <cstdlib>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "tensor/backend.h"

namespace orco {
namespace {

// Each pool worker flips its own thread-local GEMM parallelism flag and
// then re-reads it after every other worker has flipped (or not flipped)
// theirs: the barrier forces the reads to happen while the other threads'
// writes are in effect, so any cross-thread leakage would be observed.
TEST(ThreadLocalIsolation, GemmParallelismIsPerPoolWorker) {
  constexpr std::size_t kWorkers = 4;
  common::ThreadPool pool(kWorkers);

  std::atomic<std::size_t> arrived{0};
  std::vector<std::future<bool>> results;
  for (std::size_t i = 0; i < kWorkers; ++i) {
    results.push_back(pool.submit([i, &arrived] {
      const bool mine = (i % 2 == 0);  // workers disagree on purpose
      tensor::set_thread_gemm_parallelism(mine);
      arrived.fetch_add(1);
      while (arrived.load() < kWorkers) std::this_thread::yield();
      // Every worker still sees its own setting, not a neighbour's.
      const bool ok = tensor::thread_gemm_parallelism() == mine;
      tensor::set_thread_gemm_parallelism(true);  // restore for reuse
      return ok;
    }));
  }
  for (auto& r : results) EXPECT_TRUE(r.get());
  // The submitting thread's own flag was never touched.
  EXPECT_TRUE(tensor::thread_gemm_parallelism());
}

// Same isolation contract for the BackendScope override stack: a scope
// constructed on one pool worker must redirect current_backend() on that
// worker only, and destruction must restore the previous selection even
// with all workers inside scopes concurrently.
TEST(ThreadLocalIsolation, BackendScopeIsPerPoolWorker) {
  constexpr std::size_t kWorkers = 4;
  common::ThreadPool pool(kWorkers);
  const tensor::Backend& base = tensor::current_backend();
  const tensor::Backend* blocked = tensor::find_backend("blocked");
  ASSERT_NE(blocked, nullptr);

  std::atomic<std::size_t> arrived{0};
  std::vector<std::future<bool>> results;
  for (std::size_t i = 0; i < kWorkers; ++i) {
    results.push_back(pool.submit([i, &arrived, &base, blocked] {
      bool ok = true;
      {
        // Odd workers override; even workers keep the default. A null
        // scope must be a no-op (the "not configured" passthrough).
        tensor::BackendScope scope(i % 2 == 1 ? blocked : nullptr);
        arrived.fetch_add(1);
        while (arrived.load() < kWorkers) std::this_thread::yield();
        const tensor::Backend& seen = tensor::current_backend();
        ok = ok && (&seen == (i % 2 == 1 ? blocked : &base));
      }
      // Scope destruction restores the worker to the process default.
      ok = ok && (&tensor::current_backend() == &base);
      return ok;
    }));
  }
  for (auto& r : results) EXPECT_TRUE(r.get());
  EXPECT_EQ(&tensor::current_backend(), &base);
}

// A pool worker's thread-local state must not leak into LATER tasks that
// happen to land on the same worker thread: submit a task that sets the
// flag and deliberately "forgets" to restore it, then verify the repo
// convention — scoped restoration — is what the runtime relies on, by
// checking a fresh task observes whatever the previous task left. This
// documents the hazard the RAII BackendScope exists to prevent.
TEST(ThreadLocalIsolation, StateStickinessIsWhyScopesExist) {
  common::ThreadPool pool(1);  // single worker: tasks share one thread
  pool.submit([] { tensor::set_thread_gemm_parallelism(false); }).get();
  const bool seen_by_next_task =
      pool.submit([] { return tensor::thread_gemm_parallelism(); }).get();
  EXPECT_FALSE(seen_by_next_task);  // sticky: pool threads outlive tasks
  pool.submit([] { tensor::set_thread_gemm_parallelism(true); }).get();
}

// Deliberate data race, armed only under ORCO_TSAN_CANARY=1. The TSan CI
// job runs this test expecting the sanitizer to abort it (halt_on_error);
// the job FAILS if the test exits cleanly. Under a normal (uninstrumented)
// run the test is skipped, so the tier-1 suite never executes the race.
TEST(TsanCanary, RacyIncrementMustBeDetected) {
  const char* armed = std::getenv("ORCO_TSAN_CANARY");
  if (armed == nullptr || armed[0] != '1') {
    GTEST_SKIP() << "set ORCO_TSAN_CANARY=1 to arm the canary race";
  }
  // Unsynchronized read-modify-write from two threads on a plain int:
  // the textbook race TSan must flag.
  int racy = 0;
  std::thread a([&racy] {
    for (int i = 0; i < 100000; ++i) racy = racy + 1;
  });
  std::thread b([&racy] {
    for (int i = 0; i < 100000; ++i) racy = racy + 1;
  });
  a.join();
  b.join();
  // Reaching here under TSan (halt_on_error=1) means no race was
  // reported; the CI step inverts the exit code and fails.
  EXPECT_GT(racy, 0);
}

}  // namespace
}  // namespace orco
