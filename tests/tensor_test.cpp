// Unit tests for src/tensor: Tensor, GEMM, im2col/col2im, free ops.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "tensor/im2col.h"
#include "tensor/matmul.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace orco::tensor {
namespace {

TEST(ShapeTest, NumelAndToString) {
  EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
  EXPECT_EQ(shape_numel({}), 0u);
  EXPECT_EQ(shape_to_string({2, 3}), "[2, 3]");
}

TEST(TensorTest, ZeroInitialisedConstruction) {
  Tensor t({2, 3});
  EXPECT_EQ(t.numel(), 6u);
  EXPECT_EQ(t.rank(), 2u);
  for (const auto v : t.data()) EXPECT_EQ(v, 0.0f);
}

TEST(TensorTest, FillConstruction) {
  Tensor t({4}, 2.5f);
  for (const auto v : t.data()) EXPECT_EQ(v, 2.5f);
}

TEST(TensorTest, DataConstructionValidatesSize) {
  EXPECT_THROW(Tensor({2, 2}, std::vector<float>{1.0f}),
               std::invalid_argument);
}

TEST(TensorTest, From2dLaysOutRowMajor) {
  const Tensor t = Tensor::from2d({{1, 2, 3}, {4, 5, 6}});
  EXPECT_EQ(t.dim(0), 2u);
  EXPECT_EQ(t.dim(1), 3u);
  EXPECT_EQ(t.at(1, 0), 4.0f);
  EXPECT_EQ(t.at(0, 2), 3.0f);
}

TEST(TensorTest, From2dRejectsRagged) {
  EXPECT_THROW(Tensor::from2d({{1, 2}, {3}}), std::invalid_argument);
}

TEST(TensorTest, RandnIsDeterministicPerSeed) {
  common::Pcg32 a(11), b(11);
  const Tensor x = Tensor::randn({16}, a);
  const Tensor y = Tensor::randn({16}, b);
  EXPECT_TRUE(x.allclose(y, 0.0f));
}

TEST(TensorTest, ReshapePreservesDataAndValidates) {
  Tensor t = Tensor::from({1, 2, 3, 4, 5, 6});
  t.reshape({2, 3});
  EXPECT_EQ(t.at(1, 2), 6.0f);
  EXPECT_THROW(t.reshape({7}), std::invalid_argument);
  const Tensor r = t.reshaped({3, 2});
  EXPECT_EQ(r.at(2, 1), 6.0f);
}

TEST(TensorTest, AtBoundsChecking) {
  Tensor t({2, 2});
  EXPECT_THROW((void)t.at(2, 0), std::invalid_argument);
  Tensor t4({1, 2, 3, 4});
  EXPECT_NO_THROW((void)t4.at(0, 1, 2, 3));
  EXPECT_THROW((void)t4.at(1, 0, 0, 0), std::invalid_argument);
}

TEST(TensorTest, RowSpanViewsUnderlyingStorage) {
  Tensor t = Tensor::from2d({{1, 2}, {3, 4}});
  auto r = t.row(1);
  r[0] = 9.0f;
  EXPECT_EQ(t.at(1, 0), 9.0f);
}

TEST(TensorTest, SliceRows) {
  const Tensor t = Tensor::from2d({{1, 2}, {3, 4}, {5, 6}});
  const Tensor s = t.slice_rows(1, 3);
  EXPECT_EQ(s.dim(0), 2u);
  EXPECT_EQ(s.at(0, 0), 3.0f);
  EXPECT_EQ(s.at(1, 1), 6.0f);
  EXPECT_THROW((void)t.slice_rows(2, 1), std::invalid_argument);
}

TEST(TensorTest, SliceAndSetOuter) {
  Tensor t({2, 3});
  Tensor row({3}, std::vector<float>{7, 8, 9});
  t.set_outer(1, row);
  const Tensor got = t.slice_outer(1);
  EXPECT_TRUE(got.allclose(row));
  EXPECT_THROW(t.set_outer(2, row), std::invalid_argument);
}

TEST(TensorTest, ElementwiseArithmetic) {
  const Tensor a = Tensor::from({1, 2, 3});
  const Tensor b = Tensor::from({4, 5, 6});
  EXPECT_TRUE((a + b).allclose(Tensor::from({5, 7, 9})));
  EXPECT_TRUE((b - a).allclose(Tensor::from({3, 3, 3})));
  EXPECT_TRUE((a * b).allclose(Tensor::from({4, 10, 18})));
  EXPECT_TRUE((a * 2.0f).allclose(Tensor::from({2, 4, 6})));
  EXPECT_TRUE((a + 1.0f).allclose(Tensor::from({2, 3, 4})));
}

TEST(TensorTest, CompoundAssignmentAndAxpy) {
  Tensor a = Tensor::from({1, 2});
  a += Tensor::from({1, 1});
  a -= Tensor::from({0, 1});
  a *= 3.0f;
  EXPECT_TRUE(a.allclose(Tensor::from({6, 6})));
  a.add_scaled(Tensor::from({1, 2}), 0.5f);
  EXPECT_TRUE(a.allclose(Tensor::from({6.5f, 7.0f})));
}

TEST(TensorTest, ShapeMismatchThrows) {
  const Tensor a({2});
  const Tensor b({3});
  EXPECT_THROW((void)(a + b), std::invalid_argument);
}

TEST(TensorTest, Reductions) {
  const Tensor t = Tensor::from({-1, 3, 2});
  EXPECT_FLOAT_EQ(t.sum(), 4.0f);
  EXPECT_FLOAT_EQ(t.mean(), 4.0f / 3.0f);
  EXPECT_FLOAT_EQ(t.min(), -1.0f);
  EXPECT_FLOAT_EQ(t.max(), 3.0f);
  EXPECT_EQ(t.argmax(), 1u);
  EXPECT_FLOAT_EQ(t.abs_max(), 3.0f);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(14.0f), 1e-5f);
}

TEST(TensorTest, MapAndApply) {
  Tensor t = Tensor::from({1, -2});
  const Tensor m = t.map([](float v) { return v * v; });
  EXPECT_TRUE(m.allclose(Tensor::from({1, 4})));
  t.apply([](float v) { return -v; });
  EXPECT_TRUE(t.allclose(Tensor::from({-1, 2})));
}

TEST(TensorTest, Transpose) {
  const Tensor t = Tensor::from2d({{1, 2, 3}, {4, 5, 6}});
  const Tensor tt = t.transposed();
  EXPECT_EQ(tt.dim(0), 3u);
  EXPECT_EQ(tt.at(2, 1), 6.0f);
  EXPECT_TRUE(tt.transposed().allclose(t));
}

TEST(TensorTest, AllcloseRespectsTolerance) {
  const Tensor a = Tensor::from({1.0f});
  const Tensor b = Tensor::from({1.0001f});
  EXPECT_TRUE(a.allclose(b, 1e-3f));
  EXPECT_FALSE(a.allclose(b, 1e-6f));
  EXPECT_FALSE(a.allclose(Tensor({2})));
}

// ---- GEMM -----------------------------------------------------------------

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

TEST(MatmulTest, KnownSmallProduct) {
  const Tensor a = Tensor::from2d({{1, 2}, {3, 4}});
  const Tensor b = Tensor::from2d({{5, 6}, {7, 8}});
  EXPECT_TRUE(matmul(a, b).allclose(Tensor::from2d({{19, 22}, {43, 50}})));
}

TEST(MatmulTest, MatchesNaiveOnRandom) {
  common::Pcg32 rng(21);
  const Tensor a = Tensor::randn({17, 23}, rng);
  const Tensor b = Tensor::randn({23, 11}, rng);
  EXPECT_TRUE(matmul(a, b).allclose(naive_matmul(a, b), 1e-3f));
}

TEST(MatmulTest, TransposedVariants) {
  common::Pcg32 rng(22);
  const Tensor a = Tensor::randn({7, 9}, rng);
  const Tensor b = Tensor::randn({7, 5}, rng);
  // a^T (9x7) * b (7x5)
  EXPECT_TRUE(matmul_tn(a, b).allclose(naive_matmul(a.transposed(), b), 1e-3f));
  const Tensor c = Tensor::randn({5, 9}, rng);
  // a (7x9) * c^T (9x5)
  EXPECT_TRUE(matmul_nt(a, c).allclose(naive_matmul(a, c.transposed()), 1e-3f));
}

TEST(MatmulTest, AccumulateAddsIntoExisting) {
  const Tensor a = Tensor::from2d({{1, 0}, {0, 1}});
  const Tensor b = Tensor::from2d({{2, 3}, {4, 5}});
  Tensor c({2, 2}, 1.0f);
  matmul_accumulate(a, b, c);
  EXPECT_TRUE(c.allclose(Tensor::from2d({{3, 4}, {5, 6}})));
}

TEST(MatmulTest, DimensionMismatchThrows) {
  EXPECT_THROW((void)matmul(Tensor({2, 3}), Tensor({4, 2})),
               std::invalid_argument);
  EXPECT_THROW((void)matmul(Tensor({6}), Tensor({6, 1})),
               std::invalid_argument);
}

TEST(MatmulTest, ParallelMatchesSerial) {
  common::Pcg32 rng(23);
  // Big enough to cross the parallel threshold.
  const Tensor a = Tensor::randn({256, 300}, rng);
  const Tensor b = Tensor::randn({300, 280}, rng);
  set_gemm_parallelism(false);
  const Tensor serial = matmul(a, b);
  set_gemm_parallelism(true);
  const Tensor parallel = matmul(a, b);
  EXPECT_TRUE(serial.allclose(parallel, 1e-4f));
}

TEST(MatvecTest, MatchesMatmul) {
  common::Pcg32 rng(24);
  const Tensor w = Tensor::randn({6, 4}, rng);
  const Tensor x = Tensor::randn({4}, rng);
  const Tensor y = matvec(w, x);
  const Tensor y2 = matmul(w, x.reshaped({4, 1}));
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(y[i], y2.at(i, 0), 1e-4f);
}

// ---- im2col ----------------------------------------------------------------

TEST(Im2colTest, GeometryOutputDims) {
  Conv2dGeometry g{1, 5, 5, 3, 3, 1, 0};
  EXPECT_EQ(g.out_h(), 3u);
  EXPECT_EQ(g.out_w(), 3u);
  Conv2dGeometry strided{1, 5, 5, 3, 3, 2, 1};
  EXPECT_EQ(strided.out_h(), 3u);
}

TEST(Im2colTest, IdentityKernelExtractsPixels) {
  // 1x1 kernel: columns are exactly the flattened image.
  Conv2dGeometry g{1, 2, 2, 1, 1, 1, 0};
  const std::vector<float> img = {1, 2, 3, 4};
  const Tensor cols = im2col(img, g);
  EXPECT_EQ(cols.dim(0), 1u);
  EXPECT_EQ(cols.dim(1), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(cols[i], img[i]);
}

TEST(Im2colTest, KnownPatchExtraction) {
  // 3x3 image, 2x2 kernel, stride 1, no pad: 4 patches.
  Conv2dGeometry g{1, 3, 3, 2, 2, 1, 0};
  const std::vector<float> img = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  const Tensor cols = im2col(img, g);
  EXPECT_EQ(cols.dim(0), 4u);   // 1*2*2
  EXPECT_EQ(cols.dim(1), 4u);   // 2*2 output positions
  // Patch at (0,0): rows are kernel positions (kh,kw) in order.
  EXPECT_EQ(cols.at(0, 0), 1.0f);  // (0,0)
  EXPECT_EQ(cols.at(1, 0), 2.0f);  // (0,1)
  EXPECT_EQ(cols.at(2, 0), 4.0f);  // (1,0)
  EXPECT_EQ(cols.at(3, 0), 5.0f);  // (1,1)
  // Patch at (1,1) (last output position).
  EXPECT_EQ(cols.at(0, 3), 5.0f);
  EXPECT_EQ(cols.at(3, 3), 9.0f);
}

TEST(Im2colTest, PaddingYieldsZeros) {
  Conv2dGeometry g{1, 2, 2, 3, 3, 1, 1};
  const std::vector<float> img = {1, 2, 3, 4};
  const Tensor cols = im2col(img, g);
  // Top-left output position, kernel element (0,0) reads padded zero.
  EXPECT_EQ(cols.at(0, 0), 0.0f);
  // Kernel centre (1,1) over output (0,0) reads pixel (0,0).
  EXPECT_EQ(cols.at(4, 0), 1.0f);
}

TEST(Im2colTest, Col2imIsAdjointOfIm2col) {
  // <im2col(x), C> == <x, col2im(C)> for random x and C — the defining
  // adjoint property that makes conv backward correct.
  common::Pcg32 rng(31);
  const Conv2dGeometry g{2, 6, 5, 3, 3, 2, 1};
  const Tensor x = Tensor::randn({2 * 6 * 5}, rng);
  const Tensor cols = im2col(x.data(), g);
  const Tensor c = Tensor::randn(cols.shape(), rng);

  double lhs = 0.0;
  for (std::size_t i = 0; i < cols.numel(); ++i) {
    lhs += static_cast<double>(cols[i]) * c[i];
  }
  Tensor folded({2 * 6 * 5});
  col2im(c, g, folded.data());
  double rhs = 0.0;
  for (std::size_t i = 0; i < x.numel(); ++i) {
    rhs += static_cast<double>(x[i]) * folded[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3);
}

TEST(Im2colTest, SizeMismatchThrows) {
  Conv2dGeometry g{1, 4, 4, 3, 3, 1, 0};
  const std::vector<float> wrong(7);
  EXPECT_THROW((void)im2col(wrong, g), std::invalid_argument);
}

// ---- free ops ---------------------------------------------------------------

TEST(OpsTest, SoftmaxRowsSumToOne) {
  common::Pcg32 rng(41);
  const Tensor logits = Tensor::randn({5, 9}, rng, 0.0f, 3.0f);
  const Tensor p = softmax_rows(logits);
  for (std::size_t i = 0; i < 5; ++i) {
    double sum = 0.0;
    for (const auto v : p.row(i)) {
      EXPECT_GE(v, 0.0f);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(OpsTest, SoftmaxIsShiftInvariantAndStable) {
  const Tensor a = Tensor::from2d({{1, 2, 3}});
  const Tensor b = Tensor::from2d({{1001, 1002, 1003}});
  EXPECT_TRUE(softmax_rows(a).allclose(softmax_rows(b), 1e-5f));
}

TEST(OpsTest, LogSoftmaxMatchesLogOfSoftmax) {
  common::Pcg32 rng(42);
  const Tensor logits = Tensor::randn({3, 7}, rng);
  const Tensor lsm = log_softmax_rows(logits);
  const Tensor sm = softmax_rows(logits);
  for (std::size_t i = 0; i < lsm.numel(); ++i) {
    EXPECT_NEAR(lsm[i], std::log(sm[i]), 1e-4f);
  }
}

TEST(OpsTest, ArgmaxRows) {
  const Tensor t = Tensor::from2d({{1, 5, 2}, {9, 0, 3}});
  const auto am = argmax_rows(t);
  EXPECT_EQ(am[0], 1u);
  EXPECT_EQ(am[1], 0u);
}

TEST(OpsTest, ClampBoundsValues) {
  const Tensor t = Tensor::from({-2, 0.5f, 7});
  EXPECT_TRUE(clamp(t, 0.0f, 1.0f).allclose(Tensor::from({0, 0.5f, 1})));
  EXPECT_THROW((void)clamp(t, 1.0f, 0.0f), std::invalid_argument);
}

TEST(OpsTest, MseKnownValue) {
  const Tensor a = Tensor::from({0, 0});
  const Tensor b = Tensor::from({3, 4});
  EXPECT_FLOAT_EQ(mse(a, b), 12.5f);
}

TEST(OpsTest, ConcatRows) {
  const Tensor a = Tensor::from2d({{1, 2}});
  const Tensor b = Tensor::from2d({{3, 4}, {5, 6}});
  const Tensor c = concat_rows({a, b});
  EXPECT_EQ(c.dim(0), 3u);
  EXPECT_EQ(c.at(2, 1), 6.0f);
  EXPECT_THROW((void)concat_rows({a, Tensor({1, 3})}), std::invalid_argument);
}

TEST(OpsTest, ConcatRowsRejectsMalformedInput) {
  EXPECT_THROW((void)concat_rows({}), std::invalid_argument);
  // Rank mismatches anywhere in the list, including the first part.
  EXPECT_THROW((void)concat_rows({Tensor::from({1, 2, 3})}),
               std::invalid_argument);
  const Tensor a = Tensor::from2d({{1, 2}});
  EXPECT_THROW((void)concat_rows({a, Tensor::from({1, 2})}),
               std::invalid_argument);
}

TEST(OpsTest, StackRowsSingleInputFastPath) {
  // Regression for the single-part fast path: the sole tensor is copied
  // straight through (no zero-init + overwrite), for both accepted ranks,
  // and malformed single parts are still rejected.
  const Tensor flat = Tensor::from({1, 2, 3});
  const Tensor s1 = stack_rows({flat});
  ASSERT_EQ(s1.rank(), 2u);
  EXPECT_EQ(s1.dim(0), 1u);
  EXPECT_EQ(s1.dim(1), 3u);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_EQ(s1[i], flat[i]);

  const Tensor row = Tensor::from2d({{4, 5, 6}});
  const Tensor s2 = stack_rows({row});
  ASSERT_EQ(s2.rank(), 2u);
  EXPECT_EQ(s2.dim(0), 1u);
  EXPECT_EQ(s2.dim(1), 3u);
  EXPECT_EQ(s2.at(0, 2), 6.0f);

  // A rank-2 multi-row sole part is malformed, same as on the general path.
  EXPECT_THROW((void)stack_rows({Tensor({2, 3})}), std::invalid_argument);
}

TEST(TensorTest, RowCopyExtractsOneRow) {
  const Tensor t = Tensor::from2d({{1, 2, 3}, {4, 5, 6}});
  const Tensor r = t.row_copy(1);
  ASSERT_EQ(r.rank(), 1u);
  ASSERT_EQ(r.numel(), 3u);
  EXPECT_EQ(r[0], 4.0f);
  EXPECT_EQ(r[2], 6.0f);
  EXPECT_THROW((void)t.row_copy(2), std::invalid_argument);
  EXPECT_THROW((void)Tensor::from({1, 2}).row_copy(0), std::invalid_argument);
}

TEST(TensorTest, ResizeChangesNumelAndReusesCapacity) {
  Tensor t({4, 8});
  t.fill(7.0f);
  const float* before = t.data().data();
  t.resize({2, 8});  // shrink: storage kept
  EXPECT_EQ(t.numel(), 16u);
  EXPECT_EQ(t.data().data(), before);
  EXPECT_EQ(t[0], 7.0f);
  t.resize({4, 8});  // regrow within capacity: storage kept
  EXPECT_EQ(t.numel(), 32u);
  EXPECT_EQ(t.data().data(), before);
  t.resize({16, 16});  // genuine growth
  EXPECT_EQ(t.numel(), 256u);
  EXPECT_EQ(t.dim(0), 16u);
}

TEST(OpsTest, StackRowsRejectsMalformedInput) {
  EXPECT_THROW((void)stack_rows({}), std::invalid_argument);
  EXPECT_THROW((void)stack_rows({Tensor{}}), std::invalid_argument);
  const Tensor a = Tensor::from({1, 2, 3});
  // Width mismatch and a rank-2 multi-row part are both rejected.
  EXPECT_THROW((void)stack_rows({a, Tensor::from({1, 2})}),
               std::invalid_argument);
  EXPECT_THROW((void)stack_rows({a, Tensor({2, 3})}), std::invalid_argument);
  const Tensor s = stack_rows({a, Tensor::from({4, 5, 6})});
  EXPECT_EQ(s.dim(0), 2u);
  EXPECT_EQ(s.at(1, 2), 6.0f);
}

}  // namespace
}  // namespace orco::tensor
