// Tests for the contention model (paper §III-A collision claim) and the
// latent-quantisation extension.
#include <gtest/gtest.h>

#include <cmath>

#include "core/quantization.h"
#include "wsn/contention.h"

namespace orco {
namespace {

using tensor::Tensor;

// ---- contention ---------------------------------------------------------------

TEST(ContentionTest, SlottedSuccessKnownValues) {
  EXPECT_DOUBLE_EQ(wsn::slotted_success_probability(0), 1.0);
  EXPECT_DOUBLE_EQ(wsn::slotted_success_probability(1), 1.0);
  EXPECT_DOUBLE_EQ(wsn::slotted_success_probability(2), 0.5);
  // k -> infinity tends to 1/e.
  EXPECT_NEAR(wsn::slotted_success_probability(1000), 1.0 / std::exp(1.0),
              1e-3);
}

TEST(ContentionTest, SuccessDecreasesWithContenders) {
  double last = 1.1;
  for (std::size_t k = 1; k <= 64; k *= 2) {
    const double s = wsn::slotted_success_probability(k);
    EXPECT_LT(s, last);
    last = s;
  }
}

TEST(ContentionTest, StarScalesPoorly) {
  const auto small = wsn::star_contention(4);
  const auto big = wsn::star_contention(64);
  EXPECT_GT(small.success_probability, big.success_probability);
  EXPECT_LT(small.expected_slots_per_packet, big.expected_slots_per_packet);
  EXPECT_EQ(big.largest_domain, 64u);
  EXPECT_THROW((void)wsn::star_contention(0), std::invalid_argument);
}

TEST(ContentionTest, TreeMitigatesCollisionsVsStar) {
  // The paper's sec. III-A claim: multi-hop aggregation reduces collisions.
  wsn::FieldConfig cfg;
  cfg.device_count = 48;
  cfg.side_m = 160.0;
  cfg.radio_range_m = 45.0;
  cfg.seed = 5;
  const wsn::Field field(cfg);
  const wsn::AggregationTree tree(field, wsn::RadioModel{});

  const auto star = wsn::star_contention(field.device_count());
  const auto treed = wsn::tree_contention(tree);
  EXPECT_LT(treed.largest_domain, star.largest_domain);
  EXPECT_GT(treed.success_probability, star.success_probability);
}

TEST(ContentionTest, ChainHasNoContention) {
  std::vector<wsn::Position> positions;
  for (int i = 0; i <= 10; ++i) {
    positions.push_back(wsn::Position{10.0 * i, 0.0});
  }
  const wsn::Field field(std::move(positions), 0, 15.0);
  const wsn::AggregationTree tree(field, wsn::RadioModel{});
  const auto report = wsn::tree_contention(tree);
  // Every parent has exactly one child: every slot succeeds.
  EXPECT_DOUBLE_EQ(report.success_probability, 1.0);
  EXPECT_EQ(report.largest_domain, 1u);
}

// ---- quantization ---------------------------------------------------------------

TEST(QuantizationTest, BytesPerValue) {
  EXPECT_EQ(core::bytes_per_value(core::LatentPrecision::kFloat32), 4u);
  EXPECT_EQ(core::bytes_per_value(core::LatentPrecision::kFixed16), 2u);
  EXPECT_EQ(core::bytes_per_value(core::LatentPrecision::kFixed8), 1u);
}

TEST(QuantizationTest, Float32IsLossless) {
  common::Pcg32 rng(1);
  const Tensor latents = Tensor::uniform({4, 16}, rng);
  const auto bytes =
      core::quantize_latents(latents, core::LatentPrecision::kFloat32);
  EXPECT_EQ(bytes.size(), latents.numel() * 4);
  const Tensor back = core::dequantize_latents(
      bytes, latents.shape(), core::LatentPrecision::kFloat32);
  EXPECT_TRUE(back.allclose(latents, 0.0f));
}

class FixedPointSuite
    : public ::testing::TestWithParam<core::LatentPrecision> {};

TEST_P(FixedPointSuite, RoundTripWithinErrorBound) {
  const auto precision = GetParam();
  common::Pcg32 rng(2);
  const Tensor latents = Tensor::uniform({8, 32}, rng);
  const auto bytes = core::quantize_latents(latents, precision);
  EXPECT_EQ(bytes.size(),
            core::quantized_payload_bytes(latents.numel(), precision));
  const Tensor back =
      core::dequantize_latents(bytes, latents.shape(), precision);
  // In-[0,1) data: range < 1, so the per-unit-range bound is also the
  // absolute bound, as before the affine header existed.
  const float bound = core::quantization_error_bound(precision);
  EXPECT_LE((back - latents).abs_max(), bound + 1e-7f);
}

TEST_P(FixedPointSuite, AffineHeaderRoundTripsArbitraryRangeLatents) {
  // Pre-affine payloads clamped everything to [0, 1], so negative or large
  // latents came back wrong by far more than the documented bound. The
  // per-batch [min, max] header must round-trip them within
  // bound x (max - min).
  const auto precision = GetParam();
  const Tensor latents =
      Tensor::from({-53.5f, -0.5f, 0.0f, 0.25f, 1.0f, 2.0f, 977.25f});
  const auto bytes = core::quantize_latents(latents, precision);
  const Tensor back =
      core::dequantize_latents(bytes, latents.shape(), precision);
  const float range = 977.25f - (-53.5f);
  const float bound = core::quantization_error_bound(precision) * range;
  for (std::size_t i = 0; i < latents.numel(); ++i) {
    EXPECT_NEAR(back[i], latents[i], bound + 1e-3f) << "element " << i;
  }
  // The extremes are exact code points (0 and the max code).
  EXPECT_FLOAT_EQ(back[0], -53.5f);
  EXPECT_FLOAT_EQ(back[6], 977.25f);
}

TEST_P(FixedPointSuite, ConstantBatchRoundTripsExactly) {
  const auto precision = GetParam();
  const Tensor latents = Tensor::from({3.25f, 3.25f, 3.25f});
  const auto bytes = core::quantize_latents(latents, precision);
  const Tensor back =
      core::dequantize_latents(bytes, latents.shape(), precision);
  for (std::size_t i = 0; i < latents.numel(); ++i) {
    EXPECT_FLOAT_EQ(back[i], 3.25f);
  }
}

INSTANTIATE_TEST_SUITE_P(Precisions, FixedPointSuite,
                         ::testing::Values(core::LatentPrecision::kFixed16,
                                           core::LatentPrecision::kFixed8),
                         [](const auto& info) {
                           return info.param ==
                                          core::LatentPrecision::kFixed16
                                      ? "fixed16"
                                      : "fixed8";
                         });

TEST(QuantizationTest, SizeMismatchThrows) {
  const std::vector<std::uint8_t> bytes(7);
  EXPECT_THROW((void)core::dequantize_latents(
                   bytes, {4}, core::LatentPrecision::kFixed16),
               std::invalid_argument);
}

TEST(QuantizationTest, Fixed8CutsUplinkBytes4x) {
  common::Pcg32 rng(3);
  const Tensor latents = Tensor::uniform({64, 128}, rng);
  const auto full =
      core::quantize_latents(latents, core::LatentPrecision::kFloat32);
  const auto small =
      core::quantize_latents(latents, core::LatentPrecision::kFixed8);
  // 4x per value; the fixed payload additionally carries the 8-byte
  // per-batch affine header.
  EXPECT_EQ(full.size(),
            (small.size() -
             core::quantization_header_bytes(core::LatentPrecision::kFixed8)) *
                4);
}

}  // namespace
}  // namespace orco
