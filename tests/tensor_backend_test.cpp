// Backend parity: the blocked/packed kernel must agree with the reference
// kernel across rectangular/odd/tiny shapes and every transpose layout, and
// the fused epilogues must match the unfused matmul-then-bias-then-activation
// pipeline through Dense and Conv2d.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/activations.h"
#include "obs/metrics.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/sequential.h"
#include "tensor/backend.h"
#include "tensor/matmul.h"

namespace {

using namespace orco;
using tensor::Tensor;

// Triple-loop double-accumulated ground truth.
Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::size_t p = 0; p < k; ++p) {
        acc += static_cast<double>(a.at(i, p)) * b.at(p, j);
      }
      c.at(i, j) = static_cast<float>(acc);
    }
  }
  return c;
}

struct Shape {
  std::size_t m, k, n;
};

void ExpectBitwiseEqual(const Tensor& blk, const Tensor& ref,
                        const char* what, const Shape& s) {
  ASSERT_EQ(blk.shape(), ref.shape());
  const auto bd = blk.data(), rd = ref.data();
  for (std::size_t i = 0; i < bd.size(); ++i) {
    ASSERT_EQ(bd[i], rd[i]) << what << " element " << i << " at " << s.m
                            << "x" << s.k << "x" << s.n;
  }
}

// Rectangular, odd, tiny and micro-tile-fringe shapes: cover every
// combination of full/partial kMr row panels and kNr column panels, plus a
// shape crossing the kKc k-panel boundary.
const Shape kShapes[] = {
    {1, 1, 1},    {2, 3, 4},     {5, 7, 3},    {4, 32, 32},
    {17, 31, 13}, {33, 64, 65},  {8, 128, 784}, {100, 1, 9},
    {1, 300, 2},  {63, 300, 31}, {96, 96, 96},
};

// Every registered backend, for within-backend contract tests (fused vs
// unfused, prepacked vs on-the-fly, batched vs single-row) — those must
// hold for each backend individually. Cross-backend *bitwise* comparisons
// stay reference-vs-blocked: the simd kernel contracts multiply-add into
// FMA, so it agrees with them to a few ULP, not bitwise (SimdParityTest).
constexpr const char* kAllBackends[] = {"reference", "blocked", "simd"};

TEST(BackendRegistryTest, NamesAndLookup) {
  EXPECT_EQ(tensor::reference_backend().name(), "reference");
  EXPECT_EQ(tensor::blocked_backend().name(), "blocked");
  EXPECT_EQ(tensor::simd_backend().name(), "simd");
  EXPECT_EQ(tensor::find_backend("reference"), &tensor::reference_backend());
  EXPECT_EQ(tensor::find_backend("blocked"), &tensor::blocked_backend());
  EXPECT_EQ(tensor::find_backend("simd"), &tensor::simd_backend());
  EXPECT_EQ(tensor::find_backend("no-such-kernel"), nullptr);
  EXPECT_THROW(tensor::set_backend("no-such-kernel"), std::invalid_argument);
  const auto names = tensor::backend_names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "reference");
  EXPECT_EQ(names[1], "blocked");
  EXPECT_EQ(names[2], "simd");
  // The simd backend always reports which register kernel it compiled to.
  EXPECT_NE(tensor::simd_isa(), nullptr);
  EXPECT_STRNE(tensor::simd_isa(), "");
}

TEST(BackendRegistryTest, EnvResolutionFallsBackLoudlyOnUnknownName) {
  // ORCO_BACKEND resolution must never throw (it runs inside the first
  // gemm of an arbitrary process): unknown names fall back to reference
  // and bump the backend.env_invalid counter instead.
  EXPECT_EQ(&tensor::backend_from_env_value("reference"),
            &tensor::reference_backend());
  EXPECT_EQ(&tensor::backend_from_env_value("blocked"),
            &tensor::blocked_backend());
  EXPECT_EQ(&tensor::backend_from_env_value("simd"),
            &tensor::simd_backend());
  EXPECT_EQ(&tensor::backend_from_env_value(nullptr),
            &tensor::reference_backend());
  EXPECT_EQ(&tensor::backend_from_env_value(""),
            &tensor::reference_backend());
  const auto* counter =
      orco::obs::global_registry().counter("backend.env_invalid");
  const auto before = counter->value();
  EXPECT_EQ(&tensor::backend_from_env_value("no-such-kernel"),
            &tensor::reference_backend());
  EXPECT_EQ(counter->value(), before + 1);
}

TEST(BackendRegistryTest, ScopeOverridesAndRestores) {
  const std::string before = tensor::current_backend().name();
  {
    tensor::BackendScope scope(&tensor::blocked_backend());
    EXPECT_EQ(tensor::current_backend().name(), "blocked");
    {
      tensor::BackendScope inner(&tensor::reference_backend());
      EXPECT_EQ(tensor::current_backend().name(), "reference");
    }
    EXPECT_EQ(tensor::current_backend().name(), "blocked");
    {
      tensor::BackendScope noop(nullptr);  // inherit, not reset
      EXPECT_EQ(tensor::current_backend().name(), "blocked");
    }
  }
  EXPECT_EQ(tensor::current_backend().name(), before);
}

TEST(BackendParityTest, MatmulMatchesReferenceAndGroundTruth) {
  common::Pcg32 rng(31);
  for (const auto& s : kShapes) {
    const Tensor a = Tensor::randn({s.m, s.k}, rng);
    const Tensor b = Tensor::randn({s.k, s.n}, rng);
    const Tensor truth = naive_matmul(a, b);
    Tensor ref, blk;
    {
      tensor::BackendScope scope(&tensor::reference_backend());
      ref = tensor::matmul(a, b);
    }
    {
      tensor::BackendScope scope(&tensor::blocked_backend());
      blk = tensor::matmul(a, b);
    }
    // The contract is stronger than "within 1e-5": identical reduction
    // chains make the kernels agree bitwise (backend.h), and batched
    // serving relies on that.
    ExpectBitwiseEqual(blk, ref, "matmul", s);
    EXPECT_TRUE(blk.allclose(truth, 1e-3f))
        << "blocked vs ground truth at " << s.m << "x" << s.k << "x" << s.n;
  }
}

TEST(BackendParityTest, TransposedLayoutsMatchReference) {
  common::Pcg32 rng(32);
  for (const auto& s : kShapes) {
    const Tensor a = Tensor::randn({s.m, s.k}, rng);
    const Tensor at = a.transposed();              // (k, m)
    const Tensor b = Tensor::randn({s.k, s.n}, rng);
    const Tensor bt = b.transposed();              // (n, k)
    Tensor ref_nt, ref_tn, blk_nt, blk_tn;
    {
      tensor::BackendScope scope(&tensor::reference_backend());
      ref_nt = tensor::matmul_nt(a, bt);
      ref_tn = tensor::matmul_tn(at, b);
    }
    {
      tensor::BackendScope scope(&tensor::blocked_backend());
      blk_nt = tensor::matmul_nt(a, bt);
      blk_tn = tensor::matmul_tn(at, b);
    }
    ExpectBitwiseEqual(blk_nt, ref_nt, "gemm_nt", s);
    ExpectBitwiseEqual(blk_tn, ref_tn, "gemm_tn", s);
  }
}

// Shapes whose fringes are smaller than every simd register tile (the
// AVX-512 kernel covers 8x32 outputs, AVX2 6x16, NEON 8x8) plus shapes
// crossing the kKc k-panel boundary: rows < kMr, cols < kNr, and k tails
// all go through the tmp-buffer fringe path.
const Shape kSimdShapes[] = {
    {1, 1, 1},    {2, 3, 4},     {5, 7, 3},     {4, 32, 32},
    {17, 31, 13}, {33, 64, 65},  {8, 128, 784}, {100, 1, 9},
    {1, 300, 2},  {63, 300, 31}, {96, 96, 96},  {7, 64, 31},
    {9, 257, 33}, {3, 512, 15},  {6, 40, 130},  {8, 96, 32},
};

TEST(SimdParityTest, MatchesGroundTruthAndBlockedWithinUlp) {
  // The simd kernels keep the numerical contract (one reduction chain per
  // output element, ascending k) but contract multiply-add into FMA, so
  // against the blocked kernel they agree to a few ULP of the accumulated
  // magnitude — and both sit within 1e-3 of the double ground truth.
  common::Pcg32 rng(47);
  for (const auto& s : kSimdShapes) {
    const Tensor a = Tensor::randn({s.m, s.k}, rng);
    const Tensor b = Tensor::randn({s.k, s.n}, rng);
    const Tensor truth = naive_matmul(a, b);
    Tensor blk, simd;
    {
      tensor::BackendScope scope(&tensor::blocked_backend());
      blk = tensor::matmul(a, b);
    }
    {
      tensor::BackendScope scope(&tensor::simd_backend());
      simd = tensor::matmul(a, b);
    }
    EXPECT_TRUE(simd.allclose(truth, 1e-3f))
        << "simd vs ground truth at " << s.m << "x" << s.k << "x" << s.n;
    for (std::size_t i = 0; i < simd.numel(); ++i) {
      const float scale = std::max(1.0f, std::fabs(blk[i]));
      ASSERT_NEAR(simd[i], blk[i], 1e-4f * scale)
          << "simd vs blocked element " << i << " at " << s.m << "x" << s.k
          << "x" << s.n;
    }
  }
}

TEST(SimdParityTest, TransposedLayoutsMatchPlainGemmBitwise) {
  // Within the simd backend, layout is a packing concern only: NT and TN
  // feed the same panels to the same register kernel, so they must equal
  // the NN product bitwise — including on ragged fringe shapes.
  common::Pcg32 rng(48);
  tensor::BackendScope scope(&tensor::simd_backend());
  for (const auto& s : kSimdShapes) {
    const Tensor a = Tensor::randn({s.m, s.k}, rng);
    const Tensor b = Tensor::randn({s.k, s.n}, rng);
    const Tensor nn = tensor::matmul(a, b);
    const Tensor nt = tensor::matmul_nt(a, b.transposed());
    const Tensor tn = tensor::matmul_tn(a.transposed(), b);
    ExpectBitwiseEqual(nt, nn, "simd gemm_nt", s);
    ExpectBitwiseEqual(tn, nn, "simd gemm_tn", s);
  }
}

TEST(SimdParityTest, BatchedRowsMatchSingleRowDecodeBitwise) {
  // The serving coalescing contract on the simd backend specifically: a
  // row's reduction must not depend on whether it ran in a full register
  // tile or the fringe path, across batch sizes straddling the tile height.
  common::Pcg32 rng(49);
  nn::Dense dense(128, 784, rng);
  tensor::BackendScope scope(&tensor::simd_backend());
  for (const std::size_t batch : {1u, 3u, 8u, 9u, 17u}) {
    const Tensor x = Tensor::randn({batch, 128}, rng);
    const Tensor batched = dense.infer(x);
    for (std::size_t i = 0; i < batch; ++i) {
      const Tensor single = dense.infer(x.slice_rows(i, i + 1));
      for (std::size_t j = 0; j < single.numel(); ++j) {
        ASSERT_EQ(batched.at(i, j), single[j])
            << "batch " << batch << " row " << i << " col " << j;
      }
    }
  }
}

TEST(BackendParityTest, AccumulateAddsIntoExistingOnBothBackends) {
  common::Pcg32 rng(33);
  const Tensor a = Tensor::randn({9, 37}, rng);
  const Tensor b = Tensor::randn({37, 21}, rng);
  const Tensor base = Tensor::randn({9, 21}, rng);
  const Tensor expected = base + naive_matmul(a, b);
  for (const char* name : kAllBackends) {
    tensor::BackendScope scope(tensor::find_backend(name));
    Tensor c = base;
    tensor::matmul_accumulate(a, b, c);
    EXPECT_TRUE(c.allclose(expected, 1e-3f)) << name;
  }
}

float apply_reference_act(float v, tensor::EpilogueAct act, float alpha) {
  switch (act) {
    case tensor::EpilogueAct::kNone:      return v;
    case tensor::EpilogueAct::kReLU:      return v > 0.0f ? v : 0.0f;
    case tensor::EpilogueAct::kLeakyReLU: return v > 0.0f ? v : alpha * v;
    case tensor::EpilogueAct::kSigmoid:   return 1.0f / (1.0f + std::exp(-v));
    case tensor::EpilogueAct::kTanh:      return std::tanh(v);
  }
  return v;
}

TEST(FusedEpilogueTest, GemmBiasActMatchesUnfusedPipeline) {
  common::Pcg32 rng(34);
  const tensor::EpilogueAct acts[] = {
      tensor::EpilogueAct::kNone, tensor::EpilogueAct::kReLU,
      tensor::EpilogueAct::kLeakyReLU, tensor::EpilogueAct::kSigmoid,
      tensor::EpilogueAct::kTanh};
  const Tensor x = Tensor::randn({7, 45}, rng);
  const Tensor w = Tensor::randn({23, 45}, rng);  // (out, in) dense layout
  const Tensor bias = Tensor::randn({23}, rng);
  for (const char* name : kAllBackends) {
    tensor::BackendScope scope(tensor::find_backend(name));
    // Unfused: matmul, then bias sweep, then activation map.
    Tensor unfused = tensor::matmul_nt(x, w);
    for (std::size_t i = 0; i < unfused.dim(0); ++i) {
      auto r = unfused.row(i);
      for (std::size_t j = 0; j < r.size(); ++j) r[j] += bias[j];
    }
    for (const auto act : acts) {
      const Tensor fused = tensor::gemm_bias_act(x, w, bias, act, 0.02f);
      const Tensor expected = unfused.map(
          [&](float v) { return apply_reference_act(v, act, 0.02f); });
      EXPECT_TRUE(fused.allclose(expected, 1e-6f))
          << name << " act " << static_cast<int>(act);
    }
  }
}

TEST(FusedEpilogueTest, GemmRowBiasActMatchesUnfusedPipeline) {
  common::Pcg32 rng(35);
  const Tensor w = Tensor::randn({13, 27}, rng);   // (outC, inC*K*K)
  const Tensor cols = Tensor::randn({27, 50}, rng);  // (inC*K*K, OH*OW)
  const Tensor bias = Tensor::randn({13}, rng);
  for (const char* name : kAllBackends) {
    tensor::BackendScope scope(tensor::find_backend(name));
    Tensor unfused = tensor::matmul(w, cols);
    for (std::size_t i = 0; i < unfused.dim(0); ++i) {
      for (auto& v : unfused.row(i)) v += bias[i];
    }
    const Tensor fused = tensor::gemm_rowbias_act(
        w, cols, bias, tensor::EpilogueAct::kReLU);
    const Tensor expected =
        unfused.map([](float v) { return v > 0.0f ? v : 0.0f; });
    EXPECT_TRUE(fused.allclose(expected, 1e-6f)) << name;
  }
}

TEST(FusedEpilogueTest, SequentialInferFusesDenseActivationPairs) {
  common::Pcg32 rng(36);
  nn::Sequential model;
  auto& d1 = model.emplace<nn::Dense>(19, 33, rng);
  model.emplace<nn::LeakyReLU>(0.05f);
  auto& d2 = model.emplace<nn::Dense>(33, 11, rng);
  model.emplace<nn::Sigmoid>();
  const Tensor x = Tensor::randn({6, 19}, rng);
  for (const char* name : kAllBackends) {
    tensor::BackendScope scope(tensor::find_backend(name));
    // Layer-by-layer (unfused) pipeline vs the peepholed Sequential::infer.
    Tensor step = d1.infer(x);
    step = nn::LeakyReLU(0.05f).infer(step);
    step = d2.infer(step);
    step = nn::Sigmoid().infer(step);
    const Tensor fused = model.infer(x);
    EXPECT_TRUE(fused.allclose(step, 1e-6f)) << name;
  }
}

TEST(FusedEpilogueTest, SequentialInferFusesConvActivationPairs) {
  common::Pcg32 rng(37);
  nn::Sequential model;
  model.emplace<nn::Conv2d>(2, 5, 3, 1, 1, 8, 8, rng);
  model.emplace<nn::ReLU>();
  const Tensor x = Tensor::randn({3, 2 * 8 * 8}, rng);
  for (const char* name : kAllBackends) {
    tensor::BackendScope scope(tensor::find_backend(name));
    const auto& conv = dynamic_cast<const nn::Conv2d&>(model.layer(0));
    Tensor step = nn::ReLU().infer(conv.infer(x));
    const Tensor fused = model.infer(x);
    EXPECT_TRUE(fused.allclose(step, 1e-6f)) << name;
  }
}

TEST(FusedEpilogueTest, DenseInferAgreesAcrossBackends) {
  common::Pcg32 rng(38);
  nn::Dense dense(128, 784, rng);  // the MNIST decoder shape
  const Tensor x = Tensor::randn({8, 128}, rng);
  Tensor ref, blk;
  {
    tensor::BackendScope scope(&tensor::reference_backend());
    ref = dense.infer(x);
  }
  {
    tensor::BackendScope scope(&tensor::blocked_backend());
    blk = dense.infer(x);
  }
  EXPECT_TRUE(blk.allclose(ref, 1e-5f));
}

TEST(FusedEpilogueTest, BatchedRowsMatchSingleRowDecodeBitwise) {
  // The serving runtime coalesces requests into one GEMM batch and promises
  // results identical to one-at-a-time decoding. That requires the kernel's
  // per-element reduction to be independent of the batch shape.
  common::Pcg32 rng(39);
  nn::Dense dense(128, 784, rng);
  const Tensor batch = Tensor::randn({7, 128}, rng);
  for (const char* name : kAllBackends) {
    tensor::BackendScope scope(tensor::find_backend(name));
    const Tensor batched = dense.infer(batch);
    for (std::size_t i = 0; i < batch.dim(0); ++i) {
      const Tensor single = dense.infer(batch.slice_rows(i, i + 1));
      for (std::size_t j = 0; j < single.numel(); ++j) {
        ASSERT_EQ(batched.at(i, j), single[j])
            << name << " row " << i << " col " << j;
      }
    }
  }
}

TEST(PrepackedTest, GemmPrepackedMatchesGemmFusedBitwiseOnBothBackends) {
  common::Pcg32 rng(41);
  for (const auto& s : kShapes) {
    const Tensor x = Tensor::randn({s.m, s.k}, rng);
    const Tensor w = Tensor::randn({s.n, s.k}, rng);  // (out, in) dense layout
    const Tensor bias = Tensor::randn({s.n}, rng);
    Tensor ref_fused;
    for (const char* name : kAllBackends) {
      const tensor::Backend* backend = tensor::find_backend(name);
      tensor::BackendScope scope(backend);
      const Tensor fused =
          tensor::gemm_bias_act(x, w, bias, tensor::EpilogueAct::kSigmoid);
      const tensor::PackedWeights packed =
          backend->pack_b(w.data().data(), s.k, s.n, /*transpose_b=*/true);
      const Tensor prepacked = tensor::gemm_bias_act_prepacked(
          x, packed, bias, tensor::EpilogueAct::kSigmoid);
      // Packing reorders memory, never the reduction: bitwise equal to the
      // pack-on-the-fly fused path...
      ExpectBitwiseEqual(prepacked, fused, "gemm_prepacked", s);
      // ...and across the bitwise-contract backends (the serving parity
      // contract). simd joins the prepacked-vs-fused assert above but not
      // this one: its FMA reduction matches within ULP, not bitwise.
      if (std::string(name) == "simd") continue;
      if (ref_fused.numel() == 0) {
        ref_fused = fused;
      } else {
        ExpectBitwiseEqual(fused, ref_fused, "cross-backend prepacked", s);
      }
    }
  }
}

TEST(PrepackedTest, RowBiasPrepackedMatchesUnpackedBitwise) {
  common::Pcg32 rng(42);
  const Tensor w = Tensor::randn({13, 27}, rng);     // (outC, inC*K*K)
  const Tensor cols = Tensor::randn({27, 50}, rng);  // (inC*K*K, OH*OW)
  const Tensor bias = Tensor::randn({13}, rng);
  const Shape s{13, 27, 50};
  for (const char* name : kAllBackends) {
    const tensor::Backend* backend = tensor::find_backend(name);
    tensor::BackendScope scope(backend);
    const Tensor fused =
        tensor::gemm_rowbias_act(w, cols, bias, tensor::EpilogueAct::kReLU);
    const tensor::PackedWeights packed =
        backend->pack_a(w.data().data(), 13, 27);
    const Tensor prepacked = tensor::gemm_rowbias_act_prepacked(
        packed, cols, bias, tensor::EpilogueAct::kReLU);
    ExpectBitwiseEqual(prepacked, fused, "rowbias prepacked", s);
  }
}

TEST(PrepackedTest, DensePrepackCachesAcrossBackendsAndTracksMutation) {
  common::Pcg32 rng(43);
  nn::Dense dense(32, 16, rng);
  const Tensor x = Tensor::randn({4, 32}, rng);
  const Shape s{4, 32, 16};

  for (const char* name : kAllBackends) {
    tensor::BackendScope scope(tensor::find_backend(name));
    dense.set_weight_prepack(false);
    const Tensor baseline = dense.infer(x);
    dense.set_weight_prepack(true);
    ExpectBitwiseEqual(dense.infer(x), baseline, "prepacked dense", s);
    // Cache hit on repeat.
    ExpectBitwiseEqual(dense.infer(x), baseline, "cached dense", s);
  }

  // Mutating through the non-const accessor invalidates the cache: the
  // next infer must see the new weights, not stale panels.
  tensor::BackendScope scope(&tensor::blocked_backend());
  dense.set_weight_prepack(true);
  (void)dense.infer(x);  // populate the cache
  dense.weight().fill(0.25f);
  const nn::Dense& const_dense = dense;
  const Tensor expected = tensor::gemm_bias_act(x, const_dense.weight(),
                                                const_dense.bias());
  ExpectBitwiseEqual(dense.infer(x), expected, "post-mutation dense", s);
  // invalidate_weight_cache() alone must also force a repack.
  dense.invalidate_weight_cache();
  ExpectBitwiseEqual(dense.infer(x), expected, "post-invalidate dense", s);
}

TEST(PrepackedTest, Conv2dPrepackMatchesUnpackedBitwise) {
  common::Pcg32 rng(44);
  nn::Conv2d conv(2, 5, 3, 1, 1, 8, 8, rng);
  const Tensor x = Tensor::randn({3, 2 * 8 * 8}, rng);
  const Shape s{5, 18, 64};
  for (const char* name : kAllBackends) {
    tensor::BackendScope scope(tensor::find_backend(name));
    conv.set_weight_prepack(false);
    const Tensor baseline = conv.infer(x);
    conv.set_weight_prepack(true);
    ExpectBitwiseEqual(conv.infer(x), baseline, "prepacked conv", s);
  }
}

TEST(PrepackedTest, SequentialInferWithPrepackMatchesUnpackedBitwise) {
  common::Pcg32 rng(45);
  nn::Sequential model;
  model.emplace<nn::Dense>(24, 48, rng);
  model.emplace<nn::ReLU>();
  model.emplace<nn::Dense>(48, 36, rng);
  model.emplace<nn::Sigmoid>();
  const Tensor x = Tensor::randn({2, 24}, rng);
  const Shape s{2, 24, 36};
  for (const char* name : kAllBackends) {
    tensor::BackendScope scope(tensor::find_backend(name));
    model.set_weight_prepack(false);
    const Tensor baseline = model.infer(x);
    model.set_weight_prepack(true);
    ExpectBitwiseEqual(model.infer(x), baseline, "prepacked sequential", s);
    model.invalidate_weight_cache();
    ExpectBitwiseEqual(model.infer(x), baseline, "invalidated sequential", s);
  }
}

TEST(PrepackedTest, MismatchedBackendPackIsRejected) {
  common::Pcg32 rng(46);
  const Tensor x = Tensor::randn({2, 8}, rng);
  const Tensor w = Tensor::randn({4, 8}, rng);
  const Tensor bias = Tensor::randn({4}, rng);
  const tensor::PackedWeights packed =
      tensor::blocked_backend().pack_b(w.data().data(), 8, 4, true);
  tensor::BackendScope scope(&tensor::reference_backend());
  EXPECT_THROW(
      (void)tensor::gemm_bias_act_prepacked(x, packed, bias),
      std::invalid_argument);
}

TEST(FusedEpilogueTest, ActivationEpilogueMapping) {
  float alpha = 0.0f;
  EXPECT_EQ(nn::activation_epilogue(nn::ReLU{}, alpha),
            tensor::EpilogueAct::kReLU);
  EXPECT_EQ(nn::activation_epilogue(nn::Identity{}, alpha),
            tensor::EpilogueAct::kNone);
  EXPECT_EQ(nn::activation_epilogue(nn::Sigmoid{}, alpha),
            tensor::EpilogueAct::kSigmoid);
  EXPECT_EQ(nn::activation_epilogue(nn::Tanh{}, alpha),
            tensor::EpilogueAct::kTanh);
  EXPECT_EQ(nn::activation_epilogue(nn::LeakyReLU{0.07f}, alpha),
            tensor::EpilogueAct::kLeakyReLU);
  EXPECT_FLOAT_EQ(alpha, 0.07f);
  common::Pcg32 rng(40);
  nn::Dense dense(3, 2, rng);
  EXPECT_EQ(nn::activation_epilogue(dense, alpha), std::nullopt);
}

}  // namespace
