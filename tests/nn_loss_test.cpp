// Loss-function tests: known values, numeric gradients, Huber properties.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "nn/loss.h"

namespace orco::nn {
namespace {

using tensor::Tensor;

// Central-difference check of dL/dpred for a reconstruction loss.
void check_loss_gradient(const Loss& loss, const Tensor& pred,
                         const Tensor& target, float tol = 2e-3f) {
  const Tensor analytic = loss.gradient(pred, target);
  Tensor probe = pred;
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < probe.numel(); ++i) {
    const float saved = probe[i];
    probe[i] = saved + eps;
    const float plus = loss.value(probe, target);
    probe[i] = saved - eps;
    const float minus = loss.value(probe, target);
    probe[i] = saved;
    const float numeric = (plus - minus) / (2 * eps);
    EXPECT_NEAR(analytic[i], numeric, tol) << loss.name() << " at " << i;
  }
}

TEST(MseLossTest, KnownValue) {
  MseLoss mse;
  const Tensor p = Tensor::from({1, 2});
  const Tensor t = Tensor::from({0, 0});
  EXPECT_FLOAT_EQ(mse.value(p, t), 2.5f);
}

TEST(MseLossTest, ZeroAtPerfectReconstruction) {
  MseLoss mse;
  const Tensor p = Tensor::from({3, -1, 2});
  EXPECT_FLOAT_EQ(mse.value(p, p), 0.0f);
  EXPECT_FLOAT_EQ(mse.gradient(p, p).abs_max(), 0.0f);
}

TEST(MseLossTest, GradientMatchesNumeric) {
  common::Pcg32 rng(1);
  const Tensor p = Tensor::randn({4, 6}, rng);
  const Tensor t = Tensor::randn({4, 6}, rng);
  check_loss_gradient(MseLoss{}, p, t);
}

TEST(L1LossTest, KnownValueAndSignGradient) {
  L1Loss l1;
  const Tensor p = Tensor::from({2, -3});
  const Tensor t = Tensor::from({0, 0});
  EXPECT_FLOAT_EQ(l1.value(p, t), 2.5f);
  const Tensor g = l1.gradient(p, t);
  EXPECT_FLOAT_EQ(g[0], 0.5f);
  EXPECT_FLOAT_EQ(g[1], -0.5f);
}

TEST(L1LossTest, GradientMatchesNumericAwayFromKink) {
  common::Pcg32 rng(2);
  // Keep |p - t| > 0.1 so the finite difference never straddles the kink.
  Tensor p = Tensor::randn({3, 5}, rng);
  Tensor t = p.map([](float v) { return v + (v >= 0 ? 0.5f : -0.5f); });
  check_loss_gradient(L1Loss{}, p, t);
}

TEST(HuberLossTest, QuadraticInsideDelta) {
  HuberLoss huber(1.0f);
  MseLoss mse;
  common::Pcg32 rng(3);
  // All residuals within delta: Huber = MSE / 2.
  const Tensor t = Tensor::randn({2, 8}, rng);
  Tensor p = t;
  for (auto& v : p.data()) v += 0.3f;
  EXPECT_NEAR(huber.value(p, t), mse.value(p, t) / 2.0f, 1e-6f);
}

TEST(HuberLossTest, LinearOutsideDelta) {
  HuberLoss huber(1.0f);
  // Single element with residual 5: loss = delta*|r| - delta^2/2 = 4.5.
  const Tensor p = Tensor::from({5.0f});
  const Tensor t = Tensor::from({0.0f});
  EXPECT_FLOAT_EQ(huber.value(p, t), 4.5f);
  // Gradient saturates at delta.
  EXPECT_FLOAT_EQ(huber.gradient(p, t)[0], 1.0f);
}

TEST(HuberLossTest, ContinuousAtDelta) {
  HuberLoss huber(1.0f);
  const Tensor t = Tensor::from({0.0f});
  const float below = huber.value(Tensor::from({1.0f - 1e-4f}), t);
  const float above = huber.value(Tensor::from({1.0f + 1e-4f}), t);
  EXPECT_NEAR(below, above, 1e-3f);
}

TEST(HuberLossTest, RobustnessBoundedBelowMse) {
  // For large residuals Huber grows linearly while MSE grows quadratically —
  // the robustness property the paper cites for eq. (4).
  HuberLoss huber(1.0f);
  MseLoss mse;
  const Tensor t = Tensor::from({0.0f});
  const Tensor p = Tensor::from({100.0f});
  EXPECT_LT(huber.value(p, t), mse.value(p, t) / 100.0f);
}

TEST(HuberLossTest, DeltaSweepGradientMatchesNumeric) {
  common::Pcg32 rng(4);
  for (const float delta : {0.25f, 1.0f, 2.0f}) {
    const Tensor p = Tensor::randn({3, 4}, rng, 0.0f, 2.0f);
    const Tensor t = Tensor::randn({3, 4}, rng, 0.0f, 2.0f);
    check_loss_gradient(HuberLoss{delta}, p, t);
  }
}

TEST(HuberLossTest, RejectsNonPositiveDelta) {
  EXPECT_THROW(HuberLoss(0.0f), std::invalid_argument);
  EXPECT_THROW(HuberLoss(-1.0f), std::invalid_argument);
}

TEST(LossTest, ShapeMismatchThrows) {
  MseLoss mse;
  EXPECT_THROW((void)mse.value(Tensor({2}), Tensor({3})),
               std::invalid_argument);
  HuberLoss huber(1.0f);
  EXPECT_THROW((void)huber.gradient(Tensor({2, 2}), Tensor({4})),
               std::invalid_argument);
}

TEST(SoftmaxCrossEntropyTest, UniformLogitsGiveLogC) {
  SoftmaxCrossEntropy ce;
  const Tensor logits({2, 10}, 0.0f);
  EXPECT_NEAR(ce.value(logits, {3, 7}), std::log(10.0f), 1e-5f);
}

TEST(SoftmaxCrossEntropyTest, ConfidentCorrectPredictionNearZero) {
  SoftmaxCrossEntropy ce;
  Tensor logits({1, 3}, 0.0f);
  logits.at(0, 1) = 20.0f;
  EXPECT_LT(ce.value(logits, {1}), 1e-4f);
}

TEST(SoftmaxCrossEntropyTest, GradientMatchesNumeric) {
  SoftmaxCrossEntropy ce;
  common::Pcg32 rng(5);
  Tensor logits = Tensor::randn({3, 5}, rng);
  const std::vector<std::size_t> labels = {0, 4, 2};
  const Tensor analytic = ce.gradient(logits, labels);
  const float eps = 1e-2f;
  for (std::size_t i = 0; i < logits.numel(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + eps;
    const float plus = ce.value(logits, labels);
    logits[i] = saved - eps;
    const float minus = ce.value(logits, labels);
    logits[i] = saved;
    EXPECT_NEAR(analytic[i], (plus - minus) / (2 * eps), 2e-3f);
  }
}

TEST(SoftmaxCrossEntropyTest, GradientRowsSumToZero) {
  SoftmaxCrossEntropy ce;
  common::Pcg32 rng(6);
  const Tensor logits = Tensor::randn({4, 6}, rng);
  const Tensor g = ce.gradient(logits, {0, 1, 2, 3});
  for (std::size_t i = 0; i < 4; ++i) {
    double sum = 0.0;
    for (const auto v : g.row(i)) sum += v;
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(SoftmaxCrossEntropyTest, LabelValidation) {
  SoftmaxCrossEntropy ce;
  const Tensor logits({2, 3}, 0.0f);
  EXPECT_THROW((void)ce.value(logits, {0}), std::invalid_argument);
  EXPECT_THROW((void)ce.value(logits, {0, 3}), std::invalid_argument);
}

}  // namespace
}  // namespace orco::nn
