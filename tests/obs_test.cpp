// Tests for the observability subsystem (src/obs) and its serve-path
// integration: sharded counter correctness under contention, bucket/quantile
// parity between obs::Histogram and serve::LatencyHistogram, histogram
// merge and boundary behaviour, Prometheus/JSON export well-formedness
// (checked with a minimal JSON parser), trace sampling, and the span tree a
// served request produces.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <future>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/config.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "serve/serve.h"
#include "tensor/matmul.h"

namespace orco {
namespace {

// ---- minimal JSON parser (validation only) ----------------------------------
// Enough JSON to round-trip what the exporters emit: objects, arrays,
// strings (no escapes beyond \"), numbers, true/false/null. parse() returns
// false instead of throwing so tests can assert on malformed output.

struct MiniJson {
  const char* p;
  const char* end;

  explicit MiniJson(const std::string& s) : p(s.data()), end(s.data() + s.size()) {}

  void skip_ws() {
    while (p < end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  }
  bool consume(char c) {
    skip_ws();
    if (p < end && *p == c) {
      ++p;
      return true;
    }
    return false;
  }
  bool parse_string() {
    skip_ws();
    if (p >= end || *p != '"') return false;
    ++p;
    while (p < end && *p != '"') {
      if (*p == '\\') ++p;  // skip escaped char
      ++p;
    }
    if (p >= end) return false;
    ++p;
    return true;
  }
  bool parse_number() {
    skip_ws();
    const char* start = p;
    if (p < end && (*p == '-' || *p == '+')) ++p;
    while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                       *p == '.' || *p == 'e' || *p == 'E' || *p == '-' ||
                       *p == '+')) {
      ++p;
    }
    return p > start;
  }
  bool parse_literal(const char* lit) {
    const std::size_t n = std::string(lit).size();
    if (static_cast<std::size_t>(end - p) < n) return false;
    if (std::string(p, p + n) != lit) return false;
    p += n;
    return true;
  }
  bool parse_value() {
    skip_ws();
    if (p >= end) return false;
    switch (*p) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': return parse_literal("true");
      case 'f': return parse_literal("false");
      case 'n': return parse_literal("null");
      default: return parse_number();
    }
  }
  bool parse_object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    for (;;) {
      if (!parse_string()) return false;
      if (!consume(':')) return false;
      if (!parse_value()) return false;
      if (consume(',')) continue;
      return consume('}');
    }
  }
  bool parse_array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    for (;;) {
      if (!parse_value()) return false;
      if (consume(',')) continue;
      return consume(']');
    }
  }
  /// Whole-document parse: one value and nothing but whitespace after.
  bool parse() {
    if (!parse_value()) return false;
    skip_ws();
    return p == end;
  }
};

/// Extracted span fields for the trace-tree assertions. The test parser
/// leans on the exporter's stable key order ("name" first, then ts/dur/
/// args) only for extraction; well-formedness is checked by MiniJson.
struct SpanRec {
  std::string name;
  long long ts = 0;
  long long dur = 0;
  unsigned long long id = 0;
  unsigned long long tenant = 0;
};

long long field_ll(const std::string& obj, const std::string& key) {
  const auto at = obj.find("\"" + key + "\": ");
  if (at == std::string::npos) return 0;
  return std::stoll(obj.substr(at + key.size() + 4));
}

std::string field_str(const std::string& obj, const std::string& key) {
  const auto at = obj.find("\"" + key + "\": \"");
  if (at == std::string::npos) return {};
  const auto start = at + key.size() + 5;
  return obj.substr(start, obj.find('"', start) - start);
}

std::vector<SpanRec> parse_spans(const std::string& trace_json) {
  std::vector<SpanRec> out;
  std::size_t at = trace_json.find("{\"name\": ");
  while (at != std::string::npos) {
    const std::size_t close = trace_json.find("}}", at);
    const std::string obj = trace_json.substr(at, close - at + 2);
    SpanRec rec;
    rec.name = field_str(obj, "name");
    rec.ts = field_ll(obj, "ts");
    rec.dur = field_ll(obj, "dur");
    rec.id = static_cast<unsigned long long>(field_ll(obj, "id"));
    rec.tenant = static_cast<unsigned long long>(field_ll(obj, "tenant"));
    out.push_back(rec);
    at = trace_json.find("{\"name\": ", close);
  }
  return out;
}

/// Installs an ObsConfig for the test body and restores defaults after.
class ScopedObsConfig {
 public:
  explicit ScopedObsConfig(const obs::ObsConfig& cfg) { obs::configure(cfg); }
  ~ScopedObsConfig() { obs::configure(obs::ObsConfig{}); }
};

// ---- metrics ---------------------------------------------------------------

TEST(CounterTest, ShardedIncrementsSumExactlyUnderContention) {
  obs::Counter counter;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(HistogramTest, BucketForIsPinnedAtPowersOfTwo) {
  using serve::LatencyHistogram;
  // Everything at or below 1us lands in bucket 0.
  EXPECT_EQ(LatencyHistogram::bucket_for(0.0), 0u);
  EXPECT_EQ(LatencyHistogram::bucket_for(1.0), 0u);
  // Exact powers of two open their octave: 4 buckets per octave.
  EXPECT_EQ(LatencyHistogram::bucket_for(2.0), 4u);
  EXPECT_EQ(LatencyHistogram::bucket_for(4.0), 8u);
  EXPECT_EQ(LatencyHistogram::bucket_for(1024.0), 40u);
  // Just below a power of two stays in the previous octave's top bucket.
  EXPECT_EQ(LatencyHistogram::bucket_for(std::nextafter(2.0, 0.0)), 3u);
  // The top bucket absorbs everything past the table.
  EXPECT_EQ(LatencyHistogram::bucket_for(1e30), obs::kHistBucketCount - 1);
}

TEST(HistogramTest, QuantileEdges) {
  serve::LatencyHistogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram

  h.record(100.0);
  // A single sample: q=1 is exactly the recorded max; q=0 is the winning
  // bucket's lower edge (never above the sample).
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
  EXPECT_LE(h.quantile(0.0), 100.0);
  EXPECT_GT(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.max_us(), 100.0);
}

TEST(HistogramTest, ObsAndServeHistogramsAgreeBitwise) {
  serve::LatencyHistogram reference;
  obs::Histogram sharded(/*cell_count=*/4);
  common::Pcg32 rng(7);
  for (int i = 0; i < 5000; ++i) {
    // Spread over ~6 orders of magnitude like real latencies.
    const double us = std::exp2(rng.uniform() * 20.0);
    reference.record(us);
    sharded.record(us);
  }
  const obs::HistogramSnapshot snap = sharded.snapshot();
  EXPECT_EQ(snap.count, reference.count());
  EXPECT_EQ(snap.max_us, reference.max_us());
  // Same bucket math, same interpolation, same samples on one thread (one
  // cell sees them all, in order): quantiles and mean are bitwise equal.
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0}) {
    EXPECT_EQ(snap.quantile(q), reference.quantile(q)) << "q=" << q;
  }
  EXPECT_EQ(snap.mean_us(), reference.mean_us());
}

TEST(HistogramTest, MergeMatchesRecordingEverythingIntoOne) {
  serve::LatencyHistogram a, b, all;
  common::Pcg32 rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double us = std::exp2(rng.uniform() * 18.0);
    if (i % 2 == 0) {
      a.record(us);
    } else {
      b.record(us);
    }
    all.record(us);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_DOUBLE_EQ(a.max_us(), all.max_us());
  EXPECT_DOUBLE_EQ(a.quantile(0.5), all.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.quantile(0.99), all.quantile(0.99));
}

TEST(RegistryTest, PrometheusExportIsWellFormed) {
  obs::MetricsRegistry registry;
  registry.counter("serve.submitted")->inc(42);
  registry.gauge("serve.max_batch_occupancy")->set(7.0);
  registry.histogram("serve.latency_us")->record(123.0);
  registry.counter("serve.tenant.submitted", {{"tenant", "3"}})->inc(5);
  registry.counter("serve.tenant.submitted", {{"tenant", "9"}})->inc(6);

  std::ostringstream os;
  registry.write_prometheus(os);
  const std::string text = os.str();

  EXPECT_NE(text.find("# TYPE orco_serve_submitted counter"),
            std::string::npos);
  EXPECT_NE(text.find("orco_serve_submitted 42"), std::string::npos);
  EXPECT_NE(text.find("orco_serve_max_batch_occupancy 7"), std::string::npos);
  EXPECT_NE(text.find("orco_serve_latency_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("orco_serve_latency_us_count 1"), std::string::npos);
  EXPECT_NE(text.find("orco_serve_tenant_submitted{tenant=\"3\"} 5"),
            std::string::npos);
  // One # TYPE header per family even with two labeled series.
  const std::string tenant_type = "# TYPE orco_serve_tenant_submitted";
  const auto first = text.find(tenant_type);
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find(tenant_type, first + 1), std::string::npos);

  // Every line is a comment or "name[{labels}] value" with a sane charset.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty()) << line;
    char* parse_end = nullptr;
    std::strtod(value.c_str(), &parse_end);
    EXPECT_EQ(*parse_end, '\0') << line;
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(line[0]))) << line;
  }
}

TEST(RegistryTest, JsonExportParses) {
  obs::MetricsRegistry registry;
  registry.counter("serve.submitted")->inc(3);
  registry.gauge("serve.max_batch_occupancy")->set(2.5);
  obs::Histogram* h =
      registry.histogram("serve.tenant.latency_us", {{"tenant", "1"}}, 1);
  h->record(50.0);
  h->record(900.0);

  std::ostringstream os;
  registry.write_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(MiniJson(json).parse()) << json;
  EXPECT_NE(json.find("\"serve.submitted\": 3"), std::string::npos);
  EXPECT_NE(json.find("serve.tenant.latency_us{tenant=1}"),
            std::string::npos);
}

TEST(RegistryTest, HandleKindMismatchThrows) {
  obs::MetricsRegistry registry;
  registry.counter("serve.submitted");
  EXPECT_THROW(registry.gauge("serve.submitted"), std::invalid_argument);
}

// ---- kernel profiling -------------------------------------------------------

TEST(KernelProfileTest, RecordsGemmCallsWhenEnabled) {
  obs::kernel_reset();
  {
    ScopedObsConfig cfg([] {
      obs::ObsConfig c;
      c.kernel_profiling = true;
      return c;
    }());
    const tensor::Tensor a = tensor::Tensor::ones({8, 16});
    const tensor::Tensor b = tensor::Tensor::ones({16, 4});
    (void)tensor::matmul(a, b);
  }
  const auto stats = obs::kernel_snapshot();
  const auto& gemm =
      stats[static_cast<std::size_t>(obs::KernelOp::kGemm)];
  EXPECT_EQ(gemm.calls, 1u);
  EXPECT_EQ(gemm.flops, 2ull * 8 * 16 * 4);
  EXPECT_GT(gemm.ns, 0u);

  // Disabled again: no further accumulation.
  const tensor::Tensor a = tensor::Tensor::ones({8, 16});
  const tensor::Tensor b = tensor::Tensor::ones({16, 4});
  (void)tensor::matmul(a, b);
  EXPECT_EQ(obs::kernel_snapshot()[static_cast<std::size_t>(
                                       obs::KernelOp::kGemm)]
                .calls,
            1u);
  obs::kernel_reset();
}

// ---- tracing ---------------------------------------------------------------

TEST(TraceTest, SampleRateZeroRecordsNothing) {
  obs::TraceCollector& tc = obs::TraceCollector::instance();
  tc.clear();
  ScopedObsConfig cfg(obs::ObsConfig{});  // trace_sample_rate = 0
  EXPECT_FALSE(obs::trace_enabled());
  for (int i = 0; i < 100; ++i) {
    obs::ScopedSpan span("noop", "test", tc.should_sample());
  }
  EXPECT_EQ(tc.event_count(), 0u);
}

TEST(TraceTest, SampleEveryNIsOneInN) {
  obs::TraceCollector& tc = obs::TraceCollector::instance();
  tc.clear();
  obs::ObsConfig cfg;
  cfg.trace_sample_rate = 1.0 / 8.0;
  ScopedObsConfig scoped(cfg);
  int sampled = 0;
  for (int i = 0; i < 800; ++i) {
    if (tc.should_sample()) ++sampled;
  }
  // Counter-based sampling is exact once the countdown aligns: 800
  // decisions at 1-in-8 yield 100 +/- 1 (thread_local phase).
  EXPECT_NEAR(sampled, 100, 1);
}

TEST(TraceTest, ChromeJsonRoundTripsAndServeSpansNest) {
  obs::TraceCollector& tc = obs::TraceCollector::instance();
  tc.clear();
  obs::ObsConfig cfg;
  cfg.trace_sample_rate = 1.0;  // trace every request
  ScopedObsConfig scoped(cfg);

  core::SystemConfig sys_cfg;
  sys_cfg.orco.input_dim = 64;
  sys_cfg.orco.latent_dim = 16;
  sys_cfg.orco.decoder_layers = 2;
  sys_cfg.orco.seed = 42;
  sys_cfg.field.device_count = 8;
  sys_cfg.field.radio_range_m = 60.0;

  const serve::ClusterId cluster = 5;
  std::vector<unsigned long long> ids;
  {
    serve::ServeConfig serve_cfg;
    serve_cfg.shard_count = 1;
    serve::ServerRuntime runtime(serve_cfg);
    runtime.register_cluster(cluster,
                             std::make_shared<core::OrcoDcsSystem>(sys_cfg));
    runtime.start();
    common::Pcg32 rng(3);
    std::vector<std::future<serve::DecodeResponse>> futures;
    for (int i = 0; i < 8; ++i) {
      futures.push_back(
          runtime.submit(cluster, tensor::Tensor::randn({16}, rng)));
    }
    for (auto& f : futures) {
      const serve::DecodeResponse resp = f.get();
      ASSERT_EQ(resp.status, serve::ResponseStatus::kOk);
      ids.push_back(resp.id);
    }
    runtime.shutdown();

    // Stage metrics rode along: every pipeline stage saw the requests.
    const auto stages = runtime.telemetry().stage_snapshot(cluster);
    for (const auto& stage : stages) EXPECT_GT(stage.requests, 0u);
    EXPECT_EQ(runtime.telemetry().stage_report().rows(), 1u);
  }

  std::ostringstream os;
  tc.write_chrome_json(os);
  const std::string trace = os.str();
  EXPECT_TRUE(MiniJson(trace).parse()) << trace.substr(0, 500);

  const std::vector<SpanRec> spans = parse_spans(trace);
  std::map<std::string, int> by_name;
  for (const auto& s : spans) by_name[s.name]++;
  EXPECT_GE(by_name["queue_wait"], 8);
  EXPECT_GE(by_name["assembly"], 1);
  EXPECT_GE(by_name["decode"], 1);
  EXPECT_GE(by_name["respond"], 1);
  EXPECT_GE(by_name["request"], 8);

  // Per traced request: the stage spans nest inside the request span and
  // their durations sum to no more than the end-to-end latency.
  for (const unsigned long long id : ids) {
    const SpanRec* request = nullptr;
    const SpanRec* queue_wait = nullptr;
    for (const auto& s : spans) {
      if (s.id != id) continue;
      if (s.name == "request") request = &s;
      if (s.name == "queue_wait") queue_wait = &s;
    }
    ASSERT_NE(request, nullptr) << "request span missing for id " << id;
    ASSERT_NE(queue_wait, nullptr) << "queue_wait span missing for id " << id;
    EXPECT_EQ(request->tenant, cluster);
    EXPECT_GE(queue_wait->ts, request->ts);
    EXPECT_LE(queue_wait->ts + queue_wait->dur,
              request->ts + request->dur + 1);

    long long stage_sum = queue_wait->dur;
    for (const auto& s : spans) {
      if (s.name != "assembly" && s.name != "decode" && s.name != "respond") {
        continue;
      }
      // Batch-scoped spans: count the ones inside this request's window.
      if (s.ts >= request->ts - 1 &&
          s.ts + s.dur <= request->ts + request->dur + 1) {
        stage_sum += s.dur;
      }
    }
    EXPECT_LE(stage_sum, request->dur + 4)
        << "stages exceed end-to-end latency for id " << id;
  }
  tc.clear();
}

TEST(TraceTest, ExportAllWritesConfiguredFiles) {
  obs::TraceCollector& tc = obs::TraceCollector::instance();
  tc.clear();
  obs::MetricsRegistry registry;
  registry.counter("serve.submitted")->inc();
  obs::ExportConfig cfg;
  cfg.metrics_json_path = ::testing::TempDir() + "obs_metrics.json";
  cfg.prometheus_path = ::testing::TempDir() + "obs_metrics.prom";
  cfg.trace_path = ::testing::TempDir() + "obs_trace.json";
  ASSERT_TRUE(cfg.any());
  ASSERT_TRUE(obs::export_all(registry, cfg));

  std::ifstream trace_in(cfg.trace_path);
  std::stringstream trace;
  trace << trace_in.rdbuf();
  EXPECT_TRUE(MiniJson(trace.str()).parse());

  std::ifstream json_in(cfg.metrics_json_path);
  std::stringstream json;
  json << json_in.rdbuf();
  EXPECT_TRUE(MiniJson(json.str()).parse());
}

}  // namespace
}  // namespace orco
