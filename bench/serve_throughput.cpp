// Serving-runtime throughput bench: batched multi-shard serving vs. the
// naive one-request-at-a-time decode loop, a mixed-priority QoS scenario
// under overload, and open-loop (Poisson-arrival) tail-latency runs — with
// and without online fine-tuning in the background.
//
// Eight heterogeneous tenants (MNIST-like latent-128 decoders) receive a
// fixed closed-loop request volume from concurrent clients. The baseline
// decodes each latent individually on one thread — exactly what the
// single-cluster facade offered before src/serve existed. The runtime is
// then measured at 1/2/4/8 shards. A mixed-priority run pins 2
// high-priority and 6 low-priority tenants on one deliberately overloaded
// shard and reports per-class p99 and completion counts: high-priority
// tail latency must be lower, and aging must keep the low-priority tenants
// from starving.
//
// The closed loop understates tail latency (clients stop arriving while
// they wait), so open-loop runs schedule Poisson arrivals at a fixed
// offered rate regardless of server progress and report the resulting
// p50/p99. The online-fine-tuning scenario repeats the open-loop run while
// a TrainerRuntime fine-tunes tenants in the background and hot-swaps
// their models mid-traffic: the serve p99 must stay within ~10% of the
// no-training open-loop baseline (the serve-while-retraining claim, under
// load). Emits BENCH_serve.json next to the binary's working directory so
// later PRs have a perf trajectory to beat.
//
//   requests scale with ORCO_BENCH_SCALE (bench_common.h conventions).
//   ORCO_BACKEND picks the kernel backend (default here: simd).
#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <future>
#include <memory>
#include <random>
#include <thread>

#include "bench_common.h"
#include "obs/config.h"
#include "obs/trace.h"
#include "serve/serve.h"
#include "tensor/backend.h"
#include "train/train.h"

namespace {

using namespace orco;

constexpr std::size_t kTenants = 8;
constexpr std::size_t kClientThreads = 8;

/// The kernel backend under test: ORCO_BACKEND if set, else the simd
/// kernel (the serving fast path).
std::string bench_backend() {
  const char* env = std::getenv("ORCO_BACKEND");
  return (env != nullptr && *env != '\0') ? env : "simd";
}

struct RunResult {
  double rps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_batch = 0.0;
};

std::vector<std::shared_ptr<core::OrcoDcsSystem>> make_tenants() {
  std::vector<std::shared_ptr<core::OrcoDcsSystem>> tenants;
  for (std::size_t t = 0; t < kTenants; ++t) {
    core::SystemConfig cfg = bench::orco_mnist_config();
    cfg.orco.seed = 1000 + t;  // distinct decoder weights per tenant
    tenants.push_back(std::make_shared<core::OrcoDcsSystem>(cfg));
  }
  return tenants;
}

std::vector<tensor::Tensor> make_latents(std::size_t count,
                                         std::size_t latent_dim) {
  common::Pcg32 rng(77);
  std::vector<tensor::Tensor> latents;
  latents.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    latents.push_back(tensor::Tensor::randn({latent_dim}, rng));
  }
  return latents;
}

/// The pre-serve world: decode each request by itself, one after another.
double naive_rps(const std::vector<std::shared_ptr<core::OrcoDcsSystem>>& tenants,
                 const std::vector<tensor::Tensor>& latents,
                 std::size_t requests) {
  const std::size_t latent_dim = latents.front().numel();
  tensor::BackendScope scope(tensor::find_backend(bench_backend()));
  common::Stopwatch sw;
  for (std::size_t i = 0; i < requests; ++i) {
    const auto& tenant = *tenants[i % tenants.size()];
    const tensor::Tensor rec = tenant.edge().decode_inference(
        latents[i % latents.size()].reshaped({1, latent_dim}));
    (void)rec;
  }
  return static_cast<double>(requests) / sw.seconds();
}

RunResult runtime_rps(
    const std::vector<std::shared_ptr<core::OrcoDcsSystem>>& tenants,
    const std::vector<tensor::Tensor>& latents, std::size_t requests,
    std::size_t shards) {
  serve::ServeConfig cfg;
  cfg.shard_count = shards;
  cfg.queue.capacity = 4096;
  cfg.queue.max_batch = 32;
  cfg.queue.max_wait_us = 200;
  cfg.backend = bench_backend();
  serve::ServerRuntime runtime(cfg);
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    runtime.register_cluster(t, tenants[t]);
  }
  runtime.start();

  common::Stopwatch sw;
  std::vector<std::thread> clients;
  const std::size_t per_client = requests / kClientThreads;
  for (std::size_t c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      // Closed loop with a small pipeline window per client: keeps the
      // shards busy without modelling an open-loop arrival process.
      constexpr std::size_t kWindow = 8;
      std::vector<std::future<serve::DecodeResponse>> window;
      for (std::size_t i = 0; i < per_client; ++i) {
        const std::size_t g = c * per_client + i;
        window.push_back(runtime.submit(g % kTenants,
                                        latents[g % latents.size()]));
        if (window.size() >= kWindow) {
          for (auto& f : window) (void)f.get();
          window.clear();
        }
      }
      for (auto& f : window) (void)f.get();
    });
  }
  for (auto& c : clients) c.join();
  const double elapsed = sw.seconds();
  runtime.shutdown();

  const auto snapshot = runtime.telemetry().snapshot();
  RunResult r;
  r.rps = snapshot.throughput_rps(elapsed);
  r.p50_us = snapshot.p50_us;
  r.p99_us = snapshot.p99_us;
  r.mean_batch = snapshot.mean_batch_occupancy;
  return r;
}

constexpr std::size_t kHighPriorityTenants = 2;

struct MixedResult {
  double rps = 0.0;
  double high_p99_us = 0.0, low_p99_us = 0.0;
  std::uint64_t high_completed = 0, low_completed = 0;
  std::uint64_t high_shed = 0, low_shed = 0;
};

/// One overloaded shard, 2 high-priority + 6 low-priority tenants: the
/// weighted-aging queue must keep high-priority p99 below low-priority p99
/// while still completing low-priority work.
MixedResult mixed_priority_rps(
    const std::vector<std::shared_ptr<core::OrcoDcsSystem>>& tenants,
    const std::vector<tensor::Tensor>& latents, std::size_t requests) {
  serve::ServeConfig cfg;
  cfg.shard_count = 1;        // one worker: scheduling fully decides order
  cfg.queue.capacity = 256;   // small enough that the closed loop overloads it
  cfg.queue.max_batch = 32;
  cfg.queue.max_wait_us = 200;
  cfg.backend = bench_backend();
  serve::ServerRuntime runtime(cfg);
  serve::TenantPolicy high_policy;
  high_policy.priority = serve::Priority::kHigh;
  serve::TenantPolicy low_policy;
  low_policy.priority = serve::Priority::kLow;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    runtime.register_cluster(
        t, tenants[t],
        t < kHighPriorityTenants ? high_policy : low_policy);
  }
  runtime.start();

  common::Stopwatch sw;
  std::vector<std::thread> clients;
  const std::size_t per_client = requests / kClientThreads;
  for (std::size_t c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      // A wide pipeline window keeps the single shard permanently
      // saturated — the overload regime QoS exists for.
      constexpr std::size_t kWindow = 64;
      std::vector<std::future<serve::DecodeResponse>> window;
      for (std::size_t i = 0; i < per_client; ++i) {
        const std::size_t g = c * per_client + i;
        window.push_back(runtime.submit(g % kTenants,
                                        latents[g % latents.size()]));
        if (window.size() >= kWindow) {
          for (auto& f : window) (void)f.get();
          window.clear();
        }
      }
      for (auto& f : window) (void)f.get();
    });
  }
  for (auto& c : clients) c.join();
  const double elapsed = sw.seconds();
  runtime.shutdown();

  MixedResult r;
  r.rps = runtime.telemetry().snapshot().throughput_rps(elapsed);
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const auto s = runtime.telemetry().tenant_snapshot(t);
    if (t < kHighPriorityTenants) {
      r.high_p99_us = std::max(r.high_p99_us, s.p99_us);
      r.high_completed += s.completed;
      r.high_shed += s.shed;
    } else {
      r.low_p99_us = std::max(r.low_p99_us, s.p99_us);
      r.low_completed += s.completed;
      r.low_shed += s.shed;
    }
  }
  return r;
}

struct OpenLoopResult {
  double offered_rps = 0.0;
  double rps = 0.0;
  double p50_us = 0.0, p99_us = 0.0;
  std::uint64_t completed = 0, shed = 0;
  std::uint64_t train_rounds = 0, snapshots_published = 0;
};

/// Open-loop load: kClientThreads independent Poisson processes at a fixed
/// combined `rate_rps`, submitting for `duration_s` regardless of server
/// progress (the tail-honest regime the closed loop cannot measure). When
/// `with_training`, the tenants serve through a TrainerRuntime's registry
/// while background fine-tune jobs run and hot-swap models mid-traffic.
OpenLoopResult open_loop_rps(
    const std::vector<std::shared_ptr<core::OrcoDcsSystem>>& tenants,
    const std::vector<tensor::Tensor>& latents, double rate_rps,
    double duration_s, bool with_training) {
  serve::ServeConfig cfg;
  cfg.shard_count = 8;
  cfg.queue.capacity = 4096;
  cfg.queue.max_batch = 32;
  cfg.queue.max_wait_us = 200;
  cfg.backend = bench_backend();

  std::unique_ptr<train::TrainerRuntime> trainer;
  if (with_training) {
    train::TrainerConfig tcfg;
    tcfg.worker_threads = 1;
    // Quarter duty on top of the SCHED_IDLE class: on a box with spare
    // cores the class alone isolates serving; on a saturated single core
    // the duty cycle also spaces the rounds out, bounding how often a
    // decode batch runs against a cache freshly polluted by training.
    tcfg.default_budget.duty_cycle = 0.25;
    tcfg.serve_backend = bench_backend();  // pre-warm swaps for the shards
    trainer = std::make_unique<train::TrainerRuntime>(tcfg);
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      trainer->register_tenant(t, tenants[t]);
    }
    cfg.model_registry = trainer->registry();
  }

  serve::ServerRuntime runtime(cfg);
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    runtime.register_cluster(t, tenants[t]);
  }
  runtime.start();
  if (trainer != nullptr) {
    trainer->start();
    // One short (single-round) job per tenant: short jobs finish inside
    // the measurement window, so the run exercises the full loop —
    // background rounds AND mid-traffic hot swaps — rather than one
    // endless job that never publishes. (SCHED_IDLE trainers only get
    // leftover cycles, so rounds are scarce under load by design.)
    const data::Dataset ft_data = bench::mnist_train(bench::scaled(64));
    for (std::size_t t = 0; t < kTenants; ++t) {
      (void)trainer->submit_job(t, ft_data, /*epochs=*/1);
    }
  }

  std::atomic<std::uint64_t> shed{0};
  common::Stopwatch sw;
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      common::Pcg32 rng(9000 + c);
      std::exponential_distribution<double> interarrival(
          rate_rps / static_cast<double>(kClientThreads));
      auto next = std::chrono::steady_clock::now();
      const auto end =
          next + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                     std::chrono::duration<double>(duration_s));
      std::vector<std::future<serve::DecodeResponse>> futures;
      std::uint64_t g = c;
      for (;;) {
        next += std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(interarrival(rng)));
        if (next >= end) break;
        // Arrivals never wait for responses: sleep to the scheduled
        // instant (a lagging server makes this a no-op and the backlog
        // shows up as queueing latency, exactly as it should).
        std::this_thread::sleep_until(next);
        futures.push_back(
            runtime.submit(g % kTenants, latents[g % latents.size()]));
        g += kClientThreads;
      }
      for (auto& f : futures) {
        if (f.get().status == serve::ResponseStatus::kShed) shed.fetch_add(1);
      }
    });
  }
  for (auto& c : clients) c.join();
  const double elapsed = sw.seconds();
  runtime.shutdown();

  OpenLoopResult r;
  r.offered_rps = rate_rps;
  const auto snapshot = runtime.telemetry().snapshot();
  r.rps = snapshot.throughput_rps(elapsed);
  r.p50_us = snapshot.p50_us;
  r.p99_us = snapshot.p99_us;
  r.completed = snapshot.completed;
  r.shed = shed.load();
  if (trainer != nullptr) {
    // Stats before shutdown: shutdown drains the queue but the fine-tuning
    // that overlapped the window is what we want on record. Registration
    // snapshots are subtracted so the count reflects mid-traffic swaps.
    const auto tstats = trainer->stats();
    r.train_rounds = tstats.rounds_run;
    r.snapshots_published = tstats.snapshots_published - kTenants;
    trainer->shutdown();
  }
  return r;
}

constexpr double kObsTraceSampleRate = 1.0 / 64.0;

/// Closed-loop run that measures throughput without consulting Telemetry
/// (whose counters are off when observability is disabled): requests /
/// wall-clock, same 8-shard setup as the shard sweep. Used for the
/// observability-overhead comparison, where both sides must be measured
/// identically.
double closed_loop_rps_counted(
    const std::vector<std::shared_ptr<core::OrcoDcsSystem>>& tenants,
    const std::vector<tensor::Tensor>& latents, std::size_t requests,
    const obs::ExportConfig* export_cfg) {
  serve::ServeConfig cfg;
  cfg.shard_count = 8;
  cfg.queue.capacity = 4096;
  cfg.queue.max_batch = 32;
  cfg.queue.max_wait_us = 200;
  cfg.backend = bench_backend();
  if (export_cfg != nullptr) cfg.obs_export = *export_cfg;
  serve::ServerRuntime runtime(cfg);
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    runtime.register_cluster(t, tenants[t]);
  }
  runtime.start();

  common::Stopwatch sw;
  std::vector<std::thread> clients;
  const std::size_t per_client = requests / kClientThreads;
  for (std::size_t c = 0; c < kClientThreads; ++c) {
    clients.emplace_back([&, c] {
      constexpr std::size_t kWindow = 8;
      std::vector<std::future<serve::DecodeResponse>> window;
      for (std::size_t i = 0; i < per_client; ++i) {
        const std::size_t g = c * per_client + i;
        window.push_back(runtime.submit(g % kTenants,
                                        latents[g % latents.size()]));
        if (window.size() >= kWindow) {
          for (auto& f : window) (void)f.get();
          window.clear();
        }
      }
      for (auto& f : window) (void)f.get();
    });
  }
  for (auto& c : clients) c.join();
  const double elapsed = sw.seconds();
  runtime.shutdown();
  return static_cast<double>(per_client * kClientThreads) / elapsed;
}

struct ObsOverheadResult {
  double rps_off = 0.0;
  double rps_on = 0.0;
  double ratio() const { return rps_off > 0.0 ? rps_on / rps_off : 0.0; }
};

/// The overhead contract: the full serving path with metrics recording on
/// and request tracing at 1/64 sampling must stay within 2% of the same
/// binary with observability disabled. CI-class boxes time-share one core
/// across all 16 client+shard threads, so individual windows wobble far
/// more than the effect being measured: the comparison interleaves
/// `repeats` pairs, alternates which side runs first (shedding
/// first-run/turbo order bias), and keeps the best of each side — the
/// max is each configuration's least-preempted window. The obs-on side of
/// the last pair also exports metrics.json / metrics.prom / trace.json so
/// the bench doubles as an exporter smoke test.
ObsOverheadResult observability_overhead(
    const std::vector<std::shared_ptr<core::OrcoDcsSystem>>& tenants,
    const std::vector<tensor::Tensor>& latents, std::size_t requests,
    std::size_t repeats = 5) {
  obs::ObsConfig off;
  off.metrics = false;
  off.trace_sample_rate = 0.0;
  obs::ObsConfig on;
  on.metrics = true;
  on.trace_sample_rate = kObsTraceSampleRate;

  obs::ExportConfig export_cfg;
  export_cfg.metrics_json_path = "metrics.json";
  export_cfg.prometheus_path = "metrics.prom";
  export_cfg.trace_path = "trace.json";

  const auto run_off = [&] {
    obs::configure(off);
    return closed_loop_rps_counted(tenants, latents, requests, nullptr);
  };
  const auto run_on = [&](bool exporting) {
    obs::configure(on);
    return closed_loop_rps_counted(tenants, latents, requests,
                                   exporting ? &export_cfg : nullptr);
  };

  ObsOverheadResult best;
  for (std::size_t i = 0; i < repeats; ++i) {
    const bool last = i + 1 == repeats;
    double rps_off = 0.0, rps_on = 0.0;
    if (i % 2 == 0) {
      rps_off = run_off();
      rps_on = run_on(last);
    } else {
      rps_on = run_on(last);
      rps_off = run_off();
    }
    best.rps_off = std::max(best.rps_off, rps_off);
    best.rps_on = std::max(best.rps_on, rps_on);
  }
  obs::configure(obs::ObsConfig{});
  return best;
}

/// Shared 1-core CI-class boxes are timing-noisy; each open-loop scenario
/// keeps the best (lowest-p99) of `repeats` back-to-back runs, which
/// measures the runtime rather than the host's co-tenants.
OpenLoopResult open_loop_best(
    const std::vector<std::shared_ptr<core::OrcoDcsSystem>>& tenants,
    const std::vector<tensor::Tensor>& latents, double rate_rps,
    double duration_s, bool with_training, std::size_t repeats = 3) {
  OpenLoopResult best;
  for (std::size_t i = 0; i < repeats; ++i) {
    const OpenLoopResult r =
        open_loop_rps(tenants, latents, rate_rps, duration_s, with_training);
    if (i == 0 || r.p99_us < best.p99_us) best = r;
  }
  return best;
}

}  // namespace

int main() {
  using common::Table;

  const std::size_t requests = bench::scaled(4000);
  const auto tenants = make_tenants();
  const auto latents =
      make_latents(256, tenants.front()->config().orco.latent_dim);

  common::print_section(std::cout, "Serving throughput, " +
                                       std::to_string(kTenants) + " tenants, " +
                                       std::to_string(requests) + " requests, " +
                                       bench_backend() + " backend");

  // Warm-up (page in weights) then measure the naive loop.
  (void)naive_rps(tenants, latents, 64);
  const double baseline = naive_rps(tenants, latents, requests / 4);
  std::cout << "naive one-at-a-time loop: " << Table::num(baseline, 1)
            << " req/s\n\n";

  Table table({"shards", "req/s", "p50 us", "p99 us", "mean batch", "speedup"});
  std::ofstream json("BENCH_serve.json");
  json << "{\n  \"tenants\": " << kTenants
       << ",\n  \"requests\": " << requests
       << ",\n  \"backend\": \"" << bench_backend() << "\""
       << ",\n  \"baseline_rps\": " << baseline << ",\n  \"runs\": [\n";
  double speedup_at_8 = 0.0;
  double rps_at_8 = 0.0;
  const std::size_t shard_counts[] = {1, 2, 4, 8};
  for (std::size_t i = 0; i < 4; ++i) {
    const std::size_t shards = shard_counts[i];
    const RunResult r = runtime_rps(tenants, latents, requests, shards);
    const double speedup = r.rps / baseline;
    if (shards == 8) {
      speedup_at_8 = speedup;
      rps_at_8 = r.rps;
    }
    table.add_row({std::to_string(shards), Table::num(r.rps, 1),
                   Table::num(r.p50_us, 1), Table::num(r.p99_us, 1),
                   Table::num(r.mean_batch, 2), Table::num(speedup, 2)});
    json << "    {\"shards\": " << shards << ", \"rps\": " << r.rps
         << ", \"p50_us\": " << r.p50_us << ", \"p99_us\": " << r.p99_us
         << ", \"mean_batch\": " << r.mean_batch
         << ", \"speedup\": " << speedup << "}" << (i + 1 < 4 ? "," : "")
         << "\n";
  }
  json << "  ],\n  \"speedup_at_8_shards\": " << speedup_at_8 << ",\n";
  table.print(std::cout);
  // The naive loop decodes with prepacked weights too (PR 3), so this ratio
  // isolates what sharding+batching add on top of the prepacked kernel; the
  // absolute req/s row is what later PRs must beat.
  std::cout << "\nspeedup at 8 shards vs naive loop: "
            << Table::num(speedup_at_8, 2) << "x\n";

  common::print_section(
      std::cout,
      "Mixed-priority QoS, 1 overloaded shard, " +
          std::to_string(kHighPriorityTenants) + " high / " +
          std::to_string(kTenants - kHighPriorityTenants) + " low tenants");
  const MixedResult mixed = mixed_priority_rps(tenants, latents, requests);
  Table mtable({"class", "completed", "shed", "p99 us"});
  mtable.add_row({"high", std::to_string(mixed.high_completed),
                  std::to_string(mixed.high_shed),
                  Table::num(mixed.high_p99_us, 1)});
  mtable.add_row({"low", std::to_string(mixed.low_completed),
                  std::to_string(mixed.low_shed),
                  Table::num(mixed.low_p99_us, 1)});
  mtable.print(std::cout);
  std::cout << "\nhigh p99 " << Table::num(mixed.high_p99_us, 1)
            << " us vs low p99 " << Table::num(mixed.low_p99_us, 1)
            << " us ("
            << (mixed.high_p99_us < mixed.low_p99_us ? "QoS holds"
                                                     : "QoS VIOLATED")
            << "); low-priority completed " << mixed.low_completed
            << " (must be > 0: no starvation)\n";
  json << "  \"mixed_priority\": {\"shards\": 1, \"rps\": " << mixed.rps
       << ", \"high_p99_us\": " << mixed.high_p99_us
       << ", \"low_p99_us\": " << mixed.low_p99_us
       << ", \"high_completed\": " << mixed.high_completed
       << ", \"low_completed\": " << mixed.low_completed
       << ", \"high_shed\": " << mixed.high_shed
       << ", \"low_shed\": " << mixed.low_shed << "},\n";

  // -- open loop: Poisson arrivals at a fraction of closed-loop capacity --
  const double open_loop_s = 3.0;
  common::print_section(std::cout, "Open-loop (Poisson) tail latency, 8 "
                                   "shards, " +
                                       Table::num(open_loop_s, 0) +
                                       " s per run");
  Table otable({"scenario", "offered req/s", "req/s", "p50 us", "p99 us",
                "shed"});
  const double open_rates[] = {0.4 * rps_at_8, 0.7 * rps_at_8};
  json << "  \"open_loop\": [\n";
  for (std::size_t i = 0; i < 2; ++i) {
    const OpenLoopResult r = open_loop_best(tenants, latents, open_rates[i],
                                            open_loop_s,
                                            /*with_training=*/false);
    otable.add_row({"open " + Table::num(open_rates[i] / rps_at_8, 1) +
                        "x capacity",
                    Table::num(r.offered_rps, 1), Table::num(r.rps, 1),
                    Table::num(r.p50_us, 1), Table::num(r.p99_us, 1),
                    std::to_string(r.shed)});
    json << "    {\"offered_rps\": " << r.offered_rps << ", \"rps\": " << r.rps
         << ", \"p50_us\": " << r.p50_us << ", \"p99_us\": " << r.p99_us
         << ", \"completed\": " << r.completed << ", \"shed\": " << r.shed
         << "}" << (i + 1 < 2 ? "," : "") << "\n";
  }
  json << "  ],\n";

  // -- online fine-tuning: the same open-loop load while a TrainerRuntime
  // retrains tenants in the background and hot-swaps their models.
  // Host timing noise between windows swamps a single comparison on a
  // shared box (p99 wobbles by milliseconds run to run), so the scenario
  // measures PAIRED back-to-back (no-training, training) windows and
  // reports the median pair's p99 ratio — adjacent windows share the
  // host's weather, the median sheds the outliers.
  struct FinetunePair {
    OpenLoopResult base, finetune;
    double ratio = 0.0;
  };
  std::vector<FinetunePair> pairs(3);
  for (auto& pair : pairs) {
    pair.base = open_loop_rps(tenants, latents, open_rates[0], open_loop_s,
                              /*with_training=*/false);
    pair.finetune = open_loop_rps(tenants, latents, open_rates[0], open_loop_s,
                                  /*with_training=*/true);
    pair.ratio = pair.base.p99_us > 0.0
                     ? pair.finetune.p99_us / pair.base.p99_us
                     : 0.0;
  }
  std::sort(pairs.begin(), pairs.end(),
            [](const FinetunePair& a, const FinetunePair& b) {
              return a.ratio < b.ratio;
            });
  const FinetunePair& median = pairs[pairs.size() / 2];
  const double p99_ratio = median.ratio;
  otable.add_row({"open 0.4x + fine-tuning",
                  Table::num(median.finetune.offered_rps, 1),
                  Table::num(median.finetune.rps, 1),
                  Table::num(median.finetune.p50_us, 1),
                  Table::num(median.finetune.p99_us, 1),
                  std::to_string(median.finetune.shed)});
  otable.print(std::cout);
  std::cout << "\nonline fine-tuning ran " << median.finetune.train_rounds
            << " protocol rounds and published "
            << median.finetune.snapshots_published
            << " hot swaps during the median window; serve p99 "
            << Table::num(median.finetune.p99_us, 1) << " us vs "
            << Table::num(median.base.p99_us, 1)
            << " us in the paired no-training window ("
            << Table::num(p99_ratio, 2) << "x median of " << pairs.size()
            << " pairs"
            << (p99_ratio <= 1.10 ? ", within the 10% budget"
                                  : " — OVER the 10% budget")
            << ")\n";
  json << "  \"online_finetune\": {\"offered_rps\": "
       << median.finetune.offered_rps << ", \"rps\": " << median.finetune.rps
       << ", \"p50_us\": " << median.finetune.p50_us
       << ", \"p99_us\": " << median.finetune.p99_us
       << ", \"baseline_p99_us\": " << median.base.p99_us
       << ", \"p99_ratio_median_of_pairs\": " << p99_ratio
       << ", \"pairs\": " << pairs.size()
       << ", \"shed\": " << median.finetune.shed
       << ", \"train_rounds\": " << median.finetune.train_rounds
       << ", \"snapshots_published\": " << median.finetune.snapshots_published
       << "},\n";

  // -- observability overhead: metrics + 1/64 tracing vs everything off --
  common::print_section(
      std::cout, "Observability overhead, 8-shard closed loop, metrics on + "
                 "1/64 trace sampling vs disabled");
  // Double-length windows: the ~2% effect needs more signal per window
  // than the shard sweep's runs.
  const ObsOverheadResult obs_overhead =
      observability_overhead(tenants, latents, requests * 2);
  Table obstable({"observability", "req/s"});
  obstable.add_row({"disabled", Table::num(obs_overhead.rps_off, 1)});
  obstable.add_row({"metrics + trace 1/64", Table::num(obs_overhead.rps_on, 1)});
  obstable.print(std::cout);
  std::cout << "\nthroughput ratio (on/off): "
            << Table::num(obs_overhead.ratio(), 3)
            << (obs_overhead.ratio() >= 0.98 ? " (within the 2% budget)"
                                             : " — OVER the 2% budget")
            << "\nexported metrics.json, metrics.prom, trace.json from the "
               "instrumented run\n";
  json << "  \"observability\": {\"rps_obs_off\": " << obs_overhead.rps_off
       << ", \"rps_obs_on\": " << obs_overhead.rps_on
       << ", \"ratio\": " << obs_overhead.ratio()
       << ", \"trace_sample\": " << kObsTraceSampleRate << "}\n}\n";
  return 0;
}
