// Figure 8 — sensitivity to the number of decoder layers.
//
// OrcoDCS-1L/3L/5L vs DCSNet, loss against training epochs. Expected shape:
// every OrcoDCS depth beats DCSNet, and adding layers shows diminishing
// returns (3L improves clearly over 1L; 5L adds little or overfits).
#include "bench_common.h"

namespace {

using namespace orco;
using namespace orco::bench;

void run_dataset(const std::string& tag, const data::Dataset& train,
                 const data::Dataset& test, bool is_mnist) {
  const std::size_t epochs = 10;
  const std::size_t depths[] = {1, 3, 5};

  common::Table table({"epochs", "DCSNet", "OrcoDCS-1L", "OrcoDCS-3L",
                       "OrcoDCS-5L"});
  std::vector<std::vector<float>> losses(4);
  {
    baseline::DcsNetSystem dcs(train.geometry(), dcsnet_config(),
                               wsn::ChannelConfig{}, core::ComputeModel{});
    for (std::size_t e = 0; e < epochs; ++e) {
      (void)dcs.train_online(train, 1);
      losses[0].push_back(dcs.evaluate_loss(test));
    }
  }
  for (std::size_t d = 0; d < 3; ++d) {
    auto cfg = is_mnist ? orco_mnist_config(128, depths[d])
                        : orco_gtsrb_config(512, depths[d]);
    core::OrcoDcsSystem sys(cfg);
    for (std::size_t e = 0; e < epochs; ++e) {
      (void)sys.train_online(train, 1);
      losses[d + 1].push_back(sys.evaluate_loss(test));
    }
  }

  for (std::size_t e = 1; e < epochs; e += 2) {
    table.add_row({std::to_string(e + 1),
                   common::Table::num(losses[0][e], 5),
                   common::Table::num(losses[1][e], 5),
                   common::Table::num(losses[2][e], 5),
                   common::Table::num(losses[3][e], 5)});
  }
  common::print_section(std::cout, "Figure 8: decoder-depth sweep on " + tag);
  table.print(std::cout);

  const float gain_1_3 = losses[1].back() - losses[2].back();
  const float gain_3_5 = losses[2].back() - losses[3].back();
  std::cout << "final-epoch improvement 1L->3L: "
            << common::Table::num(gain_1_3, 5) << ", 3L->5L: "
            << common::Table::num(gain_3_5, 5)
            << (gain_3_5 < gain_1_3 ? "  (diminishing returns hold)\n"
                                    : "  (diminishing returns NOT observed)\n");
}

}  // namespace

int main() {
  using namespace orco;
  using namespace orco::bench;
  common::Stopwatch wall;

  run_dataset("synthetic MNIST", mnist_sweep_train(), mnist_test(), true);
  run_dataset("synthetic GTSRB", gtsrb_sweep_train(), gtsrb_test(), false);

  std::cout << "\n[fig8_decoder_layers done in "
            << common::Table::num(wall.seconds(), 1) << " s]\n";
  return 0;
}
