// Figure 2 — reconstruction quality of OrcoDCS vs DCSNet.
//
// The paper shows three MNIST digits and three GTSRB signs side by side
// (original / OrcoDCS / DCSNet). This harness trains both frameworks on the
// synthetic equivalents, renders the same side-by-side panels as ASCII art,
// and quantifies each panel with PSNR and SSIM. Expected shape: OrcoDCS
// reconstructions are sharper (higher PSNR/SSIM) than DCSNet's.
#include "bench_common.h"

namespace {

using namespace orco;

template <typename OrcoSys, typename DcsSys>
void render_panels(const data::Dataset& test, OrcoSys& orco_sys,
                   DcsSys& dcs_sys, std::size_t panels) {
  common::Table table({"image", "label", "PSNR OrcoDCS (dB)",
                       "PSNR DCSNet (dB)", "SSIM OrcoDCS", "SSIM DCSNet"});
  for (std::size_t i = 0; i < panels; ++i) {
    const auto original = test.image(i);
    const auto batch = test.images().slice_rows(i, i + 1);
    const auto orco_rec = orco_sys.reconstruct(batch).reshaped(
        {test.geometry().features()});
    const auto dcs_rec = dcs_sys.reconstruct(batch).reshaped(
        {test.geometry().features()});

    std::cout << data::ascii_art_row({original, orco_rec, dcs_rec},
                                     {"Original", "OrcoDCS", "DCSNet"},
                                     test.geometry())
              << '\n';
    table.add_row({std::to_string(i), std::to_string(test.label(i)),
                   common::Table::num(data::psnr(original, orco_rec), 2),
                   common::Table::num(data::psnr(original, dcs_rec), 2),
                   common::Table::num(data::ssim(original, orco_rec,
                                                 test.geometry()), 3),
                   common::Table::num(data::ssim(original, dcs_rec,
                                                 test.geometry()), 3)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace orco;
  using namespace orco::bench;
  common::Stopwatch wall;

  // ---- MNIST-like -----------------------------------------------------
  {
    common::print_section(std::cout,
                          "Figure 2a: reconstructions on synthetic MNIST "
                          "(OrcoDCS latent 128 vs DCSNet latent 1024, 50% data)");
    const auto train = mnist_train(scaled(1500));
    const auto test = mnist_test(16);

    core::OrcoDcsSystem orco_sys(orco_mnist_config());
    (void)orco_sys.train_online(train, 20);

    baseline::DcsNetSystem dcs_sys(data::kMnistGeometry, dcsnet_config(),
                                   wsn::ChannelConfig{}, core::ComputeModel{});
    (void)dcs_sys.train_online(train, 8);

    render_panels(test, orco_sys, dcs_sys, 3);

    const auto big_test = mnist_test();
    std::cout << "\nwhole-test-set mean PSNR: OrcoDCS="
              << common::Table::num(
                     data::mean_psnr(big_test.images(),
                                     orco_sys.reconstruct(big_test.images())), 2)
              << " dB, DCSNet="
              << common::Table::num(
                     data::mean_psnr(big_test.images(),
                                     dcs_sys.reconstruct(big_test.images())), 2)
              << " dB\n";
  }

  // ---- GTSRB-like -----------------------------------------------------
  {
    common::print_section(std::cout,
                          "Figure 2b: reconstructions on synthetic GTSRB "
                          "(OrcoDCS latent 512 vs DCSNet latent 1024, 50% data)");
    const auto train = gtsrb_train(scaled(600));
    const auto test = gtsrb_test(16);

    core::OrcoDcsSystem orco_sys(orco_gtsrb_config());
    (void)orco_sys.train_online(train, 10);

    baseline::DcsNetSystem dcs_sys(data::kGtsrbGeometry, dcsnet_config(),
                                   wsn::ChannelConfig{}, core::ComputeModel{});
    (void)dcs_sys.train_online(train, 5);

    render_panels(test, orco_sys, dcs_sys, 3);

    const auto big_test = gtsrb_test();
    std::cout << "\nwhole-test-set mean PSNR: OrcoDCS="
              << common::Table::num(
                     data::mean_psnr(big_test.images(),
                                     orco_sys.reconstruct(big_test.images())), 2)
              << " dB, DCSNet="
              << common::Table::num(
                     data::mean_psnr(big_test.images(),
                                     dcs_sys.reconstruct(big_test.images())), 2)
              << " dB\n";
  }

  std::cout << "\n[fig2_reconstruction done in "
            << common::Table::num(wall.seconds(), 1) << " s]\n";
  return 0;
}
