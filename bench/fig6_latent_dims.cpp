// Figure 6 — sensitivity to the latent dimension.
//
// OrcoDCS-256/512/1024 vs DCSNet, loss against training epochs. Expected
// shape: every OrcoDCS variant reaches lower loss than DCSNet, and raising
// the dimension yields diminishing returns (256 -> 512 helps more than
// 512 -> 1024).
#include "bench_common.h"

namespace {

using namespace orco;
using namespace orco::bench;

void run_dataset(const std::string& tag, const data::Dataset& train,
                 const data::Dataset& test, bool is_mnist) {
  const std::size_t epochs = 10;
  const std::size_t dims[] = {256, 512, 1024};

  // Per-epoch evaluation loss per series.
  common::Table table({"epochs", "DCSNet", "OrcoDCS-256", "OrcoDCS-512",
                       "OrcoDCS-1024"});
  std::vector<std::vector<float>> losses(4);

  {
    baseline::DcsNetSystem dcs(train.geometry(), dcsnet_config(),
                               wsn::ChannelConfig{}, core::ComputeModel{});
    for (std::size_t e = 0; e < epochs; ++e) {
      (void)dcs.train_online(train, 1);
      losses[0].push_back(dcs.evaluate_loss(test));
    }
  }
  for (std::size_t d = 0; d < 3; ++d) {
    auto cfg = is_mnist ? orco_mnist_config(dims[d], 1)
                        : orco_gtsrb_config(dims[d], 1);
    core::OrcoDcsSystem sys(cfg);
    for (std::size_t e = 0; e < epochs; ++e) {
      (void)sys.train_online(train, 1);
      losses[d + 1].push_back(sys.evaluate_loss(test));
    }
  }

  for (std::size_t e = 1; e < epochs; e += 2) {
    table.add_row({std::to_string(e + 1),
                   common::Table::num(losses[0][e], 5),
                   common::Table::num(losses[1][e], 5),
                   common::Table::num(losses[2][e], 5),
                   common::Table::num(losses[3][e], 5)});
  }
  common::print_section(std::cout, "Figure 6: latent-dimension sweep on " + tag);
  table.print(std::cout);

  // Diminishing-returns summary at the final epoch.
  const float gain_256_512 = losses[1].back() - losses[2].back();
  const float gain_512_1024 = losses[2].back() - losses[3].back();
  std::cout << "final-epoch improvement 256->512: "
            << common::Table::num(gain_256_512, 5) << ", 512->1024: "
            << common::Table::num(gain_512_1024, 5)
            << (gain_512_1024 < gain_256_512
                    ? "  (diminishing returns hold)\n"
                    : "  (diminishing returns NOT observed)\n");
}

}  // namespace

int main() {
  using namespace orco;
  using namespace orco::bench;
  common::Stopwatch wall;

  run_dataset("synthetic MNIST", mnist_sweep_train(), mnist_test(), true);
  run_dataset("synthetic GTSRB", gtsrb_sweep_train(), gtsrb_test(), false);

  std::cout << "\n[fig6_latent_dims done in "
            << common::Table::num(wall.seconds(), 1) << " s]\n";
  return 0;
}
