// Figure 5 — accuracy and loss of the follow-up 2-layer CNN classifier
// trained on data reconstructed by each framework.
//
// Series: DCSNet-30%, DCSNet-50%, DCSNet-70% (fraction of training data the
// offline framework could access) and OrcoDCS. The classifier is trained
// AND evaluated on reconstructed data — the follow-up application only ever
// sees data that went through the CDA pipeline. Expected shape: accuracy
// ordering OrcoDCS > DCSNet-70% > 50% > 30%, loss ordering reversed.
#include "bench_common.h"

namespace {

using namespace orco;
using namespace orco::bench;

struct Series {
  std::string name;
  data::Dataset train;
  data::Dataset test;
};

void run_dataset(const std::string& tag, const data::Dataset& train,
                 const data::Dataset& test, const core::SystemConfig& orco_cfg,
                 std::size_t orco_epochs, std::size_t dcs_epochs) {
  std::vector<Series> series;

  for (const float fraction : {0.3f, 0.5f, 0.7f}) {
    baseline::DcsNetSystem dcs(train.geometry(), dcsnet_config(fraction),
                               wsn::ChannelConfig{}, core::ComputeModel{});
    (void)dcs.train_online(train, dcs_epochs);
    const auto rec = [&](const tensor::Tensor& x) { return dcs.reconstruct(x); };
    series.push_back({"DCSNet-" + std::to_string(static_cast<int>(fraction * 100)) + "%",
                      apps::reconstruct_dataset(train, rec),
                      apps::reconstruct_dataset(test, rec)});
  }
  {
    core::OrcoDcsSystem orco_sys(orco_cfg);
    (void)orco_sys.train_online(train, orco_epochs);
    const auto rec = [&](const tensor::Tensor& x) {
      return orco_sys.reconstruct(x);
    };
    series.push_back({"OrcoDCS", apps::reconstruct_dataset(train, rec),
                      apps::reconstruct_dataset(test, rec)});
  }

  common::Table acc_table({"epochs", "DCSNet-30%", "DCSNet-50%", "DCSNet-70%",
                           "OrcoDCS"});
  common::Table loss_table({"epochs", "DCSNet-30%", "DCSNet-50%",
                            "DCSNet-70%", "OrcoDCS"});

  apps::ClassifierConfig clf_cfg;
  clf_cfg.learning_rate = 3e-3f;
  std::vector<apps::CnnClassifier> classifiers;
  classifiers.reserve(series.size());
  for (std::size_t s = 0; s < series.size(); ++s) {
    classifiers.emplace_back(train.geometry(), train.num_classes(), clf_cfg);
  }

  for (std::size_t epoch = 1; epoch <= 10; ++epoch) {
    for (std::size_t s = 0; s < series.size(); ++s) {
      (void)classifiers[s].train_epoch(series[s].train);
    }
    if (epoch % 2 != 0) continue;
    std::vector<std::string> acc_row = {std::to_string(epoch)};
    std::vector<std::string> loss_row = {std::to_string(epoch)};
    for (std::size_t s = 0; s < series.size(); ++s) {
      const auto eval = classifiers[s].evaluate(series[s].test);
      acc_row.push_back(common::Table::num(eval.accuracy, 3));
      loss_row.push_back(common::Table::num(eval.loss, 3));
    }
    acc_table.add_row(acc_row);
    loss_table.add_row(loss_row);
  }

  common::print_section(std::cout, "Figure 5: testing accuracy on " + tag);
  acc_table.print(std::cout);
  common::print_section(std::cout, "Figure 5: testing loss on " + tag);
  loss_table.print(std::cout);
}

}  // namespace

int main() {
  using namespace orco;
  using namespace orco::bench;
  common::Stopwatch wall;

  // OrcoDCS epochs are set so that its simulated training time stays in the
  // same class as DCSNet's (each DCSNet round costs ~8x more modelled time,
  // see fig4); the online framework's whole point is cheap rounds.
  run_dataset("synthetic MNIST", mnist_train(), mnist_test(),
              orco_mnist_config(), /*orco_epochs=*/40, /*dcs_epochs=*/10);
  run_dataset("synthetic GTSRB", gtsrb_train(scaled(1600)),
              gtsrb_test(scaled(300)), orco_gtsrb_config(),
              /*orco_epochs=*/16, /*dcs_epochs=*/5);

  std::cout << "\n[fig5_classifier done in "
            << common::Table::num(wall.seconds(), 1) << " s]\n";
  return 0;
}
