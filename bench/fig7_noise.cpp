// Figure 7 — sensitivity to the Gaussian noise added to latent vectors
// (eq. 2).
//
// OrcoDCS is trained with different noise variances and compared with
// DCSNet (which has no latent noise). Expected shape: OrcoDCS beats DCSNet
// at every noise level tried by the paper, and a moderate amount of noise
// reaches lower evaluation loss than none (denoising regularisation);
// excessive noise hurts.
#include <cmath>
#include <memory>

#include "bench_common.h"
#include "nn/loss.h"

namespace {

using namespace orco;
using namespace orco::bench;

/// Reconstruction loss when the *inference* latents are perturbed with
/// Gaussian noise of variance `infer_var` — models a noisy uplink. This is
/// where training-time latent noise pays off ("robustness of the
/// reconstructions", paper sec. III-B).
float noisy_inference_loss(core::OrcoDcsSystem& sys,
                           const data::Dataset& test, float infer_var) {
  common::Pcg32 rng(0xfeedULL);
  nn::HuberLoss huber(1.0f);
  const float sigma = std::sqrt(infer_var);
  double acc = 0.0;
  std::size_t batches = 0;
  const std::size_t batch_size = 64;
  for (std::size_t begin = 0; begin < test.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, test.size());
    const auto x = test.images().slice_rows(begin, end);
    auto latents = sys.aggregator().encode_inference(x);
    for (auto& v : latents.data()) {
      v += static_cast<float>(rng.normal(0.0, sigma));
    }
    acc += huber.value(sys.edge().decode_inference(latents), x);
    ++batches;
  }
  return static_cast<float>(acc / static_cast<double>(batches));
}

void run_dataset(const std::string& tag, const data::Dataset& train,
                 const data::Dataset& test, bool is_mnist,
                 const std::vector<float>& variances) {
  const std::size_t epochs = 10;

  std::vector<std::string> headers = {"epochs", "DCSNet"};
  for (const float v : variances) {
    headers.push_back("OrcoDCS(s2=" + common::Table::num(v, 1) + ")");
  }
  common::Table table(headers);

  std::vector<std::vector<float>> losses(1 + variances.size());
  {
    baseline::DcsNetSystem dcs(train.geometry(), dcsnet_config(),
                               wsn::ChannelConfig{}, core::ComputeModel{});
    for (std::size_t e = 0; e < epochs; ++e) {
      (void)dcs.train_online(train, 1);
      losses[0].push_back(dcs.evaluate_loss(test));
    }
  }
  std::vector<std::unique_ptr<core::OrcoDcsSystem>> systems;
  for (std::size_t i = 0; i < variances.size(); ++i) {
    auto cfg = is_mnist ? orco_mnist_config(128, 1) : orco_gtsrb_config(512, 1);
    cfg.orco.noise_variance = variances[i];
    systems.push_back(std::make_unique<core::OrcoDcsSystem>(cfg));
    for (std::size_t e = 0; e < epochs; ++e) {
      (void)systems.back()->train_online(train, 1);
      losses[i + 1].push_back(systems.back()->evaluate_loss(test));
    }
  }

  for (std::size_t e = 1; e < epochs; e += 2) {
    std::vector<std::string> row = {std::to_string(e + 1)};
    for (const auto& series : losses) {
      row.push_back(common::Table::num(series[e], 5));
    }
    table.add_row(row);
  }
  common::print_section(std::cout, "Figure 7: latent-noise sweep on " + tag);
  table.print(std::cout);

  // Robustness view: reconstruct through a noisy channel at inference.
  std::vector<std::string> rob_headers = {"inference noise s2"};
  for (const float v : variances) {
    rob_headers.push_back("trained s2=" + common::Table::num(v, 1));
  }
  common::Table robustness(rob_headers);
  for (const float infer_var : {0.0f, 0.1f, 0.3f}) {
    std::vector<std::string> row = {common::Table::num(infer_var, 1)};
    for (auto& sys : systems) {
      row.push_back(common::Table::num(
          noisy_inference_loss(*sys, test, infer_var), 5));
    }
    robustness.add_row(row);
  }
  common::print_section(
      std::cout, "Figure 7 (robustness): loss under noisy inference latents, " + tag);
  robustness.print(std::cout);
  std::cout << "expected: models trained with moderate latent noise degrade "
               "least as inference noise grows.\n";
}

}  // namespace

int main() {
  using namespace orco;
  using namespace orco::bench;
  common::Stopwatch wall;

  // Paper's sweeps: sigma^2 in {0.1, 0.2, 0.3} for MNIST and
  // {0, 0.3, 0.6, 0.9} for GTSRB.
  run_dataset("synthetic MNIST", mnist_sweep_train(), mnist_test(), true,
              {0.0f, 0.1f, 0.2f, 0.3f});
  run_dataset("synthetic GTSRB", gtsrb_sweep_train(), gtsrb_test(), false,
              {0.0f, 0.3f, 0.6f, 0.9f});

  std::cout << "\n[fig7_noise done in " << common::Table::num(wall.seconds(), 1)
            << " s]\n";
  return 0;
}
