// Figure 3 — transmission cost (KB) for shipping 1,000 and 10,000 images
// from the data aggregator to the edge server.
//
// Every byte is counted by the WSN ledger as real serialised latents flow
// through the simulated channel. Expected shape: OrcoDCS (latent 128 MNIST /
// 512 GTSRB) transmits ~8x / ~2x fewer KB than DCSNet's fixed latent 1024 —
// the paper's "up to 10x" claim.
#include "bench_common.h"

namespace {

using namespace orco;
using namespace orco::bench;

struct Cost {
  std::size_t payload = 0;
  std::size_t wire = 0;
};

/// Ships `count` images uplink in batches through a fresh system; returns
/// ledger uplink totals.
template <typename System>
Cost measure(System& sys, const data::Dataset& pool, std::size_t count) {
  constexpr std::size_t kBatch = 250;
  std::size_t shipped = 0;
  while (shipped < count) {
    const std::size_t n = std::min(kBatch, count - shipped);
    // Cycle through the pool; content does not change byte counts but the
    // bytes on the wire are real serialised latents.
    const std::size_t begin = shipped % (pool.size() - n + 1);
    (void)sys.aggregate_images(pool.images().slice_rows(begin, begin + n));
    shipped += n;
  }
  const auto& up = sys.ledger().totals(wsn::LinkKind::kUplink);
  return {up.payload_bytes, up.wire_bytes};
}

}  // namespace

int main() {
  using namespace orco;
  using namespace orco::bench;
  common::Stopwatch wall;

  const std::size_t counts[] = {1000, 10000};

  for (const bool is_mnist : {true, false}) {
    common::print_section(
        std::cout, std::string("Figure 3") + (is_mnist ? "a" : "b") +
                       ": transmitted KB on synthetic " +
                       (is_mnist ? "MNIST" : "GTSRB"));
    const auto pool = is_mnist ? mnist_test(512) : gtsrb_test(512);
    const auto geometry = pool.geometry();

    common::Table table({"images", "OrcoDCS KB", "DCSNet KB", "raw KB",
                         "DCSNet/OrcoDCS"});
    for (const std::size_t count : counts) {
      auto orco_cfg = is_mnist ? orco_mnist_config() : orco_gtsrb_config();
      core::OrcoDcsSystem orco_sys(orco_cfg);
      const Cost orco = measure(orco_sys, pool, count);

      baseline::DcsNetSystem dcs_sys(geometry, dcsnet_config(),
                                     wsn::ChannelConfig{},
                                     core::ComputeModel{});
      const Cost dcs = measure(dcs_sys, pool, count);

      const std::size_t raw =
          count * geometry.features() * sizeof(float);
      table.add_row(
          {std::to_string(count), kb(orco.payload), kb(dcs.payload), kb(raw),
           common::Table::num(static_cast<double>(dcs.payload) /
                                  static_cast<double>(orco.payload), 2)});
    }
    table.print(std::cout);
  }

  std::cout << "\n[fig3_transmission done in "
            << common::Table::num(wall.seconds(), 1) << " s]\n";
  return 0;
}
