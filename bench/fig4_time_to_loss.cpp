// Figure 4 — time-to-loss: training loss against (simulated) wall time.
//
// OrcoDCS's shallow encoder runs on the IoT-class aggregator and its dense
// decoder on the edge, so each protocol round is cheap; DCSNet pushes a
// 1024-wide encoder onto the aggregator and a 4-conv decoder onto the edge.
// Expected shape: the OrcoDCS curve drops faster and plateaus lower, on
// both datasets — even though DCSNet sees only 50% of the data (fewer
// rounds per epoch).
#include "bench_common.h"

namespace {

using namespace orco;
using namespace orco::bench;

void print_series(const std::string& name,
                  const std::vector<TimedLoss>& series) {
  common::Table table({"series", "time (s)", "loss"});
  for (const auto& p : series) {
    table.add_row({name, common::Table::num(p.time_s, 1),
                   common::Table::num(p.loss, 5)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  using namespace orco;
  using namespace orco::bench;
  common::Stopwatch wall;

  for (const bool is_mnist : {true, false}) {
    common::print_section(
        std::cout, std::string("Figure 4") + (is_mnist ? "a" : "b") +
                       ": time-to-loss on synthetic " +
                       (is_mnist ? "MNIST" : "GTSRB"));
    const auto train = is_mnist ? mnist_train() : gtsrb_train();
    const std::size_t epochs = is_mnist ? 12 : 8;

    // Single-dense-layer decoder: the paper's Fig. 4 configuration.
    auto orco_cfg = is_mnist ? orco_mnist_config(128, 1)
                             : orco_gtsrb_config(512, 1);
    core::OrcoDcsSystem orco_sys(orco_cfg);
    const auto orco_summary = orco_sys.train_online(train, epochs);
    print_series("OrcoDCS", downsample(orco_summary.rounds));

    baseline::DcsNetSystem dcs_sys(train.geometry(), dcsnet_config(),
                                   wsn::ChannelConfig{}, core::ComputeModel{});
    const auto dcs_summary = dcs_sys.train_online(train, epochs);
    print_series("DCSNet", downsample(dcs_summary.rounds));

    std::cout << "summary: OrcoDCS reached loss "
              << common::Table::num(orco_summary.final_loss, 5) << " at t="
              << common::Table::num(orco_summary.sim_seconds, 1)
              << " s; DCSNet reached "
              << common::Table::num(dcs_summary.final_loss, 5) << " at t="
              << common::Table::num(dcs_summary.sim_seconds, 1) << " s\n";

    // Who is lower at the earlier of the two finishing times?
    const double horizon =
        std::min(orco_summary.sim_seconds, dcs_summary.sim_seconds);
    auto loss_at = [&](const std::vector<core::RoundRecord>& rounds) {
      float loss = rounds.front().loss;
      for (const auto& r : rounds) {
        if (r.sim_time_s > horizon) break;
        loss = r.loss;
      }
      return loss;
    };
    std::cout << "at t=" << common::Table::num(horizon, 1)
              << " s: OrcoDCS loss="
              << common::Table::num(loss_at(orco_summary.rounds), 5)
              << ", DCSNet loss="
              << common::Table::num(loss_at(dcs_summary.rounds), 5) << "\n";
  }

  std::cout << "\n[fig4_time_to_loss done in "
            << common::Table::num(wall.seconds(), 1) << " s]\n";
  return 0;
}
