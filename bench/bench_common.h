// Shared configuration for the figure-reproduction benches.
//
// Sizes follow the paper where feasible (latent 128 for MNIST-like, 512 for
// GTSRB-like, DCSNet fixed at 1024 with 50% data) but dataset counts are
// scaled to tens of seconds per bench; set ORCO_BENCH_SCALE=<float> to grow
// or shrink every workload together. EXPERIMENTS.md records the exact
// settings behind the committed outputs.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "apps/classifier.h"
#include "baseline/dcsnet.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "core/orcodcs.h"
#include "data/ascii_art.h"
#include "data/metrics.h"
#include "data/synthetic_gtsrb.h"
#include "data/synthetic_mnist.h"

namespace orco::bench {

inline double bench_scale() {
  if (const char* env = std::getenv("ORCO_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

inline std::size_t scaled(std::size_t n) {
  return static_cast<std::size_t>(static_cast<double>(n) * bench_scale());
}

// -- datasets ---------------------------------------------------------------

inline data::Dataset mnist_train(std::size_t count = scaled(2000)) {
  data::MnistConfig cfg;
  cfg.count = count;
  cfg.seed = 11;
  return data::make_synthetic_mnist(cfg);
}

inline data::Dataset mnist_test(std::size_t count = scaled(400)) {
  data::MnistConfig cfg;
  cfg.count = count;
  cfg.seed = 12;
  return data::make_synthetic_mnist(cfg);
}

inline data::Dataset gtsrb_train(std::size_t count = scaled(800)) {
  data::GtsrbConfig cfg;
  cfg.count = count;
  cfg.seed = 21;
  return data::make_synthetic_gtsrb(cfg);
}

inline data::Dataset gtsrb_test(std::size_t count = scaled(200)) {
  data::GtsrbConfig cfg;
  cfg.count = count;
  cfg.seed = 22;
  return data::make_synthetic_gtsrb(cfg);
}

// Reduced sets for the sensitivity sweeps (figs. 6-8), which train 4+
// models per dataset: the orderings are stable at these sizes and the whole
// bench suite stays runnable on one core in tens of minutes.
inline data::Dataset mnist_sweep_train() { return mnist_train(scaled(1000)); }
inline data::Dataset gtsrb_sweep_train() { return gtsrb_train(scaled(400)); }

// -- standard system configurations ------------------------------------------

/// Paper setup for MNIST-like sensing: latent 128. `decoder_layers` defaults
/// to the per-task-tuned depth used for the quality/classifier figures.
inline core::SystemConfig orco_mnist_config(std::size_t latent = 128,
                                            std::size_t decoder_layers = 3) {
  core::SystemConfig cfg;
  cfg.orco.input_dim = 784;
  cfg.orco.latent_dim = latent;
  cfg.orco.decoder_layers = decoder_layers;
  cfg.orco.batch_size = 64;
  cfg.orco.noise_variance = 0.01f;
  cfg.field.device_count = 24;
  cfg.field.radio_range_m = 45.0;
  return cfg;
}

/// Paper setup for GTSRB-like sensing: latent 512.
inline core::SystemConfig orco_gtsrb_config(std::size_t latent = 512,
                                            std::size_t decoder_layers = 3) {
  core::SystemConfig cfg = orco_mnist_config(latent, decoder_layers);
  cfg.orco.input_dim = 3072;
  return cfg;
}

/// DCSNet as the paper evaluates it: fixed latent 1024, data fraction 50%
/// by default (30/50/70% in Fig. 5).
inline baseline::DcsNetConfig dcsnet_config(float data_fraction = 0.5f) {
  baseline::DcsNetConfig cfg;
  cfg.latent_dim = 1024;
  cfg.data_fraction = data_fraction;
  return cfg;
}

// -- series helpers -----------------------------------------------------------

struct TimedLoss {
  double time_s = 0.0;
  float loss = 0.0f;
};

/// Downsamples per-round records to at most `points` (time, loss) pairs.
inline std::vector<TimedLoss> downsample(
    const std::vector<core::RoundRecord>& rounds, std::size_t points = 12) {
  std::vector<TimedLoss> out;
  if (rounds.empty()) return out;
  const std::size_t stride = std::max<std::size_t>(1, rounds.size() / points);
  for (std::size_t i = 0; i < rounds.size(); i += stride) {
    out.push_back({rounds[i].sim_time_s, rounds[i].loss});
  }
  if (out.empty() || out.back().time_s != rounds.back().sim_time_s) {
    out.push_back({rounds.back().sim_time_s, rounds.back().loss});
  }
  return out;
}

inline std::string kb(std::size_t bytes) {
  return common::Table::num(static_cast<double>(bytes) / 1024.0, 1);
}

}  // namespace orco::bench
