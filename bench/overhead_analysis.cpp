// Overhead analysis (paper §III-E) and the §V future-work scalability
// ablation.
//
// Part 1 quantifies the claims of §III-E on a concrete cluster:
//   * intra-cluster raw aggregation is a one-shot cost;
//   * the aggregator-side encoder is a single dense layer (few FLOPs /
//     few parameters) while the edge absorbs the decoder;
//   * uplink traffic during steady state is tiny next to raw data;
//   * the encoder broadcast is a single round.
//
// Part 2 models the paper's future-work question: many aggregators sharing
// one edge server. Each training round occupies the edge for its decoder
// forward+backward time; K concurrent clusters queue FIFO. We report edge
// utilisation and round latency against K — the knee shows when an
// IoT-Edge-Cloud tier split becomes necessary.
#include "bench_common.h"

int main() {
  using namespace orco;
  using namespace orco::bench;
  common::Stopwatch wall;

  // -- Part 1: per-stage ledger breakdown --------------------------------
  common::print_section(std::cout,
                        "Overhead analysis (paper sec. III-E): per-stage cost "
                        "on a 24-device cluster, synthetic MNIST");
  auto cfg = orco_mnist_config();
  core::OrcoDcsSystem sys(cfg);
  const auto train = mnist_train(scaled(512));

  common::Table stages({"stage", "intra-cluster KB", "uplink KB",
                        "downlink KB", "broadcast KB", "sim time (s)"});
  auto snapshot = [&](const std::string& name, double seconds) {
    const auto& lg = sys.ledger();
    stages.add_row({name, kb(lg.totals(wsn::LinkKind::kIntraCluster).payload_bytes),
                    kb(lg.totals(wsn::LinkKind::kUplink).payload_bytes),
                    kb(lg.totals(wsn::LinkKind::kDownlink).payload_bytes),
                    kb(lg.totals(wsn::LinkKind::kBroadcast).payload_bytes),
                    common::Table::num(seconds, 2)});
  };

  double t = sys.raw_aggregation_round(784 * sizeof(float));
  snapshot("1. raw aggregation (one-shot)", t);
  const auto summary = sys.train_online(train, 3);
  snapshot("2. online training (3 epochs)", sys.sim_time());
  t = sys.distribute_encoder();
  snapshot("3. encoder broadcast (one round)", sys.sim_time());
  for (int i = 0; i < 8; ++i) (void)sys.compressed_aggregation_round();
  snapshot("4. steady state (8 CS rounds)", sys.sim_time());
  stages.print(std::cout);

  // Device-vs-edge compute split per training round.
  common::print_section(std::cout, "Per-round compute split (batch 64)");
  const std::size_t agg_flops = sys.aggregator().train_flops(64);
  const std::size_t edge_flops = sys.edge().train_flops(64);
  common::Table split({"side", "model", "parameters", "FLOPs/round",
                       "modelled time (ms)"});
  split.add_row({"aggregator (IoT-class)", "1-dense encoder",
                 std::to_string(sys.aggregator().encoder().parameter_count()),
                 std::to_string(agg_flops),
                 common::Table::num(
                     cfg.compute.aggregator_seconds(agg_flops) * 1e3, 2)});
  split.add_row({"edge server", std::to_string(cfg.orco.decoder_layers) +
                                    "-dense decoder",
                 std::to_string(sys.edge().decoder().parameter_count()),
                 std::to_string(edge_flops),
                 common::Table::num(cfg.compute.edge_seconds(edge_flops) * 1e3,
                                    2)});
  split.print(std::cout);
  std::cout << "training rounds completed: " << summary.rounds.size()
            << "; mean loss trajectory end: "
            << common::Table::num(summary.final_loss, 5) << "\n";

  // -- Part 2: multi-aggregator edge scalability (paper sec. V) -----------
  common::print_section(
      std::cout,
      "Future-work ablation: K aggregators sharing one edge server");
  const double edge_busy_per_round = cfg.compute.edge_seconds(edge_flops);
  const double agg_round_period =
      cfg.compute.aggregator_seconds(agg_flops) + 0.05;  // + channel time
  common::Table fleet({"aggregators K", "edge utilisation",
                       "mean queue wait (ms)", "round latency (ms)",
                       "throughput (rounds/s)"});
  for (const std::size_t k : {1, 2, 4, 8, 16, 32, 64}) {
    // M/D/1-style FIFO: arrival rate k/agg_round_period, service time
    // edge_busy_per_round.
    const double lambda = static_cast<double>(k) / agg_round_period;
    const double rho = lambda * edge_busy_per_round;
    double wait_s, throughput;
    if (rho < 1.0) {
      wait_s = rho * edge_busy_per_round / (2.0 * (1.0 - rho));
      throughput = lambda;
    } else {
      // Saturated: the edge is the bottleneck.
      wait_s = std::numeric_limits<double>::quiet_NaN();
      throughput = 1.0 / edge_busy_per_round;
    }
    fleet.add_row({std::to_string(k),
                   common::Table::num(std::min(rho, 1.0), 3),
                   rho < 1.0 ? common::Table::num(wait_s * 1e3, 2) : "saturated",
                   rho < 1.0 ? common::Table::num(
                                   (edge_busy_per_round + wait_s) * 1e3, 2)
                             : "unbounded",
                   common::Table::num(throughput, 1)});
  }
  fleet.print(std::cout);

  std::cout << "\n[overhead_analysis done in "
            << common::Table::num(wall.seconds(), 1) << " s]\n";
  return 0;
}
