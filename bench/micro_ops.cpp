// Micro benchmarks (google-benchmark) for the kernels behind every figure:
// GEMM (per kernel backend), conv lowering, losses, protocol round pieces
// and dataset synthesis. main() first emits BENCH_gemm.json — GFLOP/s per
// backend per shape — so kernel PRs have a committed baseline to beat, then
// runs the registered google-benchmark suite.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <string_view>
#include <vector>

#include "baseline/dcsnet.h"
#include "common/stopwatch.h"
#include "common/table.h"
#include "core/orcodcs.h"
#include "core/quantization.h"
#include "data/synthetic_gtsrb.h"
#include "data/synthetic_mnist.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/infer_context.h"
#include "nn/infer_plan.h"
#include "nn/loss.h"
#include "nn/sequential.h"
#include "tensor/matmul.h"

namespace {

using namespace orco;
using tensor::Tensor;

void bench_gemm_backend(benchmark::State& state, const tensor::Backend& be) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Pcg32 rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  tensor::BackendScope scope(&be);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}

void BM_GemmReference(benchmark::State& state) {
  bench_gemm_backend(state, tensor::reference_backend());
}
BENCHMARK(BM_GemmReference)->Arg(64)->Arg(256)->Arg(512);

void BM_GemmBlocked(benchmark::State& state) {
  bench_gemm_backend(state, tensor::blocked_backend());
}
BENCHMARK(BM_GemmBlocked)->Arg(64)->Arg(256)->Arg(512);

void BM_GemmSimd(benchmark::State& state) {
  bench_gemm_backend(state, tensor::simd_backend());
}
BENCHMARK(BM_GemmSimd)->Arg(64)->Arg(256)->Arg(512);

void BM_GemmPrepackedSmallBatch(benchmark::State& state) {
  // The serving decode shape (batch x 128 -> 784) with the decoder weight
  // prepacked once, vs re-packing panels inside every gemm call.
  const auto m = static_cast<std::size_t>(state.range(0));
  common::Pcg32 rng(12);
  const Tensor a = Tensor::randn({m, 128}, rng);
  const Tensor w = Tensor::randn({784, 128}, rng);  // (out, in) dense layout
  const Tensor bias = Tensor::randn({784}, rng);
  const tensor::Backend& be = tensor::blocked_backend();
  tensor::BackendScope scope(&be);
  const tensor::PackedWeights packed =
      be.pack_b(w.data().data(), 128, 784, /*transpose_b=*/true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::gemm_bias_act_prepacked(a, packed, bias));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * m * 128 * 784));
}
BENCHMARK(BM_GemmPrepackedSmallBatch)->Arg(1)->Arg(4)->Arg(32);

/// The serving decoder (latent 128 -> 456 -> 784, the trainer's export
/// shape) with weight prepack on — shared by the decode-path benchmarks.
std::unique_ptr<nn::Sequential> make_decode_model() {
  common::Pcg32 rng(19);
  auto model = std::make_unique<nn::Sequential>();
  model->emplace<nn::Dense>(128, 456, rng);
  model->emplace<nn::ReLU>();
  model->emplace<nn::Dense>(456, 784, rng);
  model->emplace<nn::Sigmoid>();
  model->set_weight_prepack(true);
  return model;
}

void BM_SequentialDecode(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto model = make_decode_model();
  common::Pcg32 rng(23);
  const Tensor x = Tensor::randn({batch, 128}, rng);
  tensor::BackendScope scope(&tensor::simd_backend());
  nn::InferContext ctx;
  Tensor out;
  model->infer_into(x, out, ctx);  // warm: buffers + weight packs
  for (auto _ : state) {
    model->infer_into(x, out, ctx);
    benchmark::DoNotOptimize(out.data().data());
  }
}
BENCHMARK(BM_SequentialDecode)->Arg(1)->Arg(4);

void BM_PlanDecode(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  const auto model = make_decode_model();
  const auto plan = nn::InferPlan::compile(*model, &tensor::simd_backend());
  common::Pcg32 rng(23);
  const Tensor x = Tensor::randn({batch, 128}, rng);
  tensor::BackendScope scope(&tensor::simd_backend());
  nn::InferContext ctx;
  Tensor out;
  plan->run(x, out, ctx);  // warm: buffers + arena reserve
  for (auto _ : state) {
    plan->run(x, out, ctx);
    benchmark::DoNotOptimize(out.data().data());
  }
}
BENCHMARK(BM_PlanDecode)->Arg(1)->Arg(4);

void BM_DenseForward(benchmark::State& state) {
  common::Pcg32 rng(2);
  nn::Dense dense(784, 128, rng);
  const Tensor x = Tensor::uniform({64, 784}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense.forward(x, false));
  }
}
BENCHMARK(BM_DenseForward);

void BM_Conv2dForward(benchmark::State& state) {
  common::Pcg32 rng(3);
  nn::Conv2d conv(3, 8, 3, 1, 1, 32, 32, rng);
  const Tensor x = Tensor::uniform({16, 3 * 32 * 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dTrainStep(benchmark::State& state) {
  common::Pcg32 rng(4);
  nn::Conv2d conv(3, 8, 3, 1, 1, 32, 32, rng);
  const Tensor x = Tensor::uniform({16, 3 * 32 * 32}, rng);
  const Tensor g = Tensor::uniform({16, 8 * 32 * 32}, rng);
  for (auto _ : state) {
    (void)conv.forward(x, true);
    benchmark::DoNotOptimize(conv.backward(g));
    conv.zero_grad();
  }
}
BENCHMARK(BM_Conv2dTrainStep);

void BM_HuberLoss(benchmark::State& state) {
  common::Pcg32 rng(5);
  nn::HuberLoss loss(1.0f);
  const Tensor p = Tensor::uniform({64, 784}, rng);
  const Tensor t = Tensor::uniform({64, 784}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(loss.value(p, t));
    benchmark::DoNotOptimize(loss.gradient(p, t));
  }
}
BENCHMARK(BM_HuberLoss);

void BM_OrcoTrainRound(benchmark::State& state) {
  core::SystemConfig cfg;
  cfg.orco.input_dim = 784;
  cfg.orco.latent_dim = 128;
  cfg.field.device_count = 12;
  cfg.field.radio_range_m = 60.0;
  core::OrcoDcsSystem sys(cfg);
  common::Pcg32 rng(6);
  const Tensor batch = Tensor::uniform({64, 784}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.orchestrator().train_round(batch));
  }
}
BENCHMARK(BM_OrcoTrainRound);

void BM_DcsnetTrainRound(benchmark::State& state) {
  baseline::DcsNetConfig cfg;
  baseline::DcsNetSystem sys(data::kMnistGeometry, cfg, wsn::ChannelConfig{},
                             core::ComputeModel{});
  common::Pcg32 rng(7);
  const Tensor batch = Tensor::uniform({64, 784}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.orchestrator().train_round(batch));
  }
}
BENCHMARK(BM_DcsnetTrainRound);

void BM_MessageRoundTrip(benchmark::State& state) {
  common::Pcg32 rng(8);
  const core::LatentBatchMsg msg{0, Tensor::uniform({64, 128}, rng)};
  for (auto _ : state) {
    const auto bytes = msg.serialize();
    benchmark::DoNotOptimize(core::LatentBatchMsg::deserialize(bytes));
  }
}
BENCHMARK(BM_MessageRoundTrip);

void BM_SyntheticMnist(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    data::MnistConfig cfg;
    cfg.count = 64;
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(data::make_synthetic_mnist(cfg));
  }
}
BENCHMARK(BM_SyntheticMnist);

void BM_SyntheticGtsrb(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    data::GtsrbConfig cfg;
    cfg.count = 64;
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(data::make_synthetic_gtsrb(cfg));
  }
}
BENCHMARK(BM_SyntheticGtsrb);

void BM_DistributedEncode(benchmark::State& state) {
  const auto devices = static_cast<std::size_t>(state.range(0));
  wsn::FieldConfig field_cfg;
  field_cfg.device_count = devices;
  field_cfg.radio_range_m = 50.0;
  const wsn::Field field(field_cfg);
  const wsn::AggregationTree tree(field, wsn::RadioModel{});
  core::OrcoConfig cfg;
  cfg.input_dim = devices;
  cfg.latent_dim = 16;
  common::Pcg32 rng(9);
  const auto encoder = core::build_encoder(cfg, rng);
  const core::DistributedEncoder dist(
      tree, core::make_encoder_shares(*encoder, devices));
  const Tensor readings = Tensor::uniform({devices}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.encode(readings));
  }
}
BENCHMARK(BM_DistributedEncode)->Arg(16)->Arg(64)->Arg(128);

// --- BENCH_gemm.json -------------------------------------------------------
// Hand-timed GFLOP/s per backend per shape (square kernels plus the serving
// decode shapes), written next to the binary's working directory. The
// committed copy is the baseline future kernel PRs must beat.

struct GemmShape {
  std::size_t m, k, n;
};

constexpr double gemm_flop(const GemmShape& s) {
  return 2.0 * static_cast<double>(s.m) * static_cast<double>(s.k) *
         static_cast<double>(s.n);
}

/// Every hand-timed number below is best-of-kTimingReps: each rep re-runs
/// the timed loop until >= 0.2 s of measured work, and the fastest rep
/// wins, so a stray scheduler hiccup can't poison the committed baseline.
constexpr int kTimingReps = 3;

template <typename Fn>
double best_gflops(double flop, Fn&& call) {
  call();  // warm-up outside any timed region
  double best = 0.0;
  for (int rep = 0; rep < kTimingReps; ++rep) {
    std::size_t iters = 0;
    common::Stopwatch sw;
    double elapsed = 0.0;
    while (elapsed < 0.2 || iters < 3) {
      call();
      ++iters;
      elapsed = sw.seconds();
    }
    best = std::max(best, flop * static_cast<double>(iters) / elapsed / 1e9);
  }
  return best;
}

double gemm_gflops(const tensor::Backend& be, const GemmShape& s) {
  common::Pcg32 rng(11);
  const Tensor a = Tensor::randn({s.m, s.k}, rng);
  const Tensor b = Tensor::randn({s.k, s.n}, rng);
  Tensor c({s.m, s.n});
  return best_gflops(gemm_flop(s), [&] {
    c.fill(0.0f);
    be.gemm(a.data().data(), b.data().data(), c.data().data(), s.m, s.k, s.n);
  });
}

/// Fused Dense-layout GEMM (x·Wᵀ + bias) GFLOP/s on the given backend,
/// with the weight either prepacked once outside the loop or panel-packed
/// inside every call.
double fused_gflops(const tensor::Backend& be, const GemmShape& s,
                    bool prepacked) {
  common::Pcg32 rng(13);
  const Tensor a = Tensor::randn({s.m, s.k}, rng);
  const Tensor w = Tensor::randn({s.n, s.k}, rng);
  const Tensor bias = Tensor::randn({s.n}, rng);
  tensor::BackendScope scope(&be);
  const tensor::PackedWeights packed =
      be.pack_b(w.data().data(), s.k, s.n, /*transpose_b=*/true);
  return best_gflops(gemm_flop(s), [&] {
    if (prepacked) {
      benchmark::DoNotOptimize(tensor::gemm_bias_act_prepacked(a, packed, bias));
    } else {
      benchmark::DoNotOptimize(tensor::gemm_bias_act(a, w, bias));
    }
  });
}

/// int8 decode GEMM GFLOP/s: uint8 latent codes dequantized on the fly
/// while packing the A panels, against the prepacked decoder weight — the
/// serving fast path that skips the float latent buffer entirely.
double int8_gflops(const tensor::Backend& be, const GemmShape& s) {
  common::Pcg32 rng(17);
  std::vector<std::uint8_t> codes(s.m * s.k);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    codes[i] = static_cast<std::uint8_t>((i * 131u + 17u) & 0xFFu);
  }
  std::vector<float> lo(s.m, -1.0f);
  std::vector<float> scale(s.m, 2.0f / 255.0f);
  const tensor::QuantHeader qh{lo.data(), scale.data()};
  const Tensor w = Tensor::randn({s.n, s.k}, rng);
  const Tensor bias = Tensor::randn({s.n}, rng);
  const tensor::PackedWeights packed =
      be.pack_b(w.data().data(), s.k, s.n, /*transpose_b=*/true);
  Tensor c({s.m, s.n});
  tensor::Epilogue epi;
  epi.bias = bias.data().data();
  return best_gflops(gemm_flop(s), [&] {
    be.gemm_quantized(codes.data(), qh, packed, c.data().data(), s.m, s.k,
                      s.n, epi);
  });
}

void emit_bench_gemm_json() {
  using common::Table;
  const GemmShape shapes[] = {
      {64, 64, 64},    {128, 128, 128}, {256, 256, 256},
      {512, 512, 512}, {8, 128, 784},   {32, 456, 784},
  };
  common::print_section(std::cout, "GEMM GFLOP/s per kernel backend");
  Table table({"m", "k", "n", "reference", "blocked", "simd", "simd/blocked"});
  std::ofstream json("BENCH_gemm.json");
  json << "{\n  \"flop_metric\": \"GFLOP/s\",\n  \"simd_isa\": \""
       << tensor::simd_isa() << "\",\n  \"shapes\": [\n";
  const std::size_t count = sizeof(shapes) / sizeof(shapes[0]);
  for (std::size_t i = 0; i < count; ++i) {
    const GemmShape& s = shapes[i];
    const double ref = gemm_gflops(tensor::reference_backend(), s);
    const double blk = gemm_gflops(tensor::blocked_backend(), s);
    const double simd = gemm_gflops(tensor::simd_backend(), s);
    table.add_row({std::to_string(s.m), std::to_string(s.k),
                   std::to_string(s.n), Table::num(ref, 2),
                   Table::num(blk, 2), Table::num(simd, 2),
                   Table::num(simd / blk, 2)});
    json << "    {\"m\": " << s.m << ", \"k\": " << s.k << ", \"n\": " << s.n
         << ", \"reference_gflops\": " << ref
         << ", \"blocked_gflops\": " << blk
         << ", \"blocked_vs_reference\": " << blk / ref
         << ", \"simd_gflops\": " << simd
         << ", \"simd_vs_blocked\": " << simd / blk << "}"
         << (i + 1 < count ? "," : "") << "\n";
  }
  json << "  ],\n";

  // Small-batch serving decode: the per-call B-panel packing dominates when
  // m <= 4, so the prepacked path (pack once, reuse) must beat the plain
  // blocked fused path, and the int8 path (simd backend, dequant fused into
  // the A pack) must beat the float32 prepacked path — it reads a quarter
  // of the A bytes. Rows land in the same BENCH_gemm.json under
  // "prepacked_small_batch".
  const GemmShape decode_shapes[] = {
      {1, 128, 784}, {2, 128, 784}, {4, 128, 784}, {8, 128, 784},
      {4, 456, 784},
  };
  common::print_section(std::cout, "Prepacked decode GEMM GFLOP/s");
  Table ptable({"m", "k", "n", "blocked fused", "prepacked", "simd prepacked",
                "int8 simd", "int8/f32"});
  json << "  \"prepacked_small_batch\": [\n";
  const std::size_t pcount = sizeof(decode_shapes) / sizeof(decode_shapes[0]);
  for (std::size_t i = 0; i < pcount; ++i) {
    const GemmShape& s = decode_shapes[i];
    const double fused =
        fused_gflops(tensor::blocked_backend(), s, /*prepacked=*/false);
    const double pre =
        fused_gflops(tensor::blocked_backend(), s, /*prepacked=*/true);
    const double simd_pre =
        fused_gflops(tensor::simd_backend(), s, /*prepacked=*/true);
    const double int8 = int8_gflops(tensor::simd_backend(), s);
    ptable.add_row({std::to_string(s.m), std::to_string(s.k),
                    std::to_string(s.n), Table::num(fused, 2),
                    Table::num(pre, 2), Table::num(simd_pre, 2),
                    Table::num(int8, 2), Table::num(int8 / pre, 2)});
    json << "    {\"m\": " << s.m << ", \"k\": " << s.k << ", \"n\": " << s.n
         << ", \"blocked_fused_gflops\": " << fused
         << ", \"prepacked_gflops\": " << pre
         << ", \"prepacked_vs_fused\": " << pre / fused
         << ", \"simd_prepacked_gflops\": " << simd_pre
         << ", \"int8_prepacked_gflops\": " << int8
         << ", \"int8_vs_f32_prepacked\": " << int8 / pre << "}"
         << (i + 1 < pcount ? "," : "") << "\n";
  }
  json << "  ],\n";

  // Whole-decoder decode (latent 128 -> 456 -> 784) through the compiled
  // InferPlan vs Sequential::infer_into, both warmed through one context on
  // the simd backend. The plan removes the per-call chain walk, fusion
  // peephole (a dynamic_cast chain per step) and prepack-cache probe (a
  // lock + version compare per layer) — pure overhead at batch 1, a ~1%
  // effect under a GEMM-bound decode, so the two are timed in alternating
  // pairs and the committed ratio is the median over pairs (the same
  // frequency-drift-cancelling protocol serve_throughput uses for the
  // finetune-overlap p99 ratio). plan_vs_sequential >= 1 at batch 1 is
  // this PR's acceptance bar. Rows land under "planned_decode".
  {
    const auto model = make_decode_model();
    const auto plan =
        nn::InferPlan::compile(*model, &tensor::simd_backend());
    tensor::BackendScope scope(&tensor::simd_backend());
    const double decode_flop =
        2.0 * (128.0 * 456.0 + 456.0 * 784.0);  // per decoded row
    common::print_section(std::cout, "Planned decode vs Sequential");
    Table dtable({"batch", "sequential us", "plan us",
                  "plan/sequential (median of pairs)"});
    json << "  \"planned_decode\": [\n";
    constexpr int kPairs = 9;
    const std::size_t batches[] = {1, 4};
    common::Pcg32 rng(23);
    for (std::size_t i = 0; i < 2; ++i) {
      const std::size_t batch = batches[i];
      const Tensor x = Tensor::randn({batch, 128}, rng);
      const double flop = decode_flop * static_cast<double>(batch);
      nn::InferContext seq_ctx, plan_ctx;
      Tensor seq_out, plan_out;
      model->infer_into(x, seq_out, seq_ctx);  // warm both executors
      plan->run(x, plan_out, plan_ctx);
      // Chunk size targeting ~0.1 s per side so one pair straddles only a
      // narrow window of machine state.
      common::Stopwatch probe;
      for (int it = 0; it < 16; ++it) model->infer_into(x, seq_out, seq_ctx);
      const int chunk = std::max(
          16, static_cast<int>(0.1 / (probe.seconds() / 16.0)));
      std::vector<double> ratios;
      double best_seq = 0.0, best_plan = 0.0;
      for (int pair = 0; pair < kPairs; ++pair) {
        common::Stopwatch seq_sw;
        for (int it = 0; it < chunk; ++it) {
          model->infer_into(x, seq_out, seq_ctx);
        }
        const double seq_s = seq_sw.seconds();
        common::Stopwatch plan_sw;
        for (int it = 0; it < chunk; ++it) plan->run(x, plan_out, plan_ctx);
        const double plan_s = plan_sw.seconds();
        ratios.push_back(seq_s / plan_s);
        best_seq = std::max(best_seq, chunk / seq_s);
        best_plan = std::max(best_plan, chunk / plan_s);
      }
      std::sort(ratios.begin(), ratios.end());
      const double ratio = ratios[ratios.size() / 2];
      const double seq_us = 1e6 / best_seq;
      const double plan_us = 1e6 / best_plan;
      (void)flop;
      dtable.add_row({std::to_string(batch), Table::num(seq_us, 2),
                      Table::num(plan_us, 2), Table::num(ratio, 3)});
      json << "    {\"batch\": " << batch << ", \"sequential_us\": " << seq_us
           << ", \"plan_us\": " << plan_us
           << ", \"plan_vs_sequential\": " << ratio
           << ", \"pairs\": " << kPairs << "}"
           << (i + 1 < 2 ? "," : "") << "\n";
    }
    json << "  ],\n";
    dtable.print(std::cout);
    std::cout << "\n";
  }

  // Uplink cost of the int8 decode path at the serving latent width: a
  // float32 latent is 4 bytes/element; the kFixed8 payload is an 8-byte
  // [min, max] header plus one code byte per element, decoded inside the
  // GEMM without ever materialising the float latent.
  const std::size_t latent_dim = 128;
  const std::size_t f32_bytes = latent_dim * sizeof(float);
  const std::size_t int8_bytes = core::quantized_payload_bytes(
      latent_dim, core::LatentPrecision::kFixed8);
  common::print_section(std::cout, "Uplink bytes per decode request");
  Table utable({"latent dim", "float32 B", "int8 B", "saved B", "ratio"});
  utable.add_row({std::to_string(latent_dim), std::to_string(f32_bytes),
                  std::to_string(int8_bytes),
                  std::to_string(f32_bytes - int8_bytes),
                  Table::num(static_cast<double>(f32_bytes) /
                                 static_cast<double>(int8_bytes),
                             2)});
  json << "  \"uplink\": {\"latent_dim\": " << latent_dim
       << ", \"float32_bytes_per_request\": " << f32_bytes
       << ", \"int8_bytes_per_request\": " << int8_bytes
       << ", \"saved_bytes_per_request\": " << (f32_bytes - int8_bytes)
       << ", \"compression_ratio\": "
       << static_cast<double>(f32_bytes) / static_cast<double>(int8_bytes)
       << "}\n";
  json << "}\n";
  table.print(std::cout);
  std::cout << "\n";
  ptable.print(std::cout);
  std::cout << "\n";
  utable.print(std::cout);
  std::cout << "\nwrote BENCH_gemm.json\n\n";
}

}  // namespace

int main(int argc, char** argv) {
  // The JSON sweep takes a few seconds and overwrites BENCH_gemm.json in
  // the CWD, so it runs only on a plain invocation (the committed-baseline
  // flow) or when asked for explicitly with --gemm-json; filtered or
  // exploratory google-benchmark runs skip it.
  bool force_json = false;
  bool benchmark_args = false;
  int argc_out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg == "--gemm-json") {
      force_json = true;
      continue;  // strip: google-benchmark would reject it
    }
    if (arg.rfind("--benchmark_", 0) == 0) benchmark_args = true;
    argv[argc_out++] = argv[i];
  }
  argc = argc_out;
  if (force_json || !benchmark_args) emit_bench_gemm_json();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
