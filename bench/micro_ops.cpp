// Micro benchmarks (google-benchmark) for the kernels behind every figure:
// GEMM, conv lowering, losses, protocol round pieces and dataset synthesis.
#include <benchmark/benchmark.h>

#include "baseline/dcsnet.h"
#include "core/orcodcs.h"
#include "data/synthetic_gtsrb.h"
#include "data/synthetic_mnist.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "tensor/matmul.h"

namespace {

using namespace orco;
using tensor::Tensor;

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  common::Pcg32 rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256)->Arg(512);

void BM_DenseForward(benchmark::State& state) {
  common::Pcg32 rng(2);
  nn::Dense dense(784, 128, rng);
  const Tensor x = Tensor::uniform({64, 784}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dense.forward(x, false));
  }
}
BENCHMARK(BM_DenseForward);

void BM_Conv2dForward(benchmark::State& state) {
  common::Pcg32 rng(3);
  nn::Conv2d conv(3, 8, 3, 1, 1, 32, 32, rng);
  const Tensor x = Tensor::uniform({16, 3 * 32 * 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(x, false));
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dTrainStep(benchmark::State& state) {
  common::Pcg32 rng(4);
  nn::Conv2d conv(3, 8, 3, 1, 1, 32, 32, rng);
  const Tensor x = Tensor::uniform({16, 3 * 32 * 32}, rng);
  const Tensor g = Tensor::uniform({16, 8 * 32 * 32}, rng);
  for (auto _ : state) {
    (void)conv.forward(x, true);
    benchmark::DoNotOptimize(conv.backward(g));
    conv.zero_grad();
  }
}
BENCHMARK(BM_Conv2dTrainStep);

void BM_HuberLoss(benchmark::State& state) {
  common::Pcg32 rng(5);
  nn::HuberLoss loss(1.0f);
  const Tensor p = Tensor::uniform({64, 784}, rng);
  const Tensor t = Tensor::uniform({64, 784}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(loss.value(p, t));
    benchmark::DoNotOptimize(loss.gradient(p, t));
  }
}
BENCHMARK(BM_HuberLoss);

void BM_OrcoTrainRound(benchmark::State& state) {
  core::SystemConfig cfg;
  cfg.orco.input_dim = 784;
  cfg.orco.latent_dim = 128;
  cfg.field.device_count = 12;
  cfg.field.radio_range_m = 60.0;
  core::OrcoDcsSystem sys(cfg);
  common::Pcg32 rng(6);
  const Tensor batch = Tensor::uniform({64, 784}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.orchestrator().train_round(batch));
  }
}
BENCHMARK(BM_OrcoTrainRound);

void BM_DcsnetTrainRound(benchmark::State& state) {
  baseline::DcsNetConfig cfg;
  baseline::DcsNetSystem sys(data::kMnistGeometry, cfg, wsn::ChannelConfig{},
                             core::ComputeModel{});
  common::Pcg32 rng(7);
  const Tensor batch = Tensor::uniform({64, 784}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sys.orchestrator().train_round(batch));
  }
}
BENCHMARK(BM_DcsnetTrainRound);

void BM_MessageRoundTrip(benchmark::State& state) {
  common::Pcg32 rng(8);
  const core::LatentBatchMsg msg{0, Tensor::uniform({64, 128}, rng)};
  for (auto _ : state) {
    const auto bytes = msg.serialize();
    benchmark::DoNotOptimize(core::LatentBatchMsg::deserialize(bytes));
  }
}
BENCHMARK(BM_MessageRoundTrip);

void BM_SyntheticMnist(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    data::MnistConfig cfg;
    cfg.count = 64;
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(data::make_synthetic_mnist(cfg));
  }
}
BENCHMARK(BM_SyntheticMnist);

void BM_SyntheticGtsrb(benchmark::State& state) {
  std::uint64_t seed = 0;
  for (auto _ : state) {
    data::GtsrbConfig cfg;
    cfg.count = 64;
    cfg.seed = ++seed;
    benchmark::DoNotOptimize(data::make_synthetic_gtsrb(cfg));
  }
}
BENCHMARK(BM_SyntheticGtsrb);

void BM_DistributedEncode(benchmark::State& state) {
  const auto devices = static_cast<std::size_t>(state.range(0));
  wsn::FieldConfig field_cfg;
  field_cfg.device_count = devices;
  field_cfg.radio_range_m = 50.0;
  const wsn::Field field(field_cfg);
  const wsn::AggregationTree tree(field, wsn::RadioModel{});
  core::OrcoConfig cfg;
  cfg.input_dim = devices;
  cfg.latent_dim = 16;
  common::Pcg32 rng(9);
  const auto encoder = core::build_encoder(cfg, rng);
  const core::DistributedEncoder dist(
      tree, core::make_encoder_shares(*encoder, devices));
  const Tensor readings = Tensor::uniform({devices}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dist.encode(readings));
  }
}
BENCHMARK(BM_DistributedEncode)->Arg(16)->Arg(64)->Arg(128);

}  // namespace
