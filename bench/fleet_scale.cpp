// Fleet scale-out bench: ~100k registered tenants on one box.
//
// Drives an EdgeFleet (consistent-hash routing, warm/cold tiering, delta
// replication) and measures the tiering contract in three phases:
//
//   1. registration — 100k tenants register without materializing anything;
//   2. churn — a Zipf-skewed closed-loop stream over the full tenant
//      population; the resident set must stay bounded by warm_capacity
//      (the JSON commits the *sampled maximum*, not a post-drain count)
//      while the long tail cycles through the cold tier;
//   3. hot serving under churn — the "no p99 cliff" measurement: hot-rank
//      traffic measured while a background thread keeps forcing cold
//      wakes at a fixed rate. Hot p99 must stay within 15% of a
//      single-cell always-warm baseline running the same serving stack
//      with zero tiering activity.
//
// Plus a determinism check: a cold wake must reconstruct bitwise-
// identically to a never-demoted fleet.
//
// Emits BENCH_fleet.json. Workload scales with ORCO_BENCH_SCALE
// (bench_common.h conventions); the committed output is scale 1.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "common/rng.h"
#include "fleet/fleet.h"
#include "serve/serve.h"

namespace {

using namespace orco;
using fleet::EdgeFleet;
using fleet::FleetConfig;
using serve::DecodeResponse;
using serve::ResponseStatus;
using tensor::Tensor;

constexpr std::size_t kInputDim = 64;
constexpr std::size_t kLatentDim = 16;
constexpr std::size_t kHotRanks = 32;  // "hot tenant" = rank < kHotRanks
constexpr double kZipfS = 1.05;
constexpr double kHotP99Bar = 1.15;
// Background cold-wake rate during the hot phase. Each churn submit forces
// a wake (the tenant is far outside the warm head) plus the LRU demotion
// that admits it.
constexpr auto kChurnGap = std::chrono::milliseconds(40);

std::string bench_backend() {
  const char* env = std::getenv("ORCO_BACKEND");
  return (env != nullptr && *env != '\0') ? env : "simd";
}

core::SystemConfig tenant_template() {
  core::SystemConfig cfg;
  cfg.orco.input_dim = kInputDim;
  cfg.orco.latent_dim = kLatentDim;
  cfg.orco.decoder_layers = 1;
  cfg.orco.batch_size = 16;
  cfg.orco.seed = 4242;
  cfg.field.device_count = 4;
  cfg.field.radio_range_m = 60.0;
  return cfg;
}

FleetConfig fleet_config(std::size_t cells, std::size_t warm_capacity,
                         const std::string& cold_dir) {
  FleetConfig cfg;
  cfg.replicas = cells;
  cfg.vnodes = 96;
  cfg.warm_capacity = warm_capacity;
  cfg.cold_dir = cold_dir;
  cfg.system = tenant_template();
  cfg.serve.shard_count = 2;
  cfg.serve.backend = bench_backend();
  cfg.serve.queue.capacity = 4096;
  cfg.serve.queue.max_wait_us = 100;
  // 100k tenants x ~8KB of telemetry rows is the one per-tenant cost the
  // fleet cannot lazily materialize — turn it off.
  cfg.serve.per_tenant_telemetry = false;
  return cfg;
}

/// Zipf(s) sampler over ranks [0, n): cumulative table + binary search.
/// Tenant id == rank, so rank 0 is the hottest tenant.
class ZipfTable {
 public:
  ZipfTable(std::size_t n, double s) : cumulative_(n) {
    double total = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), s);
      cumulative_[r] = total;
    }
    for (double& c : cumulative_) c /= total;
  }

  std::size_t sample(common::Pcg32& rng) const {
    const double u = rng.uniform();
    const auto it =
        std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
    return it == cumulative_.end() ? cumulative_.size() - 1
                                   : static_cast<std::size_t>(
                                         it - cumulative_.begin());
  }

  /// Probability mass of ranks [0, k).
  double head_mass(std::size_t k) const {
    return k == 0 ? 0.0 : cumulative_[std::min(k, cumulative_.size()) - 1];
  }

 private:
  std::vector<double> cumulative_;
};

double percentile(std::vector<double>& sorted_in_place, double q) {
  if (sorted_in_place.empty()) return 0.0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const double idx = q * static_cast<double>(sorted_in_place.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sorted_in_place.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sorted_in_place[lo] * (1.0 - frac) + sorted_in_place[hi] * frac;
}

std::vector<Tensor> make_latents(std::size_t count) {
  common::Pcg32 rng(909);
  std::vector<Tensor> latents;
  latents.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    latents.push_back(Tensor::randn({1, kLatentDim}, rng));
  }
  return latents;
}

struct TrafficResult {
  double seconds = 0.0;
  double rps = 0.0;
  double hot_p50_us = 0.0;
  double hot_p99_us = 0.0;
  double all_p50_us = 0.0;
  double all_p99_us = 0.0;
  std::size_t hot_requests = 0;
  std::size_t ok = 0;
  std::size_t not_ok = 0;
  std::size_t resident_max = 0;
};

/// Closed-loop Zipf traffic against a fleet; per-request latency is the
/// server-side enqueue->response time, bucketed hot/all by tenant rank.
TrafficResult drive(EdgeFleet& fleet, const ZipfTable& zipf,
                    std::size_t requests, std::size_t tenant_count,
                    std::size_t threads) {
  const std::vector<Tensor> latents = make_latents(256);
  std::vector<std::vector<double>> hot_lat(threads);
  std::vector<std::vector<double>> all_lat(threads);
  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> not_ok{0};
  std::atomic<bool> done{false};
  std::atomic<std::size_t> resident_max{0};

  // Residency sampler: the bound the JSON commits to is the *observed
  // maximum* during traffic, not a post-drain steady state.
  std::thread sampler([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::size_t now = fleet.resident_count();
      std::size_t seen = resident_max.load(std::memory_order_relaxed);
      while (now > seen && !resident_max.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  common::Stopwatch sw;
  std::vector<std::thread> clients;
  const std::size_t per_client = requests / threads;
  for (std::size_t c = 0; c < threads; ++c) {
    clients.emplace_back([&, c] {
      common::Pcg32 rng(1000 + c);
      for (std::size_t i = 0; i < per_client; ++i) {
        const std::size_t rank = zipf.sample(rng);
        const fleet::ClusterId id =
            static_cast<fleet::ClusterId>(rank % tenant_count);
        const DecodeResponse response =
            fleet.submit(id, latents[(c * per_client + i) % latents.size()])
                .get();
        if (response.status == ResponseStatus::kOk) {
          ok.fetch_add(1, std::memory_order_relaxed);
          all_lat[c].push_back(response.latency_us);
          if (rank < kHotRanks) hot_lat[c].push_back(response.latency_us);
        } else {
          not_ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& client : clients) client.join();
  TrafficResult result;
  result.seconds = sw.seconds();
  done.store(true, std::memory_order_release);
  sampler.join();

  std::vector<double> hot;
  std::vector<double> all;
  for (std::size_t c = 0; c < threads; ++c) {
    hot.insert(hot.end(), hot_lat[c].begin(), hot_lat[c].end());
    all.insert(all.end(), all_lat[c].begin(), all_lat[c].end());
  }
  result.hot_requests = hot.size();
  result.ok = ok.load();
  result.not_ok = not_ok.load();
  result.rps = static_cast<double>(result.ok) / result.seconds;
  result.hot_p50_us = percentile(hot, 0.50);
  result.hot_p99_us = percentile(hot, 0.99);
  result.all_p50_us = percentile(all, 0.50);
  result.all_p99_us = percentile(all, 0.99);
  result.resident_max = resident_max.load();
  return result;
}

/// Bitwise contract: warm response == post-demotion cold-wake response ==
/// a never-demoted fleet's response, for the same latent.
bool cold_wake_bitwise_equal(const std::string& dir_a,
                             const std::string& dir_b) {
  common::Pcg32 rng(31);
  const Tensor latent = Tensor::randn({1, kLatentDim}, rng);
  const fleet::ClusterId id = 42;

  EdgeFleet churned(fleet_config(2, 8, dir_a));
  churned.register_tenant(id);
  churned.start();
  const DecodeResponse warm = churned.submit(id, latent).get();
  if (warm.status != ResponseStatus::kOk) return false;
  if (!churned.demote(id)) return false;
  const DecodeResponse woken = churned.submit(id, latent).get();
  if (woken.status != ResponseStatus::kOk) return false;

  EdgeFleet pristine(fleet_config(2, 8, dir_b));
  pristine.register_tenant(id);
  pristine.start();
  const DecodeResponse reference = pristine.submit(id, latent).get();
  if (reference.status != ResponseStatus::kOk) return false;

  return woken.reconstruction.allclose(warm.reconstruction, 0.0f) &&
         woken.reconstruction.allclose(reference.reconstruction, 0.0f);
}

std::string temp_dir(const char* name) {
  const char* base = std::getenv("TMPDIR");
  std::string dir = (base != nullptr && *base != '\0') ? base : "/tmp";
  dir += std::string("/orco_bench_fleet_") + name;
  std::filesystem::remove_all(dir);
  return dir;
}

}  // namespace

int main() {
  const std::size_t tenants =
      std::max<std::size_t>(kHotRanks * 2, bench::scaled(100000));
  const std::size_t warm_capacity =
      std::clamp<std::size_t>(tenants / 200, 64, 512);
  const std::size_t churn_requests =
      std::max<std::size_t>(200, bench::scaled(16000));
  const std::size_t hot_requests =
      std::max<std::size_t>(100, bench::scaled(8000));
  const ZipfTable zipf(tenants, kZipfS);

  std::cout << "fleet_scale: " << tenants << " tenants, " << churn_requests
            << " churn + " << hot_requests << " hot requests, warm capacity "
            << warm_capacity << ", backend " << bench_backend() << "\n";
  std::cout << "zipf(s=" << kZipfS << ") head mass of top-" << kHotRanks
            << " ranks: " << zipf.head_mass(kHotRanks) << "\n\n";

  // ---- phase 1: registration ------------------------------------------------
  FleetConfig cfg = fleet_config(/*cells=*/4, warm_capacity, temp_dir("main"));
  EdgeFleet fleet(cfg);
  common::Stopwatch reg_sw;
  for (std::size_t id = 0; id < tenants; ++id) {
    fleet.register_tenant(static_cast<fleet::ClusterId>(id));
  }
  const double reg_seconds = reg_sw.seconds();
  std::cout << "registered " << fleet.registered_count() << " tenants in "
            << reg_seconds << " s ("
            << static_cast<double>(tenants) / reg_seconds
            << " tenants/s), resident " << fleet.resident_count() << "\n";

  // ---- phase 2: full-population churn ---------------------------------------
  fleet.start();
  const TrafficResult churn =
      drive(fleet, zipf, churn_requests, tenants, /*threads=*/4);

  // ---- phase 3: hot serving while cold wakes keep landing -------------------
  // A background thread forces a steady trickle of cold wakes (each one a
  // wake + an LRU demotion) while closed-loop clients hammer the hot head.
  // This is the p99-cliff probe: if a cold wake ever blocked warm tenants
  // (a fleet-wide lock, a stalled shard worker), hot p99 would jump by the
  // multi-ms wake latency, not percents.
  for (std::size_t id = 0; id < kHotRanks; ++id) {
    fleet.warm(static_cast<fleet::ClusterId>(id));
  }
  std::atomic<bool> churn_done{false};
  std::atomic<std::size_t> churn_wakes{0};
  std::thread churner([&] {
    const std::vector<Tensor> latents = make_latents(8);
    // Walk the deep tail so every submit is a genuine cold wake.
    std::size_t i = 0;
    const std::size_t tail_base = warm_capacity * 8;
    while (!churn_done.load(std::memory_order_acquire)) {
      const fleet::ClusterId id = static_cast<fleet::ClusterId>(
          tail_base + (i * 7919) % (tenants - tail_base));
      ++i;
      if (fleet.submit(id, latents[i % latents.size()]).get().status ==
          ResponseStatus::kOk) {
        churn_wakes.fetch_add(1, std::memory_order_relaxed);
      }
      std::this_thread::sleep_for(kChurnGap);
    }
  });
  const ZipfTable hot_zipf(kHotRanks, kZipfS);  // conditioned on the head
  const TrafficResult hot =
      drive(fleet, hot_zipf, hot_requests, kHotRanks, /*threads=*/2);
  churn_done.store(true, std::memory_order_release);
  churner.join();

  const fleet::FleetStats stats = fleet.stats();
  const auto wake_hist = fleet.cold_wake_histogram();
  fleet.shutdown();

  common::Table table({"metric", "value"});
  table.add_row({"churn rps", common::Table::num(churn.rps, 1)});
  table.add_row({"churn all p99 (us)", common::Table::num(churn.all_p99_us, 1)});
  table.add_row({"resident max", std::to_string(churn.resident_max)});
  table.add_row({"cold builds", std::to_string(stats.cold_builds)});
  table.add_row({"cold wakes", std::to_string(stats.cold_wakes)});
  table.add_row({"demotions", std::to_string(stats.demotions)});
  table.add_row(
      {"wake p50 (us)", common::Table::num(wake_hist.quantile(0.50), 1)});
  table.add_row(
      {"wake p99 (us)", common::Table::num(wake_hist.quantile(0.99), 1)});
  table.add_row({"hot-phase wakes", std::to_string(churn_wakes.load())});
  table.add_row({"hot p50 (us)", common::Table::num(hot.hot_p50_us, 1)});
  table.add_row({"hot p99 (us)", common::Table::num(hot.hot_p99_us, 1)});
  table.print(std::cout);

  // ---- baseline: single always-warm cell, hot ranks only --------------------
  // Same serving stack (cell runtime + registry snapshots), zero tiering
  // activity: every hot tenant stays resident for the whole run. The hot
  // phase above must stay within kHotP99Bar of this.
  FleetConfig base_cfg =
      fleet_config(/*cells=*/1, kHotRanks * 2, temp_dir("baseline"));
  base_cfg.replicate = false;
  EdgeFleet baseline(base_cfg);
  for (std::size_t id = 0; id < kHotRanks; ++id) {
    baseline.register_tenant(static_cast<fleet::ClusterId>(id));
  }
  baseline.start();
  for (std::size_t id = 0; id < kHotRanks; ++id) {
    baseline.warm(static_cast<fleet::ClusterId>(id));
  }
  const TrafficResult base =
      drive(baseline, hot_zipf, hot_requests, kHotRanks, /*threads=*/2);
  baseline.shutdown();

  const double hot_p99_ratio =
      base.hot_p99_us > 0.0 ? hot.hot_p99_us / base.hot_p99_us : 0.0;
  std::cout << "baseline hot p99 " << base.hot_p99_us << " us, under-churn hot "
            << "p99 " << hot.hot_p99_us << " us, ratio " << hot_p99_ratio
            << " (bar " << kHotP99Bar << ")\n";

  // ---- contracts ------------------------------------------------------------
  const bool resident_bounded =
      churn.resident_max <= warm_capacity && hot.resident_max <= warm_capacity;
  const bool bitwise_equal =
      cold_wake_bitwise_equal(temp_dir("bw_a"), temp_dir("bw_b"));
  const bool hot_p99_pass = hot_p99_ratio <= kHotP99Bar;
  const bool no_errors = churn.not_ok == 0 && hot.not_ok == 0;
  std::cout << "resident bounded: " << (resident_bounded ? "yes" : "NO")
            << ", cold wake bitwise-equal: " << (bitwise_equal ? "yes" : "NO")
            << ", hot p99 pass: " << (hot_p99_pass ? "yes" : "NO") << "\n";

  std::ofstream json("BENCH_fleet.json");
  json << "{\n";
  json << "  \"config\": {\"tenants\": " << tenants
       << ", \"cells\": " << cfg.replicas << ", \"vnodes\": " << cfg.vnodes
       << ", \"warm_capacity\": " << warm_capacity
       << ", \"churn_requests\": " << churn_requests
       << ", \"hot_requests\": " << hot_requests
       << ", \"hot_ranks\": " << kHotRanks << ", \"zipf_s\": " << kZipfS
       << ", \"backend\": \"" << bench_backend() << "\"},\n";
  json << "  \"registration\": {\"seconds\": " << reg_seconds
       << ", \"tenants_per_sec\": "
       << static_cast<double>(tenants) / reg_seconds << "},\n";
  json << "  \"churn\": {\"seconds\": " << churn.seconds
       << ", \"rps\": " << churn.rps << ", \"ok\": " << churn.ok
       << ", \"errors\": " << churn.not_ok
       << ", \"all_p50_us\": " << churn.all_p50_us
       << ", \"all_p99_us\": " << churn.all_p99_us
       << ", \"resident_max\": " << churn.resident_max << "},\n";
  json << "  \"hot_under_churn\": {\"seconds\": " << hot.seconds
       << ", \"rps\": " << hot.rps << ", \"ok\": " << hot.ok
       << ", \"errors\": " << hot.not_ok
       << ", \"background_wakes\": " << churn_wakes.load()
       << ", \"hot_p50_us\": " << hot.hot_p50_us
       << ", \"hot_p99_us\": " << hot.hot_p99_us
       << ", \"resident_max\": " << hot.resident_max << "},\n";
  json << "  \"baseline\": {\"rps\": " << base.rps
       << ", \"hot_p50_us\": " << base.hot_p50_us
       << ", \"hot_p99_us\": " << base.hot_p99_us << "},\n";
  json << "  \"cold_wake_us\": {\"count\": " << wake_hist.count
       << ", \"p50\": " << wake_hist.quantile(0.50)
       << ", \"p99\": " << wake_hist.quantile(0.99)
       << ", \"max\": " << wake_hist.max_us << "},\n";
  json << "  \"fleet\": {\"resident_max\": " << churn.resident_max
       << ", \"cold_builds\": " << stats.cold_builds
       << ", \"cold_wakes\": " << stats.cold_wakes
       << ", \"demotions\": " << stats.demotions
       << ", \"demotion_aborts\": " << stats.demotion_aborts
       << ", \"capacity_overrides\": " << stats.capacity_overrides
       << ", \"wake_coalesced\": " << stats.wake_coalesced
       << ", \"deltas_shipped\": " << stats.deltas_shipped
       << ", \"full_ships\": " << stats.full_ships
       << ", \"delta_bytes\": " << stats.delta_bytes << "},\n";
  json << "  \"contract\": {\"hot_p99_ratio\": " << hot_p99_ratio
       << ", \"hot_p99_bar\": " << kHotP99Bar
       << ", \"hot_p99_pass\": " << (hot_p99_pass ? "true" : "false")
       << ", \"resident_bounded\": " << (resident_bounded ? "true" : "false")
       << ", \"cold_wake_bitwise_equal\": "
       << (bitwise_equal ? "true" : "false")
       << ", \"no_errors\": " << (no_errors ? "true" : "false")
       << ", \"pass\": "
       << ((resident_bounded && bitwise_equal && no_errors && hot_p99_pass)
               ? "true"
               : "false")
       << "}\n";
  json << "}\n";
  std::cout << "\nwrote BENCH_fleet.json\n";
  return 0;
}
