#!/usr/bin/env python3
"""Project lint: textual invariants the compiler does not check.

Rules
-----
1. hot-path: inside a ``// ORCO_HOT_PATH BEGIN`` .. ``// ORCO_HOT_PATH END``
   region there must be no ``operator new`` (``new`` expressions,
   ``make_unique``/``make_shared``), no ``std::function``, and no mutex
   lock acquisition (``MutexLock``/``lock_guard``/``unique_lock``/
   ``scoped_lock``/``shared_lock`` or a ``.lock()`` call). These regions
   mark the per-event record paths (metrics record, trace emit) whose
   contract is "relaxed atomics only" — an allocation or lock slipped into
   one is a real regression even when every test still passes.
2. headers: every public header under src/ compiles standalone
   (``$CXX -fsyntax-only`` on a TU that includes just that header), so no
   header silently leans on its includers' includes.
3. todo-tags: every TODO/FIXME in src/, tests/, bench/, examples/ carries
   an issue tag — ``TODO(#123)`` or ``TODO(name)`` — so stale intentions
   stay attributable.

Exit status: 0 clean, 1 violations found, 2 usage/internal error.

``--self-test`` seeds one violation of each rule into a temp tree and
verifies the lint catches all of them — run it in CI so a silently
broken rule cannot pass as "no violations".
"""

from __future__ import annotations

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

HOT_BEGIN = re.compile(r"//\s*ORCO_HOT_PATH\s+BEGIN\b")
HOT_END = re.compile(r"//\s*ORCO_HOT_PATH\s+END\b")

# Each entry: (human label, pattern). Patterns are matched per line with
# comments stripped.
HOT_PATH_BANS = [
    ("operator new", re.compile(r"\bnew\b|\bmake_unique\b|\bmake_shared\b")),
    ("std::function", re.compile(r"\bstd::function\b")),
    (
        "mutex lock acquisition",
        re.compile(
            r"\bMutexLock\b|\bWriterMutexLock\b|\bReaderMutexLock\b"
            r"|\block_guard\b|\bunique_lock\b|\bscoped_lock\b|\bshared_lock\b"
            r"|\.lock\s*\("
        ),
    ),
]

TODO_RE = re.compile(r"\b(TODO|FIXME)\b")
TODO_TAGGED_RE = re.compile(r"\b(?:TODO|FIXME)\s*\([^)]+\)")

SOURCE_DIRS = ["src", "tests", "bench", "examples"]
SOURCE_EXTS = {".h", ".hpp", ".cpp", ".cc"}


def source_files(root: str) -> list[str]:
    out = []
    for d in SOURCE_DIRS:
        base = os.path.join(root, d)
        if not os.path.isdir(base):
            continue
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if os.path.splitext(name)[1] in SOURCE_EXTS:
                    out.append(os.path.join(dirpath, name))
    return out


def strip_line_comment(line: str) -> str:
    # Good enough for this codebase: no block comments spanning hot regions.
    i = line.find("//")
    return line if i < 0 else line[:i]


def check_hot_paths(root: str) -> list[str]:
    errors = []
    for path in source_files(root):
        rel = os.path.relpath(path, root)
        in_region = False
        begin_line = 0
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if HOT_BEGIN.search(line):
                    if in_region:
                        errors.append(
                            f"{rel}:{lineno}: nested ORCO_HOT_PATH BEGIN "
                            f"(previous at line {begin_line})"
                        )
                    in_region = True
                    begin_line = lineno
                    continue
                if HOT_END.search(line):
                    if not in_region:
                        errors.append(
                            f"{rel}:{lineno}: ORCO_HOT_PATH END without BEGIN"
                        )
                    in_region = False
                    continue
                if not in_region:
                    continue
                code = strip_line_comment(line)
                for label, pat in HOT_PATH_BANS:
                    if pat.search(code):
                        errors.append(
                            f"{rel}:{lineno}: {label} inside ORCO_HOT_PATH "
                            f"region (begins line {begin_line}): "
                            f"{line.strip()}"
                        )
        if in_region:
            errors.append(
                f"{rel}:{begin_line}: unterminated ORCO_HOT_PATH region"
            )
    return errors


def check_todo_tags(root: str) -> list[str]:
    errors = []
    for path in source_files(root):
        rel = os.path.relpath(path, root)
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                if TODO_RE.search(line) and not TODO_TAGGED_RE.search(line):
                    errors.append(
                        f"{rel}:{lineno}: untagged TODO/FIXME (write "
                        f"TODO(#issue) or TODO(name)): {line.strip()}"
                    )
    return errors


def check_headers(root: str, cxx: str, jobs: int) -> list[str]:
    headers = [
        p
        for p in source_files(root)
        if os.path.splitext(p)[1] in {".h", ".hpp"}
        and os.path.relpath(p, root).startswith("src" + os.sep)
    ]
    errors = []
    procs: list[tuple[str, subprocess.Popen]] = []

    def reap(block_under: int) -> None:
        while len(procs) > block_under:
            rel, proc = procs.pop(0)
            out, _ = proc.communicate()
            if proc.returncode != 0:
                tail = out.decode(errors="replace").strip().splitlines()
                errors.append(
                    f"{rel}: does not compile standalone:\n    "
                    + "\n    ".join(tail[:8])
                )

    with tempfile.TemporaryDirectory() as tmp:
        for path in headers:
            rel = os.path.relpath(path, root)
            tu = os.path.join(tmp, rel.replace(os.sep, "_") + ".cpp")
            with open(tu, "w", encoding="utf-8") as f:
                f.write(f'#include "{os.path.relpath(path, os.path.join(root, "src"))}"\n')
            proc = subprocess.Popen(
                [cxx, "-std=c++20", "-fsyntax-only",
                 "-I", os.path.join(root, "src"), tu],
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
            )
            procs.append((rel, proc))
            reap(jobs)
        reap(0)
    return errors


def run_all(root: str, cxx: str, jobs: int, skip_headers: bool) -> list[str]:
    errors = check_hot_paths(root)
    errors += check_todo_tags(root)
    if not skip_headers:
        errors += check_headers(root, cxx, jobs)
    return errors


def self_test(cxx: str, jobs: int) -> int:
    """Seed one violation per rule in a copied tree; all must be caught."""
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        root = os.path.join(tmp, "repo")
        os.makedirs(os.path.join(root, "src", "selftest"))
        shutil.copytree(
            os.path.join(REPO, "src", "common"),
            os.path.join(root, "src", "common"),
        )

        # Rule 1: a lock acquisition inside a hot-path region.
        with open(
            os.path.join(root, "src", "selftest", "hot.cpp"), "w",
            encoding="utf-8",
        ) as f:
            f.write(
                "#include \"common/mutex.h\"\n"
                "// ORCO_HOT_PATH BEGIN\n"
                "void record(orco::common::Mutex& mu) {\n"
                "  orco::common::MutexLock lock(mu);\n"
                "}\n"
                "// ORCO_HOT_PATH END\n"
            )
        got = check_hot_paths(root)
        if not any("hot.cpp" in e and "mutex lock" in e for e in got):
            failures.append(f"hot-path rule missed the seeded lock: {got}")

        # Rule 2: a header that references an undeclared name.
        with open(
            os.path.join(root, "src", "selftest", "broken.h"), "w",
            encoding="utf-8",
        ) as f:
            f.write("#pragma once\ninline int broken() { return kUndeclared; }\n")
        got = check_headers(root, cxx, jobs)
        if not any("broken.h" in e for e in got):
            failures.append(f"header rule missed the seeded broken header: {got}")
        if any("common" in e for e in got):
            failures.append(f"header rule flagged a known-good header: {got}")

        # Rule 3: an untagged TODO.
        with open(
            os.path.join(root, "src", "selftest", "todo.cpp"), "w",
            encoding="utf-8",
        ) as f:
            f.write("// TODO: make this better someday\n")
        got = check_todo_tags(root)
        if not any("todo.cpp" in e for e in got):
            failures.append(f"todo rule missed the seeded untagged TODO: {got}")
        if any("tagged" in e and "todo.cpp" not in e for e in got):
            failures.append(f"todo rule flagged unexpected files: {got}")

    if failures:
        print("check_invariants self-test FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("check_invariants self-test passed (all seeded violations caught)")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", default=REPO, help="repo root to lint")
    ap.add_argument(
        "--cxx", default=os.environ.get("CXX", "c++"),
        help="compiler for the header self-containment rule",
    )
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    ap.add_argument(
        "--skip-headers", action="store_true",
        help="skip the (slower) standalone-header compile rule",
    )
    ap.add_argument(
        "--self-test", action="store_true",
        help="verify the lint catches seeded violations of every rule",
    )
    args = ap.parse_args()

    if args.self_test:
        return self_test(args.cxx, args.jobs)

    if shutil.which(args.cxx) is None and not args.skip_headers:
        print(f"error: compiler '{args.cxx}' not found", file=sys.stderr)
        return 2

    errors = run_all(args.root, args.cxx, args.jobs, args.skip_headers)
    if errors:
        print(f"check_invariants: {len(errors)} violation(s)", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print("check_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
