// Delta-encoded snapshot replication between fleet cells.
//
// When the owning cell publishes a fine-tuned decoder, follower cells need
// the new generation without re-serializing (or deep-copying) the whole
// model on every publish: a fine-tune step typically touches every layer,
// but a partial publish (bias-only adaptation, frozen feature layers)
// should ship only what changed. The scheme:
//
//   SnapshotImage  — one model generation as an ordered list of per-param
//                    blobs. Blobs are immutable and shared_ptr-owned, so
//                    images of consecutive generations share the bytes of
//                    every unchanged parameter.
//   SnapshotDelta  — the changed blobs between a base image and the next
//                    one, keyed by (base_version -> version). A full image
//                    ships when the follower has no usable base.
//   apply_delta    — base + delta -> next image. Unchanged params alias
//                    the base's blobs; changed params alias the delta's.
//                    No byte buffer is ever copied on apply — the test
//                    suite pins that with blob_copy_count().
//
// blob_copy_count() counts every blob *serialization* (the one deep copy,
// paid on the publishing cell when the image is built). Shipping and
// applying deltas must not move it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/sequential.h"

namespace orco::fleet {

using ClusterId = std::uint64_t;

/// One serialized parameter: name + content hash + shared immutable bytes
/// (model_io framing for a single param: rank, dims, f32 data).
struct ParamBlob {
  std::string name;
  std::uint64_t hash = 0;  // FNV-1a over `bytes`
  std::shared_ptr<const std::vector<std::byte>> bytes;
};

/// One model generation, decomposed per parameter, in params() order.
struct SnapshotImage {
  std::uint64_t version = 0;
  std::vector<ParamBlob> params;

  bool empty() const noexcept { return params.empty(); }
  /// Payload bytes (sum of blob sizes), ignoring sharing.
  std::size_t byte_size() const;
};

/// The wire unit: blobs that changed between base_version and version,
/// with their positions in the param list. base_version 0 = full image
/// (every param present, applicable without a base).
struct SnapshotDelta {
  ClusterId tenant = 0;
  std::uint64_t base_version = 0;
  std::uint64_t version = 0;
  std::size_t param_count = 0;  // total params in the target image
  std::vector<std::uint32_t> changed_index;
  std::vector<ParamBlob> changed;

  bool full() const noexcept { return base_version == 0; }
  /// Bytes this delta actually ships (changed blobs only).
  std::size_t byte_size() const;
};

/// Total per-param blob serializations this process has performed — the
/// deep copies. Built images bump it once per param; make_delta /
/// apply_delta never do (they only alias shared blobs).
std::uint64_t blob_copy_count() noexcept;

/// Serializes `model`'s parameters into an image stamped `version`. The
/// one deep copy of the pipeline (bumps blob_copy_count once per param).
SnapshotImage image_of(const nn::Sequential& model, std::uint64_t version);

/// The delta from `base` to `next` (same param list; throws on mismatch).
/// Changed params alias `next`'s blobs. next.version must exceed
/// base.version.
SnapshotDelta make_delta(const SnapshotImage& base, const SnapshotImage& next);

/// A base-less delta carrying every param of `next` (aliased, not copied).
SnapshotDelta full_delta(const SnapshotImage& next);

/// base + delta -> the delta's target image. Unchanged params alias
/// `base`'s blobs, changed ones the delta's; nothing is copied. Throws
/// when delta.base_version does not match base.version (a follower that
/// skipped a generation must request a full ship instead).
SnapshotImage apply_delta(const SnapshotImage& base, const SnapshotDelta& delta);

/// Materializes an image into a live model (names/shapes must match — the
/// reactivation path when a follower is promoted). This is a weight copy
/// into the model, not a blob copy; blob_copy_count is untouched.
void load_image(nn::Sequential& model, const SnapshotImage& image);

}  // namespace orco::fleet
