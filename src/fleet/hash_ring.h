// HashRing — consistent-hash routing of tenants onto edge cells.
//
// Each cell (replica) contributes `vnodes` points to a 64-bit hash ring;
// a tenant routes to the owner of the first point clockwise of its hashed
// id. Virtual nodes smooth the per-cell share (stddev of a cell's share
// shrinks ~1/sqrt(vnodes)), and consistency bounds churn: adding a cell
// moves only the keys that now land on the new cell's points (~1/(n+1) of
// the space), removing one moves only the removed cell's keys — every
// other tenant keeps its owner, so a topology change never invalidates
// the whole fleet's warm state.
//
// route() is the fleet's per-request fast path: a mix + binary search over
// an immutable-between-topology-changes sorted vector — no lock, no
// allocation (see the ORCO_HOT_PATH region). Topology changes
// (add/remove_replica) rebuild the vector and are NOT thread-safe against
// concurrent route(); the EdgeFleet fixes its topology at construction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace orco::fleet {

class HashRing {
 public:
  /// An empty ring; add_replica before routing.
  explicit HashRing(std::size_t vnodes = 96);

  /// A ring over replicas 0..replica_count-1.
  HashRing(std::size_t replica_count, std::size_t vnodes);

  /// splitmix64 finalizer — the repo-standard stable hash (the same mix
  /// serve::shard_for uses), exposed so tests can hash keys the way the
  /// ring does.
  static std::uint64_t mix(std::uint64_t x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  /// Adds a replica's vnode points. Re-adding an id throws.
  void add_replica(std::uint32_t replica);

  /// Removes a replica's points; false when the id is not on the ring.
  bool remove_replica(std::uint32_t replica);

  /// The replica owning `key`. The ring must be non-empty.
  std::uint32_t route(std::uint64_t key) const noexcept;

  std::size_t replica_count() const noexcept { return replicas_.size(); }
  std::size_t point_count() const noexcept { return points_.size(); }
  std::size_t vnodes() const noexcept { return vnodes_; }
  bool empty() const noexcept { return points_.empty(); }

 private:
  struct Point {
    std::uint64_t hash;
    std::uint32_t replica;
  };

  void rebuild();

  std::size_t vnodes_;
  std::vector<std::uint32_t> replicas_;
  std::vector<Point> points_;  // sorted by hash
};

}  // namespace orco::fleet
