// ResidencyManager — the fleet's warm-set bookkeeping and LRU victim picker.
//
// The fleet keeps at most `capacity` tenants warm (fully materialized:
// system, registry slot, prepacked decoder). Every submit stamps its tenant
// with a Lamport tick — a process-wide atomic counter, so the hot path pays
// one relaxed fetch_add instead of a clock syscall — and when the warm set
// overflows, victims() returns the least-recently-stamped warm tenants.
// The manager only tracks membership and picks victims; actually demoting
// a tenant (draining, serializing, tearing down) is the EdgeFleet's job,
// which is why victims() is advisory: a candidate that turns out busy is
// skipped and the next-oldest is tried.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace orco::fleet {

using ClusterId = std::uint64_t;

class ResidencyManager {
 public:
  explicit ResidencyManager(std::size_t capacity) : capacity_(capacity) {}

  /// Next Lamport stamp. Hot-path safe: one relaxed atomic increment.
  std::uint64_t tick() noexcept {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  /// Reserve a residency slot ahead of materialization. The warm bound is
  /// enforced at admission: the reservation succeeds only while
  /// warm + reserved fits under capacity, so concurrent wakers cannot
  /// overshoot the warm set even transiently. add_warm() consumes the
  /// caller's reservation; release() returns an unused one (failed wake).
  bool try_reserve() {
    common::MutexLock lock(mu_);
    if (warm_.size() + reserved_ >= capacity_) return false;
    ++reserved_;
    return true;
  }

  /// Unconditional reservation — the liveness escape hatch when every warm
  /// tenant is unevictable (e.g. pinned by a long training job). The warm
  /// set may exceed capacity until the next demotion.
  void force_reserve() {
    common::MutexLock lock(mu_);
    ++reserved_;
  }

  void release() {
    common::MutexLock lock(mu_);
    if (reserved_ > 0) --reserved_;
  }

  void add_warm(ClusterId id) {
    common::MutexLock lock(mu_);
    if (reserved_ > 0) --reserved_;
    if (std::find(warm_.begin(), warm_.end(), id) == warm_.end()) {
      warm_.push_back(id);
    }
  }

  void remove_warm(ClusterId id) {
    common::MutexLock lock(mu_);
    const auto it = std::find(warm_.begin(), warm_.end(), id);
    if (it != warm_.end()) warm_.erase(it);
  }

  std::size_t warm_count() const {
    common::MutexLock lock(mu_);
    return warm_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  bool over_capacity() const {
    common::MutexLock lock(mu_);
    return warm_.size() > capacity_;
  }

  /// Up to `limit` warm tenants, least-recently-stamped first. `stamp_of`
  /// maps id -> last-touch stamp (called under the manager's lock — keep it
  /// a plain load). Advisory: the caller revalidates each candidate before
  /// demoting it.
  template <typename StampFn>
  std::vector<ClusterId> victims(std::size_t limit, StampFn&& stamp_of) const {
    struct Candidate {
      std::uint64_t stamp;
      ClusterId id;
    };
    std::vector<Candidate> candidates;
    {
      common::MutexLock lock(mu_);
      candidates.reserve(warm_.size());
      for (const ClusterId id : warm_) {
        candidates.push_back({stamp_of(id), id});
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& a, const Candidate& b) {
                return a.stamp != b.stamp ? a.stamp < b.stamp : a.id < b.id;
              });
    if (candidates.size() > limit) candidates.resize(limit);
    std::vector<ClusterId> out;
    out.reserve(candidates.size());
    for (const Candidate& c : candidates) out.push_back(c.id);
    return out;
  }

 private:
  const std::size_t capacity_;
  std::atomic<std::uint64_t> clock_{0};
  mutable common::Mutex mu_;
  std::vector<ClusterId> warm_ ORCO_GUARDED_BY(mu_);
  std::size_t reserved_ ORCO_GUARDED_BY(mu_) = 0;
};

}  // namespace orco::fleet
