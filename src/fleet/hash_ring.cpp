#include "fleet/hash_ring.h"

#include <algorithm>

#include "common/check.h"

namespace orco::fleet {

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes) {
  ORCO_CHECK(vnodes > 0, "HashRing needs at least one vnode per replica");
}

HashRing::HashRing(std::size_t replica_count, std::size_t vnodes)
    : HashRing(vnodes) {
  for (std::size_t r = 0; r < replica_count; ++r) {
    add_replica(static_cast<std::uint32_t>(r));
  }
}

void HashRing::add_replica(std::uint32_t replica) {
  ORCO_CHECK(std::find(replicas_.begin(), replicas_.end(), replica) ==
                 replicas_.end(),
             "replica " << replica << " already on the ring");
  replicas_.push_back(replica);
  rebuild();
}

bool HashRing::remove_replica(std::uint32_t replica) {
  const auto it = std::find(replicas_.begin(), replicas_.end(), replica);
  if (it == replicas_.end()) return false;
  replicas_.erase(it);
  rebuild();
  return true;
}

void HashRing::rebuild() {
  points_.clear();
  points_.reserve(replicas_.size() * vnodes_);
  for (const std::uint32_t replica : replicas_) {
    for (std::size_t v = 0; v < vnodes_; ++v) {
      // Double-mix decorrelates the per-replica point sets: a single mix of
      // (replica << 32 | v) would give adjacent replicas near-identical
      // point patterns shifted by one mix step.
      const std::uint64_t h =
          mix(mix(static_cast<std::uint64_t>(replica) << 32 | v) ^
              0x66c6ef3720b1a51dULL);
      points_.push_back({h, replica});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              return a.hash != b.hash ? a.hash < b.hash
                                      : a.replica < b.replica;
            });
}

std::uint32_t HashRing::route(std::uint64_t key) const noexcept {
  // ORCO_HOT_PATH BEGIN (fleet route: mix + binary search over the
  // immutable point vector — no allocation, no lock; this runs once per
  // submitted request)
  const std::uint64_t h = mix(key);
  std::size_t lo = 0;
  std::size_t hi = points_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (points_[mid].hash < h) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // First point at or clockwise of h; wrap to the first point of the ring.
  return points_[lo == points_.size() ? 0 : lo].replica;
  // ORCO_HOT_PATH END
}

}  // namespace orco::fleet
