// ColdStore — the fleet's on-disk cold tier for demoted tenants.
//
// A demoted tenant's serving state collapses to one record: the encoder +
// decoder weights (model_io framing), the decoder generation counter, and
// the tenant's QoS policy. Everything else — registry slot, queue lane,
// prepacked weight panels, reconstruction-cache entries — is derived state
// that reactivation rebuilds. Records are written crash-safely (temp file
// + atomic rename, same discipline as OrcoDcsSystem::save_checkpoint), so
// a crash mid-demotion leaves either the previous record or the complete
// new one, never a torn file; a torn/truncated read throws instead of
// yielding garbage weights.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/tenant_policy.h"

namespace orco::fleet {

using ClusterId = std::uint64_t;

/// Everything needed to rebuild a tenant's serving state from disk.
struct ColdRecord {
  std::uint64_t model_version = 1;
  serve::TenantPolicy policy;
  std::vector<std::byte> encoder_params;  // nn::save_params framing
  std::vector<std::byte> decoder_params;
};

class ColdStore {
 public:
  /// Creates `dir` (and parents) if missing.
  explicit ColdStore(std::string dir);

  /// Atomically writes the tenant's record (temp + rename). Concurrent
  /// saves of the *same* tenant must be externally serialized — the fleet
  /// holds the tenant's mutex across demotion.
  void save(ClusterId id, const ColdRecord& record);

  /// Reads and validates a record; throws on missing/torn/mismatched files.
  ColdRecord load(ClusterId id) const;

  bool contains(ClusterId id) const;
  /// Deletes the record; false when none existed.
  bool remove(ClusterId id);

  std::string path_for(ClusterId id) const;
  const std::string& dir() const noexcept { return dir_; }

  /// Lifetime counters (the thundering-herd regression test asserts
  /// loads() == 1 under 8 concurrent wakers).
  std::uint64_t saves() const noexcept {
    return saves_.load(std::memory_order_relaxed);
  }
  std::uint64_t loads() const noexcept {
    return loads_.load(std::memory_order_relaxed);
  }

 private:
  std::string dir_;
  std::atomic<std::uint64_t> saves_{0};
  mutable std::atomic<std::uint64_t> loads_{0};
};

}  // namespace orco::fleet
