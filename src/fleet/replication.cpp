#include "fleet/replication.h"

#include <atomic>
#include <cstring>

#include "common/check.h"
#include "common/serialize.h"

namespace orco::fleet {

namespace {

std::atomic<std::uint64_t> g_blob_copies{0};

std::uint64_t fnv1a(std::span<const std::byte> bytes) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::byte b : bytes) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t blob_copy_count() noexcept {
  return g_blob_copies.load(std::memory_order_relaxed);
}

std::size_t SnapshotImage::byte_size() const {
  std::size_t total = 0;
  for (const ParamBlob& p : params) {
    if (p.bytes != nullptr) total += p.bytes->size();
  }
  return total;
}

std::size_t SnapshotDelta::byte_size() const {
  std::size_t total = 0;
  for (const ParamBlob& p : changed) {
    if (p.bytes != nullptr) total += p.bytes->size();
  }
  return total;
}

SnapshotImage image_of(const nn::Sequential& model, std::uint64_t version) {
  SnapshotImage image;
  image.version = version;
  // params() is non-const (it hands out mutable gradient views too), but
  // building an image only reads the values; the registry's snapshot
  // decoders are const by contract.
  auto params = const_cast<nn::Sequential&>(model).params();
  image.params.reserve(params.size());
  for (const auto& p : params) {
    common::ByteWriter writer;
    writer.write_string(p.name);
    writer.write_u64(p.value->rank());
    for (std::size_t d = 0; d < p.value->rank(); ++d) {
      writer.write_u64(p.value->dim(d));
    }
    writer.write_f32_span(p.value->data());
    ParamBlob blob;
    blob.name = p.name;
    blob.bytes =
        std::make_shared<const std::vector<std::byte>>(writer.bytes());
    blob.hash = fnv1a(*blob.bytes);
    g_blob_copies.fetch_add(1, std::memory_order_relaxed);
    image.params.push_back(std::move(blob));
  }
  return image;
}

SnapshotDelta make_delta(const SnapshotImage& base, const SnapshotImage& next) {
  ORCO_CHECK(base.params.size() == next.params.size(),
             "delta across images with different param lists: "
                 << base.params.size() << " vs " << next.params.size());
  ORCO_CHECK(next.version > base.version,
             "delta must move the version forward: " << base.version << " -> "
                                                     << next.version);
  SnapshotDelta delta;
  delta.base_version = base.version;
  delta.version = next.version;
  delta.param_count = next.params.size();
  for (std::size_t i = 0; i < next.params.size(); ++i) {
    const ParamBlob& a = base.params[i];
    const ParamBlob& b = next.params[i];
    ORCO_CHECK(a.name == b.name, "param order mismatch at " << i << ": "
                                                            << a.name << " vs "
                                                            << b.name);
    // Hash first (cheap reject), then bytes — equal hashes are confirmed by
    // an exact compare so a collision can never drop a real change. Blobs
    // already shared between the images (the common case for unchanged
    // params of consecutive generations) short-circuit on pointer equality.
    if (a.bytes == b.bytes ||
        (a.hash == b.hash && *a.bytes == *b.bytes)) {
      continue;
    }
    delta.changed_index.push_back(static_cast<std::uint32_t>(i));
    delta.changed.push_back(b);  // aliases next's blob
  }
  return delta;
}

SnapshotDelta full_delta(const SnapshotImage& next) {
  SnapshotDelta delta;
  delta.base_version = 0;
  delta.version = next.version;
  delta.param_count = next.params.size();
  delta.changed_index.reserve(next.params.size());
  delta.changed = next.params;  // aliases every blob
  for (std::size_t i = 0; i < next.params.size(); ++i) {
    delta.changed_index.push_back(static_cast<std::uint32_t>(i));
  }
  return delta;
}

SnapshotImage apply_delta(const SnapshotImage& base,
                          const SnapshotDelta& delta) {
  SnapshotImage next;
  next.version = delta.version;
  if (delta.full()) {
    ORCO_CHECK(delta.changed.size() == delta.param_count,
               "full delta must carry every param");
    next.params = delta.changed;  // aliases the delta's blobs
    return next;
  }
  ORCO_CHECK(base.version == delta.base_version,
             "delta applies on version " << delta.base_version
                                         << " but follower holds "
                                         << base.version);
  ORCO_CHECK(base.params.size() == delta.param_count,
             "delta param count mismatch");
  next.params = base.params;  // aliases the base's blobs
  for (std::size_t k = 0; k < delta.changed_index.size(); ++k) {
    const std::size_t i = delta.changed_index[k];
    ORCO_CHECK(i < next.params.size(), "delta index out of range");
    next.params[i] = delta.changed[k];  // aliases the delta's blob
  }
  return next;
}

void load_image(nn::Sequential& model, const SnapshotImage& image) {
  auto params = model.params();
  ORCO_CHECK(params.size() == image.params.size(),
             "model has " << params.size() << " params, image has "
                          << image.params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    const ParamBlob& blob = image.params[i];
    ORCO_CHECK(blob.bytes != nullptr, "image blob " << i << " is empty");
    common::ByteReader reader(*blob.bytes);
    const std::string name = reader.read_string();
    ORCO_CHECK(name == params[i].name,
               "param order mismatch: expected " << params[i].name << ", got "
                                                 << name);
    const std::uint64_t rank = reader.read_u64();
    tensor::Shape shape(rank);
    for (auto& d : shape) d = reader.read_u64();
    ORCO_CHECK(shape == params[i].value->shape(),
               "shape mismatch for " << name);
    const auto data = reader.read_f32_vector();
    ORCO_ENSURE(data.size() == params[i].value->numel(),
                "data size mismatch for " << name);
    std::copy(data.begin(), data.end(), params[i].value->data().begin());
  }
  model.invalidate_weight_cache();
}

}  // namespace orco::fleet
