#include "fleet/fleet.h"

#include <chrono>
#include <exception>
#include <thread>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "nn/infer_context.h"
#include "nn/model_io.h"
#include "obs/fleet_metrics.h"
#include "tensor/backend.h"

namespace orco::fleet {

EdgeFleet::EdgeFleet(const FleetConfig& config)
    : config_(config),
      ring_(config.replicas, config.vnodes),
      residency_(config.warm_capacity),
      cold_(config.cold_dir) {
  ORCO_CHECK(config.replicas > 0, "a fleet needs at least one cell");
  ORCO_CHECK(config.warm_capacity > 0,
             "warm_capacity 0 could never serve anything");
  cells_.reserve(config.replicas);
  for (std::size_t i = 0; i < config.replicas; ++i) {
    auto cell = std::make_unique<Cell>();
    if (config_.trainer_threads > 0) {
      train::TrainerConfig trainer_config = config_.trainer;
      trainer_config.worker_threads = config_.trainer_threads;
      // Fleet invariant: a warm tenant always has a live snapshot — the
      // submit fast path opens only after registration published one.
      trainer_config.publish_on_register = true;
      if (trainer_config.serve_backend.empty()) {
        trainer_config.serve_backend = config_.serve.backend;
      }
      cell->trainer = std::make_unique<train::TrainerRuntime>(trainer_config);
      cell->registry = cell->trainer->registry();
    } else {
      cell->registry = std::make_shared<train::ModelRegistry>();
    }
    serve::ServeConfig serve_config = config_.serve;
    serve_config.model_registry = cell->registry;
    cell->runtime = std::make_unique<serve::ServerRuntime>(serve_config);
    if (config_.replicate && config_.replicas > 1) {
      cell->registry->set_publish_hook(
          [this, i](ClusterId tenant,
                    const std::shared_ptr<const train::ModelSnapshot>& snap) {
            replicate(i, tenant, *snap);
          });
    }
    cells_.push_back(std::move(cell));
  }
}

EdgeFleet::~EdgeFleet() { shutdown(); }

void EdgeFleet::start() {
  ORCO_CHECK(!stopped_.load(), "cannot restart a shut-down EdgeFleet");
  if (started_.exchange(true)) return;
  for (auto& cell : cells_) {
    if (cell->trainer != nullptr) cell->trainer->start();
    cell->runtime->start();
  }
}

void EdgeFleet::shutdown() {
  if (stopped_.exchange(true)) return;
  accepting_.store(false, std::memory_order_release);
  for (auto& cell : cells_) {
    // Trainers first so their final publishes land before serving drains;
    // then drop the hook so nothing fans out into a dying fleet.
    if (cell->trainer != nullptr) cell->trainer->shutdown();
    cell->registry->set_publish_hook(nullptr);
    cell->runtime->shutdown();
  }
}

void EdgeFleet::register_tenant(ClusterId id) {
  register_tenant(id, config_.serve.queue.default_policy);
}

void EdgeFleet::register_tenant(ClusterId id,
                                const serve::TenantPolicy& policy) {
  {
    common::WriterMutexLock lock(tenants_mu_);
    ORCO_CHECK(tenants_.find(id) == tenants_.end(),
               "tenant " << id << " already registered with the fleet");
    auto state = std::make_unique<TenantState>();
    state->policy = policy;
    tenants_.emplace(id, std::move(state));
  }
  registered_.fetch_add(1, std::memory_order_relaxed);
  refresh_population_gauges();
}

EdgeFleet::TenantState* EdgeFleet::find_tenant(ClusterId id) const {
  common::ReaderMutexLock lock(tenants_mu_);
  const auto it = tenants_.find(id);
  return it == tenants_.end() ? nullptr : it->second.get();
}

std::future<serve::DecodeResponse> EdgeFleet::immediate(
    serve::ResponseStatus status, std::string detail) {
  std::promise<serve::DecodeResponse> promise;
  serve::DecodeResponse response;
  response.status = status;
  response.detail = std::move(detail);
  promise.set_value(std::move(response));
  return promise.get_future();
}

std::future<serve::DecodeResponse> EdgeFleet::submit(ClusterId id,
                                                     Tensor latent) {
  if (!accepting_.load(std::memory_order_acquire)) {
    return immediate(serve::ResponseStatus::kShutdown);
  }
  TenantState* const t = find_tenant(id);
  if (t == nullptr) {
    return immediate(serve::ResponseStatus::kUnknownCluster);
  }
  // ORCO_HOT_PATH BEGIN (fleet route-and-submit fast path: consistent-hash
  // route + residency touch + the inflight/demoting store-load fence — a
  // handful of atomics, no lock, no allocation. The inflight increment
  // must happen before the serving/demoting loads (both seq_cst): either
  // this submit sees a demotion and diverts, or the demoter's drain wait
  // sees this submit.)
  const std::uint32_t cell_index = ring_.route(id);
  t->last_touch.store(residency_.tick(), std::memory_order_relaxed);
  t->inflight.fetch_add(1, std::memory_order_seq_cst);
  const bool fast = t->serving.load(std::memory_order_seq_cst) &&
                    !t->demoting.load(std::memory_order_seq_cst);
  // ORCO_HOT_PATH END
  serve::ServerRuntime& runtime = *cells_[cell_index]->runtime;
  if (fast) {
    // Holding the inflight claim across the enqueue pins the tenant's
    // registration: demotion cannot pass its drain wait until the request
    // is safely in the cell's queue (where the demoter's sentinel barrier
    // flushes behind it).
    auto future = runtime.submit(id, std::move(latent));
    t->inflight.fetch_sub(1, std::memory_order_seq_cst);
    return future;
  }
  t->inflight.fetch_sub(1, std::memory_order_seq_cst);
  // Slow path: the tenant is cold, mid-wake, or mid-demotion. Make it warm
  // (single-flight) and retry; a demotion racing in between just sends us
  // around again.
  for (;;) {
    if (!accepting_.load(std::memory_order_acquire)) {
      return immediate(serve::ResponseStatus::kShutdown);
    }
    try {
      ensure_warm(id, *t);
    } catch (const std::exception& e) {
      return immediate(serve::ResponseStatus::kInternalError, e.what());
    }
    t->inflight.fetch_add(1, std::memory_order_seq_cst);
    const bool ready = t->serving.load(std::memory_order_seq_cst) &&
                       !t->demoting.load(std::memory_order_seq_cst);
    if (ready) {
      auto future = runtime.submit(id, std::move(latent));
      t->inflight.fetch_sub(1, std::memory_order_seq_cst);
      return future;
    }
    t->inflight.fetch_sub(1, std::memory_order_seq_cst);
  }
}

void EdgeFleet::warm(ClusterId id) {
  TenantState* const t = find_tenant(id);
  ORCO_CHECK(t != nullptr, "tenant " << id << " is not registered");
  ensure_warm(id, *t);
}

bool EdgeFleet::resident(ClusterId id) const {
  const TenantState* const t = find_tenant(id);
  return t != nullptr && t->serving.load(std::memory_order_acquire);
}

void EdgeFleet::ensure_warm(ClusterId id, TenantState& t) {
  {
    common::MutexLock lock(t.mu);
    bool coalesced = false;
    for (;;) {
      if (t.warm) return;
      if (!t.waking) break;
      if (!coalesced) {
        // This waker arrived while another thread's wake was in flight —
        // it will ride that load instead of issuing its own.
        coalesced = true;
        wake_coalesced_.fetch_add(1, std::memory_order_relaxed);
        obs::fleet_metrics().wake_coalesced->inc();
      }
      t.cv.wait(lock.native());
    }
    // A woken waiter that finds the tenant neither warm nor waking (the
    // previous wake failed) falls through here and takes the wake over.
    t.waking = true;
  }
  common::Stopwatch timer;
  std::exception_ptr error;
  try {
    admit(id);
    activate(id, t);
  } catch (...) {
    // activate() never consumed the admission slot (add_warm is its last
    // fallible-free step), so hand the reservation back.
    residency_.release();
    error = std::current_exception();
  }
  if (error == nullptr) {
    // Open the fast path before releasing the waiters so they don't spin
    // through a warm-but-not-serving window.
    t.serving.store(true, std::memory_order_seq_cst);
  }
  {
    common::MutexLock lock(t.mu);
    t.waking = false;
    if (error == nullptr) t.warm = true;
  }
  t.cv.notify_all();
  if (error != nullptr) std::rethrow_exception(error);
  const double us = timer.seconds() * 1e6;
  cold_wake_hist_.record(us);
  obs::fleet_metrics().cold_wake_us->record(us);
}

void EdgeFleet::activate(ClusterId id, TenantState& t) {
  const std::uint32_t cell_index = ring_.route(id);
  Cell& cell = *cells_[cell_index];
  core::SystemConfig system_config = config_.system;
  // Distinct deterministic initial weights per tenant.
  system_config.orco.seed = HashRing::mix(system_config.orco.seed ^ id);
  auto system = std::make_shared<core::OrcoDcsSystem>(system_config);
  bool loaded = false;
  if (cold_.contains(id)) {
    const ColdRecord record = cold_.load(id);
    nn::load_params(system->aggregator().encoder(), record.encoder_params);
    nn::load_params(system->edge().decoder(), record.decoder_params);
    // Continue the decoder generation sequence where the demoted tenant
    // left off, so post-reactivation publishes stay strictly monotonic
    // against anything a client may have cached.
    system->edge().set_model_version(record.model_version);
    loaded = true;
  }
  if (cell.trainer != nullptr) {
    // publish_on_register is forced on, so this also installs the
    // tenant's first snapshot (prepack-warmed) in the cell registry.
    cell.trainer->register_tenant(id, system, t.policy,
                                  config_.trainer.default_budget);
  } else {
    publish_snapshot(cell, id, *system);
  }
  cell.runtime->register_cluster(id, system, t.policy);
  {
    common::MutexLock lock(t.mu);
    t.system = system;
  }
  residency_.add_warm(id);
  if (loaded) {
    cold_wakes_.fetch_add(1, std::memory_order_relaxed);
    obs::fleet_metrics().cold_wakes->inc();
  } else {
    cold_builds_.fetch_add(1, std::memory_order_relaxed);
  }
  refresh_population_gauges();
}

void EdgeFleet::publish_snapshot(Cell& cell, ClusterId id,
                                 core::OrcoDcsSystem& system) {
  // Trainer-less cells still serve through registry snapshots (that is
  // what replication images); mirror TrainerRuntime::export_and_publish.
  const core::OrcoConfig& orco = system.config().orco;
  auto snapshot = std::make_shared<train::ModelSnapshot>();
  snapshot->version = system.edge().model_version();
  std::unique_ptr<nn::Sequential> decoder = system.export_decoder_clone();
  if (orco.prepack_decoder) decoder->set_weight_prepack(true);
  snapshot->decoder = std::shared_ptr<const nn::Sequential>(std::move(decoder));
  {
    // Compile the snapshot's plan (packing the weights) under the backend
    // shards will decode on, so the first post-publish decode pays no
    // packing cost — same policy as TrainerRuntime::export_and_publish.
    const tensor::Backend* warm_backend = system.edge().backend();
    if (warm_backend == nullptr) {
      warm_backend = tensor::resolve_backend(config_.serve.backend);
    }
    snapshot->plan = nn::InferPlan::compile(*snapshot->decoder, warm_backend);
  }
  snapshot->encoder =
      std::shared_ptr<const nn::Sequential>(system.export_encoder_clone());
  snapshot->latent_dim = orco.latent_dim;
  snapshot->output_dim = orco.input_dim;
  snapshot->backend = system.edge().backend();
  cell.registry->publish(id, std::move(snapshot));
}

bool EdgeFleet::demote(ClusterId id) {
  TenantState* const t = find_tenant(id);
  if (t == nullptr) return false;
  common::Stopwatch timer;
  common::MutexLock lock(t->mu);
  if (!t->warm || t->waking) return false;
  const std::uint32_t cell_index = ring_.route(id);
  Cell& cell = *cells_[cell_index];
  t->demoting.store(true, std::memory_order_seq_cst);
  const auto abort_demotion = [&]() {
    t->demoting.store(false, std::memory_order_seq_cst);
    demotion_aborts_.fetch_add(1, std::memory_order_relaxed);
    obs::fleet_metrics().demotion_aborts->inc();
    return false;
  };
  // Phase 1 — fence the fast path: after the demoting store above, every
  // new submit diverts to the slow path (and blocks on t->mu, which we
  // hold); wait out the handful already between their increment and the
  // queue hand-off.
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(config_.demote_drain_us);
  while (t->inflight.load(std::memory_order_seq_cst) != 0) {
    if (std::chrono::steady_clock::now() >= deadline) return abort_demotion();
    std::this_thread::yield();
  }
  // Phase 2 — flush the tenant's queue lane. Lanes are per-tenant FIFO, so
  // a sentinel decode answered kOk proves every earlier request was
  // answered too; kShed means the lane is still loaded — yield to traffic.
  if (cell.runtime->running()) {
    const std::size_t latent_dim = t->system->config().orco.latent_dim;
    std::future<serve::DecodeResponse> barrier = cell.runtime->submit(
        id, Tensor({1, latent_dim}));
    if (barrier.get().status != serve::ResponseStatus::kOk) {
      return abort_demotion();
    }
  } else if (cell.runtime->shard(cell.runtime->shard_of(id))
                 .queue()
                 .size(id) > 0) {
    return abort_demotion();
  }
  // Phase 3 — detach training; refused unless the tenant is quiescent.
  if (cell.trainer != nullptr && !cell.trainer->unregister_tenant(id)) {
    return abort_demotion();
  }
  // Phase 4 — serialize. Traffic is fenced, the lane is flushed and the
  // trainer detached: this thread is the only toucher of the system.
  core::OrcoDcsSystem& system = *t->system;
  ColdRecord record;
  record.model_version = system.model_version();
  record.policy = t->policy;
  record.encoder_params = nn::save_params(system.aggregator().encoder());
  record.decoder_params = nn::save_params(system.edge().decoder());
  cold_.save(id, record);
  // Phase 5 — evict derived state: registry slot (shards finish in-flight
  // batches on their pinned snapshots), runtime registration + queue lane,
  // and the system itself (prepacked panels, caches, optimizer state).
  cell.registry->remove(id);
  cell.runtime->unregister_cluster(id);
  {
    common::MutexLock repl_lock(repl_mu_);
    // Invalidate the publisher-side replication base: the first publish
    // after reactivation ships a full image, not a delta on stale state.
    last_shipped_.erase(id);
  }
  t->system.reset();
  t->warm = false;
  // serving must drop before demoting: the fast path re-opens the moment
  // demoting clears, and it must find the gate closed.
  t->serving.store(false, std::memory_order_seq_cst);
  t->demoting.store(false, std::memory_order_seq_cst);
  residency_.remove_warm(id);
  demotions_.fetch_add(1, std::memory_order_relaxed);
  obs::fleet_metrics().demotions->inc();
  const double us = timer.seconds() * 1e6;
  demote_hist_.record(us);
  obs::fleet_metrics().demote_us->record(us);
  refresh_population_gauges();
  return true;
}

void EdgeFleet::admit(ClusterId id) {
  // Admission control: a wake takes its residency slot *before*
  // materializing anything, so the warm set never exceeds capacity — even
  // transiently, with every client thread waking a different tenant at
  // once. When the set is full, evict the LRU victim first; a victim that
  // is busy (inflight claim, mid-wake) is skipped and the sweep retried.
  // If nothing is evictable for an extended stretch (every warm tenant
  // pinned by a training job, say), availability wins: force the slot and
  // run over capacity until the next demotion succeeds.
  if (residency_.try_reserve()) return;
  common::Stopwatch waited;
  const double deadline_s =
      4.0 * static_cast<double>(config_.demote_drain_us) * 1e-6;
  while (!residency_.try_reserve()) {
    if (!evict_one(id)) {
      if (waited.seconds() > deadline_s) {
        residency_.force_reserve();
        capacity_overrides_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      std::this_thread::yield();
    }
  }
}

bool EdgeFleet::evict_one(ClusterId except) {
  const std::vector<ClusterId> victims = residency_.victims(
      residency_.warm_count(), [this](ClusterId vid) {
        const TenantState* const vt = find_tenant(vid);
        return vt == nullptr
                   ? std::uint64_t{0}
                   : vt->last_touch.load(std::memory_order_relaxed);
      });
  for (const ClusterId vid : victims) {
    if (vid == except) continue;
    if (demote(vid)) return true;
  }
  return false;
}

void EdgeFleet::replicate(std::size_t owner, ClusterId tenant,
                          const train::ModelSnapshot& snapshot) {
  if (cells_.size() < 2 || snapshot.decoder == nullptr) return;
  // The one deep copy of the pipeline: serialize the published decoder
  // into an immutable per-param image. Everything downstream aliases.
  SnapshotImage image = image_of(*snapshot.decoder, snapshot.version);
  SnapshotDelta delta;
  {
    common::MutexLock lock(repl_mu_);
    const auto it = last_shipped_.find(tenant);
    if (it != last_shipped_.end() && it->second.version >= image.version) {
      return;  // stale publish raced a newer ship; nothing to do
    }
    if (it != last_shipped_.end() &&
        it->second.params.size() == image.params.size()) {
      delta = make_delta(it->second, image);
      deltas_shipped_.fetch_add(1, std::memory_order_relaxed);
      delta_bytes_.fetch_add(delta.byte_size(), std::memory_order_relaxed);
      obs::fleet_metrics().deltas_shipped->inc();
      obs::fleet_metrics().delta_bytes->inc(delta.byte_size());
    } else {
      delta = full_delta(image);
      full_ships_.fetch_add(1, std::memory_order_relaxed);
      obs::fleet_metrics().full_ships->inc();
    }
    delta.tenant = tenant;
    last_shipped_[tenant] = image;  // shares blobs; no byte copy
  }
  Cell& follower = *cells_[(owner + 1) % cells_.size()];
  common::MutexLock lock(follower.images_mu);
  SnapshotImage& standby = follower.images[tenant];
  if (standby.version >= delta.version) return;
  if (delta.full() || standby.version != delta.base_version) {
    // No usable base on the follower (first ship, or it missed a
    // generation): install the image wholesale — a blob-sharing
    // assignment, not a byte copy.
    standby = std::move(image);
  } else {
    standby = apply_delta(standby, delta);
  }
}

SnapshotImage EdgeFleet::replicated_image(std::size_t i, ClusterId id) const {
  const Cell& cell = *cells_[i];
  common::MutexLock lock(cell.images_mu);
  const auto it = cell.images.find(id);
  return it == cell.images.end() ? SnapshotImage{} : it->second;
}

FleetStats EdgeFleet::stats() const {
  FleetStats s;
  s.registered = registered_.load(std::memory_order_relaxed);
  s.resident = residency_.warm_count();
  s.cold_wakes = cold_wakes_.load(std::memory_order_relaxed);
  s.cold_builds = cold_builds_.load(std::memory_order_relaxed);
  s.wake_coalesced = wake_coalesced_.load(std::memory_order_relaxed);
  s.demotions = demotions_.load(std::memory_order_relaxed);
  s.demotion_aborts = demotion_aborts_.load(std::memory_order_relaxed);
  s.capacity_overrides = capacity_overrides_.load(std::memory_order_relaxed);
  s.deltas_shipped = deltas_shipped_.load(std::memory_order_relaxed);
  s.delta_bytes = delta_bytes_.load(std::memory_order_relaxed);
  s.full_ships = full_ships_.load(std::memory_order_relaxed);
  return s;
}

void EdgeFleet::refresh_population_gauges() {
  const double registered =
      static_cast<double>(registered_.load(std::memory_order_relaxed));
  const double resident = static_cast<double>(residency_.warm_count());
  obs::FleetMetrics& metrics = obs::fleet_metrics();
  metrics.tenants_registered->set(registered);
  metrics.tenants_resident->set(resident);
  metrics.tenants_cold->set(registered - resident);
}

}  // namespace orco::fleet
