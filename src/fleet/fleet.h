// EdgeFleet — multi-edge scale-out front door.
//
// One process-wide facade over N in-process edge cells, each a full serving
// stack (ServerRuntime + ModelRegistry, optionally a TrainerRuntime).
// Three mechanisms make ~100k registered tenants servable on one box:
//
//   Routing    — a consistent-hash ring (HashRing) maps every tenant id to
//                its owning cell. Topology is fixed at construction; the
//                per-request route is a mix + binary search, lock-free.
//   Tiering    — registration is O(1) bookkeeping; a tenant materializes
//                (OrcoDcsSystem + registry slot + prepacked decoder) only
//                when traffic arrives, and an LRU residency manager demotes
//                idle tenants back to a crash-safe on-disk record
//                (ColdStore), bounding warm state by FleetConfig::
//                warm_capacity. The first request to a cold tenant
//                transparently reactivates it; concurrent wakers coalesce
//                onto one load (single-flight), so a thundering herd costs
//                one disk read.
//   Replication— every cell registry publish fans out a delta-encoded
//                snapshot image (SnapshotDelta, changed layer blobs only)
//                to the next cell on the ring, so a follower holds a
//                byte-identical standby image without deep-copying
//                unchanged parameters.
//
// Warm/cold lifecycle and its invalidation rules:
//
//   cold -> warm (ensure_warm): build the tenant system from the config
//     template (per-tenant seed), overlay the cold record's weights if one
//     exists, continue the decoder generation counter from the record so
//     publishes stay monotonic, register with the cell's trainer (which
//     publishes a snapshot) or publish directly, then register with the
//     cell's runtime. Only after the snapshot is live does the tenant's
//     serving flag open the submit fast path.
//   warm -> cold (demote): fence new fast-path entries (demoting flag,
//     store-load ordered against the in-flight counter), wait out
//     in-flight submits, flush the tenant's queue lane with a sentinel
//     decode (per-tenant lanes are FIFO — the sentinel's answer proves
//     every earlier request was answered), unregister from the trainer
//     (refused unless quiescent), serialize encoder + decoder + policy +
//     version to the cold store (atomic rename), then drop the registry
//     slot, runtime registration, caches and prepacked panels with the
//     system itself. Any contention aborts the demotion — the tenant
//     simply stays warm and the next sweep retries.
//
// Thread-safety: submit() may race register_tenant(), demote() and other
// submits arbitrarily; the fast path takes no lock (see ORCO_HOT_PATH in
// fleet.cpp). TenantState objects are created at registration and never
// destroyed before the fleet, so raw pointers handed out under the shared
// map lock stay valid.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/system.h"
#include "fleet/cold_store.h"
#include "fleet/hash_ring.h"
#include "fleet/replication.h"
#include "fleet/residency.h"
#include "obs/metrics.h"
#include "serve/server_runtime.h"
#include "train/trainer_runtime.h"

namespace orco::fleet {

using tensor::Tensor;

struct FleetConfig {
  /// Edge cells. Fixed for the fleet's lifetime (the ring's bounded-remap
  /// property is what makes growing a fleet cheap across process
  /// generations: a restarted fleet with one more cell re-routes only
  /// ~1/(n+1) of the tenants, whose state follows them through the cold
  /// store).
  std::size_t replicas = 2;
  /// Ring points per cell; more vnodes -> smoother per-cell load.
  std::size_t vnodes = 96;
  /// Max materialized tenants fleet-wide; beyond it the LRU sweep demotes.
  std::size_t warm_capacity = 64;
  /// Cold-tier directory (created if missing).
  std::string cold_dir = "fleet-cold";
  /// Fan snapshot publishes out to the ring-successor cell as deltas.
  bool replicate = true;
  /// Per-cell serving template. model_registry is overwritten with the
  /// cell's own registry; set per_tenant_telemetry=false for large fleets.
  serve::ServeConfig serve;
  /// Per-tenant system template; orco.seed is re-mixed with the tenant id
  /// so tenants get distinct initial weights, deterministically.
  core::SystemConfig system;
  /// Trainer threads per cell; 0 disables training (snapshots are then
  /// published by the fleet itself at activation).
  std::size_t trainer_threads = 0;
  /// Trainer template when trainer_threads > 0 (worker_threads is taken
  /// from trainer_threads; publish_on_register is forced on — a warm
  /// tenant must always have a live snapshot).
  train::TrainerConfig trainer;
  /// Microseconds demote() waits for in-flight submits to clear before
  /// aborting (the fast path's inflight window is a few instructions, so
  /// this only trips when a submit thread is descheduled mid-window).
  std::uint64_t demote_drain_us = 200000;
};

/// Point-in-time fleet counters (fleet-local, independent of the global
/// obs registry so several fleets in one process stay distinguishable).
struct FleetStats {
  std::uint64_t registered = 0;
  std::uint64_t resident = 0;
  std::uint64_t cold_wakes = 0;      // activations with a cold-store record
  std::uint64_t cold_builds = 0;     // first-ever activations (no record)
  std::uint64_t wake_coalesced = 0;  // wakers that joined an in-flight wake
  std::uint64_t demotions = 0;
  std::uint64_t demotion_aborts = 0;
  std::uint64_t capacity_overrides = 0;
  std::uint64_t deltas_shipped = 0;
  std::uint64_t delta_bytes = 0;     // payload bytes of those deltas
  std::uint64_t full_ships = 0;
};

class EdgeFleet {
 public:
  explicit EdgeFleet(const FleetConfig& config);
  /// Calls shutdown().
  ~EdgeFleet();

  EdgeFleet(const EdgeFleet&) = delete;
  EdgeFleet& operator=(const EdgeFleet&) = delete;

  /// Starts every cell (trainers first, then serving workers). Idempotent.
  void start();
  /// Stops intake, then shuts cells down (trainers before runtimes so the
  /// last publishes land). Safe to call multiple times.
  void shutdown();

  /// O(1): records the tenant and its policy; no model is built until the
  /// first submit (or an explicit warm()). Re-registering throws.
  void register_tenant(ClusterId id);
  void register_tenant(ClusterId id, const serve::TenantPolicy& policy);

  /// Routes one latent to the tenant's owning cell. Warm tenants take a
  /// lock-free fast path; cold tenants are transparently reactivated
  /// first (single-flight — concurrent wakers block on the same wake and
  /// then proceed). Unregistered ids answer kUnknownCluster, a stopped
  /// fleet kShutdown, a failed activation kInternalError.
  std::future<serve::DecodeResponse> submit(ClusterId id, Tensor latent);

  /// Forces the tenant warm (same single-flight path submit uses).
  void warm(ClusterId id);

  /// Demotes the tenant to the cold tier. Returns false when the tenant is
  /// unknown, already cold, mid-wake, or still busy (in-flight submits,
  /// queued work, or an active training job) — demotion never blocks
  /// traffic, it yields to it.
  bool demote(ClusterId id);

  std::uint32_t owner_of(ClusterId id) const { return ring_.route(id); }
  bool resident(ClusterId id) const;
  std::size_t resident_count() const { return residency_.warm_count(); }
  std::size_t registered_count() const {
    return registered_.load(std::memory_order_relaxed);
  }

  std::size_t cell_count() const noexcept { return cells_.size(); }
  serve::ServerRuntime& cell_runtime(std::size_t i) {
    return *cells_[i]->runtime;
  }
  /// Null when trainer_threads == 0.
  train::TrainerRuntime* cell_trainer(std::size_t i) {
    return cells_[i]->trainer.get();
  }
  const std::shared_ptr<train::ModelRegistry>& cell_registry(
      std::size_t i) const {
    return cells_[i]->registry;
  }

  /// The standby image cell `i` holds for `id` via delta replication
  /// (empty image when none arrived). Blobs are shared, not copied.
  SnapshotImage replicated_image(std::size_t i, ClusterId id) const;

  const HashRing& ring() const noexcept { return ring_; }
  const ColdStore& cold_store() const noexcept { return cold_; }
  const FleetConfig& config() const noexcept { return config_; }
  FleetStats stats() const;
  /// Fleet-local cold-wake latency (microseconds per activation).
  obs::HistogramSnapshot cold_wake_histogram() const {
    return cold_wake_hist_.snapshot();
  }

 private:
  /// One edge cell: registry + optional trainer + serving runtime + the
  /// standby images replicated to it.
  struct Cell {
    std::shared_ptr<train::ModelRegistry> registry;
    std::unique_ptr<train::TrainerRuntime> trainer;  // may be null
    std::unique_ptr<serve::ServerRuntime> runtime;
    mutable common::Mutex images_mu;
    std::map<ClusterId, SnapshotImage> images ORCO_GUARDED_BY(images_mu);
  };

  /// Per-tenant lifecycle state. Created at registration, never destroyed
  /// before the fleet — submit holds raw pointers across the map lock.
  struct TenantState {
    /// Immutable after registration.
    serve::TenantPolicy policy;
    /// Residency stamp; stored by every submit (relaxed).
    std::atomic<std::uint64_t> last_touch{0};
    /// Submits between routing and hand-off to the cell runtime. Paired
    /// with `demoting` as a store-load fence (both seq_cst): a submit
    /// either sees demoting and diverts, or its increment is seen by the
    /// demoter's drain wait.
    std::atomic<std::uint32_t> inflight{0};
    /// Fast-path gate: true exactly while the tenant is registered on its
    /// cell with a live snapshot.
    std::atomic<bool> serving{false};
    std::atomic<bool> demoting{false};
    /// Guards the wake/demote state machine (slow path only).
    common::Mutex mu;
    std::condition_variable cv;
    bool waking ORCO_GUARDED_BY(mu) = false;
    bool warm ORCO_GUARDED_BY(mu) = false;
    std::shared_ptr<core::OrcoDcsSystem> system ORCO_GUARDED_BY(mu);
  };

  TenantState* find_tenant(ClusterId id) const ORCO_EXCLUDES(tenants_mu_);
  static std::future<serve::DecodeResponse> immediate(
      serve::ResponseStatus status, std::string detail = {});
  /// Single-flight wake; returns with the tenant warm or throws the
  /// activation failure. Callers retry the fast path afterwards.
  void ensure_warm(ClusterId id, TenantState& t);
  /// Builds/loads + registers the tenant on its cell. Runs on the one
  /// thread that won the wake race (t.waking set), without t.mu held.
  void activate(ClusterId id, TenantState& t);
  /// Mirrors TrainerRuntime's export path for trainer-less cells.
  void publish_snapshot(Cell& cell, ClusterId id, core::OrcoDcsSystem& sys);
  /// Demotes LRU victims until the warm set fits (skipping `except`).
  void admit(ClusterId id);
  bool evict_one(ClusterId except);
  /// Publish-hook target: image the snapshot, ship a delta to the ring
  /// successor, fold it into the follower's standby image.
  void replicate(std::size_t owner, ClusterId tenant,
                 const train::ModelSnapshot& snapshot);
  void refresh_population_gauges();

  FleetConfig config_;
  HashRing ring_;
  ResidencyManager residency_;
  ColdStore cold_;
  std::vector<std::unique_ptr<Cell>> cells_;

  mutable common::SharedMutex tenants_mu_;
  std::unordered_map<ClusterId, std::unique_ptr<TenantState>> tenants_
      ORCO_GUARDED_BY(tenants_mu_);

  /// Publisher-side replication memory: last image shipped per tenant.
  common::Mutex repl_mu_;
  std::map<ClusterId, SnapshotImage> last_shipped_ ORCO_GUARDED_BY(repl_mu_);

  std::atomic<bool> accepting_{true};
  std::atomic<bool> started_{false};
  std::atomic<bool> stopped_{false};

  std::atomic<std::uint64_t> registered_{0};
  std::atomic<std::uint64_t> cold_wakes_{0};
  std::atomic<std::uint64_t> cold_builds_{0};
  std::atomic<std::uint64_t> wake_coalesced_{0};
  std::atomic<std::uint64_t> demotions_{0};
  std::atomic<std::uint64_t> demotion_aborts_{0};
  std::atomic<std::uint64_t> capacity_overrides_{0};
  std::atomic<std::uint64_t> deltas_shipped_{0};
  std::atomic<std::uint64_t> delta_bytes_{0};
  std::atomic<std::uint64_t> full_ships_{0};

  obs::Histogram cold_wake_hist_{2};
  obs::Histogram demote_hist_{1};
};

}  // namespace orco::fleet
