#include "fleet/cold_store.h"

#include <filesystem>
#include <utility>

#include "common/check.h"
#include "common/serialize.h"

namespace orco::fleet {

namespace {

// "OFLT" — distinct from the system checkpoint magic so a fleet record can
// never be mistaken for an OrcoDcsSystem checkpoint (or vice versa).
constexpr std::uint32_t kColdMagic = 0x4f464c54;
constexpr std::uint32_t kColdFormat = 1;

}  // namespace

ColdStore::ColdStore(std::string dir) : dir_(std::move(dir)) {
  std::filesystem::create_directories(dir_);
}

std::string ColdStore::path_for(ClusterId id) const {
  return dir_ + "/tenant-" + std::to_string(id) + ".ckpt";
}

void ColdStore::save(ClusterId id, const ColdRecord& record) {
  common::ByteWriter writer;
  writer.write_u32(kColdMagic);
  writer.write_u32(kColdFormat);
  writer.write_u64(id);
  writer.write_u64(record.model_version);
  writer.write_u32(static_cast<std::uint32_t>(record.policy.priority));
  writer.write_u64(record.policy.queue_quota);
  writer.write_f64(record.policy.weight);
  writer.write_bytes(record.encoder_params);
  writer.write_bytes(record.decoder_params);
  common::write_file_atomic(path_for(id), writer.bytes());
  saves_.fetch_add(1, std::memory_order_relaxed);
}

ColdRecord ColdStore::load(ClusterId id) const {
  const std::vector<std::byte> bytes = common::read_file(path_for(id));
  common::ByteReader reader(bytes);
  const std::uint32_t magic = reader.read_u32();
  ORCO_CHECK(magic == kColdMagic,
             "cold record magic mismatch: got 0x" << std::hex << magic);
  const std::uint32_t format = reader.read_u32();
  ORCO_CHECK(format == kColdFormat,
             "unsupported cold record format " << format);
  const std::uint64_t stored_id = reader.read_u64();
  ORCO_CHECK(stored_id == id, "cold record for tenant " << stored_id
                                                        << " read as " << id);
  ColdRecord record;
  record.model_version = reader.read_u64();
  record.policy.priority = static_cast<serve::Priority>(reader.read_u32());
  record.policy.queue_quota = reader.read_u64();
  record.policy.weight = reader.read_f64();
  record.encoder_params = reader.read_bytes();
  record.decoder_params = reader.read_bytes();
  ORCO_CHECK(reader.exhausted(),
             "cold record for tenant " << id << " has trailing bytes");
  loads_.fetch_add(1, std::memory_order_relaxed);
  return record;
}

bool ColdStore::contains(ClusterId id) const {
  return std::filesystem::exists(path_for(id));
}

bool ColdStore::remove(ClusterId id) {
  std::error_code ec;
  return std::filesystem::remove(path_for(id), ec) && !ec;
}

}  // namespace orco::fleet
