// Additive Gaussian noise layer — OrcoDCS eq. (2): Ŷ = Y + N(0, σ²).
//
// Noise is injected only when training; at inference the layer is identity.
// The gradient passes through unchanged (the noise term is constant w.r.t.
// the parameters), which is exactly how denoising autoencoders train.
#pragma once

#include <algorithm>

#include "common/rng.h"
#include "nn/layer.h"

namespace orco::nn {

class GaussianNoise : public Layer {
 public:
  /// `sigma` is the standard deviation σ (the paper sweeps σ² in Fig. 7).
  GaussianNoise(float sigma, common::Pcg32 rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  /// Identity at inference, like forward(training=false).
  void infer_into(const Tensor& input, Tensor& out,
                  InferContext& /*ctx*/) const override {
    if (&out == &input) return;
    out.resize_like(input);
    std::copy(input.data().begin(), input.data().end(), out.data().begin());
  }
  /// Noise is train-only: Sequential::infer_into skips the layer outright.
  bool infer_is_identity() const override { return true; }
  std::string name() const override { return "GaussianNoise"; }
  std::size_t output_features(std::size_t f) const override { return f; }

  float sigma() const noexcept { return sigma_; }
  void set_sigma(float sigma);

 private:
  float sigma_;
  common::Pcg32 rng_;
};

}  // namespace orco::nn
