// InferContext — the reusable memory behind zero-allocation inference.
//
// Layer::infer_into() computes into caller-owned output tensors; the
// context supplies everything else a forward pass needs transiently:
//
//   * two ping-pong activation buffers Sequential::infer_into alternates
//     between layer boundaries (each keeps its high-water capacity, so a
//     steady-state pass through the same model re-uses the same storage);
//   * a Workspace arena for kernel scratch — im2col column matrices,
//     epilogue temporaries — bump-allocated per layer and rewound on exit.
//
// Ownership rule: one context per serving/evaluation thread, reused across
// batches (ClusterShard owns one per shard worker, TrainerRuntime one per
// tenant). A context must never be shared between threads concurrently —
// it is deliberately unsynchronized, mirroring the serve path's "no locks
// on decode" rule. The compatibility wrappers Layer::infer()/infer_fused()
// construct a fresh context per call, which is correct everywhere but pays
// the allocations this type exists to remove.
#pragma once

#include <cstddef>

#include "tensor/tensor.h"
#include "tensor/workspace.h"

namespace orco::nn {

class InferContext {
 public:
  InferContext() = default;

  InferContext(const InferContext&) = delete;
  InferContext& operator=(const InferContext&) = delete;
  InferContext(InferContext&&) = default;
  InferContext& operator=(InferContext&&) = default;

  /// Kernel scratch arena (layers take a WorkspaceScope around their use).
  tensor::Workspace& scratch() noexcept { return scratch_; }

  /// The two ping-pong activation buffers (i in {0, 1}).
  tensor::Tensor& buffer(std::size_t i) noexcept { return buf_[i & 1]; }

  /// By convention the batch-assembly buffer: callers that build a batched
  /// input in place (ClusterShard) write it here and pass it as infer_into's
  /// input; Sequential then ping-pongs away from whichever buffer the input
  /// aliases.
  tensor::Tensor& input() noexcept { return buf_[0]; }

  /// The ping-pong partner: whichever buffer `t` is NOT. Returns buffer 0
  /// for tensors outside the pair.
  tensor::Tensor& other_than(const tensor::Tensor& t) noexcept {
    return &t == &buf_[0] ? buf_[1] : buf_[0];
  }

  /// True iff `t` is one of the context's activation buffers.
  bool owns(const tensor::Tensor& t) const noexcept {
    return &t == &buf_[0] || &t == &buf_[1];
  }

 private:
  tensor::Tensor buf_[2];
  tensor::Workspace scratch_;
};

}  // namespace orco::nn
