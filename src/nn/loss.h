// Reconstruction losses (tensor target) and softmax cross-entropy (class
// target).
//
// HuberLoss is the paper's training objective (eq. 4): quadratic within δ,
// linear outside — robust to outlier pixels. All reconstruction losses are
// mean-reduced over every element so loss magnitudes are comparable across
// batch sizes and image dimensions.
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace orco::nn {

using tensor::Tensor;

class Loss {
 public:
  virtual ~Loss() = default;
  virtual float value(const Tensor& pred, const Tensor& target) const = 0;
  virtual Tensor gradient(const Tensor& pred, const Tensor& target) const = 0;
  virtual std::string name() const = 0;
};

/// Mean squared error: mean((p - t)^2).
class MseLoss : public Loss {
 public:
  float value(const Tensor& pred, const Tensor& target) const override;
  Tensor gradient(const Tensor& pred, const Tensor& target) const override;
  std::string name() const override { return "mse"; }
};

/// Mean absolute error: mean(|p - t|).
class L1Loss : public Loss {
 public:
  float value(const Tensor& pred, const Tensor& target) const override;
  Tensor gradient(const Tensor& pred, const Tensor& target) const override;
  std::string name() const override { return "l1"; }
};

/// Elementwise Huber (smooth-L1) with threshold δ, mean-reduced (paper eq. 4).
class HuberLoss : public Loss {
 public:
  explicit HuberLoss(float delta = 1.0f);
  float value(const Tensor& pred, const Tensor& target) const override;
  Tensor gradient(const Tensor& pred, const Tensor& target) const override;
  std::string name() const override { return "huber"; }
  float delta() const noexcept { return delta_; }

 private:
  float delta_;
};

/// Softmax + cross-entropy over integer class labels, mean-reduced over the
/// batch. Gradient is the standard (softmax - onehot)/B.
class SoftmaxCrossEntropy {
 public:
  float value(const Tensor& logits,
              const std::vector<std::size_t>& labels) const;
  Tensor gradient(const Tensor& logits,
                  const std::vector<std::size_t>& labels) const;
};

}  // namespace orco::nn
