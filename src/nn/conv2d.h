// 2-D convolution via im2col + GEMM.
//
// Used by the DCSNet baseline decoder (4 conv layers) and the follow-up
// 2-layer CNN classifier. Inputs/outputs are rank-2 (batch, C*H*W) rows;
// the layer owns its spatial geometry and validates feature counts.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"

#include "nn/layer.h"
#include "tensor/backend.h"
#include "tensor/im2col.h"

namespace orco::nn {

class Conv2d : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, std::size_t pad,
         std::size_t in_h, std::size_t in_w, common::Pcg32& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(const Tensor& input, Tensor& out,
                  InferContext& ctx) const override;

  /// act(W·cols + b) per sample in one fused backend pass (bias per output
  /// channel row), the im2col columns living in the context's scratch
  /// arena and the GEMM writing each sample's output row in place.
  /// infer_into() is infer_fused_into(kNone); Sequential::infer_into
  /// peepholes a following activation layer into `act`.
  void infer_fused_into(const Tensor& input, Tensor& out,
                        tensor::EpilogueAct act, float leaky_alpha,
                        InferContext& ctx) const override;

  /// infer_fused_into() against caller-supplied packed filter panels — the
  /// InferPlan executor entry: no prepack-cache probe, no version check, no
  /// lock. `packed` must come from plan_pack() (or pack_a) for this layer's
  /// current filter; the GEMM runs on `packed.owner`.
  void infer_packed_into(const Tensor& input, Tensor& out,
                         const tensor::PackedWeights& packed,
                         tensor::EpilogueAct act, float leaky_alpha,
                         InferContext& ctx) const;

  /// Packs this layer's filter for `backend` and reports the captured
  /// weight version (see Dense::plan_pack; same cache-sharing contract).
  std::shared_ptr<const tensor::PackedWeights> plan_pack(
      const tensor::Backend& backend, std::uint64_t& version_out) const;

  /// Monotonic weight generation (see Dense::weight_version).
  std::uint64_t weight_version() const noexcept {
    return weight_version_.load(std::memory_order_acquire);
  }

  /// When enabled, infer()/infer_fused() cache the current backend's
  /// packed filter-matrix panels keyed on a weight version (see
  /// Layer::set_weight_prepack for the invalidation contract). The filter
  /// is the GEMM's left operand, reused across every sample and call.
  void set_weight_prepack(bool enabled) override { prepack_ = enabled; }
  void invalidate_weight_cache() override {
    weight_version_.fetch_add(1, std::memory_order_acq_rel);
  }

  std::vector<ParamView> params() override;
  std::string name() const override { return "Conv2d"; }
  std::size_t output_features(std::size_t input_features) const override;
  std::size_t forward_flops(std::size_t batch) const override {
    return 2 * batch * out_channels_ * geom_.out_h() * geom_.out_w() *
           geom_.in_channels * geom_.kernel_h * geom_.kernel_w;
  }

  std::size_t out_h() const { return geom_.out_h(); }
  std::size_t out_w() const { return geom_.out_w(); }
  std::size_t out_channels() const noexcept { return out_channels_; }

  /// One im2col column slab, reused across the batch.
  std::size_t infer_scratch_floats() const override {
    return geom_.in_channels * geom_.kernel_h * geom_.kernel_w *
           geom_.out_h() * geom_.out_w();
  }

 private:
  /// Current backend's packed filter panels, repacked lazily whenever the
  /// weight version or the selected backend changed since the last call.
  std::shared_ptr<const tensor::PackedWeights> packed_weights() const;

  /// Shared body of the fused/packed entries: im2col per sample into the
  /// context arena, GEMM on `backend` into the sample's output row, with
  /// `packed` panels when non-null.
  void fused_into_impl(const Tensor& input, Tensor& out,
                       const tensor::PackedWeights* packed,
                       const tensor::Backend& backend, tensor::EpilogueAct act,
                       float leaky_alpha, InferContext& ctx) const;

  tensor::Conv2dGeometry geom_;
  std::size_t out_channels_;
  Tensor w_;   // (outC, inC*KH*KW)
  Tensor b_;   // (outC)
  Tensor gw_, gb_;
  Tensor input_;  // cached (B, inC*H*W); im2col recomputed in backward
  bool prepack_ = false;
  std::atomic<std::uint64_t> weight_version_{1};
  mutable common::Mutex pack_mu_;
  mutable std::shared_ptr<const tensor::PackedWeights> packed_
      ORCO_GUARDED_BY(pack_mu_);
  mutable std::uint64_t packed_version_ ORCO_GUARDED_BY(pack_mu_) = 0;
};

}  // namespace orco::nn
