// Sequential layer container — the model type used for encoders, decoders,
// DCSNet and the classifier.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/table.h"
#include "nn/layer.h"

namespace orco::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns a reference for further wiring.
  Layer& add(LayerPtr layer);

  /// Constructs a layer in place and appends it.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto layer = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;

  /// Whole-chain inference into `out`: plans the buffer ping-pong once
  /// (layer i reads one context buffer, writes the other; the final layer
  /// writes `out` directly), keeps the fused layer+activation peephole, and
  /// skips inference-identity layers (noise) outright. After warmup —
  /// one pass at the workload's largest batch — repeat passes through the
  /// same context perform zero heap allocations.
  void infer_into(const Tensor& input, Tensor& out,
                  InferContext& ctx) const override;

  /// Whole-chain inference straight from uint8 latent codes (batch ×
  /// features, row-major) with per-row affine headers `qh`. When the first
  /// real layer is Dense the codes feed Backend::gemm_quantized directly —
  /// the float batch is never materialized; otherwise the codes are
  /// dequantized into the context input buffer and the chain runs as
  /// infer_into. Both branches decode each code as x = lo + q*scale in
  /// single-float math, so the output is identical either way.
  void infer_quantized_into(const std::uint8_t* codes,
                            const tensor::QuantHeader& qh, std::size_t batch,
                            std::size_t features, Tensor& out,
                            InferContext& ctx) const;

  void set_weight_prepack(bool enabled) override;
  void invalidate_weight_cache() override;
  std::vector<ParamView> params() override;
  std::string name() const override { return "Sequential"; }

  /// Validates the whole chain for `input_features`, returning the final
  /// feature count. Throws if any adjacent pair disagrees.
  std::size_t output_features(std::size_t input_features) const override;

  std::size_t size() const noexcept { return layers_.size(); }
  Layer& layer(std::size_t i);
  const Layer& layer(std::size_t i) const;

  /// Total trainable scalar count (for overhead accounting).
  std::size_t parameter_count();

  std::size_t forward_flops(std::size_t batch) const override;

  /// Per-layer inference time profile, accumulated by infer_into while
  /// obs::kernel_profiling is enabled (zero cost otherwise): layer | name |
  /// calls | total ms | mean us. A fused layer+activation step is
  /// attributed to the compute layer. Rows with zero calls are omitted.
  common::Table layer_profile_table() const;
  /// Zeroes the per-layer profile accumulators.
  void reset_layer_profile() const;

 private:
  /// The fused ping-pong execution loop shared by infer_into and the
  /// quantized entry: runs layers [start, end] with `cur` as the incoming
  /// activation, writing the step containing `last_real` to `out`.
  void run_chain(const Tensor* cur, std::size_t start, std::size_t last_real,
                 Tensor& out, InferContext& ctx) const;

  /// One layer's inference-time accumulator; padded so concurrent shard
  /// workers timing a shared (snapshot) decoder never share a line.
  struct alignas(64) LayerTimer {
    std::atomic<std::uint64_t> ns{0};
    std::atomic<std::uint64_t> calls{0};
  };

  std::vector<LayerPtr> layers_;
  // One timer per layer, created in add() (atomics are immovable, hence the
  // unique_ptr); mutable because timing a const inference pass is still
  // logically const.
  mutable std::vector<std::unique_ptr<LayerTimer>> layer_timers_;
};

}  // namespace orco::nn
