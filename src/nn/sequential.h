// Sequential layer container — the model type used for encoders, decoders,
// DCSNet and the classifier.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>

#include "common/table.h"
#include "nn/layer.h"
#include "obs/profile.h"

namespace orco::nn {

class Sequential : public Layer {
 public:
  Sequential() = default;

  /// Appends a layer; returns a reference for further wiring. Rebuilds the
  /// flattened inference chain: a nested Sequential contributes its leaf
  /// layers in order, so nested chains must be fully built before being
  /// added to an outer chain.
  Layer& add(LayerPtr layer);

  /// Constructs a layer in place and appends it.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto layer = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;

  /// Whole-chain inference into `out`: runs the flattened leaf chain with
  /// the fused layer+activation peephole, ping-ponging between the
  /// context's two buffers (the final step writes `out` directly) and
  /// skipping inference-identity layers (noise) outright. Nested
  /// Sequential containers are flattened at add() time, so a nested chain
  /// executes exactly like its flat equivalent — no inner infer_into call,
  /// no allocation. After warmup — one pass at the workload's largest
  /// batch — repeat passes through the same context perform zero heap
  /// allocations. Snapshot serving paths use the ahead-of-time compiled
  /// equivalent, InferPlan (see nn/infer_plan.h), instead.
  void infer_into(const Tensor& input, Tensor& out,
                  InferContext& ctx) const override;

  /// Whole-chain inference straight from uint8 latent codes (batch ×
  /// features, row-major) with per-row affine headers `qh`. When the first
  /// real layer is Dense the codes feed Backend::gemm_quantized directly —
  /// the float batch is never materialized; otherwise the codes are
  /// dequantized into the context input buffer and the chain runs as
  /// infer_into. Both branches decode each code as x = lo + q*scale in
  /// single-float math, so the output is identical either way.
  void infer_quantized_into(const std::uint8_t* codes,
                            const tensor::QuantHeader& qh, std::size_t batch,
                            std::size_t features, Tensor& out,
                            InferContext& ctx) const;

  void set_weight_prepack(bool enabled) override;
  void invalidate_weight_cache() override;
  std::vector<ParamView> params() override;
  std::string name() const override { return "Sequential"; }

  /// Validates the whole chain for `input_features`, returning the final
  /// feature count. Throws if any adjacent pair disagrees.
  std::size_t output_features(std::size_t input_features) const override;

  std::size_t size() const noexcept { return layers_.size(); }
  Layer& layer(std::size_t i);
  const Layer& layer(std::size_t i) const;

  /// The inference-time view of the chain: nested Sequential containers
  /// flattened to their leaf layers in order (identity layers included).
  /// This is what infer_into executes and what InferPlan::compile walks.
  const std::vector<const Layer*>& inference_chain() const noexcept {
    return flat_;
  }

  /// Total trainable scalar count (for overhead accounting).
  std::size_t parameter_count();

  std::size_t forward_flops(std::size_t batch) const override;

  /// Per-layer inference time profile, accumulated by infer_into while
  /// obs::kernel_profiling is enabled (zero cost otherwise): layer | name |
  /// calls | total ms | mean us. A fused layer+activation step is
  /// attributed to the compute layer; rows index the flattened chain.
  /// Rows with zero calls are omitted.
  common::Table layer_profile_table() const;
  /// Zeroes the per-layer profile accumulators.
  void reset_layer_profile() const;

 private:
  /// "No real layer" sentinel for the cached chain scans.
  static constexpr std::size_t kNoReal = static_cast<std::size_t>(-1);

  /// Rebuilds flat_, the cached first/last-real-layer scan and the per-step
  /// timers. Called from add() — the only structural mutation point.
  void rebuild_inference_chain();

  /// The fused ping-pong execution loop shared by infer_into and the
  /// quantized entry: runs flattened layers [start, ...] with `cur` as the
  /// incoming activation, writing the step containing `last_real` to `out`.
  void run_chain(const Tensor* cur, std::size_t start, std::size_t last_real,
                 Tensor& out, InferContext& ctx) const;

  /// Number of fused execution steps run_chain would take from `start`
  /// through `last_real` — structural only, used to pick ping-pong parity
  /// when `out` aliases a context buffer.
  std::size_t count_steps(std::size_t start, std::size_t last_real) const;

  std::vector<LayerPtr> layers_;
  // Flattened leaf view of layers_ (nested Sequentials expanded), plus the
  // cached identity scan over it — recomputed in add() instead of per call.
  std::vector<const Layer*> flat_;
  std::size_t first_real_ = kNoReal;  // first non-identity index into flat_
  std::size_t last_real_ = kNoReal;   // last non-identity index into flat_
  // One timer per flattened step (atomics are immovable, hence the
  // unique_ptr); mutable because timing a const inference pass is still
  // logically const.
  mutable std::vector<std::unique_ptr<obs::OpTimer>> layer_timers_;
};

}  // namespace orco::nn
