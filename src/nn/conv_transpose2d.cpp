#include "nn/conv_transpose2d.h"

#include <algorithm>

#include "common/check.h"
#include "nn/init.h"
#include "tensor/matmul.h"

namespace orco::nn {

ConvTranspose2d::ConvTranspose2d(std::size_t in_channels,
                                 std::size_t out_channels, std::size_t kernel,
                                 std::size_t stride, std::size_t pad,
                                 std::size_t in_h, std::size_t in_w,
                                 common::Pcg32& rng)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      in_h_(in_h),
      in_w_(in_w),
      w_({in_channels, out_channels * kernel * kernel}),
      b_({out_channels}),
      gw_({in_channels, out_channels * kernel * kernel}),
      gb_({out_channels}) {
  ORCO_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
             "ConvTranspose2d: bad hyperparameters");
  ORCO_CHECK((in_h - 1) * stride + kernel >= 2 * pad,
             "ConvTranspose2d: padding too large");
  out_h_ = (in_h - 1) * stride + kernel - 2 * pad;
  out_w_ = (in_w - 1) * stride + kernel - 2 * pad;
  geom_ = tensor::Conv2dGeometry{out_channels, out_h_, out_w_,
                                 kernel,       kernel, stride, pad};
  // The adjoint geometry must map the output back onto the input grid.
  ORCO_ENSURE(geom_.out_h() == in_h && geom_.out_w() == in_w,
              "ConvTranspose2d geometry inconsistent");
  he_normal(w_, in_channels, rng);
}

Tensor ConvTranspose2d::forward(const Tensor& input, bool /*training*/) {
  input_ = input;
  return infer(input);
}

void ConvTranspose2d::infer_into(const Tensor& input, Tensor& out,
                                 InferContext& ctx) const {
  const std::size_t in_feats = in_channels_ * in_h_ * in_w_;
  ORCO_CHECK(input.rank() == 2 && input.dim(1) == in_feats,
             "ConvTranspose2d expects (batch, " << in_feats << "), got "
                                                << tensor::shape_to_string(
                                                       input.shape()));
  ORCO_CHECK(&out != &input, "ConvTranspose2d cannot infer in place");
  const std::size_t batch = input.dim(0);
  const std::size_t out_feats = out_channels_ * out_h_ * out_w_;
  const std::size_t spatial = in_h_ * in_w_;
  const std::size_t col_rows = w_.dim(1);  // outC*K*K
  out.resize(batch, out_feats);
  const auto& backend = tensor::current_backend();
  // Column scratch from the context arena, reused across the batch. The
  // bias sweep stays AFTER col2im (not folded into the zero-fill) so the
  // per-element summation order — and therefore every bit of the result —
  // matches the training-path forward exactly.
  tensor::WorkspaceScope scope(ctx.scratch());
  const std::size_t col_floats = col_rows * spatial;
  float* cols = ctx.scratch().alloc(col_floats);
  for (std::size_t s = 0; s < batch; ++s) {
    // cols = Wᵀ·x with x the sample row viewed as (inC, H*W) — straight off
    // the input span, no per-sample copy or materialised transpose.
    std::fill(cols, cols + col_floats, 0.0f);  // gemm_tn accumulates
    backend.gemm_tn(w_.data().data(), input.row(s).data(), cols, col_rows,
                    in_channels_, spatial);
    auto yd = out.row(s);
    std::fill(yd.begin(), yd.end(), 0.0f);  // col2im accumulates
    tensor::col2im({cols, col_floats}, geom_, yd);
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      const float bias = b_[oc];
      for (std::size_t p = 0; p < out_h_ * out_w_; ++p) {
        yd[oc * out_h_ * out_w_ + p] += bias;
      }
    }
  }
}

Tensor ConvTranspose2d::backward(const Tensor& grad_output) {
  const std::size_t batch = input_.dim(0);
  const std::size_t out_feats = out_channels_ * out_h_ * out_w_;
  ORCO_CHECK(grad_output.rank() == 2 && grad_output.dim(0) == batch &&
                 grad_output.dim(1) == out_feats,
             "ConvTranspose2d backward shape mismatch");
  Tensor grad_input({batch, input_.dim(1)});
  for (std::size_t s = 0; s < batch; ++s) {
    // Gradient w.r.t. output image -> columns (adjoint of col2im is im2col).
    const Tensor gcols = tensor::im2col(grad_output.row(s), geom_);
    Tensor x({in_channels_, in_h_ * in_w_},
             std::vector<float>(input_.row(s).begin(), input_.row(s).end()));
    // dX = W gcols ; dW += x gcols^T ; db += per-channel sums of grad_out.
    const Tensor gx = tensor::matmul(w_, gcols);
    grad_input.set_outer(s, gx.reshaped({input_.dim(1)}));
    gw_ += tensor::matmul_nt(x, gcols);
    const auto go = grad_output.row(s);
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      double acc = 0.0;
      for (std::size_t p = 0; p < out_h_ * out_w_; ++p) {
        acc += go[oc * out_h_ * out_w_ + p];
      }
      gb_[oc] += static_cast<float>(acc);
    }
  }
  return grad_input;
}

std::vector<ParamView> ConvTranspose2d::params() {
  return {{"weight", &w_, &gw_}, {"bias", &b_, &gb_}};
}

std::size_t ConvTranspose2d::output_features(
    std::size_t input_features) const {
  const std::size_t in_feats = in_channels_ * in_h_ * in_w_;
  ORCO_CHECK(input_features == in_feats,
             "ConvTranspose2d chain mismatch: got "
                 << input_features << ", expected " << in_feats);
  return out_channels_ * out_h_ * out_w_;
}

}  // namespace orco::nn
