#include "nn/sequential.h"

#include "common/check.h"
#include "nn/activations.h"

namespace orco::nn {

Layer& Sequential::add(LayerPtr layer) {
  ORCO_CHECK(layer != nullptr, "cannot add null layer");
  layers_.push_back(std::move(layer));
  return *layers_.back();
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(x, training);
  return x;
}

Tensor Sequential::infer(const Tensor& input) const {
  // Peephole fusion: a layer followed by an elementwise activation becomes
  // one infer_fused() call — GEMM-backed layers (Dense, Conv2d) push the
  // activation into the kernel epilogue, halving the memory traffic of the
  // serving decode path; everything else falls back to infer()-then-apply,
  // which is always equivalent. The training-mode forward() stays unfused
  // because backward needs the pre-activation.
  Tensor x = input;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    if (i + 1 < layers_.size()) {
      float leaky_alpha = 0.01f;
      const auto epi = activation_epilogue(*layers_[i + 1], leaky_alpha);
      if (epi) {
        x = layers_[i]->infer_fused(x, *epi, leaky_alpha);
        ++i;
        continue;
      }
    }
    x = layers_[i]->infer(x);
  }
  return x;
}

void Sequential::set_weight_prepack(bool enabled) {
  for (auto& l : layers_) l->set_weight_prepack(enabled);
}

void Sequential::invalidate_weight_cache() {
  for (auto& l : layers_) l->invalidate_weight_cache();
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<ParamView> Sequential::params() {
  std::vector<ParamView> out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    for (auto& p : layers_[i]->params()) {
      p.name = "layer" + std::to_string(i) + "." + layers_[i]->name() + "." +
               p.name;
      out.push_back(p);
    }
  }
  return out;
}

std::size_t Sequential::output_features(std::size_t input_features) const {
  std::size_t f = input_features;
  for (const auto& l : layers_) f = l->output_features(f);
  return f;
}

Layer& Sequential::layer(std::size_t i) {
  ORCO_CHECK(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

const Layer& Sequential::layer(std::size_t i) const {
  ORCO_CHECK(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

std::size_t Sequential::parameter_count() {
  std::size_t n = 0;
  for (const auto& p : params()) n += p.value->numel();
  return n;
}

std::size_t Sequential::forward_flops(std::size_t batch) const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l->forward_flops(batch);
  return n;
}

}  // namespace orco::nn
