#include "nn/sequential.h"

#include <algorithm>
#include <optional>

#include "common/check.h"
#include "nn/activations.h"
#include "nn/dense.h"

namespace orco::nn {

Layer& Sequential::add(LayerPtr layer) {
  ORCO_CHECK(layer != nullptr, "cannot add null layer");
  layers_.push_back(std::move(layer));
  rebuild_inference_chain();
  return *layers_.back();
}

void Sequential::rebuild_inference_chain() {
  flat_.clear();
  for (const auto& l : layers_) {
    if (const auto* seq = dynamic_cast<const Sequential*>(l.get())) {
      // The nested chain is already flat (it was rebuilt on its own adds);
      // splice its leaves so inference never calls into a nested container.
      flat_.insert(flat_.end(), seq->flat_.begin(), seq->flat_.end());
    } else {
      flat_.push_back(l.get());
    }
  }
  first_real_ = kNoReal;
  last_real_ = kNoReal;
  for (std::size_t i = 0; i < flat_.size(); ++i) {
    if (!flat_[i]->infer_is_identity()) {
      if (first_real_ == kNoReal) first_real_ = i;
      last_real_ = i;
    }
  }
  layer_timers_.clear();
  layer_timers_.reserve(flat_.size());
  for (std::size_t i = 0; i < flat_.size(); ++i) {
    layer_timers_.push_back(std::make_unique<obs::OpTimer>());
  }
}

Tensor Sequential::forward(const Tensor& input, bool training) {
  Tensor x = input;
  for (auto& l : layers_) x = l->forward(x, training);
  return x;
}

void Sequential::infer_into(const Tensor& input, Tensor& out,
                            InferContext& ctx) const {
  ORCO_CHECK(&out != &input,
             "Sequential::infer_into output may not alias its input");
  if (last_real_ == kNoReal) {
    // Empty chain or all-identity: the pass is a copy.
    out.resize_like(input);
    std::copy(input.data().begin(), input.data().end(), out.data().begin());
    return;
  }
  run_chain(&input, 0, last_real_, out, ctx);
}

std::size_t Sequential::count_steps(std::size_t start,
                                    std::size_t last_real) const {
  std::size_t steps = 0;
  for (std::size_t i = start; i < flat_.size(); ++i) {
    if (flat_[i]->infer_is_identity()) continue;
    std::size_t step_end = i;
    float leaky_alpha = 0.01f;
    if (i + 1 < flat_.size() &&
        activation_epilogue(*flat_[i + 1], leaky_alpha)) {
      step_end = i + 1;
    }
    ++steps;
    if (last_real <= step_end) break;
    i = step_end;
  }
  return steps;
}

// Peephole fusion, ping-pong buffer plan: a layer followed by an
// elementwise activation becomes one infer_fused_into() call — GEMM-backed
// layers (Dense, Conv2d) push the activation into the kernel epilogue,
// halving the memory traffic of the serving decode path; everything else
// falls back to compute-then-apply, which is always equivalent. Each step
// reads the previous step's buffer and writes the other context buffer
// (the step containing `last_real` writes `out`), so after warmup a whole
// pass touches no allocator. The training-mode forward() stays unfused
// because backward needs the pre-activation.
void Sequential::run_chain(const Tensor* cur, std::size_t start,
                           std::size_t last_real, Tensor& out,
                           InferContext& ctx) const {
  const bool profile = obs::kernel_profiling_enabled();
  // Intermediate destinations alternate between the two context buffers;
  // by default the first one is the partner of whatever the input aliases
  // (buffer 0 for external inputs). When `out` itself aliases a context
  // buffer the final step must read the OTHER buffer, which pins the
  // intermediate sequence's parity: pick the first destination by walking
  // the step count backwards, and reject the one layout two buffers cannot
  // express (input pinned to one buffer, output to the other, wrong
  // parity) loudly instead of silently falling back to an allocating path.
  Tensor* next_dst = &ctx.other_than(*cur);
  if (ctx.owns(out)) {
    const std::size_t steps = count_steps(start, last_real);
    if (steps > 1) {
      Tensor& notout = ctx.other_than(out);
      Tensor* first = ((steps - 1) % 2 == 1) ? &notout : &out;
      ORCO_CHECK(first != cur,
                 "Sequential::infer_into: output aliases a context buffer "
                 "with a step parity two ping-pong buffers cannot express; "
                 "pass an external output tensor");
      next_dst = first;
    }
  }
  for (std::size_t i = start; i < flat_.size(); ++i) {
    if (flat_[i]->infer_is_identity()) continue;
    std::size_t step_end = i;
    float leaky_alpha = 0.01f;
    std::optional<tensor::EpilogueAct> epi;
    if (i + 1 < flat_.size()) {
      epi = activation_epilogue(*flat_[i + 1], leaky_alpha);
      if (epi) step_end = i + 1;
    }
    const bool last = last_real <= step_end;
    Tensor& dst = last ? out : *next_dst;
    const std::uint64_t t0 = profile ? obs::KernelTimer::now_ns() : 0;
    if (epi) {
      flat_[i]->infer_fused_into(*cur, dst, *epi, leaky_alpha, ctx);
    } else {
      flat_[i]->infer_into(*cur, dst, ctx);
    }
    if (profile) {
      obs::OpTimer& timer = *layer_timers_[i];
      timer.ns.fetch_add(obs::KernelTimer::now_ns() - t0,
                         std::memory_order_relaxed);
      timer.calls.fetch_add(1, std::memory_order_relaxed);
    }
    cur = &dst;
    next_dst = &ctx.other_than(dst);
    i = step_end;
  }
}

void Sequential::infer_quantized_into(const std::uint8_t* codes,
                                      const tensor::QuantHeader& qh,
                                      std::size_t batch, std::size_t features,
                                      Tensor& out, InferContext& ctx) const {
  // Dequantizes with the exact expression the fused kernel applies
  // (x = lo + q*scale, single-float), so every branch below produces the
  // same head-input values.
  const auto dequant_to = [&](Tensor& dst) {
    dst.resize(batch, features);
    for (std::size_t i = 0; i < batch; ++i) {
      const std::uint8_t* src = codes + i * features;
      float* row = dst.data().data() + i * features;
      const float lo = qh.row_lo[i];
      const float scale = qh.row_scale[i];
      for (std::size_t j = 0; j < features; ++j) {
        row[j] = lo + static_cast<float>(src[j]) * scale;
      }
    }
  };
  if (last_real_ == kNoReal) {
    // Empty chain or all-identity: the pass is just the dequantization.
    dequant_to(out);
    return;
  }
  const auto* head = dynamic_cast<const Dense*>(flat_[first_real_]);
  if (head == nullptr) {
    // No Dense head to feed codes into: dequantize into the context's
    // input buffer and run the ordinary float chain.
    dequant_to(ctx.input());
    infer_into(ctx.input(), out, ctx);
    return;
  }
  ORCO_CHECK(features == head->in_features(),
             "quantized latents have " << features << " features, head Dense"
                                       << " expects " << head->in_features());
  // Dense head fast path: the GEMM reads the uint8 codes directly,
  // dequantizing inside A-panel packing — the batch is never materialized
  // as floats. Keep the activation peephole for the head step.
  std::size_t step_end = first_real_;
  float leaky_alpha = 0.01f;
  tensor::EpilogueAct act = tensor::EpilogueAct::kNone;
  if (first_real_ + 1 < flat_.size()) {
    if (const auto epi =
            activation_epilogue(*flat_[first_real_ + 1], leaky_alpha)) {
      act = *epi;
      step_end = first_real_ + 1;
    }
  }
  const bool last = last_real_ <= step_end;
  // The codes live outside the context, so input() is free to hold the
  // head's output for the rest of the chain to ping-pong from.
  Tensor& dst = last ? out : ctx.input();
  const bool profile = obs::kernel_profiling_enabled();
  const std::uint64_t t0 = profile ? obs::KernelTimer::now_ns() : 0;
  head->infer_quantized_into(codes, qh, batch, dst, act, leaky_alpha, ctx);
  if (profile) {
    obs::OpTimer& timer = *layer_timers_[first_real_];
    timer.ns.fetch_add(obs::KernelTimer::now_ns() - t0,
                       std::memory_order_relaxed);
    timer.calls.fetch_add(1, std::memory_order_relaxed);
  }
  if (!last) run_chain(&dst, step_end + 1, last_real_, out, ctx);
}

common::Table Sequential::layer_profile_table() const {
  common::Table table({"layer", "name", "calls", "total ms", "mean us"});
  for (std::size_t i = 0; i < flat_.size(); ++i) {
    const std::uint64_t calls =
        layer_timers_[i]->calls.load(std::memory_order_relaxed);
    if (calls == 0) continue;
    const std::uint64_t ns =
        layer_timers_[i]->ns.load(std::memory_order_relaxed);
    table.add_row({std::to_string(i), flat_[i]->name(),
                   std::to_string(calls),
                   common::Table::num(static_cast<double>(ns) / 1e6, 3),
                   common::Table::num(static_cast<double>(ns) / 1e3 /
                                          static_cast<double>(calls),
                                      3)});
  }
  return table;
}

void Sequential::reset_layer_profile() const {
  for (const auto& timer : layer_timers_) {
    timer->ns.store(0, std::memory_order_relaxed);
    timer->calls.store(0, std::memory_order_relaxed);
  }
}

void Sequential::set_weight_prepack(bool enabled) {
  for (auto& l : layers_) l->set_weight_prepack(enabled);
}

void Sequential::invalidate_weight_cache() {
  for (auto& l : layers_) l->invalidate_weight_cache();
}

Tensor Sequential::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
  return g;
}

std::vector<ParamView> Sequential::params() {
  std::vector<ParamView> out;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    for (auto& p : layers_[i]->params()) {
      p.name = "layer" + std::to_string(i) + "." + layers_[i]->name() + "." +
               p.name;
      out.push_back(p);
    }
  }
  return out;
}

std::size_t Sequential::output_features(std::size_t input_features) const {
  std::size_t f = input_features;
  for (const auto& l : layers_) f = l->output_features(f);
  return f;
}

Layer& Sequential::layer(std::size_t i) {
  ORCO_CHECK(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

const Layer& Sequential::layer(std::size_t i) const {
  ORCO_CHECK(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

std::size_t Sequential::parameter_count() {
  std::size_t n = 0;
  for (const auto& p : params()) n += p.value->numel();
  return n;
}

std::size_t Sequential::forward_flops(std::size_t batch) const {
  std::size_t n = 0;
  for (const auto& l : layers_) n += l->forward_flops(batch);
  return n;
}

}  // namespace orco::nn
