#include "nn/noise.h"

#include "common/check.h"

namespace orco::nn {

GaussianNoise::GaussianNoise(float sigma, common::Pcg32 rng)
    : sigma_(sigma), rng_(rng) {
  ORCO_CHECK(sigma >= 0.0f, "noise sigma must be non-negative");
}

void GaussianNoise::set_sigma(float sigma) {
  ORCO_CHECK(sigma >= 0.0f, "noise sigma must be non-negative");
  sigma_ = sigma;
}

Tensor GaussianNoise::forward(const Tensor& input, bool training) {
  if (!training || sigma_ == 0.0f) return input;
  Tensor out = input;
  for (auto& v : out.data()) {
    v += static_cast<float>(rng_.normal(0.0, sigma_));
  }
  return out;
}

Tensor GaussianNoise::backward(const Tensor& grad_output) {
  return grad_output;
}

}  // namespace orco::nn
