#include "nn/optimizer.h"

#include <cmath>

#include "common/check.h"

namespace orco::nn {

Optimizer::Optimizer(std::vector<ParamView> params)
    : params_(std::move(params)) {
  for (const auto& p : params_) {
    ORCO_CHECK(p.value != nullptr && p.grad != nullptr,
               "null param view: " << p.name);
    ORCO_CHECK(p.value->shape() == p.grad->shape(),
               "param/grad shape mismatch: " << p.name);
  }
}

void Optimizer::zero_grad() {
  for (auto& p : params_) p.grad->fill(0.0f);
}

std::size_t Optimizer::parameter_count() const {
  std::size_t n = 0;
  for (const auto& p : params_) n += p.value->numel();
  return n;
}

Sgd::Sgd(std::vector<ParamView> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  ORCO_CHECK(lr > 0.0f, "learning rate must be positive");
  ORCO_CHECK(momentum >= 0.0f && momentum < 1.0f, "momentum out of [0,1)");
  ORCO_CHECK(weight_decay >= 0.0f, "weight decay must be non-negative");
  if (momentum_ > 0.0f) {
    velocity_.reserve(params_.size());
    for (const auto& p : params_) velocity_.emplace_back(p.value->shape());
  }
}

void Sgd::set_learning_rate(float lr) {
  ORCO_CHECK(lr > 0.0f, "learning rate must be positive");
  lr_ = lr;
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& value = *params_[i].value;
    auto& grad = *params_[i].grad;
    auto vd = value.data();
    const auto gd = grad.data();
    if (momentum_ > 0.0f) {
      auto mv = velocity_[i].data();
      for (std::size_t j = 0; j < vd.size(); ++j) {
        const float g = gd[j] + weight_decay_ * vd[j];
        mv[j] = momentum_ * mv[j] + g;
        vd[j] -= lr_ * mv[j];
      }
    } else {
      for (std::size_t j = 0; j < vd.size(); ++j) {
        const float g = gd[j] + weight_decay_ * vd[j];
        vd[j] -= lr_ * g;
      }
    }
  }
}

Adam::Adam(std::vector<ParamView> params, float lr, float beta1, float beta2,
           float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  ORCO_CHECK(lr > 0.0f, "learning rate must be positive");
  ORCO_CHECK(beta1 >= 0.0f && beta1 < 1.0f, "beta1 out of [0,1)");
  ORCO_CHECK(beta2 >= 0.0f && beta2 < 1.0f, "beta2 out of [0,1)");
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value->shape());
    v_.emplace_back(p.value->shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto vd = params_[i].value->data();
    const auto gd = params_[i].grad->data();
    auto md = m_[i].data();
    auto sd = v_[i].data();
    for (std::size_t j = 0; j < vd.size(); ++j) {
      md[j] = beta1_ * md[j] + (1.0f - beta1_) * gd[j];
      sd[j] = beta2_ * sd[j] + (1.0f - beta2_) * gd[j] * gd[j];
      const float mhat = md[j] / bc1;
      const float vhat = sd[j] / bc2;
      vd[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace orco::nn
