// Transposed (fractionally-strided) convolution — the upsampling block of
// the DCSNet decoder and of deep OrcoDCS decoder variants.
//
// Implemented as the exact adjoint of Conv2d's im2col lowering:
//   forward  = col2im(W^T x)          (conv's backward-input pass)
//   backward = W im2col(grad_out)     (conv's forward pass)
#pragma once

#include "nn/layer.h"
#include "tensor/im2col.h"

namespace orco::nn {

class ConvTranspose2d : public Layer {
 public:
  /// Output spatial size: OH = (in_h - 1) * stride + kernel - 2 * pad.
  ConvTranspose2d(std::size_t in_channels, std::size_t out_channels,
                  std::size_t kernel, std::size_t stride, std::size_t pad,
                  std::size_t in_h, std::size_t in_w, common::Pcg32& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(const Tensor& input, Tensor& out,
                  InferContext& ctx) const override;
  std::vector<ParamView> params() override;
  std::string name() const override { return "ConvTranspose2d"; }
  std::size_t output_features(std::size_t input_features) const override;
  std::size_t forward_flops(std::size_t batch) const override {
    return 2 * batch * in_channels_ * in_h_ * in_w_ * out_channels_ *
           geom_.kernel_h * geom_.kernel_w;
  }

  std::size_t out_h() const noexcept { return out_h_; }
  std::size_t out_w() const noexcept { return out_w_; }

  /// One Wᵀ·x column slab (outC*K*K rows × input spatial), reused across
  /// the batch.
  std::size_t infer_scratch_floats() const override {
    return w_.dim(1) * in_h_ * in_w_;
  }

 private:
  std::size_t in_channels_, out_channels_;
  std::size_t in_h_, in_w_, out_h_, out_w_;
  tensor::Conv2dGeometry geom_;  // geometry of the *output* side
  Tensor w_;   // (inC, outC*KH*KW)
  Tensor b_;   // (outC)
  Tensor gw_, gb_;
  Tensor input_;
};

}  // namespace orco::nn
