#include "nn/infer_plan.h"

#include <algorithm>

#include "common/check.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/dense.h"
#include "nn/sequential.h"
#include "tensor/workspace.h"

namespace orco::nn {

namespace {

const char* epilogue_suffix(tensor::EpilogueAct act) {
  switch (act) {
    case tensor::EpilogueAct::kNone:
      return "";
    case tensor::EpilogueAct::kReLU:
      return "+ReLU";
    case tensor::EpilogueAct::kLeakyReLU:
      return "+LeakyReLU";
    case tensor::EpilogueAct::kSigmoid:
      return "+Sigmoid";
    case tensor::EpilogueAct::kTanh:
      return "+Tanh";
  }
  return "";
}

}  // namespace

std::shared_ptr<const InferPlan> InferPlan::compile(
    const Sequential& model, const tensor::Backend* backend) {
  const tensor::Backend& be =
      backend != nullptr ? *backend : tensor::current_backend();
  auto plan = std::shared_ptr<InferPlan>(new InferPlan());
  plan->backend_ = &be;
  const std::vector<const Layer*>& chain = model.inference_chain();
  // Identical walk to Sequential::run_chain: skip identity layers, fuse a
  // following elementwise activation into the producing op. Matching the
  // walk exactly is what makes run() trivially bitwise-identical — the
  // plan issues the same kernel calls in the same order.
  for (std::size_t i = 0; i < chain.size(); ++i) {
    if (chain[i]->infer_is_identity()) continue;
    PlanOp op;
    op.layer = chain[i];
    op.source_index = i;
    std::size_t step_end = i;
    if (i + 1 < chain.size()) {
      float leaky_alpha = 0.01f;
      if (const auto epi = activation_epilogue(*chain[i + 1], leaky_alpha)) {
        op.act = *epi;
        op.leaky_alpha = leaky_alpha;
        op.fused = true;
        step_end = i + 1;
      }
    }
    if (const auto* dense = dynamic_cast<const Dense*>(chain[i])) {
      op.dense = dense;
      op.packed = dense->plan_pack(be, op.packed_version);
    } else if (const auto* conv = dynamic_cast<const Conv2d*>(chain[i])) {
      op.conv = conv;
      op.packed = conv->plan_pack(be, op.packed_version);
    }
    plan->scratch_floats_ = std::max(
        plan->scratch_floats_,
        tensor::Workspace::aligned_floats(chain[i]->infer_scratch_floats()));
    plan->ops_.push_back(std::move(op));
    i = step_end;
  }
  if (!plan->ops_.empty()) {
    plan->timers_ = std::make_unique<obs::OpTimer[]>(plan->ops_.size());
  }
  return plan;
}

void InferPlan::run(const Tensor& input, Tensor& out,
                    InferContext& ctx) const {
  ORCO_CHECK(&out != &input,
             "InferPlan::run output may not alias its input");
  if (ops_.empty()) {
    // All-identity (or empty) chain: the pass is a copy.
    out.resize_like(input);
    std::copy(input.data().begin(), input.data().end(), out.data().begin());
    return;
  }
  ORCO_CHECK(!ctx.owns(out) || ops_.size() == 1,
             "InferPlan::run output may not alias a context buffer: a "
             "multi-op plan needs both buffers for intermediates");
  // Reserve the precomputed high-water once; subsequent runs find the
  // arena already sized and never touch the allocator.
  if (ctx.scratch().used() == 0 &&
      ctx.scratch().capacity() < scratch_floats_) {
    ctx.scratch().reserve(scratch_floats_);
  }
  run_ops(&input, 0, out, ctx);
}

void InferPlan::run_ops(const Tensor* cur, std::size_t start, Tensor& out,
                        InferContext& ctx) const {
  const tensor::Backend& be = tensor::current_backend();
  const bool profile = obs::kernel_profiling_enabled();
  const std::size_t n = ops_.size();
  // ORCO_HOT_PATH BEGIN (plan executor: every per-batch decision was made
  // at compile time — no allocation, no locks, no cache probes)
  for (std::size_t i = start; i < n; ++i) {
    const PlanOp& op = ops_[i];
    Tensor& dst = (i + 1 == n) ? out : ctx.other_than(*cur);
    const std::uint64_t t0 = profile ? obs::KernelTimer::now_ns() : 0;
    if (op.packed != nullptr && op.packed->owner == &be) {
      // Pre-attached panels, valid for the executing backend: the direct
      // packed entries skip the per-call prepack-cache probe entirely.
      if (op.dense != nullptr) {
        op.dense->infer_packed_into(*cur, dst, *op.packed, op.act,
                                    op.leaky_alpha);
      } else {
        op.conv->infer_packed_into(*cur, dst, *op.packed, op.act,
                                   op.leaky_alpha, ctx);
      }
    } else if (op.fused) {
      // Backend differs from the compile backend (a BackendScope override)
      // or the layer has no packable weight: same fused kernels Sequential
      // issues.
      op.layer->infer_fused_into(*cur, dst, op.act, op.leaky_alpha, ctx);
    } else {
      op.layer->infer_into(*cur, dst, ctx);
    }
    if (profile) {
      obs::OpTimer& timer = timers_[i];
      timer.ns.fetch_add(obs::KernelTimer::now_ns() - t0,
                         std::memory_order_relaxed);
      timer.calls.fetch_add(1, std::memory_order_relaxed);
    }
    cur = &dst;
  }
  // ORCO_HOT_PATH END
}

void InferPlan::run_quantized(const std::uint8_t* codes,
                              const tensor::QuantHeader& qh, std::size_t batch,
                              std::size_t features, Tensor& out,
                              InferContext& ctx) const {
  ORCO_CHECK(codes != nullptr && qh.row_lo != nullptr &&
                 qh.row_scale != nullptr,
             "run_quantized needs codes and per-row headers");
  // Dequantizes with the exact expression the fused kernel applies
  // (x = lo + q*scale, single-float) — see Sequential::infer_quantized_into.
  const auto dequant_to = [&](Tensor& dst) {
    dst.resize(batch, features);
    for (std::size_t i = 0; i < batch; ++i) {
      const std::uint8_t* src = codes + i * features;
      float* row = dst.data().data() + i * features;
      const float lo = qh.row_lo[i];
      const float scale = qh.row_scale[i];
      for (std::size_t j = 0; j < features; ++j) {
        row[j] = lo + static_cast<float>(src[j]) * scale;
      }
    }
  };
  if (ops_.empty()) {
    // All-identity (or empty) chain: the pass is just the dequantization.
    dequant_to(out);
    return;
  }
  ORCO_CHECK(!ctx.owns(out) || ops_.size() == 1,
             "InferPlan::run_quantized output may not alias a context "
             "buffer: a multi-op plan needs both buffers for intermediates");
  if (ctx.scratch().used() == 0 &&
      ctx.scratch().capacity() < scratch_floats_) {
    ctx.scratch().reserve(scratch_floats_);
  }
  const PlanOp& head = ops_.front();
  if (head.dense == nullptr) {
    // No Dense head to feed codes into: dequantize into the context's
    // input buffer and run the float plan.
    dequant_to(ctx.input());
    run_ops(&ctx.input(), 0, out, ctx);
    return;
  }
  ORCO_CHECK(features == head.dense->in_features(),
             "quantized latents have "
                 << features << " features, head Dense expects "
                 << head.dense->in_features());
  // Dense head fast path: the GEMM reads the uint8 codes directly,
  // dequantizing inside A-panel packing. The codes live outside the
  // context, so input() is free to hold the head's output for the rest of
  // the plan to ping-pong from.
  const bool last = ops_.size() == 1;
  Tensor& dst = last ? out : ctx.input();
  const tensor::Backend& be = tensor::current_backend();
  const bool profile = obs::kernel_profiling_enabled();
  const std::uint64_t t0 = profile ? obs::KernelTimer::now_ns() : 0;
  if (head.packed != nullptr && head.packed->owner == &be) {
    head.dense->infer_quantized_packed_into(codes, qh, batch, dst,
                                            *head.packed, head.act,
                                            head.leaky_alpha);
  } else {
    head.dense->infer_quantized_into(codes, qh, batch, dst, head.act,
                                     head.leaky_alpha, ctx);
  }
  if (profile) {
    obs::OpTimer& timer = timers_[0];
    timer.ns.fetch_add(obs::KernelTimer::now_ns() - t0,
                       std::memory_order_relaxed);
    timer.calls.fetch_add(1, std::memory_order_relaxed);
  }
  if (!last) run_ops(&dst, 1, out, ctx);
}

bool InferPlan::weights_stale() const noexcept {
  for (const auto& op : ops_) {
    if (op.packed == nullptr) continue;
    const std::uint64_t live = op.dense != nullptr
                                   ? op.dense->weight_version()
                                   : op.conv->weight_version();
    if (live != op.packed_version) return true;
  }
  return false;
}

common::Table InferPlan::op_profile_table() const {
  common::Table table({"op", "kernel", "calls", "total ms", "mean us"});
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    const std::uint64_t calls =
        timers_[i].calls.load(std::memory_order_relaxed);
    if (calls == 0) continue;
    const std::uint64_t ns = timers_[i].ns.load(std::memory_order_relaxed);
    std::string kernel = ops_[i].layer->name();
    if (ops_[i].packed != nullptr) kernel += "[packed]";
    kernel += epilogue_suffix(ops_[i].act);
    table.add_row({std::to_string(i), kernel, std::to_string(calls),
                   common::Table::num(static_cast<double>(ns) / 1e6, 3),
                   common::Table::num(static_cast<double>(ns) / 1e3 /
                                          static_cast<double>(calls),
                                      3)});
  }
  return table;
}

void InferPlan::reset_op_profile() const {
  for (std::size_t i = 0; i < ops_.size(); ++i) {
    timers_[i].ns.store(0, std::memory_order_relaxed);
    timers_[i].calls.store(0, std::memory_order_relaxed);
  }
}

}  // namespace orco::nn
