// Elementwise activation layers.
#pragma once

#include <optional>

#include "nn/layer.h"
#include "tensor/backend.h"

namespace orco::nn {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(const Tensor& input, Tensor& out,
                  InferContext& ctx) const override;
  std::string name() const override { return "ReLU"; }
  std::size_t output_features(std::size_t f) const override { return f; }

 private:
  Tensor input_;
};

class LeakyReLU : public Layer {
 public:
  explicit LeakyReLU(float alpha = 0.01f);
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(const Tensor& input, Tensor& out,
                  InferContext& ctx) const override;
  std::string name() const override { return "LeakyReLU"; }
  std::size_t output_features(std::size_t f) const override { return f; }

  float alpha() const noexcept { return alpha_; }

 private:
  float alpha_;
  Tensor input_;
};

class Sigmoid : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(const Tensor& input, Tensor& out,
                  InferContext& ctx) const override;
  std::string name() const override { return "Sigmoid"; }
  std::size_t output_features(std::size_t f) const override { return f; }

 private:
  Tensor output_;  // sigmoid' = y(1-y), so cache the output
};

class Tanh : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(const Tensor& input, Tensor& out,
                  InferContext& ctx) const override;
  std::string name() const override { return "Tanh"; }
  std::size_t output_features(std::size_t f) const override { return f; }

 private:
  Tensor output_;
};

/// Pass-through; useful as a configurable "no activation" slot.
class Identity : public Layer {
 public:
  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(const Tensor& input, Tensor& out,
                  InferContext& ctx) const override;
  /// Pass-through at inference: Sequential::infer_into skips it entirely.
  bool infer_is_identity() const override { return true; }
  std::string name() const override { return "Identity"; }
  std::size_t output_features(std::size_t f) const override { return f; }
};

/// Activation kinds for config-driven model construction.
enum class Activation { kIdentity, kReLU, kLeakyReLU, kSigmoid, kTanh };

/// Factory for an activation layer.
LayerPtr make_activation(Activation kind);

/// If `layer` is one of the elementwise activations above, returns the
/// GEMM-epilogue equivalent (Identity -> kNone) and fills `leaky_alpha` for
/// LeakyReLU; nullopt otherwise. Sequential::infer uses this to fuse a
/// Dense/Conv2d layer with its following activation into one backend pass.
std::optional<tensor::EpilogueAct> activation_epilogue(const Layer& layer,
                                                       float& leaky_alpha);

}  // namespace orco::nn
