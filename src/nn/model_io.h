// Model weight (de)serialisation.
//
// Beyond checkpointing, this is how the orchestrator measures the broadcast
// cost of distributing the trained encoder to IoT devices (paper §III-C):
// the serialised size is the wire size.
#pragma once

#include <string>

#include "common/serialize.h"
#include "nn/layer.h"

namespace orco::nn {

/// Serialises all parameters of `model` (names, shapes, data) into bytes.
std::vector<std::byte> save_params(Layer& model);

/// Restores parameters saved by save_params; shapes and names must match.
void load_params(Layer& model, std::span<const std::byte> bytes);

/// File convenience wrappers.
void save_params_file(Layer& model, const std::string& path);
void load_params_file(Layer& model, const std::string& path);

}  // namespace orco::nn
