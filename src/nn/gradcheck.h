// Numerical gradient checking — every layer in tests/nn_gradcheck_test.cpp
// is validated against central finite differences through this harness.
#pragma once

#include "common/rng.h"
#include "nn/layer.h"

namespace orco::nn {

struct GradCheckReport {
  float max_param_rel_error = 0.0f;
  float max_input_rel_error = 0.0f;
  bool ok = false;
};

/// Checks d(sum(forward(x) * R))/dθ and /dx against central differences for
/// a random input of `input_shape` and a fixed random projection R.
/// The layer must be deterministic in eval mode (training=false is used).
GradCheckReport gradcheck_layer(Layer& layer, const tensor::Shape& input_shape,
                                common::Pcg32& rng, float eps = 1e-2f,
                                float tolerance = 3e-2f);

/// Same check with a caller-provided input. Use inputs with well-separated
/// values for layers whose gradient is only piecewise smooth (max pooling):
/// a random input can put two window entries within eps of each other, and
/// the finite-difference probe then crosses the winner boundary.
GradCheckReport gradcheck_layer_with_input(Layer& layer, Tensor input,
                                           common::Pcg32& rng,
                                           float eps = 1e-2f,
                                           float tolerance = 3e-2f);

}  // namespace orco::nn
