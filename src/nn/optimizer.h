// First-order optimizers over ParamViews. The paper trains with SGD (eq. 5);
// Adam is provided for the classifier and ablations.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace orco::nn {

class Optimizer {
 public:
  explicit Optimizer(std::vector<ParamView> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the accumulated gradients.
  virtual void step() = 0;

  /// Zeroes all parameter gradients.
  void zero_grad();

  std::size_t parameter_count() const;

 protected:
  std::vector<ParamView> params_;
};

/// SGD with optional momentum and L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<ParamView> params, float lr, float momentum = 0.0f,
      float weight_decay = 0.0f);
  void step() override;

  float learning_rate() const noexcept { return lr_; }
  void set_learning_rate(float lr);

 private:
  float lr_, momentum_, weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba 2015) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<ParamView> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f);
  void step() override;

 private:
  float lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_, v_;
};

}  // namespace orco::nn
