#include "nn/pooling.h"

#include <limits>

#include "common/check.h"

namespace orco::nn {

MaxPool2d::MaxPool2d(std::size_t channels, std::size_t in_h, std::size_t in_w,
                     std::size_t kernel, std::size_t stride)
    : channels_(channels),
      in_h_(in_h),
      in_w_(in_w),
      kernel_(kernel),
      stride_(stride) {
  ORCO_CHECK(channels > 0 && kernel > 0 && stride > 0, "MaxPool2d: bad params");
  ORCO_CHECK(in_h >= kernel && in_w >= kernel,
             "MaxPool2d: window larger than input");
  out_h_ = (in_h - kernel) / stride + 1;
  out_w_ = (in_w - kernel) / stride + 1;
}

Tensor MaxPool2d::forward(const Tensor& input, bool /*training*/) {
  Tensor out;
  compute_into(input, out, &argmax_);
  batch_ = input.dim(0);
  return out;
}

void MaxPool2d::infer_into(const Tensor& input, Tensor& out,
                           InferContext& /*ctx*/) const {
  ORCO_CHECK(&out != &input, "MaxPool2d cannot infer in place");
  compute_into(input, out, nullptr);
}

void MaxPool2d::compute_into(const Tensor& input, Tensor& out,
                             std::vector<std::size_t>* argmax) const {
  const std::size_t in_feats = channels_ * in_h_ * in_w_;
  ORCO_CHECK(input.rank() == 2 && input.dim(1) == in_feats,
             "MaxPool2d expects (batch, " << in_feats << ")");
  const std::size_t batch = input.dim(0);
  const std::size_t out_feats = channels_ * out_h_ * out_w_;
  out.resize(batch, out_feats);
  if (argmax != nullptr) argmax->assign(batch * out_feats, 0);

  for (std::size_t s = 0; s < batch; ++s) {
    const auto in = input.row(s);
    auto o = out.row(s);
    std::size_t oi = 0;
    for (std::size_t c = 0; c < channels_; ++c) {
      const float* plane = in.data() + c * in_h_ * in_w_;
      for (std::size_t y = 0; y < out_h_; ++y) {
        for (std::size_t x = 0; x < out_w_; ++x, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::size_t best_idx = 0;
          for (std::size_t ky = 0; ky < kernel_; ++ky) {
            for (std::size_t kx = 0; kx < kernel_; ++kx) {
              const std::size_t sy = y * stride_ + ky;
              const std::size_t sx = x * stride_ + kx;
              const std::size_t idx = sy * in_w_ + sx;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = c * in_h_ * in_w_ + idx;
              }
            }
          }
          o[oi] = best;
          if (argmax != nullptr) (*argmax)[s * out_feats + oi] = best_idx;
        }
      }
    }
  }
}

Tensor MaxPool2d::backward(const Tensor& grad_output) {
  const std::size_t out_feats = channels_ * out_h_ * out_w_;
  ORCO_CHECK(grad_output.rank() == 2 && grad_output.dim(0) == batch_ &&
                 grad_output.dim(1) == out_feats,
             "MaxPool2d backward shape mismatch");
  Tensor grad_input({batch_, channels_ * in_h_ * in_w_});
  for (std::size_t s = 0; s < batch_; ++s) {
    const auto go = grad_output.row(s);
    auto gi = grad_input.row(s);
    for (std::size_t oi = 0; oi < out_feats; ++oi) {
      gi[argmax_[s * out_feats + oi]] += go[oi];
    }
  }
  return grad_input;
}

std::size_t MaxPool2d::output_features(std::size_t input_features) const {
  ORCO_CHECK(input_features == channels_ * in_h_ * in_w_,
             "MaxPool2d chain mismatch");
  return channels_ * out_h_ * out_w_;
}

}  // namespace orco::nn
