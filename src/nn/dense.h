// Fully-connected layer: y = x W^T + b.
//
// This is the paper's encoder building block: OrcoDCS's encoder is exactly
// one Dense layer (eq. 1), sized so that each IoT device owns one column of
// the weight matrix (see core/encoder_share.h).
#pragma once

#include "nn/layer.h"
#include "tensor/backend.h"

namespace orco::nn {

class Dense : public Layer {
 public:
  /// Weight is (out_features, in_features); bias (out_features).
  /// Weights are Xavier-uniform initialised from `rng`.
  Dense(std::size_t in_features, std::size_t out_features, common::Pcg32& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  Tensor infer(const Tensor& input) const override;

  /// act(x·Wᵀ + b) in one fused backend pass — GEMM, bias and activation
  /// applied while output tiles are hot. infer() is infer_fused(kNone);
  /// Sequential::infer peepholes a following activation layer into `act`.
  Tensor infer_fused(const Tensor& input, tensor::EpilogueAct act,
                     float leaky_alpha = 0.01f) const override;

  std::vector<ParamView> params() override;
  std::string name() const override { return "Dense"; }
  std::size_t output_features(std::size_t input_features) const override;
  std::size_t forward_flops(std::size_t batch) const override {
    return 2 * batch * in_ * out_;
  }

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

  /// Direct access for the orchestrator, which splits the encoder weight
  /// into per-device columns and reassembles gradients.
  Tensor& weight() noexcept { return w_; }
  const Tensor& weight() const noexcept { return w_; }
  Tensor& bias() noexcept { return b_; }
  const Tensor& bias() const noexcept { return b_; }
  Tensor& weight_grad() noexcept { return gw_; }
  Tensor& bias_grad() noexcept { return gb_; }

 private:
  std::size_t in_, out_;
  Tensor w_, b_, gw_, gb_;
  Tensor input_;  // cached for backward
};

}  // namespace orco::nn
