// Fully-connected layer: y = x W^T + b.
//
// This is the paper's encoder building block: OrcoDCS's encoder is exactly
// one Dense layer (eq. 1), sized so that each IoT device owns one column of
// the weight matrix (see core/encoder_share.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"

#include "nn/layer.h"
#include "tensor/backend.h"

namespace orco::nn {

class Dense : public Layer {
 public:
  /// Weight is (out_features, in_features); bias (out_features).
  /// Weights are Xavier-uniform initialised from `rng`.
  Dense(std::size_t in_features, std::size_t out_features, common::Pcg32& rng);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(const Tensor& input, Tensor& out,
                  InferContext& ctx) const override;

  /// act(x·Wᵀ + b) in one fused backend pass — GEMM, bias and activation
  /// applied while output tiles are hot, written straight into `out`.
  /// infer_into() is infer_fused_into(kNone); Sequential::infer_into
  /// peepholes a following activation layer into `act`.
  void infer_fused_into(const Tensor& input, Tensor& out,
                        tensor::EpilogueAct act, float leaky_alpha,
                        InferContext& ctx) const override;

  /// act(dequant(codes)·Wᵀ + b) straight from uint8 latent codes with
  /// per-row affine headers `qh` — the int8 uplink decode head. Routes
  /// through Backend::gemm_quantized against this layer's packed weights
  /// (packed on first use even when prepack is off: the quantized kernel
  /// only takes panel weights).
  void infer_quantized_into(const std::uint8_t* codes,
                            const tensor::QuantHeader& qh, std::size_t batch,
                            Tensor& out, tensor::EpilogueAct act,
                            float leaky_alpha, InferContext& ctx) const;

  /// act(x·Wᵀ + b) against caller-supplied packed panels — the InferPlan
  /// executor entry: no prepack-cache probe, no version check, no lock.
  /// `packed` must have been produced by plan_pack() (or pack_b) for this
  /// layer's current weights; the GEMM runs on `packed.owner`, which is
  /// bitwise-identical to the gemm_fused path on the same backend.
  void infer_packed_into(const Tensor& input, Tensor& out,
                         const tensor::PackedWeights& packed,
                         tensor::EpilogueAct act, float leaky_alpha) const;

  /// infer_quantized_into() against caller-supplied packed panels (the
  /// plan-compiled int8 head): same kernel, no per-call cache probe.
  void infer_quantized_packed_into(const std::uint8_t* codes,
                                   const tensor::QuantHeader& qh,
                                   std::size_t batch, Tensor& out,
                                   const tensor::PackedWeights& packed,
                                   tensor::EpilogueAct act,
                                   float leaky_alpha) const;

  /// Packs this layer's weight for `backend` and reports the weight version
  /// the panels captured — the compile-time half of InferPlan's pre-attached
  /// kernels. Shares the layer's own prepack cache when it already holds
  /// this (backend, version) generation, so plan compilation and serving
  /// never pack the same weights twice.
  std::shared_ptr<const tensor::PackedWeights> plan_pack(
      const tensor::Backend& backend, std::uint64_t& version_out) const;

  /// Monotonic weight generation; bumped by invalidate_weight_cache() and
  /// every mutable accessor. InferPlan::weights_stale compares this against
  /// the version its panels captured.
  std::uint64_t weight_version() const noexcept {
    return weight_version_.load(std::memory_order_acquire);
  }

  /// When enabled, infer()/infer_fused() cache the current backend's
  /// packed weight panels keyed on a weight version and reuse them across
  /// calls (see Layer::set_weight_prepack for the invalidation contract).
  void set_weight_prepack(bool enabled) override { prepack_ = enabled; }
  void invalidate_weight_cache() override {
    weight_version_.fetch_add(1, std::memory_order_acq_rel);
  }

  std::vector<ParamView> params() override;
  std::string name() const override { return "Dense"; }
  std::size_t output_features(std::size_t input_features) const override;
  std::size_t forward_flops(std::size_t batch) const override {
    return 2 * batch * in_ * out_;
  }

  std::size_t in_features() const noexcept { return in_; }
  std::size_t out_features() const noexcept { return out_; }

  /// Direct access for the orchestrator, which splits the encoder weight
  /// into per-device columns and reassembles gradients. The non-const
  /// accessors conservatively invalidate the packed-weight cache — a
  /// caller asking for a mutable weight may be about to edit it.
  Tensor& weight() noexcept {
    invalidate_weight_cache();
    return w_;
  }
  const Tensor& weight() const noexcept { return w_; }
  Tensor& bias() noexcept {
    invalidate_weight_cache();
    return b_;
  }
  const Tensor& bias() const noexcept { return b_; }
  Tensor& weight_grad() noexcept { return gw_; }
  Tensor& bias_grad() noexcept { return gb_; }

 private:
  /// Current backend's packed weight panels, repacked lazily whenever the
  /// weight version or the selected backend changed since the last call.
  std::shared_ptr<const tensor::PackedWeights> packed_weights() const;

  std::size_t in_, out_;
  Tensor w_, b_, gw_, gb_;
  Tensor input_;  // cached for backward
  bool prepack_ = false;
  std::atomic<std::uint64_t> weight_version_{1};
  mutable common::Mutex pack_mu_;
  mutable std::shared_ptr<const tensor::PackedWeights> packed_
      ORCO_GUARDED_BY(pack_mu_);
  mutable std::uint64_t packed_version_ ORCO_GUARDED_BY(pack_mu_) = 0;
};

}  // namespace orco::nn
