#include "nn/init.h"

#include <cmath>

#include "common/check.h"

namespace orco::nn {

void xavier_uniform(tensor::Tensor& w, std::size_t fan_in, std::size_t fan_out,
                    common::Pcg32& rng) {
  ORCO_CHECK(fan_in + fan_out > 0, "xavier_uniform fan sum must be positive");
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  for (auto& v : w.data()) v = rng.uniform(-a, a);
}

void he_normal(tensor::Tensor& w, std::size_t fan_in, common::Pcg32& rng) {
  ORCO_CHECK(fan_in > 0, "he_normal fan_in must be positive");
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
  for (auto& v : w.data()) v = static_cast<float>(rng.normal(0.0, stddev));
}

}  // namespace orco::nn
