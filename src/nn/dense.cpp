#include "nn/dense.h"

#include "common/check.h"
#include "nn/init.h"
#include "obs/profile.h"
#include "tensor/matmul.h"

namespace orco::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features,
             common::Pcg32& rng)
    : in_(in_features),
      out_(out_features),
      w_({out_features, in_features}),
      b_({out_features}),
      gw_({out_features, in_features}),
      gb_({out_features}) {
  ORCO_CHECK(in_features > 0 && out_features > 0,
             "Dense dims must be positive, got " << in_features << " -> "
                                                 << out_features);
  xavier_uniform(w_, in_features, out_features, rng);
}

Tensor Dense::forward(const Tensor& input, bool /*training*/) {
  input_ = input;
  return infer(input);
}

void Dense::infer_into(const Tensor& input, Tensor& out,
                       InferContext& ctx) const {
  infer_fused_into(input, out, tensor::EpilogueAct::kNone, 0.01f, ctx);
}

void Dense::infer_fused_into(const Tensor& input, Tensor& out,
                             tensor::EpilogueAct act, float leaky_alpha,
                             InferContext& /*ctx*/) const {
  ORCO_CHECK(input.rank() == 2 && input.dim(1) == in_,
             "Dense expects (batch, " << in_ << "), got "
                                      << tensor::shape_to_string(input.shape()));
  ORCO_CHECK(&out != &input, "Dense cannot infer in place");
  const std::size_t batch = input.dim(0);
  out.resize(batch, out_);
  tensor::Epilogue epi;
  epi.bias = b_.data().data();
  epi.bias_per_row = false;
  epi.act = act;
  epi.leaky_alpha = leaky_alpha;
  const tensor::Backend& backend = tensor::current_backend();
  const std::uint64_t flops = 2ull * batch * in_ * out_;
  if (prepack_) {
    const auto packed = packed_weights();
    OBS_SCOPED_SPAN(obs::KernelOp::kGemmPrepacked, flops);
    backend.gemm_prepacked(input.data().data(), *packed, out.data().data(),
                           batch, in_, out_, epi);  // (B, out)
    return;
  }
  // y = x·Wᵀ with W stored (out, in): W is the transposed-B operand.
  OBS_SCOPED_SPAN(obs::KernelOp::kGemmFused, flops);
  backend.gemm_fused(input.data().data(), w_.data().data(), out.data().data(),
                     batch, in_, out_, /*transpose_b=*/true, epi);  // (B, out)
}

void Dense::infer_quantized_into(const std::uint8_t* codes,
                                 const tensor::QuantHeader& qh,
                                 std::size_t batch, Tensor& out,
                                 tensor::EpilogueAct act, float leaky_alpha,
                                 InferContext& /*ctx*/) const {
  const auto packed = packed_weights();
  infer_quantized_packed_into(codes, qh, batch, out, *packed, act,
                              leaky_alpha);
}

void Dense::infer_packed_into(const Tensor& input, Tensor& out,
                              const tensor::PackedWeights& packed,
                              tensor::EpilogueAct act,
                              float leaky_alpha) const {
  ORCO_CHECK(input.rank() == 2 && input.dim(1) == in_,
             "Dense expects (batch, " << in_ << "), got "
                                      << tensor::shape_to_string(input.shape()));
  ORCO_CHECK(&out != &input, "Dense cannot infer in place");
  const std::size_t batch = input.dim(0);
  out.resize(batch, out_);
  tensor::Epilogue epi;
  epi.bias = b_.data().data();
  epi.bias_per_row = false;
  epi.act = act;
  epi.leaky_alpha = leaky_alpha;
  OBS_SCOPED_SPAN(obs::KernelOp::kGemmPrepacked, 2ull * batch * in_ * out_);
  packed.owner->gemm_prepacked(input.data().data(), packed, out.data().data(),
                               batch, in_, out_, epi);
}

void Dense::infer_quantized_packed_into(const std::uint8_t* codes,
                                        const tensor::QuantHeader& qh,
                                        std::size_t batch, Tensor& out,
                                        const tensor::PackedWeights& packed,
                                        tensor::EpilogueAct act,
                                        float leaky_alpha) const {
  ORCO_CHECK(codes != nullptr && qh.row_lo != nullptr &&
                 qh.row_scale != nullptr,
             "infer_quantized_into needs codes and per-row headers");
  out.resize(batch, out_);
  tensor::Epilogue epi;
  epi.bias = b_.data().data();
  epi.bias_per_row = false;
  epi.act = act;
  epi.leaky_alpha = leaky_alpha;
  OBS_SCOPED_SPAN(obs::KernelOp::kGemmQuantized, 2ull * batch * in_ * out_);
  packed.owner->gemm_quantized(codes, qh, packed, out.data().data(), batch,
                               in_, out_, epi);
}

std::shared_ptr<const tensor::PackedWeights> Dense::plan_pack(
    const tensor::Backend& backend, std::uint64_t& version_out) const {
  const std::uint64_t version =
      weight_version_.load(std::memory_order_acquire);
  version_out = version;
  common::MutexLock lock(pack_mu_);
  if (packed_ == nullptr || packed_->owner != &backend ||
      packed_version_ != version) {
    // y = x·Wᵀ with W stored (out, in): W is the transposed-B operand.
    packed_ = std::make_shared<tensor::PackedWeights>(
        backend.pack_b(w_.data().data(), in_, out_, /*transpose_b=*/true));
    packed_version_ = version;
  }
  return packed_;
}

std::shared_ptr<const tensor::PackedWeights> Dense::packed_weights() const {
  std::uint64_t version = 0;
  return plan_pack(tensor::current_backend(), version);
}

Tensor Dense::backward(const Tensor& grad_output) {
  ORCO_CHECK(grad_output.rank() == 2 && grad_output.dim(1) == out_ &&
                 grad_output.dim(0) == input_.dim(0),
             "Dense backward shape mismatch");
  // dW += dY^T X ; db += column sums of dY ; dX = dY W
  gw_ += tensor::matmul_tn(grad_output, input_);
  for (std::size_t i = 0; i < grad_output.dim(0); ++i) {
    const auto r = grad_output.row(i);
    for (std::size_t j = 0; j < out_; ++j) gb_[j] += r[j];
  }
  return tensor::matmul(grad_output, w_);
}

std::vector<ParamView> Dense::params() {
  // The views hand out mutable weight pointers (optimizers, model_io
  // loading); conservatively drop any cached pack.
  invalidate_weight_cache();
  return {{"weight", &w_, &gw_}, {"bias", &b_, &gb_}};
}

std::size_t Dense::output_features(std::size_t input_features) const {
  ORCO_CHECK(input_features == in_, "Dense chain mismatch: got "
                                        << input_features << ", expected "
                                        << in_);
  return out_;
}

}  // namespace orco::nn
