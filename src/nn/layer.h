// Layer abstraction: explicit forward/backward with cached activations
// (Caffe-style). Chosen over tape autograd because every model in the paper
// is a feed-forward chain, and explicit backward keeps each kernel
// independently verifiable with numerical gradient checks.
#pragma once

#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "nn/infer_context.h"
#include "tensor/backend.h"
#include "tensor/tensor.h"

namespace orco::nn {

using tensor::Tensor;

/// Non-owning handle to one trainable parameter and its gradient.
struct ParamView {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
};

/// Base class for all layers. Data flows as rank-2 (batch, features)
/// tensors; spatial layers (conv, pool) interpret `features` as C*H*W using
/// their own geometry and validate it.
class Layer {
 public:
  virtual ~Layer() = default;

  Layer() = default;
  Layer(const Layer&) = delete;
  Layer& operator=(const Layer&) = delete;

  /// Computes the layer output. `training` toggles train-only behaviour
  /// (e.g. noise injection). Implementations cache whatever backward needs.
  virtual Tensor forward(const Tensor& input, bool training) = 0;

  /// Given dL/d(output), accumulates parameter gradients and returns
  /// dL/d(input). Must be called after forward on the same batch.
  virtual Tensor backward(const Tensor& grad_output) = 0;

  /// Inference-only forward pass into a caller-owned output tensor: no
  /// activation caching, no train-only behaviour, no mutation of the layer
  /// — safe to call concurrently from readers that share one trained model
  /// (the serving runtime's batched decode path), each with its own
  /// context. Implementations resize `out` (capacity-preserving) and write
  /// it fully; transient scratch comes from `ctx`. `out` must not alias
  /// `input` unless the layer is elementwise. Layers that only ever run in
  /// training pipelines may leave the default, which throws.
  virtual void infer_into(const Tensor& input, Tensor& out,
                          InferContext& ctx) const {
    (void)input;
    (void)out;
    (void)ctx;
    throw std::logic_error("Layer " + name() +
                           " does not implement const inference");
  }

  /// infer_into() with an elementwise activation applied on top — the hook
  /// Sequential::infer_into uses to fuse a layer with its following
  /// activation layer. GEMM-backed layers (Dense, Conv2d) override this to
  /// push the activation into the kernel epilogue; the default computes
  /// infer_into() and applies the activation in a second pass, which is
  /// always equivalent.
  virtual void infer_fused_into(const Tensor& input, Tensor& out,
                                tensor::EpilogueAct act, float leaky_alpha,
                                InferContext& ctx) const {
    infer_into(input, out, ctx);
    tensor::Epilogue epilogue;
    epilogue.act = act;
    epilogue.leaky_alpha = leaky_alpha;
    const std::size_t rows = out.rank() >= 1 ? out.dim(0) : 0;
    if (rows > 0) {
      tensor::apply_epilogue(out.data().data(), rows, out.numel() / rows,
                             epilogue);
    }
  }

  /// True when inference through this layer is the identity (noise layers,
  /// Identity): Sequential::infer_into skips such layers instead of paying
  /// a buffer copy per batch.
  virtual bool infer_is_identity() const { return false; }

  /// Upper bound on the context-arena floats one infer_into() call bump-
  /// allocates (im2col column slabs and the like). Batch-independent by
  /// construction: spatial layers allocate per-sample scratch once and
  /// reuse it across the batch. InferPlan::compile takes the max over a
  /// chain to reserve the arena's exact high-water up front.
  virtual std::size_t infer_scratch_floats() const { return 0; }

  /// Compatibility wrapper over infer_into(): allocates a context (and the
  /// result) on the fly. Correct everywhere; hot paths that care about
  /// steady-state allocations hold a long-lived InferContext and call
  /// infer_into() instead.
  Tensor infer(const Tensor& input) const {
    InferContext ctx;
    Tensor out;
    infer_into(input, out, ctx);
    return out;
  }

  /// Compatibility wrapper over infer_fused_into() (same contract).
  Tensor infer_fused(const Tensor& input, tensor::EpilogueAct act,
                     float leaky_alpha = 0.01f) const {
    InferContext ctx;
    Tensor out;
    infer_fused_into(input, out, act, leaky_alpha, ctx);
    return out;
  }

  /// Opt-in weight prepacking for the inference path: layers whose infer()
  /// is a GEMM against an immutable weight (Dense, Conv2d) cache the
  /// current backend's packed panels and reuse them across calls, which
  /// removes the packing cost that dominates small-batch serving decode.
  /// Off by default because any weight mutation that bypasses the layer's
  /// own API (an optimizer stepping through ParamView pointers) must be
  /// followed by invalidate_weight_cache() — EdgeServer does exactly that
  /// after train_step. Stateless layers ignore both calls.
  virtual void set_weight_prepack(bool enabled) { (void)enabled; }

  /// Drops cached packed weights after an external weight mutation. Cheap
  /// (bumps a version; repacking is lazy on the next infer).
  virtual void invalidate_weight_cache() {}

  /// Trainable parameters (empty for stateless layers).
  virtual std::vector<ParamView> params() { return {}; }

  /// Resets accumulated parameter gradients to zero.
  void zero_grad() {
    for (auto& p : params()) p.grad->fill(0.0f);
  }

  /// Layer type name for diagnostics and serialisation headers.
  virtual std::string name() const = 0;

  /// Output feature count for a given input feature count; used by model
  /// builders to validate chains at construction time.
  virtual std::size_t output_features(std::size_t input_features) const = 0;

  /// Estimated multiply-add FLOPs for a forward pass over `batch` samples.
  /// Backward is conventionally charged at 2x forward. Stateless layers
  /// report 0 (their cost is negligible next to the GEMMs). Used by the
  /// simulated compute-time model (core/compute_model.h).
  virtual std::size_t forward_flops(std::size_t batch) const {
    (void)batch;
    return 0;
  }
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace orco::nn
