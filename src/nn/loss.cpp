#include "nn/loss.h"

#include <cmath>

#include "common/check.h"
#include "tensor/ops.h"

namespace orco::nn {

namespace {
void check_pair(const Tensor& pred, const Tensor& target, const char* who) {
  ORCO_CHECK(pred.shape() == target.shape(),
             who << ": shape mismatch " << tensor::shape_to_string(pred.shape())
                 << " vs " << tensor::shape_to_string(target.shape()));
  ORCO_CHECK(pred.numel() > 0, who << ": empty tensors");
}
}  // namespace

float MseLoss::value(const Tensor& pred, const Tensor& target) const {
  check_pair(pred, target, "MseLoss");
  return tensor::mse(pred, target);
}

Tensor MseLoss::gradient(const Tensor& pred, const Tensor& target) const {
  check_pair(pred, target, "MseLoss");
  const float scale = 2.0f / static_cast<float>(pred.numel());
  Tensor g = pred - target;
  g *= scale;
  return g;
}

float L1Loss::value(const Tensor& pred, const Tensor& target) const {
  check_pair(pred, target, "L1Loss");
  double acc = 0.0;
  const auto p = pred.data(), t = target.data();
  for (std::size_t i = 0; i < p.size(); ++i) acc += std::fabs(p[i] - t[i]);
  return static_cast<float>(acc / static_cast<double>(pred.numel()));
}

Tensor L1Loss::gradient(const Tensor& pred, const Tensor& target) const {
  check_pair(pred, target, "L1Loss");
  const float scale = 1.0f / static_cast<float>(pred.numel());
  Tensor g(pred.shape());
  const auto p = pred.data(), t = target.data();
  auto gd = g.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const float d = p[i] - t[i];
    gd[i] = d > 0.0f ? scale : (d < 0.0f ? -scale : 0.0f);
  }
  return g;
}

HuberLoss::HuberLoss(float delta) : delta_(delta) {
  ORCO_CHECK(delta > 0.0f, "Huber delta must be positive");
}

float HuberLoss::value(const Tensor& pred, const Tensor& target) const {
  check_pair(pred, target, "HuberLoss");
  double acc = 0.0;
  const auto p = pred.data(), t = target.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const float a = std::fabs(p[i] - t[i]);
    if (a <= delta_) {
      acc += 0.5 * static_cast<double>(a) * a;
    } else {
      acc += static_cast<double>(delta_) * a - 0.5 * delta_ * delta_;
    }
  }
  return static_cast<float>(acc / static_cast<double>(pred.numel()));
}

Tensor HuberLoss::gradient(const Tensor& pred, const Tensor& target) const {
  check_pair(pred, target, "HuberLoss");
  const float scale = 1.0f / static_cast<float>(pred.numel());
  Tensor g(pred.shape());
  const auto p = pred.data(), t = target.data();
  auto gd = g.data();
  for (std::size_t i = 0; i < p.size(); ++i) {
    const float d = p[i] - t[i];
    if (std::fabs(d) <= delta_) {
      gd[i] = d * scale;
    } else {
      gd[i] = (d > 0.0f ? delta_ : -delta_) * scale;
    }
  }
  return g;
}

float SoftmaxCrossEntropy::value(
    const Tensor& logits, const std::vector<std::size_t>& labels) const {
  ORCO_CHECK(logits.rank() == 2, "SoftmaxCrossEntropy wants rank-2 logits");
  ORCO_CHECK(labels.size() == logits.dim(0),
             "label count " << labels.size() << " vs batch " << logits.dim(0));
  const Tensor lsm = tensor::log_softmax_rows(logits);
  double acc = 0.0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    ORCO_CHECK(labels[i] < logits.dim(1), "label out of range");
    acc -= lsm.at(i, labels[i]);
  }
  return static_cast<float>(acc / static_cast<double>(labels.size()));
}

Tensor SoftmaxCrossEntropy::gradient(
    const Tensor& logits, const std::vector<std::size_t>& labels) const {
  ORCO_CHECK(logits.rank() == 2, "SoftmaxCrossEntropy wants rank-2 logits");
  ORCO_CHECK(labels.size() == logits.dim(0), "label/batch mismatch");
  Tensor g = tensor::softmax_rows(logits);
  const float inv_b = 1.0f / static_cast<float>(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    g.at(i, labels[i]) -= 1.0f;
  }
  g *= inv_b;
  return g;
}

}  // namespace orco::nn
