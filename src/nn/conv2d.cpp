#include "nn/conv2d.h"

#include "common/check.h"
#include "nn/init.h"
#include "obs/profile.h"
#include "tensor/matmul.h"

namespace orco::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, std::size_t pad,
               std::size_t in_h, std::size_t in_w, common::Pcg32& rng)
    : geom_{in_channels, in_h, in_w, kernel, kernel, stride, pad},
      out_channels_(out_channels),
      w_({out_channels, in_channels * kernel * kernel}),
      b_({out_channels}),
      gw_({out_channels, in_channels * kernel * kernel}),
      gb_({out_channels}) {
  ORCO_CHECK(in_channels > 0 && out_channels > 0 && kernel > 0 && stride > 0,
             "Conv2d: bad hyperparameters");
  // Validate geometry eagerly so misconfigured models fail at build time.
  (void)geom_.out_h();
  (void)geom_.out_w();
  he_normal(w_, in_channels * kernel * kernel, rng);
}

Tensor Conv2d::forward(const Tensor& input, bool /*training*/) {
  input_ = input;
  return infer(input);
}

void Conv2d::infer_into(const Tensor& input, Tensor& out,
                        InferContext& ctx) const {
  infer_fused_into(input, out, tensor::EpilogueAct::kNone, 0.01f, ctx);
}

void Conv2d::infer_fused_into(const Tensor& input, Tensor& out,
                              tensor::EpilogueAct act, float leaky_alpha,
                              InferContext& ctx) const {
  std::shared_ptr<const tensor::PackedWeights> packed;
  if (prepack_) packed = packed_weights();
  fused_into_impl(input, out, packed.get(), tensor::current_backend(), act,
                  leaky_alpha, ctx);
}

void Conv2d::infer_packed_into(const Tensor& input, Tensor& out,
                               const tensor::PackedWeights& packed,
                               tensor::EpilogueAct act, float leaky_alpha,
                               InferContext& ctx) const {
  fused_into_impl(input, out, &packed, *packed.owner, act, leaky_alpha, ctx);
}

void Conv2d::fused_into_impl(const Tensor& input, Tensor& out,
                             const tensor::PackedWeights* packed,
                             const tensor::Backend& backend,
                             tensor::EpilogueAct act, float leaky_alpha,
                             InferContext& ctx) const {
  const std::size_t in_feats = geom_.in_channels * geom_.in_h * geom_.in_w;
  ORCO_CHECK(input.rank() == 2 && input.dim(1) == in_feats,
             "Conv2d expects (batch, " << in_feats << "), got "
                                       << tensor::shape_to_string(input.shape()));
  ORCO_CHECK(&out != &input, "Conv2d cannot infer in place");
  const std::size_t batch = input.dim(0);
  const std::size_t oh = geom_.out_h(), ow = geom_.out_w();
  const std::size_t col_rows =
      geom_.in_channels * geom_.kernel_h * geom_.kernel_w;
  const std::size_t spatial = oh * ow;
  out.resize(batch, out_channels_ * spatial);
  tensor::Epilogue epi;
  epi.bias = b_.data().data();
  epi.bias_per_row = true;  // one bias per output channel row
  epi.act = act;
  epi.leaky_alpha = leaky_alpha;
  // One arena slab of column scratch, reused for every sample in the batch
  // and released on scope exit; the (outC, OH*OW) GEMM result lands
  // directly in the sample's output row — no per-sample Tensor, no
  // set_outer copy.
  tensor::WorkspaceScope scope(ctx.scratch());
  const std::size_t col_floats = col_rows * spatial;
  float* cols = ctx.scratch().alloc(col_floats);
  const std::uint64_t flops = 2ull * out_channels_ * col_rows * spatial;
  for (std::size_t s = 0; s < batch; ++s) {
    {
      OBS_SCOPED_SPAN(obs::KernelOp::kIm2col, 0);
      tensor::im2col_into(input.row(s), geom_, {cols, col_floats});
    }
    float* y = out.row(s).data();
    if (packed != nullptr) {
      OBS_SCOPED_SPAN(obs::KernelOp::kGemmPrepacked, flops);
      backend.gemm_prepacked(cols, *packed, y, out_channels_, col_rows,
                             spatial, epi);
    } else {
      OBS_SCOPED_SPAN(obs::KernelOp::kGemmFused, flops);
      backend.gemm_fused(w_.data().data(), cols, y, out_channels_, col_rows,
                         spatial, /*transpose_b=*/false, epi);
    }
  }
}

std::shared_ptr<const tensor::PackedWeights> Conv2d::packed_weights() const {
  std::uint64_t version = 0;
  return plan_pack(tensor::current_backend(), version);
}

std::shared_ptr<const tensor::PackedWeights> Conv2d::plan_pack(
    const tensor::Backend& backend, std::uint64_t& version_out) const {
  const std::uint64_t version =
      weight_version_.load(std::memory_order_acquire);
  version_out = version;
  common::MutexLock lock(pack_mu_);
  if (packed_ == nullptr || packed_->owner != &backend ||
      packed_version_ != version) {
    packed_ = std::make_shared<tensor::PackedWeights>(backend.pack_a(
        w_.data().data(), out_channels_,
        geom_.in_channels * geom_.kernel_h * geom_.kernel_w));
    packed_version_ = version;
  }
  return packed_;
}

Tensor Conv2d::backward(const Tensor& grad_output) {
  const std::size_t batch = input_.dim(0);
  const std::size_t oh = geom_.out_h(), ow = geom_.out_w();
  ORCO_CHECK(grad_output.rank() == 2 && grad_output.dim(0) == batch &&
                 grad_output.dim(1) == out_channels_ * oh * ow,
             "Conv2d backward shape mismatch");
  Tensor grad_input({batch, input_.dim(1)});
  for (std::size_t s = 0; s < batch; ++s) {
    const Tensor cols = tensor::im2col(input_.row(s), geom_);
    Tensor gy({out_channels_, oh * ow},
              std::vector<float>(grad_output.row(s).begin(),
                                 grad_output.row(s).end()));
    // dW += dY cols^T ; db += spatial sums ; dCols = W^T dY -> col2im.
    gw_ += tensor::matmul_nt(gy, cols);
    for (std::size_t oc = 0; oc < out_channels_; ++oc) {
      double acc = 0.0;
      const auto r = gy.row(oc);
      for (const auto v : r) acc += v;
      gb_[oc] += static_cast<float>(acc);
    }
    const Tensor gcols = tensor::matmul_tn(w_, gy);
    tensor::col2im(gcols, geom_, grad_input.row(s));
  }
  return grad_input;
}

std::vector<ParamView> Conv2d::params() {
  // The views hand out mutable weight pointers (optimizers, model_io
  // loading); conservatively drop any cached pack.
  invalidate_weight_cache();
  return {{"weight", &w_, &gw_}, {"bias", &b_, &gb_}};
}

std::size_t Conv2d::output_features(std::size_t input_features) const {
  const std::size_t in_feats = geom_.in_channels * geom_.in_h * geom_.in_w;
  ORCO_CHECK(input_features == in_feats,
             "Conv2d chain mismatch: got " << input_features << ", expected "
                                           << in_feats);
  return out_channels_ * geom_.out_h() * geom_.out_w();
}

}  // namespace orco::nn
