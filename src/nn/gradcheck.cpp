#include "nn/gradcheck.h"

#include <cmath>

#include "common/check.h"

namespace orco::nn {

namespace {

float dot(const Tensor& a, const Tensor& b) {
  double acc = 0.0;
  const auto ad = a.data(), bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) {
    acc += static_cast<double>(ad[i]) * bd[i];
  }
  return static_cast<float>(acc);
}

float rel_error(float analytic, float numeric) {
  const float denom =
      std::max(1e-4f, std::fabs(analytic) + std::fabs(numeric));
  return std::fabs(analytic - numeric) / denom;
}

}  // namespace

GradCheckReport gradcheck_layer(Layer& layer, const tensor::Shape& input_shape,
                                common::Pcg32& rng, float eps,
                                float tolerance) {
  return gradcheck_layer_with_input(layer, Tensor::randn(input_shape, rng),
                                    rng, eps, tolerance);
}

GradCheckReport gradcheck_layer_with_input(Layer& layer, Tensor input,
                                           common::Pcg32& rng, float eps,
                                           float tolerance) {
  Tensor out = layer.forward(input, /*training=*/false);
  const Tensor projection = Tensor::randn(out.shape(), rng);

  // Analytic gradients of L = sum(forward(x) ⊙ R).
  layer.zero_grad();
  (void)layer.forward(input, false);
  const Tensor grad_input = layer.backward(projection);

  GradCheckReport report;

  // Snapshot analytic parameter gradients (backward accumulated them).
  std::vector<Tensor> analytic_param_grads;
  for (auto& p : layer.params()) analytic_param_grads.push_back(*p.grad);

  // Numeric parameter gradients via central differences.
  auto params = layer.params();
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    auto& value = *params[pi].value;
    for (std::size_t j = 0; j < value.numel(); ++j) {
      const float saved = value[j];
      value[j] = saved + eps;
      const float plus = dot(layer.forward(input, false), projection);
      value[j] = saved - eps;
      const float minus = dot(layer.forward(input, false), projection);
      value[j] = saved;
      const float numeric = (plus - minus) / (2.0f * eps);
      const float analytic = analytic_param_grads[pi][j];
      report.max_param_rel_error =
          std::max(report.max_param_rel_error, rel_error(analytic, numeric));
    }
  }

  // Numeric input gradients.
  for (std::size_t j = 0; j < input.numel(); ++j) {
    const float saved = input[j];
    input[j] = saved + eps;
    const float plus = dot(layer.forward(input, false), projection);
    input[j] = saved - eps;
    const float minus = dot(layer.forward(input, false), projection);
    input[j] = saved;
    const float numeric = (plus - minus) / (2.0f * eps);
    report.max_input_rel_error = std::max(
        report.max_input_rel_error, rel_error(grad_input[j], numeric));
  }

  report.ok = report.max_param_rel_error <= tolerance &&
              report.max_input_rel_error <= tolerance;
  return report;
}

}  // namespace orco::nn
