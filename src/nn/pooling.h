// Spatial pooling layers for the follow-up CNN classifier.
#pragma once

#include "nn/layer.h"

namespace orco::nn {

/// Max pooling with square window; stores winner indices for backward.
class MaxPool2d : public Layer {
 public:
  MaxPool2d(std::size_t channels, std::size_t in_h, std::size_t in_w,
            std::size_t kernel, std::size_t stride);

  Tensor forward(const Tensor& input, bool training) override;
  Tensor backward(const Tensor& grad_output) override;
  void infer_into(const Tensor& input, Tensor& out,
                  InferContext& ctx) const override;
  std::string name() const override { return "MaxPool2d"; }
  std::size_t output_features(std::size_t input_features) const override;

  std::size_t out_h() const noexcept { return out_h_; }
  std::size_t out_w() const noexcept { return out_w_; }

 private:
  /// Shared forward compute writing into `out`; records winner indices only
  /// when `argmax` is non-null (training path).
  void compute_into(const Tensor& input, Tensor& out,
                    std::vector<std::size_t>* argmax) const;

  std::size_t channels_, in_h_, in_w_, kernel_, stride_;
  std::size_t out_h_, out_w_;
  std::vector<std::size_t> argmax_;  // flat winner index per output element
  std::size_t batch_ = 0;
};

}  // namespace orco::nn
