#include "nn/model_io.h"

#include "common/check.h"

namespace orco::nn {

namespace {
constexpr std::uint32_t kMagic = 0x4f52434fu;  // "ORCO"
}

std::vector<std::byte> save_params(Layer& model) {
  common::ByteWriter writer;
  writer.write_u32(kMagic);
  const auto params = model.params();
  writer.write_u64(params.size());
  for (const auto& p : params) {
    writer.write_string(p.name);
    writer.write_u64(p.value->rank());
    for (std::size_t d = 0; d < p.value->rank(); ++d) {
      writer.write_u64(p.value->dim(d));
    }
    writer.write_f32_span(p.value->data());
  }
  return writer.bytes();
}

void load_params(Layer& model, std::span<const std::byte> bytes) {
  common::ByteReader reader(bytes);
  ORCO_CHECK(reader.read_u32() == kMagic, "bad model file magic");
  auto params = model.params();
  const std::uint64_t count = reader.read_u64();
  ORCO_CHECK(count == params.size(), "model has " << params.size()
                                                  << " params, file has "
                                                  << count);
  for (auto& p : params) {
    const std::string name = reader.read_string();
    ORCO_CHECK(name == p.name,
               "param order mismatch: expected " << p.name << ", got " << name);
    const std::uint64_t rank = reader.read_u64();
    tensor::Shape shape(rank);
    for (auto& d : shape) d = reader.read_u64();
    ORCO_CHECK(shape == p.value->shape(),
               "shape mismatch for " << name << ": "
                                     << tensor::shape_to_string(shape) << " vs "
                                     << tensor::shape_to_string(p.value->shape()));
    const auto data = reader.read_f32_vector();
    ORCO_ENSURE(data.size() == p.value->numel(), "data size mismatch");
    std::copy(data.begin(), data.end(), p.value->data().begin());
  }
}

void save_params_file(Layer& model, const std::string& path) {
  const auto bytes = save_params(model);
  common::write_file(path, bytes);
}

void load_params_file(Layer& model, const std::string& path) {
  const auto bytes = common::read_file(path);
  load_params(model, bytes);
}

}  // namespace orco::nn
