// Weight initialisers (Glorot/He). Deterministic given the caller's RNG.
#pragma once

#include "common/rng.h"
#include "tensor/tensor.h"

namespace orco::nn {

/// Glorot/Xavier uniform: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(tensor::Tensor& w, std::size_t fan_in, std::size_t fan_out,
                    common::Pcg32& rng);

/// He/Kaiming normal: N(0, sqrt(2 / fan_in)). Preferred before ReLU.
void he_normal(tensor::Tensor& w, std::size_t fan_in, common::Pcg32& rng);

}  // namespace orco::nn
