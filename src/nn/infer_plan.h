// InferPlan — a compile-once, execute-many inference plan for a frozen
// layer chain.
//
// Sequential::infer_into re-discovers the chain's structure on every call:
// it walks nested containers, skips identity layers, peepholes the
// layer+activation fusion, and probes each layer's prepack cache (a mutex
// acquisition plus a version compare) per batch. For a serving decoder that
// structure is frozen the moment a snapshot is published — so InferPlan
// does all of it exactly once:
//
//   * nested Sequential chains are flattened and identity layers dropped;
//   * a following elementwise activation is fused into its producer op's
//     kernel epilogue at compile time;
//   * Dense/Conv2d weights are packed for the compile backend up front and
//     pinned to the op — the executor never probes a cache, takes a lock,
//     or checks a version;
//   * the exact context-arena high-water across the chain is precomputed,
//     so the first run() reserves once and the arena never grows.
//
// run() is then a branch-light loop over the flat op list, bitwise
// identical to Sequential::infer_into on every backend: fusion uses the
// same peephole rule, prepacked GEMMs are bitwise-identical to their
// unpacked equivalents (see tensor/backend.h), and buffer ping-pong only
// changes where bytes live, never their values.
//
// Compile triggers and sharing: ModelRegistry::publish compiles a plan per
// snapshot version (under the snapshot's pinned backend) and stores it on
// the immutable ModelSnapshot — every shard pinning that snapshot shares
// one plan with no synchronization beyond the snapshot's shared_ptr.
// EdgeServer compiles lazily for the registry-free decode path and
// recompiles when weights_stale() reports a weight-version bump (training
// steps, checkpoint loads). A compiled plan is immutable: it holds const
// pointers into the model, so the model must outlive it and structural
// mutation (Sequential::add) after compile is not supported.
//
// Registering a new op kind: implement Layer::infer_into (and
// infer_fused_into if the kernel can take an epilogue), report any arena
// scratch via Layer::infer_scratch_floats, and the plan executes it
// through the generic entries; layers with a pack-once weight additionally
// follow the Dense/Conv2d plan_pack pattern to get compile-time packing.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/table.h"
#include "nn/infer_context.h"
#include "nn/layer.h"
#include "obs/profile.h"
#include "tensor/backend.h"

namespace orco::nn {

class Dense;
class Conv2d;
class Sequential;

/// One compiled execution step: the resolved kernel entry (packed-Dense,
/// packed-Conv2d, fused-generic or plain infer_into), the epilogue folded
/// in at compile time, and the pre-packed weight panels it runs against.
struct PlanOp {
  const Layer* layer = nullptr;  // executing leaf layer
  const Dense* dense = nullptr;  // set when layer is a Dense
  const Conv2d* conv = nullptr;  // set when layer is a Conv2d
  /// Panels packed at compile for the plan backend; null for layers
  /// without a pack-once weight.
  std::shared_ptr<const tensor::PackedWeights> packed;
  /// Weight version `packed` captured — weights_stale() compares it
  /// against the layer's live version.
  std::uint64_t packed_version = 0;
  tensor::EpilogueAct act = tensor::EpilogueAct::kNone;
  float leaky_alpha = 0.01f;
  /// True when a following activation layer was folded into this op (the
  /// Sequential peephole); false ops run plain infer_into.
  bool fused = false;
  /// Index into the flattened source chain, for diagnostics.
  std::size_t source_index = 0;
};

class InferPlan {
 public:
  /// Compiles `model`'s flattened inference chain for `backend` (null =
  /// the calling thread's current backend). Packs Dense/Conv2d weights up
  /// front; the model must outlive the returned plan and must not be
  /// structurally mutated afterwards. Weight-value mutation is allowed —
  /// run() then still executes (reading the stale panels), and
  /// weights_stale() tells owners of mutable models when to recompile.
  static std::shared_ptr<const InferPlan> compile(
      const Sequential& model, const tensor::Backend* backend = nullptr);

  InferPlan(const InferPlan&) = delete;
  InferPlan& operator=(const InferPlan&) = delete;

  /// Executes the plan: `input` ping-pongs through the context buffers and
  /// the final op writes `out`. Bitwise identical to
  /// Sequential::infer_into on the compile backend. `out` must not alias
  /// `input`, and may alias a context buffer only for single-op (or empty)
  /// plans — multi-op plans need both buffers for intermediates. The
  /// first call reserves the precomputed arena high-water; after one
  /// warmup pass at the workload's largest batch, repeat runs perform
  /// zero heap allocations.
  void run(const Tensor& input, Tensor& out, InferContext& ctx) const;

  /// Executes the plan straight from uint8 latent codes (the int8 uplink
  /// head): a Dense head op feeds Backend::gemm_quantized via its
  /// pre-attached panels; otherwise the codes are dequantized
  /// (x = lo + q*scale) into the context input buffer and the float plan
  /// runs. Bitwise identical to Sequential::infer_quantized_into.
  void run_quantized(const std::uint8_t* codes, const tensor::QuantHeader& qh,
                     std::size_t batch, std::size_t features, Tensor& out,
                     InferContext& ctx) const;

  /// True when any op's pre-packed panels no longer match its layer's live
  /// weight version (a training step or checkpoint load happened since
  /// compile). Owners of mutable models (EdgeServer) check this to decide
  /// when to recompile; snapshot plans are immutable and never stale.
  bool weights_stale() const noexcept;

  /// Compiled op count (identity layers dropped, fused pairs are one op).
  std::size_t size() const noexcept { return ops_.size(); }
  const std::vector<PlanOp>& ops() const noexcept { return ops_; }

  /// The backend the plan was compiled (and weights packed) for.
  const tensor::Backend& backend() const noexcept { return *backend_; }

  /// Exact context-arena high-water of one run(), in floats (already
  /// rounded to the Workspace allocation grain).
  std::size_t scratch_floats() const noexcept { return scratch_floats_; }

  /// Per-op execution profile accumulated while obs::kernel_profiling is
  /// enabled: op | kernel | calls | total ms | mean us. Replaces
  /// Sequential's per-layer table on the serving path. Rows with zero
  /// calls are omitted.
  common::Table op_profile_table() const;
  /// Zeroes the per-op profile accumulators.
  void reset_op_profile() const;

 private:
  InferPlan() = default;

  /// The executor loop over ops [start, ...): shared by run() and the
  /// quantized entry's tail.
  void run_ops(const Tensor* cur, std::size_t start, Tensor& out,
               InferContext& ctx) const;

  std::vector<PlanOp> ops_;
  const tensor::Backend* backend_ = nullptr;
  std::size_t scratch_floats_ = 0;
  // One cache-line-padded timer per op; mutable because profiling a const
  // execution is still logically const.
  std::unique_ptr<obs::OpTimer[]> timers_;
};

}  // namespace orco::nn
