#include "nn/activations.h"

#include <cmath>

#include "common/check.h"

namespace orco::nn {

namespace {

/// Shared elementwise infer_into body: resizes `out` (no-op at steady
/// state) and maps `f` index-aligned, which is alias-safe — activations may
/// compute in place when the caller ping-pongs onto the same buffer.
template <typename F>
void map_into(const Tensor& input, Tensor& out, F&& f) {
  out.resize_like(input);
  const auto in = input.data();
  auto od = out.data();
  for (std::size_t i = 0; i < in.size(); ++i) od[i] = f(in[i]);
}

}  // namespace

Tensor ReLU::forward(const Tensor& input, bool /*training*/) {
  input_ = input;
  return infer(input);
}

void ReLU::infer_into(const Tensor& input, Tensor& out,
                      InferContext& /*ctx*/) const {
  map_into(input, out, [](float v) { return v > 0.0f ? v : 0.0f; });
}

Tensor ReLU::backward(const Tensor& grad_output) {
  ORCO_CHECK(grad_output.shape() == input_.shape(), "ReLU backward mismatch");
  Tensor out = grad_output;
  const auto in = input_.data();
  auto od = out.data();
  for (std::size_t i = 0; i < od.size(); ++i) {
    if (in[i] <= 0.0f) od[i] = 0.0f;
  }
  return out;
}

LeakyReLU::LeakyReLU(float alpha) : alpha_(alpha) {
  ORCO_CHECK(alpha >= 0.0f && alpha < 1.0f, "LeakyReLU alpha out of range");
}

Tensor LeakyReLU::forward(const Tensor& input, bool /*training*/) {
  input_ = input;
  return infer(input);
}

void LeakyReLU::infer_into(const Tensor& input, Tensor& out,
                           InferContext& /*ctx*/) const {
  const float a = alpha_;
  map_into(input, out, [a](float v) { return v > 0.0f ? v : a * v; });
}

Tensor LeakyReLU::backward(const Tensor& grad_output) {
  ORCO_CHECK(grad_output.shape() == input_.shape(),
             "LeakyReLU backward mismatch");
  Tensor out = grad_output;
  const auto in = input_.data();
  auto od = out.data();
  for (std::size_t i = 0; i < od.size(); ++i) {
    if (in[i] <= 0.0f) od[i] *= alpha_;
  }
  return out;
}

Tensor Sigmoid::forward(const Tensor& input, bool /*training*/) {
  output_ = infer(input);
  return output_;
}

void Sigmoid::infer_into(const Tensor& input, Tensor& out,
                         InferContext& /*ctx*/) const {
  map_into(input, out, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

Tensor Sigmoid::backward(const Tensor& grad_output) {
  ORCO_CHECK(grad_output.shape() == output_.shape(),
             "Sigmoid backward mismatch");
  Tensor out = grad_output;
  const auto y = output_.data();
  auto od = out.data();
  for (std::size_t i = 0; i < od.size(); ++i) od[i] *= y[i] * (1.0f - y[i]);
  return out;
}

Tensor Tanh::forward(const Tensor& input, bool /*training*/) {
  output_ = infer(input);
  return output_;
}

void Tanh::infer_into(const Tensor& input, Tensor& out,
                      InferContext& /*ctx*/) const {
  map_into(input, out, [](float v) { return std::tanh(v); });
}

Tensor Tanh::backward(const Tensor& grad_output) {
  ORCO_CHECK(grad_output.shape() == output_.shape(), "Tanh backward mismatch");
  Tensor out = grad_output;
  const auto y = output_.data();
  auto od = out.data();
  for (std::size_t i = 0; i < od.size(); ++i) od[i] *= 1.0f - y[i] * y[i];
  return out;
}

Tensor Identity::forward(const Tensor& input, bool /*training*/) {
  return input;
}

void Identity::infer_into(const Tensor& input, Tensor& out,
                          InferContext& /*ctx*/) const {
  map_into(input, out, [](float v) { return v; });
}

Tensor Identity::backward(const Tensor& grad_output) { return grad_output; }

std::optional<tensor::EpilogueAct> activation_epilogue(const Layer& layer,
                                                       float& leaky_alpha) {
  if (dynamic_cast<const Identity*>(&layer)) return tensor::EpilogueAct::kNone;
  if (dynamic_cast<const ReLU*>(&layer)) return tensor::EpilogueAct::kReLU;
  if (const auto* leaky = dynamic_cast<const LeakyReLU*>(&layer)) {
    leaky_alpha = leaky->alpha();
    return tensor::EpilogueAct::kLeakyReLU;
  }
  if (dynamic_cast<const Sigmoid*>(&layer)) return tensor::EpilogueAct::kSigmoid;
  if (dynamic_cast<const Tanh*>(&layer)) return tensor::EpilogueAct::kTanh;
  return std::nullopt;
}

LayerPtr make_activation(Activation kind) {
  switch (kind) {
    case Activation::kIdentity:  return std::make_unique<Identity>();
    case Activation::kReLU:      return std::make_unique<ReLU>();
    case Activation::kLeakyReLU: return std::make_unique<LeakyReLU>();
    case Activation::kSigmoid:   return std::make_unique<Sigmoid>();
    case Activation::kTanh:      return std::make_unique<Tanh>();
  }
  throw std::invalid_argument("unknown activation kind");
}

}  // namespace orco::nn
