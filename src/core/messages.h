// Wire messages of the IoT-Edge orchestration protocol (paper §III-B,
// "Training procedure"). One online-training step exchanges:
//
//   1. LatentBatchMsg      aggregator -> edge   (uplink,   B x M floats)
//   2. ReconstructionMsg   edge -> aggregator   (downlink, B x N floats)
//   3. ResidualMsg         aggregator -> edge   (uplink,   B x N floats)
//   4. LatentGradMsg       edge -> aggregator   (downlink, B x M floats)
//
// plus EncoderShareMsg for the post-training encoder-column broadcast
// (§III-C). Every message serialises through ByteWriter so the byte counts
// charged to the channel are true wire sizes, not estimates.
#pragma once

#include "common/serialize.h"
#include "tensor/tensor.h"

namespace orco::core {

using tensor::Tensor;

/// Serialises a rank-2 tensor with its dimensions.
void write_tensor(common::ByteWriter& writer, const Tensor& t);
Tensor read_tensor(common::ByteReader& reader);

struct LatentBatchMsg {
  std::uint64_t round = 0;
  Tensor latents;  // (B, M), noise already applied (eq. 2)

  std::vector<std::byte> serialize() const;
  static LatentBatchMsg deserialize(std::span<const std::byte> bytes);
};

struct ReconstructionMsg {
  std::uint64_t round = 0;
  Tensor reconstructions;  // (B, N)

  std::vector<std::byte> serialize() const;
  static ReconstructionMsg deserialize(std::span<const std::byte> bytes);
};

struct ResidualMsg {
  std::uint64_t round = 0;
  Tensor residuals;  // (B, N): X - Xr, the "reconstruction error" of §III-B

  std::vector<std::byte> serialize() const;
  static ResidualMsg deserialize(std::span<const std::byte> bytes);
};

struct LatentGradMsg {
  std::uint64_t round = 0;
  float loss = 0.0f;   // Huber loss the edge observed this round
  Tensor latent_grad;  // (B, M): dL/d(noisy latent)

  std::vector<std::byte> serialize() const;
  static LatentGradMsg deserialize(std::span<const std::byte> bytes);
};

/// Per-device slice of the trained encoder (§III-C): device i needs only
/// column i of We plus the shared bias to form its contribution.
struct EncoderShareMsg {
  std::uint64_t device = 0;
  Tensor column;  // (M): We[:, device]
  Tensor bias;    // (M): shared bias b (included once per broadcast)

  std::vector<std::byte> serialize() const;
  static EncoderShareMsg deserialize(std::span<const std::byte> bytes);
};

}  // namespace orco::core
