// OrcoDcsSystem — the high-level public API tying the whole framework
// together: WSN cluster, data aggregator, edge server, orchestration
// protocol and fine-tuning monitor. Examples and benches drive this facade;
// individual components remain accessible for advanced use.
#pragma once

#include <functional>
#include <memory>

#include "core/config.h"
#include "core/monitor.h"
#include "core/orchestrator.h"
#include "data/dataset.h"
#include "wsn/aggregation_tree.h"
#include "wsn/field.h"

namespace orco::core {

struct SystemConfig {
  OrcoConfig orco;
  wsn::FieldConfig field;
  wsn::ChannelConfig channel;
  wsn::RadioModel radio;
  ComputeModel compute;
};

struct TrainSummary {
  std::vector<RoundRecord> rounds;
  float final_loss = 0.0f;
  double sim_seconds = 0.0;  // simulated clock at end of training
};

class OrcoDcsSystem {
 public:
  explicit OrcoDcsSystem(const SystemConfig& config);

  /// Stage 1 (§III-A): one intra-cluster raw aggregation round moving
  /// `total_payload_bytes` of raw sensing data up the tree. Advances the
  /// clock and charges the ledger. Returns simulated seconds.
  double raw_aggregation_round(std::size_t bytes_per_device_reading);

  /// Stage 2 (§III-B): online orchestrated training.
  TrainSummary train_online(
      const data::Dataset& train, std::size_t epochs,
      const std::function<void(const RoundRecord&)>& on_round = nullptr);

  /// Stage 3 (§III-C): broadcasts the trained encoder columns to devices
  /// and returns simulated seconds; then compressed rounds can run.
  double distribute_encoder();

  /// Steady-state intra-cluster hybrid CS aggregation of one cluster-wide
  /// reading (scalar per device), followed by the uplink of the latent.
  double compressed_aggregation_round();

  /// Aggregates a batch of already-collected images to the edge (encode +
  /// uplink), as in the Fig. 3 transmission experiment.
  double aggregate_images(const Tensor& batch);

  /// Noise-free end-to-end reconstruction.
  Tensor reconstruct(const Tensor& images);

  /// Mean evaluation loss over a dataset.
  float evaluate_loss(const data::Dataset& dataset);

  /// evaluate_loss decoding through a caller-owned InferContext (see
  /// Orchestrator::evaluate_loss): the TrainerRuntime's validation path
  /// reuses one context per tenant across jobs.
  float evaluate_loss(const data::Dataset& dataset, nn::InferContext& ctx);

  /// §III-D: feed a periodic reconstruction-error observation; returns true
  /// when the monitor demands a training relaunch.
  bool monitor_observe(float loss) { return monitor_.should(*this, loss); }

  /// Persists the trained encoder + decoder weights to one checkpoint file.
  /// Crash-safe: written to a temp file and atomically renamed into place,
  /// so a reader never observes a torn checkpoint. Restoring requires an
  /// identically-configured system.
  void save_checkpoint(const std::string& path);
  void load_checkpoint(const std::string& path);

  /// Deep-copies the current decoder / encoder into a freshly built model
  /// with identical weights (bitwise: parameters are copied through the
  /// model_io round-trip, and build_* reconstructs the exact layer chain).
  /// This is the export side of the serve-while-retraining hot swap: the
  /// training runtime clones here, freezes the clone into a
  /// train::ModelSnapshot and publishes it, so serving never shares
  /// mutable weights with training. Callers must not run these
  /// concurrently with training rounds on this system.
  std::unique_ptr<nn::Sequential> export_decoder_clone();
  std::unique_ptr<nn::Sequential> export_encoder_clone();

  /// Current decoder generation (EdgeServer::model_version).
  std::uint64_t model_version() const noexcept {
    return edge_->model_version();
  }

  // -- component access ---------------------------------------------------
  DataAggregator& aggregator() noexcept { return *aggregator_; }
  EdgeServer& edge() noexcept { return *edge_; }
  const EdgeServer& edge() const noexcept { return *edge_; }
  Orchestrator& orchestrator() noexcept { return *orchestrator_; }
  FineTuningMonitor& monitor() noexcept { return monitor_.inner; }
  const wsn::TransmissionLedger& ledger() const noexcept { return ledger_; }
  wsn::TransmissionLedger& ledger() noexcept { return ledger_; }
  const wsn::Field& field() const noexcept { return field_; }
  const wsn::AggregationTree& tree() const noexcept { return *tree_; }
  double sim_time() const noexcept { return clock_.now(); }
  const SystemConfig& config() const noexcept { return config_; }

 private:
  struct MonitorShim {
    explicit MonitorShim(const OrcoConfig& c)
        : inner(c.relaunch_factor, c.monitor_window, c.monitor_cooldown) {}
    bool should(OrcoDcsSystem&, float loss) {
      return inner.has_baseline() ? inner.observe(loss) : false;
    }
    FineTuningMonitor inner;
  };

  SystemConfig config_;
  wsn::Field field_;
  wsn::RadioModel radio_;
  std::unique_ptr<wsn::AggregationTree> tree_;
  wsn::TransmissionLedger ledger_;
  wsn::Channel channel_;
  wsn::SimClock clock_;
  std::unique_ptr<DataAggregator> aggregator_;
  std::unique_ptr<EdgeServer> edge_;
  std::unique_ptr<Orchestrator> orchestrator_;
  MonitorShim monitor_;
};

}  // namespace orco::core
