#include "core/distributed_encoding.h"

#include <cmath>

#include "common/check.h"
#include "nn/dense.h"

namespace orco::core {

DistributedEncoder::DistributedEncoder(const wsn::AggregationTree& tree,
                                       std::vector<EncoderShareMsg> shares)
    : tree_(&tree), shares_(std::move(shares)) {
  ORCO_CHECK(!shares_.empty(), "no encoder shares");
  const std::size_t m = shares_.front().column.numel();
  for (const auto& s : shares_) {
    ORCO_CHECK(s.column.numel() == m && s.bias.numel() == m,
               "inconsistent share dimensions");
  }
  // Map devices onto non-root nodes in node-id order.
  const std::size_t nodes = tree.bottom_up_order().size();
  ORCO_CHECK(shares_.size() == nodes - 1,
             "share count " << shares_.size() << " must equal device count "
                            << nodes - 1);
  node_to_device_.assign(nodes, std::nullopt);
  std::size_t next = 0;
  for (wsn::NodeId n = 0; n < nodes; ++n) {
    if (n == tree.root()) continue;
    node_to_device_[n] = next++;
  }
}

std::size_t DistributedEncoder::latent_dim() const {
  return shares_.front().column.numel();
}

std::size_t DistributedEncoder::device_for_node(wsn::NodeId node) const {
  ORCO_CHECK(node < node_to_device_.size(), "node out of range");
  ORCO_CHECK(node_to_device_[node].has_value(), "root node has no device");
  return *node_to_device_[node];
}

Tensor DistributedEncoder::encode(const Tensor& readings,
                                  std::vector<NodeTraffic>* traffic) const {
  ORCO_CHECK(readings.rank() == 1 && readings.numel() == shares_.size(),
             "readings must be rank-1 of device count");
  const std::size_t m = latent_dim();
  const std::size_t nodes = node_to_device_.size();
  if (traffic) traffic->assign(nodes, NodeTraffic{});

  // Per-node upstream state: raw readings (device, value) not yet
  // compressed, plus an optional M-dim partial sum.
  struct Upstream {
    std::vector<std::pair<std::size_t, float>> raw;
    std::vector<double> partial;  // double accumulation for exactness
    bool has_partial = false;
  };
  std::vector<Upstream> state(nodes);

  auto fold_raw_into_partial = [&](Upstream& up) {
    if (!up.has_partial) {
      up.partial.assign(m, 0.0);
      up.has_partial = true;
    }
    for (const auto& [device, value] : up.raw) {
      const auto col = shares_[device].column.data();
      for (std::size_t k = 0; k < m; ++k) {
        up.partial[k] += static_cast<double>(col[k]) * value;
      }
    }
    up.raw.clear();
  };

  for (const wsn::NodeId u : tree_->bottom_up_order()) {
    Upstream& mine = state[u];
    // Absorb children's upstream traffic.
    for (const wsn::NodeId c : tree_->children(u)) {
      Upstream& theirs = state[c];
      if (theirs.has_partial) {
        if (!mine.has_partial) {
          mine.partial.assign(m, 0.0);
          mine.has_partial = true;
        }
        for (std::size_t k = 0; k < m; ++k) mine.partial[k] += theirs.partial[k];
      }
      mine.raw.insert(mine.raw.end(), theirs.raw.begin(), theirs.raw.end());
      state[c] = Upstream{};  // free child state
    }
    if (u == tree_->root()) break;  // root combines below

    // Contribute this node's own reading.
    const std::size_t device = *node_to_device_[u];
    mine.raw.emplace_back(device, readings[device]);

    // Hybrid rule: compress once the subtree carries >= M readings.
    if (tree_->subtree_size(u) >= m) fold_raw_into_partial(mine);

    if (traffic) {
      (*traffic)[u].raw_values = mine.raw.size();
      (*traffic)[u].partial_values = mine.has_partial ? m : 0;
    }
  }

  // Root: fold any remaining raw readings, add bias, apply sigmoid (eq. 6).
  Upstream& root_state = state[tree_->root()];
  fold_raw_into_partial(root_state);
  const auto bias = shares_.front().bias.data();
  Tensor latent({m});
  for (std::size_t k = 0; k < m; ++k) {
    const double z = root_state.partial[k] + bias[k];
    latent[k] = 1.0f / (1.0f + static_cast<float>(std::exp(-z)));
  }
  return latent;
}

std::vector<EncoderShareMsg> make_encoder_shares(
    const nn::Sequential& encoder, std::size_t device_count) {
  const auto& dense = dynamic_cast<const nn::Dense&>(encoder.layer(0));
  ORCO_CHECK(dense.in_features() == device_count,
             "encoder input dim " << dense.in_features()
                                  << " must equal device count "
                                  << device_count);
  std::vector<EncoderShareMsg> shares;
  shares.reserve(device_count);
  for (std::size_t d = 0; d < device_count; ++d) {
    Tensor column({dense.out_features()});
    for (std::size_t k = 0; k < dense.out_features(); ++k) {
      column[k] = dense.weight().at(k, d);
    }
    shares.push_back(EncoderShareMsg{d, std::move(column), dense.bias()});
  }
  return shares;
}

}  // namespace orco::core
