#include "core/models.h"

#include "common/check.h"
#include "nn/activations.h"
#include "nn/dense.h"

namespace orco::core {

std::unique_ptr<nn::Sequential> build_encoder(const OrcoConfig& config,
                                              common::Pcg32& rng) {
  ORCO_CHECK(config.input_dim > 0 && config.latent_dim > 0,
             "encoder dims must be positive");
  auto model = std::make_unique<nn::Sequential>();
  model->emplace<nn::Dense>(config.input_dim, config.latent_dim, rng);
  model->emplace<nn::Sigmoid>();
  return model;
}

std::unique_ptr<nn::Sequential> build_decoder(const OrcoConfig& config,
                                              common::Pcg32& rng) {
  ORCO_CHECK(config.decoder_layers >= 1, "decoder needs at least one layer");
  auto model = std::make_unique<nn::Sequential>();
  const std::size_t hidden = config.decoder_hidden();
  std::size_t in = config.latent_dim;
  for (std::size_t l = 0; l + 1 < config.decoder_layers; ++l) {
    model->emplace<nn::Dense>(in, hidden, rng);
    model->emplace<nn::ReLU>();
    in = hidden;
  }
  model->emplace<nn::Dense>(in, config.input_dim, rng);
  model->emplace<nn::Sigmoid>();
  return model;
}

}  // namespace orco::core
