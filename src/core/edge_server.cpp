#include "core/edge_server.h"

#include <cmath>

#include "common/check.h"
#include "obs/config.h"
#include "obs/trace.h"

namespace orco::core {

EdgeServer::EdgeServer(std::unique_ptr<nn::Sequential> decoder,
                       const OrcoConfig& config)
    : decoder_(std::move(decoder)),
      loss_kind_(config.loss),
      huber_delta_(config.huber_delta),
      latent_dim_(config.latent_dim),
      output_dim_(config.input_dim) {
  ORCO_CHECK(decoder_ != nullptr, "null decoder");
  ORCO_CHECK(decoder_->output_features(config.latent_dim) == config.input_dim,
             "decoder does not map latent_dim to input_dim");
  backend_ = tensor::resolve_backend(config.backend);
  optimizer_ = std::make_unique<nn::Sgd>(decoder_->params(),
                                         config.learning_rate,
                                         config.momentum);
  // Steady-state decode reuses backend-packed decoder weights; train_step
  // invalidates the cache after each optimizer step, so decodes between
  // rounds never see stale panels.
  if (config.prepack_decoder) decoder_->set_weight_prepack(true);
}

ReconstructionMsg EdgeServer::reconstruct(const LatentBatchMsg& msg,
                                          bool training) {
  ORCO_CHECK(msg.latents.rank() == 2 && msg.latents.dim(1) == latent_dim_,
             "edge expects (batch, " << latent_dim_ << ") latents");
  if (training) {
    ORCO_CHECK(!round_open_, "edge round " << pending_round_ << " still open");
    pending_round_ = msg.round;
    round_open_ = true;
    batch_in_flight_ = msg.latents.dim(0);
  }
  tensor::BackendScope scope(backend_);
  Tensor rec = decoder_->forward(msg.latents, training);
  return ReconstructionMsg{msg.round, std::move(rec)};
}

LatentGradMsg EdgeServer::train_step(const ResidualMsg& msg) {
  ORCO_CHECK(round_open_ && msg.round == pending_round_,
             "residual for round " << msg.round << " does not match "
                                   << pending_round_);
  ORCO_CHECK(msg.residuals.rank() == 2 &&
                 msg.residuals.dim(0) == batch_in_flight_ &&
                 msg.residuals.dim(1) == output_dim_,
             "residual shape mismatch");

  // Loss and gradient are functions of the residual r = X - Xr alone:
  //   Huber: L = mean(huber(r)),   dL/dXr = -clip(r, ±delta) / numel
  //   MSE:   L = mean(r^2),        dL/dXr = -2 r / numel
  const auto r = msg.residuals.data();
  const float inv_n = 1.0f / static_cast<float>(msg.residuals.numel());
  Tensor grad(msg.residuals.shape());
  auto gd = grad.data();
  double loss_acc = 0.0;
  for (std::size_t i = 0; i < r.size(); ++i) {
    const float ri = r[i];
    if (loss_kind_ == ReconLoss::kMse) {
      loss_acc += static_cast<double>(ri) * ri;
      gd[i] = -2.0f * ri * inv_n;
      continue;
    }
    const float a = std::fabs(ri);
    if (a <= huber_delta_) {
      loss_acc += 0.5 * static_cast<double>(a) * a;
      gd[i] = -ri * inv_n;
    } else {
      loss_acc += static_cast<double>(huber_delta_) * a -
                  0.5 * huber_delta_ * huber_delta_;
      gd[i] = (ri > 0.0f ? -huber_delta_ : huber_delta_) * inv_n;
    }
  }
  const float loss =
      static_cast<float>(loss_acc / static_cast<double>(msg.residuals.numel()));

  optimizer_->zero_grad();
  tensor::BackendScope scope(backend_);
  Tensor latent_grad = decoder_->backward(grad);
  optimizer_->step();
  // The step mutated the decoder weights through ParamView pointers the
  // layers cannot observe: drop every cached weight pack and advance the
  // decoder generation (release-ordered so a reader that sees the new
  // version also sees the invalidated cache).
  decoder_->invalidate_weight_cache();
  model_version_.fetch_add(1, std::memory_order_acq_rel);
  round_open_ = false;
  return LatentGradMsg{msg.round, loss, std::move(latent_grad)};
}

namespace {

/// Sampled span decision for standalone decode calls (outside the serving
/// runtime, which makes its own per-request decision and wraps this call in
/// its "decode" stage span).
bool sample_decode_span() {
  return obs::trace_enabled() &&
         obs::TraceCollector::instance().should_sample();
}

}  // namespace

std::shared_ptr<const nn::InferPlan> EdgeServer::current_plan() const {
  auto plan = plan_.load(std::memory_order_acquire);
  if (plan != nullptr && !plan->weights_stale()) return plan;
  // Compile (or recompile after a weight-version bump) under the rebuild
  // lock; concurrent decoders that lose the race reuse the winner's plan.
  common::MutexLock lock(plan_mu_);
  plan = plan_.load(std::memory_order_acquire);
  if (plan == nullptr || plan->weights_stale()) {
    tensor::BackendScope scope(backend_);
    plan = nn::InferPlan::compile(*decoder_);
    plan_.store(plan, std::memory_order_release);
  }
  return plan;
}

Tensor EdgeServer::decode_inference(const Tensor& latents) const {
  ORCO_CHECK(!round_open_, "cannot run inference with an open round");
  obs::ScopedSpan span("edge.decode", "core", sample_decode_span(), /*id=*/0,
                       /*tenant=*/0, latents.rank() > 0 ? latents.dim(0) : 0);
  const auto plan = current_plan();
  tensor::BackendScope scope(backend_);
  nn::InferContext ctx;
  Tensor out;
  plan->run(latents, out, ctx);
  return out;
}

void EdgeServer::decode_inference(const Tensor& latents, Tensor& out,
                                  nn::InferContext& ctx) const {
  ORCO_CHECK(!round_open_, "cannot run inference with an open round");
  obs::ScopedSpan span("edge.decode", "core", sample_decode_span(), /*id=*/0,
                       /*tenant=*/0, latents.rank() > 0 ? latents.dim(0) : 0);
  const auto plan = current_plan();
  tensor::BackendScope scope(backend_);
  plan->run(latents, out, ctx);
}

void EdgeServer::decode_inference_quantized(const std::uint8_t* codes,
                                            const tensor::QuantHeader& qh,
                                            std::size_t batch, Tensor& out,
                                            nn::InferContext& ctx) const {
  ORCO_CHECK(!round_open_, "cannot run inference with an open round");
  obs::ScopedSpan span("edge.decode", "core", sample_decode_span(), /*id=*/0,
                       /*tenant=*/0, batch);
  const auto plan = current_plan();
  tensor::BackendScope scope(backend_);
  plan->run_quantized(codes, qh, batch, latent_dim_, out, ctx);
}

std::size_t EdgeServer::train_flops(std::size_t batch) const {
  return 3 * decoder_->forward_flops(batch);
}

}  // namespace orco::core
