// EdgeFleet — concrete simulation of the paper's §V future-work question:
// "optimization of training overhead on edge servers when a large number of
// data aggregators need to perform training procedures".
//
// K clusters run closed-loop training rounds against one shared edge
// server. Each round: the aggregator computes its encoder passes
// (aggregator_s), the job queues FIFO at the edge, the edge serves it
// (edge_service_s), and the cluster immediately starts its next round.
// Discrete-event simulation; reports utilisation, waiting, fairness and
// per-cluster throughput — the quantitative case for an IoT-Edge-Cloud
// split once the edge saturates.
#pragma once

#include <cstddef>
#include <vector>

namespace orco::core {

struct EdgeFleetConfig {
  std::size_t clusters = 4;
  double aggregator_s = 0.08;   // aggregator-side compute per round
  double edge_service_s = 0.01; // edge-side compute per round (FIFO server)
  double comms_s = 0.005;       // fixed per-round channel time
  double horizon_s = 100.0;     // simulated duration
};

struct EdgeFleetReport {
  double edge_utilisation = 0.0;   // busy fraction of the horizon
  double mean_wait_s = 0.0;        // mean FIFO queueing delay
  double max_wait_s = 0.0;
  double mean_round_latency_s = 0.0;  // aggregator + wait + service + comms
  std::vector<std::size_t> rounds_per_cluster;
  std::size_t total_rounds = 0;
  /// min/max per-cluster round counts ratio (1.0 = perfectly fair).
  double fairness = 1.0;
};

/// Runs the discrete-event simulation. Deterministic (no randomness:
/// closed-loop arrivals, FIFO service, ties broken by cluster id).
EdgeFleetReport simulate_edge_fleet(const EdgeFleetConfig& config);

}  // namespace orco::core
