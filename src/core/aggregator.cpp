#include "core/aggregator.h"

#include <cmath>

#include "common/check.h"
#include "nn/dense.h"

namespace orco::core {

DataAggregator::DataAggregator(std::unique_ptr<nn::Sequential> encoder,
                               const OrcoConfig& config, common::Pcg32 rng)
    : encoder_(std::move(encoder)),
      loss_(config.loss == ReconLoss::kHuber
                ? std::unique_ptr<nn::Loss>(
                      std::make_unique<nn::HuberLoss>(config.huber_delta))
                : std::make_unique<nn::MseLoss>()),
      noise_sigma_(std::sqrt(config.noise_variance)),
      rng_(rng),
      input_dim_(config.input_dim),
      latent_dim_(config.latent_dim) {
  ORCO_CHECK(encoder_ != nullptr, "null encoder");
  ORCO_CHECK(encoder_->output_features(config.input_dim) == config.latent_dim,
             "encoder does not map input_dim to latent_dim");
  optimizer_ = std::make_unique<nn::Sgd>(encoder_->params(),
                                         config.learning_rate,
                                         config.momentum);
}

void DataAggregator::set_noise_variance(float variance) {
  ORCO_CHECK(variance >= 0.0f, "noise variance must be non-negative");
  noise_sigma_ = std::sqrt(variance);
}

LatentBatchMsg DataAggregator::encode_batch(const Tensor& batch,
                                            std::uint64_t round,
                                            bool training) {
  ORCO_CHECK(batch.rank() == 2 && batch.dim(1) == input_dim_,
             "aggregator expects (batch, " << input_dim_ << ")");
  Tensor latents = encoder_->forward(batch, training);
  if (training) {
    ORCO_CHECK(!round_open_,
               "round " << pending_round_ << " still open; finish it first");
    pending_batch_ = batch;
    pending_round_ = round;
    round_open_ = true;
    if (noise_sigma_ > 0.0f) {
      for (auto& v : latents.data()) {
        v += static_cast<float>(rng_.normal(0.0, noise_sigma_));
      }
    }
  }
  return LatentBatchMsg{round, std::move(latents)};
}

std::pair<float, ResidualMsg> DataAggregator::evaluate_reconstruction(
    const ReconstructionMsg& msg) {
  ORCO_CHECK(round_open_ && msg.round == pending_round_,
             "reconstruction for round " << msg.round << " does not match "
                                         << pending_round_);
  ORCO_CHECK(msg.reconstructions.shape() == pending_batch_.shape(),
             "reconstruction shape mismatch");
  const float loss = loss_->value(msg.reconstructions, pending_batch_);
  return {loss, ResidualMsg{msg.round, pending_batch_ - msg.reconstructions}};
}

void DataAggregator::apply_latent_gradient(const LatentGradMsg& msg) {
  ORCO_CHECK(round_open_ && msg.round == pending_round_,
             "latent gradient for round " << msg.round << " does not match "
                                          << pending_round_);
  ORCO_CHECK(msg.latent_grad.rank() == 2 &&
                 msg.latent_grad.dim(1) == latent_dim_,
             "latent gradient shape mismatch");
  optimizer_->zero_grad();
  // Noise is additive, so dL/d(clean latent) == dL/d(noisy latent).
  (void)encoder_->backward(msg.latent_grad);
  optimizer_->step();
  round_open_ = false;
}

EncoderShareMsg DataAggregator::encoder_share(std::size_t device) const {
  ORCO_CHECK(device < input_dim_,
             "device " << device << " out of range " << input_dim_);
  // The first layer of the encoder is the dense map (eq. 1).
  const auto& dense =
      dynamic_cast<const nn::Dense&>(encoder_->layer(0));
  Tensor column({latent_dim_});
  for (std::size_t m = 0; m < latent_dim_; ++m) {
    column[m] = dense.weight().at(m, device);
  }
  return EncoderShareMsg{device, std::move(column), dense.bias()};
}

Tensor DataAggregator::encode_inference(const Tensor& batch) {
  ORCO_CHECK(!round_open_, "cannot run inference with an open round");
  return encoder_->forward(batch, /*training=*/false);
}

std::size_t DataAggregator::train_flops(std::size_t batch) const {
  return 3 * encoder_->forward_flops(batch);
}

}  // namespace orco::core
