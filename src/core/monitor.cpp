#include "core/monitor.h"

#include <numeric>

#include "common/check.h"

namespace orco::core {

FineTuningMonitor::FineTuningMonitor(float relaunch_factor, std::size_t window,
                                     std::size_t cooldown)
    : relaunch_factor_(relaunch_factor), window_(window), cooldown_(cooldown) {
  ORCO_CHECK(relaunch_factor > 1.0f, "relaunch factor must exceed 1");
  ORCO_CHECK(window > 0, "monitor window must be positive");
}

void FineTuningMonitor::set_baseline(float loss) {
  ORCO_CHECK(loss >= 0.0f, "baseline loss must be non-negative");
  baseline_ = loss;
  has_baseline_ = true;
}

bool FineTuningMonitor::observe(float loss) {
  ORCO_CHECK(has_baseline_, "observe() before set_baseline()");
  ORCO_CHECK(loss >= 0.0f, "loss must be non-negative");
  if (cooldown_remaining_ > 0) {
    --cooldown_remaining_;
    return false;
  }
  recent_.push_back(loss);
  if (recent_.size() > window_) recent_.pop_front();
  if (recent_.size() < window_) return false;
  if (rolling_mean() > relaunch_factor_ * baseline_) {
    ++relaunches_;
    if (cooldown_ > 0) {
      // Re-arm delay: drop the drifted window and swallow the next
      // `cooldown_` observations — they describe the same episode the
      // just-fired relaunch is already fixing.
      recent_.clear();
      cooldown_remaining_ = cooldown_;
    }
    return true;
  }
  return false;
}

float FineTuningMonitor::rolling_mean() const {
  if (recent_.empty()) return 0.0f;
  const float sum = std::accumulate(recent_.begin(), recent_.end(), 0.0f);
  return sum / static_cast<float>(recent_.size());
}

void FineTuningMonitor::reset_observations() {
  recent_.clear();
  cooldown_remaining_ = 0;
}

}  // namespace orco::core
