#include "core/monitor.h"

#include <numeric>

#include "common/check.h"

namespace orco::core {

FineTuningMonitor::FineTuningMonitor(float relaunch_factor, std::size_t window)
    : relaunch_factor_(relaunch_factor), window_(window) {
  ORCO_CHECK(relaunch_factor > 1.0f, "relaunch factor must exceed 1");
  ORCO_CHECK(window > 0, "monitor window must be positive");
}

void FineTuningMonitor::set_baseline(float loss) {
  ORCO_CHECK(loss >= 0.0f, "baseline loss must be non-negative");
  baseline_ = loss;
  has_baseline_ = true;
}

bool FineTuningMonitor::observe(float loss) {
  ORCO_CHECK(has_baseline_, "observe() before set_baseline()");
  ORCO_CHECK(loss >= 0.0f, "loss must be non-negative");
  recent_.push_back(loss);
  if (recent_.size() > window_) recent_.pop_front();
  if (recent_.size() < window_) return false;
  if (rolling_mean() > relaunch_factor_ * baseline_) {
    ++relaunches_;
    return true;
  }
  return false;
}

float FineTuningMonitor::rolling_mean() const {
  if (recent_.empty()) return 0.0f;
  const float sum = std::accumulate(recent_.begin(), recent_.end(), 0.0f);
  return sum / static_cast<float>(recent_.size());
}

void FineTuningMonitor::reset_observations() { recent_.clear(); }

}  // namespace orco::core
