// Latent quantisation — an uplink-compression extension beyond the paper.
//
// OrcoDCS latents live in (0, 1) (sigmoid output), so uniform fixed-point
// quantisation to 8 or 16 bits is near-lossless for reconstruction while
// cutting the steady-state uplink by 4x / 2x on top of the latent-dimension
// savings the paper claims. Round-trip error is bounded by half a step.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace orco::core {

enum class LatentPrecision { kFloat32, kFixed16, kFixed8 };

/// Bytes per latent value at a precision.
std::size_t bytes_per_value(LatentPrecision precision);

/// Quantises values in [0, 1] to fixed point; values are clamped first.
std::vector<std::uint8_t> quantize_latents(const tensor::Tensor& latents,
                                           LatentPrecision precision);

/// Inverse of quantize_latents (shape must be supplied by the caller).
tensor::Tensor dequantize_latents(const std::vector<std::uint8_t>& bytes,
                                  const tensor::Shape& shape,
                                  LatentPrecision precision);

/// Max |x - dequant(quant(x))| bound for in-range inputs: half a step.
float quantization_error_bound(LatentPrecision precision);

}  // namespace orco::core
