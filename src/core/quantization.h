// Latent quantisation — an uplink-compression extension beyond the paper.
//
// OrcoDCS latents usually live in (0, 1) (sigmoid output), but intermediate
// representations and drifted encoders can leave that range, so fixed-point
// payloads carry a per-batch affine header: quantize_latents records the
// batch's [min, max] as two float32s and maps values onto the full code
// range, and dequantize_latents inverts the map. Round-trip error is
// bounded by half a step of the batch's value range — near-lossless for
// in-(0,1) latents while cutting the steady-state uplink by 4x / 2x on top
// of the latent-dimension savings the paper claims, and exact (not
// silently clamped) for arbitrary-range latents.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace orco::core {

enum class LatentPrecision { kFloat32, kFixed16, kFixed8 };

/// Bytes per latent value at a precision (excluding the payload header).
std::size_t bytes_per_value(LatentPrecision precision);

/// Bytes of per-batch affine header (min + max float32) the fixed-point
/// payloads carry; kFloat32 payloads are raw and header-free.
std::size_t quantization_header_bytes(LatentPrecision precision);

/// Total payload size for `numel` values at a precision.
std::size_t quantized_payload_bytes(std::size_t numel,
                                    LatentPrecision precision);

/// Quantises values of any range to fixed point: the payload starts with
/// the batch's [min, max] affine header, followed by codes mapping that
/// range onto the full code space.
std::vector<std::uint8_t> quantize_latents(const tensor::Tensor& latents,
                                           LatentPrecision precision);

/// Allocation-free quantize_latents: writes the payload into `out`
/// (capacity must be >= quantized_payload_bytes(latents.numel(),
/// precision)) and returns the bytes written. Identical bytes to the
/// vector overload, which delegates here.
std::size_t quantize_latents_into(const tensor::Tensor& latents,
                                  LatentPrecision precision,
                                  std::uint8_t* out, std::size_t capacity);

/// Inverse of quantize_latents (shape must be supplied by the caller).
tensor::Tensor dequantize_latents(const std::vector<std::uint8_t>& bytes,
                                  const tensor::Shape& shape,
                                  LatentPrecision precision);

/// Allocation-free dequantize_latents: decodes `size` payload bytes into
/// `out[0..numel)` through caller scratch — the serve hot path's row-wise
/// decode. Identical values to the vector overload, which delegates here.
void dequantize_latents_into(const std::uint8_t* bytes, std::size_t size,
                             LatentPrecision precision, float* out,
                             std::size_t numel);

/// Reads a fixed-point payload's affine header as the float (lo, step)
/// pair the fused int8 GEMM applies per code: x ≈ lo + q * step with
/// step = (hi - lo) / code_max. Single-float arithmetic, so it is the
/// contract for tensor::QuantHeader rows; it differs from the double-math
/// dequantize_latents rounding by at most 1 ulp of the value range — both
/// stay within quantization_error_bound.
void quantized_dequant_params(const std::uint8_t* payload,
                              LatentPrecision precision, float* lo,
                              float* step);

/// Max |x - dequant(quant(x))| per unit of the batch's value range: half a
/// step. The absolute bound for a batch is this value times (max - min) of
/// the quantised batch (<= this value for latents inside [0, 1]).
float quantization_error_bound(LatentPrecision precision);

}  // namespace orco::core
