#include "core/cluster_pipeline.h"

#include "common/check.h"
#include "nn/loss.h"

namespace orco::core {

ClusterPipeline::ClusterPipeline(OrcoDcsSystem& system) : system_(&system) {
  ORCO_CHECK(system.config().orco.input_dim == system.field().device_count(),
             "formulation-level pipeline needs input_dim == device count, got "
                 << system.config().orco.input_dim << " vs "
                 << system.field().device_count());
}

double ClusterPipeline::deploy() {
  const double seconds = system_->distribute_encoder();
  auto shares = make_encoder_shares(system_->aggregator().encoder(),
                                    system_->field().device_count());
  encoder_ = std::make_unique<DistributedEncoder>(system_->tree(),
                                                  std::move(shares));
  return seconds;
}

ClusterPipeline::SenseResult ClusterPipeline::sense_round(
    const Tensor& readings) {
  ORCO_CHECK(encoder_ != nullptr, "deploy() before sense_round()");
  ORCO_CHECK(readings.rank() == 1 &&
                 readings.numel() == system_->field().device_count(),
             "readings must be rank-1 with one value per device");

  SenseResult result;
  // Hop-by-hop cooperative latent (eq. 6); transport cost is exactly the
  // hybrid CS round the tree simulates (the traffic property is tested).
  result.latent = encoder_->encode(readings);
  result.seconds = system_->compressed_aggregation_round();

  const std::size_t m = result.latent.numel();
  result.reconstruction =
      system_->edge()
          .decode_inference(result.latent.reshaped({1, m}))
          .reshaped({readings.numel()});

  nn::HuberLoss huber(1.0f);
  result.error = huber.value(result.reconstruction, readings);
  return result;
}

float ClusterPipeline::encode_divergence(const Tensor& readings) {
  ORCO_CHECK(encoder_ != nullptr, "deploy() before encode_divergence()");
  const Tensor distributed = encoder_->encode(readings);
  const Tensor central =
      system_->aggregator()
          .encode_inference(readings.reshaped({1, readings.numel()}))
          .reshaped({distributed.numel()});
  return (distributed - central).abs_max();
}

}  // namespace orco::core
