// Device-level cooperative latent computation (paper §III-C, eq. 6).
//
// After training, each IoT device holds its column of the encoder weight
// matrix. A cluster-wide reading vector x ∈ R^N is encoded without ever
// assembling x anywhere: partial sums W[:,i]*x_i flow up the aggregation
// tree. Following the hybrid compressed-sensing rule [1], a node whose
// subtree carries fewer than M readings forwards raw readings (cheaper);
// once a subtree reaches M readings the node compresses them into the
// M-dimensional partial. The aggregator finishes with sigma(sum + b).
//
// Property (tested): the result equals the centralised encoder output
// sigma(We x + b) exactly, for every tree shape and latent dimension.
#pragma once

#include <optional>
#include <vector>

#include "core/messages.h"
#include "nn/sequential.h"
#include "wsn/aggregation_tree.h"

namespace orco::core {

/// Per-node traffic discovered during a distributed encode.
struct NodeTraffic {
  std::size_t raw_values = 0;      // raw readings forwarded by this node
  std::size_t partial_values = 0;  // M-dim partial entries forwarded
};

class DistributedEncoder {
 public:
  /// `shares[d]` is device d's encoder slice; devices are numbered
  /// 0..N_dev-1 and mapped onto the tree's non-root nodes in node-id order.
  DistributedEncoder(const wsn::AggregationTree& tree,
                     std::vector<EncoderShareMsg> shares);

  std::size_t device_count() const noexcept { return shares_.size(); }
  std::size_t latent_dim() const;

  /// Runs the bottom-up cooperative encode of one reading vector
  /// (readings[d] = device d's scalar reading). Returns the latent vector;
  /// when `traffic` is non-null, fills per-node traffic so callers can
  /// account transmissions.
  Tensor encode(const Tensor& readings,
                std::vector<NodeTraffic>* traffic = nullptr) const;

  /// The device id assigned to a (non-root) tree node.
  std::size_t device_for_node(wsn::NodeId node) const;

 private:
  const wsn::AggregationTree* tree_;
  std::vector<EncoderShareMsg> shares_;
  std::vector<std::optional<std::size_t>> node_to_device_;
};

/// Convenience: builds all N device shares from the trained encoder.
std::vector<EncoderShareMsg> make_encoder_shares(
    const nn::Sequential& encoder, std::size_t device_count);

}  // namespace orco::core
