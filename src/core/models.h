// Model builders for the asymmetric autoencoder (paper §III-B).
//
//  * encoder: one fully-connected layer + sigmoid (eq. 1) — deliberately
//    shallow so the data aggregator can afford it;
//  * decoder: 1..k fully-connected layers (eq. 3 notes "the number of
//    layers and the structure of the decoder can be increased").
#pragma once

#include <memory>

#include "core/config.h"
#include "nn/sequential.h"

namespace orco::core {

/// Builds the single-dense-layer encoder sigma(We X + b): input_dim ->
/// latent_dim.
std::unique_ptr<nn::Sequential> build_encoder(const OrcoConfig& config,
                                              common::Pcg32& rng);

/// Builds a decoder with `config.decoder_layers` dense layers
/// (latent -> hidden^(k-1) -> input), ReLU between hidden layers and a
/// final sigmoid so outputs live in [0, 1] like the sensing data.
std::unique_ptr<nn::Sequential> build_decoder(const OrcoConfig& config,
                                              common::Pcg32& rng);

}  // namespace orco::core
