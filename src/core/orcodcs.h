// Umbrella header for the OrcoDCS core library.
//
// Quickstart:
//
//   #include "core/orcodcs.h"
//
//   orco::core::SystemConfig cfg;
//   cfg.orco.input_dim = 784;      // MNIST-like sensing data
//   cfg.orco.latent_dim = 128;     // paper's MNIST latent dimension
//   orco::core::OrcoDcsSystem sys(cfg);
//
//   sys.raw_aggregation_round(784 * sizeof(float));
//   auto summary = sys.train_online(train_set, /*epochs=*/5);
//   sys.distribute_encoder();
//   auto xr = sys.reconstruct(test_set.images());
#pragma once

#include "core/aggregator.h"       // IWYU pragma: export
#include "core/cluster_pipeline.h" // IWYU pragma: export
#include "core/config.h"           // IWYU pragma: export
#include "core/distributed_encoding.h"  // IWYU pragma: export
#include "core/edge_fleet.h"       // IWYU pragma: export
#include "core/edge_server.h"      // IWYU pragma: export
#include "core/messages.h"         // IWYU pragma: export
#include "core/models.h"           // IWYU pragma: export
#include "core/monitor.h"          // IWYU pragma: export
#include "core/orchestrator.h"     // IWYU pragma: export
#include "core/system.h"           // IWYU pragma: export
