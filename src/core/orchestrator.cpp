#include "core/orchestrator.h"

#include "common/check.h"
#include "nn/loss.h"

namespace orco::core {

Orchestrator::Orchestrator(DataAggregator& aggregator, EdgeServer& edge,
                           wsn::Channel& channel,
                           wsn::TransmissionLedger& ledger,
                           wsn::SimClock& clock, ComputeModel compute)
    : aggregator_(&aggregator),
      edge_(&edge),
      channel_(&channel),
      ledger_(&ledger),
      clock_(&clock),
      compute_(compute) {}

RoundRecord Orchestrator::train_round(const Tensor& batch) {
  ORCO_CHECK(batch.rank() == 2 && batch.dim(0) > 0, "empty training batch");
  tensor::BackendScope scope(backend_);
  const std::uint64_t round = next_round_++;
  const std::size_t b = batch.dim(0);
  RoundRecord rec;
  rec.round = round;

  auto ship_up = [&](const std::vector<std::byte>& bytes) {
    const double s = channel_->send(bytes.size(), wsn::Direction::kUp, *ledger_);
    rec.round_comms_s += s;
    rec.uplink_payload_bytes += bytes.size();
  };
  auto ship_down = [&](const std::vector<std::byte>& bytes) {
    const double s =
        channel_->send(bytes.size(), wsn::Direction::kDown, *ledger_);
    rec.round_comms_s += s;
    rec.downlink_payload_bytes += bytes.size();
  };

  // (1) Aggregator: encode + noise, ship latents uplink.
  //     Forward pass charged to the IoT-class aggregator.
  rec.round_compute_s +=
      compute_.aggregator_seconds(aggregator_->encoder().forward_flops(b));
  const LatentBatchMsg latent_msg =
      aggregator_->encode_batch(batch, round, /*training=*/true);
  const auto latent_bytes = latent_msg.serialize();
  ship_up(latent_bytes);

  // (2) Edge: reconstruct, ship reconstructions downlink.
  const LatentBatchMsg latent_rx = LatentBatchMsg::deserialize(latent_bytes);
  rec.round_compute_s +=
      compute_.edge_seconds(edge_->decoder().forward_flops(b));
  const ReconstructionMsg rec_msg = edge_->reconstruct(latent_rx, true);
  const auto rec_bytes = rec_msg.serialize();
  ship_down(rec_bytes);

  // (3) Aggregator: Huber loss + residual, ship residual uplink.
  const ReconstructionMsg rec_rx = ReconstructionMsg::deserialize(rec_bytes);
  auto [loss, residual_msg] = aggregator_->evaluate_reconstruction(rec_rx);
  rec.loss = loss;
  const auto residual_bytes = residual_msg.serialize();
  ship_up(residual_bytes);

  // (4) Edge: decoder backward + step, ship latent gradient downlink.
  //     Backward charged at 2x forward.
  const ResidualMsg residual_rx = ResidualMsg::deserialize(residual_bytes);
  rec.round_compute_s +=
      compute_.edge_seconds(2 * edge_->decoder().forward_flops(b));
  const LatentGradMsg grad_msg = edge_->train_step(residual_rx);
  const auto grad_bytes = grad_msg.serialize();
  ship_down(grad_bytes);

  // (5) Aggregator: encoder backward + step.
  const LatentGradMsg grad_rx = LatentGradMsg::deserialize(grad_bytes);
  rec.round_compute_s += compute_.aggregator_seconds(
      2 * aggregator_->encoder().forward_flops(b));
  aggregator_->apply_latent_gradient(grad_rx);

  clock_->advance(rec.round_comms_s + rec.round_compute_s);
  rec.sim_time_s = clock_->now();
  return rec;
}

std::vector<RoundRecord> Orchestrator::train_epoch(data::DataLoader& loader) {
  loader.reshuffle();
  std::vector<RoundRecord> records;
  records.reserve(loader.batch_count());
  for (std::size_t b = 0; b < loader.batch_count(); ++b) {
    records.push_back(train_round(loader.batch(b).images));
  }
  return records;
}

std::vector<RoundRecord> Orchestrator::train(
    data::DataLoader& loader, std::size_t epochs,
    const std::function<void(const RoundRecord&)>& on_round) {
  std::vector<RoundRecord> all;
  for (std::size_t e = 0; e < epochs; ++e) {
    auto records = train_epoch(loader);
    for (const auto& r : records) {
      if (on_round) on_round(r);
      all.push_back(r);
    }
  }
  return all;
}

double Orchestrator::aggregate_batch(const Tensor& batch) {
  tensor::BackendScope scope(backend_);
  const std::size_t b = batch.dim(0);
  double seconds =
      compute_.aggregator_seconds(aggregator_->encoder().forward_flops(b));
  const Tensor latents = aggregator_->encode_inference(batch);
  LatentBatchMsg msg{next_round_, latents};
  seconds += channel_->send(msg.serialize().size(), wsn::Direction::kUp,
                            *ledger_);
  clock_->advance(seconds);
  return seconds;
}

Tensor Orchestrator::reconstruct(const Tensor& batch) {
  nn::InferContext ctx;
  Tensor out;
  reconstruct_into(batch, out, ctx);
  return out;
}

void Orchestrator::reconstruct_into(const Tensor& batch, Tensor& out,
                                    nn::InferContext& ctx) {
  tensor::BackendScope scope(backend_);
  const Tensor latents = aggregator_->encode_inference(batch);
  edge_->decode_inference(latents, out, ctx);
}

float Orchestrator::evaluate_loss(const data::Dataset& dataset,
                                  std::size_t batch_size) {
  nn::InferContext ctx;
  return evaluate_loss(dataset, batch_size, ctx);
}

float Orchestrator::evaluate_loss(const data::Dataset& dataset,
                                  std::size_t batch_size,
                                  nn::InferContext& ctx) {
  nn::HuberLoss loss(1.0f);
  double acc = 0.0;
  std::size_t batches = 0;
  Tensor xr;  // decode target, reused (capacity-preserving) across batches
  for (std::size_t begin = 0; begin < dataset.size(); begin += batch_size) {
    const std::size_t end = std::min(begin + batch_size, dataset.size());
    const Tensor x = dataset.images().slice_rows(begin, end);
    reconstruct_into(x, xr, ctx);
    acc += loss.value(xr, x);
    ++batches;
  }
  ORCO_ENSURE(batches > 0, "empty evaluation dataset");
  return static_cast<float>(acc / static_cast<double>(batches));
}

}  // namespace orco::core
