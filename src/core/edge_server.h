// The edge-server side of the orchestration.
//
// Owns the deep decoder (eq. 3). Reconstructs from noisy latents, and on
// receiving the residual ("reconstruction error", §III-B) derives the Huber
// gradient, updates the decoder, and returns the latent gradient so the
// aggregator can update its encoder.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/mutex.h"
#include "core/config.h"
#include "core/messages.h"
#include "nn/infer_plan.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "tensor/backend.h"

namespace orco::core {

class EdgeServer {
 public:
  EdgeServer(std::unique_ptr<nn::Sequential> decoder,
             const OrcoConfig& config);

  /// Decodes latents into reconstructions; caches activations when
  /// `training` so the next train_step can backpropagate.
  ReconstructionMsg reconstruct(const LatentBatchMsg& msg, bool training);

  /// Derives the Huber gradient from the residual (loss and gradient are
  /// both functions of X - Xr alone), backpropagates through the decoder,
  /// applies one SGD step, and returns dL/d(latents) plus the loss.
  LatentGradMsg train_step(const ResidualMsg& msg);

  /// Noise-free decoding for evaluation / steady-state reconstruction.
  /// Const and cache-free (nn::Layer::infer path): one decoder can serve
  /// batched read-only decode traffic without perturbing training state.
  Tensor decode_inference(const Tensor& latents) const;

  /// Zero-allocation variant: decodes into `out` using the caller's
  /// long-lived InferContext (nn::Layer::infer_into path). The serving
  /// shards and the background trainer's validation loop call this so a
  /// steady-state decode touches no allocator after warmup. Same
  /// concurrency contract as above, with one context per calling thread.
  void decode_inference(const Tensor& latents, Tensor& out,
                        nn::InferContext& ctx) const;

  /// Decodes straight from uint8 latent codes (batch × latent_dim) with
  /// per-row affine headers — the int8 uplink fast path (see
  /// OrcoConfig::int8_decode for the accuracy contract). Same zero-alloc
  /// and concurrency contract as the infer_into overload above.
  void decode_inference_quantized(const std::uint8_t* codes,
                                  const tensor::QuantHeader& qh,
                                  std::size_t batch, Tensor& out,
                                  nn::InferContext& ctx) const;

  nn::Sequential& decoder() noexcept { return *decoder_; }
  const nn::Sequential& decoder() const noexcept { return *decoder_; }

  /// The compiled inference plan the decode paths execute — the registry-
  /// free equivalent of a snapshot's plan. Compiled lazily on first decode
  /// and recompiled (weights repacked) whenever the decoder's weight
  /// versions moved since compile: train_step, checkpoint loads and
  /// mutable-accessor edits all bump versions, so a stale plan can never
  /// serve old panels. Callers may hold the returned plan across batches;
  /// it stays valid (merely superseded) after a rebuild.
  std::shared_ptr<const nn::InferPlan> current_plan() const;

  /// FLOPs charged to the edge for one training round on `batch` samples.
  std::size_t train_flops(std::size_t batch) const;

  /// The kernel backend this edge runs on (from OrcoConfig::backend);
  /// nullptr means "inherit the caller's selection".
  const tensor::Backend* backend() const noexcept { return backend_; }

  /// Monotonically increasing decoder generation: starts at 1 and bumps on
  /// every applied train_step. The training runtime stamps exported
  /// ModelRegistry snapshots with this value, so "model version" means the
  /// same thing on the training side, in the registry and in serve
  /// telemetry. Atomic: serving threads read it concurrently with training.
  std::uint64_t model_version() const noexcept {
    return model_version_.load(std::memory_order_acquire);
  }

  /// Restores the decoder generation counter — the cold-tier reactivation
  /// path: the fleet rebuilds a demoted tenant from its checkpoint and
  /// continues the version sequence where it left off, so registry
  /// publishes stay strictly monotonic across demote/wake cycles. Callers
  /// must not race this with train_step.
  void set_model_version(std::uint64_t version) noexcept {
    model_version_.store(version, std::memory_order_release);
  }

 private:
  const tensor::Backend* backend_ = nullptr;
  std::unique_ptr<nn::Sequential> decoder_;
  std::unique_ptr<nn::Sgd> optimizer_;
  ReconLoss loss_kind_;
  float huber_delta_;
  std::uint64_t pending_round_ = 0;
  std::atomic<std::uint64_t> model_version_{1};
  /// Registry-free decode plan: one acquire load on the hot path, rebuilt
  /// under plan_mu_ when stale (see current_plan).
  mutable common::Mutex plan_mu_;
  mutable std::atomic<std::shared_ptr<const nn::InferPlan>> plan_;
  bool round_open_ = false;
  std::size_t batch_in_flight_ = 0;
  std::size_t latent_dim_, output_dim_;
};

}  // namespace orco::core
