// Formulation-level pipeline (paper §II): scalar readings, cooperative
// encoding, edge reconstruction.
//
// OrcoDcsSystem trains the autoencoder over stacked reading vectors
// (input_dim = device count). ClusterPipeline then closes the loop the way
// §III-C deploys it: encoder columns go to the devices, each sensing round
// computes the latent hop-by-hop over the aggregation tree (hybrid CS
// rule), the latent crosses the uplink, and the edge decoder reconstructs
// the full reading vector.
#pragma once

#include <memory>
#include <optional>

#include "core/distributed_encoding.h"
#include "core/system.h"

namespace orco::core {

class ClusterPipeline {
 public:
  /// `system` must outlive the pipeline and be configured with
  /// input_dim == system.field().device_count().
  explicit ClusterPipeline(OrcoDcsSystem& system);

  /// §III-C stage: broadcasts encoder columns and builds the cooperative
  /// encoder. Returns simulated broadcast seconds (charged to the ledger).
  /// Call after training; call again after a fine-tuning relaunch to
  /// re-distribute updated columns.
  double deploy();

  bool deployed() const noexcept { return encoder_ != nullptr; }

  struct SenseResult {
    Tensor latent;           // (M), computed hop-by-hop
    Tensor reconstruction;   // (N), decoded at the edge
    float error = 0.0f;      // Huber(reconstruction, readings)
    double seconds = 0.0;    // simulated intra-cluster + uplink time
  };

  /// One steady-state sensing round for a cluster-wide reading vector
  /// (rank-1, one scalar per device).
  SenseResult sense_round(const Tensor& readings);

  /// Max |distributed - centralised| latent element for `readings` — the
  /// §III-C consistency invariant, exposed for monitoring/tests.
  float encode_divergence(const Tensor& readings);

 private:
  OrcoDcsSystem* system_;
  std::unique_ptr<DistributedEncoder> encoder_;
};

}  // namespace orco::core
