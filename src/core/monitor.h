// Fine-tuning monitor (paper §III-D): the edge server periodically compares
// reconstruction error against a post-training baseline; when the rolling
// error exceeds `relaunch_factor` x baseline — e.g. after environmental
// drift — training is relaunched.
#pragma once

#include <cstddef>
#include <deque>

namespace orco::core {

class FineTuningMonitor {
 public:
  /// `cooldown` observations after a trigger are swallowed (and the window
  /// cleared) before the monitor re-arms, so a sustained drift episode
  /// fires one relaunch, not one per observation, while the fine-tune job
  /// it triggered is still running. 0 preserves the historical behaviour
  /// (callers re-arm manually via reset_observations()). All three knobs
  /// come from OrcoConfig (relaunch_factor / monitor_window /
  /// monitor_cooldown) when constructed by the system facade or the
  /// training runtime.
  FineTuningMonitor(float relaunch_factor, std::size_t window,
                    std::size_t cooldown = 0);

  /// Sets the healthy reference error (typically the final training loss).
  void set_baseline(float loss);
  bool has_baseline() const noexcept { return has_baseline_; }
  float baseline() const noexcept { return baseline_; }

  /// Records one periodic error observation; returns true when the rolling
  /// mean exceeds relaunch_factor x baseline (the window must be full so a
  /// single spike does not trigger a relaunch).
  bool observe(float loss);

  /// Rolling mean of the last `window` observations (0 when empty).
  float rolling_mean() const;

  /// Clears observations (call after a relaunch completes), keeping the
  /// baseline until set_baseline is called again.
  void reset_observations();

  std::size_t relaunch_count() const noexcept { return relaunches_; }

 private:
  float relaunch_factor_;
  std::size_t window_;
  std::size_t cooldown_;
  std::size_t cooldown_remaining_ = 0;
  float baseline_ = 0.0f;
  bool has_baseline_ = false;
  std::deque<float> recent_;
  std::size_t relaunches_ = 0;
};

}  // namespace orco::core
