// The data aggregator (cluster head) side of the orchestration.
//
// Owns the shallow encoder (eq. 1), injects latent noise (eq. 2), computes
// the reconstruction error (eq. 4) when reconstructions come back, and
// applies encoder updates when the edge returns the latent gradient. The
// heavy decoder never runs here — that asymmetry is the paper's central
// resource argument.
#pragma once

#include <memory>

#include <memory>

#include "common/rng.h"
#include "core/config.h"
#include "core/messages.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"

namespace orco::core {

class DataAggregator {
 public:
  DataAggregator(std::unique_ptr<nn::Sequential> encoder,
                 const OrcoConfig& config, common::Pcg32 rng);

  /// Encodes a (B, N) batch into (B, M) latents. When `training`, Gaussian
  /// noise with variance `config.noise_variance` is added (eq. 2) and the
  /// forward activations are cached for the later encoder update.
  LatentBatchMsg encode_batch(const Tensor& batch, std::uint64_t round,
                              bool training);

  /// Computes the Huber loss and the residual X - Xr for the batch passed
  /// to the immediately preceding encode_batch call.
  std::pair<float, ResidualMsg> evaluate_reconstruction(
      const ReconstructionMsg& msg);

  /// Backpropagates the latent gradient through the encoder and applies one
  /// SGD step. Must follow encode_batch(training=true) on the same round.
  void apply_latent_gradient(const LatentGradMsg& msg);

  /// Per-device encoder slice for the §III-C broadcast.
  EncoderShareMsg encoder_share(std::size_t device) const;

  /// Noise-free encoding for steady-state aggregation and evaluation.
  Tensor encode_inference(const Tensor& batch);

  nn::Sequential& encoder() noexcept { return *encoder_; }
  const nn::Sequential& encoder() const noexcept { return *encoder_; }

  /// FLOPs charged to the aggregator for one training round on `batch`
  /// samples: encoder forward + backward (2x forward).
  std::size_t train_flops(std::size_t batch) const;

  float noise_sigma() const noexcept { return noise_sigma_; }
  /// Adjusts latent-noise level (Fig. 7 sweeps this).
  void set_noise_variance(float variance);

 private:
  std::unique_ptr<nn::Sequential> encoder_;
  std::unique_ptr<nn::Loss> loss_;
  std::unique_ptr<nn::Sgd> optimizer_;
  float noise_sigma_;
  common::Pcg32 rng_;
  Tensor pending_batch_;      // X for the in-flight round
  std::uint64_t pending_round_ = 0;
  bool round_open_ = false;
  std::size_t input_dim_, latent_dim_;
};

}  // namespace orco::core
