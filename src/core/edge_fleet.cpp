#include "core/edge_fleet.h"

#include <algorithm>
#include <queue>

#include "common/check.h"

namespace orco::core {

EdgeFleetReport simulate_edge_fleet(const EdgeFleetConfig& config) {
  ORCO_CHECK(config.clusters > 0, "need at least one cluster");
  ORCO_CHECK(config.aggregator_s >= 0.0 && config.edge_service_s > 0.0 &&
                 config.comms_s >= 0.0,
             "non-positive stage times");
  ORCO_CHECK(config.horizon_s > 0.0, "horizon must be positive");

  // Event: a cluster's job arrives at the edge queue at `time`.
  struct Arrival {
    double time;
    std::size_t cluster;
    bool operator>(const Arrival& other) const {
      return time > other.time ||
             (time == other.time && cluster > other.cluster);
    }
  };
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<>> arrivals;
  for (std::size_t c = 0; c < config.clusters; ++c) {
    arrivals.push({config.aggregator_s, c});
  }

  EdgeFleetReport report;
  report.rounds_per_cluster.assign(config.clusters, 0);

  double edge_free_at = 0.0;
  double busy_time = 0.0;
  double wait_sum = 0.0;
  double latency_sum = 0.0;

  while (!arrivals.empty()) {
    const Arrival job = arrivals.top();
    arrivals.pop();
    if (job.time > config.horizon_s) continue;

    const double start = std::max(job.time, edge_free_at);
    const double wait = start - job.time;
    const double done = start + config.edge_service_s;
    if (done > config.horizon_s) continue;  // round does not finish in time

    edge_free_at = done;
    busy_time += config.edge_service_s;
    wait_sum += wait;
    report.max_wait_s = std::max(report.max_wait_s, wait);
    latency_sum += config.aggregator_s + wait + config.edge_service_s +
                   config.comms_s;
    report.rounds_per_cluster[job.cluster] += 1;
    report.total_rounds += 1;

    // Closed loop: the cluster starts its next round after receiving the
    // response (comms) and finishing its aggregator-side compute.
    arrivals.push({done + config.comms_s + config.aggregator_s, job.cluster});
  }

  if (report.total_rounds > 0) {
    report.mean_wait_s = wait_sum / static_cast<double>(report.total_rounds);
    report.mean_round_latency_s =
        latency_sum / static_cast<double>(report.total_rounds);
  }
  report.edge_utilisation = busy_time / config.horizon_s;

  const auto [min_it, max_it] =
      std::minmax_element(report.rounds_per_cluster.begin(),
                          report.rounds_per_cluster.end());
  report.fairness =
      *max_it == 0 ? 1.0
                   : static_cast<double>(*min_it) / static_cast<double>(*max_it);
  return report;
}

}  // namespace orco::core
