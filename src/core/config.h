// OrcoDCS configuration (paper §III).
//
// The flexibility the paper claims over DCSNet is exactly that these knobs
// are per-task: latent dimension, decoder depth, noise level and optimiser
// hyperparameters can differ per IoT device group and sensing task.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace orco::core {

/// Reconstruction objective. OrcoDCS trains with Huber (eq. 4); classic
/// DCDA frameworks (and the DCSNet baseline) minimise the L2 norm.
enum class ReconLoss { kHuber, kMse };

struct OrcoConfig {
  ReconLoss loss = ReconLoss::kHuber;
  // Model (eqs. 1-3).
  std::size_t input_dim = 784;    // N: dimension of the stacked sensing data
  std::size_t latent_dim = 128;   // M: latent dimension (128 MNIST, 512 GTSRB)
  std::size_t decoder_layers = 1; // 1 per eq. (3); Fig. 8 sweeps {1, 3, 5}
  std::size_t decoder_hidden_dim = 0;  // 0 -> (input_dim + latent_dim) / 2

  // Latent noise (eq. 2). The paper sweeps sigma^2; this is sigma^2.
  float noise_variance = 0.1f;

  // Loss (eq. 4) and optimiser (eq. 5). Losses are mean-reduced over every
  // element of the batch, so per-parameter gradients are small and the
  // effective SGD learning rate is correspondingly large (tuned on the
  // synthetic reconstruction tasks; see EXPERIMENTS.md).
  float huber_delta = 1.0f;
  float learning_rate = 3.0f;
  float momentum = 0.9f;
  std::size_t batch_size = 64;

  // Fine-tuning monitor (§III-D): relaunch training when the monitored
  // reconstruction error exceeds `relaunch_factor` x the post-training
  // baseline error, sustained over a full `monitor_window` of
  // observations. After a trigger, the next `monitor_cooldown`
  // observations are swallowed while the relaunch is in flight so one
  // drift episode cannot fire a second relaunch before the first lands
  // (0 keeps the historical behaviour: no automatic re-arm delay).
  float relaunch_factor = 2.0f;
  std::size_t monitor_window = 8;
  std::size_t monitor_cooldown = 0;

  std::uint64_t seed = 42;

  // Kernel backend (tensor/backend.h) for this system's training rounds and
  // edge decoding: "reference", "blocked", "simd", or empty to inherit the
  // process default (set_backend() / ORCO_BACKEND).
  std::string backend;

  // Let the serving path decode int8 (kFixed8) uplink payloads straight
  // through Backend::gemm_quantized — codes feed the decoder's first Dense
  // layer without ever materializing the float batch. Accuracy contract:
  // output error vs decoding the dequantized floats is bounded by the
  // payload's quantization_error_bound times the batch value range,
  // propagated through the decoder (one dequantization rounding per code,
  // same as the explicit-dequantize path). Opt-in per tenant.
  bool int8_decode = false;

  // Cache the decoder's backend-packed weight panels across decodes
  // (Layer::set_weight_prepack): packing the weight dominates small-batch
  // steady-state decode, and a serving decoder's weights are immutable
  // between training rounds. EdgeServer invalidates the cache after every
  // train_step, so the cache is always coherent within the orchestration
  // protocol; disable only when mutating decoder weights behind
  // EdgeServer's back without calling invalidate_weight_cache().
  bool prepack_decoder = true;

  std::size_t decoder_hidden() const {
    return decoder_hidden_dim != 0 ? decoder_hidden_dim
                                   : (input_dim + latent_dim) / 2;
  }
};

/// Compute-speed model for the simulated time axis (Fig. 4). The aggregator
/// is an IoT-class device; the edge server is orders of magnitude faster —
/// this asymmetry is why the paper puts the deep decoder on the edge.
struct ComputeModel {
  double aggregator_flops_per_s = 5e8;  // Cortex-M/A-class
  double edge_flops_per_s = 5e10;       // small edge GPU / big CPU

  double aggregator_seconds(std::size_t flops) const {
    return static_cast<double>(flops) / aggregator_flops_per_s;
  }
  double edge_seconds(std::size_t flops) const {
    return static_cast<double>(flops) / edge_flops_per_s;
  }
};

}  // namespace orco::core
