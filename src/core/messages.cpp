#include "core/messages.h"

#include "common/check.h"

namespace orco::core {

void write_tensor(common::ByteWriter& writer, const Tensor& t) {
  writer.write_u64(t.rank());
  for (std::size_t d = 0; d < t.rank(); ++d) writer.write_u64(t.dim(d));
  writer.write_f32_span(t.data());
}

Tensor read_tensor(common::ByteReader& reader) {
  const std::uint64_t rank = reader.read_u64();
  ORCO_CHECK(rank <= 4, "tensor rank too large: " << rank);
  tensor::Shape shape(rank);
  for (auto& d : shape) d = reader.read_u64();
  auto data = reader.read_f32_vector();
  return Tensor(std::move(shape), std::move(data));
}

std::vector<std::byte> LatentBatchMsg::serialize() const {
  common::ByteWriter w;
  w.write_u64(round);
  write_tensor(w, latents);
  return w.bytes();
}

LatentBatchMsg LatentBatchMsg::deserialize(std::span<const std::byte> bytes) {
  common::ByteReader r(bytes);
  LatentBatchMsg msg;
  msg.round = r.read_u64();
  msg.latents = read_tensor(r);
  return msg;
}

std::vector<std::byte> ReconstructionMsg::serialize() const {
  common::ByteWriter w;
  w.write_u64(round);
  write_tensor(w, reconstructions);
  return w.bytes();
}

ReconstructionMsg ReconstructionMsg::deserialize(
    std::span<const std::byte> bytes) {
  common::ByteReader r(bytes);
  ReconstructionMsg msg;
  msg.round = r.read_u64();
  msg.reconstructions = read_tensor(r);
  return msg;
}

std::vector<std::byte> ResidualMsg::serialize() const {
  common::ByteWriter w;
  w.write_u64(round);
  write_tensor(w, residuals);
  return w.bytes();
}

ResidualMsg ResidualMsg::deserialize(std::span<const std::byte> bytes) {
  common::ByteReader r(bytes);
  ResidualMsg msg;
  msg.round = r.read_u64();
  msg.residuals = read_tensor(r);
  return msg;
}

std::vector<std::byte> LatentGradMsg::serialize() const {
  common::ByteWriter w;
  w.write_u64(round);
  w.write_f32(loss);
  write_tensor(w, latent_grad);
  return w.bytes();
}

LatentGradMsg LatentGradMsg::deserialize(std::span<const std::byte> bytes) {
  common::ByteReader r(bytes);
  LatentGradMsg msg;
  msg.round = r.read_u64();
  msg.loss = r.read_f32();
  msg.latent_grad = read_tensor(r);
  return msg;
}

std::vector<std::byte> EncoderShareMsg::serialize() const {
  common::ByteWriter w;
  w.write_u64(device);
  write_tensor(w, column);
  write_tensor(w, bias);
  return w.bytes();
}

EncoderShareMsg EncoderShareMsg::deserialize(
    std::span<const std::byte> bytes) {
  common::ByteReader r(bytes);
  EncoderShareMsg msg;
  msg.device = r.read_u64();
  msg.column = read_tensor(r);
  msg.bias = read_tensor(r);
  return msg;
}

}  // namespace orco::core
