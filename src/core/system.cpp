#include "core/system.h"

#include "common/check.h"
#include "common/serialize.h"
#include "core/distributed_encoding.h"
#include "core/models.h"
#include "data/dataloader.h"
#include "nn/model_io.h"

namespace orco::core {

OrcoDcsSystem::OrcoDcsSystem(const SystemConfig& config)
    : config_(config),
      field_(config.field),
      radio_(config.radio),
      channel_(config.channel),
      monitor_(config.orco) {
  tree_ = std::make_unique<wsn::AggregationTree>(field_, radio_);

  common::Pcg32 rng(config.orco.seed, /*stream=*/0x6f72636fULL);  // "orco"
  common::Pcg32 enc_rng = rng.split();
  common::Pcg32 dec_rng = rng.split();
  common::Pcg32 noise_rng = rng.split();

  aggregator_ = std::make_unique<DataAggregator>(
      build_encoder(config.orco, enc_rng), config.orco, noise_rng);
  edge_ = std::make_unique<EdgeServer>(build_decoder(config.orco, dec_rng),
                                       config.orco);
  orchestrator_ = std::make_unique<Orchestrator>(
      *aggregator_, *edge_, channel_, ledger_, clock_, config.compute);
  // EdgeServer resolved (and validated) the configured kernel backend; pin
  // the orchestrated training/reconstruction paths to the same one.
  orchestrator_->set_backend(edge_->backend());
}

double OrcoDcsSystem::raw_aggregation_round(
    std::size_t bytes_per_device_reading) {
  const auto stats =
      tree_->simulate_raw_round(bytes_per_device_reading, ledger_);
  clock_.advance(stats.airtime_s);
  return stats.airtime_s;
}

TrainSummary OrcoDcsSystem::train_online(
    const data::Dataset& train, std::size_t epochs,
    const std::function<void(const RoundRecord&)>& on_round) {
  ORCO_CHECK(train.geometry().features() == config_.orco.input_dim,
             "dataset features " << train.geometry().features()
                                 << " do not match configured input_dim "
                                 << config_.orco.input_dim);
  // Salt the shuffle with the round counter so that repeated train_online
  // calls (epoch-by-epoch driving, relaunches) see fresh sample orders
  // while staying deterministic end to end.
  common::Pcg32 loader_rng(config_.orco.seed ^
                           (0x10adULL + orchestrator_->rounds_completed()));
  data::DataLoader loader(train, config_.orco.batch_size, /*shuffle=*/true,
                          loader_rng);
  TrainSummary summary;
  summary.rounds = orchestrator_->train(loader, epochs, on_round);
  summary.final_loss =
      summary.rounds.empty() ? 0.0f : summary.rounds.back().loss;
  summary.sim_seconds = clock_.now();
  if (!summary.rounds.empty()) {
    // Baseline for the §III-D monitor: the clean (noise-free, eval-mode)
    // reconstruction error on the data just trained on. The last round's
    // training loss is a poor reference — it carries latent noise and
    // single-batch variance.
    monitor_.inner.set_baseline(evaluate_loss(train));
    monitor_.inner.reset_observations();
  }
  return summary;
}

double OrcoDcsSystem::distribute_encoder() {
  // One broadcast round carries every device's column + the shared bias
  // (§III-C: "a single round of broadcast").
  const std::size_t device_count = field_.device_count();
  const std::size_t m = config_.orco.latent_dim;
  const std::size_t payload =
      (device_count * m + m) * sizeof(float);  // columns + bias
  const auto stats = tree_->simulate_broadcast(payload, ledger_);
  clock_.advance(stats.airtime_s);
  return stats.airtime_s;
}

double OrcoDcsSystem::compressed_aggregation_round() {
  // Intra-cluster hybrid CS gathering of the M-dim latent, then the uplink.
  const std::size_t m = config_.orco.latent_dim;
  const auto stats =
      tree_->simulate_hybrid_cs_round(m, sizeof(float), ledger_);
  double seconds = stats.airtime_s;
  seconds +=
      channel_.send(m * sizeof(float), wsn::Direction::kUp, ledger_);
  clock_.advance(seconds);
  return seconds;
}

double OrcoDcsSystem::aggregate_images(const Tensor& batch) {
  return orchestrator_->aggregate_batch(batch);
}

Tensor OrcoDcsSystem::reconstruct(const Tensor& images) {
  return orchestrator_->reconstruct(images);
}

float OrcoDcsSystem::evaluate_loss(const data::Dataset& dataset) {
  return orchestrator_->evaluate_loss(dataset, config_.orco.batch_size);
}

float OrcoDcsSystem::evaluate_loss(const data::Dataset& dataset,
                                   nn::InferContext& ctx) {
  return orchestrator_->evaluate_loss(dataset, config_.orco.batch_size, ctx);
}

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x4f444353u;  // "ODCS"

/// Rebuilds `build(config)`'s layer chain and copies `source`'s parameters
/// into it via the model_io round-trip (names/shapes validated there).
std::unique_ptr<nn::Sequential> clone_model(
    nn::Sequential& source, const OrcoConfig& config,
    std::unique_ptr<nn::Sequential> (*build)(const OrcoConfig&,
                                             common::Pcg32&)) {
  // The clone's random init is immediately overwritten by load_params; the
  // rng only has to exist.
  common::Pcg32 scratch_rng(config.seed ^ 0x636c6f6eULL);  // "clon"
  auto clone = build(config, scratch_rng);
  nn::load_params(*clone, nn::save_params(source));
  return clone;
}
}

std::unique_ptr<nn::Sequential> OrcoDcsSystem::export_decoder_clone() {
  return clone_model(edge_->decoder(), config_.orco, &build_decoder);
}

std::unique_ptr<nn::Sequential> OrcoDcsSystem::export_encoder_clone() {
  return clone_model(aggregator_->encoder(), config_.orco, &build_encoder);
}

void OrcoDcsSystem::save_checkpoint(const std::string& path) {
  common::ByteWriter writer;
  writer.write_u32(kCheckpointMagic);
  writer.write_u64(config_.orco.input_dim);
  writer.write_u64(config_.orco.latent_dim);
  writer.write_bytes(nn::save_params(aggregator_->encoder()));
  writer.write_bytes(nn::save_params(edge_->decoder()));
  // Atomic temp-file-then-rename: a crash mid-write (e.g. during a fleet
  // cold-tier demotion) must never leave a torn checkpoint where the old
  // one was.
  common::write_file_atomic(path, writer.bytes());
}

void OrcoDcsSystem::load_checkpoint(const std::string& path) {
  const auto bytes = common::read_file(path);
  common::ByteReader reader(bytes);
  ORCO_CHECK(reader.read_u32() == kCheckpointMagic, "bad checkpoint magic");
  ORCO_CHECK(reader.read_u64() == config_.orco.input_dim,
             "checkpoint input_dim mismatch");
  ORCO_CHECK(reader.read_u64() == config_.orco.latent_dim,
             "checkpoint latent_dim mismatch");
  const auto encoder_blob = reader.read_bytes();
  const auto decoder_blob = reader.read_bytes();
  nn::load_params(aggregator_->encoder(), encoder_blob);
  nn::load_params(edge_->decoder(), decoder_blob);
}

}  // namespace orco::core
