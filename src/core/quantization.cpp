#include "core/quantization.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/check.h"

namespace orco::core {

std::size_t bytes_per_value(LatentPrecision precision) {
  switch (precision) {
    case LatentPrecision::kFloat32: return 4;
    case LatentPrecision::kFixed16: return 2;
    case LatentPrecision::kFixed8:  return 1;
  }
  throw std::invalid_argument("unknown precision");
}

std::vector<std::uint8_t> quantize_latents(const tensor::Tensor& latents,
                                           LatentPrecision precision) {
  const auto data = latents.data();
  std::vector<std::uint8_t> out;
  switch (precision) {
    case LatentPrecision::kFloat32: {
      out.resize(data.size() * 4);
      std::memcpy(out.data(), data.data(), out.size());
      return out;
    }
    case LatentPrecision::kFixed16: {
      out.resize(data.size() * 2);
      for (std::size_t i = 0; i < data.size(); ++i) {
        const float v = std::clamp(data[i], 0.0f, 1.0f);
        const auto q = static_cast<std::uint16_t>(
            std::lround(v * 65535.0f));
        out[2 * i] = static_cast<std::uint8_t>(q & 0xff);
        out[2 * i + 1] = static_cast<std::uint8_t>(q >> 8);
      }
      return out;
    }
    case LatentPrecision::kFixed8: {
      out.resize(data.size());
      for (std::size_t i = 0; i < data.size(); ++i) {
        const float v = std::clamp(data[i], 0.0f, 1.0f);
        out[i] = static_cast<std::uint8_t>(std::lround(v * 255.0f));
      }
      return out;
    }
  }
  throw std::invalid_argument("unknown precision");
}

tensor::Tensor dequantize_latents(const std::vector<std::uint8_t>& bytes,
                                  const tensor::Shape& shape,
                                  LatentPrecision precision) {
  const std::size_t n = tensor::shape_numel(shape);
  ORCO_CHECK(bytes.size() == n * bytes_per_value(precision),
             "quantised buffer size mismatch: " << bytes.size() << " vs "
                                                << n * bytes_per_value(precision));
  tensor::Tensor out(shape);
  auto data = out.data();
  switch (precision) {
    case LatentPrecision::kFloat32:
      std::memcpy(data.data(), bytes.data(), bytes.size());
      return out;
    case LatentPrecision::kFixed16:
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint16_t q = static_cast<std::uint16_t>(
            bytes[2 * i] | (bytes[2 * i + 1] << 8));
        data[i] = static_cast<float>(q) / 65535.0f;
      }
      return out;
    case LatentPrecision::kFixed8:
      for (std::size_t i = 0; i < n; ++i) {
        data[i] = static_cast<float>(bytes[i]) / 255.0f;
      }
      return out;
  }
  throw std::invalid_argument("unknown precision");
}

float quantization_error_bound(LatentPrecision precision) {
  switch (precision) {
    case LatentPrecision::kFloat32: return 0.0f;
    case LatentPrecision::kFixed16: return 0.5f / 65535.0f;
    case LatentPrecision::kFixed8:  return 0.5f / 255.0f;
  }
  throw std::invalid_argument("unknown precision");
}

}  // namespace orco::core
