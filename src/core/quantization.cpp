#include "core/quantization.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.h"

namespace orco::core {

namespace {

double code_max(LatentPrecision precision) {
  return precision == LatentPrecision::kFixed16 ? 65535.0 : 255.0;
}

void write_f32(std::uint8_t* dst, float v) { std::memcpy(dst, &v, 4); }

float read_f32(const std::uint8_t* src) {
  float v;
  std::memcpy(&v, src, 4);
  return v;
}

}  // namespace

std::size_t bytes_per_value(LatentPrecision precision) {
  switch (precision) {
    case LatentPrecision::kFloat32: return 4;
    case LatentPrecision::kFixed16: return 2;
    case LatentPrecision::kFixed8:  return 1;
  }
  throw std::invalid_argument("unknown precision");
}

std::size_t quantization_header_bytes(LatentPrecision precision) {
  return precision == LatentPrecision::kFloat32 ? 0 : 8;
}

std::size_t quantized_payload_bytes(std::size_t numel,
                                    LatentPrecision precision) {
  return quantization_header_bytes(precision) +
         numel * bytes_per_value(precision);
}

std::vector<std::uint8_t> quantize_latents(const tensor::Tensor& latents,
                                           LatentPrecision precision) {
  const auto data = latents.data();
  std::vector<std::uint8_t> out;
  if (precision == LatentPrecision::kFloat32) {
    out.resize(data.size() * 4);
    std::memcpy(out.data(), data.data(), out.size());
    return out;
  }

  // Per-batch affine header: lo = min, hi = max. Codes map [lo, hi] onto
  // the full code range so arbitrary-range latents round-trip within the
  // documented bound instead of being clamped to [0, 1].
  float lo = 0.0f, hi = 0.0f;
  if (!data.empty()) {
    lo = std::numeric_limits<float>::max();
    hi = std::numeric_limits<float>::lowest();
    for (const float v : data) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const double maxq = code_max(precision);
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  out.resize(quantized_payload_bytes(data.size(), precision));
  write_f32(out.data(), lo);
  write_f32(out.data() + 4, hi);
  std::uint8_t* payload = out.data() + 8;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double unit =
        range > 0.0 ? (static_cast<double>(data[i]) - lo) / range : 0.0;
    const auto q = static_cast<std::uint32_t>(std::min(
        maxq, std::max(0.0, std::round(unit * maxq))));
    if (precision == LatentPrecision::kFixed16) {
      payload[2 * i] = static_cast<std::uint8_t>(q & 0xff);
      payload[2 * i + 1] = static_cast<std::uint8_t>(q >> 8);
    } else {
      payload[i] = static_cast<std::uint8_t>(q);
    }
  }
  return out;
}

tensor::Tensor dequantize_latents(const std::vector<std::uint8_t>& bytes,
                                  const tensor::Shape& shape,
                                  LatentPrecision precision) {
  const std::size_t n = tensor::shape_numel(shape);
  ORCO_CHECK(bytes.size() == quantized_payload_bytes(n, precision),
             "quantised buffer size mismatch: "
                 << bytes.size() << " vs "
                 << quantized_payload_bytes(n, precision));
  tensor::Tensor out(shape);
  auto data = out.data();
  if (precision == LatentPrecision::kFloat32) {
    std::memcpy(data.data(), bytes.data(), bytes.size());
    return out;
  }
  const float lo = read_f32(bytes.data());
  const float hi = read_f32(bytes.data() + 4);
  const double maxq = code_max(precision);
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  const std::uint8_t* payload = bytes.data() + 8;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t q;
    if (precision == LatentPrecision::kFixed16) {
      q = static_cast<std::uint32_t>(payload[2 * i]) |
          (static_cast<std::uint32_t>(payload[2 * i + 1]) << 8);
    } else {
      q = payload[i];
    }
    data[i] = static_cast<float>(
        static_cast<double>(lo) + static_cast<double>(q) / maxq * range);
  }
  return out;
}

float quantization_error_bound(LatentPrecision precision) {
  switch (precision) {
    case LatentPrecision::kFloat32: return 0.0f;
    case LatentPrecision::kFixed16: return 0.5f / 65535.0f;
    case LatentPrecision::kFixed8:  return 0.5f / 255.0f;
  }
  throw std::invalid_argument("unknown precision");
}

}  // namespace orco::core
