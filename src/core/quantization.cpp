#include "core/quantization.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.h"

namespace orco::core {

namespace {

double code_max(LatentPrecision precision) {
  return precision == LatentPrecision::kFixed16 ? 65535.0 : 255.0;
}

void write_f32(std::uint8_t* dst, float v) { std::memcpy(dst, &v, 4); }

float read_f32(const std::uint8_t* src) {
  float v;
  std::memcpy(&v, src, 4);
  return v;
}

}  // namespace

std::size_t bytes_per_value(LatentPrecision precision) {
  switch (precision) {
    case LatentPrecision::kFloat32: return 4;
    case LatentPrecision::kFixed16: return 2;
    case LatentPrecision::kFixed8:  return 1;
  }
  throw std::invalid_argument("unknown precision");
}

std::size_t quantization_header_bytes(LatentPrecision precision) {
  return precision == LatentPrecision::kFloat32 ? 0 : 8;
}

std::size_t quantized_payload_bytes(std::size_t numel,
                                    LatentPrecision precision) {
  return quantization_header_bytes(precision) +
         numel * bytes_per_value(precision);
}

std::size_t quantize_latents_into(const tensor::Tensor& latents,
                                  LatentPrecision precision,
                                  std::uint8_t* out, std::size_t capacity) {
  const auto data = latents.data();
  const std::size_t total = quantized_payload_bytes(data.size(), precision);
  ORCO_CHECK(capacity >= total, "quantize_latents_into: capacity "
                                    << capacity << " < payload " << total);
  if (precision == LatentPrecision::kFloat32) {
    std::memcpy(out, data.data(), total);
    return total;
  }

  // Per-batch affine header: lo = min, hi = max. Codes map [lo, hi] onto
  // the full code range so arbitrary-range latents round-trip within the
  // documented bound instead of being clamped to [0, 1].
  float lo = 0.0f, hi = 0.0f;
  if (!data.empty()) {
    lo = std::numeric_limits<float>::max();
    hi = std::numeric_limits<float>::lowest();
    for (const float v : data) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  const double maxq = code_max(precision);
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  write_f32(out, lo);
  write_f32(out + 4, hi);
  std::uint8_t* payload = out + 8;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const double unit =
        range > 0.0 ? (static_cast<double>(data[i]) - lo) / range : 0.0;
    const auto q = static_cast<std::uint32_t>(std::min(
        maxq, std::max(0.0, std::round(unit * maxq))));
    if (precision == LatentPrecision::kFixed16) {
      payload[2 * i] = static_cast<std::uint8_t>(q & 0xff);
      payload[2 * i + 1] = static_cast<std::uint8_t>(q >> 8);
    } else {
      payload[i] = static_cast<std::uint8_t>(q);
    }
  }
  return total;
}

std::vector<std::uint8_t> quantize_latents(const tensor::Tensor& latents,
                                           LatentPrecision precision) {
  std::vector<std::uint8_t> out(
      quantized_payload_bytes(latents.data().size(), precision));
  quantize_latents_into(latents, precision, out.data(), out.size());
  return out;
}

void dequantize_latents_into(const std::uint8_t* bytes, std::size_t size,
                             LatentPrecision precision, float* out,
                             std::size_t numel) {
  ORCO_CHECK(size == quantized_payload_bytes(numel, precision),
             "quantised buffer size mismatch: "
                 << size << " vs " << quantized_payload_bytes(numel, precision));
  if (precision == LatentPrecision::kFloat32) {
    std::memcpy(out, bytes, size);
    return;
  }
  const float lo = read_f32(bytes);
  const float hi = read_f32(bytes + 4);
  const double maxq = code_max(precision);
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  const std::uint8_t* payload = bytes + 8;
  for (std::size_t i = 0; i < numel; ++i) {
    std::uint32_t q;
    if (precision == LatentPrecision::kFixed16) {
      q = static_cast<std::uint32_t>(payload[2 * i]) |
          (static_cast<std::uint32_t>(payload[2 * i + 1]) << 8);
    } else {
      q = payload[i];
    }
    out[i] = static_cast<float>(
        static_cast<double>(lo) + static_cast<double>(q) / maxq * range);
  }
}

tensor::Tensor dequantize_latents(const std::vector<std::uint8_t>& bytes,
                                  const tensor::Shape& shape,
                                  LatentPrecision precision) {
  const std::size_t n = tensor::shape_numel(shape);
  tensor::Tensor out(shape);
  dequantize_latents_into(bytes.data(), bytes.size(), precision,
                          out.data().data(), n);
  return out;
}

void quantized_dequant_params(const std::uint8_t* payload,
                              LatentPrecision precision, float* lo,
                              float* step) {
  ORCO_CHECK(precision != LatentPrecision::kFloat32,
             "float32 payloads carry no affine header");
  const float hdr_lo = read_f32(payload);
  const float hdr_hi = read_f32(payload + 4);
  *lo = hdr_lo;
  *step = static_cast<float>(
      (static_cast<double>(hdr_hi) - static_cast<double>(hdr_lo)) /
      code_max(precision));
}

float quantization_error_bound(LatentPrecision precision) {
  switch (precision) {
    case LatentPrecision::kFloat32: return 0.0f;
    case LatentPrecision::kFixed16: return 0.5f / 65535.0f;
    case LatentPrecision::kFixed8:  return 0.5f / 255.0f;
  }
  throw std::invalid_argument("unknown precision");
}

}  // namespace orco::core
