// The IoT-Edge orchestrated online training loop (paper §III-B, "Training
// procedure") with honest wire accounting.
//
// Every protocol message is serialised, shipped through the simulated
// channel (charging the ledger and the simulated clock), and deserialised
// on the far side — Fig. 3's byte counts and the communication share of
// Fig. 4's time axis come from this code path, not from a side formula.
// Compute time is charged via the FLOP model in core/config.h.
#pragma once

#include <functional>
#include <vector>

#include "core/aggregator.h"
#include "core/edge_server.h"
#include "data/dataloader.h"
#include "wsn/channel.h"

namespace orco::core {

/// Telemetry for one protocol round (one mini-batch).
struct RoundRecord {
  std::uint64_t round = 0;
  float loss = 0.0f;
  double sim_time_s = 0.0;       // simulated clock after this round
  double round_comms_s = 0.0;    // channel time spent this round
  double round_compute_s = 0.0;  // modelled compute time this round
  std::size_t uplink_payload_bytes = 0;
  std::size_t downlink_payload_bytes = 0;
};

class Orchestrator {
 public:
  /// All referenced objects must outlive the orchestrator.
  Orchestrator(DataAggregator& aggregator, EdgeServer& edge,
               wsn::Channel& channel, wsn::TransmissionLedger& ledger,
               wsn::SimClock& clock, ComputeModel compute);

  /// Runs the 4-message training protocol on one batch.
  RoundRecord train_round(const Tensor& batch);

  /// One pass over the loader (reshuffles first); returns per-round records.
  std::vector<RoundRecord> train_epoch(data::DataLoader& loader);

  /// Trains for `epochs` passes. `on_round` (optional) sees every record.
  std::vector<RoundRecord> train(
      data::DataLoader& loader, std::size_t epochs,
      const std::function<void(const RoundRecord&)>& on_round = nullptr);

  /// Steady-state compressed aggregation (§III-C, stage 3): encodes without
  /// noise and ships only the latents uplink. Returns simulated seconds.
  double aggregate_batch(const Tensor& batch);

  /// Noise-free end-to-end reconstruction (no wire traffic).
  Tensor reconstruct(const Tensor& batch);

  /// reconstruct() decoding into `out` through the caller's context — the
  /// one encode-then-decode pipeline both overloads share.
  void reconstruct_into(const Tensor& batch, Tensor& out,
                        nn::InferContext& ctx);

  /// Mean Huber-equivalent evaluation loss over a dataset (no wire traffic,
  /// no parameter updates).
  float evaluate_loss(const data::Dataset& dataset, std::size_t batch_size);

  /// evaluate_loss with the decode half running through the caller's
  /// long-lived InferContext (the background trainer passes its per-tenant
  /// context so repeated validation sweeps stop hammering the allocator).
  /// The encode half still runs the training-path forward — it caches
  /// activations by design and is not part of the zero-allocation contract.
  float evaluate_loss(const data::Dataset& dataset, std::size_t batch_size,
                      nn::InferContext& ctx);

  std::uint64_t rounds_completed() const noexcept { return next_round_; }
  wsn::SimClock& clock() noexcept { return *clock_; }

  /// Pins every training round and reconstruction driven by this
  /// orchestrator (both the aggregator's encoder and the edge decoder) to a
  /// kernel backend; nullptr (default) inherits the caller's selection.
  void set_backend(const tensor::Backend* backend) noexcept {
    backend_ = backend;
  }
  const tensor::Backend* backend() const noexcept { return backend_; }

 private:
  const tensor::Backend* backend_ = nullptr;
  DataAggregator* aggregator_;
  EdgeServer* edge_;
  wsn::Channel* channel_;
  wsn::TransmissionLedger* ledger_;
  wsn::SimClock* clock_;
  ComputeModel compute_;
  std::uint64_t next_round_ = 0;
};

}  // namespace orco::core
