#include "data/image.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace orco::data {

Canvas::Canvas(std::size_t channels, std::size_t height, std::size_t width,
               float fill)
    : c_(channels), h_(height), w_(width), pix_(channels * height * width, fill) {
  ORCO_CHECK(channels > 0 && height > 0 && width > 0, "empty canvas");
}

float& Canvas::at(std::size_t c, std::size_t y, std::size_t x) {
  ORCO_CHECK(c < c_ && y < h_ && x < w_, "canvas index out of range");
  return pix_[(c * h_ + y) * w_ + x];
}

float Canvas::at(std::size_t c, std::size_t y, std::size_t x) const {
  return const_cast<Canvas*>(this)->at(c, y, x);
}

void Canvas::plot(float y, float x, const std::vector<float>& color,
                  float alpha) {
  ORCO_CHECK(color.size() == c_, "color channel mismatch");
  const auto yi = static_cast<std::ptrdiff_t>(std::lround(y));
  const auto xi = static_cast<std::ptrdiff_t>(std::lround(x));
  if (yi < 0 || yi >= static_cast<std::ptrdiff_t>(h_) || xi < 0 ||
      xi >= static_cast<std::ptrdiff_t>(w_)) {
    return;
  }
  for (std::size_t c = 0; c < c_; ++c) {
    float& p = pix_[(c * h_ + static_cast<std::size_t>(yi)) * w_ +
                    static_cast<std::size_t>(xi)];
    p = (1.0f - alpha) * p + alpha * color[c];
  }
}

void Canvas::draw_line(float y0, float x0, float y1, float x1,
                       const std::vector<float>& color, float thickness) {
  const float dy = y1 - y0, dx = x1 - x0;
  const float len = std::max(1.0f, std::hypot(dy, dx));
  const int steps = static_cast<int>(len * 2.0f) + 1;
  const float r = std::max(0.5f, thickness * 0.5f);
  for (int s = 0; s <= steps; ++s) {
    const float t = static_cast<float>(s) / static_cast<float>(steps);
    const float cy = y0 + t * dy, cx = x0 + t * dx;
    // Stamp a small disc at each step for thickness.
    const int ri = static_cast<int>(std::ceil(r));
    for (int oy = -ri; oy <= ri; ++oy) {
      for (int ox = -ri; ox <= ri; ++ox) {
        const float d = std::hypot(static_cast<float>(oy), static_cast<float>(ox));
        if (d <= r) {
          plot(cy + static_cast<float>(oy), cx + static_cast<float>(ox), color,
               1.0f);
        } else if (d <= r + 0.7f) {
          plot(cy + static_cast<float>(oy), cx + static_cast<float>(ox), color,
               r + 0.7f - d);
        }
      }
    }
  }
}

void Canvas::draw_circle(float cy, float cx, float radius,
                         const std::vector<float>& color, float stroke) {
  const int steps = static_cast<int>(radius * 8.0f) + 16;
  for (int s = 0; s < steps; ++s) {
    const float a0 = 2.0f * static_cast<float>(M_PI) * static_cast<float>(s) /
                     static_cast<float>(steps);
    const float a1 = 2.0f * static_cast<float>(M_PI) *
                     static_cast<float>(s + 1) / static_cast<float>(steps);
    draw_line(cy + radius * std::sin(a0), cx + radius * std::cos(a0),
              cy + radius * std::sin(a1), cx + radius * std::cos(a1), color,
              stroke);
  }
}

void Canvas::fill_circle(float cy, float cx, float radius,
                         const std::vector<float>& color) {
  const int y0 = std::max(0, static_cast<int>(std::floor(cy - radius)));
  const int y1 = std::min(static_cast<int>(h_) - 1,
                          static_cast<int>(std::ceil(cy + radius)));
  for (int y = y0; y <= y1; ++y) {
    for (int x = 0; x < static_cast<int>(w_); ++x) {
      const float d = std::hypot(static_cast<float>(y) - cy,
                                 static_cast<float>(x) - cx);
      if (d <= radius) {
        plot(static_cast<float>(y), static_cast<float>(x), color, 1.0f);
      } else if (d <= radius + 0.7f) {
        plot(static_cast<float>(y), static_cast<float>(x), color,
             radius + 0.7f - d);
      }
    }
  }
}

void Canvas::fill_polygon(const std::vector<std::pair<float, float>>& vertices,
                          const std::vector<float>& color) {
  ORCO_CHECK(vertices.size() >= 3, "polygon needs >= 3 vertices");
  float ymin = vertices[0].first, ymax = vertices[0].first;
  for (const auto& v : vertices) {
    ymin = std::min(ymin, v.first);
    ymax = std::max(ymax, v.first);
  }
  const int y0 = std::max(0, static_cast<int>(std::floor(ymin)));
  const int y1 = std::min(static_cast<int>(h_) - 1,
                          static_cast<int>(std::ceil(ymax)));
  const std::size_t n = vertices.size();
  for (int y = y0; y <= y1; ++y) {
    const float fy = static_cast<float>(y) + 0.5f;
    std::vector<float> xs;
    for (std::size_t i = 0; i < n; ++i) {
      const auto& a = vertices[i];
      const auto& b = vertices[(i + 1) % n];
      if ((a.first <= fy && b.first > fy) || (b.first <= fy && a.first > fy)) {
        const float t = (fy - a.first) / (b.first - a.first);
        xs.push_back(a.second + t * (b.second - a.second));
      }
    }
    std::sort(xs.begin(), xs.end());
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      const int xa = std::max(0, static_cast<int>(std::ceil(xs[i] - 0.5f)));
      const int xb = std::min(static_cast<int>(w_) - 1,
                              static_cast<int>(std::floor(xs[i + 1] - 0.5f)));
      for (int x = xa; x <= xb; ++x) {
        plot(static_cast<float>(y), static_cast<float>(x), color, 1.0f);
      }
    }
  }
}

void Canvas::draw_polygon(const std::vector<std::pair<float, float>>& vertices,
                          const std::vector<float>& color, float thickness) {
  ORCO_CHECK(vertices.size() >= 2, "polyline needs >= 2 vertices");
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const auto& a = vertices[i];
    const auto& b = vertices[(i + 1) % vertices.size()];
    draw_line(a.first, a.second, b.first, b.second, color, thickness);
  }
}

void Canvas::add_noise(float stddev, common::Pcg32& rng) {
  if (stddev <= 0.0f) return;
  for (auto& p : pix_) p += static_cast<float>(rng.normal(0.0, stddev));
}

void Canvas::scale_brightness(float gain) {
  for (auto& p : pix_) p = std::clamp(p * gain, 0.0f, 1.0f);
}

void Canvas::blur(int passes) {
  for (int pass = 0; pass < passes; ++pass) {
    std::vector<float> out(pix_.size());
    for (std::size_t c = 0; c < c_; ++c) {
      for (std::size_t y = 0; y < h_; ++y) {
        for (std::size_t x = 0; x < w_; ++x) {
          float acc = 0.0f;
          int count = 0;
          for (int oy = -1; oy <= 1; ++oy) {
            for (int ox = -1; ox <= 1; ++ox) {
              const auto yy = static_cast<std::ptrdiff_t>(y) + oy;
              const auto xx = static_cast<std::ptrdiff_t>(x) + ox;
              if (yy < 0 || yy >= static_cast<std::ptrdiff_t>(h_) || xx < 0 ||
                  xx >= static_cast<std::ptrdiff_t>(w_)) {
                continue;
              }
              acc += pix_[(c * h_ + static_cast<std::size_t>(yy)) * w_ +
                          static_cast<std::size_t>(xx)];
              ++count;
            }
          }
          out[(c * h_ + y) * w_ + x] = acc / static_cast<float>(count);
        }
      }
    }
    pix_ = std::move(out);
  }
}

void Canvas::clamp01() {
  for (auto& p : pix_) p = std::clamp(p, 0.0f, 1.0f);
}

tensor::Tensor Canvas::to_tensor() const {
  return tensor::Tensor({c_ * h_ * w_}, pix_);
}

Canvas affine_warp(const Canvas& src, float angle_rad, float scale, float dy,
                   float dx) {
  ORCO_CHECK(scale > 0.0f, "affine scale must be positive");
  Canvas out(src.channels(), src.height(), src.width(), 0.0f);
  const float cy = static_cast<float>(src.height()) * 0.5f;
  const float cx = static_cast<float>(src.width()) * 0.5f;
  const float cos_a = std::cos(-angle_rad), sin_a = std::sin(-angle_rad);
  const float inv_scale = 1.0f / scale;
  for (std::size_t y = 0; y < out.height(); ++y) {
    for (std::size_t x = 0; x < out.width(); ++x) {
      // Inverse-map the output pixel into source coordinates.
      const float ry = (static_cast<float>(y) - cy - dy) * inv_scale;
      const float rx = (static_cast<float>(x) - cx - dx) * inv_scale;
      const float sy = cos_a * ry - sin_a * rx + cy;
      const float sx = sin_a * ry + cos_a * rx + cx;
      const auto y0 = static_cast<std::ptrdiff_t>(std::floor(sy));
      const auto x0 = static_cast<std::ptrdiff_t>(std::floor(sx));
      const float fy = sy - static_cast<float>(y0);
      const float fx = sx - static_cast<float>(x0);
      for (std::size_t c = 0; c < src.channels(); ++c) {
        auto sample = [&](std::ptrdiff_t yy, std::ptrdiff_t xx) -> float {
          if (yy < 0 || yy >= static_cast<std::ptrdiff_t>(src.height()) ||
              xx < 0 || xx >= static_cast<std::ptrdiff_t>(src.width())) {
            return 0.0f;
          }
          return src.at(c, static_cast<std::size_t>(yy),
                        static_cast<std::size_t>(xx));
        };
        const float v = (1 - fy) * ((1 - fx) * sample(y0, x0) +
                                    fx * sample(y0, x0 + 1)) +
                        fy * ((1 - fx) * sample(y0 + 1, x0) +
                              fx * sample(y0 + 1, x0 + 1));
        out.at(c, y, x) = v;
      }
    }
  }
  return out;
}

}  // namespace orco::data
