#include "data/synthetic_gtsrb.h"

#include <array>
#include <cmath>

#include "common/check.h"
#include "data/image.h"

namespace orco::data {

namespace {

enum class SignShape { kCircle, kTriangleUp, kTriangleDown, kDiamond, kOctagon };

enum class Glyph {
  kNone, kBarH, kBarV, kBarDiag, kArrowUp, kArrowRight, kArrowLeft,
  kCross, kDot, kChevron, kZigzag,
};

struct SignSpec {
  SignShape shape;
  std::array<float, 3> rim;    // RGB
  std::array<float, 3> face;   // RGB
  std::array<float, 3> glyph_color;
  Glyph glyph;
};

// 43 visually distinct (shape, rim, face, glyph) combinations in the spirit
// of the real GTSRB taxonomy: red-rim prohibitions, triangles for warnings,
// blue circles for mandatory directions, plus stop-like octagons.
std::vector<SignSpec> build_specs() {
  const std::array<float, 3> red{0.85f, 0.10f, 0.12f};
  const std::array<float, 3> blue{0.10f, 0.25f, 0.80f};
  const std::array<float, 3> yellow{0.95f, 0.85f, 0.15f};
  const std::array<float, 3> white{0.95f, 0.95f, 0.95f};
  const std::array<float, 3> black{0.05f, 0.05f, 0.05f};

  std::vector<SignSpec> specs;
  const std::array<Glyph, 11> glyphs = {
      Glyph::kNone,      Glyph::kBarH,      Glyph::kBarV,  Glyph::kBarDiag,
      Glyph::kArrowUp,   Glyph::kArrowRight, Glyph::kArrowLeft,
      Glyph::kCross,     Glyph::kDot,       Glyph::kChevron, Glyph::kZigzag};

  // 11 red-rim white-face circles (prohibition family).
  for (const auto g : glyphs) {
    specs.push_back({SignShape::kCircle, red, white, black, g});
  }
  // 11 blue circles with white glyphs (mandatory family).
  for (const auto g : glyphs) {
    specs.push_back({SignShape::kCircle, blue, blue, white, g});
  }
  // 11 red-rim warning triangles.
  for (const auto g : glyphs) {
    specs.push_back({SignShape::kTriangleUp, red, white, black, g});
  }
  // 6 yellow diamonds (priority family).
  const std::array<Glyph, 6> diamond_glyphs = {Glyph::kNone, Glyph::kBarH,
                                               Glyph::kBarV, Glyph::kCross,
                                               Glyph::kDot,  Glyph::kChevron};
  for (const auto g : diamond_glyphs) {
    specs.push_back({SignShape::kDiamond, white, yellow, black, g});
  }
  // 3 inverted triangles (yield family).
  specs.push_back({SignShape::kTriangleDown, red, white, black, Glyph::kNone});
  specs.push_back({SignShape::kTriangleDown, red, white, black, Glyph::kBarH});
  specs.push_back({SignShape::kTriangleDown, red, white, black, Glyph::kDot});
  // 1 octagon (stop).
  specs.push_back({SignShape::kOctagon, white, red, white, Glyph::kBarH});

  ORCO_ENSURE(specs.size() == kGtsrbClasses,
              "expected 43 sign specs, got " << specs.size());
  return specs;
}

std::vector<float> rgb(const std::array<float, 3>& c) {
  return {c[0], c[1], c[2]};
}

void draw_shape(Canvas& canvas, const SignSpec& spec, float cy, float cx,
                float r) {
  const auto rim = rgb(spec.rim);
  const auto face = rgb(spec.face);
  switch (spec.shape) {
    case SignShape::kCircle:
      canvas.fill_circle(cy, cx, r, rim);
      canvas.fill_circle(cy, cx, r * 0.72f, face);
      break;
    case SignShape::kTriangleUp: {
      const std::vector<std::pair<float, float>> outer = {
          {cy - r, cx}, {cy + r * 0.8f, cx - r}, {cy + r * 0.8f, cx + r}};
      const std::vector<std::pair<float, float>> inner = {
          {cy - r * 0.55f, cx},
          {cy + r * 0.55f, cx - r * 0.6f},
          {cy + r * 0.55f, cx + r * 0.6f}};
      canvas.fill_polygon(outer, rim);
      canvas.fill_polygon(inner, face);
      break;
    }
    case SignShape::kTriangleDown: {
      const std::vector<std::pair<float, float>> outer = {
          {cy + r, cx}, {cy - r * 0.8f, cx - r}, {cy - r * 0.8f, cx + r}};
      const std::vector<std::pair<float, float>> inner = {
          {cy + r * 0.55f, cx},
          {cy - r * 0.55f, cx - r * 0.6f},
          {cy - r * 0.55f, cx + r * 0.6f}};
      canvas.fill_polygon(outer, rim);
      canvas.fill_polygon(inner, face);
      break;
    }
    case SignShape::kDiamond: {
      const std::vector<std::pair<float, float>> outer = {
          {cy - r, cx}, {cy, cx + r}, {cy + r, cx}, {cy, cx - r}};
      const std::vector<std::pair<float, float>> inner = {
          {cy - r * 0.7f, cx},
          {cy, cx + r * 0.7f},
          {cy + r * 0.7f, cx},
          {cy, cx - r * 0.7f}};
      canvas.fill_polygon(outer, rim);
      canvas.fill_polygon(inner, face);
      break;
    }
    case SignShape::kOctagon: {
      std::vector<std::pair<float, float>> outer;
      for (int k = 0; k < 8; ++k) {
        const float a = static_cast<float>(M_PI) *
                        (0.125f + 0.25f * static_cast<float>(k));
        outer.emplace_back(cy + r * std::sin(a), cx + r * std::cos(a));
      }
      canvas.fill_polygon(outer, rgb(spec.face));
      canvas.draw_polygon(outer, rim, 1.5f);
      break;
    }
  }
}

void draw_glyph(Canvas& canvas, const SignSpec& spec, float cy, float cx,
                float r) {
  const auto col = rgb(spec.glyph_color);
  const float g = r * 0.42f;
  switch (spec.glyph) {
    case Glyph::kNone:
      break;
    case Glyph::kBarH:
      canvas.draw_line(cy, cx - g, cy, cx + g, col, 2.4f);
      break;
    case Glyph::kBarV:
      canvas.draw_line(cy - g, cx, cy + g, cx, col, 2.4f);
      break;
    case Glyph::kBarDiag:
      canvas.draw_line(cy - g, cx - g, cy + g, cx + g, col, 2.4f);
      break;
    case Glyph::kArrowUp:
      canvas.draw_line(cy + g, cx, cy - g, cx, col, 2.0f);
      canvas.draw_line(cy - g, cx, cy - g * 0.2f, cx - g * 0.6f, col, 2.0f);
      canvas.draw_line(cy - g, cx, cy - g * 0.2f, cx + g * 0.6f, col, 2.0f);
      break;
    case Glyph::kArrowRight:
      canvas.draw_line(cy, cx - g, cy, cx + g, col, 2.0f);
      canvas.draw_line(cy, cx + g, cy - g * 0.6f, cx + g * 0.2f, col, 2.0f);
      canvas.draw_line(cy, cx + g, cy + g * 0.6f, cx + g * 0.2f, col, 2.0f);
      break;
    case Glyph::kArrowLeft:
      canvas.draw_line(cy, cx + g, cy, cx - g, col, 2.0f);
      canvas.draw_line(cy, cx - g, cy - g * 0.6f, cx - g * 0.2f, col, 2.0f);
      canvas.draw_line(cy, cx - g, cy + g * 0.6f, cx - g * 0.2f, col, 2.0f);
      break;
    case Glyph::kCross:
      canvas.draw_line(cy - g, cx - g, cy + g, cx + g, col, 2.2f);
      canvas.draw_line(cy - g, cx + g, cy + g, cx - g, col, 2.2f);
      break;
    case Glyph::kDot:
      canvas.fill_circle(cy, cx, g * 0.55f, col);
      break;
    case Glyph::kChevron:
      canvas.draw_line(cy + g * 0.5f, cx - g, cy - g * 0.5f, cx, col, 2.0f);
      canvas.draw_line(cy - g * 0.5f, cx, cy + g * 0.5f, cx + g, col, 2.0f);
      break;
    case Glyph::kZigzag:
      canvas.draw_line(cy + g, cx - g, cy - g * 0.2f, cx - g * 0.3f, col, 1.8f);
      canvas.draw_line(cy - g * 0.2f, cx - g * 0.3f, cy + g * 0.2f,
                       cx + g * 0.3f, col, 1.8f);
      canvas.draw_line(cy + g * 0.2f, cx + g * 0.3f, cy - g, cx + g, col, 1.8f);
      break;
  }
}

}  // namespace

Dataset make_synthetic_gtsrb(const GtsrbConfig& config) {
  ORCO_CHECK(config.count > 0, "gtsrb count must be positive");
  ORCO_CHECK(config.min_brightness > 0.0f &&
                 config.min_brightness <= config.max_brightness,
             "bad gtsrb brightness range");
  static const std::vector<SignSpec> specs = build_specs();
  common::Pcg32 rng(config.seed, /*stream=*/0x67747372u);  // "gtsr"

  const auto geom = kGtsrbGeometry;
  tensor::Tensor images({config.count, geom.features()});
  std::vector<std::size_t> labels(config.count);

  for (std::size_t i = 0; i < config.count; ++i) {
    const std::size_t cls = rng.bounded(kGtsrbClasses);
    labels[i] = cls;
    const auto& spec = specs[cls];

    // Cluttered background: vertical gradient plus random soft blobs.
    Canvas canvas(3, geom.height, geom.width, 0.0f);
    const float base_r = rng.uniform(0.1f, 0.6f);
    const float base_g = rng.uniform(0.1f, 0.6f);
    const float base_b = rng.uniform(0.1f, 0.6f);
    for (std::size_t y = 0; y < geom.height; ++y) {
      const float grad =
          0.75f + 0.5f * static_cast<float>(y) / static_cast<float>(geom.height);
      for (std::size_t x = 0; x < geom.width; ++x) {
        canvas.at(0, y, x) = base_r * grad;
        canvas.at(1, y, x) = base_g * grad;
        canvas.at(2, y, x) = base_b * grad;
      }
    }
    const std::size_t blobs = 2 + rng.bounded(4);
    for (std::size_t b = 0; b < blobs; ++b) {
      canvas.fill_circle(rng.uniform(0.0f, 32.0f), rng.uniform(0.0f, 32.0f),
                         rng.uniform(2.0f, 6.0f),
                         {rng.uniform(0.0f, 0.8f), rng.uniform(0.0f, 0.8f),
                          rng.uniform(0.0f, 0.8f)});
    }
    canvas.blur(1);

    draw_shape(canvas, spec, 16.0f, 16.0f, 11.0f);
    draw_glyph(canvas, spec, 16.0f, 16.0f, 11.0f);

    const float angle =
        rng.uniform(-config.max_rotation_rad, config.max_rotation_rad);
    const float scale = rng.uniform(config.min_scale, config.max_scale);
    const float dy = rng.uniform(-config.max_translation, config.max_translation);
    const float dx = rng.uniform(-config.max_translation, config.max_translation);
    Canvas warped = affine_warp(canvas, angle, scale, dy, dx);

    warped.scale_brightness(
        rng.uniform(config.min_brightness, config.max_brightness));
    warped.blur(1);
    warped.add_noise(config.pixel_noise, rng);
    warped.clamp01();

    const auto t = warped.to_tensor();
    std::copy(t.data().begin(), t.data().end(), images.row(i).begin());
  }

  return Dataset("synthetic-gtsrb", geom, kGtsrbClasses, std::move(images),
                 std::move(labels));
}

}  // namespace orco::data
