// Procedural stand-in for GTSRB (see DESIGN.md "Substitutions").
//
// 43 sign classes are built from the cross product of sign shape, rim
// colour, face colour and glyph — mirroring the real benchmark's visual
// structure (red-rimmed circles, triangles, blue mandatory signs, ...).
// Per-sample variation: rotation, scale, translation, illumination gain,
// background clutter, blur and pixel noise — matching the paper's remark
// that GTSRB images "have varying light conditions and colorful
// backgrounds".
#pragma once

#include "data/dataset.h"

namespace orco::data {

struct GtsrbConfig {
  std::size_t count = 1000;
  std::uint64_t seed = 2;
  float pixel_noise = 0.04f;
  float min_brightness = 0.45f;
  float max_brightness = 1.15f;
  float max_rotation_rad = 0.2f;
  float min_scale = 0.8f;
  float max_scale = 1.05f;
  float max_translation = 2.0f;
};

inline constexpr std::size_t kGtsrbClasses = 43;
inline constexpr ImageGeometry kGtsrbGeometry{3, 32, 32};

/// Generates `config.count` samples with uniformly distributed labels.
Dataset make_synthetic_gtsrb(const GtsrbConfig& config);

}  // namespace orco::data
