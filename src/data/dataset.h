// In-memory labelled image dataset: a (count, features) tensor plus labels.
#pragma once

#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace orco::data {

/// Spatial interpretation of a flattened image row (CHW layout).
struct ImageGeometry {
  std::size_t channels = 1;
  std::size_t height = 0;
  std::size_t width = 0;

  std::size_t features() const { return channels * height * width; }
  bool operator==(const ImageGeometry&) const = default;
};

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, ImageGeometry geometry, std::size_t num_classes,
          tensor::Tensor images, std::vector<std::size_t> labels);

  const std::string& name() const noexcept { return name_; }
  const ImageGeometry& geometry() const noexcept { return geometry_; }
  std::size_t num_classes() const noexcept { return num_classes_; }
  std::size_t size() const { return labels_.size(); }

  const tensor::Tensor& images() const noexcept { return images_; }
  tensor::Tensor& mutable_images() noexcept { return images_; }
  const std::vector<std::size_t>& labels() const noexcept { return labels_; }

  /// One image as a rank-1 tensor.
  tensor::Tensor image(std::size_t i) const;
  std::size_t label(std::size_t i) const;

  /// Copies samples [begin, end) into a new dataset.
  Dataset subset(std::size_t begin, std::size_t end) const;

  /// Copies the samples at `indices` into a new dataset.
  Dataset gather(const std::vector<std::size_t>& indices) const;

  /// Splits into (first `head` samples, rest).
  std::pair<Dataset, Dataset> split(std::size_t head) const;

 private:
  std::string name_;
  ImageGeometry geometry_;
  std::size_t num_classes_ = 0;
  tensor::Tensor images_;  // (count, features)
  std::vector<std::size_t> labels_;
};

}  // namespace orco::data
