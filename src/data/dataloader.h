// Mini-batch iteration with per-epoch shuffling.
#pragma once

#include "common/rng.h"
#include "data/dataset.h"

namespace orco::data {

struct Batch {
  tensor::Tensor images;  // (batch, features)
  std::vector<std::size_t> labels;

  std::size_t size() const { return labels.size(); }
};

class DataLoader {
 public:
  /// If `shuffle`, sample order is re-randomised by reshuffle() (call it at
  /// each epoch start). The final partial batch is kept (never dropped).
  DataLoader(const Dataset& dataset, std::size_t batch_size, bool shuffle,
             common::Pcg32 rng = common::Pcg32(0x10adu));

  std::size_t batch_count() const;
  std::size_t batch_size() const noexcept { return batch_size_; }

  /// Returns batch b of the current epoch ordering.
  Batch batch(std::size_t b) const;

  /// Reshuffles the epoch ordering (no-op when shuffle=false).
  void reshuffle();

 private:
  const Dataset* dataset_;
  std::size_t batch_size_;
  bool shuffle_;
  common::Pcg32 rng_;
  std::vector<std::size_t> order_;
};

}  // namespace orco::data
