// Procedural stand-in for MNIST (see DESIGN.md "Substitutions").
//
// Digits 0-9 are rendered as stroke skeletons on a 28x28 grid — a
// seven-segment-plus-diagonals font — then perturbed per sample with random
// rotation, scale, translation, stroke thickness, brightness and pixel
// noise. The result is a deterministic, class-separable 784-dimensional
// grayscale distribution exercising the same pipeline as real MNIST.
#pragma once

#include "data/dataset.h"

namespace orco::data {

struct MnistConfig {
  std::size_t count = 1000;
  std::uint64_t seed = 1;
  float pixel_noise = 0.05f;  // Gaussian stddev added to every pixel
  float max_rotation_rad = 0.26f;
  float min_scale = 0.85f;
  float max_scale = 1.1f;
  float max_translation = 2.0f;
};

inline constexpr std::size_t kMnistClasses = 10;
inline constexpr ImageGeometry kMnistGeometry{1, 28, 28};

/// Generates `config.count` samples with uniformly distributed labels.
Dataset make_synthetic_mnist(const MnistConfig& config);

}  // namespace orco::data
