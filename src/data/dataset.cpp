#include "data/dataset.h"

#include "common/check.h"

namespace orco::data {

Dataset::Dataset(std::string name, ImageGeometry geometry,
                 std::size_t num_classes, tensor::Tensor images,
                 std::vector<std::size_t> labels)
    : name_(std::move(name)),
      geometry_(geometry),
      num_classes_(num_classes),
      images_(std::move(images)),
      labels_(std::move(labels)) {
  ORCO_CHECK(images_.rank() == 2, "dataset images must be rank 2");
  ORCO_CHECK(images_.dim(0) == labels_.size(),
             "image count " << images_.dim(0) << " vs label count "
                            << labels_.size());
  ORCO_CHECK(images_.dim(1) == geometry_.features(),
             "feature count " << images_.dim(1) << " vs geometry "
                              << geometry_.features());
  for (const auto l : labels_) {
    ORCO_CHECK(l < num_classes_, "label " << l << " out of " << num_classes_);
  }
}

tensor::Tensor Dataset::image(std::size_t i) const {
  ORCO_CHECK(i < size(), "sample index out of range");
  const auto r = images_.row(i);
  return tensor::Tensor({geometry_.features()},
                        std::vector<float>(r.begin(), r.end()));
}

std::size_t Dataset::label(std::size_t i) const {
  ORCO_CHECK(i < size(), "sample index out of range");
  return labels_[i];
}

Dataset Dataset::subset(std::size_t begin, std::size_t end) const {
  ORCO_CHECK(begin <= end && end <= size(), "bad subset range");
  return Dataset(name_, geometry_, num_classes_,
                 images_.slice_rows(begin, end),
                 std::vector<std::size_t>(labels_.begin() + static_cast<std::ptrdiff_t>(begin),
                                          labels_.begin() + static_cast<std::ptrdiff_t>(end)));
}

Dataset Dataset::gather(const std::vector<std::size_t>& indices) const {
  tensor::Tensor images({indices.size(), geometry_.features()});
  std::vector<std::size_t> labels(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    ORCO_CHECK(indices[i] < size(), "gather index out of range");
    const auto src = images_.row(indices[i]);
    std::copy(src.begin(), src.end(), images.row(i).begin());
    labels[i] = labels_[indices[i]];
  }
  return Dataset(name_, geometry_, num_classes_, std::move(images),
                 std::move(labels));
}

std::pair<Dataset, Dataset> Dataset::split(std::size_t head) const {
  ORCO_CHECK(head <= size(), "split point out of range");
  return {subset(0, head), subset(head, size())};
}

}  // namespace orco::data
