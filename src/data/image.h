// Procedural raster drawing used by the synthetic dataset generators.
//
// The real MNIST/GTSRB archives cannot be downloaded in this offline
// environment, so the generators in this module draw class-structured
// images from scratch (see DESIGN.md "Substitutions"). Everything here is
// deterministic given the caller's RNG.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"

namespace orco::data {

/// Float image in CHW layout with values nominally in [0, 1].
class Canvas {
 public:
  Canvas(std::size_t channels, std::size_t height, std::size_t width,
         float fill = 0.0f);

  std::size_t channels() const noexcept { return c_; }
  std::size_t height() const noexcept { return h_; }
  std::size_t width() const noexcept { return w_; }

  float& at(std::size_t c, std::size_t y, std::size_t x);
  float at(std::size_t c, std::size_t y, std::size_t x) const;

  /// Additively blends `value` into a pixel on every channel scaled by the
  /// per-channel color; no-op outside bounds (callers can draw freely).
  void plot(float y, float x, const std::vector<float>& color,
            float alpha = 1.0f);

  /// Anti-aliased thick line segment.
  void draw_line(float y0, float x0, float y1, float x1,
                 const std::vector<float>& color, float thickness = 1.0f);

  /// Circle outline (anti-aliased ring of the given stroke width).
  void draw_circle(float cy, float cx, float radius,
                   const std::vector<float>& color, float stroke = 1.0f);

  /// Filled circle.
  void fill_circle(float cy, float cx, float radius,
                   const std::vector<float>& color);

  /// Filled convex polygon (scanline; vertices as (y,x) pairs).
  void fill_polygon(const std::vector<std::pair<float, float>>& vertices,
                    const std::vector<float>& color);

  /// Polygon outline.
  void draw_polygon(const std::vector<std::pair<float, float>>& vertices,
                    const std::vector<float>& color, float thickness = 1.0f);

  /// Adds i.i.d. Gaussian noise to every sample.
  void add_noise(float stddev, common::Pcg32& rng);

  /// Multiplies every sample by `gain` then clamps to [0, 1].
  void scale_brightness(float gain);

  /// 3x3 box blur applied `passes` times (cheap approximation of Gaussian).
  void blur(int passes = 1);

  /// Clamps all samples to [0, 1].
  void clamp01();

  /// Flattened copy as a rank-1 tensor of c*h*w features (CHW order).
  tensor::Tensor to_tensor() const;

 private:
  std::size_t c_, h_, w_;
  std::vector<float> pix_;
};

/// Applies an affine warp (rotate by `angle_rad` about the centre, scale,
/// translate) with bilinear sampling; returns the warped canvas.
Canvas affine_warp(const Canvas& src, float angle_rad, float scale, float dy,
                   float dx);

}  // namespace orco::data
