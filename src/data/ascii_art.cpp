#include "data/ascii_art.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace orco::data {

namespace {
// Ten-level luminance ramp, dark to bright.
constexpr const char* kRamp = " .:-=+*#%@";

char shade(float v) {
  const int idx = std::clamp(static_cast<int>(v * 10.0f), 0, 9);
  return kRamp[idx];
}

float luminance(const tensor::Tensor& image, const ImageGeometry& g,
                std::size_t y, std::size_t x) {
  const auto d = image.data();
  if (g.channels == 1) return d[y * g.width + x];
  // Rec.601 luma over the first three channels.
  const std::size_t plane = g.height * g.width;
  const float r = d[0 * plane + y * g.width + x];
  const float gr = d[1 * plane + y * g.width + x];
  const float b = d[2 * plane + y * g.width + x];
  return 0.299f * r + 0.587f * gr + 0.114f * b;
}
}  // namespace

std::string ascii_art(const tensor::Tensor& image,
                      const ImageGeometry& geometry) {
  ORCO_CHECK(image.numel() == geometry.features(),
             "ascii_art geometry mismatch");
  std::ostringstream os;
  for (std::size_t y = 0; y < geometry.height; ++y) {
    for (std::size_t x = 0; x < geometry.width; ++x) {
      const char c = shade(luminance(image, geometry, y, x));
      os << c << c;
    }
    os << '\n';
  }
  return os.str();
}

std::string ascii_art_row(const std::vector<tensor::Tensor>& images,
                          const std::vector<std::string>& captions,
                          const ImageGeometry& geometry) {
  ORCO_CHECK(!images.empty() && images.size() == captions.size(),
             "ascii_art_row: need equal non-zero images/captions");
  const std::size_t cell = geometry.width * 2;
  std::ostringstream os;
  for (std::size_t i = 0; i < captions.size(); ++i) {
    std::string cap = captions[i].substr(0, cell);
    os << cap << std::string(cell - cap.size() + 3, ' ');
  }
  os << '\n';
  for (std::size_t y = 0; y < geometry.height; ++y) {
    for (const auto& img : images) {
      ORCO_CHECK(img.numel() == geometry.features(),
                 "ascii_art_row geometry mismatch");
      for (std::size_t x = 0; x < geometry.width; ++x) {
        const char c = shade(luminance(img, geometry, y, x));
        os << c << c;
      }
      os << "   ";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace orco::data
