#include "data/dataloader.h"

#include <numeric>

#include "common/check.h"

namespace orco::data {

DataLoader::DataLoader(const Dataset& dataset, std::size_t batch_size,
                       bool shuffle, common::Pcg32 rng)
    : dataset_(&dataset),
      batch_size_(batch_size),
      shuffle_(shuffle),
      rng_(rng),
      order_(dataset.size()) {
  ORCO_CHECK(batch_size > 0, "batch size must be positive");
  ORCO_CHECK(dataset.size() > 0, "cannot iterate an empty dataset");
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  if (shuffle_) reshuffle();
}

std::size_t DataLoader::batch_count() const {
  return (dataset_->size() + batch_size_ - 1) / batch_size_;
}

Batch DataLoader::batch(std::size_t b) const {
  ORCO_CHECK(b < batch_count(), "batch index out of range");
  const std::size_t begin = b * batch_size_;
  const std::size_t end = std::min(begin + batch_size_, dataset_->size());
  const std::size_t n = end - begin;
  const std::size_t feats = dataset_->geometry().features();

  Batch out{tensor::Tensor({n, feats}), std::vector<std::size_t>(n)};
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t src = order_[begin + i];
    const auto row = dataset_->images().row(src);
    std::copy(row.begin(), row.end(), out.images.row(i).begin());
    out.labels[i] = dataset_->label(src);
  }
  return out;
}

void DataLoader::reshuffle() {
  if (!shuffle_) return;
  order_ = common::shuffled_indices(dataset_->size(), rng_);
}

}  // namespace orco::data
