// Scalar sensor-field telemetry — the paper's §II formulation.
//
// The problem statement models a cluster of N IoT devices each producing a
// *scalar* reading x_i; the stacked vector X ∈ R^N is what the encoder
// compresses. This generator synthesises physically plausible cluster
// telemetry: a smooth spatially-correlated field (devices close to each
// other read similar values), a shared diurnal trend, per-device bias, and
// measurement noise. Rows are time steps, columns are devices — directly
// trainable by OrcoDcsSystem with input_dim = N and encodable hop-by-hop by
// core::DistributedEncoder.
#pragma once

#include "data/dataset.h"
#include "wsn/field.h"

namespace orco::data {

struct SensorFieldConfig {
  std::size_t steps = 512;        // time steps (dataset rows)
  std::uint64_t seed = 31;
  double correlation_length_m = 30.0;  // spatial kernel length scale
  float field_amplitude = 0.35f;  // amplitude of the correlated component
  float diurnal_amplitude = 0.2f; // shared slow sinusoidal trend
  float device_bias_std = 0.05f;  // fixed per-device calibration offset
  float noise_std = 0.02f;        // per-reading measurement noise
};

/// Generates a (steps x device_count) dataset of readings in [0, 1].
/// Spatial correlation follows exp(-d/correlation_length) over the device
/// positions in `field` (device i = the i-th non-aggregator node, matching
/// DistributedEncoder's device numbering). Labels are all 0 (unlabelled
/// telemetry); num_classes is 1.
Dataset make_sensor_field(const wsn::Field& field,
                          const SensorFieldConfig& config);

}  // namespace orco::data
