#include "data/sensor_field.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/check.h"

namespace orco::data {

Dataset make_sensor_field(const wsn::Field& field,
                          const SensorFieldConfig& config) {
  ORCO_CHECK(config.steps > 0, "sensor field needs at least one step");
  ORCO_CHECK(config.correlation_length_m > 0.0,
             "correlation length must be positive");
  const std::size_t n = field.device_count();
  common::Pcg32 rng(config.seed, /*stream=*/0x73656e73ULL);  // "sens"

  // Device positions, skipping the aggregator (device numbering matches
  // core::DistributedEncoder: non-root nodes in node-id order).
  std::vector<wsn::Position> device_pos;
  device_pos.reserve(n);
  for (wsn::NodeId node = 0; node < field.node_count(); ++node) {
    if (node == field.aggregator()) continue;
    device_pos.push_back(field.position(node));
  }

  // Spatially-correlated component via a sum of randomly-placed smooth
  // bumps: value_i = sum_k a_k exp(-|p_i - c_k| / L). Cheap, positive
  // semi-definite-ish, and visually field-like; avoids an O(n^3) Cholesky.
  constexpr std::size_t kBumps = 12;
  struct Bump {
    wsn::Position centre;
    float amplitude;
    float phase;  // temporal phase so bumps drift over time
    float speed;
  };
  std::vector<Bump> bumps(kBumps);
  for (auto& b : bumps) {
    b.centre = {rng.uniform(0.0f, static_cast<float>(field.config().side_m)),
                rng.uniform(0.0f, static_cast<float>(field.config().side_m))};
    b.amplitude = rng.uniform(-1.0f, 1.0f);
    b.phase = rng.uniform(0.0f, 2.0f * std::numbers::pi_v<float>);
    b.speed = rng.uniform(0.5f, 2.0f);
  }

  // Fixed per-device calibration bias.
  std::vector<float> bias(n);
  for (auto& b : bias) {
    b = static_cast<float>(rng.normal(0.0, config.device_bias_std));
  }

  tensor::Tensor readings({config.steps, n});
  for (std::size_t t = 0; t < config.steps; ++t) {
    const float time = static_cast<float>(t) / static_cast<float>(config.steps);
    const float diurnal =
        config.diurnal_amplitude *
        std::sin(2.0f * std::numbers::pi_v<float> * time);
    auto row = readings.row(t);
    for (std::size_t i = 0; i < n; ++i) {
      float fieldv = 0.0f;
      for (const auto& b : bumps) {
        const double d = distance(device_pos[i], b.centre);
        const float envelope = static_cast<float>(
            std::exp(-d / config.correlation_length_m));
        fieldv += b.amplitude * envelope *
                  std::sin(b.phase +
                           b.speed * 2.0f * std::numbers::pi_v<float> * time);
      }
      float v = 0.5f + config.field_amplitude * fieldv / kBumps * 6.0f +
                diurnal + bias[i] +
                static_cast<float>(rng.normal(0.0, config.noise_std));
      row[i] = std::clamp(v, 0.0f, 1.0f);
    }
  }

  return Dataset("sensor-field", ImageGeometry{1, 1, n}, 1,
                 std::move(readings),
                 std::vector<std::size_t>(config.steps, 0));
}

}  // namespace orco::data
