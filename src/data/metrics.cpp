#include "data/metrics.h"

#include <cmath>

#include "common/check.h"

namespace orco::data {

double psnr(const tensor::Tensor& reference, const tensor::Tensor& test) {
  ORCO_CHECK(reference.shape() == test.shape(), "psnr shape mismatch");
  ORCO_CHECK(reference.numel() > 0, "psnr of empty tensors");
  double mse = 0.0;
  const auto a = reference.data(), b = test.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    mse += d * d;
  }
  mse /= static_cast<double>(a.size());
  if (mse < 1e-10) return 100.0;
  return 10.0 * std::log10(1.0 / mse);
}

double mean_psnr(const tensor::Tensor& reference, const tensor::Tensor& test) {
  ORCO_CHECK(reference.rank() == 2 && reference.shape() == test.shape(),
             "mean_psnr wants matching rank-2 tensors");
  double acc = 0.0;
  const std::size_t n = reference.dim(0);
  for (std::size_t i = 0; i < n; ++i) {
    acc += psnr(reference.slice_rows(i, i + 1), test.slice_rows(i, i + 1));
  }
  return acc / static_cast<double>(n);
}

namespace {

double ssim_window(const float* a, const float* b, std::size_t h,
                   std::size_t w, std::size_t y0, std::size_t x0,
                   std::size_t win) {
  constexpr double c1 = 0.01 * 0.01;
  constexpr double c2 = 0.03 * 0.03;
  double ma = 0.0, mb = 0.0;
  const double n = static_cast<double>(win * win);
  for (std::size_t y = 0; y < win; ++y) {
    for (std::size_t x = 0; x < win; ++x) {
      ma += a[(y0 + y) * w + (x0 + x)];
      mb += b[(y0 + y) * w + (x0 + x)];
    }
  }
  ma /= n;
  mb /= n;
  double va = 0.0, vb = 0.0, cov = 0.0;
  for (std::size_t y = 0; y < win; ++y) {
    for (std::size_t x = 0; x < win; ++x) {
      const double da = a[(y0 + y) * w + (x0 + x)] - ma;
      const double db = b[(y0 + y) * w + (x0 + x)] - mb;
      va += da * da;
      vb += db * db;
      cov += da * db;
    }
  }
  va /= n - 1;
  vb /= n - 1;
  cov /= n - 1;
  (void)h;
  return ((2 * ma * mb + c1) * (2 * cov + c2)) /
         ((ma * ma + mb * mb + c1) * (va + vb + c2));
}

}  // namespace

double ssim(const tensor::Tensor& reference, const tensor::Tensor& test,
            const ImageGeometry& geometry) {
  ORCO_CHECK(reference.shape() == test.shape(), "ssim shape mismatch");
  ORCO_CHECK(reference.numel() == geometry.features(),
             "ssim geometry mismatch: " << reference.numel() << " vs "
                                        << geometry.features());
  const std::size_t h = geometry.height, w = geometry.width;
  constexpr std::size_t kWin = 8, kStride = 4;
  ORCO_CHECK(h >= kWin && w >= kWin, "image smaller than SSIM window");

  double total = 0.0;
  std::size_t windows = 0;
  for (std::size_t c = 0; c < geometry.channels; ++c) {
    const float* a = reference.data().data() + c * h * w;
    const float* b = test.data().data() + c * h * w;
    for (std::size_t y = 0; y + kWin <= h; y += kStride) {
      for (std::size_t x = 0; x + kWin <= w; x += kStride) {
        total += ssim_window(a, b, h, w, y, x, kWin);
        ++windows;
      }
    }
  }
  ORCO_ENSURE(windows > 0, "no SSIM windows evaluated");
  return total / static_cast<double>(windows);
}

double accuracy(const std::vector<std::size_t>& predicted,
                const std::vector<std::size_t>& labels) {
  ORCO_CHECK(predicted.size() == labels.size(), "accuracy length mismatch");
  ORCO_CHECK(!labels.empty(), "accuracy of empty vectors");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (predicted[i] == labels[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(labels.size());
}

}  // namespace orco::data
