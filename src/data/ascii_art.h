// ASCII rendering of images — how bench/fig2_reconstruction reproduces the
// paper's visual side-by-side comparison in a text environment.
#pragma once

#include <string>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace orco::data {

/// Renders a flattened CHW image as ASCII art (one char per pixel column,
/// two columns per pixel for aspect ratio). Multi-channel images are
/// converted to luminance first.
std::string ascii_art(const tensor::Tensor& image,
                      const ImageGeometry& geometry);

/// Renders several images side by side with per-image captions.
std::string ascii_art_row(const std::vector<tensor::Tensor>& images,
                          const std::vector<std::string>& captions,
                          const ImageGeometry& geometry);

}  // namespace orco::data
