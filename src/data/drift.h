// Environmental drift transforms (paper §III-D motivation).
//
// The fine-tuning experiments shift the sensing distribution mid-run:
// brightness change (lighting), additive bias (sensor mis-calibration),
// and extra noise (degrading channel). Applied in place to a dataset copy.
#pragma once

#include "common/rng.h"
#include "data/dataset.h"

namespace orco::data {

struct DriftConfig {
  float brightness_gain = 1.0f;  // multiplicative illumination change
  float sensor_bias = 0.0f;      // additive offset on every reading
  float extra_noise = 0.0f;      // stddev of additional Gaussian noise
};

/// Returns a drifted copy of `dataset`; values are re-clamped to [0,1].
Dataset apply_drift(const Dataset& dataset, const DriftConfig& config,
                    common::Pcg32& rng);

}  // namespace orco::data
