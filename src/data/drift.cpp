#include "data/drift.h"

#include <algorithm>

#include "common/check.h"

namespace orco::data {

Dataset apply_drift(const Dataset& dataset, const DriftConfig& config,
                    common::Pcg32& rng) {
  ORCO_CHECK(config.brightness_gain > 0.0f, "brightness gain must be positive");
  ORCO_CHECK(config.extra_noise >= 0.0f, "extra noise must be non-negative");
  tensor::Tensor images = dataset.images();
  for (auto& v : images.data()) {
    v = v * config.brightness_gain + config.sensor_bias;
    if (config.extra_noise > 0.0f) {
      v += static_cast<float>(rng.normal(0.0, config.extra_noise));
    }
    v = std::clamp(v, 0.0f, 1.0f);
  }
  return Dataset(dataset.name() + "+drift", dataset.geometry(),
                 dataset.num_classes(), std::move(images),
                 std::vector<std::size_t>(dataset.labels()));
}

}  // namespace orco::data
