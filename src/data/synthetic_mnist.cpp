#include "data/synthetic_mnist.h"

#include <array>

#include "common/check.h"
#include "data/image.h"

namespace orco::data {

namespace {

// Stroke font on a nominal 28x28 canvas. Key points (y, x):
//   top bar (6,9)-(6,19), mid bar (14,9)-(14,19), bottom bar (22,9)-(22,19),
//   verticals at x=9 and x=19, upper (6..14) and lower (14..22) halves.
struct Segment {
  float y0, x0, y1, x1;
};

using Strokes = std::vector<Segment>;

const Strokes& digit_strokes(std::size_t digit) {
  static const std::array<Strokes, 10> kFont = {{
      // 0: full outline
      {{6, 9, 6, 19}, {6, 19, 22, 19}, {22, 19, 22, 9}, {22, 9, 6, 9}},
      // 1: right vertical with a small flag
      {{8, 11, 6, 14}, {6, 14, 22, 14}},
      // 2: top bar, upper-right vertical, mid bar, lower-left vertical, bottom
      {{6, 9, 6, 19}, {6, 19, 14, 19}, {14, 19, 14, 9}, {14, 9, 22, 9},
       {22, 9, 22, 19}},
      // 3: top, mid, bottom bars joined by right vertical
      {{6, 9, 6, 19}, {6, 19, 22, 19}, {14, 10, 14, 19}, {22, 9, 22, 19}},
      // 4: upper-left vertical, mid bar, full right vertical
      {{6, 9, 14, 9}, {14, 9, 14, 19}, {6, 19, 22, 19}},
      // 5: mirror of 2
      {{6, 19, 6, 9}, {6, 9, 14, 9}, {14, 9, 14, 19}, {14, 19, 22, 19},
       {22, 19, 22, 9}},
      // 6: like 5 plus lower-left vertical
      {{6, 19, 6, 9}, {6, 9, 22, 9}, {22, 9, 22, 19}, {22, 19, 14, 19},
       {14, 19, 14, 9}},
      // 7: top bar and diagonal
      {{6, 9, 6, 19}, {6, 19, 22, 12}},
      // 8: everything
      {{6, 9, 6, 19}, {6, 19, 22, 19}, {22, 19, 22, 9}, {22, 9, 6, 9},
       {14, 9, 14, 19}},
      // 9: like 8 minus lower-left vertical
      {{14, 19, 14, 9}, {14, 9, 6, 9}, {6, 9, 6, 19}, {6, 19, 22, 19},
       {22, 19, 22, 9}},
  }};
  return kFont[digit];
}

}  // namespace

Dataset make_synthetic_mnist(const MnistConfig& config) {
  ORCO_CHECK(config.count > 0, "mnist count must be positive");
  ORCO_CHECK(config.min_scale > 0.0f && config.min_scale <= config.max_scale,
             "bad mnist scale range");
  common::Pcg32 rng(config.seed, /*stream=*/0x6d6e6973u);  // "mnis"

  const auto geom = kMnistGeometry;
  tensor::Tensor images({config.count, geom.features()});
  std::vector<std::size_t> labels(config.count);

  for (std::size_t i = 0; i < config.count; ++i) {
    const std::size_t digit = rng.bounded(kMnistClasses);
    labels[i] = digit;

    Canvas canvas(1, geom.height, geom.width, 0.0f);
    const float thickness = 1.2f + rng.uniform(0.0f, 1.4f);
    const float ink = 0.75f + rng.uniform(0.0f, 0.25f);
    for (const auto& s : digit_strokes(digit)) {
      canvas.draw_line(s.y0, s.x0, s.y1, s.x1, {ink}, thickness);
    }

    const float angle =
        rng.uniform(-config.max_rotation_rad, config.max_rotation_rad);
    const float scale = rng.uniform(config.min_scale, config.max_scale);
    const float dy = rng.uniform(-config.max_translation, config.max_translation);
    const float dx = rng.uniform(-config.max_translation, config.max_translation);
    Canvas warped = affine_warp(canvas, angle, scale, dy, dx);

    warped.blur(1);
    warped.add_noise(config.pixel_noise, rng);
    warped.clamp01();

    const auto t = warped.to_tensor();
    std::copy(t.data().begin(), t.data().end(), images.row(i).begin());
  }

  return Dataset("synthetic-mnist", geom, kMnistClasses, std::move(images),
                 std::move(labels));
}

}  // namespace orco::data
