// Image-quality and classification metrics for the evaluation harness.
#pragma once

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace orco::data {

/// Peak signal-to-noise ratio in dB between two images in [0,1].
/// Returns +inf-ish cap (100 dB) for identical images.
double psnr(const tensor::Tensor& reference, const tensor::Tensor& test);

/// Mean PSNR across the rows of two (N, F) tensors.
double mean_psnr(const tensor::Tensor& reference, const tensor::Tensor& test);

/// Structural similarity (SSIM) with 8x8 windows, stride 4, standard
/// constants (K1=0.01, K2=0.03, L=1). Multi-channel images average SSIM over
/// channels. Inputs are flattened CHW rows interpreted via `geometry`.
double ssim(const tensor::Tensor& reference, const tensor::Tensor& test,
            const ImageGeometry& geometry);

/// Fraction of rows where `predicted[i] == labels[i]`.
double accuracy(const std::vector<std::size_t>& predicted,
                const std::vector<std::size_t>& labels);

}  // namespace orco::data
