#include "baseline/dcsnet.h"

#include "common/check.h"
#include "data/dataloader.h"
#include "nn/activations.h"
#include "nn/conv2d.h"
#include "nn/conv_transpose2d.h"
#include "nn/dense.h"

namespace orco::baseline {

std::unique_ptr<nn::Sequential> build_dcsnet_encoder(
    const data::ImageGeometry& geometry, std::size_t latent_dim,
    common::Pcg32& rng) {
  auto model = std::make_unique<nn::Sequential>();
  model->emplace<nn::Dense>(geometry.features(), latent_dim, rng);
  model->emplace<nn::Sigmoid>();
  return model;
}

std::unique_ptr<nn::Sequential> build_dcsnet_decoder(
    const data::ImageGeometry& geometry, std::size_t latent_dim,
    common::Pcg32& rng) {
  ORCO_CHECK(geometry.height % 4 == 0 || geometry.height % 4 == 3,
             "DCSNet decoder supports 28x28 and 32x32-style geometries, got "
                 << geometry.height << "x" << geometry.width);
  // Coarse map at 1/4 resolution (7x7 for 28, 8x8 for 32), then
  // 4 conv layers: ConvT -> ConvT (upsampling) -> Conv -> Conv (refining).
  const std::size_t h0 = geometry.height / 4;
  const std::size_t w0 = geometry.width / 4;
  constexpr std::size_t kBaseChannels = 16;

  auto model = std::make_unique<nn::Sequential>();
  model->emplace<nn::Dense>(latent_dim, kBaseChannels * h0 * w0, rng);
  model->emplace<nn::ReLU>();
  // conv layer 1: 7x7 -> 14x14 (or 8x8 -> 16x16)
  model->emplace<nn::ConvTranspose2d>(kBaseChannels, kBaseChannels, 4, 2, 1,
                                      h0, w0, rng);
  model->emplace<nn::ReLU>();
  // conv layer 2: -> full resolution
  model->emplace<nn::ConvTranspose2d>(kBaseChannels, 8, 4, 2, 1, 2 * h0,
                                      2 * w0, rng);
  model->emplace<nn::ReLU>();
  // conv layer 3: refine
  model->emplace<nn::Conv2d>(8, 8, 3, 1, 1, geometry.height, geometry.width,
                             rng);
  model->emplace<nn::ReLU>();
  // conv layer 4: project to channels
  model->emplace<nn::Conv2d>(8, geometry.channels, 3, 1, 1, geometry.height,
                             geometry.width, rng);
  model->emplace<nn::Sigmoid>();
  ORCO_ENSURE(model->output_features(latent_dim) == geometry.features(),
              "DCSNet decoder does not reproduce the input geometry");
  return model;
}

DcsNetSystem::DcsNetSystem(const data::ImageGeometry& geometry,
                           const DcsNetConfig& config,
                           const wsn::ChannelConfig& channel,
                           core::ComputeModel compute)
    : config_(config), channel_(channel) {
  ORCO_CHECK(config.data_fraction > 0.0f && config.data_fraction <= 1.0f,
             "data fraction must be in (0, 1]");
  core_config_.input_dim = geometry.features();
  core_config_.latent_dim = config.latent_dim;
  core_config_.loss = core::ReconLoss::kMse;  // classic DCDA objective
  core_config_.noise_variance = 0.0f;         // DCSNet has no latent noise
  core_config_.learning_rate = config.learning_rate;
  core_config_.momentum = config.momentum;
  core_config_.batch_size = config.batch_size;
  core_config_.seed = config.seed;

  common::Pcg32 rng(config.seed, /*stream=*/0x64637334ULL);  // "dcs4"
  common::Pcg32 enc_rng = rng.split();
  common::Pcg32 dec_rng = rng.split();
  common::Pcg32 noise_rng = rng.split();

  aggregator_ = std::make_unique<core::DataAggregator>(
      build_dcsnet_encoder(geometry, config.latent_dim, enc_rng), core_config_,
      noise_rng);
  edge_ = std::make_unique<core::EdgeServer>(
      build_dcsnet_decoder(geometry, config.latent_dim, dec_rng),
      core_config_);
  orchestrator_ = std::make_unique<core::Orchestrator>(
      *aggregator_, *edge_, channel_, ledger_, clock_, compute);
}

core::TrainSummary DcsNetSystem::train_online(
    const data::Dataset& train, std::size_t epochs,
    const std::function<void(const core::RoundRecord&)>& on_round) {
  // Only a fraction of the training data is accessible to the offline
  // framework (paper: 50% by default; Fig. 5 sweeps 30/50/70%).
  const auto accessible_count = static_cast<std::size_t>(
      static_cast<float>(train.size()) * config_.data_fraction);
  ORCO_CHECK(accessible_count > 0, "data fraction leaves no samples");
  const data::Dataset accessible = train.subset(0, accessible_count);

  common::Pcg32 loader_rng(config_.seed ^
                           (0x10adULL + orchestrator_->rounds_completed()));
  data::DataLoader loader(accessible, config_.batch_size, /*shuffle=*/true,
                          loader_rng);
  core::TrainSummary summary;
  summary.rounds = orchestrator_->train(loader, epochs, on_round);
  summary.final_loss =
      summary.rounds.empty() ? 0.0f : summary.rounds.back().loss;
  summary.sim_seconds = clock_.now();
  return summary;
}

tensor::Tensor DcsNetSystem::reconstruct(const tensor::Tensor& images) {
  return orchestrator_->reconstruct(images);
}

float DcsNetSystem::evaluate_loss(const data::Dataset& dataset) {
  return orchestrator_->evaluate_loss(dataset, config_.batch_size);
}

double DcsNetSystem::aggregate_images(const tensor::Tensor& batch) {
  return orchestrator_->aggregate_batch(batch);
}

}  // namespace orco::baseline
