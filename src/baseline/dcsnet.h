// DCSNet baseline (Zhang et al., "Learning-based sparse data reconstruction
// for compressed data aggregation in IoT networks", IoT-J 2021) as used by
// the paper's evaluation:
//
//   * fixed latent dimension 1024 regardless of task;
//   * fixed decoder structure: 4 convolutional layers;
//   * offline framework — in the paper's comparison it is run through the
//     same online loop but with only a fraction (default 50%) of the
//     training data accessible, and it minimises the L2 norm, not Huber.
//
// DcsNetSystem mirrors OrcoDcsSystem's facade so benches can drive both
// uniformly; internally it reuses the same DataAggregator / EdgeServer /
// Orchestrator machinery with DCSNet's fixed models.
#pragma once

#include <functional>
#include <memory>

#include "core/orcodcs.h"
#include "data/dataset.h"

namespace orco::baseline {

struct DcsNetConfig {
  std::size_t latent_dim = 1024;  // fixed by DCSNet's design
  float data_fraction = 0.5f;     // share of training data available
  float learning_rate = 0.05f;
  float momentum = 0.9f;
  std::size_t batch_size = 64;
  std::uint64_t seed = 43;
};

/// Encoder: one dense layer to the fixed 1024-d latent (sigmoid).
std::unique_ptr<nn::Sequential> build_dcsnet_encoder(
    const data::ImageGeometry& geometry, std::size_t latent_dim,
    common::Pcg32& rng);

/// Decoder: dense projection to a coarse feature map, then 4 convolutional
/// layers (2 transposed upsampling + 2 refining), sigmoid output.
std::unique_ptr<nn::Sequential> build_dcsnet_decoder(
    const data::ImageGeometry& geometry, std::size_t latent_dim,
    common::Pcg32& rng);

class DcsNetSystem {
 public:
  DcsNetSystem(const data::ImageGeometry& geometry, const DcsNetConfig& config,
               const wsn::ChannelConfig& channel, core::ComputeModel compute);

  /// Trains on the first `data_fraction` of `train` (the accessible share).
  core::TrainSummary train_online(
      const data::Dataset& train, std::size_t epochs,
      const std::function<void(const core::RoundRecord&)>& on_round = nullptr);

  tensor::Tensor reconstruct(const tensor::Tensor& images);
  float evaluate_loss(const data::Dataset& dataset);

  /// Ships a batch of latents uplink (steady-state aggregation).
  double aggregate_images(const tensor::Tensor& batch);

  const wsn::TransmissionLedger& ledger() const noexcept { return ledger_; }
  double sim_time() const noexcept { return clock_.now(); }
  const DcsNetConfig& config() const noexcept { return config_; }
  core::Orchestrator& orchestrator() noexcept { return *orchestrator_; }

 private:
  DcsNetConfig config_;
  core::OrcoConfig core_config_;
  wsn::TransmissionLedger ledger_;
  wsn::Channel channel_;
  wsn::SimClock clock_;
  std::unique_ptr<core::DataAggregator> aggregator_;
  std::unique_ptr<core::EdgeServer> edge_;
  std::unique_ptr<core::Orchestrator> orchestrator_;
};

}  // namespace orco::baseline
