// Clang thread-safety (capability) analysis macros.
//
// These turn the repo's locking contracts — "guards the map only",
// "never on the emit path", "caller holds mu_" — from comments into
// compile errors. Under clang with -Wthread-safety (the CI
// clang-thread-safety job compiles the whole tree with
// -Werror=thread-safety-analysis), a field marked ORCO_GUARDED_BY(mu_)
// cannot be touched without mu_ held, and a helper marked
// ORCO_REQUIRES(mu_) cannot be called without it. GCC and MSVC see empty
// macros, so the annotations cost nothing outside the analysis build.
//
// Conventions used across the codebase:
//   * Raw std::mutex/std::shared_mutex are wrapped in the annotated
//     orco::common::Mutex/SharedMutex (common/mutex.h) so ACQUIRE/RELEASE
//     attach to real lockable types; lock with MutexLock /
//     ReaderMutexLock / WriterMutexLock, never std::lock_guard on a
//     naked mutex in annotated classes.
//   * Private helpers that expect the caller to hold a lock are marked
//     ORCO_REQUIRES(mu_) instead of carrying a "caller holds mu_"
//     comment.
//   * Intentionally lock-free paths (atomic swap slots, sharded metric
//     cells, single-writer trace rings) stay unannotated on purpose —
//     their safety argument is memory ordering, not mutual exclusion —
//     and keep an explanatory comment instead.
//   * Condition-variable waits are written as explicit while loops over
//     the guarded predicate (not wait(lock, pred) lambdas) so the
//     analysis sees every guarded access in the enclosing function.
#pragma once

#if defined(__clang__)
#define ORCO_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define ORCO_THREAD_ANNOTATION__(x)  // no-op on GCC/MSVC
#endif

/// Marks a type as a lockable capability ("mutex", "shared_mutex", ...).
#define ORCO_CAPABILITY(x) ORCO_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases.
#define ORCO_SCOPED_CAPABILITY ORCO_THREAD_ANNOTATION__(scoped_lockable)

/// Data member readable/writable only with the capability held (shared
/// hold permits reads, exclusive hold permits writes).
#define ORCO_GUARDED_BY(x) ORCO_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer member whose *pointee* is protected by the capability (the
/// pointer itself may be read freely).
#define ORCO_PT_GUARDED_BY(x) ORCO_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Function requires the capability held exclusively (caller locks).
#define ORCO_REQUIRES(...) \
  ORCO_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// Function requires the capability held at least shared.
#define ORCO_REQUIRES_SHARED(...) \
  ORCO_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Function acquires the capability (exclusively / shared) and holds it
/// on return.
#define ORCO_ACQUIRE(...) \
  ORCO_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ORCO_ACQUIRE_SHARED(...) \
  ORCO_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// Function releases the capability (generic release also ends a shared
/// hold — used by scoped-lock destructors).
#define ORCO_RELEASE(...) \
  ORCO_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define ORCO_RELEASE_SHARED(...) \
  ORCO_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// Function tries to acquire; first argument is the success return value.
#define ORCO_TRY_ACQUIRE(...) \
  ORCO_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// Function must be called with the capability NOT held (deadlock guard
/// for non-reentrant locks).
#define ORCO_EXCLUDES(...) \
  ORCO_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for call sites the
/// analysis cannot follow, e.g. callbacks invoked under a lock).
#define ORCO_ASSERT_CAPABILITY(x) \
  ORCO_THREAD_ANNOTATION__(assert_capability(x))

/// Function returns a reference to the capability guarding its result.
#define ORCO_RETURN_CAPABILITY(x) ORCO_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the contract cannot be expressed.
#define ORCO_NO_THREAD_SAFETY_ANALYSIS \
  ORCO_THREAD_ANNOTATION__(no_thread_safety_analysis)
