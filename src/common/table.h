// Console table printer used by the figure-reproduction benches so that every
// bench prints the paper's series in a uniform, grep-friendly format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace orco::common {

/// Accumulates rows of strings/numbers and renders an aligned ASCII table.
/// Also exposes a CSV form for post-processing.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` significant decimals.
  static std::string num(double v, int precision = 4);

  void print(std::ostream& os) const;
  std::string to_csv() const;

  std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "=== title ===" section banner. All benches use this so figure
/// output is self-describing in bench_output.txt.
void print_section(std::ostream& os, const std::string& title);

}  // namespace orco::common
