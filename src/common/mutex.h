// Annotated mutex wrappers for the clang thread-safety analysis.
//
// std::mutex cannot carry capability attributes, so annotated classes
// wrap their locks in these types instead: Mutex / SharedMutex are the
// capabilities ORCO_GUARDED_BY points at, and MutexLock /
// ReaderMutexLock / WriterMutexLock are the scoped acquisitions the
// analysis follows. The wrappers are zero-cost shims over the standard
// types; condition variables keep working through MutexLock::native()
// (a std::unique_lock over the underlying std::mutex):
//
//   MutexLock lock(mu_);
//   while (!closed_ && queue_.empty()) cv_.wait(lock.native());
//
// Write cv waits as explicit loops like the above — a wait(lock, pred)
// lambda hides the guarded predicate reads from the analysis.
#pragma once

#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace orco::common {

/// Exclusive mutex; the capability type ORCO_GUARDED_BY refers to.
class ORCO_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ORCO_ACQUIRE() { mu_.lock(); }
  void unlock() ORCO_RELEASE() { mu_.unlock(); }
  bool try_lock() ORCO_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for condition variables (via MutexLock::native()).
  std::mutex& native() noexcept { return mu_; }

 private:
  std::mutex mu_;
};

/// Reader-writer mutex: exclusive for writers, shared for readers.
class ORCO_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ORCO_ACQUIRE() { mu_.lock(); }
  void unlock() ORCO_RELEASE() { mu_.unlock(); }
  void lock_shared() ORCO_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void unlock_shared() ORCO_RELEASE_SHARED() { mu_.unlock_shared(); }

  std::shared_mutex& native() noexcept { return mu_; }

 private:
  std::shared_mutex mu_;
};

/// Scoped exclusive lock over a Mutex (the annotated std::lock_guard /
/// std::unique_lock replacement). native() exposes the underlying
/// std::unique_lock so std::condition_variable::wait keeps working; the
/// analysis treats the capability as held across the wait, which is
/// correct at every observable point (wait returns with the lock held).
class ORCO_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ORCO_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() ORCO_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  std::unique_lock<std::mutex>& native() noexcept { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// Scoped exclusive (writer) lock over a SharedMutex.
class ORCO_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ORCO_ACQUIRE(mu)
      : lock_(mu.native()) {}
  ~WriterMutexLock() ORCO_RELEASE() {}

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  std::unique_lock<std::shared_mutex> lock_;
};

/// Scoped shared (reader) lock over a SharedMutex. Permits reads of
/// ORCO_GUARDED_BY fields; writes still demand a WriterMutexLock.
class ORCO_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ORCO_ACQUIRE_SHARED(mu)
      : lock_(mu.native()) {}
  ~ReaderMutexLock() ORCO_RELEASE() {}

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  std::shared_lock<std::shared_mutex> lock_;
};

}  // namespace orco::common
