// Minimal binary (de)serialisation for model weights and protocol messages.
//
// Every message the orchestrator exchanges between the data aggregator and
// the edge server is serialised through these writers, so the byte counts
// recorded in the WSN transmission ledger are the true wire sizes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"

namespace orco::common {

/// Append-only little-endian byte buffer writer.
class ByteWriter {
 public:
  void write_u32(std::uint32_t v) { write_raw(&v, sizeof v); }
  void write_u64(std::uint64_t v) { write_raw(&v, sizeof v); }
  void write_f32(float v) { write_raw(&v, sizeof v); }
  void write_f64(double v) { write_raw(&v, sizeof v); }

  void write_f32_span(std::span<const float> vs) {
    write_u64(vs.size());
    write_raw(vs.data(), vs.size() * sizeof(float));
  }

  void write_string(const std::string& s) {
    write_u64(s.size());
    write_raw(s.data(), s.size());
  }

  /// Length-prefixed opaque blob (e.g. a nested serialised model).
  void write_bytes(std::span<const std::byte> bytes) {
    write_u64(bytes.size());
    write_raw(bytes.data(), bytes.size());
  }

  const std::vector<std::byte>& bytes() const noexcept { return buf_; }
  std::size_t size() const noexcept { return buf_.size(); }

 private:
  void write_raw(const void* p, std::size_t n) {
    // resize+memcpy instead of insert(range): GCC 12's -Wstringop-overflow
    // misjudges the inlined range-insert when the source is a small fixed
    // POD (false "writing 8 bytes into a region of size 4"), and memcpy is
    // the same single grow-and-copy anyway.
    const std::size_t off = buf_.size();
    buf_.resize(off + n);
    std::memcpy(buf_.data() + off, p, n);
  }

  std::vector<std::byte> buf_;
};

/// Sequential reader over a byte buffer; throws on underrun.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  std::uint32_t read_u32() { return read_pod<std::uint32_t>(); }
  std::uint64_t read_u64() { return read_pod<std::uint64_t>(); }
  float read_f32() { return read_pod<float>(); }
  double read_f64() { return read_pod<double>(); }

  std::vector<float> read_f32_vector() {
    const std::uint64_t n = read_u64();
    std::vector<float> out(n);
    read_raw(out.data(), n * sizeof(float));
    return out;
  }

  std::string read_string() {
    const std::uint64_t n = read_u64();
    std::string out(n, '\0');
    read_raw(out.data(), n);
    return out;
  }

  std::vector<std::byte> read_bytes() {
    const std::uint64_t n = read_u64();
    std::vector<std::byte> out(n);
    read_raw(out.data(), n);
    return out;
  }

  std::size_t remaining() const noexcept { return bytes_.size() - pos_; }
  bool exhausted() const noexcept { return remaining() == 0; }

 private:
  template <typename T>
  T read_pod() {
    T v;
    read_raw(&v, sizeof v);
    return v;
  }

  void read_raw(void* p, std::size_t n) {
    ORCO_CHECK(pos_ + n <= bytes_.size(),
               "byte buffer underrun: want " << n << " at " << pos_ << "/"
                                             << bytes_.size());
    std::memcpy(p, bytes_.data() + pos_, n);
    pos_ += n;
  }

  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

/// Writes/reads a whole buffer to/from a file. Throws std::runtime_error on
/// I/O failure.
void write_file(const std::string& path, std::span<const std::byte> bytes);
std::vector<std::byte> read_file(const std::string& path);

/// Crash-safe variant: writes to `path + ".tmp"` in the same directory and
/// renames it over `path` only after the write completed, so readers see
/// either the old file or the complete new one — never a torn prefix. The
/// temp file is removed on failure. Concurrent writers of the same path
/// must be externally serialized (the rename is atomic but the shared temp
/// name is not).
void write_file_atomic(const std::string& path,
                       std::span<const std::byte> bytes);

}  // namespace orco::common
