// Contract-checking helpers (C++ Core Guidelines I.5/I.7, E.2).
//
// ORCO_CHECK(cond, msg)      -> std::invalid_argument on precondition failure
// ORCO_ENSURE(cond, msg)     -> std::logic_error on internal invariant failure
//
// Both accept a streamable message expression:
//   ORCO_CHECK(i < n, "index " << i << " out of range [0," << n << ")");
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace orco::common {

/// Builds the "file:line: message" string used by the check macros.
inline std::string format_check_message(const char* file, int line,
                                        const char* expr,
                                        const std::string& detail) {
  std::ostringstream os;
  os << file << ':' << line << ": check `" << expr << "` failed";
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

}  // namespace orco::common

#define ORCO_CHECK(cond, msg)                                              \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream orco_check_os_;                                   \
      orco_check_os_ << msg; /* NOLINT */                                  \
      throw std::invalid_argument(::orco::common::format_check_message(    \
          __FILE__, __LINE__, #cond, orco_check_os_.str()));               \
    }                                                                      \
  } while (false)

#define ORCO_ENSURE(cond, msg)                                             \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream orco_check_os_;                                   \
      orco_check_os_ << msg; /* NOLINT */                                  \
      throw std::logic_error(::orco::common::format_check_message(         \
          __FILE__, __LINE__, #cond, orco_check_os_.str()));               \
    }                                                                      \
  } while (false)
