#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace orco::common {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!stop_ && tasks_.empty()) cv_.wait(lock.native());
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, workers_.size());
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  const std::size_t chunk_size = (n + chunks - 1) / chunks;

  std::atomic<std::size_t> remaining{0};
  Mutex done_mu;
  std::condition_variable done_cv;

  std::size_t launched = 0;
  {
    MutexLock lock(mu_);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * chunk_size;
      if (lo >= end) break;
      const std::size_t hi = std::min(end, lo + chunk_size);
      ++launched;
      tasks_.emplace([&, lo, hi] {
        fn(lo, hi);
        if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          MutexLock done_lock(done_mu);
          done_cv.notify_one();
        }
      });
    }
    remaining.store(launched, std::memory_order_release);
  }
  cv_.notify_all();

  MutexLock done_lock(done_mu);
  while (remaining.load(std::memory_order_acquire) != 0) {
    done_cv.wait(done_lock.native());
  }
}

ThreadPool& ThreadPool::global() {
  // Deliberately leaked (see header): keeps the pool alive through static
  // destruction so late users never touch a joined pool.
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

}  // namespace orco::common
