#include "common/serialize.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace orco::common {

void write_file(const std::string& path, std::span<const std::byte> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("short write: " + path);
}

void write_file_atomic(const std::string& path,
                       std::span<const std::byte> bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open for write: " + tmp);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    out.flush();
    if (!out) {
      out.close();
      std::remove(tmp.c_str());
      throw std::runtime_error("short write: " + tmp);
    }
  }
  // POSIX rename atomically replaces `path`; a crash before this line
  // leaves only the temp file behind and the previous `path` intact.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " over " + path);
  }
}

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("short read: " + path);
  return bytes;
}

}  // namespace orco::common
