#include "common/serialize.h"

#include <fstream>
#include <stdexcept>

namespace orco::common {

void write_file(const std::string& path, std::span<const std::byte> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out) throw std::runtime_error("short write: " + path);
}

std::vector<std::byte> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("cannot open for read: " + path);
  const std::streamsize size = in.tellg();
  in.seekg(0);
  std::vector<std::byte> bytes(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(bytes.data()), size);
  if (!in) throw std::runtime_error("short read: " + path);
  return bytes;
}

}  // namespace orco::common
