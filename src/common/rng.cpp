#include "common/rng.h"

#include <cmath>
#include <numbers>
#include <numeric>

namespace orco::common {

std::uint32_t Pcg32::bounded(std::uint32_t n) {
  if (n == 0) return 0;
  // Lemire-style rejection to avoid modulo bias.
  const std::uint32_t threshold = (-n) % n;
  for (;;) {
    const std::uint32_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Pcg32::normal() {
  if (has_cached_) {
    has_cached_ = false;
    return cached_;
  }
  // Box-Muller; u1 in (0,1] so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_ = r * std::sin(theta);
  has_cached_ = true;
  return r * std::cos(theta);
}

Pcg32 Pcg32::split() {
  const std::uint64_t seed =
      (static_cast<std::uint64_t>(next()) << 32) | next();
  const std::uint64_t stream =
      (static_cast<std::uint64_t>(next()) << 32) | next();
  return Pcg32(seed, stream);
}

std::vector<std::size_t> shuffled_indices(std::size_t n, Pcg32& rng) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = rng.bounded(static_cast<std::uint32_t>(i));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

}  // namespace orco::common
