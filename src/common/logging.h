// Minimal leveled logger. Defaults to warnings-and-above so tests stay quiet;
// benches and examples raise the level to info for progress output.
#pragma once

#include <sstream>
#include <string>

namespace orco::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one formatted line to stderr if `level` passes the threshold.
void log_line(LogLevel level, const std::string& message);

}  // namespace orco::common

#define ORCO_LOG(level, msg)                                     \
  do {                                                           \
    if (static_cast<int>(level) >=                               \
        static_cast<int>(::orco::common::log_level())) {         \
      std::ostringstream orco_log_os_;                           \
      orco_log_os_ << msg; /* NOLINT */                          \
      ::orco::common::log_line(level, orco_log_os_.str());       \
    }                                                            \
  } while (false)

#define ORCO_LOG_DEBUG(msg) ORCO_LOG(::orco::common::LogLevel::kDebug, msg)
#define ORCO_LOG_INFO(msg) ORCO_LOG(::orco::common::LogLevel::kInfo, msg)
#define ORCO_LOG_WARN(msg) ORCO_LOG(::orco::common::LogLevel::kWarn, msg)
#define ORCO_LOG_ERROR(msg) ORCO_LOG(::orco::common::LogLevel::kError, msg)
