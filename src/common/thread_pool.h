// A small fixed-size thread pool with parallel_for and future-returning
// task submission.
//
// Used by the tensor GEMM/conv kernels at bench scale and as the worker
// substrate of the serving runtime (src/serve). The pool is optional for
// loops: parallel_for falls back to a serial loop when the pool is null or
// the range is small, which keeps unit tests deterministic and cheap.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace orco::common {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(begin..end) split into roughly `size()` contiguous chunks and
  /// blocks until all chunks finish. fn receives [chunk_begin, chunk_end).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Enqueues a task and returns a future for its result. Exceptions thrown
  /// by the task are captured and rethrown from future::get(). Long-running
  /// tasks (e.g. serve-shard worker loops) occupy a worker until they
  /// return, so size the pool accordingly.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    {
      MutexLock lock(mu_);
      if (stop_) {
        throw std::runtime_error("ThreadPool::submit on a stopped pool");
      }
      tasks_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  /// Process-wide pool, lazily constructed on first use and intentionally
  /// never destroyed: joining workers from a static destructor races with
  /// other static teardown (a later destructor calling global() would touch
  /// a dead pool). Leaking keeps global() valid for the whole process; the
  /// OS reclaims the threads at exit.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::queue<std::function<void()>> tasks_ ORCO_GUARDED_BY(mu_);
  std::condition_variable cv_;
  bool stop_ ORCO_GUARDED_BY(mu_) = false;
};

/// Dispatch helper for optional pools: a null pool or a sub-grain range
/// runs `fn` inline. A template rather than a std::function signature on
/// purpose — type-erasing the lambda would heap-allocate its capture on
/// every call, and this sits on the steady-state decode path whose
/// zero-allocation contract (tensor/workspace.h) forbids exactly that.
/// The pooled branch still erases (ThreadPool::parallel_for submits
/// chunks), which is fine: crossing threads allocates regardless.
template <typename F>
void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                  std::size_t grain, F&& fn) {
  if (pool == nullptr || end - begin < grain) {
    if (begin < end) fn(begin, end);
    return;
  }
  pool->parallel_for(begin, end, fn);
}

}  // namespace orco::common
