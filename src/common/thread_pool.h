// A small fixed-size thread pool with a parallel_for helper.
//
// Used by the tensor GEMM/conv kernels at bench scale. The pool is optional:
// parallel_for falls back to a serial loop when the pool is null or the
// range is small, which keeps unit tests deterministic and cheap.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace orco::common {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const noexcept { return workers_.size(); }

  /// Runs fn(begin..end) split into roughly `size()` contiguous chunks and
  /// blocks until all chunks finish. fn receives [chunk_begin, chunk_end).
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// Process-wide pool, lazily constructed. Tensor kernels use this.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

/// Serial-or-parallel loop helper. If `pool` is null or the trip count is
/// below `grain`, runs serially on the calling thread.
void parallel_for(ThreadPool* pool, std::size_t begin, std::size_t end,
                  std::size_t grain,
                  const std::function<void(std::size_t, std::size_t)>& fn);

}  // namespace orco::common
