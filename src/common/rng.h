// Deterministic, splittable random number generation.
//
// All stochastic behaviour in the repository (dataset synthesis, weight
// init, latent noise, channel jitter) flows from these generators so that
// every experiment is bit-reproducible given a seed.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace orco::common {

/// SplitMix64 — used to derive independent child seeds from a master seed.
/// Reference: Steele, Lea, Flood, "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// PCG32 — small, fast, statistically strong generator.
/// Satisfies std::uniform_random_bit_generator.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL) {
    state_ = 0;
    inc_ = (stream << 1u) | 1u;
    (void)next();
    state_ += seed;
    (void)next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  result_type next() {
    const std::uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    const auto xorshifted =
        static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
    const auto rot = static_cast<std::uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Uniform double in [0, 1).
  double uniform() { return next() * (1.0 / 4294967296.0); }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Uniform integer in [0, n). Unbiased via rejection.
  std::uint32_t bounded(std::uint32_t n);

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with mean/stddev.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Derive a child generator with an independent stream.
  Pcg32 split();

 private:
  std::uint64_t state_ = 0;
  std::uint64_t inc_ = 0;
  bool has_cached_ = false;
  double cached_ = 0.0;
};

/// Fisher-Yates shuffle of an index vector, driven by the given generator.
std::vector<std::size_t> shuffled_indices(std::size_t n, Pcg32& rng);

}  // namespace orco::common
