#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/check.h"

namespace orco::common {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  ORCO_CHECK(!headers_.empty(), "table needs at least one column");
}

Table& Table::add_row(std::vector<std::string> cells) {
  ORCO_CHECK(cells.size() == headers_.size(),
             "row has " << cells.size() << " cells, expected "
                        << headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c]
         << " | ";
    }
    os << '\n';
  };
  print_row(headers_);
  os << "|";
  for (const auto w : widths) os << std::string(w + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void print_section(std::ostream& os, const std::string& title) {
  os << "\n=== " << title << " ===\n";
}

}  // namespace orco::common
