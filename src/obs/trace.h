// Request-lifecycle tracing — a low-overhead span recorder exporting
// Chrome trace-event JSON (open chrome://tracing or https://ui.perfetto.dev
// and load the file).
//
// Design constraints, in order:
//   1. Zero heap allocation on the record path. Each recording thread owns
//      a fixed-size ring of POD TraceEvents; emitting a span is a clock
//      read, a struct store and one release store of the ring head. The
//      ring itself is heap-allocated ONCE per thread on its first emit (the
//      warmup pass in any steady-state workload) and handed back to the
//      collector on thread exit so post-join dumps still see the events.
//   2. Sampled. ObsConfig::trace_sample_rate (0 = off) turns into a
//      "1 in N" per-thread counter: should_sample() is a thread-local
//      decrement — no RNG, no atomics. The serving runtime samples per
//      REQUEST at submit time and carries the decision in the request, so
//      a traced request produces its whole span tree (queue_wait, assembly,
//      decode, respond nested under the request span) and an untraced one
//      produces nothing.
//   3. Names are static strings. TraceEvent stores const char* — callers
//      pass literals. Dynamic context travels in the numeric id/tenant/n
//      fields, which the exporter renders into Chrome trace "args".
//
// Timestamps are monotonic (steady_clock) microseconds since the
// collector's construction; all threads share the epoch so spans from
// client threads, shard workers and trainer workers line up on one
// timeline.
//
// Concurrency: rings are single-writer (the owning thread); the dump walks
// them with acquire loads. Dumping while traffic is in flight can observe a
// partially overwritten wrapped slot — dump after shutdown (the runtime's
// on-shutdown export does) or treat a torn tail event as cosmetic.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace orco::obs {

/// Events each thread ring holds before wrapping (oldest overwritten).
constexpr std::size_t kTraceRingCapacity = 4096;

/// One complete ("ph":"X") span. POD: stored in the ring by value.
struct TraceEvent {
  const char* name = nullptr;  // static string
  const char* cat = nullptr;   // static string ("serve", "train", "nn", ...)
  std::int64_t ts_us = 0;      // span start, collector-epoch microseconds
  std::int64_t dur_us = 0;
  std::uint64_t id = 0;      // correlation id (request id); 0 = none
  std::uint64_t tenant = 0;  // cluster id, when meaningful
  std::uint64_t n = 0;       // generic magnitude (batch size, round index)
};

class TraceCollector {
 public:
  /// Process-global collector; the epoch is fixed at first use.
  static TraceCollector& instance();

  /// Installed by obs::configure(): 0 disables tracing, N samples 1-in-N.
  void set_sample_every(std::uint32_t every) noexcept {
    sample_every_.store(every, std::memory_order_relaxed);
  }
  std::uint32_t sample_every() const noexcept {
    return sample_every_.load(std::memory_order_relaxed);
  }
  bool enabled() const noexcept { return sample_every() != 0; }

  /// Per-thread 1-in-N sampling decision; false whenever tracing is off.
  bool should_sample() noexcept;

  /// Microseconds since the collector epoch (monotonic).
  std::int64_t now_us() const noexcept;
  /// Converts an already-taken steady_clock stamp onto the trace timeline.
  std::int64_t to_trace_us(
      std::chrono::steady_clock::time_point tp) const noexcept;

  /// Records one complete span into the calling thread's ring. Callers
  /// gate on enabled()/their sampling decision — emit itself never checks.
  void emit(const TraceEvent& event) noexcept;

  /// Total events currently held across live and retired rings (wrapped
  /// rings report their capacity).
  std::size_t event_count() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}).
  void write_chrome_json(std::ostream& os) const;

  /// Drops all recorded events (live rings rewind, retired rings free).
  /// Test isolation helper — don't call concurrently with traffic.
  void clear();

 private:
  struct Ring {
    std::vector<TraceEvent> events;  // sized kTraceRingCapacity once
    std::atomic<std::uint64_t> head{0};  // total events ever written
    std::uint32_t tid = 0;

    Ring() : events(kTraceRingCapacity) {}
  };
  /// Thread-exit hook: moves the ring into retired_ so its events survive.
  struct RingHolder;

  TraceCollector();
  Ring& local_ring();

  const std::chrono::steady_clock::time_point epoch_;
  std::atomic<std::uint32_t> sample_every_{0};

  /// Ring *registry* only, never on the emit path: emit writes the
  /// calling thread's own ring (single-writer; dumps read the head with
  /// acquire loads), so only ring birth/retirement and dumps lock.
  mutable common::Mutex mu_;
  std::vector<Ring*> live_ ORCO_GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Ring>> retired_ ORCO_GUARDED_BY(mu_);
  std::uint32_t next_tid_ ORCO_GUARDED_BY(mu_) = 1;
};

/// RAII complete-span helper: stamps the start at construction and emits at
/// destruction when `active`. The inactive path is one branch — hot loops
/// pass their precomputed per-request/per-batch sampling decision.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, const char* cat, bool active,
             std::uint64_t id = 0, std::uint64_t tenant = 0,
             std::uint64_t n = 0) noexcept
      : name_(name), cat_(cat), active_(active), id_(id), tenant_(tenant),
        n_(n) {
    if (active_) start_us_ = TraceCollector::instance().now_us();
  }

  ~ScopedSpan() {
    if (!active_) return;
    TraceCollector& tc = TraceCollector::instance();
    tc.emit({name_, cat_, start_us_, tc.now_us() - start_us_, id_, tenant_,
             n_});
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attach a magnitude discovered mid-span (e.g. decoded batch size).
  void set_n(std::uint64_t n) noexcept { n_ = n; }

 private:
  const char* name_;
  const char* cat_;
  bool active_;
  std::uint64_t id_, tenant_, n_;
  std::int64_t start_us_ = 0;
};

}  // namespace orco::obs
