#include "obs/export.h"

#include <fstream>
#include <iostream>

#include "obs/trace.h"

namespace orco::obs {

namespace {

std::ofstream open_or_warn(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "[obs] cannot open " << path << " for export\n";
  }
  return out;
}

}  // namespace

bool write_metrics_json(const MetricsRegistry& registry,
                        const std::string& path) {
  std::ofstream out = open_or_warn(path);
  if (!out) return false;
  registry.write_json(out);
  return static_cast<bool>(out);
}

bool write_prometheus(const MetricsRegistry& registry,
                      const std::string& path) {
  std::ofstream out = open_or_warn(path);
  if (!out) return false;
  registry.write_prometheus(out);
  return static_cast<bool>(out);
}

bool write_trace_json(const std::string& path) {
  std::ofstream out = open_or_warn(path);
  if (!out) return false;
  TraceCollector::instance().write_chrome_json(out);
  return static_cast<bool>(out);
}

bool export_all(const MetricsRegistry& registry, const ExportConfig& cfg) {
  bool ok = true;
  if (!cfg.metrics_json_path.empty()) {
    ok = write_metrics_json(registry, cfg.metrics_json_path) && ok;
  }
  if (!cfg.prometheus_path.empty()) {
    ok = write_prometheus(registry, cfg.prometheus_path) && ok;
  }
  if (!cfg.trace_path.empty()) {
    ok = write_trace_json(cfg.trace_path) && ok;
  }
  return ok;
}

}  // namespace orco::obs
