#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/check.h"

namespace orco::obs {

std::size_t hist_bucket_for(double us) {
  if (us <= 1.0) return 0;
  const double b = std::log2(us) * static_cast<double>(kHistBucketsPerOctave);
  return std::min(kHistBucketCount - 1, static_cast<std::size_t>(b));
}

double hist_quantile(const std::uint64_t* buckets, std::size_t bucket_count,
                     std::uint64_t count, double max_us, double q) {
  ORCO_CHECK(q >= 0.0 && q <= 1.0, "quantile wants q in [0,1], got " << q);
  if (count == 0) return 0.0;
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < bucket_count; ++b) {
    if (buckets[b] == 0) continue;
    const double before = static_cast<double>(seen);
    seen += buckets[b];
    if (static_cast<double>(seen) < target) continue;
    // Interpolate within [lo, hi) = the bucket's microsecond span.
    const double lo =
        b == 0 ? 0.0
               : std::exp2(static_cast<double>(b) / kHistBucketsPerOctave);
    const double hi =
        std::exp2(static_cast<double>(b + 1) / kHistBucketsPerOctave);
    const double frac = std::clamp(
        (target - before) / static_cast<double>(buckets[b]), 0.0, 1.0);
    return std::min(lo + frac * (hi - lo), max_us);
  }
  return max_us;
}

namespace {

/// Round-robin cell slot per recording thread: threads spread over the
/// cells without hashing, and a thread always lands on the same cell so its
/// increments never bounce between lines.
std::size_t this_thread_cell() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

// ORCO_HOT_PATH BEGIN
// Record-path helpers: every metric record is relaxed atomics on padded
// cells — no allocation, no type-erased callables, no lock acquisition
// (tools/check_invariants.py enforces this textually).
void atomic_add_double(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (cur < v && !target.compare_exchange_weak(
                        cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Counter::inc(std::uint64_t n) noexcept {
  cells_[this_thread_cell()].v.fetch_add(n, std::memory_order_relaxed);
}
// ORCO_HOT_PATH END

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Cell& cell : cells_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

// ORCO_HOT_PATH BEGIN
void Gauge::add(double delta) noexcept { atomic_add_double(v_, delta); }

void Gauge::max_of(double v) noexcept { atomic_max_double(v_, v); }
// ORCO_HOT_PATH END

Histogram::Histogram(std::size_t cell_count) {
  ORCO_CHECK(cell_count > 0, "Histogram needs at least one cell");
  cells_.reserve(cell_count);
  for (std::size_t i = 0; i < cell_count; ++i) {
    cells_.push_back(std::make_unique<Cell>());
  }
}

// ORCO_HOT_PATH BEGIN
void Histogram::record(double us) noexcept {
  us = std::max(0.0, us);
  Cell& cell = *cells_[this_thread_cell() % cells_.size()];
  cell.buckets[hist_bucket_for(us)].fetch_add(1, std::memory_order_relaxed);
  cell.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add_double(cell.sum_us, us);
  atomic_max_double(cell.max_us, us);
}
// ORCO_HOT_PATH END

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  for (const auto& cell : cells_) {
    for (std::size_t b = 0; b < kHistBucketCount; ++b) {
      s.buckets[b] += cell->buckets[b].load(std::memory_order_relaxed);
    }
    s.count += cell->count.load(std::memory_order_relaxed);
    s.sum_us += cell->sum_us.load(std::memory_order_relaxed);
    s.max_us = std::max(s.max_us, cell->max_us.load(std::memory_order_relaxed));
  }
  return s;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell->count.load(std::memory_order_relaxed);
  }
  return total;
}

MetricsRegistry::Entry* MetricsRegistry::find_or_create(Kind kind,
                                                        const std::string& name,
                                                        const Labels& labels,
                                                        std::size_t cells) {
  common::MutexLock lock(mu_);
  for (auto& entry : entries_) {
    if (entry->name == name && entry->labels == labels) {
      ORCO_CHECK(entry->kind == kind,
                 "metric '" << name << "' already registered with a "
                            << "different type");
      return entry.get();
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->kind = kind;
  entry->name = name;
  entry->labels = labels;
  switch (kind) {
    case Kind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>(cells);
      break;
  }
  entries_.push_back(std::move(entry));
  return entries_.back().get();
}

Counter* MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  return find_or_create(Kind::kCounter, name, labels, 0)->counter.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  return find_or_create(Kind::kGauge, name, labels, 0)->gauge.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      const Labels& labels,
                                      std::size_t cells) {
  return find_or_create(Kind::kHistogram, name, labels, cells)
      ->histogram.get();
}

namespace {

/// Prometheus metric-name charset: [a-zA-Z0-9_:], dots become underscores.
std::string prom_name(const std::string& name) {
  std::string out = "orco_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string prom_labels(const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_value = {}) {
  if (labels.empty() && extra_key == nullptr) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    out += k + "=\"" + v + "\"";
    first = false;
  }
  if (extra_key != nullptr) {
    if (!first) out += ",";
    out += std::string(extra_key) + "=\"" + extra_value + "\"";
  }
  out += "}";
  return out;
}

/// JSON object key: name with labels folded in, e.g. serve.shed{tenant=3}.
std::string json_key(const std::string& name, const Labels& labels) {
  std::string out = name;
  if (!labels.empty()) {
    out += "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) out += ",";
      out += k + "=" + v;
      first = false;
    }
    out += "}";
  }
  return out;
}

/// Doubles rendered so the output is valid JSON (no inf/nan) and readable.
std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void MetricsRegistry::write_prometheus(std::ostream& os) const {
  common::MutexLock lock(mu_);
  // One # TYPE line per family (first occurrence wins; labeled series of
  // one family share the name and must not repeat the header).
  std::vector<std::string> typed;
  const auto emit_type = [&](const std::string& name, const char* type) {
    const std::string pname = prom_name(name);
    if (std::find(typed.begin(), typed.end(), pname) != typed.end()) return;
    typed.push_back(pname);
    os << "# TYPE " << pname << " " << type << "\n";
  };
  for (const auto& entry : entries_) {
    const std::string pname = prom_name(entry->name);
    switch (entry->kind) {
      case Kind::kCounter:
        emit_type(entry->name, "counter");
        os << pname << prom_labels(entry->labels) << " "
           << entry->counter->value() << "\n";
        break;
      case Kind::kGauge:
        emit_type(entry->name, "gauge");
        os << pname << prom_labels(entry->labels) << " "
           << json_num(entry->gauge->value()) << "\n";
        break;
      case Kind::kHistogram: {
        emit_type(entry->name, "summary");
        const HistogramSnapshot s = entry->histogram->snapshot();
        for (const double q : {0.5, 0.95, 0.99}) {
          os << pname << prom_labels(entry->labels, "quantile", json_num(q))
             << " " << json_num(s.quantile(q)) << "\n";
        }
        os << pname << "_sum" << prom_labels(entry->labels) << " "
           << json_num(s.sum_us) << "\n";
        os << pname << "_count" << prom_labels(entry->labels) << " "
           << s.count << "\n";
        break;
      }
    }
  }
}

void MetricsRegistry::write_json(std::ostream& os) const {
  common::MutexLock lock(mu_);
  const auto emit_section = [&](Kind kind, const char* title, bool last) {
    os << "  \"" << title << "\": {";
    bool first = true;
    for (const auto& entry : entries_) {
      if (entry->kind != kind) continue;
      if (!first) os << ",";
      os << "\n    \"" << json_key(entry->name, entry->labels) << "\": ";
      switch (kind) {
        case Kind::kCounter:
          os << entry->counter->value();
          break;
        case Kind::kGauge:
          os << json_num(entry->gauge->value());
          break;
        case Kind::kHistogram: {
          const HistogramSnapshot s = entry->histogram->snapshot();
          os << "{\"count\": " << s.count << ", \"sum_us\": "
             << json_num(s.sum_us) << ", \"max_us\": " << json_num(s.max_us)
             << ", \"mean_us\": " << json_num(s.mean_us())
             << ", \"p50_us\": " << json_num(s.quantile(0.5))
             << ", \"p95_us\": " << json_num(s.quantile(0.95))
             << ", \"p99_us\": " << json_num(s.quantile(0.99)) << "}";
          break;
        }
      }
      first = false;
    }
    os << (first ? "}" : "\n  }") << (last ? "\n" : ",\n");
  };
  os << "{\n";
  emit_section(Kind::kCounter, "counters", false);
  emit_section(Kind::kGauge, "gauges", false);
  emit_section(Kind::kHistogram, "histograms", true);
  os << "}\n";
}

MetricsRegistry& global_registry() {
  // Leaked (function-local new) so metric handles cached by other
  // static-lifetime objects stay valid through process teardown in any
  // destruction order.
  static MetricsRegistry* const registry = new MetricsRegistry();
  return *registry;
}

}  // namespace orco::obs
