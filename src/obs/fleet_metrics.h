// Typed handle bundle for the fleet's metric series, resolved once from the
// process-wide registry (the fleet's lifecycle series are exactly the
// "no natural owner" kind global_registry() exists for: several fleets in
// one process accumulate into the same named series, and exporters pick
// them up without extra wiring). Per-fleet numbers the tests and bench
// assert on live in EdgeFleet::stats() atomics instead, so this bundle is
// strictly an observability surface, never a correctness one.
#pragma once

#include "obs/metrics.h"

namespace orco::obs {

struct FleetMetrics {
  // Lifecycle counters.
  Counter* cold_wakes;        // tenants activated from the cold tier
  Counter* wake_coalesced;    // wakers that piggybacked on an in-flight wake
  Counter* demotions;         // tenants demoted to the cold tier
  Counter* demotion_aborts;   // demotions abandoned (tenant busy mid-drain)

  // Replication counters.
  Counter* deltas_shipped;    // incremental snapshot deltas applied
  Counter* delta_bytes;       // payload bytes those deltas carried
  Counter* full_ships;        // full-image ships (no usable follower base)

  // Population gauges.
  Gauge* tenants_registered;
  Gauge* tenants_resident;    // warm (materialized) tenants
  Gauge* tenants_cold;        // registered minus resident

  // Exported as orco_fleet_cold_wake_us / orco_fleet_demote_us.
  Histogram* cold_wake_us;
  Histogram* demote_us;
};

/// The process-wide fleet metric handles, resolved on first use.
FleetMetrics& fleet_metrics();

}  // namespace orco::obs
