// Metrics registry — named counters, gauges and histograms with sharded,
// lock-free hot-path recording and a pull-model snapshot/export.
//
// Recording discipline: a handle (Counter*, Gauge*, Histogram*) is fetched
// once from the MetricsRegistry (which takes its mutex) and then recorded
// through for the rest of the process — every record is a relaxed atomic on
// a cache-line-padded cell, so concurrent shard workers never contend on a
// lock or share a line. Counters shard across kMetricShards cells keyed by
// a per-thread round-robin slot; histograms choose their cell count at
// creation (1 for single-writer rows like per-tenant latency, more for
// registry-wide series every worker hits).
//
// The bucket layout is the canonical latency layout used across the repo
// (quarter-powers of two, 4 buckets per octave — see hist_bucket_for):
// serve::LatencyHistogram delegates to the same functions, so a histogram
// recorded here and one recorded there produce bitwise-identical quantiles
// for the same samples.
//
// Export: write_prometheus() renders the text exposition format (counters
// and gauges as plain samples, histograms as summaries with p50/p95/p99
// quantile rows); write_json() renders one JSON object for dashboards and
// the bench artifacts. Both walk the registry under its mutex but only read
// the cells with relaxed atomics — exporting never stalls recording.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace orco::obs {

// ---- canonical log-spaced bucket layout (shared with serve) -----------------

/// Quarter-powers of two up to ~2^36 us (~19 hours): 4 buckets per octave
/// gives <=19% bucket width across the whole range.
constexpr std::size_t kHistBucketsPerOctave = 4;
constexpr std::size_t kHistBucketCount = 36 * kHistBucketsPerOctave;

/// Bucket index for a microsecond value: bucket b covers
/// [2^(b/4), 2^((b+1)/4)) us, with everything <= 1us in bucket 0.
std::size_t hist_bucket_for(double us);

/// Interpolated quantile over raw bucket counts — the exact algorithm
/// serve::LatencyHistogram has always used, factored out so sharded cells
/// and the legacy histogram cannot drift apart numerically. q in [0, 1];
/// `max_us` caps the interpolation of the top bucket.
double hist_quantile(const std::uint64_t* buckets, std::size_t bucket_count,
                     std::uint64_t count, double max_us, double q);

// ---- metric types -----------------------------------------------------------

/// Cells a counter shards across. Small and fixed: the recording threads of
/// one process (shard workers + client threads) rotate over them, and a
/// snapshot sums them.
constexpr std::size_t kMetricShards = 8;

/// Monotonic counter. inc() is one relaxed fetch_add on the calling
/// thread's cell; value() sums the cells (racy reads are fine — each cell
/// is monotone, so value() never goes backwards between calls).
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept;
  std::uint64_t value() const noexcept;

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kMetricShards> cells_;
};

/// Last-write-wins double gauge with add() and max_of() variants. One cell:
/// gauges are either written by a single owner (per-tenant rows) or written
/// rarely (high-water marks), so sharding would only blur last-write-wins.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(double delta) noexcept;
  /// Monotonic high-water update: v_ = max(v_, v).
  void max_of(double v) noexcept;
  double value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Merged read-side view of a histogram: raw bucket counts plus the moments
/// needed for the report columns. quantile() matches
/// serve::LatencyHistogram::quantile bitwise for identical samples.
struct HistogramSnapshot {
  std::array<std::uint64_t, kHistBucketCount> buckets{};
  std::uint64_t count = 0;
  double sum_us = 0.0;
  double max_us = 0.0;

  double mean_us() const {
    return count > 0 ? sum_us / static_cast<double>(count) : 0.0;
  }
  double quantile(double q) const {
    return hist_quantile(buckets.data(), buckets.size(), count, max_us, q);
  }
};

/// Log-bucketed histogram with `cell_count` independently recorded cells.
/// record() is three relaxed atomics plus one CAS-max on the caller's cell;
/// snapshot() merges the cells. Pass cell_count 1 for single-writer series.
class Histogram {
 public:
  explicit Histogram(std::size_t cell_count);

  void record(double us) noexcept;
  HistogramSnapshot snapshot() const;
  std::uint64_t count() const noexcept;

 private:
  struct alignas(64) Cell {
    std::array<std::atomic<std::uint64_t>, kHistBucketCount> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum_us{0.0};
    std::atomic<double> max_us{0.0};
  };
  std::vector<std::unique_ptr<Cell>> cells_;
};

// ---- registry ---------------------------------------------------------------

/// Prometheus-style labels, e.g. {{"tenant", "3"}}. Kept sorted-as-given;
/// the (name, labels) pair is the registry key.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Named metric directory. Handle lookup (counter()/gauge()/histogram())
/// creates on first use and is the only operation that takes the registry
/// mutex — cache the returned pointer, which stays valid for the
/// registry's lifetime. Metric names use dotted lowercase
/// ("serve.submitted"); exporters sanitize for their format.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(const std::string& name, const Labels& labels = {});
  Gauge* gauge(const std::string& name, const Labels& labels = {});
  /// `cells`: independent recording cells (1 = single writer; use more when
  /// many threads record into the same named series).
  Histogram* histogram(const std::string& name, const Labels& labels = {},
                       std::size_t cells = kMetricShards);

  /// Prometheus text exposition format, one block per metric family,
  /// "orco_" prefix, dots mapped to underscores. Histograms render as
  /// summaries (quantile rows + _sum + _count).
  void write_prometheus(std::ostream& os) const;

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} with labels folded into the key as
  /// name{k=v,...}.
  void write_json(std::ostream& os) const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string name;
    Labels labels;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry* find_or_create(Kind kind, const std::string& name,
                        const Labels& labels, std::size_t cells)
      ORCO_EXCLUDES(mu_);

  /// Creation + export iteration only — record paths go through the
  /// returned handles' lock-free cells and never touch the registry.
  mutable common::Mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_
      ORCO_GUARDED_BY(mu_);  // registration order
};

/// The process-wide registry for metrics with no natural owner (kernel
/// backend selection, library-level counters). Subsystems with their own
/// lifecycle (serve::Telemetry) keep their own registries; exporters that
/// want the library-level series include this one explicitly.
MetricsRegistry& global_registry();

}  // namespace orco::obs
