#include "obs/fleet_metrics.h"

namespace orco::obs {

FleetMetrics& fleet_metrics() {
  static FleetMetrics metrics = [] {
    MetricsRegistry& reg = global_registry();
    FleetMetrics m;
    m.cold_wakes = reg.counter("fleet.cold_wakes");
    m.wake_coalesced = reg.counter("fleet.wake_coalesced");
    m.demotions = reg.counter("fleet.demotions");
    m.demotion_aborts = reg.counter("fleet.demotion_aborts");
    m.deltas_shipped = reg.counter("fleet.deltas_shipped");
    m.delta_bytes = reg.counter("fleet.delta_bytes");
    m.full_ships = reg.counter("fleet.full_ships");
    m.tenants_registered = reg.gauge("fleet.tenants_registered");
    m.tenants_resident = reg.gauge("fleet.tenants_resident");
    m.tenants_cold = reg.gauge("fleet.tenants_cold");
    m.cold_wake_us = reg.histogram("fleet.cold_wake_us");
    m.demote_us = reg.histogram("fleet.demote_us");
    return m;
  }();
  return metrics;
}

}  // namespace orco::obs
