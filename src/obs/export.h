// File export for the observability pillars: metrics as JSON and
// Prometheus text, traces as Chrome trace-event JSON. ServerRuntime wires
// an ExportConfig through ServeConfig to get a periodic flush plus an
// on-shutdown dump; benches and examples call the write_* helpers
// directly.
#pragma once

#include <string>

#include "obs/metrics.h"

namespace orco::obs {

/// Destinations; empty path = that export is off.
struct ExportConfig {
  std::string metrics_json_path;  // registry JSON snapshot
  std::string prometheus_path;    // text exposition format ("scrape file")
  std::string trace_path;         // Chrome trace-event JSON
  /// Period for the runtime's background flush; <= 0 flushes only at
  /// shutdown.
  double flush_period_s = 0.0;

  bool any() const {
    return !metrics_json_path.empty() || !prometheus_path.empty() ||
           !trace_path.empty();
  }
};

/// Each returns false (and logs to stderr) when the file can't be opened.
bool write_metrics_json(const MetricsRegistry& registry,
                        const std::string& path);
bool write_prometheus(const MetricsRegistry& registry,
                      const std::string& path);
bool write_trace_json(const std::string& path);

/// Runs the non-empty exports of `cfg` against `registry` + the global
/// TraceCollector. Returns true when everything written succeeded.
bool export_all(const MetricsRegistry& registry, const ExportConfig& cfg);

}  // namespace orco::obs
