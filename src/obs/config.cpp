#include "obs/config.h"

#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>

#include "obs/trace.h"

namespace orco::obs {

namespace {

std::atomic<bool> g_metrics{true};
std::atomic<bool> g_kernel_profiling{false};

// Source-of-truth copy for config(); the atomics above are the hot-path
// projections of it.
std::mutex g_cfg_mu;
ObsConfig g_cfg;

std::uint32_t sample_every_for(double rate) {
  if (rate <= 0.0) return 0;
  if (rate >= 1.0) return 1;
  return static_cast<std::uint32_t>(std::llround(1.0 / rate));
}

}  // namespace

void configure(const ObsConfig& cfg) {
  {
    std::lock_guard lock(g_cfg_mu);
    g_cfg = cfg;
  }
  g_metrics.store(cfg.metrics, std::memory_order_relaxed);
  g_kernel_profiling.store(cfg.kernel_profiling, std::memory_order_relaxed);
  TraceCollector::instance().set_sample_every(
      sample_every_for(cfg.trace_sample_rate));
}

ObsConfig config() {
  std::lock_guard lock(g_cfg_mu);
  return g_cfg;
}

bool metrics_enabled() noexcept {
  return g_metrics.load(std::memory_order_relaxed);
}

bool trace_enabled() noexcept {
  return TraceCollector::instance().enabled();
}

bool kernel_profiling_enabled() noexcept {
  return g_kernel_profiling.load(std::memory_order_relaxed);
}

}  // namespace orco::obs
