// Process-wide observability configuration.
//
// The three pillars (metrics, tracing, kernel profiling) are individually
// switchable and all default to the cheapest setting that keeps the serving
// path honest: metrics on (sharded counters are contention-free), tracing
// off (sampled in when wanted), kernel profiling off (per-op clock reads
// are measurable at micro-GEMM sizes).
//
// configure() installs the config atomically enough for the use cases that
// matter: the sampling knob lands in TraceCollector as one relaxed store,
// and kernel profiling flips one process-global atomic that OBS_SCOPED_SPAN
// checks with a single relaxed load. Call it before starting traffic;
// flipping mid-flight is safe but spans/ops straddling the flip may be
// half-recorded.
#pragma once

namespace orco::obs {

struct ObsConfig {
  /// Metric recording. Off only makes the typed facades skip their atomic
  /// increments — handles stay valid.
  bool metrics = true;
  /// Fraction of requests that record a full span tree. 0 disables tracing;
  /// 1/64 is the deployment default, 1.0 traces everything (tests).
  /// Internally rounded to "1 in max(1, round(1/rate))".
  double trace_sample_rate = 0.0;
  /// Per-op timing + FLOP counters in the GEMM/im2col paths and per-layer
  /// decoder timers in Sequential::infer_into.
  bool kernel_profiling = false;
};

/// Installs `cfg` process-wide (see header comment for the mid-flight
/// caveats).
void configure(const ObsConfig& cfg);

/// The currently installed config (defaults until configure() is called).
ObsConfig config();

/// Cheap hot-path gates — one relaxed atomic load each.
bool metrics_enabled() noexcept;
bool trace_enabled() noexcept;
bool kernel_profiling_enabled() noexcept;

}  // namespace orco::obs
