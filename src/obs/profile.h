// Kernel profiling hooks — per-op wall time and FLOP counters for the
// backend GEMM/im2col paths, cheap enough to compile into release builds.
//
// The hot-path contract is the OBS_SCOPED_SPAN macro: when profiling is
// disabled (the default) its constructor is one relaxed atomic load and a
// branch; when ORCO_OBS_OFF is defined at compile time it is nothing at
// all. When enabled, each instrumented kernel call adds one steady_clock
// pair and three relaxed fetch_adds on cache-line-padded per-op slots —
// no locks, no allocation, safe from any thread including the
// gemm-parallel pool.
//
// Aggregation is process-global and keyed by KernelOp (the instrumented
// call sites are enumerable); kernel_report() renders the standard bench
// table with derived GFLOP/s so the blocked vs prepacked paths can be
// compared straight from a serving run.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "common/table.h"
#include "obs/config.h"

namespace orco::obs {

/// The instrumented kernel entry points. Order is report order.
enum class KernelOp : std::size_t {
  kGemm = 0,       // C = A * B (blocked)
  kGemmNT,         // C = A * B^T
  kGemmTN,         // C = A^T * B
  kGemmFused,      // GEMM + bias + activation epilogue
  kGemmPrepacked,  // prepacked-B GEMM + epilogue
  kGemmQuantized,  // int8-latent GEMM (dequant fused into A packing)
  kIm2col,         // conv2d patch gather
  kCount,
};

constexpr std::size_t kKernelOpCount =
    static_cast<std::size_t>(KernelOp::kCount);

const char* kernel_op_name(KernelOp op) noexcept;

/// One op's accumulated totals since the last reset.
struct KernelStat {
  std::uint64_t calls = 0;
  std::uint64_t ns = 0;
  std::uint64_t flops = 0;

  double gflops() const {
    return ns > 0 ? static_cast<double>(flops) / static_cast<double>(ns)
                  : 0.0;
  }
};

/// Adds one timed call to `op`'s totals (relaxed, sharded by thread).
void kernel_record(KernelOp op, std::uint64_t ns,
                   std::uint64_t flops) noexcept;

/// Merged totals per op, indexed by KernelOp.
std::array<KernelStat, kKernelOpCount> kernel_snapshot();

/// Zeroes all op totals (bench sections call this between phases).
void kernel_reset();

/// op | calls | total ms | mean us | GFLOP/s — ops with zero calls are
/// omitted.
common::Table kernel_report();

/// One inference step's wall-time accumulator, used by the per-layer
/// (Sequential) and per-op (InferPlan) profiles; padded so concurrent shard
/// workers timing a shared snapshot model never share a cache line.
struct alignas(64) OpTimer {
  std::atomic<std::uint64_t> ns{0};
  std::atomic<std::uint64_t> calls{0};
};

/// RAII timer behind OBS_SCOPED_SPAN. The enabled check happens once at
/// construction; `flops` is the work the call will do (0 when unknown).
class KernelTimer {
 public:
  KernelTimer(KernelOp op, std::uint64_t flops) noexcept
      : active_(kernel_profiling_enabled()), op_(op), flops_(flops) {
    if (active_) start_ns_ = now_ns();
  }
  ~KernelTimer() {
    if (active_) kernel_record(op_, now_ns() - start_ns_, flops_);
  }

  KernelTimer(const KernelTimer&) = delete;
  KernelTimer& operator=(const KernelTimer&) = delete;

  static std::uint64_t now_ns() noexcept;

 private:
  bool active_;
  KernelOp op_;
  std::uint64_t flops_;
  std::uint64_t start_ns_ = 0;
};

}  // namespace orco::obs

/// Times the enclosing scope as one `op` call doing `flops` FLOPs.
/// Compiles out entirely under -DORCO_OBS_OFF.
#ifdef ORCO_OBS_OFF
#define OBS_SCOPED_SPAN(op, flops) \
  do {                             \
  } while (false)
#else
#define OBS_SCOPED_SPAN(op, flops) \
  ::orco::obs::KernelTimer orco_obs_timer_##__LINE__((op), (flops))
#endif
