#include "obs/profile.h"

#include <chrono>

namespace orco::obs {

namespace {

/// Per-op accumulator cell; a small fixed shard set spreads the
/// gemm-parallel pool's workers over distinct cache lines.
struct alignas(64) OpCell {
  std::atomic<std::uint64_t> calls{0};
  std::atomic<std::uint64_t> ns{0};
  std::atomic<std::uint64_t> flops{0};
};

constexpr std::size_t kProfileShards = 8;

OpCell g_cells[kKernelOpCount][kProfileShards];

std::size_t this_thread_slot() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kProfileShards;
  return slot;
}

}  // namespace

const char* kernel_op_name(KernelOp op) noexcept {
  switch (op) {
    case KernelOp::kGemm:
      return "gemm";
    case KernelOp::kGemmNT:
      return "gemm_nt";
    case KernelOp::kGemmTN:
      return "gemm_tn";
    case KernelOp::kGemmFused:
      return "gemm_fused";
    case KernelOp::kGemmPrepacked:
      return "gemm_prepacked";
    case KernelOp::kGemmQuantized:
      return "gemm_quantized";
    case KernelOp::kIm2col:
      return "im2col";
    case KernelOp::kCount:
      break;
  }
  return "?";
}

std::uint64_t KernelTimer::now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void kernel_record(KernelOp op, std::uint64_t ns,
                   std::uint64_t flops) noexcept {
  OpCell& cell = g_cells[static_cast<std::size_t>(op)][this_thread_slot()];
  cell.calls.fetch_add(1, std::memory_order_relaxed);
  cell.ns.fetch_add(ns, std::memory_order_relaxed);
  cell.flops.fetch_add(flops, std::memory_order_relaxed);
}

std::array<KernelStat, kKernelOpCount> kernel_snapshot() {
  std::array<KernelStat, kKernelOpCount> out{};
  for (std::size_t op = 0; op < kKernelOpCount; ++op) {
    for (std::size_t s = 0; s < kProfileShards; ++s) {
      const OpCell& cell = g_cells[op][s];
      out[op].calls += cell.calls.load(std::memory_order_relaxed);
      out[op].ns += cell.ns.load(std::memory_order_relaxed);
      out[op].flops += cell.flops.load(std::memory_order_relaxed);
    }
  }
  return out;
}

void kernel_reset() {
  for (auto& op_cells : g_cells) {
    for (OpCell& cell : op_cells) {
      cell.calls.store(0, std::memory_order_relaxed);
      cell.ns.store(0, std::memory_order_relaxed);
      cell.flops.store(0, std::memory_order_relaxed);
    }
  }
}

common::Table kernel_report() {
  common::Table table({"op", "calls", "total ms", "mean us", "GFLOP/s"});
  const auto stats = kernel_snapshot();
  for (std::size_t op = 0; op < kKernelOpCount; ++op) {
    const KernelStat& s = stats[op];
    if (s.calls == 0) continue;
    const double total_ms = static_cast<double>(s.ns) / 1e6;
    const double mean_us =
        static_cast<double>(s.ns) / 1e3 / static_cast<double>(s.calls);
    table.add_row({kernel_op_name(static_cast<KernelOp>(op)),
                   std::to_string(s.calls), common::Table::num(total_ms, 3),
                   common::Table::num(mean_us, 3),
                   common::Table::num(s.gflops(), 2)});
  }
  return table;
}

}  // namespace orco::obs
