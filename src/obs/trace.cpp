#include "obs/trace.h"

#include <algorithm>

namespace orco::obs {

TraceCollector::TraceCollector() : epoch_(std::chrono::steady_clock::now()) {}

TraceCollector& TraceCollector::instance() {
  // Leaked intentionally: worker threads may retire rings during static
  // destruction; a destroyed collector would dangle under them.
  static TraceCollector* collector = new TraceCollector();
  return *collector;
}

std::int64_t TraceCollector::now_us() const noexcept {
  return to_trace_us(std::chrono::steady_clock::now());
}

std::int64_t TraceCollector::to_trace_us(
    std::chrono::steady_clock::time_point tp) const noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(tp - epoch_)
      .count();
}

bool TraceCollector::should_sample() noexcept {
  const std::uint32_t every = sample_every();
  if (every == 0) return false;
  if (every == 1) return true;
  thread_local std::uint32_t countdown = 0;
  if (countdown == 0) {
    countdown = every - 1;  // this call samples; the next every-1 don't
    return true;
  }
  --countdown;
  return false;
}

/// Owns the calling thread's ring while the thread lives; hands it to the
/// collector's retired list on thread exit so shutdown-time dumps keep the
/// events.
struct TraceCollector::RingHolder {
  std::unique_ptr<Ring> ring;
  TraceCollector* collector;

  explicit RingHolder(TraceCollector* tc)
      : ring(std::make_unique<Ring>()), collector(tc) {
    common::MutexLock lock(tc->mu_);
    ring->tid = tc->next_tid_++;
    tc->live_.push_back(ring.get());
  }

  ~RingHolder() {
    common::MutexLock lock(collector->mu_);
    const auto it = std::find(collector->live_.begin(),
                              collector->live_.end(), ring.get());
    if (it != collector->live_.end()) collector->live_.erase(it);
    collector->retired_.push_back(std::move(ring));
  }
};

TraceCollector::Ring& TraceCollector::local_ring() {
  thread_local RingHolder holder(this);
  return *holder.ring;
}

// ORCO_HOT_PATH BEGIN
// The per-event path: one thread-local ring lookup plus two relaxed/release
// atomics. Ring creation (allocation + registry lock) happens once per
// thread inside RingHolder's constructor, outside this region.
void TraceCollector::emit(const TraceEvent& event) noexcept {
  Ring& ring = local_ring();
  const std::uint64_t head = ring.head.load(std::memory_order_relaxed);
  ring.events[head % kTraceRingCapacity] = event;
  ring.head.store(head + 1, std::memory_order_release);
}
// ORCO_HOT_PATH END

namespace {

std::size_t ring_event_count(std::uint64_t head) {
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(head, kTraceRingCapacity));
}

}  // namespace

std::size_t TraceCollector::event_count() const {
  common::MutexLock lock(mu_);
  std::size_t total = 0;
  for (const Ring* ring : live_) {
    total += ring_event_count(ring->head.load(std::memory_order_acquire));
  }
  for (const auto& ring : retired_) {
    total += ring_event_count(ring->head.load(std::memory_order_acquire));
  }
  return total;
}

void TraceCollector::write_chrome_json(std::ostream& os) const {
  common::MutexLock lock(mu_);
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  const auto dump_ring = [&](const Ring& ring) {
    const std::uint64_t head = ring.head.load(std::memory_order_acquire);
    const std::size_t count = ring_event_count(head);
    // Oldest surviving event first (head - count .. head - 1).
    for (std::size_t i = 0; i < count; ++i) {
      const TraceEvent& ev =
          ring.events[(head - count + i) % kTraceRingCapacity];
      if (ev.name == nullptr) continue;  // torn slot, skip
      os << (first ? "\n" : ",\n");
      first = false;
      os << "  {\"name\": \"" << ev.name << "\", \"cat\": \"" << ev.cat
         << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << ring.tid
         << ", \"ts\": " << ev.ts_us << ", \"dur\": " << ev.dur_us
         << ", \"args\": {\"id\": " << ev.id << ", \"tenant\": " << ev.tenant
         << ", \"n\": " << ev.n << "}}";
    }
  };
  for (const Ring* ring : live_) dump_ring(*ring);
  for (const auto& ring : retired_) dump_ring(*ring);
  os << (first ? "]}\n" : "\n]}\n");
}

void TraceCollector::clear() {
  common::MutexLock lock(mu_);
  for (Ring* ring : live_) {
    ring->head.store(0, std::memory_order_release);
  }
  retired_.clear();
}

}  // namespace orco::obs
