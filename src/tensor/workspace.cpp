#include "tensor/workspace.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"

namespace orco::tensor {

namespace {

constexpr std::size_t kAlignBytes = 64;

}  // namespace

float* Workspace::alloc(std::size_t n) {
  const std::size_t need = aligned(std::max<std::size_t>(n, 1));
  while (block_ < blocks_.size()) {
    Block& b = blocks_[block_];
    if (offset_ + need <= b.size) {
      float* p = b.base + offset_;
      offset_ += need;
      note_high_water();
      return p;
    }
    // The current block's tail cannot fit this allocation. Skip forward
    // (the wasted tail is charged to used(), so the post-reset coalesced
    // slab is certainly large enough to fit the same sequence).
    if (block_ + 1 < blocks_.size()) {
      ++block_;
      offset_ = 0;
      continue;
    }
    break;
  }
  // Overflow: open a fresh block. Earlier blocks (and pointers into them)
  // stay valid until reset()/rewind(). Geometric growth bounds how many
  // times a cold arena spills before it fits its workload.
  const std::size_t grown =
      std::max({kMinBlockFloats, need, 2 * capacity()});
  Block block;
  block.storage.resize(grown + kAlignFloats);
  auto addr = reinterpret_cast<std::uintptr_t>(block.storage.data());
  const std::size_t pad =
      (kAlignBytes - addr % kAlignBytes) % kAlignBytes / sizeof(float);
  block.base = block.storage.data() + pad;
  block.size = grown;
  blocks_.push_back(std::move(block));
  block_ = blocks_.size() - 1;
  offset_ = need;
  note_high_water();
  return blocks_.back().base;
}

void Workspace::rewind(Mark m) {
  ORCO_CHECK(m.block < blocks_.size() || (m.block == 0 && m.offset == 0),
             "Workspace::rewind to a mark past the arena");
  ORCO_CHECK(m.block < block_ || (m.block == block_ && m.offset <= offset_),
             "Workspace::rewind marks must unwind LIFO");
  block_ = m.block;
  offset_ = m.offset;
}

void Workspace::reset() {
  block_ = 0;
  offset_ = 0;
  if (blocks_.size() > 1) {
    // The workload spilled: replace the block chain with one slab sized to
    // the high-water mark, so the next pass never spills again.
    const std::size_t slab = std::max(kMinBlockFloats, aligned(high_water_));
    blocks_.clear();
    reserve(slab);
  }
}

void Workspace::reserve(std::size_t floats) {
  ORCO_CHECK(used() == 0,
             "Workspace::reserve with live allocations (reset() first)");
  const std::size_t want =
      std::max(kMinBlockFloats, aligned(std::max(floats, high_water_)));
  if (blocks_.size() == 1 && blocks_.front().size >= want) return;
  blocks_.clear();
  Block block;
  block.storage.resize(want + kAlignFloats);
  auto addr = reinterpret_cast<std::uintptr_t>(block.storage.data());
  const std::size_t pad =
      (kAlignBytes - addr % kAlignBytes) % kAlignBytes / sizeof(float);
  block.base = block.storage.data() + pad;
  block.size = want;
  blocks_.push_back(std::move(block));
  block_ = 0;
  offset_ = 0;
}

std::size_t Workspace::capacity() const noexcept {
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.size;
  return total;
}

std::size_t Workspace::used() const noexcept {
  std::size_t total = 0;
  for (std::size_t i = 0; i < block_ && i < blocks_.size(); ++i) {
    total += blocks_[i].size;
  }
  return total + offset_;
}

}  // namespace orco::tensor
