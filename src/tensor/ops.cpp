#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace orco::tensor {

Tensor softmax_rows(const Tensor& logits) {
  ORCO_CHECK(logits.rank() == 2, "softmax_rows requires rank 2");
  Tensor out = logits;
  const std::size_t rows = logits.dim(0), cols = logits.dim(1);
  for (std::size_t i = 0; i < rows; ++i) {
    auto r = out.row(i);
    const float m = *std::max_element(r.begin(), r.end());
    double sum = 0.0;
    for (auto& v : r) {
      v = std::exp(v - m);
      sum += v;
    }
    const float inv = static_cast<float>(1.0 / sum);
    for (auto& v : r) v *= inv;
  }
  (void)cols;
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  ORCO_CHECK(logits.rank() == 2, "log_softmax_rows requires rank 2");
  Tensor out = logits;
  const std::size_t rows = logits.dim(0);
  for (std::size_t i = 0; i < rows; ++i) {
    auto r = out.row(i);
    const float m = *std::max_element(r.begin(), r.end());
    double sum = 0.0;
    for (const auto v : r) sum += std::exp(static_cast<double>(v - m));
    const float lse = m + static_cast<float>(std::log(sum));
    for (auto& v : r) v -= lse;
  }
  return out;
}

std::vector<std::size_t> argmax_rows(const Tensor& t) {
  ORCO_CHECK(t.rank() == 2, "argmax_rows requires rank 2");
  std::vector<std::size_t> out(t.dim(0));
  for (std::size_t i = 0; i < t.dim(0); ++i) {
    const auto r = t.row(i);
    out[i] = static_cast<std::size_t>(
        std::distance(r.begin(), std::max_element(r.begin(), r.end())));
  }
  return out;
}

Tensor clamp(const Tensor& t, float lo, float hi) {
  ORCO_CHECK(lo <= hi, "clamp: lo > hi");
  return t.map([lo, hi](float v) { return std::clamp(v, lo, hi); });
}

float mse(const Tensor& a, const Tensor& b) {
  ORCO_CHECK(a.shape() == b.shape(), "mse shape mismatch");
  ORCO_CHECK(a.numel() > 0, "mse of empty tensors");
  double acc = 0.0;
  const auto ad = a.data(), bd = b.data();
  for (std::size_t i = 0; i < ad.size(); ++i) {
    const double d = static_cast<double>(ad[i]) - bd[i];
    acc += d * d;
  }
  return static_cast<float>(acc / static_cast<double>(a.numel()));
}

Tensor concat_rows(const std::vector<Tensor>& parts) {
  ORCO_CHECK(!parts.empty(), "concat_rows of an empty part list");
  ORCO_CHECK(parts.front().rank() == 2,
             "concat_rows: part 0 must be rank 2, got "
                 << shape_to_string(parts.front().shape()));
  const std::size_t cols = parts.front().dim(1);
  std::size_t rows = 0;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const Tensor& p = parts[i];
    ORCO_CHECK(p.rank() == 2, "concat_rows: part " << i
                                                   << " must be rank 2, got "
                                                   << shape_to_string(p.shape()));
    ORCO_CHECK(p.dim(1) == cols, "concat_rows: part "
                                     << i << " has " << p.dim(1)
                                     << " columns, want " << cols);
    rows += p.dim(0);
  }
  ORCO_CHECK(rows > 0, "concat_rows: every part has zero rows");
  Tensor out({rows, cols});
  std::size_t r = 0;
  for (const auto& p : parts) {
    std::copy(p.data().begin(), p.data().end(),
              out.data().begin() + static_cast<std::ptrdiff_t>(r * cols));
    r += p.dim(0);
  }
  return out;
}

Tensor stack_rows(const std::vector<Tensor>& parts) {
  ORCO_CHECK(!parts.empty(), "stack_rows of an empty part list");
  const std::size_t cols = parts.front().numel();
  ORCO_CHECK(cols > 0, "stack_rows: part 0 is empty (shape "
                           << shape_to_string(parts.front().shape()) << ")");
  if (parts.size() == 1) {
    // Single-part fast path: one copy straight off the sole tensor (the
    // general path below zero-initialises a fresh buffer first and then
    // copies over it). An un-coalesced serve batch hits this per request.
    const Tensor& p = parts.front();
    ORCO_CHECK(p.rank() == 1 || (p.rank() == 2 && p.dim(0) == 1),
               "stack_rows: part 0 has shape " << shape_to_string(p.shape())
                                               << ", want a single row");
    return p.reshaped({1, cols});
  }
  Tensor out({parts.size(), cols});
  std::size_t r = 0;
  for (const auto& p : parts) {
    ORCO_CHECK((p.rank() == 1 || (p.rank() == 2 && p.dim(0) == 1)) &&
                   p.numel() == cols,
               "stack_rows: part " << r << " has shape "
                                   << shape_to_string(p.shape())
                                   << ", want length " << cols);
    std::copy(p.data().begin(), p.data().end(),
              out.data().begin() + static_cast<std::ptrdiff_t>(r * cols));
    ++r;
  }
  return out;
}

}  // namespace orco::tensor
