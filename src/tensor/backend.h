// Pluggable kernel backends for the GEMM-shaped hot paths.
//
// Every dense layer, im2col convolution, orchestrated training round and
// serving decode in the repository reduces to one of three row-major GEMM
// layouts (NN, NT, TN) plus an optional fused epilogue (bias + activation).
// A Backend implements those kernels; the rest of the codebase calls them
// through the free functions in tensor/matmul.h, which route to
// current_backend().
//
// Three backends are registered:
//   "reference" — the original ikj streaming kernel; the trusted baseline.
//   "blocked"   — cache-tiled, packed-panel, register-blocked GEMM written
//                 so the compiler auto-vectorizes the micro-kernel.
//   "simd"      — the same panel machinery with an explicitly-SIMD FMA
//                 register micro-kernel, ISA-dispatched at compile time
//                 (AVX-512 → AVX2+FMA → NEON → the blocked scalar kernel;
//                 see backend_simd.cpp and simd_isa()).
//
// Selection, most specific wins:
//   1. A BackendScope installed on the current thread (the serving runtime
//      installs one per ServeConfig, EdgeServer/Orchestrator per
//      OrcoConfig).
//   2. The process default, settable with set_backend().
//   3. The ORCO_BACKEND environment variable, read once on first use. An
//      unknown name falls back loudly to "reference" (warning log,
//      backend.env_invalid counter) instead of crashing the process.
//   4. The reference backend.
//
// Whichever way the default is chosen, the obs gauge orco_backend_active
// publishes the selected registry index (0=reference, 1=blocked, 2=simd).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace orco::tensor {

/// Activation applied by a fused GEMM epilogue. Semantics match the
/// nn/activations.h layers exactly (same expressions, same std:: calls) so
/// fusing an activation into the GEMM cannot change a single value.
enum class EpilogueAct { kNone, kReLU, kLeakyReLU, kSigmoid, kTanh };

/// Fused epilogue description: out = act(accumulated + bias).
struct Epilogue {
  const float* bias = nullptr;  // nullable; length n (per column) or m (per row)
  bool bias_per_row = false;    // false: bias[j] per output column (dense);
                                // true:  bias[i] per output row (im2col conv)
  EpilogueAct act = EpilogueAct::kNone;
  float leaky_alpha = 0.01f;    // only read when act == kLeakyReLU
};

class Backend;

/// Weight panels prepacked into a backend's internal GEMM layout, produced
/// by Backend::pack_b / pack_a and consumed by Backend::gemm_prepacked.
/// The layout is backend-specific, so a PackedWeights may only be used with
/// the backend that created it (`owner`). Packing is worth it exactly when
/// one immutable matrix (a serving decoder's weights) meets many small
/// activation batches: the per-call panel-packing cost — which dominates
/// batch<=4 decode — is paid once instead of per GEMM.
struct PackedWeights {
  const Backend* owner = nullptr;
  char side = 'B';       // 'B': packed right operand; 'A': packed left operand
  std::size_t rows = 0;  // logical rows of the packed matrix (k for B, m for A)
  std::size_t cols = 0;  // logical cols of the packed matrix (n for B, k for A)
  std::vector<float> data;
};

/// Per-row affine dequantization parameters for gemm_quantized: row i of
/// the uint8 operand decodes as x = row_lo[i] + q * row_scale[i]. Per-row
/// because a coalesced serving batch stacks requests that each carry their
/// own [min, max] header from core/quantization — one shared (lo, scale)
/// pair would change values whenever batching composition changes.
struct QuantHeader {
  const float* row_lo = nullptr;     // [m]
  const float* row_scale = nullptr;  // [m]
};

/// A kernel backend. All matrices are dense row-major float32; the gemm*
/// kernels ACCUMULATE into c (callers zero it for a plain product), while
/// gemm_fused OVERWRITES c with act(a·b + bias) in one pass.
///
/// Numerical contract: for a fixed backend the value of each output element
/// depends only on its own row of A and column of B, reduced in ascending
/// k order — never on m, n, tile position or thread count. The serving
/// runtime relies on this: a latent decoded in a coalesced batch must equal
/// the same latent decoded alone, bitwise.
class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string name() const = 0;

  /// c (m×n) += a (m×k) · b (k×n).
  virtual void gemm(const float* a, const float* b, float* c, std::size_t m,
                    std::size_t k, std::size_t n) const = 0;

  /// c (m×n) += a (m×k) · bᵀ, with b stored row-major (n×k). This is the
  /// dense-layer layout: y = x·Wᵀ with W (out×in).
  virtual void gemm_nt(const float* a, const float* b, float* c,
                       std::size_t m, std::size_t k, std::size_t n) const = 0;

  /// c (m×n) += aᵀ · b, with a stored row-major (k×m).
  virtual void gemm_tn(const float* a, const float* b, float* c,
                       std::size_t m, std::size_t k, std::size_t n) const = 0;

  /// c (m×n) = act(a (m×k) · b + bias) in one pass; b is (k×n) row-major,
  /// or (n×k) when transpose_b. Overwrites c. The base implementation is
  /// the unfused fallback (zero, gemm, epilogue sweep); backends override
  /// it to apply the epilogue while output tiles are still cache-hot.
  virtual void gemm_fused(const float* a, const float* b, float* c,
                          std::size_t m, std::size_t k, std::size_t n,
                          bool transpose_b, const Epilogue& epilogue) const;

  /// Packs the right-hand GEMM operand — b (k×n) row-major, or (n×k)
  /// row-major when transpose_b (the Dense weight layout) — into this
  /// backend's panel format for repeated gemm_prepacked calls against
  /// varying left operands. The base implementation materialises plain
  /// row-major (k×n), which already removes the per-call transpose of the
  /// reference NT path.
  virtual PackedWeights pack_b(const float* b, std::size_t k, std::size_t n,
                               bool transpose_b) const;

  /// Packs the left-hand GEMM operand a (m×k row-major) — the im2col
  /// convolution layout, where the filter matrix is the reused operand.
  virtual PackedWeights pack_a(const float* a, std::size_t m,
                               std::size_t k) const;

  /// c (m×n) = act(A·B + bias) with one operand prepacked by THIS backend:
  /// `other` is the unpacked operand — A (m×k) when packed.side == 'B',
  /// B (k×n) when packed.side == 'A'. Overwrites c. Bitwise identical to
  /// the equivalent gemm_fused call on the unpacked weight: packing only
  /// reorders memory, never the per-element reduction.
  virtual void gemm_prepacked(const float* other, const PackedWeights& packed,
                              float* c, std::size_t m, std::size_t k,
                              std::size_t n, const Epilogue& epilogue) const;

  /// c (m×n) = act(dequant(a_q)·B + bias) straight from uint8 codes: a_q is
  /// (m×k) row-major quantized with per-row affine headers `qh`, `packed` a
  /// pack_b-produced right operand of THIS backend. The serving decode path
  /// feeds the uplink payload here without materializing a float copy of
  /// the batch. Values are bitwise identical to dequantizing a_q with
  /// x = lo + q*scale (float math) and calling gemm_prepacked — the base
  /// implementation does exactly that through thread-local scratch; the
  /// panel backends fuse the dequantization into A-panel packing instead.
  virtual void gemm_quantized(const std::uint8_t* a_q, const QuantHeader& qh,
                              const PackedWeights& packed, float* c,
                              std::size_t m, std::size_t k, std::size_t n,
                              const Epilogue& epilogue) const;
};

/// The original ikj streaming kernel (always available).
const Backend& reference_backend();

/// The blocked/packed cache-tiled kernel (always available).
const Backend& blocked_backend();

/// The explicitly-SIMD FMA micro-kernel over the same panel machinery
/// (always available: builds without SIMD support degrade to the blocked
/// scalar kernel — see simd_isa()).
const Backend& simd_backend();

/// Which instruction set the simd backend was compiled for: "avx512",
/// "avx2", "neon", or "scalar-fallback" (no SIMD available or
/// ORCO_DISABLE_SIMD defined).
const char* simd_isa();

/// Looks a backend up by name; nullptr when unknown.
const Backend* find_backend(const std::string& name);

/// Config-string resolution: empty -> nullptr ("inherit"), known name ->
/// the backend, unknown name -> std::invalid_argument listing the
/// registered names. EdgeServer and ServerRuntime resolve their config
/// fields through this.
const Backend* resolve_backend(const std::string& name);

/// Registered backend names, in registration order.
std::vector<std::string> backend_names();

/// ORCO_BACKEND-style resolution with loud fallback: null/empty -> the
/// reference backend; a known name -> that backend; an unknown name ->
/// warning log + backend.env_invalid counter + the reference backend
/// (never throws — a stale env var must not crash every replica). Exposed
/// separately from the env read so tests can exercise the policy.
const Backend& backend_from_env_value(const char* value);

/// Sets the process-default backend. Throws std::invalid_argument for an
/// unknown name.
void set_backend(const std::string& name);
void set_backend(const Backend& backend);

/// The backend the calling thread should use right now: innermost
/// BackendScope if any, else the process default (ORCO_BACKEND env or
/// "reference").
const Backend& current_backend();

/// RAII thread-local backend override. A null backend makes the scope a
/// no-op (inherit whatever is already selected) so per-config plumbing can
/// pass "not configured" straight through.
class BackendScope {
 public:
  explicit BackendScope(const Backend* backend);
  ~BackendScope();

  BackendScope(const BackendScope&) = delete;
  BackendScope& operator=(const BackendScope&) = delete;

 private:
  const Backend* prev_;
};

/// Applies `epilogue` to every element of c (m×n) in place — the unfused
/// fallback sweep, also used when k == 0.
void apply_epilogue(float* c, std::size_t m, std::size_t n,
                    const Epilogue& epilogue);

/// Enables/disables thread-pool parallelism for GEMM (default on). Tests
/// that need bit-exact serial reductions can turn it off. (Row-partitioned
/// parallelism never changes values — this exists for determinism of
/// scheduling-sensitive measurements.)
void set_gemm_parallelism(bool enabled);
bool gemm_parallelism();

/// Per-thread opt-out from pooled GEMM parallelism: kernels invoked from a
/// thread that disabled it run inline on that thread instead of borrowing
/// the shared pool's workers. train::TrainerRuntime turns this off on its
/// (deprioritized) worker threads so background fine-tuning compute
/// inherits their scheduling priority — routed through the normal-priority
/// pool it would preempt serve decode batches and head-of-line-block the
/// pool queue. Values are unchanged either way (row partitioning never
/// alters a reduction). Default on.
void set_thread_gemm_parallelism(bool enabled);
bool thread_gemm_parallelism();

}  // namespace orco::tensor
