#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/check.h"

namespace orco::tensor {

std::size_t shape_numel(const Shape& shape) {
  if (shape.empty()) return 0;
  std::size_t n = 1;
  for (const auto d : shape) n *= d;
  return n;
}

std::string shape_to_string(const Shape& shape) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape[i];
  }
  os << ']';
  return os.str();
}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), data_(shape_numel(shape_), 0.0f) {}

Tensor::Tensor(Shape shape, float fill)
    : shape_(std::move(shape)), data_(shape_numel(shape_), fill) {}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  ORCO_CHECK(data_.size() == shape_numel(shape_),
             "data size " << data_.size() << " does not match shape "
                          << shape_to_string(shape_));
}

Tensor Tensor::randn(Shape shape, common::Pcg32& rng, float mean,
                     float stddev) {
  Tensor out(std::move(shape));
  for (auto& v : out.data_) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
  return out;
}

Tensor Tensor::uniform(Shape shape, common::Pcg32& rng, float lo, float hi) {
  Tensor out(std::move(shape));
  for (auto& v : out.data_) v = rng.uniform(lo, hi);
  return out;
}

Tensor Tensor::from(std::initializer_list<float> values) {
  return Tensor({values.size()}, std::vector<float>(values));
}

Tensor Tensor::from2d(
    std::initializer_list<std::initializer_list<float>> rows) {
  ORCO_CHECK(rows.size() > 0, "from2d requires at least one row");
  const std::size_t cols = rows.begin()->size();
  std::vector<float> data;
  data.reserve(rows.size() * cols);
  for (const auto& r : rows) {
    ORCO_CHECK(r.size() == cols, "ragged initialiser list");
    data.insert(data.end(), r.begin(), r.end());
  }
  return Tensor({rows.size(), cols}, std::move(data));
}

std::size_t Tensor::dim(std::size_t d) const {
  ORCO_CHECK(d < shape_.size(),
             "dim " << d << " out of range for " << shape_to_string(shape_));
  return shape_[d];
}

Tensor Tensor::reshaped(Shape new_shape) const {
  Tensor out = *this;
  out.reshape(std::move(new_shape));
  return out;
}

void Tensor::reshape(Shape new_shape) {
  ORCO_CHECK(shape_numel(new_shape) == data_.size(),
             "cannot reshape " << shape_to_string(shape_) << " ("
                               << data_.size() << " elems) to "
                               << shape_to_string(new_shape));
  shape_ = std::move(new_shape);
}

void Tensor::resize(Shape new_shape) {
  data_.resize(shape_numel(new_shape));
  shape_ = std::move(new_shape);
}

void Tensor::resize(std::size_t rows, std::size_t cols) {
  data_.resize(rows * cols);
  shape_.resize(2);  // allocation-free once the vector has ever held rank 2
  shape_[0] = rows;
  shape_[1] = cols;
}

void Tensor::resize_like(const Tensor& other) {
  data_.resize(other.numel());
  const Shape& src = other.shape();
  shape_.resize(src.size());
  std::copy(src.begin(), src.end(), shape_.begin());
}

float& Tensor::at(std::size_t i, std::size_t j) {
  ORCO_CHECK(rank() == 2, "at(i,j) requires rank 2, got "
                              << shape_to_string(shape_));
  ORCO_CHECK(i < shape_[0] && j < shape_[1],
             "index (" << i << "," << j << ") out of " << shape_to_string(shape_));
  return data_[i * shape_[1] + j];
}

float Tensor::at(std::size_t i, std::size_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

float& Tensor::at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) {
  ORCO_CHECK(rank() == 4, "at(n,c,h,w) requires rank 4, got "
                              << shape_to_string(shape_));
  ORCO_CHECK(n < shape_[0] && c < shape_[1] && h < shape_[2] && w < shape_[3],
             "index (" << n << "," << c << "," << h << "," << w << ") out of "
                       << shape_to_string(shape_));
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at(std::size_t n, std::size_t c, std::size_t h,
                 std::size_t w) const {
  return const_cast<Tensor*>(this)->at(n, c, h, w);
}

std::span<float> Tensor::row(std::size_t i) {
  ORCO_CHECK(rank() == 2, "row() requires rank 2, got "
                              << shape_to_string(shape_));
  ORCO_CHECK(i < shape_[0], "row " << i << " out of " << shape_[0]);
  return std::span<float>(data_).subspan(i * shape_[1], shape_[1]);
}

std::span<const float> Tensor::row(std::size_t i) const {
  return const_cast<Tensor*>(this)->row(i);
}

Tensor Tensor::slice_rows(std::size_t begin, std::size_t end) const {
  ORCO_CHECK(rank() == 2, "slice_rows requires rank 2");
  ORCO_CHECK(begin <= end && end <= shape_[0],
             "bad row range [" << begin << "," << end << ") of " << shape_[0]);
  const std::size_t cols = shape_[1];
  std::vector<float> out(data_.begin() + static_cast<std::ptrdiff_t>(begin * cols),
                         data_.begin() + static_cast<std::ptrdiff_t>(end * cols));
  return Tensor({end - begin, cols}, std::move(out));
}

Tensor Tensor::row_copy(std::size_t i) const {
  ORCO_CHECK(rank() == 2, "row_copy requires rank 2");
  ORCO_CHECK(i < shape_[0], "row " << i << " out of " << shape_[0]);
  const std::size_t cols = shape_[1];
  std::vector<float> out(data_.begin() + static_cast<std::ptrdiff_t>(i * cols),
                         data_.begin() + static_cast<std::ptrdiff_t>((i + 1) * cols));
  return Tensor({cols}, std::move(out));
}

Tensor Tensor::slice_outer(std::size_t n) const {
  ORCO_CHECK(rank() >= 1, "slice_outer requires rank >= 1");
  ORCO_CHECK(n < shape_[0], "outer index " << n << " out of " << shape_[0]);
  // Branch before constructing (instead of `inner = {1}` after): GCC 12's
  // -Wfree-nonheap-object misfires on the initializer-list reassignment.
  Shape inner;
  if (shape_.size() > 1) {
    inner.assign(shape_.begin() + 1, shape_.end());
  } else {
    inner.assign(1, 1);
  }
  const std::size_t stride = shape_numel(inner);
  std::vector<float> out(data_.begin() + static_cast<std::ptrdiff_t>(n * stride),
                         data_.begin() + static_cast<std::ptrdiff_t>((n + 1) * stride));
  return Tensor(std::move(inner), std::move(out));
}

void Tensor::set_outer(std::size_t n, const Tensor& src) {
  ORCO_CHECK(rank() >= 1 && n < shape_[0],
             "outer index " << n << " out of range");
  // Branch before constructing (instead of `inner = {1}` after): GCC 12's
  // -Wfree-nonheap-object misfires on the initializer-list reassignment.
  Shape inner;
  if (shape_.size() > 1) {
    inner.assign(shape_.begin() + 1, shape_.end());
  } else {
    inner.assign(1, 1);
  }
  ORCO_CHECK(src.numel() == shape_numel(inner),
             "slice size mismatch: " << src.numel() << " vs "
                                     << shape_numel(inner));
  std::copy(src.data_.begin(), src.data_.end(),
            data_.begin() + static_cast<std::ptrdiff_t>(n * src.numel()));
}

void Tensor::check_same_shape(const Tensor& rhs, const char* op) const {
  ORCO_CHECK(shape_ == rhs.shape_,
             op << ": shape mismatch " << shape_to_string(shape_) << " vs "
                << shape_to_string(rhs.shape_));
}

Tensor Tensor::operator+(const Tensor& rhs) const {
  check_same_shape(rhs, "operator+");
  Tensor out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Tensor Tensor::operator-(const Tensor& rhs) const {
  check_same_shape(rhs, "operator-");
  Tensor out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Tensor Tensor::operator*(const Tensor& rhs) const {
  check_same_shape(rhs, "operator*");
  Tensor out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= rhs.data_[i];
  return out;
}

Tensor Tensor::operator*(float s) const {
  Tensor out = *this;
  for (auto& v : out.data_) v *= s;
  return out;
}

Tensor Tensor::operator+(float s) const {
  Tensor out = *this;
  for (auto& v : out.data_) v += s;
  return out;
}

Tensor& Tensor::operator+=(const Tensor& rhs) {
  check_same_shape(rhs, "operator+=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator-=(const Tensor& rhs) {
  check_same_shape(rhs, "operator-=");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Tensor& Tensor::operator*=(float s) {
  for (auto& v : data_) v *= s;
  return *this;
}

void Tensor::add_scaled(const Tensor& rhs, float alpha) {
  check_same_shape(rhs, "add_scaled");
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * rhs.data_[i];
  }
}

float Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0f);
}

float Tensor::mean() const {
  ORCO_CHECK(!data_.empty(), "mean of empty tensor");
  // Accumulate in double: float accumulation loses precision at bench sizes.
  double acc = 0.0;
  for (const auto v : data_) acc += v;
  return static_cast<float>(acc / static_cast<double>(data_.size()));
}

float Tensor::min() const {
  ORCO_CHECK(!data_.empty(), "min of empty tensor");
  return *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  ORCO_CHECK(!data_.empty(), "max of empty tensor");
  return *std::max_element(data_.begin(), data_.end());
}

std::size_t Tensor::argmax() const {
  ORCO_CHECK(!data_.empty(), "argmax of empty tensor");
  return static_cast<std::size_t>(
      std::distance(data_.begin(), std::max_element(data_.begin(), data_.end())));
}

float Tensor::l2_norm() const {
  double acc = 0.0;
  for (const auto v : data_) acc += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(acc));
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (const auto v : data_) m = std::max(m, std::fabs(v));
  return m;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor Tensor::transposed() const {
  ORCO_CHECK(rank() == 2, "transposed requires rank 2, got "
                              << shape_to_string(shape_));
  const std::size_t r = shape_[0];
  const std::size_t c = shape_[1];
  Tensor out({c, r});
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) {
      out.data_[j * r + i] = data_[i * c + j];
    }
  }
  return out;
}

bool Tensor::allclose(const Tensor& other, float atol) const {
  if (shape_ != other.shape_) return false;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    if (std::fabs(data_[i] - other.data_[i]) > atol) return false;
  }
  return true;
}

}  // namespace orco::tensor
