// im2col / col2im lowering for convolutions.
//
// Conv2d and ConvTranspose2d in the NN library are implemented as GEMM over
// these unrolled patch matrices — the standard lowering used by Caffe and
// most CPU DL stacks.
#pragma once

#include <cstddef>

#include "tensor/tensor.h"

namespace orco::tensor {

struct Conv2dGeometry {
  std::size_t in_channels = 0;
  std::size_t in_h = 0, in_w = 0;
  std::size_t kernel_h = 0, kernel_w = 0;
  std::size_t stride = 1;
  std::size_t pad = 0;

  std::size_t out_h() const;
  std::size_t out_w() const;
};

/// Unrolls one image (C, H, W flattened, row-major) into a
/// (C*KH*KW) x (OH*OW) column matrix.
Tensor im2col(std::span<const float> image, const Conv2dGeometry& g);

/// im2col writing into caller-owned scratch of (C*KH*KW) * (OH*OW) floats —
/// the zero-allocation inference path hands a Workspace slab here instead
/// of materialising a Tensor per sample.
void im2col_into(std::span<const float> image, const Conv2dGeometry& g,
                 std::span<float> columns);

/// Folds a (C*KH*KW) x (OH*OW) column matrix back into an image gradient,
/// accumulating overlapping patches. `image_grad` must hold C*H*W floats and
/// is accumulated into (callers zero it first).
void col2im(const Tensor& columns, const Conv2dGeometry& g,
            std::span<float> image_grad);

/// col2im over caller-owned column scratch (same layout contract).
void col2im(std::span<const float> columns, const Conv2dGeometry& g,
            std::span<float> image_grad);

}  // namespace orco::tensor
