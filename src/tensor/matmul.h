// GEMM entry points. The dense layers and the im2col-based convolutions
// reduce to these; every call routes through the pluggable kernel backend
// selected via tensor/backend.h (reference ikj kernel or blocked/packed
// cache-tiled kernel). Large problems are row-parallelised via the global
// thread pool; small problems run serially so unit tests are deterministic
// and cheap.
#pragma once

#include "tensor/backend.h"
#include "tensor/tensor.h"

namespace orco::tensor {

/// C = A (m x k) * B (k x n). Returns a new (m x n) tensor.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A^T (k x m -> m x k) * B (k x n).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A (m x k) * B^T (n x k -> k x n).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// out += A (m x k) * B (k x n); out must already be (m x n).
void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& out);

/// C = act(A (m x k) * B^T + bias), with B row-major (n x k) and bias of
/// length n added per output column — the Dense layer in one fused pass
/// (GEMM, bias and activation applied while output tiles are hot) instead
/// of matmul-then-bias-then-activation.
Tensor gemm_bias_act(const Tensor& a, const Tensor& b, const Tensor& bias,
                     EpilogueAct act = EpilogueAct::kNone,
                     float leaky_alpha = 0.01f);

/// C = act(A (m x k) * B (k x n) + bias), with bias of length m added per
/// output row — the im2col convolution (filters x columns, one bias per
/// output channel) in one fused pass.
Tensor gemm_rowbias_act(const Tensor& a, const Tensor& b, const Tensor& bias,
                        EpilogueAct act = EpilogueAct::kNone,
                        float leaky_alpha = 0.01f);

/// C = act(A (m x k) * W + bias) with W prepacked by pack_b on the current
/// backend (logical k x n) — the Dense serving path without the per-call
/// panel packing. Bitwise identical to gemm_bias_act on the unpacked
/// weight. Throws if the pack came from a different backend.
Tensor gemm_bias_act_prepacked(const Tensor& a, const PackedWeights& w,
                               const Tensor& bias,
                               EpilogueAct act = EpilogueAct::kNone,
                               float leaky_alpha = 0.01f);

/// C = act(W * B (k x n) + bias) with W prepacked by pack_a on the current
/// backend (logical m x k) and bias of length m per output row — the
/// im2col convolution with a prepacked filter matrix.
Tensor gemm_rowbias_act_prepacked(const PackedWeights& w, const Tensor& b,
                                  const Tensor& bias,
                                  EpilogueAct act = EpilogueAct::kNone,
                                  float leaky_alpha = 0.01f);

/// y = W (m x n) * x (n) as rank-1 tensors.
Tensor matvec(const Tensor& w, const Tensor& x);

}  // namespace orco::tensor
