// GEMM kernels. The dense layers and the im2col-based convolutions reduce to
// these. Blocked over rows and parallelised via the global thread pool when
// the problem is large enough; small problems run serially so unit tests are
// deterministic and cheap.
#pragma once

#include "tensor/tensor.h"

namespace orco::tensor {

/// C = A (m x k) * B (k x n). Returns a new (m x n) tensor.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C = A^T (k x m -> m x k) * B (k x n).
Tensor matmul_tn(const Tensor& a, const Tensor& b);

/// C = A (m x k) * B^T (n x k -> k x n).
Tensor matmul_nt(const Tensor& a, const Tensor& b);

/// out += A (m x k) * B (k x n); out must already be (m x n).
void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& out);

/// y = W (m x n) * x (n) as rank-1 tensors.
Tensor matvec(const Tensor& w, const Tensor& x);

/// Enables/disables thread-pool parallelism for GEMM (default on). Tests
/// that need bit-exact serial reductions can turn it off.
void set_gemm_parallelism(bool enabled);
bool gemm_parallelism();

}  // namespace orco::tensor
