#include "tensor/matmul.h"

#include <atomic>
#include <cstring>

#include "common/check.h"
#include "common/thread_pool.h"

namespace orco::tensor {

namespace {

std::atomic<bool> g_parallel{true};

// Minimum row*col product before we bother waking the thread pool.
constexpr std::size_t kParallelThreshold = 64 * 1024;

// Inner kernel: rows [r0, r1) of C = A * B, all row-major contiguous.
// k-loop is hoisted outside the j-loop so B is streamed row-wise — this is
// the classic ikj ordering, cache-friendly without explicit tiling.
void gemm_rows(const float* a, const float* b, float* c, std::size_t r0,
               std::size_t r1, std::size_t k, std::size_t n) {
  for (std::size_t i = r0; i < r1; ++i) {
    float* ci = c + i * n;
    const float* ai = a + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = ai[p];
      if (aip == 0.0f) continue;
      const float* bp = b + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

void run_gemm(const float* a, const float* b, float* c, std::size_t m,
              std::size_t k, std::size_t n) {
  common::ThreadPool* pool =
      (g_parallel.load() && m * n >= kParallelThreshold)
          ? &common::ThreadPool::global()
          : nullptr;
  common::parallel_for(pool, 0, m, /*grain=*/8,
                       [&](std::size_t lo, std::size_t hi) {
                         gemm_rows(a, b, c, lo, hi, k, n);
                       });
}

}  // namespace

void set_gemm_parallelism(bool enabled) { g_parallel.store(enabled); }
bool gemm_parallelism() { return g_parallel.load(); }

Tensor matmul(const Tensor& a, const Tensor& b) {
  ORCO_CHECK(a.rank() == 2 && b.rank() == 2,
             "matmul requires rank-2 operands, got "
                 << shape_to_string(a.shape()) << " x "
                 << shape_to_string(b.shape()));
  const std::size_t m = a.dim(0), k = a.dim(1);
  ORCO_CHECK(b.dim(0) == k, "matmul inner dim mismatch: "
                                << shape_to_string(a.shape()) << " x "
                                << shape_to_string(b.shape()));
  const std::size_t n = b.dim(1);
  Tensor c({m, n});
  run_gemm(a.data().data(), b.data().data(), c.data().data(), m, k, n);
  return c;
}

void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  ORCO_CHECK(a.rank() == 2 && b.rank() == 2 && out.rank() == 2,
             "matmul_accumulate requires rank-2 operands");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  ORCO_CHECK(b.dim(0) == k && out.dim(0) == m && out.dim(1) == n,
             "matmul_accumulate shape mismatch");
  run_gemm(a.data().data(), b.data().data(), out.data().data(), m, k, n);
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  // A is (k x m) stored row-major; we want A^T * B. Materialising the
  // transpose keeps the hot loop contiguous and is cheap at our sizes.
  return matmul(a.transposed(), b);
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  return matmul(a, b.transposed());
}

Tensor matvec(const Tensor& w, const Tensor& x) {
  ORCO_CHECK(w.rank() == 2 && x.rank() == 1, "matvec wants (m x n) * (n)");
  const std::size_t m = w.dim(0), n = w.dim(1);
  ORCO_CHECK(x.dim(0) == n, "matvec dim mismatch: " << n << " vs " << x.dim(0));
  Tensor y({m});
  const auto wd = w.data();
  const auto xd = x.data();
  for (std::size_t i = 0; i < m; ++i) {
    double acc = 0.0;
    const float* wi = wd.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) acc += static_cast<double>(wi[j]) * xd[j];
    y[i] = static_cast<float>(acc);
  }
  return y;
}

}  // namespace orco::tensor
