#include "tensor/matmul.h"

#include "common/check.h"
#include "obs/profile.h"

namespace orco::tensor {

namespace {

/// FLOPs of an (m x k) * (k x n) multiply-accumulate GEMM.
std::uint64_t gemm_flops(std::size_t m, std::size_t k, std::size_t n) {
  return 2ull * m * k * n;
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  ORCO_CHECK(a.rank() == 2 && b.rank() == 2,
             "matmul requires rank-2 operands, got "
                 << shape_to_string(a.shape()) << " x "
                 << shape_to_string(b.shape()));
  const std::size_t m = a.dim(0), k = a.dim(1);
  ORCO_CHECK(b.dim(0) == k, "matmul inner dim mismatch: "
                                << shape_to_string(a.shape()) << " x "
                                << shape_to_string(b.shape()));
  const std::size_t n = b.dim(1);
  Tensor c({m, n});
  OBS_SCOPED_SPAN(obs::KernelOp::kGemm, gemm_flops(m, k, n));
  current_backend().gemm(a.data().data(), b.data().data(), c.data().data(), m,
                         k, n);
  return c;
}

void matmul_accumulate(const Tensor& a, const Tensor& b, Tensor& out) {
  ORCO_CHECK(a.rank() == 2 && b.rank() == 2 && out.rank() == 2,
             "matmul_accumulate requires rank-2 operands");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  ORCO_CHECK(b.dim(0) == k && out.dim(0) == m && out.dim(1) == n,
             "matmul_accumulate shape mismatch");
  OBS_SCOPED_SPAN(obs::KernelOp::kGemm, gemm_flops(m, k, n));
  current_backend().gemm(a.data().data(), b.data().data(), out.data().data(),
                         m, k, n);
}

Tensor matmul_tn(const Tensor& a, const Tensor& b) {
  ORCO_CHECK(a.rank() == 2 && b.rank() == 2,
             "matmul_tn requires rank-2 operands, got "
                 << shape_to_string(a.shape()) << " x "
                 << shape_to_string(b.shape()));
  const std::size_t k = a.dim(0), m = a.dim(1);
  ORCO_CHECK(b.dim(0) == k, "matmul_tn inner dim mismatch: "
                                << shape_to_string(a.shape()) << " x "
                                << shape_to_string(b.shape()));
  const std::size_t n = b.dim(1);
  Tensor c({m, n});
  OBS_SCOPED_SPAN(obs::KernelOp::kGemmTN, gemm_flops(m, k, n));
  current_backend().gemm_tn(a.data().data(), b.data().data(), c.data().data(),
                            m, k, n);
  return c;
}

Tensor matmul_nt(const Tensor& a, const Tensor& b) {
  ORCO_CHECK(a.rank() == 2 && b.rank() == 2,
             "matmul_nt requires rank-2 operands, got "
                 << shape_to_string(a.shape()) << " x "
                 << shape_to_string(b.shape()));
  const std::size_t m = a.dim(0), k = a.dim(1);
  ORCO_CHECK(b.dim(1) == k, "matmul_nt inner dim mismatch: "
                                << shape_to_string(a.shape()) << " x "
                                << shape_to_string(b.shape()));
  const std::size_t n = b.dim(0);
  Tensor c({m, n});
  OBS_SCOPED_SPAN(obs::KernelOp::kGemmNT, gemm_flops(m, k, n));
  current_backend().gemm_nt(a.data().data(), b.data().data(), c.data().data(),
                            m, k, n);
  return c;
}

Tensor gemm_bias_act(const Tensor& a, const Tensor& b, const Tensor& bias,
                     EpilogueAct act, float leaky_alpha) {
  ORCO_CHECK(a.rank() == 2 && b.rank() == 2,
             "gemm_bias_act requires rank-2 operands, got "
                 << shape_to_string(a.shape()) << " x "
                 << shape_to_string(b.shape()));
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  ORCO_CHECK(b.dim(1) == k, "gemm_bias_act inner dim mismatch: "
                                << shape_to_string(a.shape()) << " x "
                                << shape_to_string(b.shape()) << "^T");
  ORCO_CHECK(bias.rank() == 1 && bias.dim(0) == n,
             "gemm_bias_act bias must be rank-1 of length "
                 << n << ", got " << shape_to_string(bias.shape()));
  Tensor c({m, n});
  Epilogue epi;
  epi.bias = bias.data().data();
  epi.bias_per_row = false;
  epi.act = act;
  epi.leaky_alpha = leaky_alpha;
  OBS_SCOPED_SPAN(obs::KernelOp::kGemmFused, gemm_flops(m, k, n));
  current_backend().gemm_fused(a.data().data(), b.data().data(),
                               c.data().data(), m, k, n,
                               /*transpose_b=*/true, epi);
  return c;
}

Tensor gemm_rowbias_act(const Tensor& a, const Tensor& b, const Tensor& bias,
                        EpilogueAct act, float leaky_alpha) {
  ORCO_CHECK(a.rank() == 2 && b.rank() == 2,
             "gemm_rowbias_act requires rank-2 operands, got "
                 << shape_to_string(a.shape()) << " x "
                 << shape_to_string(b.shape()));
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  ORCO_CHECK(b.dim(0) == k, "gemm_rowbias_act inner dim mismatch: "
                                << shape_to_string(a.shape()) << " x "
                                << shape_to_string(b.shape()));
  ORCO_CHECK(bias.rank() == 1 && bias.dim(0) == m,
             "gemm_rowbias_act bias must be rank-1 of length "
                 << m << ", got " << shape_to_string(bias.shape()));
  Tensor c({m, n});
  Epilogue epi;
  epi.bias = bias.data().data();
  epi.bias_per_row = true;
  epi.act = act;
  epi.leaky_alpha = leaky_alpha;
  OBS_SCOPED_SPAN(obs::KernelOp::kGemmFused, gemm_flops(m, k, n));
  current_backend().gemm_fused(a.data().data(), b.data().data(),
                               c.data().data(), m, k, n,
                               /*transpose_b=*/false, epi);
  return c;
}

Tensor gemm_bias_act_prepacked(const Tensor& a, const PackedWeights& w,
                               const Tensor& bias, EpilogueAct act,
                               float leaky_alpha) {
  ORCO_CHECK(a.rank() == 2, "gemm_bias_act_prepacked requires rank-2 input, "
                                << "got " << shape_to_string(a.shape()));
  ORCO_CHECK(w.side == 'B', "gemm_bias_act_prepacked wants a pack_b weight");
  const std::size_t m = a.dim(0), k = a.dim(1), n = w.cols;
  ORCO_CHECK(w.rows == k, "gemm_bias_act_prepacked inner dim mismatch: "
                              << shape_to_string(a.shape()) << " x packed "
                              << w.rows << "x" << w.cols);
  ORCO_CHECK(bias.rank() == 1 && bias.dim(0) == n,
             "gemm_bias_act_prepacked bias must be rank-1 of length "
                 << n << ", got " << shape_to_string(bias.shape()));
  Tensor c({m, n});
  Epilogue epi;
  epi.bias = bias.data().data();
  epi.bias_per_row = false;
  epi.act = act;
  epi.leaky_alpha = leaky_alpha;
  OBS_SCOPED_SPAN(obs::KernelOp::kGemmPrepacked, gemm_flops(m, k, n));
  current_backend().gemm_prepacked(a.data().data(), w, c.data().data(), m, k,
                                   n, epi);
  return c;
}

Tensor gemm_rowbias_act_prepacked(const PackedWeights& w, const Tensor& b,
                                  const Tensor& bias, EpilogueAct act,
                                  float leaky_alpha) {
  ORCO_CHECK(b.rank() == 2, "gemm_rowbias_act_prepacked requires rank-2 "
                                << "input, got "
                                << shape_to_string(b.shape()));
  ORCO_CHECK(w.side == 'A', "gemm_rowbias_act_prepacked wants a pack_a "
                                << "weight");
  const std::size_t m = w.rows, k = w.cols, n = b.dim(1);
  ORCO_CHECK(b.dim(0) == k, "gemm_rowbias_act_prepacked inner dim mismatch: "
                                << "packed " << w.rows << "x" << w.cols
                                << " x " << shape_to_string(b.shape()));
  ORCO_CHECK(bias.rank() == 1 && bias.dim(0) == m,
             "gemm_rowbias_act_prepacked bias must be rank-1 of length "
                 << m << ", got " << shape_to_string(bias.shape()));
  Tensor c({m, n});
  Epilogue epi;
  epi.bias = bias.data().data();
  epi.bias_per_row = true;
  epi.act = act;
  epi.leaky_alpha = leaky_alpha;
  OBS_SCOPED_SPAN(obs::KernelOp::kGemmPrepacked, gemm_flops(m, k, n));
  current_backend().gemm_prepacked(b.data().data(), w, c.data().data(), m, k,
                                   n, epi);
  return c;
}

Tensor matvec(const Tensor& w, const Tensor& x) {
  ORCO_CHECK(w.rank() == 2 && x.rank() == 1, "matvec wants (m x n) * (n)");
  const std::size_t m = w.dim(0), n = w.dim(1);
  ORCO_CHECK(x.dim(0) == n, "matvec dim mismatch: " << n << " vs " << x.dim(0));
  Tensor y({m});
  const auto wd = w.data();
  const auto xd = x.data();
  for (std::size_t i = 0; i < m; ++i) {
    double acc = 0.0;
    const float* wi = wd.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) acc += static_cast<double>(wi[j]) * xd[j];
    y[i] = static_cast<float>(acc);
  }
  return y;
}

}  // namespace orco::tensor
