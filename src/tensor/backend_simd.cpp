// The "simd" backend: the blocked backend's panel machinery
// (tensor/gemm_panels.h) with the micro-kernel rewritten in explicit SIMD
// intrinsics — FMA register tiles instead of trusting the auto-vectorizer.
//
// The instruction set is dispatched at COMPILE time, best tier available:
//
//   AVX-512F        8×32 tile: 16 zmm accumulators, one broadcast + two
//                   fused multiply-adds per row per k step.
//   AVX2 + FMA      6×16 tile: 12 ymm accumulators (+2 B, +1 broadcast
//                   stays within the 16-register file).
//   NEON (aarch64)  8×8 tile: 16 float32x4 accumulators.
//   otherwise       the blocked backend's 4×32 scalar kernel — builds with
//                   -DORCO_DISABLE_SIMD (or no SIMD target flags at all)
//                   still link and pass, just without the speedup.
//
// This file is compiled with the host's native flags when
// ORCO_NATIVE_KERNELS is on (the CMake default), so __AVX512F__/__AVX2__/
// __ARM_NEON reflect the build machine; cross-building for a generic x86-64
// target lands on the scalar tier automatically.
//
// Numerical contract: the panel driver is shared with "blocked", so each
// output element is still ONE reduction chain in ascending k seeded from C
// — batched-vs-single, prepacked-vs-on-the-fly and all three layouts agree
// BITWISE within this backend. Versus "blocked"/"reference" the FMA tiers
// keep products unrounded before each add, so cross-backend comparisons are
// ULP-bounded rather than bitwise (the scalar tier, same arithmetic as
// blocked, stays bitwise with it). The epilogue is applied scalar, outside
// the FMA chain, so fused activations match nn/activations.h exactly.
#include "tensor/backend.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "tensor/gemm_panels.h"

#if !defined(ORCO_DISABLE_SIMD) && defined(__AVX512F__)
#include <immintrin.h>
#elif !defined(ORCO_DISABLE_SIMD) && defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#elif !defined(ORCO_DISABLE_SIMD) && defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace orco::tensor {

namespace {

#if !defined(ORCO_DISABLE_SIMD) && defined(__AVX512F__)

constexpr const char* kIsa = "avx512";
constexpr std::size_t kIsaMr = 8;    // 8 rows × 2 zmm = 16 accumulators
constexpr std::size_t kIsaNr = 32;   // two 16-lane vectors
constexpr std::size_t kIsaMc = 128;  // row block (multiple of kIsaMr)

// One Rows×32 tile over a packed k panel, accumulating straight into C
// (ldc-strided, full column width only). ~1 broadcast + 2 FMAs per row per
// k step; B is streamed once per tile from the packed panel. Rows is a
// template parameter so partial row tiles (a batch-1 serving decode) keep
// only the accumulators they need instead of paying the full kIsaMr tile.
template <std::size_t Rows>
void isa_ukernel(const float* ap, const float* bp, std::size_t kc, float* c,
                 std::size_t ldc) {
  __m512 acc[Rows][2];
  for (std::size_t i = 0; i < Rows; ++i) {
    acc[i][0] = _mm512_loadu_ps(c + i * ldc);
    acc[i][1] = _mm512_loadu_ps(c + i * ldc + 16);
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const __m512 b0 = _mm512_loadu_ps(bp + p * kIsaNr);
    const __m512 b1 = _mm512_loadu_ps(bp + p * kIsaNr + 16);
    const float* a = ap + p * kIsaMr;  // panel stride is kIsaMr regardless
    for (std::size_t i = 0; i < Rows; ++i) {
      const __m512 ai = _mm512_set1_ps(a[i]);
      acc[i][0] = _mm512_fmadd_ps(ai, b0, acc[i][0]);
      acc[i][1] = _mm512_fmadd_ps(ai, b1, acc[i][1]);
    }
  }
  for (std::size_t i = 0; i < Rows; ++i) {
    _mm512_storeu_ps(c + i * ldc, acc[i][0]);
    _mm512_storeu_ps(c + i * ldc + 16, acc[i][1]);
  }
}

#elif !defined(ORCO_DISABLE_SIMD) && defined(__AVX2__) && defined(__FMA__)

constexpr const char* kIsa = "avx2";
constexpr std::size_t kIsaMr = 6;   // 6 rows × 2 ymm = 12 accumulators,
constexpr std::size_t kIsaNr = 16;  // +2 B + 1 broadcast fits 16 ymm regs
constexpr std::size_t kIsaMc = 96;  // row block (multiple of kIsaMr)

template <std::size_t Rows>
void isa_ukernel(const float* ap, const float* bp, std::size_t kc, float* c,
                 std::size_t ldc) {
  __m256 acc[Rows][2];
  for (std::size_t i = 0; i < Rows; ++i) {
    acc[i][0] = _mm256_loadu_ps(c + i * ldc);
    acc[i][1] = _mm256_loadu_ps(c + i * ldc + 8);
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kIsaNr);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kIsaNr + 8);
    const float* a = ap + p * kIsaMr;  // panel stride is kIsaMr regardless
    for (std::size_t i = 0; i < Rows; ++i) {
      const __m256 ai = _mm256_set1_ps(a[i]);
      acc[i][0] = _mm256_fmadd_ps(ai, b0, acc[i][0]);
      acc[i][1] = _mm256_fmadd_ps(ai, b1, acc[i][1]);
    }
  }
  for (std::size_t i = 0; i < Rows; ++i) {
    _mm256_storeu_ps(c + i * ldc, acc[i][0]);
    _mm256_storeu_ps(c + i * ldc + 8, acc[i][1]);
  }
}

#elif !defined(ORCO_DISABLE_SIMD) && defined(__ARM_NEON)

constexpr const char* kIsa = "neon";
constexpr std::size_t kIsaMr = 8;    // 8 rows × 2 q-regs = 16 accumulators
constexpr std::size_t kIsaNr = 8;    // two 4-lane vectors
constexpr std::size_t kIsaMc = 128;  // row block (multiple of kIsaMr)

template <std::size_t Rows>
void isa_ukernel(const float* ap, const float* bp, std::size_t kc, float* c,
                 std::size_t ldc) {
  float32x4_t acc[Rows][2];
  for (std::size_t i = 0; i < Rows; ++i) {
    acc[i][0] = vld1q_f32(c + i * ldc);
    acc[i][1] = vld1q_f32(c + i * ldc + 4);
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const float32x4_t b0 = vld1q_f32(bp + p * kIsaNr);
    const float32x4_t b1 = vld1q_f32(bp + p * kIsaNr + 4);
    const float* a = ap + p * kIsaMr;  // panel stride is kIsaMr regardless
    for (std::size_t i = 0; i < Rows; ++i) {
      const float32x4_t ai = vdupq_n_f32(a[i]);
      acc[i][0] = vfmaq_f32(acc[i][0], ai, b0);
      acc[i][1] = vfmaq_f32(acc[i][1], ai, b1);
    }
  }
  for (std::size_t i = 0; i < Rows; ++i) {
    vst1q_f32(c + i * ldc, acc[i][0]);
    vst1q_f32(c + i * ldc + 4, acc[i][1]);
  }
}

#else

constexpr const char* kIsa = "scalar-fallback";
constexpr std::size_t kIsaMr = 4;   // the blocked backend's geometry —
constexpr std::size_t kIsaNr = 32;  // same arithmetic, so this tier stays
constexpr std::size_t kIsaMc = 64;  // bitwise-equal to "blocked"

// Same reduction expression as detail::generic_micro_kernel (this TU is
// built with -ffp-contract=off), just with the row loop bounded by Rows —
// each output element's chain is unchanged, so this tier stays bitwise
// with "blocked".
template <std::size_t Rows>
void isa_ukernel(const float* ap, const float* bp, std::size_t kc, float* c,
                 std::size_t ldc) {
  float acc[Rows][kIsaNr];
  for (std::size_t i = 0; i < Rows; ++i) {
    for (std::size_t j = 0; j < kIsaNr; ++j) acc[i][j] = c[i * ldc + j];
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const float* a = ap + p * kIsaMr;  // panel stride is kIsaMr regardless
    const float* b = bp + p * kIsaNr;
    for (std::size_t ii = 0; ii < Rows; ++ii) {
      const float aip = a[ii];
      for (std::size_t jj = 0; jj < kIsaNr; ++jj) {
        acc[ii][jj] += aip * b[jj];
      }
    }
  }
  for (std::size_t i = 0; i < Rows; ++i) {
    for (std::size_t j = 0; j < kIsaNr; ++j) c[i * ldc + j] = acc[i][j];
  }
}

#endif

// Runtime row count -> compile-time Rows instantiation. rows is always in
// [1, kIsaMr] (panel_run never emits an empty tile).
using RowKernel = void (*)(const float*, const float*, std::size_t, float*,
                           std::size_t);

template <std::size_t... R>
constexpr std::array<RowKernel, sizeof...(R)> make_row_kernels(
    std::index_sequence<R...>) {
  return {&isa_ukernel<R + 1>...};
}

void run_rows(std::size_t rows, const float* ap, const float* bp,
              std::size_t kc, float* c, std::size_t ldc) {
  static constexpr std::array<RowKernel, kIsaMr> kKernels =
      make_row_kernels(std::make_index_sequence<kIsaMr>{});
  kKernels[rows - 1](ap, bp, kc, c, ldc);
}

struct SimdTraits {
  static constexpr std::size_t kMr = kIsaMr;
  static constexpr std::size_t kNr = kIsaNr;
  static constexpr std::size_t kKc = 256;   // k panel depth (matches blocked)
  static constexpr std::size_t kMc = kIsaMc;
  static constexpr std::size_t kNc = 1024;  // col panel (matches blocked)

  // Full-width tiles run the intrinsic kernel straight on C with exactly
  // `rows` accumulator rows (a batch-1 serving decode pays for one row, not
  // kMr); narrow column fringes run it on a stack buffer seeded from C
  // (zeros on the padding) and write back clipped. Either way the
  // per-element reduction is the same FMA chain, so interior and fringe
  // stay mutually consistent. The epilogue is applied scalar while the
  // tile is still hot.
  static void tile(const float* ap, const float* bp, std::size_t kc, float* c,
                   std::size_t ldc, std::size_t rows, std::size_t cols,
                   const Epilogue* epi, std::size_t row0, std::size_t col0) {
    if (cols == kNr) {
      run_rows(rows, ap, bp, kc, c, ldc);
      if (epi) {
        for (std::size_t ii = 0; ii < rows; ++ii) {
          float* ci = c + ii * ldc;
          for (std::size_t jj = 0; jj < kNr; ++jj) {
            float v = ci[jj];
            if (epi->bias) {
              v += epi->bias_per_row ? epi->bias[row0 + ii]
                                     : epi->bias[col0 + jj];
            }
            ci[jj] = detail::apply_act(v, epi->act, epi->leaky_alpha);
          }
        }
      }
      return;
    }
    float tmp[kMr * kNr];
    for (std::size_t ii = 0; ii < rows; ++ii) {
      for (std::size_t jj = 0; jj < kNr; ++jj) {
        tmp[ii * kNr + jj] = jj < cols ? c[ii * ldc + jj] : 0.0f;
      }
    }
    run_rows(rows, ap, bp, kc, tmp, kNr);
    for (std::size_t ii = 0; ii < rows; ++ii) {
      float* ci = c + ii * ldc;
      for (std::size_t jj = 0; jj < cols; ++jj) {
        float v = tmp[ii * kNr + jj];
        if (epi) {
          if (epi->bias) {
            v += epi->bias_per_row ? epi->bias[row0 + ii]
                                   : epi->bias[col0 + jj];
          }
          v = detail::apply_act(v, epi->act, epi->leaky_alpha);
        }
        ci[jj] = v;
      }
    }
  }
};

class SimdBackend final : public Backend {
 public:
  std::string name() const override { return "simd"; }

  void gemm(const float* a, const float* b, float* c, std::size_t m,
            std::size_t k, std::size_t n) const override {
    detail::panel_run<SimdTraits>({a, k, false}, b, n, false, c, m, k, n,
                                  nullptr, nullptr, nullptr);
  }

  void gemm_nt(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) const override {
    detail::panel_run<SimdTraits>({a, k, false}, b, k, true, c, m, k, n,
                                  nullptr, nullptr, nullptr);
  }

  void gemm_tn(const float* a, const float* b, float* c, std::size_t m,
               std::size_t k, std::size_t n) const override {
    detail::panel_run<SimdTraits>({a, m, true}, b, n, false, c, m, k, n,
                                  nullptr, nullptr, nullptr);
  }

  void gemm_fused(const float* a, const float* b, float* c, std::size_t m,
                  std::size_t k, std::size_t n, bool transpose_b,
                  const Epilogue& epilogue) const override {
    std::fill(c, c + m * n, 0.0f);
    detail::panel_run<SimdTraits>({a, k, false}, b, transpose_b ? k : n,
                                  transpose_b, c, m, k, n, &epilogue, nullptr,
                                  nullptr);
  }

  PackedWeights pack_b(const float* b, std::size_t k, std::size_t n,
                       bool transpose_b) const override {
    PackedWeights packed;
    detail::pack_b_full<SimdTraits>(this, b, k, n, transpose_b, packed);
    return packed;
  }

  PackedWeights pack_a(const float* a, std::size_t m,
                       std::size_t k) const override {
    PackedWeights packed;
    detail::pack_a_full<SimdTraits>(this, a, m, k, packed);
    return packed;
  }

  void gemm_prepacked(const float* other, const PackedWeights& packed,
                      float* c, std::size_t m, std::size_t k, std::size_t n,
                      const Epilogue& epilogue) const override {
    ORCO_CHECK(packed.owner == this,
               "PackedWeights were packed by a different backend");
    std::fill(c, c + m * n, 0.0f);
    if (packed.side == 'B') {
      ORCO_CHECK(packed.rows == k && packed.cols == n,
                 "prepacked B is " << packed.rows << "x" << packed.cols
                                   << ", GEMM wants " << k << "x" << n);
      detail::panel_run<SimdTraits>({other, k, false}, nullptr, 0, false, c, m,
                                    k, n, &epilogue, nullptr,
                                    packed.data.data());
    } else {
      ORCO_CHECK(packed.rows == m && packed.cols == k,
                 "prepacked A is " << packed.rows << "x" << packed.cols
                                   << ", GEMM wants " << m << "x" << k);
      detail::panel_run<SimdTraits>({}, other, n, false, c, m, k, n, &epilogue,
                                    packed.data.data(), nullptr);
    }
  }

  void gemm_quantized(const std::uint8_t* a_q, const QuantHeader& qh,
                      const PackedWeights& packed, float* c, std::size_t m,
                      std::size_t k, std::size_t n,
                      const Epilogue& epilogue) const override {
    ORCO_CHECK(packed.owner == this,
               "PackedWeights were packed by a different backend");
    ORCO_CHECK(packed.side == 'B', "gemm_quantized needs a packed B operand");
    ORCO_CHECK(packed.rows == k && packed.cols == n,
               "prepacked B is " << packed.rows << "x" << packed.cols
                                 << ", GEMM wants " << k << "x" << n);
    std::fill(c, c + m * n, 0.0f);
    detail::AView av;
    av.lda = k;
    av.q8 = a_q;
    av.q_lo = qh.row_lo;
    av.q_scale = qh.row_scale;
    detail::panel_run<SimdTraits>(av, nullptr, 0, false, c, m, k, n, &epilogue,
                                  nullptr, packed.data.data());
  }
};

}  // namespace

const Backend& simd_backend() {
  static const SimdBackend backend;
  return backend;
}

const char* simd_isa() { return kIsa; }

}  // namespace orco::tensor
