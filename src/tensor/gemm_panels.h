// Shared packed-panel GEMM machinery — the cache-tiling skeleton every
// register-blocked backend (blocked, simd) instantiates.
//
// The driver and the packing routines are templated over a Traits type so
// each backend picks its own register-tile geometry while reusing one
// panel walk:
//
//   struct Traits {
//     static constexpr std::size_t kMr;  // micro-tile rows
//     static constexpr std::size_t kNr;  // micro-tile cols
//     static constexpr std::size_t kKc;  // k panel depth
//     static constexpr std::size_t kMc;  // row block per packed A panel
//     static constexpr std::size_t kNc;  // col panel width
//     // One kMr x kNr output tile accumulated over a packed k panel:
//     // must seed the accumulators from C (zero on the fringe past
//     // rows/cols), reduce the panel in ascending k order, apply `epi`
//     // when non-null (the driver passes it only on the last k panel) and
//     // write back clipped to rows x cols.
//     static void tile(const float* ap, const float* bp, std::size_t kc,
//                      float* c, std::size_t ldc, std::size_t rows,
//                      std::size_t cols, const Epilogue* epi,
//                      std::size_t row0, std::size_t col0);
//   };
//
// Because the packed layout is a pure function of (kMr, kNr, kKc, kMc,
// kNc), two backends sharing the same constants produce interchangeable
// panels; differing constants are caught by PackedWeights::owner.
//
// Numerical contract (inherited by every instantiation): each output
// element is ONE sequential reduction chain in ascending k order — the
// driver seeds tiles from C and visits k panels in order — so results are
// independent of m, n, tile position and thread count. Whether two
// backends agree bitwise is then decided solely by their tile() arithmetic
// (the blocked tile's separate mul+add vs the simd tile's FMA).
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_pool.h"
#include "tensor/backend.h"

namespace orco::tensor::detail {

/// The pool GEMMs row-parallelise on, or nullptr when the problem is small
/// or parallelism is disabled (set_gemm_parallelism /
/// set_thread_gemm_parallelism). Defined in backend.cpp.
common::ThreadPool* gemm_pool(std::size_t m, std::size_t n);

constexpr std::size_t round_up(std::size_t v, std::size_t t) {
  return (v + t - 1) / t * t;
}

/// Epilogue activation — must mirror nn/activations.h exactly: fusing an
/// activation into the GEMM epilogue may not change a single value versus
/// the standalone layer.
inline float apply_act(float v, EpilogueAct act, float alpha) {
  switch (act) {
    case EpilogueAct::kNone:      return v;
    case EpilogueAct::kReLU:      return v > 0.0f ? v : 0.0f;
    case EpilogueAct::kLeakyReLU: return v > 0.0f ? v : alpha * v;
    case EpilogueAct::kSigmoid:   return 1.0f / (1.0f + std::exp(-v));
    case EpilogueAct::kTanh:      return std::tanh(v);
  }
  return v;
}

/// The left GEMM operand, in one of three storages:
///   * f32 row-major (m x k), or its transpose source (k x m) when `trans`;
///   * int8 codes (m x k, lda == k) with per-row affine dequantisation
///     x = lo[i] + q * scale[i] applied while packing (the quantized-uplink
///     decode path: codes stream straight from the request payload);
///   * absent (nullptr everywhere) when the driver receives prepacked A.
struct AView {
  const float* f32 = nullptr;
  std::size_t lda = 0;
  bool trans = false;
  const std::uint8_t* q8 = nullptr;  // when set, f32 must be null
  const float* q_lo = nullptr;       // [m] per-row offset
  const float* q_scale = nullptr;    // [m] per-row step
};

/// Packs A[i0:i0+mc, p0:p0+kc] into kMr-interleaved panels: panel ip holds
/// kMr consecutive rows laid out [p][ii], zero-padded past mc. The
/// quantized source dequantises element-wise while packing — same float
/// expression as core::dequantize-into-scratch, so the fused path and the
/// dequantise-then-gemm fallback agree bitwise.
template <std::size_t MR>
void pack_a_panel(const AView& a, std::size_t i0, std::size_t p0,
                  std::size_t mc, std::size_t kc, float* ap) {
  for (std::size_t ip = 0; ip < mc; ip += MR) {
    float* dst = ap + (ip / MR) * (MR * kc);
    for (std::size_t ii = 0; ii < MR; ++ii) {
      const std::size_t i = i0 + ip + ii;
      if (ip + ii < mc) {
        if (a.q8 != nullptr) {
          const std::uint8_t* src = a.q8 + i * a.lda + p0;
          const float lo = a.q_lo[i];
          const float scale = a.q_scale[i];
          for (std::size_t p = 0; p < kc; ++p) {
            dst[p * MR + ii] = lo + static_cast<float>(src[p]) * scale;
          }
        } else if (a.trans) {
          for (std::size_t p = 0; p < kc; ++p) {
            dst[p * MR + ii] = a.f32[(p0 + p) * a.lda + i];
          }
        } else {
          const float* src = a.f32 + i * a.lda + p0;
          for (std::size_t p = 0; p < kc; ++p) dst[p * MR + ii] = src[p];
        }
      } else {
        for (std::size_t p = 0; p < kc; ++p) dst[p * MR + ii] = 0.0f;
      }
    }
  }
}

/// Packs B[p0:p0+kc, j0:j0+nc] (or the transpose-source equivalent when
/// `trans`, with `b` stored (n x k)) into kNr-interleaved panels: panel jp
/// holds kNr consecutive columns laid out [p][jj], zero-padded past nc.
template <std::size_t NR>
void pack_b_panel(const float* b, std::size_t ldb, bool trans, std::size_t p0,
                  std::size_t j0, std::size_t kc, std::size_t nc, float* bp) {
  for (std::size_t jp = 0; jp < nc; jp += NR) {
    float* dst = bp + (jp / NR) * (NR * kc);
    if (trans) {
      for (std::size_t jj = 0; jj < NR; ++jj) {
        const std::size_t j = j0 + jp + jj;
        if (jp + jj < nc) {
          const float* src = b + j * ldb + p0;
          for (std::size_t p = 0; p < kc; ++p) dst[p * NR + jj] = src[p];
        } else {
          for (std::size_t p = 0; p < kc; ++p) dst[p * NR + jj] = 0.0f;
        }
      }
    } else {
      const std::size_t cols = nc - jp < NR ? nc - jp : NR;
      for (std::size_t p = 0; p < kc; ++p) {
        const float* src = b + (p0 + p) * ldb + j0 + jp;
        float* row = dst + p * NR;
        for (std::size_t jj = 0; jj < cols; ++jj) row[jj] = src[jj];
        for (std::size_t jj = cols; jj < NR; ++jj) row[jj] = 0.0f;
      }
    }
  }
}

/// Seeds an accumulator tile from C (zero on the padded fringe) so that
/// across k panels every output element stays one sequential reduction.
template <std::size_t MR, std::size_t NR>
void load_tile(const float* c, std::size_t ldc, std::size_t rows,
               std::size_t cols, float acc[MR][NR]) {
  for (std::size_t ii = 0; ii < MR; ++ii) {
    if (ii < rows) {
      const float* ci = c + ii * ldc;
      for (std::size_t jj = 0; jj < NR; ++jj) {
        acc[ii][jj] = jj < cols ? ci[jj] : 0.0f;
      }
    } else {
      for (std::size_t jj = 0; jj < NR; ++jj) acc[ii][jj] = 0.0f;
    }
  }
}

/// Writes a micro-tile back, clipping the zero-padded fringe; when `epi` is
/// set (last k panel of a fused GEMM) the epilogue is applied while the
/// tile is still hot.
template <std::size_t MR, std::size_t NR>
void store_tile(float* c, std::size_t ldc, const float acc[MR][NR],
                std::size_t rows, std::size_t cols, const Epilogue* epi,
                std::size_t row0, std::size_t col0) {
  for (std::size_t ii = 0; ii < rows; ++ii) {
    float* ci = c + ii * ldc;
    for (std::size_t jj = 0; jj < cols; ++jj) {
      float v = acc[ii][jj];
      if (epi) {
        if (epi->bias) {
          v += epi->bias_per_row ? epi->bias[row0 + ii] : epi->bias[col0 + jj];
        }
        v = apply_act(v, epi->act, epi->leaky_alpha);
      }
      ci[jj] = v;
    }
  }
}

/// The portable MR x NR micro-kernel: plain loops with constant trip counts
/// the compiler unrolls and auto-vectorizes over jj. Separate mul+add (the
/// TU is built with -ffp-contract=off), so instantiations agree bitwise
/// with the reference ikj kernel.
template <std::size_t MR, std::size_t NR>
void generic_micro_kernel(const float* ap, const float* bp, std::size_t kc,
                          float acc[MR][NR]) {
  for (std::size_t p = 0; p < kc; ++p) {
    const float* a = ap + p * MR;
    const float* b = bp + p * NR;
    for (std::size_t ii = 0; ii < MR; ++ii) {
      const float aip = a[ii];
      for (std::size_t jj = 0; jj < NR; ++jj) {
        acc[ii][jj] += aip * b[jj];
      }
    }
  }
}

/// tile() built from the portable pieces — the blocked backend's kernel,
/// and the scalar fallback a SIMD-less simd build degrades to.
template <std::size_t MR, std::size_t NR>
void generic_tile(const float* ap, const float* bp, std::size_t kc, float* c,
                  std::size_t ldc, std::size_t rows, std::size_t cols,
                  const Epilogue* epi, std::size_t row0, std::size_t col0) {
  float acc[MR][NR];
  load_tile<MR, NR>(c, ldc, rows, cols, acc);
  generic_micro_kernel<MR, NR>(ap, bp, kc, acc);
  store_tile<MR, NR>(c, ldc, acc, rows, cols, epi, row0, col0);
}

/// Bytes... floats a pack_b-produced panel set occupies for (k, n).
template <class Traits>
std::size_t packed_b_floats(std::size_t k, std::size_t n) {
  std::size_t total = 0;
  for (std::size_t pc = 0; pc < k; pc += Traits::kKc) {
    const std::size_t kc = k - pc < Traits::kKc ? k - pc : Traits::kKc;
    for (std::size_t jc = 0; jc < n; jc += Traits::kNc) {
      const std::size_t nc = n - jc < Traits::kNc ? n - jc : Traits::kNc;
      total += round_up(nc, Traits::kNr) * kc;
    }
  }
  return total;
}

template <class Traits>
std::size_t packed_a_floats(std::size_t m, std::size_t k) {
  std::size_t total = 0;
  for (std::size_t pc = 0; pc < k; pc += Traits::kKc) {
    const std::size_t kc = k - pc < Traits::kKc ? k - pc : Traits::kKc;
    total += round_up(m, Traits::kMr) * kc;
  }
  return total;
}

/// Fills a PackedWeights with B panels in the exact (pc, jc) order
/// panel_run walks, so the prepacked GEMM streams the stored panels at the
/// offsets the on-the-fly path would have packed them to.
template <class Traits>
void pack_b_full(const Backend* owner, const float* b, std::size_t k,
                 std::size_t n, bool transpose_b, PackedWeights& packed) {
  packed.owner = owner;
  packed.side = 'B';
  packed.rows = k;
  packed.cols = n;
  const std::size_t ldb = transpose_b ? k : n;
  packed.data.resize(packed_b_floats<Traits>(k, n));
  std::size_t off = 0;
  for (std::size_t pc = 0; pc < k; pc += Traits::kKc) {
    const std::size_t kc = k - pc < Traits::kKc ? k - pc : Traits::kKc;
    for (std::size_t jc = 0; jc < n; jc += Traits::kNc) {
      const std::size_t nc = n - jc < Traits::kNc ? n - jc : Traits::kNc;
      pack_b_panel<Traits::kNr>(b, ldb, transpose_b, pc, jc, kc, nc,
                                packed.data.data() + off);
      off += round_up(nc, Traits::kNr) * kc;
    }
  }
}

/// Fills a PackedWeights with A panels in (pc, ic-block) order.
template <class Traits>
void pack_a_full(const Backend* owner, const float* a, std::size_t m,
                 std::size_t k, PackedWeights& packed) {
  packed.owner = owner;
  packed.side = 'A';
  packed.rows = m;
  packed.cols = k;
  packed.data.resize(packed_a_floats<Traits>(m, k));
  std::size_t off = 0;
  for (std::size_t pc = 0; pc < k; pc += Traits::kKc) {
    const std::size_t kc = k - pc < Traits::kKc ? k - pc : Traits::kKc;
    for (std::size_t ic = 0; ic < m; ic += Traits::kMc) {
      const std::size_t mc = m - ic < Traits::kMc ? m - ic : Traits::kMc;
      AView av;
      av.f32 = a;
      av.lda = k;
      pack_a_panel<Traits::kMr>(av, ic, pc, mc, kc, packed.data.data() + off);
      off += round_up(mc, Traits::kMr) * kc;
    }
  }
}

/// The panel walk: k split into kKc panels, n into kNc panels (B packed
/// per (pc, jc) into kNr strips), rows into kMc blocks (A packed into kMr
/// strips, parallelised over blocks), Traits::tile() on every micro-tile.
/// packed_a / packed_b point at pack_a_full/pack_b_full layouts; non-null
/// skips the corresponding per-call packing. `epi` is applied on the last
/// k panel only.
template <class Traits>
void panel_run(const AView& a, const float* b, std::size_t ldb, bool tb,
               float* c, std::size_t m, std::size_t k, std::size_t n,
               const Epilogue* epi, const float* packed_a,
               const float* packed_b) {
  constexpr std::size_t kMr = Traits::kMr;
  constexpr std::size_t kNr = Traits::kNr;
  constexpr std::size_t kKc = Traits::kKc;
  constexpr std::size_t kMc = Traits::kMc;
  constexpr std::size_t kNc = Traits::kNc;
  static_assert(kMc % kMr == 0, "row blocks must be whole micro-tiles");
  if (m == 0 || n == 0) return;
  if (k == 0) {
    if (epi) apply_epilogue(c, m, n, *epi);
    return;
  }
  thread_local std::vector<float> bp_buf;
  std::size_t b_off = 0;   // walk of the prepacked B panels (pc-major)
  std::size_t a_base = 0;  // prepacked A offset of the current k panel
  for (std::size_t pc = 0; pc < k; pc += kKc) {
    const std::size_t kc = k - pc < kKc ? k - pc : kKc;
    const bool last_panel = pc + kc == k;
    for (std::size_t jc = 0; jc < n; jc += kNc) {
      const std::size_t nc = n - jc < kNc ? n - jc : kNc;
      const float* bp;
      if (packed_b != nullptr) {
        bp = packed_b + b_off;
      } else {
        bp_buf.resize(round_up(nc, kNr) * kc);
        pack_b_panel<kNr>(b, ldb, tb, pc, jc, kc, nc, bp_buf.data());
        bp = bp_buf.data();
      }
      b_off += round_up(nc, kNr) * kc;

      const std::size_t row_blocks = (m + kMc - 1) / kMc;
      common::parallel_for(
          gemm_pool(m, n), 0, row_blocks, /*grain=*/1,
          [&](std::size_t blk0, std::size_t blk1) {
            thread_local std::vector<float> ap_buf;
            for (std::size_t blk = blk0; blk < blk1; ++blk) {
              const std::size_t ic = blk * kMc;
              const std::size_t mc = m - ic < kMc ? m - ic : kMc;
              const float* apan;
              if (packed_a != nullptr) {
                // Block `blk` starts ic rows into the panel; full blocks
                // are kMr-aligned (kMc % kMr == 0), so its offset is
                // exactly ic*kc floats past the panel base.
                apan = packed_a + a_base + ic * kc;
              } else {
                ap_buf.resize(round_up(mc, kMr) * kc);
                pack_a_panel<kMr>(a, ic, pc, mc, kc, ap_buf.data());
                apan = ap_buf.data();
              }
              for (std::size_t jr = 0; jr < nc; jr += kNr) {
                const float* bpan = bp + (jr / kNr) * (kNr * kc);
                const std::size_t cols = nc - jr < kNr ? nc - jr : kNr;
                for (std::size_t ir = 0; ir < mc; ir += kMr) {
                  const std::size_t rows = mc - ir < kMr ? mc - ir : kMr;
                  Traits::tile(apan + (ir / kMr) * (kMr * kc), bpan, kc,
                               c + (ic + ir) * n + jc + jr, n, rows, cols,
                               (epi && last_panel) ? epi : nullptr, ic + ir,
                               jc + jr);
                }
              }
            }
          });
    }
    a_base += round_up(m, kMr) * kc;
  }
}

}  // namespace orco::tensor::detail
