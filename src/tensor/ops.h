// Free-function tensor ops shared by losses, metrics and datasets.
#pragma once

#include "tensor/tensor.h"

namespace orco::tensor {

/// Row-wise softmax of a rank-2 tensor (numerically stabilised).
Tensor softmax_rows(const Tensor& logits);

/// Row-wise log-softmax of a rank-2 tensor.
Tensor log_softmax_rows(const Tensor& logits);

/// Per-row argmax of a rank-2 tensor (batch of logits -> predicted classes).
std::vector<std::size_t> argmax_rows(const Tensor& t);

/// Clamps all elements into [lo, hi].
Tensor clamp(const Tensor& t, float lo, float hi);

/// Mean of (a-b)^2 over all elements.
float mse(const Tensor& a, const Tensor& b);

/// Concatenates rank-2 tensors along dim 0 (columns must agree).
Tensor concat_rows(const std::vector<Tensor>& parts);

/// Stacks rank-1 tensors of equal length into a (parts, length) batch — the
/// entry point for coalescing independent per-request vectors into one
/// batched inference call. Rank-2 (1, length) parts are accepted too.
Tensor stack_rows(const std::vector<Tensor>& parts);

}  // namespace orco::tensor
