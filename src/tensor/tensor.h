// Dense row-major float tensor with value semantics.
//
// This is the numeric substrate for the whole repository: the NN library,
// the synthetic datasets, and the orchestration protocol all move data as
// Tensors. Only float32 and contiguous layout are supported — the models in
// the paper (dense + small conv nets on 28x28/32x32 images) need nothing
// more, and the simplicity keeps every kernel easy to verify.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"

namespace orco::tensor {

using Shape = std::vector<std::size_t>;

/// Number of elements implied by a shape (empty shape -> 0 elements).
std::size_t shape_numel(const Shape& shape);

/// Human-readable "[2, 3, 4]" form for error messages.
std::string shape_to_string(const Shape& shape);

class Tensor {
 public:
  /// Empty tensor (numel 0, rank 0).
  Tensor() = default;

  /// Zero-initialised tensor of the given shape.
  explicit Tensor(Shape shape);

  /// Constant-filled tensor.
  Tensor(Shape shape, float fill);

  /// Takes ownership of `data`; data.size() must equal shape's numel.
  Tensor(Shape shape, std::vector<float> data);

  // -- factories --------------------------------------------------------

  static Tensor zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor ones(Shape shape) { return Tensor(std::move(shape), 1.0f); }
  static Tensor full(Shape shape, float v) { return Tensor(std::move(shape), v); }

  /// I.i.d. N(mean, stddev^2) entries.
  static Tensor randn(Shape shape, common::Pcg32& rng, float mean = 0.0f,
                      float stddev = 1.0f);

  /// I.i.d. U[lo, hi) entries.
  static Tensor uniform(Shape shape, common::Pcg32& rng, float lo = 0.0f,
                        float hi = 1.0f);

  /// 1-D tensor from an initialiser list (convenience for tests).
  static Tensor from(std::initializer_list<float> values);

  /// 2-D tensor from nested initialiser lists (convenience for tests).
  static Tensor from2d(std::initializer_list<std::initializer_list<float>> rows);

  // -- shape ------------------------------------------------------------

  const Shape& shape() const noexcept { return shape_; }
  std::size_t rank() const noexcept { return shape_.size(); }
  std::size_t numel() const noexcept { return data_.size(); }
  bool empty() const noexcept { return data_.empty(); }

  /// Extent along dimension d (bounds-checked).
  std::size_t dim(std::size_t d) const;

  /// Returns a tensor with the same data and a new shape (same numel).
  Tensor reshaped(Shape new_shape) const;

  /// In-place reshape (same numel required).
  void reshape(Shape new_shape);

  /// Re-shapes to `new_shape`, changing numel if needed. Existing storage
  /// capacity is reused — no heap traffic unless numel grows beyond the
  /// high-water mark — which makes this the buffer-recycling primitive of
  /// the zero-allocation inference path (InferContext's ping-pong
  /// activation buffers). Element values are unspecified after a size
  /// change (grown elements are zero, kept elements retain old data);
  /// callers overwrite the whole buffer. NOTE: the Shape parameter itself
  /// is a heap-backed vector — steady-state hot paths use the rank-2 /
  /// resize_like overloads below, whose arguments never allocate.
  void resize(Shape new_shape);

  /// Rank-2 resize without constructing a Shape: the layer-kernel form
  /// (every infer_into output is (batch, features)). Reuses the shape
  /// vector's storage, so a warmed tensor resizes with zero allocations.
  void resize(std::size_t rows, std::size_t cols);

  /// Resizes to `other`'s shape, reusing the shape vector's storage when
  /// the ranks already agree (the elementwise-layer case).
  void resize_like(const Tensor& other);

  // -- element access ---------------------------------------------------

  std::span<float> data() noexcept { return data_; }
  std::span<const float> data() const noexcept { return data_; }

  float& operator[](std::size_t i) { return data_[i]; }
  float operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked 2-D access (rank must be 2).
  float& at(std::size_t i, std::size_t j);
  float at(std::size_t i, std::size_t j) const;

  /// Bounds-checked 4-D access (rank must be 4), layout (N, C, H, W).
  float& at(std::size_t n, std::size_t c, std::size_t h, std::size_t w);
  float at(std::size_t n, std::size_t c, std::size_t h, std::size_t w) const;

  /// Span over row i of a rank-2 tensor.
  std::span<float> row(std::size_t i);
  std::span<const float> row(std::size_t i) const;

  /// Copies rows [begin, end) of a rank-2 tensor into a new tensor.
  Tensor slice_rows(std::size_t begin, std::size_t end) const;

  /// Copies row i of a rank-2 tensor into a new rank-1 tensor — one sized
  /// allocation + one memcpy (slice_rows(i, i+1).reshaped(...) costs two of
  /// each). The serve fan-out unpacks batched decodes with this.
  Tensor row_copy(std::size_t i) const;

  /// Copies the n-th outermost slice (e.g. one image of an (N,C,H,W) batch),
  /// dropping the leading dimension.
  Tensor slice_outer(std::size_t n) const;

  /// Writes `src` into the n-th outermost slice; shapes must match.
  void set_outer(std::size_t n, const Tensor& src);

  // -- arithmetic (value-returning; shapes must match exactly) ----------

  Tensor operator+(const Tensor& rhs) const;
  Tensor operator-(const Tensor& rhs) const;
  Tensor operator*(const Tensor& rhs) const;  // elementwise (Hadamard)
  Tensor operator*(float s) const;
  Tensor operator+(float s) const;

  Tensor& operator+=(const Tensor& rhs);
  Tensor& operator-=(const Tensor& rhs);
  Tensor& operator*=(float s);

  /// this += alpha * rhs (axpy).
  void add_scaled(const Tensor& rhs, float alpha);

  // -- reductions & maps ------------------------------------------------

  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  /// Index of the maximum element (first on ties).
  std::size_t argmax() const;
  /// L2 norm of all elements.
  float l2_norm() const;
  /// Max |element|.
  float abs_max() const;

  /// Returns f applied elementwise.
  template <typename F>
  Tensor map(F&& f) const {
    Tensor out(shape_);
    for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = f(data_[i]);
    return out;
  }

  /// Applies f elementwise in place.
  template <typename F>
  void apply(F&& f) {
    for (auto& v : data_) v = f(v);
  }

  void fill(float v);

  /// 2-D transpose (copy).
  Tensor transposed() const;

  /// True iff shapes match and all elements are within atol.
  bool allclose(const Tensor& other, float atol = 1e-5f) const;

 private:
  void check_same_shape(const Tensor& rhs, const char* op) const;

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace orco::tensor
